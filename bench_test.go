// Package repro's root benches regenerate every table and figure of the
// FedKNOW paper at CI scale (testing.B reports ns/op for one full experiment
// regeneration; key result quantities are attached via b.ReportMetric).
//
// Coverage notes: each artefact has one benchmark. Where the full CI sweep
// is still minutes long on CPU (Fig. 4's eight panels, Table I's five
// datasets, Fig. 9's nine DNNs), the benchmark runs a representative subset
// and `cmd/fedknow-bench -exp <id>` regenerates the complete artefact.
package repro

import (
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/experiments"
)

// keepWord maps label characters to a metric-safe alphabet (ReportMetric
// rejects whitespace).
func keepWord(r rune) rune {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '%':
		return r
	default:
		return '-'
	}
}

// benchOpts shrinks rounds/clients so a full experiment regeneration fits in
// a benchmark iteration.
func benchOpts(seed uint64) experiments.Options {
	return experiments.Options{
		Scale: data.CI,
		Seed:  seed,
		Tune: func(rt *experiments.Runtime) {
			rt.Rounds = 1
			rt.LocalIters = 2
			rt.Clients = 3
		},
	}
}

// BenchmarkFig4 regenerates Fig. 4: accuracy-vs-time curves. Panel (a) is
// the 20-Jetson CIFAR100 comparison of all 12 methods; panel (d) is the
// 30-device heterogeneous comparison.
func BenchmarkFig4(b *testing.B) {
	for _, panel := range []string{"a", "d"} {
		b.Run("panel="+panel, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig4(panel, benchOpts(1))
				if err != nil {
					b.Fatal(err)
				}
				fk := res.Raw["FedKNOW"]
				last := fk.PerTask[len(fk.PerTask)-1]
				b.ReportMetric(last.AvgAccuracy, "fedknow-acc")
			}
		})
	}
}

// BenchmarkTable1 regenerates Table I (average % accuracy improvement of
// FedKNOW over the mean of the 11 baselines) on CIFAR100.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchOpts(2), []data.Family{data.CIFAR100})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanImprovement("CIFAR100"), "mean-improvement-pct")
	}
}

// BenchmarkFig5 regenerates Fig. 5 (total communication volume, FedKNOW vs
// FedWEIT) on two workloads.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchOpts(3), []data.Family{data.CIFAR100, data.FC100})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanReduction()*100, "comm-reduction-pct")
	}
}

// BenchmarkFig6 regenerates Fig. 6 (communication time across the
// 50 KB/s–10 MB/s bandwidth sweep for 6CNN and ResNet-18).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchOpts(4))
		if err != nil {
			b.Fatal(err)
		}
		// Headline point: ResNet-18 at the slowest link.
		b.ReportMetric(res.Hours["ResNet18"]["FedWEIT"][0]-res.Hours["ResNet18"]["FedKNOW"][0],
			"hours-saved-at-50KBps")
	}
}

// BenchmarkFig7 regenerates Fig. 7 (accuracy and forgetting over the merged
// many-task workload).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchOpts(5))
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Forgetting {
			if s.Label == "FedKNOW" {
				b.ReportMetric(s.Y[len(s.Y)-1], "fedknow-final-forgetting")
			}
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8 (accuracy and forgetting at two cluster
// scales).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchOpts(6))
		if err != nil {
			b.Fatal(err)
		}
		last := res.Accuracy[len(res.Accuracy)-1]
		for _, s := range last {
			if len(s.Y) > 0 {
				// Metric units must not contain whitespace.
				b.ReportMetric(s.Y[len(s.Y)-1], "acc-"+strings.ReplaceAll(strings.Map(keepWord, s.Label), "--", "-"))
			}
		}
	}
}

// BenchmarkFig9 regenerates Fig. 9 (applicability across DNN categories):
// one representative model per category family here; all nine via
// `fedknow-bench -exp fig9`.
func BenchmarkFig9(b *testing.B) {
	models := []string{"SENet18", "MobileNetV2", "DenseNet"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchOpts(7), models)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range models {
			b.ReportMetric(res.FinalAccuracy(m, "FedKNOW"), "fedknow-acc-"+m)
		}
	}
}

// BenchmarkFig10 regenerates Fig. 10 (the knowledge-retention parameter
// study: GEM 10–100 % samples, FedWEIT all-vs-own, FedKNOW ρ 5–20 %).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchOpts(8))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Accuracy["FedKNOW-10%"], "fedknow-rho10-acc")
		b.ReportMetric(res.Hours["GEM-100%"], "gem100-hours")
	}
}

// BenchmarkAblation quantifies each FedKNOW component's contribution
// (DESIGN.md's ablation call-out): full vs no-integrator vs no-global-guard
// vs no-finetune.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(benchOpts(9))
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range res.Variants {
			b.ReportMetric(res.Accuracy[v], "acc-"+v)
		}
	}
}
