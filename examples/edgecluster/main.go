// Edge-cluster scenario: heterogeneous devices and the FedWEIT memory
// blow-up (§V-B's 30-device study).
//
// A mixed cluster of Jetsons and Raspberry Pis (one with only 2 GB) trains
// a CORe50-style workload with GEM, FedWEIT and FedKNOW. The demo shows
// (a) how the slow CPU-only Pis dominate round time, and (b) how FedWEIT's
// all-clients adaptive-weight pool exhausts the 2 GB Pi mid-sequence while
// FedKNOW's sparse local knowledge stays within budget.
package main

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/tensor"
)

func main() {
	ds, tasks := data.CORe50.Build(data.CI, 7)
	cluster := &device.Cluster{Devices: []device.Device{
		device.JetsonAGX, device.JetsonXavierNX, device.JetsonNano,
		device.RaspberryPi(2), device.RaspberryPi(4), device.RaspberryPi(8),
	}}
	seqs := data.Federate(tasks, cluster.Size(), data.CIAlloc(8))

	build := func(rng *tensor.RNG) *model.Model {
		return model.MustBuild("SixCNN", ds.NumClasses, ds.C, ds.H, ds.W, 1, rng)
	}
	// Map simulated model bytes to real-hardware scale so the 2 GB budget
	// is meaningful (a real 6-CNN/ResNet-style model is tens of MB; 60 MB
	// matches the paper's ResNet-18-with-heads deployment size).
	probe := build(tensor.NewRNG(1))
	memScale := 60e6 / float64(probe.ParamBytes())

	for _, method := range []string{"GEM", "FedWEIT", "FedKNOW"} {
		cfg := fed.Config{
			Method: method, Rounds: 2, LocalIters: 2, BatchSize: 8,
			LR: 0.02, LRDecay: 1e-4, NumClasses: ds.NumClasses,
			Bandwidth: 1024 * 1024, MemScale: memScale, Seed: 7,
		}
		engine := fed.NewEngine(cfg, cluster, seqs, build,
			experiments.MethodFactory(method, data.CI))
		res := engine.Run()
		last := res.PerTask[len(res.PerTask)-1]
		fmt.Printf("%-8s final-acc %.4f  sim-hours %.4f  comm-hours %.5f",
			method, last.AvgAccuracy, last.SimHours, last.CommHours)
		if len(res.DeadAfter) > 0 {
			for id, task := range res.DeadAfter {
				fmt.Printf("  [client %d (%s) OOM after task %d]",
					id, cluster.Devices[id].Name, task+1)
			}
		}
		fmt.Println()
	}
}
