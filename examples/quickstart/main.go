// Quickstart: run FedKNOW on a small federated continual-learning job and
// inspect what it retains.
//
// Four clients share a CIFAR100-style synthetic benchmark split into 10
// tasks; each client sees a non-IID shard (2–3 classes per task). The demo
// prints accuracy and forgetting after every task, then shows the sparse
// knowledge FedKNOW kept per task.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/tensor"
)

func main() {
	// 1. Data: synthetic CIFAR100 stand-in at CI scale, 10 tasks.
	ds, tasks := data.CIFAR100.Build(data.CI, 42)
	seqs := data.Federate(tasks, 4, data.CIAlloc(43))

	// 2. Engine configuration: 2 aggregation rounds of 3 local iterations
	// per task, FedAvg aggregation, 1 MB/s links.
	cfg := fed.Config{
		Method: "FedKNOW", Rounds: 2, LocalIters: 3, BatchSize: 8,
		LR: 0.02, LRDecay: 1e-4, NumClasses: ds.NumClasses,
		Bandwidth: 1024 * 1024, Seed: 42,
	}
	build := func(rng *tensor.RNG) *model.Model {
		return model.MustBuild("SixCNN", ds.NumClasses, ds.C, ds.H, ds.W, 1, rng)
	}

	// 3. FedKNOW options: retain 10 % of weights per task, integrate the 3
	// most dissimilar signature tasks per step.
	opts := core.Options{Rho: 0.10, K: 3, FinetuneIters: 1, SelectEvery: 3}
	var firstClient *core.FedKNOW
	factory := func(ctx *fed.ClientCtx) fed.Strategy {
		s := core.New(ctx, opts)
		if ctx.ID == 0 {
			firstClient = s
		}
		return s
	}

	engine := fed.NewEngine(cfg, device.Jetson20(), seqs, build, factory)
	res := engine.Run()

	fmt.Println("task  avg-accuracy  forgetting  sim-hours")
	for _, tp := range res.PerTask {
		fmt.Printf("%4d  %12.4f  %10.4f  %9.4f\n",
			tp.TaskIdx+1, tp.AvgAccuracy, tp.ForgettingRate, tp.SimHours)
	}

	fmt.Println("\nsignature knowledge retained by client 0:")
	for _, k := range firstClient.Knowledge() {
		fmt.Printf("  task %2d: %5d weights (%d bytes), classes %v\n",
			k.TaskID, k.Store.Len(), k.Store.Bytes(), k.Classes)
	}
}
