// Bandwidth scenario: communication cost under constrained links (the
// Fig. 5/6 regime).
//
// FedKNOW and FedWEIT train the same FC100-style workload; the demo prints
// each method's total traffic and the communication time it implies across
// the paper's 50 KB/s – 10 MB/s bandwidth sweep, showing FedWEIT's
// clients×tasks pool growth versus FedKNOW's flat FedAvg-equivalent cost.
package main

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/tensor"
)

func main() {
	ds, tasks := data.FC100.Build(data.CI, 11)
	seqs := data.Federate(tasks, 5, data.CIAlloc(12))
	build := func(rng *tensor.RNG) *model.Model {
		return model.MustBuild("SixCNN", ds.NumClasses, ds.C, ds.H, ds.W, 1, rng)
	}

	type outcome struct {
		bytes     int64
		commHours float64
	}
	results := map[string]outcome{}
	const refBW = 1024 * 1024
	for _, method := range []string{"FedKNOW", "FedWEIT"} {
		cfg := fed.Config{
			Method: method, Rounds: 2, LocalIters: 2, BatchSize: 8,
			LR: 0.02, LRDecay: 1e-4, NumClasses: ds.NumClasses,
			Bandwidth: refBW, Seed: 11,
		}
		engine := fed.NewEngine(cfg, device.Jetson20(), seqs, build,
			experiments.MethodFactory(method, data.CI))
		res := engine.Run()
		last := res.PerTask[len(res.PerTask)-1]
		results[method] = outcome{last.UpBytes + last.DownBytes, last.CommHours}
	}

	fmt.Printf("total traffic: FedKNOW %d bytes, FedWEIT %d bytes (%.1f× more)\n",
		results["FedKNOW"].bytes, results["FedWEIT"].bytes,
		float64(results["FedWEIT"].bytes)/float64(results["FedKNOW"].bytes))
	fmt.Println("\ncommunication time (hours) by link bandwidth:")
	fmt.Printf("%-10s %-12s %-12s\n", "bandwidth", "FedKNOW", "FedWEIT")
	for _, bw := range device.Fig6Bandwidths {
		scale := refBW / bw
		fmt.Printf("%-10s %-12.5f %-12.5f\n", device.BandwidthLabel(bw),
			results["FedKNOW"].commHours*scale, results["FedWEIT"].commHours*scale)
	}
}
