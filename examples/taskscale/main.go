// Task-scale scenario: forgetting under a long task sequence (the Fig. 7
// regime, shrunk to run in seconds).
//
// Three datasets are merged into one long label space and re-split into
// many small tasks. The demo compares plain FedAvg (no forgetting defence)
// against FedKNOW, printing how the accuracy on the very first task decays
// as later tasks arrive — the catastrophic-forgetting curve the paper's
// gradient integration flattens.
package main

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/tensor"
)

func main() {
	mini, _ := data.MiniImageNet.Build(data.CI, 1)
	cifar, _ := data.CIFAR100.Build(data.CI, 2)
	merged := data.MergeDatasets("Merged", mini, cifar)
	tasks := data.SplitTasks(merged, 8) // 80 CI classes → 8 tasks × 10
	seqs := data.Federate(tasks, 3, data.CIAlloc(3))

	build := func(rng *tensor.RNG) *model.Model {
		return model.MustBuild("SixCNN", merged.NumClasses, merged.C, merged.H, merged.W, 1, rng)
	}
	for _, method := range []string{"FedAvg", "FedKNOW"} {
		cfg := fed.Config{
			Method: method, Rounds: 2, LocalIters: 3, BatchSize: 8,
			LR: 0.02, LRDecay: 1e-4, NumClasses: merged.NumClasses,
			Bandwidth: 1024 * 1024, Seed: 4,
		}
		engine := fed.NewEngine(cfg, device.Jetson20(), seqs, build,
			experiments.MethodFactory(method, data.CI))
		res := engine.Run()
		fmt.Printf("\n%s: accuracy on task 1 as later tasks arrive\n", method)
		for after := 0; after < len(tasks); after++ {
			fmt.Printf("  after task %d: task-1 acc %.4f (avg %.4f, forgetting %.4f)\n",
				after+1, res.Matrix.Get(after, 0),
				res.PerTask[after].AvgAccuracy, res.PerTask[after].ForgettingRate)
		}
	}
}
