package main

import (
	"context"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fed"
	"repro/internal/tensor"
)

// The adversarial leg: the same wire protocol, but one of the four peers is
// hostile. Six scripted attacks a real deployment would face:
//
//   - sign-flip and scaled poisoning: well-formed updates with adversarial
//     values, run naive-vs-robust — the naive weighted mean is dragged far
//     from the truth, the robust server (-aggregator median) holds the
//     honest noise floor.
//   - NaN/Inf garbage: non-finite parameters and weights. The naive server
//     folds them and commits a NaN global; the hardened server
//     (-reject-nonfinite) rejects every one at ingest and commits only the
//     honest aggregate.
//   - stale replays: updates pinned to global version 0, re-sent long after
//     the run passed the staleness bound. Each replay is rejected and
//     counted, but still advances the attacker's upload quota, so the task
//     closes without its seat being lost.
//   - oversized frames: a 4 MB frame against a server whose decoder is
//     capped (-max-frame 64KB). The length prefix is refused before any
//     allocation and the link evicted; the cohort finishes without it.
//   - slow-loris: a peer that uploads everything but never reports, holding
//     its connection open and silent. The wire timeout turns the silence
//     into an eviction and the run completes.
//
// Every scenario asserts both halves: the attack defeats the undefended
// configuration (where one exists) and the defended configuration survives
// it with the attack visible in the server's rejection counters.

const (
	advClients = 4   // three honest peers + one attacker
	advVictim  = 3   // the attacker's client ID
	advDim     = 256 // parameter-vector length
	advRounds  = 2   // uploads per client per task
)

// advTruth is the scenario's ground truth; honest peers send it plus small
// per-client noise.
func advTruth() []float64 {
	rng := tensor.NewRNG(4242)
	truth := make([]float64, advDim)
	for i := range truth {
		truth[i] = rng.Norm()
	}
	return truth
}

// honestParams derives one honest client's update deterministically.
func honestParams(truth []float64, id, round int) []float32 {
	rng := tensor.NewRNG(uint64(1000 + id*100 + round))
	params := make([]float32, len(truth))
	for i := range params {
		params[i] = float32(truth[i] + 0.05*rng.Norm())
	}
	return params
}

// advDeviation is the RMS distance between a committed global and the ground
// truth — the honest cohort's own aggregate sits within ~0.05 of it.
func advDeviation(global []float32, truth []float64) float64 {
	var sum float64
	for i := range global {
		d := float64(global[i]) - truth[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(global)))
}

func allFinite32(xs []float32) bool {
	for _, x := range xs {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return false
		}
	}
	return true
}

func runAdversarial() {
	fmt.Println("\n=== adversarial matrix (scripted hostile peer over TCP) ===")
	truth := advTruth()

	for _, atk := range []struct {
		name  string
		mount func(i int) float32
	}{
		{"sign-flip", func(i int) float32 { return float32(-10 * truth[i]) }},
		{"scaled-poison", func(i int) float32 { return float32(1000 * truth[i]) }},
	} {
		poison := make([]float32, advDim)
		for i := range poison {
			poison[i] = atk.mount(i)
		}
		payload := func(int) []float32 { return poison }
		naive, _ := runScriptedSync(atk.name+"/naive", truth, fed.Config{}, payload)
		robust, _ := runScriptedSync(atk.name+"/robust", truth,
			fed.Config{Robust: "median", RejectNonFinite: true}, payload)
		nd, rd := advDeviation(naive, truth), advDeviation(robust, truth)
		fmt.Printf("  %-14s naive deviation %8.3f, robust (median) %8.3f\n", atk.name+":", nd, rd)
		if nd < 1 {
			fail(fmt.Errorf("%s: naive deviation %.3f — the attack is too weak to prove anything", atk.name, nd))
		}
		if rd > 0.25 {
			fail(fmt.Errorf("%s: robust deviation %.3f, want the honest noise floor", atk.name, rd))
		}
	}

	runGarbageScenario(truth)
	runStaleReplayScenario(truth)
	runOversizedFrameScenario(truth)
	runSlowLorisScenario(truth)
	fmt.Println("adversarial matrix passed: every attack defeated the undefended path and none survived the defended one")
}

// syncScriptedPeer follows the lockstep protocol with scripted parameter
// vectors: RoundStart → Update → GlobalModel per round, RoundEnd at the end.
// The returned slice is a copy of the last broadcast global.
func syncScriptedPeer(addr string, id int, fp uint64, params func(round int) []float32) []float32 {
	tr, err := fed.Dial(addr, id, fp)
	if err != nil {
		fail(fmt.Errorf("adversarial: client %d dial: %w", id, err))
	}
	var last []float32
	for r := 0; r < advRounds; r++ {
		if _, err := tr.Recv(); err != nil { // RoundStart
			fail(fmt.Errorf("adversarial: client %d round start: %w", id, err))
		}
		if err := tr.Send(&fed.Update{ClientID: id, Participating: true, Weight: 1,
			Params: params(r)}); err != nil {
			fail(fmt.Errorf("adversarial: client %d upload: %w", id, err))
		}
		msg, err := tr.Recv()
		if err != nil {
			fail(fmt.Errorf("adversarial: client %d broadcast: %w", id, err))
		}
		gm, ok := msg.(*fed.GlobalModel)
		if !ok {
			fail(fmt.Errorf("adversarial: client %d got %T, want *GlobalModel", id, msg))
		}
		last = append(last[:0], gm.Params...)
	}
	tr.Send(&fed.RoundEnd{ClientID: id, EvalAccs: []float64{0.5}})
	return last
}

// runScriptedSync runs one lockstep federation — honest scripted peers plus
// the attacker payload — and returns the final committed global (as client 0
// received it) and the server, for reading its counters.
func runScriptedSync(name string, truth []float64, knobs fed.Config, attacker func(r int) []float32) ([]float32, *fed.Server) {
	cfg := fed.Config{Method: "adversarial", Rounds: advRounds, Seed: 7, Bandwidth: 1 << 20,
		Robust: knobs.Robust, RejectNonFinite: knobs.RejectNonFinite}
	fp := cfg.Fingerprint("adversarial", name, fmt.Sprint(advClients), "1")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	var final []float32
	for id := 0; id < advClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			params := func(r int) []float32 { return honestParams(truth, id, r) }
			if id == advVictim {
				params = attacker
			}
			got := syncScriptedPeer(addr, id, fp, params)
			if id == 0 {
				final = got
			}
		}(id)
	}
	links, err := fed.Serve(ln, advClients, fp)
	ln.Close()
	if err != nil {
		fail(err)
	}
	srv := fed.NewServer(cfg.ServerConfigFor(advClients, 1), nil, links)
	if _, err := srv.Run(context.Background()); err != nil {
		fail(fmt.Errorf("adversarial %s: %w", name, err))
	}
	wg.Wait()
	return final, srv
}

// runGarbageScenario sends NaN parameters (and an Inf in the second round).
// Undefended, the fold commits a NaN global; with -reject-nonfinite every
// garbage upload is rejected at ingest, counted, and the global stays the
// honest aggregate.
func runGarbageScenario(truth []float64) {
	garbage := func(r int) []float32 {
		params := make([]float32, advDim)
		for i := range params {
			params[i] = float32(math.NaN())
		}
		if r%2 == 1 {
			params[0] = float32(math.Inf(1))
		}
		return params
	}
	naiveGlobal, _ := runScriptedSync("garbage/naive", truth, fed.Config{}, garbage)
	if allFinite32(naiveGlobal) {
		fail(fmt.Errorf("garbage: the undefended server produced a finite global — the attack demonstration is broken"))
	}
	robustGlobal, srv := runScriptedSync("garbage/robust", truth,
		fed.Config{Robust: "median", RejectNonFinite: true}, garbage)
	if !allFinite32(robustGlobal) {
		fail(fmt.Errorf("garbage: a non-finite value leaked through ingest hardening"))
	}
	if dev := advDeviation(robustGlobal, truth); dev > 0.25 {
		fail(fmt.Errorf("garbage: hardened global deviates %.3f from the truth", dev))
	}
	nonFinite, _, _, _ := srv.Rejections()
	if nonFinite != advRounds {
		fail(fmt.Errorf("garbage: %d non-finite rejections recorded, want %d", nonFinite, advRounds))
	}
	fmt.Printf("  %-14s naive global went NaN, hardened server rejected %d garbage uploads\n", "garbage:", nonFinite)
}

// asyncScriptedPeer follows the asynchronous protocol: a receive pump tracks
// the latest committed version, each upload is based on it, and the peer
// waits for its own commit before the next send (so honest staleness stays
// within the bound). baseVersion chooses the claimed base from the live
// version counter — honest peers report it, the replay attacker spins until
// the run is past the staleness bound and then claims version 0. When report
// is false the peer is a slow loris: it never reports and holds the socket
// open until the server hangs up. reportDelay staggers honest reports so
// their links are provably non-idle until after the loris is evicted.
func asyncScriptedPeer(tr fed.Transport, id int, params func(round int) []float32,
	baseVersion func(ver *atomic.Uint64) uint64, report bool, reportDelay time.Duration) {
	if _, err := tr.Recv(); err != nil { // RoundStart
		fail(fmt.Errorf("adversarial: client %d round start: %w", id, err))
	}
	var ver atomic.Uint64
	taskFinal := make(chan struct{}, 1)
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		for {
			msg, err := tr.Recv()
			if err != nil {
				return
			}
			if gm, ok := msg.(*fed.GlobalModel); ok {
				ver.Store(gm.Version)
				if gm.TaskFinal {
					taskFinal <- struct{}{}
					return
				}
			}
		}
	}()
	for r := 0; r < advRounds; r++ {
		before := ver.Load()
		if err := tr.Send(&fed.Update{ClientID: id, Participating: true, Weight: 1,
			BaseVersion: baseVersion(&ver), Params: params(r)}); err != nil {
			return // an evicted attacker's link dies mid-script; the server asserts the rest
		}
		// Wait for this upload's own commit so the next base is fresh; an
		// upload the server rejects commits nothing, so give up quickly.
		for i := 0; i < 100 && ver.Load() <= before; i++ {
			time.Sleep(2 * time.Millisecond)
		}
	}
	select {
	case <-taskFinal:
	case <-pumpDone:
		// The pump also closes this after delivering the final broadcast, so
		// check the channel before concluding the link died (an evicted peer).
		select {
		case <-taskFinal:
		default:
			return
		}
	case <-time.After(30 * time.Second):
		fail(fmt.Errorf("adversarial: client %d never saw the task-final broadcast", id))
	}
	if !report {
		// Slow-loris: stay silent on the open socket until the server's
		// timeout eviction closes it under us.
		<-pumpDone
		for {
			if _, err := tr.Recv(); err != nil {
				return
			}
		}
	}
	time.Sleep(reportDelay)
	tr.Send(&fed.RoundEnd{ClientID: id, EvalAccs: []float64{0.5}})
}

// runStaleReplayScenario: the attacker replays uploads pinned to global
// version 0 after the run has moved past the staleness bound. Each replay
// must be rejected and counted while still advancing the attacker's upload
// quota, so the task closes with the attacker's seat retained.
func runStaleReplayScenario(truth []float64) {
	const maxStale = 3
	cfg := fed.Config{Method: "adversarial", Rounds: advRounds, Seed: 7, Bandwidth: 1 << 20,
		Scheduler: fed.SchedulerAsync,
		Async:     fed.AsyncConfig{CommitEvery: 1, MaxStaleness: maxStale, StalenessAlpha: 0.5},
		Robust:    "median", RejectNonFinite: true}
	fp := cfg.Fingerprint("adversarial", "stale-replay", fmt.Sprint(advClients), "1")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	for id := 0; id < advClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tr, err := fed.Dial(addr, id, fp)
			if err != nil {
				fail(fmt.Errorf("adversarial: client %d dial: %w", id, err))
			}
			base := func(ver *atomic.Uint64) uint64 { return ver.Load() }
			if id == advVictim {
				base = func(ver *atomic.Uint64) uint64 {
					// Replay from version 0, but only once the cohort is past
					// the staleness bound — a replay the bound can't catch
					// would just be a fresh update.
					for ver.Load() <= maxStale {
						time.Sleep(2 * time.Millisecond)
					}
					return 0
				}
			}
			asyncScriptedPeer(tr, id, func(r int) []float32 { return honestParams(truth, id, r) },
				base, true, 0)
		}(id)
	}
	links, err := fed.Serve(ln, advClients, fp)
	ln.Close()
	if err != nil {
		fail(err)
	}
	srv := fed.NewServer(cfg.ServerConfigFor(advClients, 1), nil, links)
	res, err := srv.Run(context.Background())
	if err != nil {
		fail(fmt.Errorf("adversarial stale-replay: %w", err))
	}
	wg.Wait()
	_, stale, evicted, _ := srv.Rejections()
	if stale != advRounds {
		fail(fmt.Errorf("stale-replay: %d replays rejected, want %d", stale, advRounds))
	}
	if evicted != 0 || len(res.DeadAfter) != 0 {
		fail(fmt.Errorf("stale-replay: evictions %d / DeadAfter %v — replays must cost the update, not the seat", evicted, res.DeadAfter))
	}
	fmt.Printf("  %-14s %d stale replays rejected, attacker's seat retained, task closed\n", "stale-replay:", stale)
}

// runOversizedFrameScenario: the attacker ships a ~4 MB frame at a server
// whose decoder is capped at 64 KB. The length prefix is refused before any
// allocation and the link is evicted; the honest cohort finishes the run.
func runOversizedFrameScenario(truth []float64) {
	cfg := fed.Config{Method: "adversarial", Rounds: advRounds, Seed: 7, Bandwidth: 1 << 20,
		Scheduler: fed.SchedulerAsync,
		Async:     fed.AsyncConfig{CommitEvery: 1},
		Robust:    "median", RejectNonFinite: true}
	fp := cfg.Fingerprint("adversarial", "oversized-frame", fmt.Sprint(advClients), "1")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	addr := ln.Addr().String()
	huge := make([]float32, 1<<20) // 4 MB dense payload vs a 64 KB frame cap
	for i := range huge {
		huge[i] = 1
	}
	var wg sync.WaitGroup
	for id := 0; id < advClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tr, err := fed.Dial(addr, id, fp)
			if err != nil {
				fail(fmt.Errorf("adversarial: client %d dial: %w", id, err))
			}
			if id == advVictim {
				if _, err := tr.Recv(); err != nil { // RoundStart
					return
				}
				// The frame bomb. The server cuts the link at the length
				// prefix, so the send and everything after may fail freely.
				tr.Send(&fed.Update{ClientID: id, Participating: true, Weight: 1, Params: huge})
				tr.Recv()
				return
			}
			asyncScriptedPeer(tr, id, func(r int) []float32 { return honestParams(truth, id, r) },
				func(ver *atomic.Uint64) uint64 { return ver.Load() }, true, 0)
		}(id)
	}
	links, err := fed.ServeWith(ln, advClients, fp, fed.WireOptions{MaxFrame: 1 << 16})
	ln.Close()
	if err != nil {
		fail(err)
	}
	srv := fed.NewServer(cfg.ServerConfigFor(advClients, 1), nil, links)
	res, err := srv.Run(context.Background())
	if err != nil {
		fail(fmt.Errorf("adversarial oversized-frame: the run must survive the frame bomb: %w", err))
	}
	wg.Wait()
	if _, ok := res.DeadAfter[advVictim]; !ok {
		fail(fmt.Errorf("oversized-frame: attacker not evicted (DeadAfter %v)", res.DeadAfter))
	}
	if _, _, evicted, _ := srv.Rejections(); evicted < 1 {
		fail(fmt.Errorf("oversized-frame: eviction not counted"))
	}
	if len(res.PerTask) != 1 {
		fail(fmt.Errorf("oversized-frame: run finished %d tasks, want 1", len(res.PerTask)))
	}
	fmt.Printf("  %-14s 4 MB frame refused at the 64 KB cap, link evicted, cohort finished\n", "oversized:")
}

// runSlowLorisScenario: the attacker uploads everything but never reports,
// holding its connection open and silent. The wire timeout turns the silence
// into an eviction and the run completes. Honest peers hold their reports
// back a third of the timeout, so the attacker's idle deadline — armed at
// its last upload — fires first, and the run is over before any honest
// link's deadline could.
func runSlowLorisScenario(truth []float64) {
	const timeout = 1500 * time.Millisecond
	cfg := fed.Config{Method: "adversarial", Rounds: advRounds, Seed: 7, Bandwidth: 1 << 20,
		Scheduler: fed.SchedulerAsync,
		Async:     fed.AsyncConfig{CommitEvery: 1},
		Robust:    "median", RejectNonFinite: true}
	fp := cfg.Fingerprint("adversarial", "slow-loris", fmt.Sprint(advClients), "1")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	for id := 0; id < advClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tr, err := fed.Dial(addr, id, fp)
			if err != nil {
				fail(fmt.Errorf("adversarial: client %d dial: %w", id, err))
			}
			asyncScriptedPeer(tr, id, func(r int) []float32 { return honestParams(truth, id, r) },
				func(ver *atomic.Uint64) uint64 { return ver.Load() }, id != advVictim, timeout/3)
		}(id)
	}
	links, err := fed.ServeWith(ln, advClients, fp, fed.WireOptions{Timeout: timeout})
	ln.Close()
	if err != nil {
		fail(err)
	}
	srv := fed.NewServer(cfg.ServerConfigFor(advClients, 1), nil, links)
	res, err := srv.Run(context.Background())
	if err != nil {
		fail(fmt.Errorf("adversarial slow-loris: the run must survive a silent held-open peer: %w", err))
	}
	wg.Wait()
	if _, ok := res.DeadAfter[advVictim]; !ok {
		fail(fmt.Errorf("slow-loris: silent attacker not evicted (DeadAfter %v)", res.DeadAfter))
	}
	if len(res.PerTask) != 1 {
		fail(fmt.Errorf("slow-loris: run finished %d tasks, want 1", len(res.PerTask)))
	}
	fmt.Printf("  %-14s silent peer evicted by the %s wire timeout, run completed\n", "slow-loris:", timeout)
}
