// Distributed walkthrough: the same FedKNOW federation run three times —
// in-process over the loopback transport, over real localhost TCP with the
// wire transport (one goroutine per client endpoint, exactly the code a
// separate client process would run), and over TCP again with opt-in fp16
// compression — with a field-by-field comparison showing the lossless wire
// run is bit-identical to loopback, and a bytes-on-the-wire comparison
// showing what the compressed run saves.
//
// This is the protocol seam in action: the server never sees data, models or
// strategies, only typed round messages (RoundStart → Update → GlobalModel →
// RoundEnd), so the simulator is just one binding of a real protocol.
//
// Run with -short for a CI-sized configuration.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/tensor"
)

func main() {
	short := flag.Bool("short", false, "shrink the run for CI")
	flag.Parse()

	// 1. Shared job definition. Every process of a wire run derives this
	// independently from the same knobs — that is all the coordination the
	// protocol needs.
	const seed = 42
	numClients, numTasks, rounds := 3, 4, 3
	if *short {
		numTasks, rounds = 2, 2
	}
	ds, tasks := data.CIFAR100.Build(data.CI, seed)
	tasks = tasks[:numTasks]
	seqs := data.Federate(tasks, numClients, data.CIAlloc(seed+1))
	cluster := device.Jetson20()
	cfg := fed.Config{
		Method: "FedKNOW", Rounds: rounds, LocalIters: 3, BatchSize: 8,
		LR: 0.02, LRDecay: 1e-4, NumClasses: ds.NumClasses,
		Bandwidth: 1024 * 1024, Seed: seed, DropoutProb: 0.2,
	}
	build := func(rng *tensor.RNG) *model.Model {
		return model.MustBuild("SixCNN", ds.NumClasses, ds.C, ds.H, ds.W, 1, rng)
	}
	factory := core.Factory(core.Options{Rho: 0.10, K: 3, FinetuneIters: 1, SelectEvery: 3})
	// The handshake digest covers Config plus the job knobs Config can't see.
	fingerprint := cfg.Fingerprint("CIFAR100", "SixCNN",
		fmt.Sprint(numClients), fmt.Sprint(numTasks))

	// 2. Reference: the in-process loopback engine.
	fmt.Println("=== loopback run (in-process) ===")
	engine := fed.NewEngine(cfg, cluster, seqs, build, factory)
	engine.SetObserver(fed.ObserverFuncs{Task: printTask})
	loop := engine.Run()

	// 3. The same federation over localhost TCP. The server schedules
	// rounds and aggregates; each client endpoint dials in, identifies
	// itself, and follows the round lifecycle.
	fmt.Println("\n=== wire run (server + clients over TCP) ===")
	wire, lossless := runWire(cfg, numClients, numTasks, cluster, seqs, build, factory,
		fingerprint, fed.WireOptions{}, true)

	// 4. The acceptance bar: both transports produce the identical Result.
	fmt.Println("\n=== comparison ===")
	mismatches := 0
	for i := range loop.PerTask {
		if loop.PerTask[i] != wire.PerTask[i] {
			fmt.Printf("task %d differs:\n  loopback %+v\n  wire     %+v\n",
				i+1, loop.PerTask[i], wire.PerTask[i])
			mismatches++
		}
	}
	for i := 0; i < numTasks; i++ {
		for j := 0; j <= i; j++ {
			if loop.Matrix.Get(i, j) != wire.Matrix.Get(i, j) {
				fmt.Printf("accuracy matrix [%d][%d] differs\n", i, j)
				mismatches++
			}
		}
	}
	if mismatches > 0 {
		fail(fmt.Errorf("%d mismatches between loopback and wire", mismatches))
	}
	fmt.Println("loopback and wire runs are identical, bit for bit")

	// 5. Opt-in compression: the identical job with fp16 values on the wire.
	// Lossy encodings change results (slightly), so they are negotiated in
	// the handshake — both sides must opt in — and folded into the job
	// fingerprint here. What they buy is bytes: the measured traffic below
	// is about half of the lossless run's.
	fmt.Println("\n=== wire run with -compress fp16 ===")
	f16opts := fed.WireOptions{Compression: fed.Compression{Quant: fed.QuantF16}}
	f16print := cfg.Fingerprint("CIFAR100", "SixCNN",
		fmt.Sprint(numClients), fmt.Sprint(numTasks), f16opts.Compression.Quant.String())
	wireF16, compressed := runWire(cfg, numClients, numTasks, cluster, seqs, build, factory,
		f16print, f16opts, false)
	for i := range wireF16.PerTask {
		fmt.Printf("task %d: avg-acc %.4f (lossless %.4f)\n", i+1,
			wireF16.PerTask[i].AvgAccuracy, wire.PerTask[i].AvgAccuracy)
	}
	fmt.Printf("measured wire traffic: lossless %.2f MB, fp16 %.2f MB (%.2fx smaller)\n",
		float64(lossless)/(1<<20), float64(compressed)/(1<<20),
		float64(lossless)/float64(compressed))
}

// runWire executes one TCP federation and returns the result plus the
// measured bytes on the wire (both directions, summed over the server's
// links).
func runWire(cfg fed.Config, numClients, numTasks int, cluster *device.Cluster,
	seqs [][]data.ClientTask, build func(*tensor.RNG) *model.Model, factory fed.Factory,
	fingerprint uint64, opts fed.WireOptions, verbose bool) (*fed.Result, int64) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	addr := ln.Addr().String()
	fmt.Printf("server listening on %s\n", addr)

	var wg sync.WaitGroup
	for id := 0; id < numClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			t, err := fed.DialWith(addr, id, fingerprint, opts)
			if err != nil {
				fail(fmt.Errorf("client %d dial: %w", id, err))
			}
			c := fed.NewWireClient(cfg, id, numClients, cluster.Devices[id%cluster.Size()],
				seqs[id], build, factory)
			if err := c.Run(context.Background(), t); err != nil {
				fail(fmt.Errorf("client %d: %w", id, err))
			}
		}(id)
	}
	links, err := fed.ServeWith(ln, numClients, fingerprint, opts)
	ln.Close()
	if err != nil {
		fail(err)
	}
	srv := fed.NewServer(cfg.ServerConfigFor(numClients, numTasks), nil, links)
	obs := fed.ObserverFuncs{Task: printTask}
	if verbose {
		obs.Round = func(s fed.RoundStats) {
			fmt.Printf("  round %d.%d: %d participants, %.1f KB up\n",
				s.TaskIdx+1, s.Round+1, s.Participants, float64(s.UpBytes)/1024)
		}
	}
	srv.SetObserver(obs)
	res, err := srv.Run(context.Background())
	if err != nil {
		fail(err)
	}
	wg.Wait()
	var total int64
	for _, l := range links {
		if w, ok := l.(*fed.WireTransport); ok {
			total += w.BytesSent() + w.BytesRecv()
		}
	}
	return res, total
}

func printTask(tp fed.TaskPoint) {
	fmt.Printf("task %d: avg-acc %.4f, forgetting %.4f, sim-hours %.4f\n",
		tp.TaskIdx+1, tp.AvgAccuracy, tp.ForgettingRate, tp.SimHours)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
