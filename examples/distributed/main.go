// Distributed walkthrough: the same FedKNOW federation run four times —
// in-process over the loopback transport, over real localhost TCP with the
// wire transport (one goroutine per client endpoint, exactly the code a
// separate client process would run), over TCP again with opt-in fp16
// compression, and then two chaos legs: the asynchronous scheduler with one
// client's TCP connection killed mid-task, which rejoins through the
// catch-up handshake and finishes the run with no seat lost; and a
// server-kill leg, where the server itself dies mid-task and a replacement
// is rebuilt from its newest durable snapshot on the same address — the
// whole cohort redials through the rejoin path and the run completes with
// every task reported exactly once. The first three legs end with a
// field-by-field comparison showing the lossless wire run is bit-identical
// to loopback and a bytes-on-the-wire comparison showing what the
// compressed run saves; the chaos legs assert the run completes with the
// cohort restored.
//
// This is the protocol seam in action: the server never sees data, models or
// strategies, only typed round messages (RoundStart → Update → GlobalModel →
// RoundEnd), so the simulator is just one binding of a real protocol.
//
// An elastic-churn leg exercises v5 membership end to end: the server starts
// with a partial cohort (-min-cohort style), a seatless client enrolls
// mid-run through the join handshake and is assigned the open seat, the
// server is then killed and restored from a snapshot carrying the *grown*
// seat book, a founder retires its seat with a clean Leave after its first
// task, and another founder's connection is killed and healed through the
// rejoin path — all while tasks progress, with the run asserted to complete
// every task and the final seat book matching the scripted churn exactly.
//
// A final adversarial leg turns one peer hostile: scripted Byzantine attacks
// (sign-flip and scaled poisoning, NaN/Inf garbage, stale replays, oversized
// frames, slow-loris silence) run naive-vs-defended, asserting each attack
// defeats the undefended server and is absorbed — and counted — by the
// robust aggregation rules, ingest hardening, frame cap and wire timeout.
//
// Run with -short for a CI-sized configuration, -leg rejoin to run only the
// kill-and-rejoin chaos leg, -leg crash to run only the server-kill
// crash-restart leg, -leg churn to run only the elastic-membership leg, and
// -leg adversarial to run only the hostile-peer matrix (CI runs the chaos,
// churn and adversarial legs under the race detector).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/tensor"
)

func main() {
	short := flag.Bool("short", false, "shrink the run for CI")
	leg := flag.String("leg", "all", "all, rejoin (kill-and-rejoin only), crash (server-kill restart only), churn (elastic join/leave only), or adversarial (hostile-peer matrix only)")
	flag.Parse()
	if *leg != "all" && *leg != "rejoin" && *leg != "crash" && *leg != "churn" && *leg != "adversarial" {
		fail(fmt.Errorf("unknown -leg %q (all, rejoin, crash, churn, adversarial)", *leg))
	}
	if *leg == "adversarial" {
		runAdversarial()
		return
	}

	// 1. Shared job definition. Every process of a wire run derives this
	// independently from the same knobs — that is all the coordination the
	// protocol needs.
	const seed = 42
	numClients, numTasks, rounds := 3, 4, 3
	if *short {
		numTasks, rounds = 2, 2
	}
	ds, tasks := data.CIFAR100.Build(data.CI, seed)
	tasks = tasks[:numTasks]
	seqs := data.Federate(tasks, numClients, data.CIAlloc(seed+1))
	cluster := device.Jetson20()
	cfg := fed.Config{
		Method: "FedKNOW", Rounds: rounds, LocalIters: 3, BatchSize: 8,
		LR: 0.02, LRDecay: 1e-4, NumClasses: ds.NumClasses,
		Bandwidth: 1024 * 1024, Seed: seed, DropoutProb: 0.2,
	}
	build := func(rng *tensor.RNG) *model.Model {
		return model.MustBuild("SixCNN", ds.NumClasses, ds.C, ds.H, ds.W, 1, rng)
	}
	factory := core.Factory(core.Options{Rho: 0.10, K: 3, FinetuneIters: 1, SelectEvery: 3})
	// The handshake digest covers Config plus the job knobs Config can't see.
	fingerprint := cfg.Fingerprint("CIFAR100", "SixCNN",
		fmt.Sprint(numClients), fmt.Sprint(numTasks))

	if *leg == "rejoin" {
		runKillRejoin(cfg, numClients, numTasks, cluster, seqs, build, factory)
		return
	}
	if *leg == "crash" {
		runCrashRestart(cfg, numClients, numTasks, cluster, seqs, build, factory)
		return
	}
	if *leg == "churn" {
		runElasticChurn(cfg, numClients, numTasks, cluster, seqs, build, factory)
		return
	}

	// 2. Reference: the in-process loopback engine.
	fmt.Println("=== loopback run (in-process) ===")
	engine := fed.NewEngine(cfg, cluster, seqs, build, factory)
	engine.SetObserver(fed.ObserverFuncs{Task: printTask})
	loop := engine.Run()

	// 3. The same federation over localhost TCP. The server schedules
	// rounds and aggregates; each client endpoint dials in, identifies
	// itself, and follows the round lifecycle.
	fmt.Println("\n=== wire run (server + clients over TCP) ===")
	wire, lossless := runWire(cfg, numClients, numTasks, cluster, seqs, build, factory,
		fingerprint, fed.WireOptions{}, true)

	// 4. The acceptance bar: both transports produce the identical Result.
	fmt.Println("\n=== comparison ===")
	mismatches := 0
	for i := range loop.PerTask {
		if loop.PerTask[i] != wire.PerTask[i] {
			fmt.Printf("task %d differs:\n  loopback %+v\n  wire     %+v\n",
				i+1, loop.PerTask[i], wire.PerTask[i])
			mismatches++
		}
	}
	for i := 0; i < numTasks; i++ {
		for j := 0; j <= i; j++ {
			if loop.Matrix.Get(i, j) != wire.Matrix.Get(i, j) {
				fmt.Printf("accuracy matrix [%d][%d] differs\n", i, j)
				mismatches++
			}
		}
	}
	if mismatches > 0 {
		fail(fmt.Errorf("%d mismatches between loopback and wire", mismatches))
	}
	fmt.Println("loopback and wire runs are identical, bit for bit")

	// 5. Opt-in compression: the identical job with fp16 values on the wire.
	// Lossy encodings change results (slightly), so they are negotiated in
	// the handshake — both sides must opt in — and folded into the job
	// fingerprint here. What they buy is bytes: the measured traffic below
	// is about half of the lossless run's.
	fmt.Println("\n=== wire run with -compress fp16 ===")
	f16opts := fed.WireOptions{Compression: fed.Compression{Quant: fed.QuantF16}}
	f16print := cfg.Fingerprint("CIFAR100", "SixCNN",
		fmt.Sprint(numClients), fmt.Sprint(numTasks), f16opts.Compression.Quant.String())
	wireF16, compressed := runWire(cfg, numClients, numTasks, cluster, seqs, build, factory,
		f16print, f16opts, false)
	for i := range wireF16.PerTask {
		fmt.Printf("task %d: avg-acc %.4f (lossless %.4f)\n", i+1,
			wireF16.PerTask[i].AvgAccuracy, wire.PerTask[i].AvgAccuracy)
	}
	fmt.Printf("measured wire traffic: lossless %.2f MB, fp16 %.2f MB (%.2fx smaller)\n",
		float64(lossless)/(1<<20), float64(compressed)/(1<<20),
		float64(lossless)/float64(compressed))

	// 6. Chaos: kill a client's connection mid-task and watch it rejoin.
	runKillRejoin(cfg, numClients, numTasks, cluster, seqs, build, factory)

	// 7. Chaos, harder: kill the server itself mid-task and restart it from
	// its newest durable snapshot.
	runCrashRestart(cfg, numClients, numTasks, cluster, seqs, build, factory)

	// 8. Elastic: a partial cohort grows by a mid-run join, survives a
	// server crash with the grown seat book, shrinks by a clean leave, and
	// heals a killed connection — all in one run.
	runElasticChurn(cfg, numClients, numTasks, cluster, seqs, build, factory)

	// 9. Hostile: the adversarial matrix — one scripted Byzantine peer per
	// scenario against the server's robust-aggregation and ingest defences.
	runAdversarial()
}

// runKillRejoin is the churn leg: the same job under the asynchronous
// scheduler, with the last client connected through a kill-switch proxy.
// After the first global commit the proxy severs that client's connection —
// the server evicts the seat but keeps its state, the client's RunReconnect
// loop redials with a rejoin hello (ID, job fingerprint, last-seen global
// version), and the server re-admits it with a Catchup: the current task,
// how many of its uploads already landed, and the current versioned global.
// The run must complete every task with the cohort fully restored.
func runKillRejoin(cfg fed.Config, numClients, numTasks int, cluster *device.Cluster,
	seqs [][]data.ClientTask, build func(*tensor.RNG) *model.Model, factory fed.Factory) {
	fmt.Println("\n=== wire run with kill-and-rejoin (async scheduler) ===")
	acfg := cfg
	acfg.DropoutProb = 0 // async models churn as eviction, not round dropout
	acfg.Scheduler = fed.SchedulerAsync
	acfg.Async = fed.AsyncConfig{CommitEvery: 1, StalenessAlpha: 0.5}
	aprint := acfg.Fingerprint("CIFAR100", "SixCNN",
		fmt.Sprint(numClients), fmt.Sprint(numTasks))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	proxy, err := newKillProxy(ln.Addr().String())
	if err != nil {
		fail(err)
	}
	defer proxy.Close()
	victim := numClients - 1
	fmt.Printf("server on %s; client %d routed through kill proxy %s\n",
		ln.Addr(), victim, proxy.addr())

	var wg sync.WaitGroup
	for id := 0; id < numClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := fed.NewWireClient(acfg, id, numClients, cluster.Devices[id%cluster.Size()],
				seqs[id], build, factory)
			if id == victim {
				err := c.RunReconnect(context.Background(), fed.Reconnect{
					Addr: proxy.addr(), Fingerprint: aprint, Attempts: 60,
					BaseDelay: 20 * time.Millisecond, MaxDelay: 500 * time.Millisecond,
				})
				if err != nil {
					fail(fmt.Errorf("reconnecting client %d: %w", id, err))
				}
				return
			}
			t, err := fed.Dial(ln.Addr().String(), id, aprint)
			if err != nil {
				fail(fmt.Errorf("client %d dial: %w", id, err))
			}
			if err := c.Run(context.Background(), t); err != nil {
				fail(fmt.Errorf("client %d: %w", id, err))
			}
		}(id)
	}

	links, acceptor, err := fed.ServeRejoin(ln, numClients, aprint)
	if err != nil {
		fail(err)
	}
	srv := fed.NewServer(acfg.ServerConfigFor(numClients, numTasks), nil, links)
	srv.SetRejoins(acceptor.Rejoins())
	var kill sync.Once
	srv.SetObserver(fed.ObserverFuncs{
		Round: func(s fed.RoundStats) {
			if s.Participants > 0 {
				kill.Do(func() {
					fmt.Printf("  >> killing client %d's connection after commit v%d\n", victim, s.Version)
					proxy.Kill()
				})
			}
		},
		Task: printTask,
	})
	res, err := srv.Run(context.Background())
	if err != nil {
		fail(fmt.Errorf("server must survive the kill: %w", err))
	}
	wg.Wait()
	acceptor.Close()

	// The churn acceptance bar: every task finished, the cohort restored,
	// the rejoined client's per-task reports in the books.
	if len(res.PerTask) != numTasks {
		fail(fmt.Errorf("run finished %d of %d tasks after the kill", len(res.PerTask), numTasks))
	}
	if alive := srv.AliveClients(); alive != numClients {
		fail(fmt.Errorf("%d of %d clients alive: the killed client did not rejoin", alive, numClients))
	}
	if len(res.DeadAfter) != 0 {
		fail(fmt.Errorf("DeadAfter = %v, want empty after rejoin", res.DeadAfter))
	}
	for i, tp := range res.PerTask {
		if tp.AvgAccuracy <= 0 {
			fail(fmt.Errorf("task %d has no recorded accuracy", i+1))
		}
	}
	sent, recv := srv.WireTraffic()
	fmt.Printf("client %d was killed mid-task, rejoined, and the run completed all %d tasks\n",
		victim, numTasks)
	fmt.Printf("measured wire traffic incl. the retired link: %.2f MB sent, %.2f MB received\n",
		float64(sent)/(1<<20), float64(recv)/(1<<20))
}

// runCrashRestart is the server-kill leg: the same asynchronous job, with
// durable snapshots on (-snapshot-dir in the CLI; a checkpoint.Store here).
// At the first commit of the second task the server "crashes" — its run is
// cancelled and its listener closed, exactly what kill -9 leaves behind — and
// a replacement process is simulated: reopen the store, load the newest
// snapshot, rebuild the server from it on the same address, and accept
// rejoins. Every client runs under RunReconnect, so the whole cohort redials
// with the catch-up handshake and retrains at most the uploads the crash cut
// had not yet seen. The bar: the run completes, every task is reported
// exactly once across the process boundary, and no seat is lost.
func runCrashRestart(cfg fed.Config, numClients, numTasks int, cluster *device.Cluster,
	seqs [][]data.ClientTask, build func(*tensor.RNG) *model.Model, factory fed.Factory) {
	fmt.Println("\n=== wire run with server kill and snapshot restart (async scheduler) ===")
	acfg := cfg
	acfg.DropoutProb = 0
	acfg.Scheduler = fed.SchedulerAsync
	acfg.Async = fed.AsyncConfig{CommitEvery: 1, StalenessAlpha: 0.5}
	aprint := acfg.Fingerprint("CIFAR100", "SixCNN",
		fmt.Sprint(numClients), fmt.Sprint(numTasks))

	dir, err := os.MkdirTemp("", "fedknow-snap-")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	store, err := checkpoint.OpenStore(dir, 2, aprint)
	if err != nil {
		fail(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	addr := ln.Addr().String()
	fmt.Printf("server on %s, snapshots in %s\n", addr, dir)

	var wg sync.WaitGroup
	for id := 0; id < numClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := fed.NewWireClient(acfg, id, numClients, cluster.Devices[id%cluster.Size()],
				seqs[id], build, factory)
			err := c.RunReconnect(context.Background(), fed.Reconnect{
				Addr: addr, Fingerprint: aprint, Attempts: 400,
				BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond,
			})
			if err != nil {
				fail(fmt.Errorf("reconnecting client %d: %w", id, err))
			}
		}(id)
	}

	// Incarnation one: snapshots on, killed at the first commit of task 2.
	links, acceptor, err := fed.ServeRejoin(ln, numClients, aprint)
	if err != nil {
		fail(err)
	}
	srv := fed.NewServer(acfg.ServerConfigFor(numClients, numTasks), nil, links)
	srv.SetRejoins(acceptor.Rejoins())
	srv.SetSnapshots(store)
	crashCtx, crash := context.WithCancel(context.Background())
	var kill sync.Once
	srv.SetObserver(fed.ObserverFuncs{
		Round: func(s fed.RoundStats) {
			if s.TaskIdx >= 1 && s.Participants > 0 {
				kill.Do(func() {
					fmt.Printf("  >> killing the server after commit v%d of task %d\n", s.Version, s.TaskIdx+1)
					crash()
				})
			}
		},
		Task: printTask,
	})
	if _, err := srv.Run(crashCtx); err == nil {
		fail(fmt.Errorf("killed run completed instead of returning its cancellation"))
	}
	acceptor.Close()

	// Incarnation two: rebind the same address the clients are redialing,
	// reopen the store like a fresh process, restore, and accept rejoins.
	var ln2 net.Listener
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(10 * time.Millisecond) {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fail(fmt.Errorf("rebinding %s: %w", addr, err))
		}
	}
	store2, err := checkpoint.OpenStore(dir, 2, aprint)
	if err != nil {
		fail(err)
	}
	snap, err := store2.Load()
	if err != nil {
		fail(fmt.Errorf("loading the crash cut: %w", err))
	}
	if snap == nil {
		fail(fmt.Errorf("no snapshot on disk after the kill"))
	}
	fmt.Printf("  >> restored snapshot %d: resuming at task %d/%d, global version %d\n",
		snap.Seq, snap.TaskIdx+1, numTasks, snap.Version)
	srv2, err := fed.NewServerFromSnapshot(acfg.ServerConfigFor(numClients, numTasks), nil, snap)
	if err != nil {
		fail(fmt.Errorf("restore: %w", err))
	}
	acceptor2 := fed.AcceptRejoins(ln2, numClients, aprint, fed.WireOptions{})
	defer acceptor2.Close()
	srv2.SetRejoins(acceptor2.Rejoins())
	srv2.SetSnapshots(store2)
	srv2.SetObserver(fed.ObserverFuncs{Task: printTask})
	res, err := srv2.Run(context.Background())
	if err != nil {
		fail(fmt.Errorf("restored server must complete the run: %w", err))
	}
	wg.Wait()

	// The crash acceptance bar: all tasks exactly once, cohort restored,
	// books intact across the process boundary.
	if len(res.PerTask) != numTasks {
		fail(fmt.Errorf("run finished %d of %d tasks across the restart", len(res.PerTask), numTasks))
	}
	for i, tp := range res.PerTask {
		if tp.TaskIdx != i {
			fail(fmt.Errorf("task point %d reports task %d: duplicated or skipped across the restart", i, tp.TaskIdx))
		}
		if tp.AvgAccuracy <= 0 {
			fail(fmt.Errorf("task %d has no recorded accuracy", i+1))
		}
	}
	if alive := srv2.AliveClients(); alive != numClients {
		fail(fmt.Errorf("%d of %d clients alive: the cohort did not rejoin the restarted server", alive, numClients))
	}
	if len(res.DeadAfter) != 0 {
		fail(fmt.Errorf("DeadAfter = %v, want empty after the restart", res.DeadAfter))
	}
	sent, recv := srv2.WireTraffic()
	fmt.Printf("server was killed mid-task, restarted from its snapshot, and the run completed all %d tasks\n", numTasks)
	fmt.Printf("measured wire traffic incl. the pre-crash carry: %.2f MB sent, %.2f MB received\n",
		float64(sent)/(1<<20), float64(recv)/(1<<20))
}

// killProxy is a minimal TCP proxy with a kill switch: Kill severs every
// active connection pair (the stand-in for a network partition or crashed
// NAT) while the listener keeps accepting, so the victim can reconnect
// through it.
type killProxy struct {
	ln       net.Listener
	upstream string
	mu       sync.Mutex
	conns    []net.Conn
	closed   bool
}

func newKillProxy(upstream string) (*killProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &killProxy{ln: ln, upstream: upstream}
	go p.loop()
	return p, nil
}

func (p *killProxy) addr() string { return p.ln.Addr().String() }

func (p *killProxy) loop() {
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.upstream)
		if err != nil {
			down.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			down.Close()
			up.Close()
			return
		}
		p.conns = append(p.conns, down, up)
		p.mu.Unlock()
		pipe := func(dst, src net.Conn) {
			io.Copy(dst, src)
			dst.Close()
			src.Close()
		}
		go pipe(up, down)
		go pipe(down, up)
	}
}

func (p *killProxy) Kill() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (p *killProxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.Kill()
}

// runWire executes one TCP federation and returns the result plus the
// measured bytes on the wire (both directions, summed over the server's
// links).
func runWire(cfg fed.Config, numClients, numTasks int, cluster *device.Cluster,
	seqs [][]data.ClientTask, build func(*tensor.RNG) *model.Model, factory fed.Factory,
	fingerprint uint64, opts fed.WireOptions, verbose bool) (*fed.Result, int64) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	addr := ln.Addr().String()
	fmt.Printf("server listening on %s\n", addr)

	var wg sync.WaitGroup
	for id := 0; id < numClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			t, err := fed.DialWith(addr, id, fingerprint, opts)
			if err != nil {
				fail(fmt.Errorf("client %d dial: %w", id, err))
			}
			c := fed.NewWireClient(cfg, id, numClients, cluster.Devices[id%cluster.Size()],
				seqs[id], build, factory)
			if err := c.Run(context.Background(), t); err != nil {
				fail(fmt.Errorf("client %d: %w", id, err))
			}
		}(id)
	}
	links, err := fed.ServeWith(ln, numClients, fingerprint, opts)
	ln.Close()
	if err != nil {
		fail(err)
	}
	srv := fed.NewServer(cfg.ServerConfigFor(numClients, numTasks), nil, links)
	obs := fed.ObserverFuncs{Task: printTask}
	if verbose {
		obs.Round = func(s fed.RoundStats) {
			fmt.Printf("  round %d.%d: %d participants, %.1f KB up\n",
				s.TaskIdx+1, s.Round+1, s.Participants, float64(s.UpBytes)/1024)
		}
	}
	srv.SetObserver(obs)
	res, err := srv.Run(context.Background())
	if err != nil {
		fail(err)
	}
	wg.Wait()
	var total int64
	for _, l := range links {
		if w, ok := l.(*fed.WireTransport); ok {
			total += w.BytesSent() + w.BytesRecv()
		}
	}
	return res, total
}

func printTask(tp fed.TaskPoint) {
	fmt.Printf("task %d: avg-acc %.4f, forgetting %.4f, sim-hours %.4f\n",
		tp.TaskIdx+1, tp.AvgAccuracy, tp.ForgettingRate, tp.SimHours)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
