// The elastic-churn leg: every kind of v5 membership change in a single run
// over real TCP, composed with the crash-only server. See runElasticChurn.
package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/tensor"
)

// runElasticChurn is the elastic-membership leg: v5 join, clean leave, a
// killed-and-rejoined client, and a server crash-restart — all in one run
// over real TCP, while tasks keep progressing. The server opens with a
// fresh cohort one seat short of the job's seat space (the -min-cohort
// shape) and a seat-book cap at the full space (-max-cohort). The script:
//
//  1. After the first commit a seatless client enrolls through the join
//     handshake; the server assigns it the open seat and replies with a
//     catch-up.
//  2. At the next commit of the same task — with the joiner in the grown
//     seat book — the server itself is killed and a replacement restores
//     from its newest durable snapshot on the same address: the v3 cut must
//     carry the *dynamic* book, so the joiner rejoins its assigned seat
//     like any founder. (The ordering is structural, not timed: a clean
//     leave can only fire after its task completes, which happens on the
//     restored server, so the crash never races the retirement.)
//  3. One founder retires its seat with a clean Leave after reporting its
//     first task.
//  4. At the first commit of the next task the other founder's connection
//     is killed and healed through the ordinary rejoin path.
//
// The bar: the run completes every task while the cohort changes under it
// and the books show exactly the scripted churn — the leave is a retirement
// (never an eviction or a death), the kill is exactly one eviction healed
// by a rejoin, nothing is refused, and the final seat book holds the joiner
// and the rejoined founder alive with the leaver retired.
func runElasticChurn(cfg fed.Config, numClients, numTasks int, cluster *device.Cluster,
	seqs [][]data.ClientTask, build func(*tensor.RNG) *model.Model, factory fed.Factory) {
	fmt.Println("\n=== wire run with elastic churn: join, leave, kill-and-rejoin, server crash (async scheduler) ===")
	acfg := cfg
	acfg.DropoutProb = 0
	acfg.Scheduler = fed.SchedulerAsync
	acfg.Async = fed.AsyncConfig{CommitEvery: 1, StalenessAlpha: 0.5}
	aprint := acfg.Fingerprint("CIFAR100", "SixCNN",
		fmt.Sprint(numClients), fmt.Sprint(numTasks))

	founders := numClients - 1 // the last seat stays open for the mid-run joiner
	victim, leaver := 0, 1
	dir, err := os.MkdirTemp("", "fedknow-churn-snap-")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	store, err := checkpoint.OpenStore(dir, 2, aprint)
	if err != nil {
		fail(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	addr := ln.Addr().String()
	proxy, err := newKillProxy(addr)
	if err != nil {
		fail(err)
	}
	defer proxy.Close()
	fmt.Printf("server on %s: %d founders (seat %d through kill proxy %s), seat book capped at %d, snapshots in %s\n",
		addr, founders, victim, proxy.addr(), numClients, dir)

	joinNow := make(chan struct{}) // closed at the first commit: enroll the joiner
	joined := make(chan struct{})  // closed once the join handshake lands
	var wg sync.WaitGroup
	for id := 0; id < founders; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := fed.NewWireClient(acfg, id, numClients, cluster.Devices[id%cluster.Size()],
				seqs[id], build, factory)
			// The leaver departs the elastic way: a Leave frame after its
			// first task's report, not a dropped connection. Every client
			// runs under the reconnect loop — the server crash severs all
			// links, and the whole cohort must redial the replacement.
			if id == leaver {
				c.SetLeaveAfterTask(0)
			}
			dial := addr
			if id == victim {
				dial = proxy.addr()
			}
			err := c.RunReconnect(context.Background(), fed.Reconnect{
				Addr: dial, Fingerprint: aprint, Attempts: 400,
				BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond,
			})
			if err != nil {
				fail(fmt.Errorf("reconnecting founder %d: %w", id, err))
			}
		}(id)
	}
	// The joiner: no seat, no shard — until the server's seat-assignment
	// hello tells it which seat (and therefore which deterministic shard and
	// model) it is. It then resumes from the catch-up like a rejoined client,
	// and heals the later server crash through the same reconnect loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-joinNow
		t, seat, cu, err := fed.DialJoinWith(addr, aprint, fed.WireOptions{})
		if err != nil {
			fail(fmt.Errorf("join handshake: %w", err))
		}
		if seat != founders {
			fail(fmt.Errorf("server assigned seat %d to the joiner, want the open seat %d", seat, founders))
		}
		fmt.Printf("  >> joiner admitted as seat %d (catch-up: task %d, v%d)\n",
			seat, cu.TaskIdx+1, cu.Version)
		close(joined)
		c := fed.NewWireClient(acfg, seat, numClients, cluster.Devices[seat%cluster.Size()],
			seqs[seat], build, factory)
		if err := c.ResumeReconnect(context.Background(), fed.Reconnect{
			Addr: addr, Fingerprint: aprint, Attempts: 400,
			BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond,
		}, t, cu); err != nil {
			fail(fmt.Errorf("joined seat %d: %w", seat, err))
		}
	}()

	// Incarnation one: a partial fresh cohort, the listener held open for
	// join and rejoin hellos, snapshots on, killed mid-task once the joiner
	// is in the book.
	links, err := fed.ServeWith(ln, founders, aprint, fed.WireOptions{})
	if err != nil {
		fail(err)
	}
	acceptor := fed.AcceptRejoins(ln, numClients, aprint, fed.WireOptions{})
	scfg := acfg.ServerConfigFor(founders, numTasks)
	scfg.MaxCohort = numClients
	srv := fed.NewServer(scfg, nil, links)
	srv.SetRejoins(acceptor.Rejoins())
	srv.SetJoins(acceptor.Joins())
	srv.SetSnapshots(store)
	crashCtx, crash := context.WithCancel(context.Background())
	var open, kill sync.Once
	srv.SetObserver(fed.ObserverFuncs{
		Round: func(s fed.RoundStats) {
			if s.Participants > 0 {
				open.Do(func() {
					fmt.Printf("  >> run is live (commit v%d): enrolling the joiner\n", s.Version)
					close(joinNow)
				})
			}
			select {
			case <-joined:
			default:
				return
			}
			if s.TaskIdx == 0 && s.Participants > 0 {
				kill.Do(func() {
					fmt.Printf("  >> killing the server after commit v%d, with the joiner in the book\n", s.Version)
					crash()
				})
			}
		},
		Task: printTask,
	})
	if _, err := srv.Run(crashCtx); err == nil {
		fail(fmt.Errorf("killed run completed instead of returning its cancellation"))
	}
	acceptor.Close()

	// Incarnation two: rebind the same address the cohort is redialing,
	// restore the grown seat book from the cut, and run to completion —
	// through the leave and the victim's kill.
	var ln2 net.Listener
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(10 * time.Millisecond) {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fail(fmt.Errorf("rebinding %s: %w", addr, err))
		}
	}
	store2, err := checkpoint.OpenStore(dir, 2, aprint)
	if err != nil {
		fail(err)
	}
	snap, err := store2.Load()
	if err != nil {
		fail(fmt.Errorf("loading the crash cut: %w", err))
	}
	if snap == nil {
		fail(fmt.Errorf("no snapshot on disk after the kill"))
	}
	if got := len(snap.Seats); got != numClients {
		fail(fmt.Errorf("the crash cut carries %d seats, want the grown book of %d (the join must survive the crash)",
			got, numClients))
	}
	fmt.Printf("  >> restored snapshot %d: %d seats in the book, resuming at task %d/%d, v%d\n",
		snap.Seq, len(snap.Seats), snap.TaskIdx+1, numTasks, snap.Version)
	srv2, err := fed.NewServerFromSnapshot(scfg, nil, snap)
	if err != nil {
		fail(fmt.Errorf("restore: %w", err))
	}
	acceptor2 := fed.AcceptRejoins(ln2, numClients, aprint, fed.WireOptions{})
	defer acceptor2.Close()
	srv2.SetRejoins(acceptor2.Rejoins())
	srv2.SetJoins(acceptor2.Joins())
	srv2.SetSnapshots(store2)
	var kill2 sync.Once
	srv2.SetObserver(fed.ObserverFuncs{
		Round: func(s fed.RoundStats) {
			// The client-side churn: sever the victim's connection early in
			// a later task (it still owes uploads, so the eviction is always
			// healed by its rejoin before the run can end).
			if s.TaskIdx >= 1 && s.Participants > 0 {
				kill2.Do(func() {
					fmt.Printf("  >> killing seat %d's connection after commit v%d of task %d\n",
						victim, s.Version, s.TaskIdx+1)
					proxy.Kill()
				})
			}
		},
		Task: printTask,
	})
	res, err := srv2.Run(context.Background())
	if err != nil {
		fail(fmt.Errorf("restored server must survive the churn: %w", err))
	}
	wg.Wait()

	// The elastic acceptance bar: every task finished while the cohort
	// changed, and the books show exactly the scripted churn.
	if len(res.PerTask) != numTasks {
		fail(fmt.Errorf("run finished %d of %d tasks under churn", len(res.PerTask), numTasks))
	}
	for i, tp := range res.PerTask {
		if tp.TaskIdx != i {
			fail(fmt.Errorf("task point %d reports task %d: duplicated or skipped across the restart", i, tp.TaskIdx))
		}
		if tp.AvgAccuracy <= 0 {
			fail(fmt.Errorf("task %d has no recorded accuracy", i+1))
		}
	}
	if alive := srv2.AliveClients(); alive != numClients-1 {
		fail(fmt.Errorf("%d seats alive at the end, want %d (joiner + rejoined founder, leaver retired)",
			alive, numClients-1))
	}
	if len(res.DeadAfter) != 0 {
		fail(fmt.Errorf("DeadAfter = %v, want empty: the leave must retire the seat and the kill must heal", res.DeadAfter))
	}
	_, _, evicted, refused := srv2.Rejections()
	if refused != 0 {
		fail(fmt.Errorf("%d membership handshakes refused, want 0", refused))
	}
	if evicted != 1 {
		fail(fmt.Errorf("%d evictions, want exactly 1 (the killed connection; the leave must not count)", evicted))
	}
	sent, recv := srv2.WireTraffic()
	fmt.Printf("cohort grew %d→%d, survived a server crash, shrank to %d, healed a kill, and completed all %d tasks\n",
		founders, numClients, numClients-1, numTasks)
	fmt.Printf("measured wire traffic incl. retired and joined links: %.2f MB sent, %.2f MB received\n",
		float64(sent)/(1<<20), float64(recv)/(1<<20))
}
