//go:build amd64

#include "textflag.h"

// func dot4fma(a, b0, b1, b2, b3 *float32, n int, out *[4]float32)
//
// Four simultaneous dot products with AVX2 FMA: Y0..Y3 accumulate
// a[p:p+8] * bj[p:p+8] per 8-float block. n must be a positive multiple
// of 8 (the Go caller handles the scalar tail).
TEXT ·dot4fma(SB), NOSPLIT, $0-56
	MOVQ a+0(FP), SI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ n+40(FP), DX
	MOVQ out+48(FP), DI

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

	// Two 8-float blocks per iteration when possible, with independent
	// accumulator pairs (Y0..Y3 and Y10..Y13) to hide FMA latency.
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11
	VXORPS Y12, Y12, Y12
	VXORPS Y13, Y13, Y13

	CMPQ DX, $16
	JL   tail8

loop16:
	VMOVUPS (SI), Y4
	VMOVUPS 32(SI), Y5
	VFMADD231PS (R8), Y4, Y0
	VFMADD231PS (R9), Y4, Y1
	VFMADD231PS (R10), Y4, Y2
	VFMADD231PS (R11), Y4, Y3
	VFMADD231PS 32(R8), Y5, Y10
	VFMADD231PS 32(R9), Y5, Y11
	VFMADD231PS 32(R10), Y5, Y12
	VFMADD231PS 32(R11), Y5, Y13
	ADDQ $64, SI
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, R11
	SUBQ $16, DX
	CMPQ DX, $16
	JGE  loop16

tail8:
	CMPQ DX, $8
	JL   reduce

	VMOVUPS (SI), Y4
	VFMADD231PS (R8), Y4, Y0
	VFMADD231PS (R9), Y4, Y1
	VFMADD231PS (R10), Y4, Y2
	VFMADD231PS (R11), Y4, Y3
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $8, DX
	JMP  tail8

reduce:
	// Fold the second accumulator set into the first.
	VADDPS Y10, Y0, Y0
	VADDPS Y11, Y1, Y1
	VADDPS Y12, Y2, Y2
	VADDPS Y13, Y3, Y3

	// Horizontal sum of each YMM into a scalar lane.
	VEXTRACTF128 $1, Y0, X4
	VADDPS       X4, X0, X0
	VEXTRACTF128 $1, Y1, X5
	VADDPS       X5, X1, X1
	VEXTRACTF128 $1, Y2, X6
	VADDPS       X6, X2, X2
	VEXTRACTF128 $1, Y3, X7
	VADDPS       X7, X3, X3

	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VHADDPS X2, X2, X2
	VHADDPS X2, X2, X2
	VHADDPS X3, X3, X3
	VHADDPS X3, X3, X3

	VMOVSS X0, (DI)
	VMOVSS X1, 4(DI)
	VMOVSS X2, 8(DI)
	VMOVSS X3, 12(DI)
	VZEROUPPER
	RET
// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
