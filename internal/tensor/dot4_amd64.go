//go:build amd64

package tensor

// dot4fma computes four simultaneous dot products of a against b0..b3 over
// n float32s (n must be a multiple of 8, n >= 8) using AVX2 FMA, writing the
// four sums into out. Implemented in dot4_amd64.s.
//
//go:noescape
func dot4fma(a, b0, b1, b2, b3 *float32, n int, out *[4]float32)

// cpuidex executes CPUID with the given leaf/subleaf.
//
//go:noescape
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (requires OSXSAVE).
//
//go:noescape
func xgetbv0() (eax, edx uint32)

// hasDot4 reports whether the AVX2+FMA micro-kernel is usable: the CPU must
// support FMA3 and AVX2 and the OS must have enabled YMM state. Detected
// once at startup; the pure-Go kernel remains the fallback everywhere else.
var hasDot4 = func() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// OS must enable XMM+YMM state saving.
	if xa, _ := xgetbv0(); xa&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	return b7&(1<<5) != 0 // AVX2
}()
