package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// kernelThreads is the process-wide cap on goroutines the numeric kernels may
// use. 0 means GOMAXPROCS. It is read atomically so experiments can adjust it
// between runs without racing an in-flight pool.
var kernelThreads int64

// kernelTokens is a global semaphore bounding the *total* number of extra
// kernel goroutines in flight across every concurrent caller. Federated
// training already fans out one goroutine per client (fed.forEachAlive);
// without a shared bound, nested kernel parallelism would multiply into
// clients × threads goroutines and thrash the scheduler. Tokens are acquired
// with a non-blocking try, so a kernel running under an already-saturated
// fleet simply degrades to sequential execution instead of deadlocking.
var (
	tokensMu     sync.Mutex
	kernelTokens chan struct{}
	tokensSize   int
)

// SetKernelThreads sets the worker budget for tensor kernels. n <= 0 resets
// to GOMAXPROCS. The setting is global: it bounds total kernel goroutines
// across all concurrently-training clients.
func SetKernelThreads(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	atomic.StoreInt64(&kernelThreads, int64(n))
	tokensMu.Lock()
	if tokensSize != n {
		tokensSize = n
		kernelTokens = make(chan struct{}, n)
		for i := 0; i < n-1; i++ {
			kernelTokens <- struct{}{}
		}
	}
	tokensMu.Unlock()
}

// KernelThreads reports the current kernel worker budget.
func KernelThreads() int {
	n := int(atomic.LoadInt64(&kernelThreads))
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

// tokens returns the current semaphore, initialising it on first use.
func tokens() chan struct{} {
	tokensMu.Lock()
	if kernelTokens == nil {
		tokensSize = KernelThreads()
		kernelTokens = make(chan struct{}, tokensSize)
		for i := 0; i < tokensSize-1; i++ {
			kernelTokens <- struct{}{}
		}
	}
	ch := kernelTokens
	tokensMu.Unlock()
	return ch
}

// Parallel splits the index range [0, n) into chunks and runs fn(lo, hi) over
// them, using at most KernelThreads() goroutines in total (shared with every
// other kernel currently running). The calling goroutine always participates,
// so Parallel never blocks waiting for workers and nests safely under
// client-level parallelism: when the pool is exhausted it simply runs fn(0, n)
// inline.
//
// fn must compute each index independently of the chunking (disjoint writes,
// no cross-chunk accumulation), which makes the result bitwise identical for
// every thread-count setting.
func Parallel(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	maxW := KernelThreads()
	if maxW > n {
		maxW = n
	}
	if maxW <= 1 {
		fn(0, n)
		return
	}
	// Grab extra workers without blocking; the caller is worker 0.
	ch := tokens()
	extra := 0
acquire:
	for extra < maxW-1 {
		// The racy token grab only varies the worker count; every kernel
		// splits work so results are bitwise identical at any width
		// (TestEngineDeterministicAcrossParallelism pins this).
		//lint:ignore fedlint/determinism select only picks worker count, results are width-invariant
		select {
		case <-ch:
			extra++
		default:
			break acquire
		}
	}
	if extra == 0 {
		fn(0, n)
		return
	}
	workers := extra + 1
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	launched := 0
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		launched++
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() { ch <- struct{}{} }()
			fn(lo, hi)
		}(lo, hi)
	}
	// Return any tokens that did not map to a chunk (ceil rounding can cover
	// [0, n) with fewer than `workers` chunks).
	for i := launched; i < extra; i++ {
		ch <- struct{}{}
	}
	fn(0, chunk)
	wg.Wait()
}
