// Package tensor implements dense float32 tensors and the numeric kernels
// (GEMM, im2col, reductions) that back the neural-network substrate. It is
// the stand-in for the PyTorch tensor library used by the FedKNOW paper.
//
// Tensors are row-major and always contiguous. The package is deliberately
// small: only the operations the training stack needs are provided, and all
// of them are written against plain slices so they inline and vectorise well.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// numElems returns the product of dims, panicking on negative sizes. The
// panic path formats a copy of the shape so the (hot, variadic) argument
// slice never escapes to the heap.
func numElems(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, append([]int(nil), shape...)))
		}
		n *= d
	}
	return n
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, numElems(shape))}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly, not copied.
func FromSlice(data []float32, shape ...int) *Tensor {
	if len(data) != numElems(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape. The element
// count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if numElems(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-index. Intended for tests and
// debugging; hot paths index Data directly.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Copy copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) Copy(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic("tensor: Copy size mismatch")
	}
	copy(t.Data, src.Data)
}

// AddInPlace adds b elementwise into t.
func (t *Tensor) AddInPlace(b *Tensor) {
	if len(t.Data) != len(b.Data) {
		panic("tensor: AddInPlace size mismatch")
	}
	x, y := t.Data, b.Data
	for len(x) >= 4 && len(y) >= 4 {
		x[0] += y[0]
		x[1] += y[1]
		x[2] += y[2]
		x[3] += y[3]
		x, y = x[4:], y[4:]
	}
	for i, v := range y {
		x[i] += v
	}
}

// SubInPlace subtracts b elementwise from t.
func (t *Tensor) SubInPlace(b *Tensor) {
	if len(t.Data) != len(b.Data) {
		panic("tensor: SubInPlace size mismatch")
	}
	for i, v := range b.Data {
		t.Data[i] -= v
	}
}

// MulInPlace multiplies t elementwise by b.
func (t *Tensor) MulInPlace(b *Tensor) {
	if len(t.Data) != len(b.Data) {
		panic("tensor: MulInPlace size mismatch")
	}
	for i, v := range b.Data {
		t.Data[i] *= v
	}
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Axpy computes t += a*x (like BLAS saxpy).
func (t *Tensor) Axpy(a float32, x *Tensor) {
	if len(t.Data) != len(x.Data) {
		panic("tensor: Axpy size mismatch")
	}
	AxpySlice(t.Data, a, x.Data)
}

// AxpySlice computes dst += a*x over raw slices, 4-way unrolled.
func AxpySlice(dst []float32, a float32, x []float32) {
	for len(dst) >= 4 && len(x) >= 4 {
		dst[0] += a * x[0]
		dst[1] += a * x[1]
		dst[2] += a * x[2]
		dst[3] += a * x[3]
		dst, x = dst[4:], x[4:]
	}
	for i, v := range x {
		dst[i] += a * v
	}
}

// Dot returns the inner product of t and b viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	return DotSlice(a.Data, b.Data)
}

// DotSlice returns the inner product of two equal-length slices, accumulated
// in float64 across four unrolled lanes.
func DotSlice(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot size mismatch")
	}
	var s0, s1, s2, s3 float64
	for len(a) >= 4 && len(b) >= 4 {
		s0 += float64(a[0]) * float64(b[0])
		s1 += float64(a[1]) * float64(b[1])
		s2 += float64(a[2]) * float64(b[2])
		s3 += float64(a[3]) * float64(b[3])
		a, b = a[4:], b[4:]
	}
	s := s0 + s1 + s2 + s3
	for i, v := range a {
		s += float64(v) * float64(b[i])
	}
	return s
}

// Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm() float64 { return NormSlice(t.Data) }

// NormSlice returns the Euclidean norm of a slice.
func NormSlice(x []float32) float64 {
	var s0, s1, s2, s3 float64
	for len(x) >= 4 {
		s0 += float64(x[0]) * float64(x[0])
		s1 += float64(x[1]) * float64(x[1])
		s2 += float64(x[2]) * float64(x[2])
		s3 += float64(x[3]) * float64(x[3])
		x = x[4:]
	}
	s := s0 + s1 + s2 + s3
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements as float64.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// ArgMaxRow returns the index of the maximum element in row r of a 2-D
// tensor, optionally restricted to the given candidate columns (nil means
// all columns). Used for task-aware top-1 evaluation.
func (t *Tensor) ArgMaxRow(r int, candidates []int) int {
	if len(t.Shape) != 2 {
		panic("tensor: ArgMaxRow requires a 2-D tensor")
	}
	cols := t.Shape[1]
	row := t.Data[r*cols : (r+1)*cols]
	best, bestV := -1, float32(math.Inf(-1))
	if candidates == nil {
		for j, v := range row {
			if v > bestV {
				best, bestV = j, v
			}
		}
		return best
	}
	for _, j := range candidates {
		if row[j] > bestV {
			best, bestV = j, row[j]
		}
	}
	return best
}

// MatMul computes C = A×B for A (m×k) and B (k×n), returning an m×n tensor.
// Hot paths should prefer MatMulInto with a reused destination.
func MatMul(a, b *Tensor) *Tensor {
	return MatMulInto(nil, a, b)
}

// MatMulInto computes C = A×B into dst, reusing dst's storage when it has
// sufficient capacity (dst may be nil, or a tensor returned by a previous
// call). The destination is fully overwritten.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v × %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	dst = Ensure(dst, m, n)
	clear(dst.Data)
	Gemm(dst.Data, a.Data, b.Data, m, k, n, false, false)
	return dst
}

// Ensure returns a tensor with the given shape, reusing t's storage when its
// capacity suffices (t may be nil). Contents are unspecified: callers that
// need zeros must clear the data themselves. This is the scratch-buffer
// primitive the allocation-free training pipeline is built on.
func Ensure(t *Tensor, shape ...int) *Tensor {
	n := numElems(shape)
	if t == nil {
		return New(shape...)
	}
	if cap(t.Data) < n {
		t.Data = make([]float32, n)
	}
	t.Data = t.Data[:n]
	t.Shape = append(t.Shape[:0], shape...)
	return t
}
