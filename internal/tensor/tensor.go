// Package tensor implements dense float32 tensors and the numeric kernels
// (GEMM, im2col, reductions) that back the neural-network substrate. It is
// the stand-in for the PyTorch tensor library used by the FedKNOW paper.
//
// Tensors are row-major and always contiguous. The package is deliberately
// small: only the operations the training stack needs are provided, and all
// of them are written against plain slices so they inline and vectorise well.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// numElems returns the product of dims, panicking on negative sizes.
func numElems(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return n
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, numElems(shape))}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly, not copied.
func FromSlice(data []float32, shape ...int) *Tensor {
	if len(data) != numElems(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape. The element
// count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if numElems(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-index. Intended for tests and
// debugging; hot paths index Data directly.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Copy copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) Copy(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic("tensor: Copy size mismatch")
	}
	copy(t.Data, src.Data)
}

// AddInPlace adds b elementwise into t.
func (t *Tensor) AddInPlace(b *Tensor) {
	if len(t.Data) != len(b.Data) {
		panic("tensor: AddInPlace size mismatch")
	}
	for i, v := range b.Data {
		t.Data[i] += v
	}
}

// SubInPlace subtracts b elementwise from t.
func (t *Tensor) SubInPlace(b *Tensor) {
	if len(t.Data) != len(b.Data) {
		panic("tensor: SubInPlace size mismatch")
	}
	for i, v := range b.Data {
		t.Data[i] -= v
	}
}

// MulInPlace multiplies t elementwise by b.
func (t *Tensor) MulInPlace(b *Tensor) {
	if len(t.Data) != len(b.Data) {
		panic("tensor: MulInPlace size mismatch")
	}
	for i, v := range b.Data {
		t.Data[i] *= v
	}
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Axpy computes t += a*x (like BLAS saxpy).
func (t *Tensor) Axpy(a float32, x *Tensor) {
	if len(t.Data) != len(x.Data) {
		panic("tensor: Axpy size mismatch")
	}
	AxpySlice(t.Data, a, x.Data)
}

// AxpySlice computes dst += a*x over raw slices.
func AxpySlice(dst []float32, a float32, x []float32) {
	for i, v := range x {
		dst[i] += a * v
	}
}

// Dot returns the inner product of t and b viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	return DotSlice(a.Data, b.Data)
}

// DotSlice returns the inner product of two equal-length slices.
func DotSlice(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot size mismatch")
	}
	var s float64
	for i, v := range a {
		s += float64(v) * float64(b[i])
	}
	return s
}

// Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm() float64 { return NormSlice(t.Data) }

// NormSlice returns the Euclidean norm of a slice.
func NormSlice(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements as float64.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// ArgMaxRow returns the index of the maximum element in row r of a 2-D
// tensor, optionally restricted to the given candidate columns (nil means
// all columns). Used for task-aware top-1 evaluation.
func (t *Tensor) ArgMaxRow(r int, candidates []int) int {
	if len(t.Shape) != 2 {
		panic("tensor: ArgMaxRow requires a 2-D tensor")
	}
	cols := t.Shape[1]
	row := t.Data[r*cols : (r+1)*cols]
	best, bestV := -1, float32(math.Inf(-1))
	if candidates == nil {
		for j, v := range row {
			if v > bestV {
				best, bestV = j, v
			}
		}
		return best
	}
	for _, j := range candidates {
		if row[j] > bestV {
			best, bestV = j, row[j]
		}
	}
	return best
}

// MatMul computes C = A×B for A (m×k) and B (k×n), returning an m×n tensor.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v × %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	Gemm(c.Data, a.Data, b.Data, m, k, n, false, false)
	return c
}

// Gemm computes C += op(A)×op(B) into c (m×n), where op transposes when the
// corresponding flag is set. A is m×k (or k×m when transposed), B is k×n (or
// n×k when transposed). c must be pre-sized m*n; it is accumulated into, so
// callers wanting plain assignment must zero it first. The inner loop is
// written j-innermost over contiguous rows for cache friendliness.
func Gemm(c, a, b []float32, m, k, n int, transA, transB bool) {
	switch {
	case !transA && !transB:
		for i := 0; i < m; i++ {
			ci := c[i*n : (i+1)*n]
			ai := a[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				av := ai[p]
				if av == 0 {
					continue
				}
				bp := b[p*n : (p+1)*n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	case transA && !transB:
		// A is k×m, op(A) is m×k.
		for p := 0; p < k; p++ {
			ap := a[p*m : (p+1)*m]
			bp := b[p*n : (p+1)*n]
			for i := 0; i < m; i++ {
				av := ap[i]
				if av == 0 {
					continue
				}
				ci := c[i*n : (i+1)*n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	case !transA && transB:
		// B is n×k, op(B) is k×n.
		for i := 0; i < m; i++ {
			ai := a[i*k : (i+1)*k]
			ci := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b[j*k : (j+1)*k]
				var s float32
				for p, av := range ai {
					s += av * bj[p]
				}
				ci[j] += s
			}
		}
	default: // transA && transB
		for i := 0; i < m; i++ {
			ci := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b[j*k : (j+1)*k]
				var s float32
				for p := 0; p < k; p++ {
					s += a[p*m+i] * bj[p]
				}
				ci[j] += s
			}
		}
	}
}
