package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Dim(1) != 3 {
		t.Fatalf("Dim(1) = %d, want 3", x.Dim(1))
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestAtSetOffsets(t *testing.T) {
	x := New(2, 3)
	x.Set(5, 1, 2)
	if got := x.At(1, 2); got != 5 {
		t.Fatalf("At(1,2) = %v, want 5", got)
	}
	if x.Data[1*3+2] != 5 {
		t.Fatal("row-major offset wrong")
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Data[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("Reshape must share backing data")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 7
	if x.Data[0] != 1 {
		t.Fatal("Clone must deep copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	a.AddInPlace(b)
	want := []float32{5, 7, 9}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("AddInPlace[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
	a.SubInPlace(b)
	for i, w := range []float32{1, 2, 3} {
		if a.Data[i] != w {
			t.Fatalf("SubInPlace[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
	a.MulInPlace(b)
	for i, w := range []float32{4, 10, 18} {
		if a.Data[i] != w {
			t.Fatalf("MulInPlace[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
	a.ScaleInPlace(0.5)
	for i, w := range []float32{2, 5, 9} {
		if a.Data[i] != w {
			t.Fatalf("ScaleInPlace[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
}

func TestAxpyDotNorm(t *testing.T) {
	a := FromSlice([]float32{1, 0, 2}, 3)
	b := FromSlice([]float32{3, 4, 5}, 3)
	a.Axpy(2, b)
	for i, w := range []float32{7, 8, 12} {
		if a.Data[i] != w {
			t.Fatalf("Axpy[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
	if got := Dot(b, b); got != 50 {
		t.Fatalf("Dot = %v, want 50", got)
	}
	if got := b.Norm(); math.Abs(got-math.Sqrt(50)) > 1e-12 {
		t.Fatalf("Norm = %v", got)
	}
}

func TestSumMean(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 4)
	if x.Sum() != 10 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 2.5 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if (&Tensor{}).Mean() != 0 {
		t.Fatal("empty Mean should be 0")
	}
}

func TestArgMaxRow(t *testing.T) {
	x := FromSlice([]float32{0.1, 0.9, 0.5, 0.7, 0.2, 0.3}, 2, 3)
	if got := x.ArgMaxRow(0, nil); got != 1 {
		t.Fatalf("ArgMaxRow(0) = %d, want 1", got)
	}
	if got := x.ArgMaxRow(1, nil); got != 0 {
		t.Fatalf("ArgMaxRow(1) = %d, want 0", got)
	}
	// Restricted to candidates: pick best among {0, 2}.
	if got := x.ArgMaxRow(0, []int{0, 2}); got != 2 {
		t.Fatalf("ArgMaxRow(0, {0,2}) = %d, want 2", got)
	}
}

// naiveMatMul is the O(mnk) textbook reference.
func naiveMatMul(a, b []float32, m, k, n int) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		got := MatMul(a, b)
		want := naiveMatMul(a.Data, b.Data, m, k, n)
		for i := range want {
			if math.Abs(float64(got.Data[i]-want[i])) > 1e-4 {
				t.Fatalf("trial %d: MatMul[%d] = %v, want %v", trial, i, got.Data[i], want[i])
			}
		}
	}
}

func transpose(a []float32, rows, cols int) []float32 {
	out := make([]float32, len(a))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			out[j*rows+i] = a[i*cols+j]
		}
	}
	return out
}

func TestGemmTransposeVariants(t *testing.T) {
	r := NewRNG(2)
	for trial := 0; trial < 10; trial++ {
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		want := naiveMatMul(a.Data, b.Data, m, k, n)
		aT := transpose(a.Data, m, k) // k×m
		bT := transpose(b.Data, k, n) // n×k

		check := func(name string, c []float32) {
			t.Helper()
			for i := range want {
				if math.Abs(float64(c[i]-want[i])) > 1e-4 {
					t.Fatalf("%s[%d] = %v, want %v", name, i, c[i], want[i])
				}
			}
		}
		c1 := make([]float32, m*n)
		Gemm(c1, aT, b.Data, m, k, n, true, false)
		check("transA", c1)
		c2 := make([]float32, m*n)
		Gemm(c2, a.Data, bT, m, k, n, false, true)
		check("transB", c2)
		c3 := make([]float32, m*n)
		Gemm(c3, aT, bT, m, k, n, true, true)
		check("transAB", c3)
	}
}

func TestGemmAccumulates(t *testing.T) {
	c := []float32{1, 1, 1, 1}
	a := []float32{1, 0, 0, 1}
	b := []float32{2, 0, 0, 2}
	Gemm(c, a, b, 2, 2, 2, false, false)
	want := []float32{3, 1, 1, 3}
	for i, w := range want {
		if c[i] != w {
			t.Fatalf("Gemm accumulate[%d] = %v, want %v", i, c[i], w)
		}
	}
}

// naiveConvSingle computes one convolution output directly from the
// definition, as a reference for Im2Col+GEMM.
func naiveConvSingle(img []float32, c, h, w int, ker []float32, kh, kw, stride, pad int) ([]float32, int, int) {
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	out := make([]float32, outH*outW)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			var s float32
			for ch := 0; ch < c; ch++ {
				for ky := 0; ky < kh; ky++ {
					for kx := 0; kx < kw; kx++ {
						iy, ix := oy*stride+ky-pad, ox*stride+kx-pad
						if iy < 0 || iy >= h || ix < 0 || ix >= w {
							continue
						}
						s += img[ch*h*w+iy*w+ix] * ker[(ch*kh+ky)*kw+kx]
					}
				}
			}
			out[oy*outW+ox] = s
		}
	}
	return out, outH, outW
}

func TestIm2ColMatchesDirectConvolution(t *testing.T) {
	r := NewRNG(3)
	cases := []struct{ c, h, w, k, stride, pad int }{
		{1, 5, 5, 3, 1, 1},
		{3, 8, 8, 3, 2, 1},
		{2, 7, 6, 5, 1, 2},
		{4, 4, 4, 1, 1, 0},
		{2, 6, 6, 3, 3, 0},
	}
	for _, tc := range cases {
		img := make([]float32, tc.c*tc.h*tc.w)
		r.FillNorm(img, 1)
		ker := make([]float32, tc.c*tc.k*tc.k)
		r.FillNorm(ker, 1)
		want, outH, outW := naiveConvSingle(img, tc.c, tc.h, tc.w, ker, tc.k, tc.k, tc.stride, tc.pad)

		cols := make([]float32, tc.c*tc.k*tc.k*outH*outW)
		Im2Col(cols, img, tc.c, tc.h, tc.w, tc.k, tc.k, tc.stride, tc.pad, outH, outW)
		got := make([]float32, outH*outW)
		Gemm(got, ker, cols, 1, tc.c*tc.k*tc.k, outH*outW, false, false)
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-4 {
				t.Fatalf("case %+v: conv[%d] = %v, want %v", tc, i, got[i], want[i])
			}
		}
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), y> must equal <x, Col2Im(y)> — the defining property of
	// an adjoint, which the conv backward pass relies on.
	r := NewRNG(4)
	c, h, w, k, stride, pad := 2, 6, 6, 3, 2, 1
	outH := ConvOutSize(h, k, stride, pad)
	outW := ConvOutSize(w, k, stride, pad)
	x := make([]float32, c*h*w)
	r.FillNorm(x, 1)
	y := make([]float32, c*k*k*outH*outW)
	r.FillNorm(y, 1)

	fx := make([]float32, len(y))
	Im2Col(fx, x, c, h, w, k, k, stride, pad, outH, outW)
	aty := make([]float32, len(x))
	Col2Im(aty, y, c, h, w, k, k, stride, pad, outH, outW)

	lhs := DotSlice(fx, y)
	rhs := DotSlice(x, aty)
	if math.Abs(lhs-rhs) > 1e-3*(1+math.Abs(lhs)) {
		t.Fatalf("adjoint mismatch: <Fx,y>=%v <x,F*y>=%v", lhs, rhs)
	}
}

func TestConvOutSize(t *testing.T) {
	if got := ConvOutSize(32, 3, 1, 1); got != 32 {
		t.Fatalf("same-pad conv: %d", got)
	}
	if got := ConvOutSize(32, 3, 2, 1); got != 16 {
		t.Fatalf("strided conv: %d", got)
	}
	if got := ConvOutSize(4, 4, 4, 0); got != 1 {
		t.Fatalf("full-window pool: %d", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Fork(1).Uint64() == c.Uint64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(7)
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("Gaussian mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("Gaussian variance = %v", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestQuickDotSymmetry(t *testing.T) {
	f := func(a, b []float32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		return math.Abs(DotSlice(a, b)-DotSlice(b, a)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormNonNegative(t *testing.T) {
	f := func(x []float32) bool { return NormSlice(x) >= 0 }
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
