package tensor

import (
	"fmt"
	"testing"
)

// BenchmarkGemm covers the square and conv-shaped problems the training
// stack actually issues: (out-channels × fan-in × spatial) for forward,
// plus transposed variants for the backward GEMMs.
func BenchmarkGemm(b *testing.B) {
	shapes := []struct {
		name    string
		m, k, n int
		tA, tB  bool
	}{
		{"square64", 64, 64, 64, false, false},
		{"square128", 128, 128, 128, false, false},
		{"square256", 256, 256, 256, false, false},
		{"conv-fwd-32x144x256", 32, 144, 256, false, false},
		{"conv-fwd-64x576x256", 64, 576, 256, false, false},
		{"conv-dW-32x256x144", 32, 256, 144, false, true},
		{"linear-fwd-16x1024x100", 16, 1024, 100, false, true},
		{"linear-dW-100x16x1024", 100, 16, 1024, true, false},
	}
	for _, sh := range shapes {
		b.Run(sh.name, func(b *testing.B) {
			r := NewRNG(1)
			a := make([]float32, sh.m*sh.k)
			x := make([]float32, sh.k*sh.n)
			r.FillNorm(a, 1)
			r.FillNorm(x, 1)
			c := make([]float32, sh.m*sh.n)
			flop := 2 * float64(sh.m) * float64(sh.k) * float64(sh.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clear(c)
				Gemm(c, a, x, sh.m, sh.k, sh.n, sh.tA, sh.tB)
			}
			b.ReportMetric(flop*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

// BenchmarkGemmSparse measures the zero-skipping path used when forwarding
// FedKNOW's ρ=10 % knowledge models.
func BenchmarkGemmSparse(b *testing.B) {
	r := NewRNG(5)
	m, k, n := 32, 144, 256
	a := make([]float32, m*k)
	x := make([]float32, k*n)
	r.FillNorm(a, 1)
	r.FillNorm(x, 1)
	for i := range a {
		if r.Float64() < 0.9 {
			a[i] = 0
		}
	}
	c := make([]float32, m*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(c)
		Gemm(c, a, x, m, k, n, false, false)
	}
}

// BenchmarkGemmParallel exercises the kernel pool at several thread counts
// on a conv-backward-shaped problem (single-threaded on a 1-core runner).
func BenchmarkGemmParallel(b *testing.B) {
	defer SetKernelThreads(0)
	r := NewRNG(6)
	m, k, n := 64, 576, 1024
	a := make([]float32, m*k)
	x := make([]float32, k*n)
	r.FillNorm(a, 1)
	r.FillNorm(x, 1)
	c := make([]float32, m*n)
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			SetKernelThreads(threads)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clear(c)
				Gemm(c, a, x, m, k, n, false, false)
			}
		})
	}
}

func BenchmarkIm2Col(b *testing.B) {
	r := NewRNG(2)
	c, h, w, k := 16, 16, 16, 3
	img := make([]float32, c*h*w)
	r.FillNorm(img, 1)
	outH := ConvOutSize(h, k, 1, 1)
	outW := ConvOutSize(w, k, 1, 1)
	cols := make([]float32, c*k*k*outH*outW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(cols, img, c, h, w, k, k, 1, 1, outH, outW)
	}
}

func BenchmarkCol2Im(b *testing.B) {
	r := NewRNG(4)
	c, h, w, k := 16, 16, 16, 3
	outH := ConvOutSize(h, k, 1, 1)
	outW := ConvOutSize(w, k, 1, 1)
	cols := make([]float32, c*k*k*outH*outW)
	r.FillNorm(cols, 1)
	img := make([]float32, c*h*w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(img)
		Col2Im(img, cols, c, h, w, k, k, 1, 1, outH, outW)
	}
}

func BenchmarkDot(b *testing.B) {
	r := NewRNG(3)
	x := make([]float32, 1<<16)
	y := make([]float32, 1<<16)
	r.FillNorm(x, 1)
	r.FillNorm(y, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotSlice(x, y)
	}
}

func BenchmarkAxpy(b *testing.B) {
	r := NewRNG(7)
	x := make([]float32, 1<<16)
	y := make([]float32, 1<<16)
	r.FillNorm(x, 1)
	r.FillNorm(y, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AxpySlice(y, 0.999, x)
	}
}

func BenchmarkAxpySparse10(b *testing.B) {
	r := NewRNG(9)
	n := 1 << 16
	dst := make([]float32, n)
	mask := make([]bool, n)
	w := make([]float32, n)
	r.FillNorm(w, 1)
	for i := range mask {
		mask[i] = r.Float64() < 0.1
	}
	sv := GatherMask(nil, w, mask)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AxpySparse(dst, 0.999, sv)
	}
}

func BenchmarkScaleAddSparse10(b *testing.B) {
	r := NewRNG(10)
	n := 1 << 16
	dst := make([]float32, n)
	mask := make([]bool, n)
	w := make([]float32, n)
	r.FillNorm(w, 1)
	for i := range mask {
		mask[i] = r.Float64() < 0.1
	}
	sv := GatherMask(nil, w, mask)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScaleAddSparse(dst, 0.9, 0.1, sv)
	}
}
