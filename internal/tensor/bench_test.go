package tensor

import "testing"

func BenchmarkGemm64(b *testing.B) {
	r := NewRNG(1)
	m, k, n := 64, 64, 64
	a := Randn(r, 1, m, k)
	x := Randn(r, 1, k, n)
	c := make([]float32, m*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range c {
			c[j] = 0
		}
		Gemm(c, a.Data, x.Data, m, k, n, false, false)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	r := NewRNG(2)
	c, h, w, k := 16, 16, 16, 3
	img := make([]float32, c*h*w)
	r.FillNorm(img, 1)
	outH := ConvOutSize(h, k, 1, 1)
	outW := ConvOutSize(w, k, 1, 1)
	cols := make([]float32, c*k*k*outH*outW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(cols, img, c, h, w, k, k, 1, 1, outH, outW)
	}
}

func BenchmarkDot(b *testing.B) {
	r := NewRNG(3)
	x := make([]float32, 1<<16)
	y := make([]float32, 1<<16)
	r.FillNorm(x, 1)
	r.FillNorm(y, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotSlice(x, y)
	}
}
