package tensor

import "testing"

// TestIm2ColKernelLargerThanInput covers taps that fall entirely outside the
// padded input (kernel larger than input+pad): the bounds-hoisted kernels
// must zero-fill instead of panicking.
func TestIm2ColKernelLargerThanInput(t *testing.T) {
	// 1×1 spatial input, K=7, pad=3, stride=1 → outH=outW=1.
	c, h, w, k, stride, pad := 2, 1, 1, 7, 1, 3
	outH := ConvOutSize(h, k, stride, pad)
	outW := ConvOutSize(w, k, stride, pad)
	img := []float32{5, -7}
	cols := make([]float32, c*k*k*outH*outW)
	for i := range cols {
		cols[i] = 99 // poison: every slot must be overwritten
	}
	Im2Col(cols, img, c, h, w, k, k, stride, pad, outH, outW)
	// Reference: per-pixel bounds checks.
	want := make([]float32, len(cols))
	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				rowIdx := (ch*k+ky)*k + kx
				iy, ix := ky-pad, kx-pad
				if iy == 0 && ix == 0 {
					want[rowIdx] = img[ch]
				}
			}
		}
	}
	for i := range cols {
		if cols[i] != want[i] {
			t.Fatalf("cols[%d] = %v, want %v", i, cols[i], want[i])
		}
	}
	// Adjoint must round-trip without panicking either.
	dst := make([]float32, c*h*w)
	Col2Im(dst, cols, c, h, w, k, k, stride, pad, outH, outW)
	for ch := 0; ch < c; ch++ {
		if dst[ch] != img[ch] {
			t.Fatalf("col2im[%d] = %v, want %v", ch, dst[ch], img[ch])
		}
	}
}
