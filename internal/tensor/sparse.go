package tensor

import "fmt"

// SparseVec is a sparse view of a dense float32 vector: parallel slices of
// flat indices (strictly ascending) and values. It is the shared currency of
// the sparse update pipeline — prune builds one from a magnitude mask, the
// wire codec ships it as a varint-delta frame, and the server aggregates it
// with the fused kernels below, all without densifying. Memory footprint is
// 8 bytes per retained weight versus 4 bytes per weight for the dense vector,
// so ρ = 10% costs one fifth of a full copy.
type SparseVec struct {
	N       int // length of the dense vector this was extracted from
	Indices []int32
	Values  []float32
}

// Bytes returns the approximate memory footprint of the vector.
func (s *SparseVec) Bytes() int { return len(s.Indices)*4 + len(s.Values)*4 }

// Len returns the number of stored coordinates.
func (s *SparseVec) Len() int { return len(s.Indices) }

// Mask returns a boolean mask over the dense vector with true at stored
// positions.
func (s *SparseVec) Mask() []bool {
	m := make([]bool, s.N)
	for _, i := range s.Indices {
		m[i] = true
	}
	return m
}

// PasteInto writes the stored values into dst at their original positions,
// leaving other coordinates untouched. dst must have the original length.
func (s *SparseVec) PasteInto(dst []float32) {
	if len(dst) != s.N {
		panic(fmt.Sprintf("tensor: PasteInto length %d, want %d", len(dst), s.N))
	}
	for i, j := range s.Indices {
		dst[j] = s.Values[i]
	}
}

// Densify returns a dense vector with stored values and zeros elsewhere.
func (s *SparseVec) Densify() []float32 {
	out := make([]float32, s.N)
	s.PasteInto(out)
	return out
}

// DensifyInto densifies into dst, reusing its storage when the capacity
// suffices (dst may be nil). Coordinates not stored are zeroed.
func (s *SparseVec) DensifyInto(dst []float32) []float32 {
	if cap(dst) < s.N {
		dst = make([]float32, s.N)
	}
	dst = dst[:s.N]
	clear(dst)
	for i, j := range s.Indices {
		dst[j] = s.Values[i]
	}
	return dst
}

// Refresh re-reads the values at the stored indices from a dense vector
// (used after fine-tuning the retained weights).
func (s *SparseVec) Refresh(w []float32) {
	if len(w) != s.N {
		panic(fmt.Sprintf("tensor: Refresh length %d, want %d", len(w), s.N))
	}
	for i, j := range s.Indices {
		s.Values[i] = w[j]
	}
}

// reserve grows the index/value storage to capacity k, keeping length 0.
func (s *SparseVec) reserve(k int) {
	if cap(s.Indices) < k {
		s.Indices = make([]int32, 0, k)
	}
	if cap(s.Values) < k {
		s.Values = make([]float32, 0, k)
	}
	s.Indices = s.Indices[:0]
	s.Values = s.Values[:0]
}

// GatherMask builds (into dst, reused when non-nil) the sparse view of w at
// the mask's true coordinates — the bridge from the prune masks the knowledge
// extractor already computes to a wire-ready sparse update. len(mask) must
// equal len(w).
func GatherMask(dst *SparseVec, w []float32, mask []bool) *SparseVec {
	if len(mask) != len(w) {
		panic(fmt.Sprintf("tensor: GatherMask mask length %d, want %d", len(mask), len(w)))
	}
	if dst == nil {
		dst = &SparseVec{}
	}
	k := 0
	for _, use := range mask {
		if use {
			k++
		}
	}
	dst.N = len(w)
	dst.reserve(k)
	for i, use := range mask {
		if use {
			dst.Indices = append(dst.Indices, int32(i))
			dst.Values = append(dst.Values, w[i])
		}
	}
	return dst
}

// GatherNonzeros builds (into dst, reused when non-nil) the sparse view of
// w's nonzero coordinates. Negative zero counts as zero.
func GatherNonzeros(dst *SparseVec, w []float32) *SparseVec {
	if dst == nil {
		dst = &SparseVec{}
	}
	k := 0
	for _, v := range w {
		if v != 0 {
			k++
		}
	}
	dst.N = len(w)
	dst.reserve(k)
	for i, v := range w {
		if v != 0 {
			dst.Indices = append(dst.Indices, int32(i))
			dst.Values = append(dst.Values, v)
		}
	}
	return dst
}

// sparseParMin is the stored-coordinate count above which the sparse kernels
// fan out over the shared kernel pool; below it the parallel dispatch costs
// more than the arithmetic.
const sparseParMin = 1 << 15

// AxpySparse computes dst += a·x over only x's stored coordinates, skipping
// the zeros a dense Axpy would multiply through. Indices are strictly
// ascending and unique, so chunks write disjoint coordinates and the result
// is bitwise identical for every thread count.
func AxpySparse(dst []float32, a float32, x *SparseVec) {
	if len(dst) != x.N {
		panic(fmt.Sprintf("tensor: AxpySparse length %d, want %d", len(dst), x.N))
	}
	k := len(x.Indices)
	if k >= sparseParMin {
		Parallel(k, func(lo, hi int) { axpySparseRange(dst, a, x, lo, hi) })
		return
	}
	axpySparseRange(dst, a, x, 0, k)
}

func axpySparseRange(dst []float32, a float32, x *SparseVec, lo, hi int) {
	idx, val := x.Indices[lo:hi], x.Values[lo:hi]
	for len(idx) >= 4 {
		dst[idx[0]] += a * val[0]
		dst[idx[1]] += a * val[1]
		dst[idx[2]] += a * val[2]
		dst[idx[3]] += a * val[3]
		idx, val = idx[4:], val[4:]
	}
	for i, j := range idx {
		dst[j] += a * val[i]
	}
}

// ScaleAddSparse computes dst[j] = s·dst[j] + a·x[j] at x's stored
// coordinates — the fused scale-and-accumulate a server-side momentum or
// sharded partial-merge step needs, touching only the active knowledge.
func ScaleAddSparse(dst []float32, s, a float32, x *SparseVec) {
	if len(dst) != x.N {
		panic(fmt.Sprintf("tensor: ScaleAddSparse length %d, want %d", len(dst), x.N))
	}
	k := len(x.Indices)
	if k >= sparseParMin {
		Parallel(k, func(lo, hi int) { scaleAddSparseRange(dst, s, a, x, lo, hi) })
		return
	}
	scaleAddSparseRange(dst, s, a, x, 0, k)
}

func scaleAddSparseRange(dst []float32, s, a float32, x *SparseVec, lo, hi int) {
	idx, val := x.Indices[lo:hi], x.Values[lo:hi]
	for i, j := range idx {
		dst[j] = s*dst[j] + a*val[i]
	}
}

// ScaleIndexed multiplies dst by s at the given coordinates only (ascending,
// unique) — the final FedAvg normalisation over a round's touched-coordinate
// union, costing O(active knowledge) instead of O(model).
func ScaleIndexed(dst []float32, s float32, idx []int32) {
	if len(idx) >= sparseParMin {
		Parallel(len(idx), func(lo, hi int) { scaleIndexedRange(dst, s, idx, lo, hi) })
		return
	}
	scaleIndexedRange(dst, s, idx, 0, len(idx))
}

func scaleIndexedRange(dst []float32, s float32, idx []int32, lo, hi int) {
	for _, j := range idx[lo:hi] {
		dst[j] *= s
	}
}

// AxpyOffset computes dst[idx[i]-off] += a·val[i] — the shard-local form of
// AxpySparse: a per-shard reducer owns the contiguous coordinate range
// [off, off+len(dst)) and folds the subrange of a sparse update that falls
// inside it into its own accumulator. Indices are strictly ascending and must
// all lie in the shard's range. Sequential by design: callers parallelise
// over shards, whose accumulators are disjoint.
func AxpyOffset(dst []float32, a float32, idx []int32, val []float32, off int32) {
	for len(idx) >= 4 {
		dst[idx[0]-off] += a * val[0]
		dst[idx[1]-off] += a * val[1]
		dst[idx[2]-off] += a * val[2]
		dst[idx[3]-off] += a * val[3]
		idx, val = idx[4:], val[4:]
	}
	for i, j := range idx {
		dst[j-off] += a * val[i]
	}
}

// ScaleScatterOffset computes dst[idx[i]] = s·src[idx[i]-off] — the sparse
// partial-merge kernel: a per-shard reducer's accumulator (src, owning the
// contiguous range [off, off+len(src))) is normalised and scattered into the
// full-length merged vector at the shard's touched coordinates. Sequential by
// design: callers parallelise over shards, whose output ranges are disjoint.
func ScaleScatterOffset(dst []float32, s float32, src []float32, idx []int32, off int32) {
	for len(idx) >= 4 {
		dst[idx[0]] = s * src[idx[0]-off]
		dst[idx[1]] = s * src[idx[1]-off]
		dst[idx[2]] = s * src[idx[2]-off]
		dst[idx[3]] = s * src[idx[3]-off]
		idx = idx[4:]
	}
	for _, j := range idx {
		dst[j] = s * src[j-off]
	}
}

// ScaleInto computes dst[i] = s·src[i] — the dense partial-merge kernel for a
// shard whose whole range participated. len(src) must equal len(dst).
// Sequential by design: callers parallelise over shards.
func ScaleInto(dst, src []float32, s float32) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("tensor: ScaleInto length %d, want %d", len(src), len(dst)))
	}
	for i, v := range src {
		dst[i] = s * v
	}
}

// SearchInt32 returns the smallest i with a[i] >= v (len(a) when none), by
// binary search over a strictly-ascending list — how a sharded reducer
// locates its contiguous subrange of a sparse update's index list.
func SearchInt32(a []int32, v int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// MergeIndices merges two strictly-ascending unique index lists into dst
// (reused, returned), producing their strictly-ascending union — the
// bookkeeping a streaming sparse aggregator keeps so it can normalise and
// clear only the coordinates a round actually touched.
func MergeIndices(dst, a, b []int32) []int32 {
	need := len(a) + len(b)
	if cap(dst) < need {
		dst = make([]int32, need)
	}
	dst = dst[:need]
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		va, vb := a[i], b[j]
		if va <= vb {
			dst[k] = va
			i++
			if va == vb {
				j++
			}
		} else {
			dst[k] = vb
			j++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	k += copy(dst[k:], b[j:])
	return dst[:k]
}
