//go:build !amd64

package tensor

var hasDot4 = false

// dot4fma is never called on non-amd64 builds (hasDot4 is false).
func dot4fma(a, b0, b1, b2, b3 *float32, n int, out *[4]float32) {
	panic("tensor: dot4fma without hardware support")
}
