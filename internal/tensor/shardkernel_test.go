package tensor

import "testing"

// TestAxpyOffsetMatchesAxpySparse: folding a sparse update shard by shard
// through AxpyOffset must produce exactly the bits of one whole-vector
// AxpySparse — the property the sharded aggregator's bitwise contract rests
// on (disjoint coordinates, identical per-coordinate arithmetic).
func TestAxpyOffsetMatchesAxpySparse(t *testing.T) {
	rng := NewRNG(7)
	n := 1000
	w := make([]float32, n)
	mask := make([]bool, n)
	for i := range w {
		w[i] = float32(rng.Norm())
		mask[i] = rng.Float64() < 0.3
	}
	x := GatherMask(nil, w, mask)
	const a = float32(0.37)

	want := make([]float32, n)
	AxpySparse(want, a, x)

	got := make([]float32, n)
	for _, bounds := range [][2]int{{0, 250}, {250, 251}, {251, 700}, {700, 1000}} {
		lo, hi := bounds[0], bounds[1]
		i0 := SearchInt32(x.Indices, int32(lo))
		i1 := SearchInt32(x.Indices, int32(hi))
		acc := make([]float32, hi-lo)
		AxpyOffset(acc, a, x.Indices[i0:i1], x.Values[i0:i1], int32(lo))
		for j := lo; j < hi; j++ {
			got[j] += acc[j-lo]
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coordinate %d: sharded %v, whole-vector %v", i, got[i], want[i])
		}
	}
}

// TestScaleScatterOffset: normalising a shard accumulator into the merged
// vector must write s·src at exactly the listed coordinates and touch
// nothing else.
func TestScaleScatterOffset(t *testing.T) {
	src := []float32{2, 4, 6, 8} // shard range [10, 14)
	dst := make([]float32, 20)
	dst[9], dst[14] = 99, 99 // sentinels outside the shard
	dst[11] = 55             // in-range but untouched coordinate
	ScaleScatterOffset(dst, 0.5, src, []int32{10, 12, 13}, 10)
	want := map[int]float32{9: 99, 14: 99, 10: 1, 11: 55, 12: 3, 13: 4}
	for j, v := range want {
		if dst[j] != v {
			t.Fatalf("dst[%d] = %v, want %v", j, dst[j], v)
		}
	}
}

// TestScaleInto checks the dense merge kernel and its length panic.
func TestScaleInto(t *testing.T) {
	dst := make([]float32, 3)
	ScaleInto(dst, []float32{2, -4, 8}, 0.25)
	for i, want := range []float32{0.5, -1, 2} {
		if dst[i] != want {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	ScaleInto(dst, []float32{1}, 1)
}

// TestSearchInt32 pins the lower-bound semantics on boundaries.
func TestSearchInt32(t *testing.T) {
	a := []int32{2, 5, 9}
	cases := []struct {
		v    int32
		want int
	}{{0, 0}, {2, 0}, {3, 1}, {5, 1}, {6, 2}, {9, 2}, {10, 3}}
	for _, c := range cases {
		if got := SearchInt32(a, c.v); got != c.want {
			t.Fatalf("SearchInt32(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := SearchInt32(nil, 1); got != 0 {
		t.Fatalf("empty list: got %d, want 0", got)
	}
}
