package tensor

import "sync"

// GEMM kernel layer.
//
// The kernel normalises both operands to k-contiguous layouts — op(A) rows
// and op(B) columns — then runs a register-tiled dot-product micro-kernel
// (one A row against four B columns, eight independent accumulators) over
// column chunks sized to stay L2-resident. On this substrate's shapes the
// dot form beats axpy/outer-product tilings because it performs one store
// per k multiply-adds and every inner-loop read is sequential.
//
// Layout normalisation is what makes the four transpose variants uniform:
//   - op(B) columns are already contiguous when transB is set (row-major
//     B^T), so the common Linear-forward case x×W^T needs no packing at all;
//   - otherwise column chunks of B are transposed into a pooled buffer;
//   - op(A) rows are contiguous unless transA is set, in which case A^T is
//     packed once.
//
// Determinism: for a fixed problem shape the blocking, chunking, and
// per-element accumulation order are fixed by the shape alone. Parallelism
// only distributes disjoint row ranges of C across workers, so results are
// bitwise identical for every KernelThreads setting.
const (
	// gemmSmall is the m*k*n volume below which normalise-and-tile overhead
	// outweighs its wins and a direct loop is used instead.
	gemmSmall = 16 * 1024

	// gemmParallelCutoff is the m*k*n volume below which the kernel stays
	// single-threaded: spawning workers costs more than the multiply.
	gemmParallelCutoff = 96 * 1024

	// gemmChunkFloats bounds the packed B^T chunk (columns × k) so it stays
	// comfortably inside L2 while the kernel makes m passes over it.
	gemmChunkFloats = 64 * 1024
)

// packPool recycles packing buffers across Gemm calls (and across the
// per-client goroutines of the federated engine), keeping steady-state
// allocations at zero. Pointers are pooled to avoid boxing slice headers.
var packPool = sync.Pool{New: func() any { return new([]float32) }}

func getPack(n int) *[]float32 {
	p := packPool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

func putPack(p *[]float32) { packPool.Put(p) }

// Gemm computes C += op(A)×op(B) into c (m×n), where op transposes when the
// corresponding flag is set. A is m×k (or k×m when transposed), B is k×n (or
// n×k when transposed). c must be pre-sized m*n; it is accumulated into, so
// callers wanting plain assignment must zero it first.
func Gemm(c, a, b []float32, m, k, n int, transA, transB bool) {
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	if m*k*n <= gemmSmall {
		gemmDirect(c, a, b, m, k, n, transA, transB)
		return
	}
	// FedKNOW's knowledge models are ~90 % zeros (§III-B retains the top-ρ
	// weights over a zero base). When op(A) is that sparse, skipping zero
	// multipliers beats the dense kernel by the sparsity factor, so route
	// the two B-untransposed variants through an axpy loop with a zero skip.
	// The decision depends only on the operand values, never on the thread
	// count, so it cannot break determinism.
	if !transB && sparseEnough(a[:m*k]) {
		gemmSparseA(c, a, b, m, k, n, transA)
		return
	}

	// Normalise op(A) to row-major m×k.
	aRM := a
	var aPack *[]float32
	if transA {
		aPack = getPack(m * k)
		transposeInto(*aPack, a, k, m)
		aRM = *aPack
	}

	// Closure construction is skipped entirely on the single-threaded path so
	// steady-state training allocates nothing.
	runParallel := m*k*n >= gemmParallelCutoff && KernelThreads() > 1

	if transB {
		// op(B)^T is row-major B itself: columns already k-contiguous.
		if runParallel {
			Parallel(m, func(lo, hi int) { gemmDotRows(c, aRM, b, k, n, 0, n, lo, hi) })
		} else {
			gemmDotRows(c, aRM, b, k, n, 0, n, 0, m)
		}
	} else {
		nc := (gemmChunkFloats / k) &^ 3
		if nc < 4 {
			nc = 4
		}
		btPack := getPack(min(nc, n) * k)
		bt := *btPack
		for jc := 0; jc < n; jc += nc {
			w := min(nc, n-jc)
			packBT(bt, b, k, n, jc, w)
			if runParallel {
				Parallel(m, func(lo, hi int) { gemmDotRows(c, aRM, bt, k, n, jc, w, lo, hi) })
			} else {
				gemmDotRows(c, aRM, bt, k, n, jc, w, 0, m)
			}
		}
		putPack(btPack)
	}
	if aPack != nil {
		putPack(aPack)
	}
}

// gemmDotRows multiplies rows [lo, hi) of the row-major aRM against the w
// k-contiguous columns held in bt, accumulating into C columns [jc, jc+w).
// Four columns are processed per pass so every a-load feeds four multiply-add
// chains; eight independent accumulators keep the FP pipes busy.
func gemmDotRows(c, aRM, bt []float32, k, n, jc, w, lo, hi int) {
	useFMA := hasDot4 && k >= 8
	kBlk := k &^ 7
	for i := lo; i < hi; i++ {
		ai := aRM[i*k : i*k+k : i*k+k]
		ci := c[i*n+jc : i*n+jc+w]
		j := 0
		for ; j+4 <= w; j += 4 {
			b0 := bt[j*k : (j+1)*k : (j+1)*k]
			b1 := bt[(j+1)*k : (j+2)*k : (j+2)*k]
			b2 := bt[(j+2)*k : (j+3)*k : (j+3)*k]
			b3 := bt[(j+3)*k : (j+4)*k : (j+4)*k]
			var s0, s1, s2, s3 float32
			p := 0
			if useFMA {
				var acc [4]float32
				dot4fma(&ai[0], &b0[0], &b1[0], &b2[0], &b3[0], kBlk, &acc)
				s0, s1, s2, s3 = acc[0], acc[1], acc[2], acc[3]
				p = kBlk
			}
			for ; p < len(ai); p++ {
				av := ai[p]
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			ci[j] += s0
			ci[j+1] += s1
			ci[j+2] += s2
			ci[j+3] += s3
		}
		for ; j < w; j++ {
			ci[j] += dot32(ai, bt[j*k:(j+1)*k])
		}
	}
}

// packBT transposes columns [jc, jc+w) of the row-major k×n matrix b into
// bt, so that bt[j*k:(j+1)*k] is column jc+j of b.
func packBT(bt, b []float32, k, n, jc, w int) {
	for p := 0; p < k; p++ {
		src := b[p*n+jc : p*n+jc+w]
		for j, v := range src {
			bt[j*k+p] = v
		}
	}
}

// transposeInto writes the r×c row-major matrix src into dst column-major (i.e.
// dst is the c×r row-major transpose).
func transposeInto(dst, src []float32, r, c int) {
	for p := 0; p < r; p++ {
		row := src[p*c : (p+1)*c]
		for j, v := range row {
			dst[j*r+p] = v
		}
	}
}

// sparseEnough reports whether the op(A) operand looks ≥60 % zero. Large
// operands are judged from a 128-point stride sample — the choice only
// selects between two correct kernels, so sampling error merely costs a few
// per cent of speed on borderline inputs. Knowledge models (ρ=10 % retained)
// and masked logit gradients sit far from the boundary. The decision is a
// pure function of the operand values, so it is identical for every thread
// setting.
func sparseEnough(a []float32) bool {
	zeros := 0
	if len(a) > 512 {
		step := len(a) / 128
		probes := 0
		for i := 0; i < len(a); i += step {
			if a[i] == 0 {
				zeros++
			}
			probes++
		}
		return zeros*10 >= probes*6
	}
	for _, v := range a {
		if v == 0 {
			zeros++
		}
	}
	return zeros*10 >= len(a)*6
}

// gemmSparseA computes C += op(A)×B for a mostly-zero op(A): per output row,
// zero multipliers are skipped entirely. Rows are distributed across the
// kernel pool; every element keeps a fixed accumulation order regardless of
// the worker count.
func gemmSparseA(c, a, b []float32, m, k, n int, transA bool) {
	if KernelThreads() <= 1 {
		gemmSparseARows(c, a, b, m, k, n, transA, 0, m)
		return
	}
	Parallel(m, func(lo, hi int) {
		gemmSparseARows(c, a, b, m, k, n, transA, lo, hi)
	})
}

func gemmSparseARows(c, a, b []float32, m, k, n int, transA bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		if transA {
			// op(A)[i][p] = a[p*m+i]
			for p := 0; p < k; p++ {
				if av := a[p*m+i]; av != 0 {
					AxpySlice(ci, av, b[p*n:(p+1)*n])
				}
			}
		} else {
			ai := a[i*k : (i+1)*k]
			for p, av := range ai {
				if av != 0 {
					AxpySlice(ci, av, b[p*n:(p+1)*n])
				}
			}
		}
	}
}

// gemmDirect handles problems too small to amortise layout normalisation:
// the classic loop nests with branch-free inner loops.
func gemmDirect(c, a, b []float32, m, k, n int, transA, transB bool) {
	switch {
	case !transA && !transB:
		for i := 0; i < m; i++ {
			ci := c[i*n : (i+1)*n]
			ai := a[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				av := ai[p]
				bp := b[p*n : (p+1)*n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	case transA && !transB:
		// A is k×m, op(A) is m×k.
		for p := 0; p < k; p++ {
			ap := a[p*m : (p+1)*m]
			bp := b[p*n : (p+1)*n]
			for i := 0; i < m; i++ {
				av := ap[i]
				if av == 0 {
					continue
				}
				ci := c[i*n : (i+1)*n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	case !transA && transB:
		// B is n×k, op(B) is k×n.
		for i := 0; i < m; i++ {
			ai := a[i*k : (i+1)*k]
			ci := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b[j*k : (j+1)*k]
				ci[j] += dot32(ai, bj)
			}
		}
	default: // transA && transB
		for i := 0; i < m; i++ {
			ci := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b[j*k : (j+1)*k]
				var s float32
				for p := 0; p < k; p++ {
					s += a[p*m+i] * bj[p]
				}
				ci[j] += s
			}
		}
	}
}

// dot32 is a 4-way unrolled float32 dot product.
func dot32(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	for len(a) >= 4 && len(b) >= 4 {
		s0 += a[0] * b[0]
		s1 += a[1] * b[1]
		s2 += a[2] * b[2]
		s3 += a[3] * b[3]
		a = a[4:]
		b = b[4:]
	}
	s := s0 + s1 + s2 + s3
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
