package tensor

import (
	"math"
	"testing"
)

// randSparse builds an n-length sparse vector with roughly frac·n stored
// coordinates and a dense reference holding the same values.
func randSparse(rng *RNG, n int, frac float64) (*SparseVec, []float32) {
	sv := &SparseVec{N: n}
	dense := make([]float32, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < frac {
			v := float32(rng.Norm())
			sv.Indices = append(sv.Indices, int32(i))
			sv.Values = append(sv.Values, v)
			dense[i] = v
		}
	}
	return sv, dense
}

func TestAxpySparseMatchesDense(t *testing.T) {
	rng := NewRNG(1)
	for _, n := range []int{0, 1, 7, 1000, sparseParMin + 33} {
		sv, dense := randSparse(rng, n, 0.1)
		got := make([]float32, n)
		want := make([]float32, n)
		for i := range got {
			v := float32(rng.Norm())
			got[i], want[i] = v, v
		}
		AxpySparse(got, 0.5, sv)
		AxpySlice(want, 0.5, dense)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: AxpySparse[%d] = %v, dense %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestAxpySparseDeterministicAcrossThreads(t *testing.T) {
	defer SetKernelThreads(0)
	rng := NewRNG(2)
	n := sparseParMin*4 + 17
	sv, _ := randSparse(rng, n, 0.3)
	base := make([]float32, n)
	for i := range base {
		base[i] = float32(rng.Norm())
	}
	run := func(threads int) []float32 {
		SetKernelThreads(threads)
		dst := append([]float32(nil), base...)
		AxpySparse(dst, 1.25, sv)
		return dst
	}
	ref := run(1)
	for _, threads := range []int{2, 4, 16} {
		got := run(threads)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("threads=%d: [%d] = %v, want %v", threads, i, got[i], ref[i])
			}
		}
	}
}

func TestScaleAddSparse(t *testing.T) {
	sv := &SparseVec{N: 5, Indices: []int32{1, 3}, Values: []float32{2, -4}}
	dst := []float32{1, 1, 1, 1, 1}
	ScaleAddSparse(dst, 0.5, 2, sv)
	want := []float32{1, 4.5, 1, -7.5, 1} // 0.5·1 + 2·v at stored coords only
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestScaleIndexed(t *testing.T) {
	dst := []float32{1, 2, 3, 4}
	ScaleIndexed(dst, 10, []int32{0, 2})
	want := []float32{10, 2, 30, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestGatherMaskAndNonzeros(t *testing.T) {
	w := []float32{0, 1.5, 0, -2, float32(math.Copysign(0, -1)), 3}
	mask := []bool{false, true, false, true, false, false}
	sv := GatherMask(nil, w, mask)
	if sv.N != 6 || sv.Len() != 2 || sv.Indices[0] != 1 || sv.Indices[1] != 3 ||
		sv.Values[0] != 1.5 || sv.Values[1] != -2 {
		t.Fatalf("GatherMask: %+v", sv)
	}
	// Scratch reuse: a second gather into the same vec must not allocate new
	// slices when capacity suffices.
	idxPtr := &sv.Indices[:1][0]
	GatherMask(sv, w, mask)
	if &sv.Indices[:1][0] != idxPtr {
		t.Fatal("GatherMask reallocated despite sufficient capacity")
	}

	nz := GatherNonzeros(nil, w)
	// -0 counts as zero for value-level sparsity.
	if nz.Len() != 3 || nz.Indices[0] != 1 || nz.Indices[1] != 3 || nz.Indices[2] != 5 {
		t.Fatalf("GatherNonzeros: %+v", nz)
	}
}

func TestSparseVecDensifyRoundTrip(t *testing.T) {
	sv := &SparseVec{N: 4, Indices: []int32{0, 2}, Values: []float32{9, -1}}
	d := sv.Densify()
	want := []float32{9, 0, -1, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Densify[%d] = %v", i, d[i])
		}
	}
	into := sv.DensifyInto(make([]float32, 0, 8))
	for i := range want {
		if into[i] != want[i] {
			t.Fatalf("DensifyInto[%d] = %v", i, into[i])
		}
	}
	sv.Refresh([]float32{7, 0, 8, 0})
	if sv.Values[0] != 7 || sv.Values[1] != 8 {
		t.Fatalf("Refresh: %v", sv.Values)
	}
}

func TestMergeIndices(t *testing.T) {
	cases := []struct{ a, b, want []int32 }{
		{nil, nil, nil},
		{[]int32{1, 3}, nil, []int32{1, 3}},
		{nil, []int32{2}, []int32{2}},
		{[]int32{1, 3, 5}, []int32{1, 3, 5}, []int32{1, 3, 5}},
		{[]int32{1, 4}, []int32{2, 4, 9}, []int32{1, 2, 4, 9}},
	}
	for _, c := range cases {
		got := MergeIndices(nil, c.a, c.b)
		if len(got) != len(c.want) {
			t.Fatalf("merge(%v,%v) = %v", c.a, c.b, got)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("merge(%v,%v) = %v", c.a, c.b, got)
			}
		}
	}
}

func TestAxpySparseNoAllocs(t *testing.T) {
	defer SetKernelThreads(0)
	SetKernelThreads(1)
	rng := NewRNG(3)
	sv, _ := randSparse(rng, 4096, 0.1)
	dst := make([]float32, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		AxpySparse(dst, 0.5, sv)
		ScaleIndexed(dst, 0.9, sv.Indices)
	})
	if allocs != 0 {
		t.Fatalf("sparse kernels allocate %v per op", allocs)
	}
}
