package tensor

import (
	"math"
	"sort"
	"testing"
)

// naiveTrimmedMean computes the per-coordinate trimmed weighted mean with
// sort.SliceStable — the specification TrimmedMeanCols must match bitwise.
func naiveTrimmedMean(rows [][]float32, weights []float64, trim int) []float32 {
	n := len(rows[0])
	out := make([]float32, n)
	for j := 0; j < n; j++ {
		type pair struct {
			v float32
			w float64
		}
		ps := make([]pair, len(rows))
		for i, r := range rows {
			w := weights[i]
			if w <= 0 {
				w = 1
			}
			ps[i] = pair{r[j], w}
		}
		sort.SliceStable(ps, func(a, b int) bool { return ps[a].v < ps[b].v })
		var sum, wsum float64
		for _, p := range ps[trim : len(ps)-trim] {
			sum += p.w * float64(p.v)
			wsum += p.w
		}
		out[j] = float32(sum / wsum)
	}
	return out
}

func randRows(rng *RNG, m, n int) ([][]float32, []float64) {
	rows := make([][]float32, m)
	weights := make([]float64, m)
	for i := range rows {
		rows[i] = make([]float32, n)
		for j := range rows[i] {
			rows[i][j] = float32(rng.Norm())
		}
		weights[i] = 1 + rng.Float64()*3
	}
	// Inject ties so the stability tie-break is actually exercised.
	if m >= 3 && n >= 2 {
		rows[0][1] = rows[m-1][1]
		rows[1][0] = rows[2][0]
	}
	return rows, weights
}

func TestTrimmedMeanColsMatchesNaive(t *testing.T) {
	rng := NewRNG(3)
	for _, m := range []int{1, 3, 5, 8} {
		for _, trim := range []int{0, 1, 2} {
			if 2*trim >= m {
				continue
			}
			rows, weights := randRows(rng, m, 257)
			want := naiveTrimmedMean(rows, weights, trim)
			got := make([]float32, 257)
			TrimmedMeanCols(got, rows, weights, trim)
			for j := range want {
				if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
					t.Fatalf("m=%d trim=%d coord %d: got %v want %v", m, trim, j, got[j], want[j])
				}
			}
		}
	}
}

func TestMedianColsMatchesNaive(t *testing.T) {
	rng := NewRNG(5)
	for _, m := range []int{1, 2, 3, 4, 7, 8} {
		rows, _ := randRows(rng, m, 129)
		got := make([]float32, 129)
		MedianCols(got, rows)
		for j := 0; j < 129; j++ {
			col := make([]float64, m)
			for i, r := range rows {
				col[i] = float64(r[j])
			}
			sort.Float64s(col)
			var want float32
			if m%2 == 1 {
				want = float32(col[m/2])
			} else {
				want = float32((col[m/2-1] + col[m/2]) / 2)
			}
			if math.Float32bits(got[j]) != math.Float32bits(want) {
				t.Fatalf("m=%d coord %d: got %v want %v", m, j, got[j], want)
			}
		}
	}
}

// TestSelectColsDeterministicAcrossThreads: the per-coordinate kernels must
// produce the same bits for every kernel-thread setting — the property the
// robust aggregators' determinism contract rests on.
func TestSelectColsDeterministicAcrossThreads(t *testing.T) {
	rng := NewRNG(9)
	rows, weights := randRows(rng, 9, 4096)
	defer SetKernelThreads(0)

	SetKernelThreads(1)
	tmRef := make([]float32, 4096)
	TrimmedMeanCols(tmRef, rows, weights, 2)
	medRef := make([]float32, 4096)
	MedianCols(medRef, rows)

	for _, threads := range []int{2, 4, 16} {
		SetKernelThreads(threads)
		tm := make([]float32, 4096)
		TrimmedMeanCols(tm, rows, weights, 2)
		med := make([]float32, 4096)
		MedianCols(med, rows)
		for j := range tmRef {
			if math.Float32bits(tm[j]) != math.Float32bits(tmRef[j]) {
				t.Fatalf("threads=%d: trimmed mean differs at %d", threads, j)
			}
			if math.Float32bits(med[j]) != math.Float32bits(medRef[j]) {
				t.Fatalf("threads=%d: median differs at %d", threads, j)
			}
		}
	}
}

func TestSqDist64(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{2, 0, 3}
	if got := SqDist64(a, b); got != 5 {
		t.Fatalf("SqDist64 = %v, want 5", got)
	}
	if got := SqDist64(nil, nil); got != 0 {
		t.Fatalf("SqDist64(nil) = %v, want 0", got)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float32{0, -1, 2.5, math.MaxFloat32, -math.MaxFloat32}) {
		t.Fatal("finite slice reported non-finite")
	}
	if AllFinite([]float32{0, float32(math.NaN())}) {
		t.Fatal("NaN not detected")
	}
	if AllFinite([]float32{float32(math.Inf(1))}) {
		t.Fatal("+Inf not detected")
	}
	if AllFinite([]float32{0, 1, float32(math.Inf(-1))}) {
		t.Fatal("-Inf not detected")
	}
	if !AllFinite(nil) {
		t.Fatal("empty slice must be finite")
	}
}
