package tensor

import "math"

// Per-coordinate order-statistic kernels for Byzantine-robust aggregation.
//
// The robust rules (trimmed mean, coordinate median) need a small sort per
// coordinate across the round's updates. Rows are laid out update-major
// (rows[i] is client i's full parameter vector), so the kernels walk
// coordinate-major with a per-chunk scratch buffer and parallelise over
// disjoint coordinate ranges via Parallel — each coordinate's result depends
// only on that coordinate's column, never on the chunking, which keeps the
// output bitwise identical for every KernelThreads setting.

// TrimmedMeanCols writes into dst the per-coordinate beta-trimmed weighted
// mean of rows: for each coordinate the (value, weight) pairs are sorted by
// value (ties broken by ascending row index, so the result is deterministic),
// `trim` entries are dropped from each end, and the surviving values are
// combined as a float64 weighted mean. All rows must have len(dst) elements
// and 2*trim must be < len(rows). weights must have one entry per row; a
// non-positive weight counts as 1.
func TrimmedMeanCols(dst []float32, rows [][]float32, weights []float64, trim int) {
	m := len(rows)
	if m == 0 || 2*trim >= m {
		panic("tensor: TrimmedMeanCols needs 2*trim < len(rows)")
	}
	Parallel(len(dst), func(lo, hi int) {
		vals := make([]float32, m)
		ws := make([]float64, m)
		for j := lo; j < hi; j++ {
			for i, r := range rows {
				vals[i] = r[j]
				w := weights[i]
				if w <= 0 {
					w = 1
				}
				ws[i] = w
			}
			sortColumn(vals, ws)
			var sum, wsum float64
			for i := trim; i < m-trim; i++ {
				sum += ws[i] * float64(vals[i])
				wsum += ws[i]
			}
			dst[j] = float32(sum / wsum)
		}
	})
}

// MedianCols writes into dst the per-coordinate median of rows, ignoring
// weights (a Byzantine client controls its own weight, so the median treats
// every update equally). For an even number of rows the two middle values are
// averaged in float64. All rows must have len(dst) elements.
func MedianCols(dst []float32, rows [][]float32) {
	m := len(rows)
	if m == 0 {
		panic("tensor: MedianCols needs at least one row")
	}
	Parallel(len(dst), func(lo, hi int) {
		vals := make([]float32, m)
		for j := lo; j < hi; j++ {
			for i, r := range rows {
				vals[i] = r[j]
			}
			sortVals(vals)
			if m%2 == 1 {
				dst[j] = vals[m/2]
			} else {
				dst[j] = float32((float64(vals[m/2-1]) + float64(vals[m/2])) / 2)
			}
		}
	})
}

// SqDist64 returns the squared Euclidean distance between a and b accumulated
// in float64. The two slices must have equal length.
func SqDist64(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// AllFinite reports whether every element of x is a finite float32 (no NaN,
// no ±Inf). It checks the exponent bits directly so the scan stays branch-light
// on the server's ingest path.
func AllFinite(x []float32) bool {
	for _, v := range x {
		if (math.Float32bits(v)>>23)&0xFF == 0xFF {
			return false
		}
	}
	return true
}

// sortColumn insertion-sorts the (value, weight) pairs by ascending value.
// Insertion sort is stable, so equal values keep their ascending-row-index
// order — the tie-break that makes the trimmed mean deterministic. Columns are
// cohort-sized (tens of entries), where insertion sort beats sort.Slice by a
// wide margin and allocates nothing.
func sortColumn(vals []float32, ws []float64) {
	for i := 1; i < len(vals); i++ {
		v, w := vals[i], ws[i]
		j := i - 1
		for j >= 0 && vals[j] > v {
			vals[j+1], ws[j+1] = vals[j], ws[j]
			j--
		}
		vals[j+1], ws[j+1] = v, w
	}
}

// sortVals insertion-sorts values ascending (see sortColumn for why).
func sortVals(vals []float32) {
	for i := 1; i < len(vals); i++ {
		v := vals[i]
		j := i - 1
		for j >= 0 && vals[j] > v {
			vals[j+1] = vals[j]
			j--
		}
		vals[j+1] = v
	}
}
