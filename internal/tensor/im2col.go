package tensor

// outRange returns the [lo, hi) range of output coordinates whose input tap
// o*stride + k - pad lands inside [0, extent). Hoisting the bounds out of
// the per-pixel loops removes all branches from the copy kernels below.
func outRange(extent, k, stride, pad, out int) (lo, hi int) {
	// o*stride + k - pad >= 0  →  o >= ceil((pad-k)/stride)
	lo = 0
	if pad-k > 0 {
		lo = (pad - k + stride - 1) / stride
	}
	// o*stride + k - pad < extent  →  o < ceil((extent+pad-k)/stride).
	// A tap past the padded extent gives a non-positive numerator, where
	// truncating division is not ceiling — clamp to an empty range instead
	// (the whole row is padding then, e.g. a kernel larger than the input).
	hi = extent + pad - k
	if hi <= 0 {
		hi = 0
	} else {
		hi = (hi + stride - 1) / stride
	}
	if hi > out {
		hi = out
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Im2Col lowers a single image (C×H×W, given as a flat slice) into a column
// matrix suitable for expressing convolution as GEMM. The output has
// C*kh*kw rows and outH*outW columns, written row-major into dst (which the
// caller must size to (C*kh*kw)*(outH*outW)). Zero padding is applied
// implicitly: out-of-range taps contribute 0. The interior of every row is
// a branch-free copy (a single memmove when stride is 1); only the padded
// fringe is zero-filled.
func Im2Col(dst, img []float32, c, h, w, kh, kw, stride, pad, outH, outW int) {
	cols := outH * outW
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			oyLo, oyHi := outRange(h, ky, stride, pad, outH)
			for kx := 0; kx < kw; kx++ {
				rowIdx := (ch*kh+ky)*kw + kx
				row := dst[rowIdx*cols : (rowIdx+1)*cols]
				oxLo, oxHi := outRange(w, kx, stride, pad, outW)
				clear(row[:oyLo*outW])
				for oy := oyLo; oy < oyHi; oy++ {
					iy := oy*stride + ky - pad
					src := img[base+iy*w : base+(iy+1)*w]
					out := row[oy*outW : (oy+1)*outW]
					clear(out[:oxLo])
					if oxHi <= oxLo {
						// Entire row is padding (tap outside the input).
					} else if stride == 1 {
						off := kx - pad
						copy(out[oxLo:oxHi], src[oxLo+off:])
					} else {
						for ox := oxLo; ox < oxHi; ox++ {
							out[ox] = src[ox*stride+kx-pad]
						}
					}
					clear(out[oxHi:])
				}
				clear(row[oyHi*outW:])
			}
		}
	}
}

// Col2Im accumulates the column matrix produced by Im2Col back into image
// gradient space (the adjoint of Im2Col). dst must be a c*h*w slice; values
// are added, so callers typically zero it first.
func Col2Im(dst, cols []float32, c, h, w, kh, kw, stride, pad, outH, outW int) {
	nCols := outH * outW
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			oyLo, oyHi := outRange(h, ky, stride, pad, outH)
			for kx := 0; kx < kw; kx++ {
				rowIdx := (ch*kh+ky)*kw + kx
				row := cols[rowIdx*nCols : (rowIdx+1)*nCols]
				oxLo, oxHi := outRange(w, kx, stride, pad, outW)
				if oxHi <= oxLo {
					continue
				}
				for oy := oyLo; oy < oyHi; oy++ {
					iy := oy*stride + ky - pad
					dstRow := dst[base+iy*w : base+(iy+1)*w]
					srcRow := row[oy*outW : (oy+1)*outW]
					if stride == 1 {
						off := kx - pad
						d := dstRow[oxLo+off : oxHi+off]
						s := srcRow[oxLo:oxHi]
						for i, v := range s {
							d[i] += v
						}
					} else {
						for ox := oxLo; ox < oxHi; ox++ {
							dstRow[ox*stride+kx-pad] += srcRow[ox]
						}
					}
				}
			}
		}
	}
}

// ConvOutSize returns the spatial output size of a convolution or pooling
// window of size k with the given stride and padding applied to extent in.
func ConvOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}
