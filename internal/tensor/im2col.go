package tensor

// Im2Col lowers a single image (C×H×W, given as a flat slice) into a column
// matrix suitable for expressing convolution as GEMM. The output has
// C*kh*kw rows and outH*outW columns, written row-major into dst (which the
// caller must size to (C*kh*kw)*(outH*outW)). Zero padding is applied
// implicitly: out-of-range taps contribute 0.
func Im2Col(dst, img []float32, c, h, w, kh, kw, stride, pad, outH, outW int) {
	cols := outH * outW
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				rowIdx := (ch*kh+ky)*kw + kx
				row := dst[rowIdx*cols : (rowIdx+1)*cols]
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						for ox := 0; ox < outW; ox++ {
							row[oy*outW+ox] = 0
						}
						continue
					}
					src := img[base+iy*w : base+(iy+1)*w]
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							row[oy*outW+ox] = 0
						} else {
							row[oy*outW+ox] = src[ix]
						}
					}
				}
			}
		}
	}
}

// Col2Im accumulates the column matrix produced by Im2Col back into image
// gradient space (the adjoint of Im2Col). dst must be a c*h*w slice; values
// are added, so callers typically zero it first.
func Col2Im(dst, cols []float32, c, h, w, kh, kw, stride, pad, outH, outW int) {
	nCols := outH * outW
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				rowIdx := (ch*kh+ky)*kw + kx
				row := cols[rowIdx*nCols : (rowIdx+1)*nCols]
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						dst[base+iy*w+ix] += row[oy*outW+ox]
					}
				}
			}
		}
	}
}

// ConvOutSize returns the spatial output size of a convolution or pooling
// window of size k with the given stride and padding applied to extent in.
func ConvOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}
