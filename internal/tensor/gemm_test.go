package tensor

import (
	"fmt"
	"math"
	"testing"
)

// gemmRef is the plain triple loop the optimised kernels are checked against.
func gemmRef(c, a, b []float32, m, k, n int, transA, transB bool) {
	at := func(i, p int) float32 {
		if transA {
			return a[p*m+i]
		}
		return a[i*k+p]
	}
	bt := func(p, j int) float32 {
		if transB {
			return b[j*k+p]
		}
		return b[p*n+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(at(i, p)) * float64(bt(p, j))
			}
			c[i*n+j] += float32(s)
		}
	}
}

func maxAbsDiff(a, b []float32) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(float64(a[i] - b[i])); d > worst {
			worst = d
		}
	}
	return worst
}

// TestGemmAgainstReference cross-checks the blocked kernel against the naive
// triple loop for every transpose variant, over shapes chosen to hit all the
// edge cases: micro-tile remainders, panel remainders, the small-problem
// direct path, and shapes larger than one cache block.
func TestGemmAgainstReference(t *testing.T) {
	defer SetKernelThreads(0)
	SetKernelThreads(4)
	rng := NewRNG(42)
	shapes := [][3]int{
		{1, 1, 1}, {1, 7, 1}, {3, 5, 2}, {4, 4, 4}, {5, 9, 6},
		{17, 31, 13}, {32, 144, 256}, {33, 65, 67}, {64, 64, 64},
		{64, 250, 100}, {100, 300, 50}, {8, 1024, 100}, {70, 500, 70},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				name := fmt.Sprintf("m%d_k%d_n%d_tA%v_tB%v", m, k, n, transA, transB)
				a := make([]float32, m*k)
				b := make([]float32, k*n)
				rng.FillNorm(a, 1)
				rng.FillNorm(b, 1)
				// Non-zero initial C exercises the accumulate contract.
				got := make([]float32, m*n)
				want := make([]float32, m*n)
				rng.FillNorm(got, 1)
				copy(want, got)
				Gemm(got, a, b, m, k, n, transA, transB)
				gemmRef(want, a, b, m, k, n, transA, transB)
				if d := maxAbsDiff(got, want); d > 1e-3*math.Sqrt(float64(k)) {
					t.Errorf("%s: max abs diff %g", name, d)
				}
			}
		}
	}
}

// TestGemmFMAFallbackAgree cross-checks the AVX2 micro-kernel against the
// pure-Go loop (they differ only in summation order, so agreement is to
// tolerance). Skipped on machines without the FMA kernel.
func TestGemmFMAFallbackAgree(t *testing.T) {
	if !hasDot4 {
		t.Skip("no AVX2+FMA kernel on this machine")
	}
	defer func() { hasDot4 = true }()
	rng := NewRNG(77)
	for _, sh := range [][3]int{{32, 144, 256}, {33, 65, 67}, {16, 1024, 100}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		rng.FillNorm(a, 1)
		rng.FillNorm(b, 1)
		for _, transB := range []bool{false, true} {
			hasDot4 = true
			fast := make([]float32, m*n)
			Gemm(fast, a, b, m, k, n, false, transB)
			hasDot4 = false
			slow := make([]float32, m*n)
			Gemm(slow, a, b, m, k, n, false, transB)
			if d := maxAbsDiff(fast, slow); d > 1e-3*math.Sqrt(float64(k)) {
				t.Errorf("m%d k%d n%d tB%v: FMA vs fallback diff %g", m, k, n, transB, d)
			}
		}
	}
}

// TestGemmSparseAgainstReference checks the zero-skipping path used for
// FedKNOW's sparse knowledge models.
func TestGemmSparseAgainstReference(t *testing.T) {
	rng := NewRNG(43)
	m, k, n := 32, 144, 256
	for _, transA := range []bool{false, true} {
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		rng.FillNorm(a, 1)
		rng.FillNorm(b, 1)
		// ~90 % sparsity, like a ρ=10 % knowledge store.
		for i := range a {
			if rng.Float64() < 0.9 {
				a[i] = 0
			}
		}
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		Gemm(got, a, b, m, k, n, transA, false)
		gemmRef(want, a, b, m, k, n, transA, false)
		if d := maxAbsDiff(got, want); d > 1e-3 {
			t.Errorf("sparse transA=%v: max abs diff %g", transA, d)
		}
	}
}

// TestGemmDeterministicAcrossThreads requires bitwise-identical output for
// every kernel-thread setting: the acceptance bar for running the numeric
// substrate under fleet-level parallelism.
func TestGemmDeterministicAcrossThreads(t *testing.T) {
	defer SetKernelThreads(0)
	rng := NewRNG(44)
	shapes := [][3]int{{32, 144, 256}, {64, 576, 1024}, {8, 1024, 100}, {33, 65, 67}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		rng.FillNorm(a, 1)
		rng.FillNorm(b, 1)
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				var ref []float32
				for _, threads := range []int{1, 4, 16} {
					SetKernelThreads(threads)
					c := make([]float32, m*n)
					Gemm(c, a, b, m, k, n, transA, transB)
					if ref == nil {
						ref = c
						continue
					}
					for i := range c {
						if c[i] != ref[i] {
							t.Fatalf("m%d k%d n%d tA%v tB%v: threads=%d diverges at %d: %v vs %v",
								m, k, n, transA, transB, threads, i, c[i], ref[i])
						}
					}
				}
			}
		}
	}
}

// TestParallelCoversRange checks that Parallel partitions [0, n) exactly once
// for a spread of range sizes and thread settings.
func TestParallelCoversRange(t *testing.T) {
	defer SetKernelThreads(0)
	for _, threads := range []int{1, 2, 3, 8, 64} {
		SetKernelThreads(threads)
		for _, n := range []int{0, 1, 2, 5, 7, 64, 1000} {
			hits := make([]int32, n)
			var mu chanMutex = make(chan struct{}, 1)
			Parallel(n, func(lo, hi int) {
				mu.Lock()
				for i := lo; i < hi; i++ {
					hits[i]++
				}
				mu.Unlock()
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d n=%d: index %d visited %d times", threads, n, i, h)
				}
			}
		}
	}
}

type chanMutex chan struct{}

func (m chanMutex) Lock()   { m <- struct{}{} }
func (m chanMutex) Unlock() { <-m }

// TestEnsureReuses checks the scratch-buffer primitive.
func TestEnsureReuses(t *testing.T) {
	a := New(4, 8)
	base := &a.Data[0]
	b := Ensure(a, 2, 16)
	if b != a || &b.Data[0] != base {
		t.Fatal("Ensure must reuse storage when capacity suffices")
	}
	if b.Shape[0] != 2 || b.Shape[1] != 16 {
		t.Fatalf("shape %v", b.Shape)
	}
	c := Ensure(a, 10, 10)
	if len(c.Data) != 100 {
		t.Fatalf("grown len %d", len(c.Data))
	}
	if d := Ensure(nil, 3, 3); d == nil || len(d.Data) != 9 {
		t.Fatal("Ensure(nil) must allocate")
	}
}
