package tensor

import "math"

// RNG is a small, fast, deterministic PRNG (splitmix64 core) used everywhere
// randomness is needed. Experiments must be reproducible across runs and
// platforms, so the stack never touches math/rand's global state.
type RNG struct {
	state uint64
	// spare Gaussian from Box–Muller
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform sample in [0,n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard Gaussian sample via Box–Muller.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Perm returns a pseudo-random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns an independent generator derived from r and a label, so that
// subsystems (per-client, per-task) get decorrelated streams while remaining
// fully deterministic.
func (r *RNG) Fork(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0xA24BAED4963EE407))
}

// FillNorm fills dst with Gaussian samples scaled by std.
func (r *RNG) FillNorm(dst []float32, std float64) {
	for i := range dst {
		dst[i] = float32(r.Norm() * std)
	}
}

// FillUniform fills dst with uniform samples in [lo,hi).
func (r *RNG) FillUniform(dst []float32, lo, hi float64) {
	for i := range dst {
		dst[i] = float32(lo + (hi-lo)*r.Float64())
	}
}

// Randn allocates a tensor with Gaussian entries of the given std.
func Randn(r *RNG, std float64, shape ...int) *Tensor {
	t := New(shape...)
	r.FillNorm(t.Data, std)
	return t
}
