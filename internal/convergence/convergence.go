// Package convergence implements the quantities of the paper's §IV
// convergence analysis: the optimality gap H(r), the Lemma 1 bound on local
// weight training, the Lemma 2 / Assumption 3 bound on global (FedAvg)
// training, and checks of the Theorem 1 learning-rate constraints. The
// experiments use it to verify empirically that the bounds decay and that
// the configured schedules satisfy the theorem's conditions.
package convergence

import (
	"math"

	"repro/internal/opt"
)

// GapTracker accumulates per-iteration losses and reports the running
// optimality gap H(r)/r = (1/r)·Σ f(W_i) − f(W*) of Eq. 6–7. fStar is the
// (estimated) optimal loss; for empirical tracking, pass the best loss ever
// observed (the gap is then an upper-bound surrogate).
type GapTracker struct {
	losses []float64
	fStar  float64
	sum    float64
}

// NewGapTracker starts a tracker with an initial optimum estimate.
func NewGapTracker(fStar float64) *GapTracker {
	return &GapTracker{fStar: fStar}
}

// Observe records the loss of iteration r (appended in order). The optimum
// estimate tightens automatically if a smaller loss appears.
func (g *GapTracker) Observe(loss float64) {
	g.losses = append(g.losses, loss)
	g.sum += loss
	if loss < g.fStar {
		g.fStar = loss
	}
}

// Gap returns H(r)/r after r = len(observations) iterations.
func (g *GapTracker) Gap() float64 {
	r := len(g.losses)
	if r == 0 {
		return 0
	}
	return g.sum/float64(r) - g.fStar
}

// Iterations returns the number of observations.
func (g *GapTracker) Iterations() int { return len(g.losses) }

// LocalBound evaluates the Lemma 1 upper bound on local-weight training at
// iteration r:
//
//	E[f(W_r)] − f(W*) ≤ D² / (2 η_r r) + λ² η_r / 2
//
// where D bounds the parameter update norm (Assumption 2), λ bounds the
// stochastic gradient norm (Assumption 1) and η_r is the local learning
// rate at iteration r.
func LocalBound(d, lambda, etaR float64, r int) float64 {
	if r < 1 || etaR <= 0 {
		return math.Inf(1)
	}
	return d*d/(2*etaR*float64(r)) + lambda*lambda*etaR/2
}

// GlobalBoundParams carries the constants of Assumption 3 / Lemma 2.
type GlobalBoundParams struct {
	Mu     float64 // strong-convexity constant µ
	L      float64 // smoothness constant L
	Omega  float64 // Γ, the non-IID severity: f* − Σ p_i f_i(W*)
	SigmaP float64 // Σ p_i² σ_i², client gradient-variance term
	Lambda float64 // bound on the squared integrated gradient (Eq. 16)
	DistSq float64 // E‖W_r − W*‖²
}

// GlobalBound evaluates the Lemma 2 upper bound on global-weight training at
// iteration r:
//
//	E[f(W_r)] − f(W*) ≤ τ/(γ+r−1) · (2B/µ + µγ/2 · E‖W_r−W*‖²)
//
// with B = Σp_i²σ_i² + 6LΩ + 8(r−1)²λ², τ = L/µ, γ = max(8τ, r).
func GlobalBound(p GlobalBoundParams, r int) float64 {
	if r < 1 || p.Mu <= 0 {
		return math.Inf(1)
	}
	tau := p.L / p.Mu
	gamma := math.Max(8*tau, float64(r))
	b := p.SigmaP + 6*p.L*p.Omega + 8*math.Pow(float64(r-1), 2)*p.Lambda*p.Lambda
	return tau / (gamma + float64(r) - 1) * (2*b/p.Mu + p.Mu*gamma/2*p.DistSq)
}

// CheckLocalSchedule reports whether a schedule decays at the O(r^-1/2) rate
// Theorem 1 requires for local weights: η(4r)/η(r) must approach 1/2.
func CheckLocalSchedule(s opt.Schedule) bool {
	for _, r := range []int{16, 64, 256} {
		ratio := s.LR(4*r) / s.LR(r)
		if math.Abs(ratio-0.5) > 0.1 {
			return false
		}
	}
	return true
}

// CheckGlobalSchedule reports whether a schedule decays at the O(r^-1) rate
// and satisfies η_r ≤ 2/(µ(γ+r)) for the given µ and γ at every probe
// iteration: the Theorem 1 condition for global weights.
func CheckGlobalSchedule(s opt.Schedule, mu, gamma float64) bool {
	for _, r := range []int{64, 256, 1024} {
		ratio := s.LR(2*r) / s.LR(r)
		if math.Abs(ratio-0.5) > 0.1 {
			return false
		}
		if s.LR(r) > 2/(mu*(gamma+float64(r))) {
			return false
		}
	}
	return true
}

// IntegratedGradientBound evaluates Eq. 16's bound on the squared norm of
// the integrated gradient g′ = Gᵀv + g given the constraint-gradient bound
// λ (Assumption 1), the dual variables v and the gradient dot products: it
// returns λ²·(1+Σv)² — the triangle-inequality envelope the proof uses to
// keep Assumption 1 valid for g′.
func IntegratedGradientBound(lambda float64, v []float64) float64 {
	s := 1.0
	for _, vi := range v {
		s += vi
	}
	return lambda * lambda * s * s
}
