package convergence

import (
	"math"
	"testing"

	"repro/internal/opt"
)

func TestGapTrackerBasics(t *testing.T) {
	g := NewGapTracker(1.0)
	if g.Gap() != 0 {
		t.Fatal("empty tracker gap must be 0")
	}
	g.Observe(3)
	g.Observe(2)
	g.Observe(1)
	// mean = 2, f* tightened to 1 → gap = 1.
	if got := g.Gap(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Gap = %v, want 1", got)
	}
	if g.Iterations() != 3 {
		t.Fatalf("Iterations = %d", g.Iterations())
	}
}

func TestGapTrackerTightensOptimum(t *testing.T) {
	g := NewGapTracker(10)
	g.Observe(0.5) // f* becomes 0.5
	if got := g.Gap(); got != 0 {
		t.Fatalf("single observation at optimum: gap %v", got)
	}
}

func TestGapShrinksOnConvergingSequence(t *testing.T) {
	// A loss sequence decaying to 0.1 must show a decreasing gap, the
	// empirical statement of Eq. 7.
	g := NewGapTracker(0.1)
	var gaps []float64
	for r := 1; r <= 200; r++ {
		g.Observe(0.1 + 1.0/float64(r))
		if r%50 == 0 {
			gaps = append(gaps, g.Gap())
		}
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] >= gaps[i-1] {
			t.Fatalf("gap must shrink: %v", gaps)
		}
	}
}

func TestLocalBoundDecaysWithInvSqrtSchedule(t *testing.T) {
	// With η_r = c/√r, the Lemma 1 bound is O(1/√r): it must decay toward
	// zero as r grows.
	s := opt.InvSqrt{Base: 0.1}
	prev := math.Inf(1)
	for _, r := range []int{1, 10, 100, 10000, 1000000} {
		b := LocalBound(1, 1, s.LR(r), r)
		if b >= prev {
			t.Fatalf("bound must decrease: r=%d b=%v prev=%v", r, b, prev)
		}
		prev = b
	}
	if prev > 0.01 {
		t.Fatalf("bound at r=10^6 still %v", prev)
	}
}

func TestLocalBoundDegenerate(t *testing.T) {
	if !math.IsInf(LocalBound(1, 1, 0, 10), 1) {
		t.Fatal("zero lr must give infinite bound")
	}
	if !math.IsInf(LocalBound(1, 1, 0.1, 0), 1) {
		t.Fatal("r=0 must give infinite bound")
	}
}

func TestGlobalBoundFiniteAndShrinkingInDist(t *testing.T) {
	p := GlobalBoundParams{Mu: 1, L: 4, Omega: 0.1, SigmaP: 0.01, Lambda: 0.1, DistSq: 1}
	b1 := GlobalBound(p, 10)
	if math.IsInf(b1, 1) || b1 <= 0 {
		t.Fatalf("bound %v", b1)
	}
	p.DistSq = 0.1
	b2 := GlobalBound(p, 10)
	if b2 >= b1 {
		t.Fatal("closer iterate must give smaller bound")
	}
}

func TestGlobalBoundNonIIDSeverity(t *testing.T) {
	// Larger Ω (more severe non-IID) must worsen the bound — the formal
	// counterpart of the negative-transfer discussion.
	p := GlobalBoundParams{Mu: 1, L: 4, Omega: 0.1, SigmaP: 0.01, Lambda: 0.1, DistSq: 0.5}
	low := GlobalBound(p, 50)
	p.Omega = 1.0
	high := GlobalBound(p, 50)
	if high <= low {
		t.Fatalf("bound must grow with Ω: %v vs %v", low, high)
	}
}

func TestGlobalBoundDegenerate(t *testing.T) {
	if !math.IsInf(GlobalBound(GlobalBoundParams{}, 5), 1) {
		t.Fatal("µ=0 must give infinite bound")
	}
}

func TestCheckLocalSchedule(t *testing.T) {
	if !CheckLocalSchedule(opt.InvSqrt{Base: 0.01}) {
		t.Fatal("InvSqrt satisfies the O(r^-1/2) condition")
	}
	if CheckLocalSchedule(opt.Const{Rate: 0.01}) {
		t.Fatal("a constant schedule does not")
	}
	if CheckLocalSchedule(opt.Inv{Base: 0.01, Decay: 1}) {
		t.Fatal("O(r^-1) decays too fast for the local condition")
	}
}

func TestCheckGlobalSchedule(t *testing.T) {
	mu, gamma := 1.0, 32.0
	// Inv with decay 1 asymptotically halves per doubling and, with a small
	// base, stays below 2/(µ(γ+r)).
	if !CheckGlobalSchedule(opt.Inv{Base: 0.01, Decay: 1}, mu, gamma) {
		t.Fatal("Inv schedule should satisfy the global condition")
	}
	if CheckGlobalSchedule(opt.Const{Rate: 0.01}, mu, gamma) {
		t.Fatal("constant schedule must fail the decay condition")
	}
	// A huge base violates η ≤ 2/(µ(γ+r)) even though the rate is right.
	if CheckGlobalSchedule(opt.Inv{Base: 100, Decay: 1}, mu, gamma) {
		t.Fatal("oversized base must fail the magnitude condition")
	}
}

func TestIntegratedGradientBound(t *testing.T) {
	// No dual activity → the bound equals λ².
	if got := IntegratedGradientBound(2, nil); got != 4 {
		t.Fatalf("empty v: %v", got)
	}
	// v = (1, 1) → λ²·9.
	if got := IntegratedGradientBound(2, []float64{1, 1}); got != 36 {
		t.Fatalf("v=(1,1): %v", got)
	}
	// Monotone in Σv.
	if IntegratedGradientBound(1, []float64{0.5}) >= IntegratedGradientBound(1, []float64{1}) {
		t.Fatal("bound must grow with dual mass")
	}
}

// TestPaperScheduleConstraintsHold ties §V-B's searched hyperparameters to
// §IV: the decay configurations used in the experiments satisfy Theorem 1's
// conditions by construction (Inv decay for the global rate).
func TestPaperScheduleConstraintsHold(t *testing.T) {
	for _, base := range []float64{0.0005, 0.0008, 0.001, 0.005} {
		if !CheckGlobalSchedule(opt.Inv{Base: base, Decay: 1}, 1, 32) {
			t.Fatalf("paper lr %v violates the global condition", base)
		}
		if !CheckLocalSchedule(opt.InvSqrt{Base: base}) {
			t.Fatalf("paper lr %v violates the local condition", base)
		}
	}
}
