package nn

import (
	"math"

	"repro/internal/tensor"
)

// BatchNorm2D normalises each channel of an NCHW batch to zero mean and unit
// variance with learnable scale (gamma) and shift (beta). During evaluation
// it uses exponential running statistics collected in training.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64
	Gamma    *Param
	Beta     *Param

	RunningMean []float32
	RunningVar  []float32

	// forward cache
	lastXHat  *tensor.Tensor
	lastStd   []float64
	lastShape []int
}

// NewBatchNorm2D returns a batch-norm over c channels.
func NewBatchNorm2D(name string, c int, rng *tensor.RNG) *BatchNorm2D {
	g := tensor.New(c)
	g.Fill(1)
	bn := &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:       NewParam(name+".gamma", g),
		Beta:        NewParam(name+".beta", tensor.New(c)),
		RunningMean: make([]float32, c),
		RunningVar:  make([]float32, c),
	}
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward normalises per channel.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	spatial := h * w
	cnt := float64(n * spatial)
	y := tensor.New(x.Shape...)
	b.lastShape = append(b.lastShape[:0], x.Shape...)
	if train {
		b.lastXHat = tensor.New(x.Shape...)
		if cap(b.lastStd) < c {
			b.lastStd = make([]float64, c)
		}
		b.lastStd = b.lastStd[:c]
		for ch := 0; ch < c; ch++ {
			var mean float64
			for i := 0; i < n; i++ {
				base := (i*c + ch) * spatial
				for j := 0; j < spatial; j++ {
					mean += float64(x.Data[base+j])
				}
			}
			mean /= cnt
			var variance float64
			for i := 0; i < n; i++ {
				base := (i*c + ch) * spatial
				for j := 0; j < spatial; j++ {
					d := float64(x.Data[base+j]) - mean
					variance += d * d
				}
			}
			variance /= cnt
			std := math.Sqrt(variance + b.Eps)
			b.lastStd[ch] = std
			g, bt := float64(b.Gamma.W.Data[ch]), float64(b.Beta.W.Data[ch])
			for i := 0; i < n; i++ {
				base := (i*c + ch) * spatial
				for j := 0; j < spatial; j++ {
					xh := (float64(x.Data[base+j]) - mean) / std
					b.lastXHat.Data[base+j] = float32(xh)
					y.Data[base+j] = float32(g*xh + bt)
				}
			}
			b.RunningMean[ch] = float32((1-b.Momentum)*float64(b.RunningMean[ch]) + b.Momentum*mean)
			b.RunningVar[ch] = float32((1-b.Momentum)*float64(b.RunningVar[ch]) + b.Momentum*variance)
		}
		return y
	}
	for ch := 0; ch < c; ch++ {
		mean := float64(b.RunningMean[ch])
		std := math.Sqrt(float64(b.RunningVar[ch]) + b.Eps)
		g, bt := float64(b.Gamma.W.Data[ch]), float64(b.Beta.W.Data[ch])
		for i := 0; i < n; i++ {
			base := (i*c + ch) * spatial
			for j := 0; j < spatial; j++ {
				y.Data[base+j] = float32(g*(float64(x.Data[base+j])-mean)/std + bt)
			}
		}
	}
	return y
}

// Backward implements the standard batch-norm gradient.
func (b *BatchNorm2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, c := b.lastShape[0], b.lastShape[1]
	spatial := b.lastShape[2] * b.lastShape[3]
	cnt := float64(n * spatial)
	dx := tensor.New(b.lastShape...)
	for ch := 0; ch < c; ch++ {
		var sumDy, sumDyXHat float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * spatial
			for j := 0; j < spatial; j++ {
				g := float64(dout.Data[base+j])
				sumDy += g
				sumDyXHat += g * float64(b.lastXHat.Data[base+j])
			}
		}
		b.Beta.Grad.Data[ch] += float32(sumDy)
		b.Gamma.Grad.Data[ch] += float32(sumDyXHat)
		gamma := float64(b.Gamma.W.Data[ch])
		invStd := 1 / b.lastStd[ch]
		for i := 0; i < n; i++ {
			base := (i*c + ch) * spatial
			for j := 0; j < spatial; j++ {
				g := float64(dout.Data[base+j])
				xh := float64(b.lastXHat.Data[base+j])
				dx.Data[base+j] = float32(gamma * invStd * (g - sumDy/cnt - xh*sumDyXHat/cnt))
			}
		}
	}
	return dx
}

// Params returns gamma and beta.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }
