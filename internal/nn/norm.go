package nn

import (
	"math"

	"repro/internal/tensor"
)

// BatchNorm2D normalises each channel of an NCHW batch to zero mean and unit
// variance with learnable scale (gamma) and shift (beta). During evaluation
// it uses exponential running statistics collected in training.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64
	Gamma    *Param
	Beta     *Param

	RunningMean []float32
	RunningVar  []float32

	// forward cache
	lastXHat  *tensor.Tensor
	lastStd   []float64
	lastShape []int

	yBuf  *tensor.Tensor
	dxBuf *tensor.Tensor
}

// NewBatchNorm2D returns a batch-norm over c channels.
func NewBatchNorm2D(name string, c int, rng *tensor.RNG) *BatchNorm2D {
	g := tensor.New(c)
	g.Fill(1)
	bn := &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:       NewParam(name+".gamma", g),
		Beta:        NewParam(name+".beta", tensor.New(c)),
		RunningMean: make([]float32, c),
		RunningVar:  make([]float32, c),
	}
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward normalises per channel.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	spatial := h * w
	cnt := float64(n * spatial)
	b.yBuf = tensor.Ensure(b.yBuf, x.Shape...)
	y := b.yBuf
	b.lastShape = append(b.lastShape[:0], x.Shape...)
	if train {
		b.lastXHat = tensor.Ensure(b.lastXHat, x.Shape...)
		if cap(b.lastStd) < c {
			b.lastStd = make([]float64, c)
		}
		b.lastStd = b.lastStd[:c]
		for ch := 0; ch < c; ch++ {
			var mean float64
			for i := 0; i < n; i++ {
				base := (i*c + ch) * spatial
				for j := 0; j < spatial; j++ {
					mean += float64(x.Data[base+j])
				}
			}
			mean /= cnt
			var variance float64
			for i := 0; i < n; i++ {
				base := (i*c + ch) * spatial
				for j := 0; j < spatial; j++ {
					d := float64(x.Data[base+j]) - mean
					variance += d * d
				}
			}
			variance /= cnt
			std := math.Sqrt(variance + b.Eps)
			b.lastStd[ch] = std
			invStd := 1 / std
			g, bt := float64(b.Gamma.W.Data[ch]), float64(b.Beta.W.Data[ch])
			for i := 0; i < n; i++ {
				base := (i*c + ch) * spatial
				xRow := x.Data[base : base+spatial]
				xhRow := b.lastXHat.Data[base : base+spatial]
				yRow := y.Data[base : base+spatial]
				for j, v := range xRow {
					xh := (float64(v) - mean) * invStd
					xhRow[j] = float32(xh)
					yRow[j] = float32(g*xh + bt)
				}
			}
			b.RunningMean[ch] = float32((1-b.Momentum)*float64(b.RunningMean[ch]) + b.Momentum*mean)
			b.RunningVar[ch] = float32((1-b.Momentum)*float64(b.RunningVar[ch]) + b.Momentum*variance)
		}
		return y
	}
	for ch := 0; ch < c; ch++ {
		mean := float64(b.RunningMean[ch])
		std := math.Sqrt(float64(b.RunningVar[ch]) + b.Eps)
		g, bt := float64(b.Gamma.W.Data[ch]), float64(b.Beta.W.Data[ch])
		// y = scale*x + shift with the division hoisted out of the loop.
		scale := g / std
		shift := bt - g*mean/std
		for i := 0; i < n; i++ {
			base := (i*c + ch) * spatial
			xRow := x.Data[base : base+spatial]
			yRow := y.Data[base : base+spatial]
			for j, v := range xRow {
				yRow[j] = float32(scale*float64(v) + shift)
			}
		}
	}
	return y
}

// Backward implements the standard batch-norm gradient.
func (b *BatchNorm2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, c := b.lastShape[0], b.lastShape[1]
	spatial := b.lastShape[2] * b.lastShape[3]
	cnt := float64(n * spatial)
	b.dxBuf = tensor.Ensure(b.dxBuf, b.lastShape...)
	dx := b.dxBuf
	for ch := 0; ch < c; ch++ {
		var sumDy, sumDyXHat float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * spatial
			for j := 0; j < spatial; j++ {
				g := float64(dout.Data[base+j])
				sumDy += g
				sumDyXHat += g * float64(b.lastXHat.Data[base+j])
			}
		}
		b.Beta.Grad.Data[ch] += float32(sumDy)
		b.Gamma.Grad.Data[ch] += float32(sumDyXHat)
		gamma := float64(b.Gamma.W.Data[ch])
		a := gamma / b.lastStd[ch]
		meanDy := sumDy / cnt
		meanDyXHat := sumDyXHat / cnt
		for i := 0; i < n; i++ {
			base := (i*c + ch) * spatial
			dRow := dout.Data[base : base+spatial]
			xhRow := b.lastXHat.Data[base : base+spatial]
			dxRow := dx.Data[base : base+spatial]
			for j, g := range dRow {
				dxRow[j] = float32(a * (float64(g) - meanDy - float64(xhRow[j])*meanDyXHat))
			}
		}
	}
	return dx
}

// Params returns gamma and beta.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }
