package nn

// parent is implemented by container layers that hold child layers; Walk
// uses it to visit every leaf (for FLOP accounting and diagnostics).
type parent interface {
	children() []Layer
}

func (s *Sequential) children() []Layer { return s.Layers }
func (r *Residual) children() []Layer   { return []Layer{r.Body, r.Shortcut} }
func (c *Concat) children() []Layer     { return c.Branches }
func (s *SplitConcat) children() []Layer {
	return []Layer{s.A, s.B}
}
func (s *SEBlock) children() []Layer { return []Layer{s.FC1, s.FC2} }

// Walk visits l and all transitively contained layers, depth-first.
func Walk(l Layer, visit func(Layer)) {
	visit(l)
	if p, ok := l.(parent); ok {
		for _, c := range p.children() {
			Walk(c, visit)
		}
	}
}

// flopsReporter is implemented by layers that track the arithmetic cost of
// their most recent forward pass.
type flopsReporter interface {
	FLOPs() float64
}

// TotalFLOPs sums the last-forward FLOPs of every layer under l. Call it
// right after a probe forward pass with the batch size of interest.
func TotalFLOPs(l Layer) float64 {
	var total float64
	Walk(l, func(layer Layer) {
		if f, ok := layer.(flopsReporter); ok {
			total += f.FLOPs()
		}
	})
	return total
}
