package nn

import (
	"math"

	"repro/internal/tensor"
)

// Layer outputs and input gradients are written into per-layer scratch
// buffers that are reused across iterations: a tensor returned by Forward or
// Backward is valid only until the same method runs again on that layer.
// Every training loop in this repo follows forward → loss → backward →
// step, which consumes each tensor before its buffer is rewritten; anything
// that must outlive the next pass (soft targets, flattened gradients) is
// copied by its producer.

// Linear is a fully connected layer: y = xW^T + b, with x of shape (N, In).
type Linear struct {
	In, Out int
	W       *Param // (Out, In)
	B       *Param // (Out)

	lastX *tensor.Tensor
	flops float64
	yBuf  *tensor.Tensor
	dxBuf *tensor.Tensor
	xView tensor.Tensor
}

// NewLinear builds a Linear layer with Kaiming-uniform initialisation.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	w := tensor.New(out, in)
	bound := math.Sqrt(6.0 / float64(in))
	rng.FillUniform(w.Data, -bound, bound)
	b := tensor.New(out)
	return &Linear{In: in, Out: out, W: NewParam(name+".w", w), B: NewParam(name+".b", b)}
}

// Forward computes the affine map for a batch.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Shape[0]
	if x.Len() != n*l.In {
		panic("nn: Linear input size mismatch")
	}
	l.xView.Data = x.Data
	l.xView.Shape = append(l.xView.Shape[:0], n, l.In)
	x2 := &l.xView
	l.lastX = x2
	l.yBuf = tensor.Ensure(l.yBuf, n, l.Out)
	y := l.yBuf
	clear(y.Data)
	// y = x × W^T
	tensor.Gemm(y.Data, x2.Data, l.W.W.Data, n, l.In, l.Out, false, true)
	for i := 0; i < n; i++ {
		row := y.Data[i*l.Out : (i+1)*l.Out]
		for j, b := range l.B.W.Data {
			row[j] += b
		}
	}
	l.flops = 2 * float64(n) * float64(l.In) * float64(l.Out)
	return y
}

// Backward accumulates dW, dB and returns dX.
func (l *Linear) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := dout.Shape[0]
	// dW += dout^T × x  → (Out, In)
	tensor.Gemm(l.W.Grad.Data, dout.Data, l.lastX.Data, l.Out, n, l.In, true, false)
	for i := 0; i < n; i++ {
		row := dout.Data[i*l.Out : (i+1)*l.Out]
		for j, g := range row {
			l.B.Grad.Data[j] += g
		}
	}
	l.dxBuf = tensor.Ensure(l.dxBuf, n, l.In)
	dx := l.dxBuf
	clear(dx.Data)
	// dX = dout × W
	tensor.Gemm(dx.Data, dout.Data, l.W.W.Data, n, l.Out, l.In, false, false)
	return dx
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// FLOPs reports the work of the most recent forward pass.
func (l *Linear) FLOPs() float64 { return l.flops }

// ReLU is max(0, x).
type ReLU struct {
	yBuf  *tensor.Tensor
	dxBuf *tensor.Tensor
}

// NewReLU returns a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Forward clamps negatives to zero.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.yBuf = tensor.Ensure(r.yBuf, x.Shape...)
	y := r.yBuf
	for i, v := range x.Data {
		if v <= 0 {
			v = 0
		}
		y.Data[i] = v
	}
	return y
}

// Backward zeroes gradients where the input was non-positive. The pass mask
// is recovered from the cached output's sign (y > 0 ⇔ x > 0), so no
// separate mask array is maintained.
func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	r.dxBuf = tensor.Ensure(r.dxBuf, dout.Shape...)
	dx := r.dxBuf
	yd := r.yBuf.Data
	for i, g := range dout.Data {
		if yd[i] <= 0 {
			g = 0
		}
		dx.Data[i] = g
	}
	return dx
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// ReLU6 is min(max(0,x),6), used by MobileNetV2.
type ReLU6 struct {
	mask  []bool
	yBuf  *tensor.Tensor
	dxBuf *tensor.Tensor
}

// NewReLU6 returns a ReLU6 activation.
func NewReLU6() *ReLU6 { return &ReLU6{} }

// Forward clamps to [0, 6].
func (r *ReLU6) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.yBuf = tensor.Ensure(r.yBuf, x.Shape...)
	y := r.yBuf
	if cap(r.mask) < len(y.Data) {
		r.mask = make([]bool, len(y.Data))
	}
	r.mask = r.mask[:len(y.Data)]
	for i, v := range x.Data {
		switch {
		case v <= 0:
			y.Data[i] = 0
			r.mask[i] = false
		case v >= 6:
			y.Data[i] = 6
			r.mask[i] = false
		default:
			y.Data[i] = v
			r.mask[i] = true
		}
	}
	return y
}

// Backward passes gradient only through the linear region.
func (r *ReLU6) Backward(dout *tensor.Tensor) *tensor.Tensor {
	r.dxBuf = tensor.Ensure(r.dxBuf, dout.Shape...)
	dx := r.dxBuf
	for i, g := range dout.Data {
		if r.mask[i] {
			dx.Data[i] = g
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns nil.
func (r *ReLU6) Params() []*Param { return nil }

// Sigmoid is the logistic activation, used in squeeze-and-excitation gates.
type Sigmoid struct {
	lastY *tensor.Tensor
	dxBuf *tensor.Tensor
}

// NewSigmoid returns a Sigmoid activation.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies 1/(1+e^-x).
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s.lastY = tensor.Ensure(s.lastY, x.Shape...)
	y := s.lastY
	for i, v := range x.Data {
		y.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return y
}

// Backward multiplies by y(1-y).
func (s *Sigmoid) Backward(dout *tensor.Tensor) *tensor.Tensor {
	s.dxBuf = tensor.Ensure(s.dxBuf, dout.Shape...)
	dx := s.dxBuf
	for i, g := range dout.Data {
		y := s.lastY.Data[i]
		dx.Data[i] = g * y * (1 - y)
	}
	return dx
}

// Params returns nil.
func (s *Sigmoid) Params() []*Param { return nil }

// Flatten reshapes (N, C, H, W) to (N, C*H*W).
type Flatten struct {
	lastShape []int
	view      tensor.Tensor
	dview     tensor.Tensor
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all but the batch dimension. The returned tensor is a
// reused view sharing x's data.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.lastShape = append(f.lastShape[:0], x.Shape...)
	n := x.Shape[0]
	f.view.Data = x.Data
	f.view.Shape = append(f.view.Shape[:0], n, x.Len()/n)
	return &f.view
}

// Backward restores the cached input shape (again as a reused view).
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	f.dview.Data = dout.Data
	f.dview.Shape = append(f.dview.Shape[:0], f.lastShape...)
	return &f.dview
}

// Params returns nil.
func (f *Flatten) Params() []*Param { return nil }
