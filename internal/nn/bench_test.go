package nn

import (
	"testing"

	"repro/internal/tensor"
)

func BenchmarkConvForward(b *testing.B) {
	rng := tensor.NewRNG(1)
	l := NewConv2D("c", 16, 32, 3, 1, 1, 1, false, rng)
	x := tensor.Randn(rng, 1, 8, 16, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x, true)
	}
}

func BenchmarkConvBackward(b *testing.B) {
	rng := tensor.NewRNG(2)
	l := NewConv2D("c", 16, 32, 3, 1, 1, 1, false, rng)
	x := tensor.Randn(rng, 1, 8, 16, 16, 16)
	y := l.Forward(x, true)
	dout := tensor.Randn(rng, 1, y.Shape...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ZeroGrads(l.Params())
		l.Backward(dout)
	}
}

func BenchmarkBatchNormForward(b *testing.B) {
	rng := tensor.NewRNG(3)
	l := NewBatchNorm2D("bn", 32, rng)
	x := tensor.Randn(rng, 1, 8, 32, 8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x, true)
	}
}

func BenchmarkCrossEntropy(b *testing.B) {
	rng := tensor.NewRNG(4)
	logits := tensor.Randn(rng, 1, 32, 100)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = i % 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CrossEntropy(logits, labels)
	}
}
