package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// SplitConcat routes the first SplitC input channels through branch A and
// the remaining channels through branch B, then concatenates the two outputs
// along the channel dimension. This is the channel-split unit of
// ShuffleNetV2.
type SplitConcat struct {
	SplitC int
	A, B   Layer

	lastShape []int
	lastAOutC int
	lastBOutC int
	lastOutH  int
	lastOutW  int

	xaBuf, xbBuf *tensor.Tensor
	outBuf       *tensor.Tensor
	daBuf, dbBuf *tensor.Tensor
	dxBuf        *tensor.Tensor
}

// NewSplitConcat returns a split/concat container.
func NewSplitConcat(splitC int, a, b Layer) *SplitConcat {
	return &SplitConcat{SplitC: splitC, A: a, B: b}
}

// Forward splits channels, runs both branches, and concatenates.
func (s *SplitConcat) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if s.SplitC <= 0 || s.SplitC >= c {
		panic(fmt.Sprintf("nn: SplitConcat split %d of %d channels", s.SplitC, c))
	}
	s.lastShape = append(s.lastShape[:0], x.Shape...)
	spatial := h * w
	s.xaBuf = tensor.Ensure(s.xaBuf, n, s.SplitC, h, w)
	s.xbBuf = tensor.Ensure(s.xbBuf, n, c-s.SplitC, h, w)
	xa, xb := s.xaBuf, s.xbBuf
	for i := 0; i < n; i++ {
		copy(xa.Data[i*s.SplitC*spatial:(i+1)*s.SplitC*spatial],
			x.Data[(i*c)*spatial:(i*c+s.SplitC)*spatial])
		copy(xb.Data[i*(c-s.SplitC)*spatial:(i+1)*(c-s.SplitC)*spatial],
			x.Data[(i*c+s.SplitC)*spatial:(i+1)*c*spatial])
	}
	ya := s.A.Forward(xa, train)
	yb := s.B.Forward(xb, train)
	if ya.Shape[2] != yb.Shape[2] || ya.Shape[3] != yb.Shape[3] {
		panic("nn: SplitConcat branch spatial mismatch")
	}
	ca, cb := ya.Shape[1], yb.Shape[1]
	oh, ow := ya.Shape[2], ya.Shape[3]
	s.lastAOutC, s.lastBOutC, s.lastOutH, s.lastOutW = ca, cb, oh, ow
	s.outBuf = tensor.Ensure(s.outBuf, n, ca+cb, oh, ow)
	out := s.outBuf
	osp := oh * ow
	for i := 0; i < n; i++ {
		copy(out.Data[(i*(ca+cb))*osp:(i*(ca+cb)+ca)*osp], ya.Data[i*ca*osp:(i+1)*ca*osp])
		copy(out.Data[(i*(ca+cb)+ca)*osp:(i+1)*(ca+cb)*osp], yb.Data[i*cb*osp:(i+1)*cb*osp])
	}
	return out
}

// Backward splits the output gradient, back-propagates both branches and
// re-assembles the input gradient.
func (s *SplitConcat) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, c := s.lastShape[0], s.lastShape[1]
	h, w := s.lastShape[2], s.lastShape[3]
	ca, cb := s.lastAOutC, s.lastBOutC
	osp := s.lastOutH * s.lastOutW
	s.daBuf = tensor.Ensure(s.daBuf, n, ca, s.lastOutH, s.lastOutW)
	s.dbBuf = tensor.Ensure(s.dbBuf, n, cb, s.lastOutH, s.lastOutW)
	da, db := s.daBuf, s.dbBuf
	for i := 0; i < n; i++ {
		copy(da.Data[i*ca*osp:(i+1)*ca*osp], dout.Data[(i*(ca+cb))*osp:(i*(ca+cb)+ca)*osp])
		copy(db.Data[i*cb*osp:(i+1)*cb*osp], dout.Data[(i*(ca+cb)+ca)*osp:(i+1)*(ca+cb)*osp])
	}
	dxa := s.A.Backward(da)
	dxb := s.B.Backward(db)
	s.dxBuf = tensor.Ensure(s.dxBuf, n, c, h, w)
	dx := s.dxBuf
	spatial := h * w
	for i := 0; i < n; i++ {
		copy(dx.Data[(i*c)*spatial:(i*c+s.SplitC)*spatial],
			dxa.Data[i*s.SplitC*spatial:(i+1)*s.SplitC*spatial])
		copy(dx.Data[(i*c+s.SplitC)*spatial:(i+1)*c*spatial],
			dxb.Data[i*(c-s.SplitC)*spatial:(i+1)*(c-s.SplitC)*spatial])
	}
	return dx
}

// Params concatenates both branches' parameters.
func (s *SplitConcat) Params() []*Param {
	return append(append([]*Param{}, s.A.Params()...), s.B.Params()...)
}
