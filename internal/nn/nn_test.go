package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// numGradParam estimates d(loss)/d(param[idx]) by central differences, where
// loss is the sum of the layer output (so dout = ones).
func numGradParam(l Layer, x *tensor.Tensor, p *Param, idx int) float64 {
	const eps = 1e-3
	orig := p.W.Data[idx]
	p.W.Data[idx] = orig + eps
	up := l.Forward(x.Clone(), true).Sum()
	p.W.Data[idx] = orig - eps
	down := l.Forward(x.Clone(), true).Sum()
	p.W.Data[idx] = orig
	return (up - down) / (2 * eps)
}

// numGradInput estimates d(loss)/d(x[idx]).
func numGradInput(l Layer, x *tensor.Tensor, idx int) float64 {
	const eps = 1e-3
	orig := x.Data[idx]
	x.Data[idx] = orig + eps
	up := l.Forward(x.Clone(), true).Sum()
	x.Data[idx] = orig - eps
	down := l.Forward(x.Clone(), true).Sum()
	x.Data[idx] = orig
	return (up - down) / (2 * eps)
}

// checkLayerGradients verifies analytic gradients against finite differences
// for a handful of parameter and input coordinates.
func checkLayerGradients(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	y := l.Forward(x.Clone(), true)
	dout := tensor.New(y.Shape...)
	dout.Fill(1)
	ZeroGrads(l.Params())
	dx := l.Backward(dout)

	rng := tensor.NewRNG(99)
	for _, p := range l.Params() {
		for trial := 0; trial < 3 && trial < p.W.Len(); trial++ {
			idx := rng.Intn(p.W.Len())
			want := numGradParam(l, x, p, idx)
			got := float64(p.Grad.Data[idx])
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("param %s[%d]: analytic %v vs numeric %v", p.Name, idx, got, want)
			}
		}
	}
	for trial := 0; trial < 5; trial++ {
		idx := rng.Intn(x.Len())
		want := numGradInput(l, x, idx)
		got := float64(dx.Data[idx])
		if math.Abs(got-want) > tol*(1+math.Abs(want)) {
			t.Fatalf("input[%d]: analytic %v vs numeric %v", idx, got, want)
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear("fc", 7, 4, rng)
	x := tensor.Randn(rng, 1, 3, 7)
	checkLayerGradients(t, l, x, 2e-2)
}

func TestConvGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewConv2D("conv", 3, 4, 3, 1, 1, 1, true, rng)
	x := tensor.Randn(rng, 1, 2, 3, 5, 5)
	checkLayerGradients(t, l, x, 2e-2)
}

func TestConvStridedGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	l := NewConv2D("conv", 2, 6, 3, 2, 1, 1, false, rng)
	x := tensor.Randn(rng, 1, 2, 2, 6, 6)
	checkLayerGradients(t, l, x, 2e-2)
}

func TestGroupedConvGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	l := NewConv2D("gconv", 4, 8, 3, 1, 1, 2, true, rng)
	x := tensor.Randn(rng, 1, 2, 4, 4, 4)
	checkLayerGradients(t, l, x, 2e-2)
}

func TestDepthwiseConvGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	l := NewConv2D("dwconv", 4, 4, 3, 1, 1, 4, false, rng)
	x := tensor.Randn(rng, 1, 2, 4, 5, 5)
	checkLayerGradients(t, l, x, 2e-2)
}

func TestConv1x1Gradients(t *testing.T) {
	rng := tensor.NewRNG(6)
	l := NewConv2D("pw", 3, 5, 1, 1, 0, 1, true, rng)
	x := tensor.Randn(rng, 1, 2, 3, 4, 4)
	checkLayerGradients(t, l, x, 2e-2)
}

func TestBatchNormGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	l := NewBatchNorm2D("bn", 3, rng)
	// Non-trivial gamma/beta so the gradient isn't symmetric.
	l.Gamma.W.Data[0], l.Gamma.W.Data[1], l.Gamma.W.Data[2] = 1.5, 0.7, 1.1
	l.Beta.W.Data[0] = 0.3
	x := tensor.Randn(rng, 1, 4, 3, 3, 3)
	checkLayerGradients(t, l, x, 5e-2)
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := tensor.NewRNG(8)
	l := NewBatchNorm2D("bn", 2, rng)
	x := tensor.Randn(rng, 1, 8, 2, 4, 4)
	for i := 0; i < 20; i++ {
		l.Forward(x, true)
	}
	y := l.Forward(x, false)
	// After many passes on the same batch the eval output should be close
	// to normalised (mean ≈ 0 per channel).
	n, c, spatial := 8, 2, 16
	for ch := 0; ch < c; ch++ {
		var mean float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * spatial
			for j := 0; j < spatial; j++ {
				mean += float64(y.Data[base+j])
			}
		}
		mean /= float64(n * spatial)
		if math.Abs(mean) > 0.2 {
			t.Fatalf("channel %d eval mean = %v, want ≈ 0", ch, mean)
		}
	}
}

func TestReLUForwardBackward(t *testing.T) {
	l := NewReLU()
	x := tensor.FromSlice([]float32{-1, 0, 2, -3}, 1, 4)
	y := l.Forward(x, true)
	want := []float32{0, 0, 2, 0}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("ReLU[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
	dout := tensor.FromSlice([]float32{1, 1, 1, 1}, 1, 4)
	dx := l.Backward(dout)
	wantDx := []float32{0, 0, 1, 0}
	for i, w := range wantDx {
		if dx.Data[i] != w {
			t.Fatalf("ReLU dx[%d] = %v, want %v", i, dx.Data[i], w)
		}
	}
}

func TestReLU6Clamps(t *testing.T) {
	l := NewReLU6()
	x := tensor.FromSlice([]float32{-1, 3, 7}, 1, 3)
	y := l.Forward(x, true)
	for i, w := range []float32{0, 3, 6} {
		if y.Data[i] != w {
			t.Fatalf("ReLU6[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
	dx := l.Backward(tensor.FromSlice([]float32{1, 1, 1}, 1, 3))
	for i, w := range []float32{0, 1, 0} {
		if dx.Data[i] != w {
			t.Fatalf("ReLU6 dx[%d] = %v, want %v", i, dx.Data[i], w)
		}
	}
}

func TestSigmoidGradients(t *testing.T) {
	rng := tensor.NewRNG(9)
	l := NewSigmoid()
	x := tensor.Randn(rng, 1, 2, 5)
	checkLayerGradients(t, l, x, 1e-2)
}

func TestMaxPoolForwardBackward(t *testing.T) {
	l := NewMaxPool2D(2, 2)
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y := l.Forward(x, true)
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("maxpool[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
	dx := l.Backward(tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2))
	if dx.At(0, 0, 1, 1) != 1 || dx.At(0, 0, 1, 3) != 2 || dx.At(0, 0, 3, 1) != 3 || dx.At(0, 0, 3, 3) != 4 {
		t.Fatalf("maxpool backward misrouted: %v", dx.Data)
	}
	if dx.At(0, 0, 0, 0) != 0 {
		t.Fatal("non-argmax positions must get zero gradient")
	}
}

func TestAvgPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(10)
	l := NewAvgPool2D(2, 2)
	x := tensor.Randn(rng, 1, 2, 3, 4, 4)
	checkLayerGradients(t, l, x, 1e-2)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(11)
	l := NewGlobalAvgPool()
	x := tensor.Randn(rng, 1, 2, 3, 4, 4)
	checkLayerGradients(t, l, x, 1e-2)
}

func TestResidualGradients(t *testing.T) {
	rng := tensor.NewRNG(12)
	body := NewSequential(NewConv2D("c1", 3, 3, 3, 1, 1, 1, false, rng), NewReLU())
	l := NewResidual(body, nil)
	x := tensor.Randn(rng, 1, 2, 3, 4, 4)
	checkLayerGradients(t, l, x, 2e-2)
}

func TestResidualProjectionShortcut(t *testing.T) {
	rng := tensor.NewRNG(13)
	body := NewConv2D("c1", 2, 4, 3, 2, 1, 1, false, rng)
	short := NewConv2D("sc", 2, 4, 1, 2, 0, 1, false, rng)
	l := NewResidual(body, short)
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	checkLayerGradients(t, l, x, 2e-2)
}

func TestConcatGradients(t *testing.T) {
	rng := tensor.NewRNG(14)
	b1 := NewConv2D("b1", 2, 3, 3, 1, 1, 1, false, rng)
	b2 := NewConv2D("b2", 2, 2, 1, 1, 0, 1, false, rng)
	l := NewConcat(b1, b2)
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	y := l.Forward(x.Clone(), true)
	if y.Shape[1] != 5 {
		t.Fatalf("concat channels = %d, want 5", y.Shape[1])
	}
	checkLayerGradients(t, l, x, 2e-2)
}

func TestChannelShuffleInverse(t *testing.T) {
	rng := tensor.NewRNG(15)
	l := NewChannelShuffle(2)
	x := tensor.Randn(rng, 1, 2, 6, 3, 3)
	y := l.Forward(x, true)
	// Backward must be the inverse permutation: shuffle(x) then backward
	// with shuffle(x) recovers x.
	back := l.Backward(y)
	for i := range x.Data {
		if x.Data[i] != back.Data[i] {
			t.Fatal("ChannelShuffle backward is not the inverse permutation")
		}
	}
}

func TestSEBlockGradients(t *testing.T) {
	rng := tensor.NewRNG(16)
	l := NewSEBlock("se", 4, 2, rng)
	x := tensor.Randn(rng, 1, 2, 4, 3, 3)
	checkLayerGradients(t, l, x, 3e-2)
}

func TestSequentialComposition(t *testing.T) {
	rng := tensor.NewRNG(17)
	l := NewSequential(
		NewConv2D("c1", 1, 2, 3, 1, 1, 1, true, rng),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewLinear("fc", 2*2*2, 3, rng),
	)
	x := tensor.Randn(rng, 1, 2, 1, 4, 4)
	y := l.Forward(x.Clone(), true)
	if y.Shape[0] != 2 || y.Shape[1] != 3 {
		t.Fatalf("output shape %v, want (2,3)", y.Shape)
	}
	checkLayerGradients(t, l, x, 2e-2)
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.New(2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Shape[0] != 2 || y.Shape[1] != 60 {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	dx := f.Backward(y)
	if len(dx.Shape) != 4 || dx.Shape[3] != 5 {
		t.Fatalf("unflatten shape %v", dx.Shape)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := tensor.NewRNG(18)
	logits := tensor.Randn(rng, 5, 4, 7)
	p := Softmax(logits)
	for i := 0; i < 4; i++ {
		var s float64
		for j := 0; j < 7; j++ {
			v := p.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := tensor.FromSlice([]float32{1000, 1001, 999}, 1, 3)
	p := Softmax(logits)
	var s float64
	for _, v := range p.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax produced NaN/Inf on large logits")
		}
		s += float64(v)
	}
	if math.Abs(s-1) > 1e-5 {
		t.Fatalf("sum %v", s)
	}
}

func TestCrossEntropyGradient(t *testing.T) {
	rng := tensor.NewRNG(19)
	logits := tensor.Randn(rng, 1, 3, 5)
	labels := []int{1, 4, 0}
	_, grad := CrossEntropy(logits, labels)
	const eps = 1e-3
	for trial := 0; trial < 6; trial++ {
		idx := rng.Intn(logits.Len())
		orig := logits.Data[idx]
		logits.Data[idx] = orig + eps
		up, _ := CrossEntropy(logits, labels)
		logits.Data[idx] = orig - eps
		down, _ := CrossEntropy(logits, labels)
		logits.Data[idx] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(float64(grad.Data[idx])-want) > 1e-2*(1+math.Abs(want)) {
			t.Fatalf("CE grad[%d] = %v, numeric %v", idx, grad.Data[idx], want)
		}
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	logits := tensor.FromSlice([]float32{20, -20, -20}, 1, 3)
	loss, _ := CrossEntropy(logits, []int{0})
	if loss > 1e-5 {
		t.Fatalf("perfect prediction loss = %v", loss)
	}
}

func TestSoftCrossEntropyMatchesHardOnOneHot(t *testing.T) {
	rng := tensor.NewRNG(20)
	logits := tensor.Randn(rng, 1, 2, 4)
	labels := []int{3, 1}
	onehot := tensor.New(2, 4)
	onehot.Set(1, 0, 3)
	onehot.Set(1, 1, 1)
	lh, gh := CrossEntropy(logits, labels)
	ls, gs := SoftCrossEntropy(logits, onehot)
	if math.Abs(lh-ls) > 1e-5 {
		t.Fatalf("hard %v vs soft %v loss", lh, ls)
	}
	for i := range gh.Data {
		if math.Abs(float64(gh.Data[i]-gs.Data[i])) > 1e-5 {
			t.Fatalf("grad mismatch at %d", i)
		}
	}
}

func TestMaskedCrossEntropyIgnoresOtherClasses(t *testing.T) {
	logits := tensor.FromSlice([]float32{0, 0, 100, 0}, 1, 4)
	// Class 2 has a huge logit but is not in the candidate set {0, 1};
	// the loss must behave as if it did not exist.
	loss, grad := MaskedCrossEntropy(logits, []int{0}, []int{0, 1})
	if math.Abs(loss-math.Log(2)) > 1e-5 {
		t.Fatalf("masked loss = %v, want ln2", loss)
	}
	if grad.Data[2] != 0 || grad.Data[3] != 0 {
		t.Fatal("masked-out classes must get zero gradient")
	}
}

func TestFlattenParamsRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(21)
	l := NewSequential(NewLinear("a", 3, 4, rng), NewReLU(), NewLinear("b", 4, 2, rng))
	ps := l.Params()
	flat := FlattenParams(ps)
	if len(flat) != NumParams(ps) {
		t.Fatalf("flat length %d, want %d", len(flat), NumParams(ps))
	}
	want := NumParams(ps)
	if want != 3*4+4+4*2+2 {
		t.Fatalf("NumParams = %d", want)
	}
	mod := make([]float32, len(flat))
	for i := range mod {
		mod[i] = float32(i)
	}
	SetFlatParams(ps, mod)
	got := FlattenParams(ps)
	for i := range mod {
		if got[i] != mod[i] {
			t.Fatalf("round trip differs at %d", i)
		}
	}
}

func TestZeroGrads(t *testing.T) {
	rng := tensor.NewRNG(22)
	l := NewLinear("a", 2, 2, rng)
	x := tensor.Randn(rng, 1, 1, 2)
	y := l.Forward(x, true)
	l.Backward(y)
	ZeroGrads(l.Params())
	for _, p := range l.Params() {
		for _, v := range p.Grad.Data {
			if v != 0 {
				t.Fatal("ZeroGrads left non-zero gradient")
			}
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// A tiny end-to-end sanity check: a linear classifier must fit a
	// linearly separable batch with plain SGD on our backward pass.
	rng := tensor.NewRNG(23)
	l := NewLinear("fc", 2, 2, rng)
	x := tensor.FromSlice([]float32{
		1, 1,
		1, 0.8,
		-1, -1,
		-0.8, -1,
	}, 4, 2)
	labels := []int{0, 0, 1, 1}
	var first, last float64
	for step := 0; step < 200; step++ {
		logits := l.Forward(x, true)
		loss, dl := CrossEntropy(logits, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		ZeroGrads(l.Params())
		l.Backward(dl)
		for _, p := range l.Params() {
			p.W.Axpy(-0.5, p.Grad)
		}
	}
	if last > first/10 {
		t.Fatalf("loss did not drop: first %v last %v", first, last)
	}
}
