// Package nn implements the neural-network substrate: layers with explicit
// Forward/Backward passes, a parameter registry, and classification losses.
// Together with internal/tensor it replaces the PyTorch stack the FedKNOW
// paper builds on.
//
// Layers are stateful: Forward caches whatever the matching Backward needs,
// so a layer instance must not be shared between concurrently-training
// models. Federated clients each hold their own model; parallelism happens
// across clients, never inside one model.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is one trainable parameter tensor and its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// NewParam allocates a parameter and matching zero gradient.
func NewParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, Grad: tensor.New(w.Shape...)}
}

// Layer is a differentiable module. Forward runs the computation (train
// selects training-time behaviour, e.g. batch-norm statistics); Backward
// consumes the gradient w.r.t. the layer output, accumulates parameter
// gradients, and returns the gradient w.r.t. the layer input.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(dout *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward applies every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the output gradient through the chain in reverse.
func (s *Sequential) Backward(dout *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total number of scalar parameters.
func NumParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.W.Len()
	}
	return n
}

// ZeroGrads clears every gradient accumulator.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.Grad.Zero()
	}
}

// FlattenParams copies all parameter values into a single vector.
func FlattenParams(ps []*Param) []float32 {
	out := make([]float32, 0, NumParams(ps))
	for _, p := range ps {
		out = append(out, p.W.Data...)
	}
	return out
}

// FlattenGrads copies all gradients into a single vector.
func FlattenGrads(ps []*Param) []float32 {
	out := make([]float32, 0, NumParams(ps))
	for _, p := range ps {
		out = append(out, p.Grad.Data...)
	}
	return out
}

// SetFlatParams writes a flat vector (as produced by FlattenParams) back
// into the parameters. Panics if the length does not match.
func SetFlatParams(ps []*Param, flat []float32) {
	off := 0
	for _, p := range ps {
		n := p.W.Len()
		if off+n > len(flat) {
			panic(fmt.Sprintf("nn: SetFlatParams short vector (%d < %d)", len(flat), NumParams(ps)))
		}
		copy(p.W.Data, flat[off:off+n])
		off += n
	}
	if off != len(flat) {
		panic(fmt.Sprintf("nn: SetFlatParams length %d, params need %d", len(flat), off))
	}
}

// SetFlatGrads writes a flat vector into the gradient accumulators.
func SetFlatGrads(ps []*Param, flat []float32) {
	off := 0
	for _, p := range ps {
		n := p.Grad.Len()
		copy(p.Grad.Data, flat[off:off+n])
		off += n
	}
	if off != len(flat) {
		panic(fmt.Sprintf("nn: SetFlatGrads length %d, params need %d", len(flat), off))
	}
}
