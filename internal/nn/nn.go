// Package nn implements the neural-network substrate: layers with explicit
// Forward/Backward passes, a parameter registry, and classification losses.
// Together with internal/tensor it replaces the PyTorch stack the FedKNOW
// paper builds on.
//
// Layers are stateful: Forward caches whatever the matching Backward needs,
// so a layer instance must not be shared between concurrently-training
// models. Federated clients each hold their own model; parallelism happens
// across clients, never inside one model.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is one trainable parameter tensor and its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// NewParam allocates a parameter and matching zero gradient.
func NewParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, Grad: tensor.New(w.Shape...)}
}

// Layer is a differentiable module. Forward runs the computation (train
// selects training-time behaviour, e.g. batch-norm statistics); Backward
// consumes the gradient w.r.t. the layer output, accumulates parameter
// gradients, and returns the gradient w.r.t. the layer input.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(dout *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward applies every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the output gradient through the chain in reverse.
func (s *Sequential) Backward(dout *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// ParamsOnlyBackward is implemented by layers that can accumulate parameter
// gradients without materialising the input gradient.
type ParamsOnlyBackward interface {
	BackwardParamsOnly(dout *tensor.Tensor)
}

// BackwardDiscardInput back-propagates like Backward but tells the first
// layer that nobody will consume the network input's gradient, letting it
// skip the adjoint-lowering work entirely. It returns nil when the input
// gradient was elided. Use only at the outermost network level, where the
// training loops discard the returned gradient.
func (s *Sequential) BackwardDiscardInput(dout *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 1; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	if len(s.Layers) == 0 {
		return dout
	}
	if first, ok := s.Layers[0].(ParamsOnlyBackward); ok {
		first.BackwardParamsOnly(dout)
		return nil
	}
	return s.Layers[0].Backward(dout)
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total number of scalar parameters.
func NumParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.W.Len()
	}
	return n
}

// ZeroGrads clears every gradient accumulator.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.Grad.Zero()
	}
}

// FlattenParams copies all parameter values into a single vector.
func FlattenParams(ps []*Param) []float32 {
	return FlattenParamsInto(nil, ps)
}

// FlattenParamsInto copies all parameter values into dst, reusing its
// storage when the capacity suffices (dst may be nil). Hot paths — the
// per-round FedAvg flatten, gradient restoration — call this with a retained
// buffer so steady-state rounds allocate nothing.
func FlattenParamsInto(dst []float32, ps []*Param) []float32 {
	n := NumParams(ps)
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	off := 0
	for _, p := range ps {
		off += copy(dst[off:], p.W.Data)
	}
	return dst
}

// FlattenGrads copies all gradients into a single vector.
func FlattenGrads(ps []*Param) []float32 {
	return FlattenGradsInto(nil, ps)
}

// FlattenGradsInto copies all gradients into dst, reusing its storage when
// the capacity suffices (dst may be nil).
func FlattenGradsInto(dst []float32, ps []*Param) []float32 {
	n := NumParams(ps)
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	off := 0
	for _, p := range ps {
		off += copy(dst[off:], p.Grad.Data)
	}
	return dst
}

// SetFlatParams writes a flat vector (as produced by FlattenParams) back
// into the parameters. Panics if the length does not match.
func SetFlatParams(ps []*Param, flat []float32) {
	off := 0
	for _, p := range ps {
		n := p.W.Len()
		if off+n > len(flat) {
			panic(fmt.Sprintf("nn: SetFlatParams short vector (%d < %d)", len(flat), NumParams(ps)))
		}
		copy(p.W.Data, flat[off:off+n])
		off += n
	}
	if off != len(flat) {
		panic(fmt.Sprintf("nn: SetFlatParams length %d, params need %d", len(flat), off))
	}
}

// SetFlatGrads writes a flat vector into the gradient accumulators.
func SetFlatGrads(ps []*Param, flat []float32) {
	off := 0
	for _, p := range ps {
		n := p.Grad.Len()
		copy(p.Grad.Data, flat[off:off+n])
		off += n
	}
	if off != len(flat) {
		panic(fmt.Sprintf("nn: SetFlatGrads length %d, params need %d", len(flat), off))
	}
}
