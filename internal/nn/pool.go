package nn

import (
	"math"

	"repro/internal/tensor"
)

// MaxPool2D takes the max over K×K windows with the given stride.
type MaxPool2D struct {
	K, Stride int

	lastArg   []int // flat input index chosen per output element
	lastShape []int
	yBuf      *tensor.Tensor
	dxBuf     *tensor.Tensor
}

// NewMaxPool2D returns a max-pooling layer.
func NewMaxPool2D(k, stride int) *MaxPool2D { return &MaxPool2D{K: k, Stride: stride} }

// Forward pools each channel independently.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := tensor.ConvOutSize(h, m.K, m.Stride, 0)
	outW := tensor.ConvOutSize(w, m.K, m.Stride, 0)
	m.yBuf = tensor.Ensure(m.yBuf, n, c, outH, outW)
	y := m.yBuf
	if cap(m.lastArg) < y.Len() {
		m.lastArg = make([]int, y.Len())
	}
	m.lastArg = m.lastArg[:y.Len()]
	m.lastShape = append(m.lastShape[:0], x.Shape...)
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					best := float32(math.Inf(-1))
					bestIdx := -1
					for ky := 0; ky < m.K; ky++ {
						iy := oy*m.Stride + ky
						if iy >= h {
							break
						}
						for kx := 0; kx < m.K; kx++ {
							ix := ox*m.Stride + kx
							if ix >= w {
								break
							}
							idx := base + iy*w + ix
							if v := x.Data[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					y.Data[oi] = best
					m.lastArg[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return y
}

// Backward routes each output gradient to the argmax input position.
func (m *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	m.dxBuf = tensor.Ensure(m.dxBuf, m.lastShape...)
	dx := m.dxBuf
	clear(dx.Data)
	for oi, idx := range m.lastArg {
		// idx is -1 when the window held no comparable value (all-NaN
		// inputs from a diverged model); drop the gradient rather than
		// crash so the caller can detect the NaN loss.
		if idx >= 0 {
			dx.Data[idx] += dout.Data[oi]
		}
	}
	return dx
}

// Params returns nil.
func (m *MaxPool2D) Params() []*Param { return nil }

// AvgPool2D averages over K×K windows with the given stride.
type AvgPool2D struct {
	K, Stride int
	lastShape []int
	lastOutH  int
	lastOutW  int
	yBuf      *tensor.Tensor
	dxBuf     *tensor.Tensor
}

// NewAvgPool2D returns an average-pooling layer.
func NewAvgPool2D(k, stride int) *AvgPool2D { return &AvgPool2D{K: k, Stride: stride} }

// Forward pools each channel independently.
func (a *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := tensor.ConvOutSize(h, a.K, a.Stride, 0)
	outW := tensor.ConvOutSize(w, a.K, a.Stride, 0)
	a.lastShape = append(a.lastShape[:0], x.Shape...)
	a.lastOutH, a.lastOutW = outH, outW
	a.yBuf = tensor.Ensure(a.yBuf, n, c, outH, outW)
	y := a.yBuf
	inv := 1 / float32(a.K*a.K)
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					var s float32
					for ky := 0; ky < a.K; ky++ {
						iy := oy*a.Stride + ky
						for kx := 0; kx < a.K; kx++ {
							ix := ox*a.Stride + kx
							s += x.Data[base+iy*w+ix]
						}
					}
					y.Data[oi] = s * inv
					oi++
				}
			}
		}
	}
	return y
}

// Backward spreads each output gradient evenly over its window.
func (a *AvgPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := a.lastShape[0], a.lastShape[1], a.lastShape[2], a.lastShape[3]
	a.dxBuf = tensor.Ensure(a.dxBuf, a.lastShape...)
	dx := a.dxBuf
	clear(dx.Data)
	inv := 1 / float32(a.K*a.K)
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			for oy := 0; oy < a.lastOutH; oy++ {
				for ox := 0; ox < a.lastOutW; ox++ {
					g := dout.Data[oi] * inv
					oi++
					for ky := 0; ky < a.K; ky++ {
						iy := oy*a.Stride + ky
						for kx := 0; kx < a.K; kx++ {
							ix := ox*a.Stride + kx
							dx.Data[base+iy*w+ix] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// Params returns nil.
func (a *AvgPool2D) Params() []*Param { return nil }

// GlobalAvgPool reduces (N, C, H, W) to (N, C) by averaging each channel.
type GlobalAvgPool struct {
	lastShape []int
	yBuf      *tensor.Tensor
	dxBuf     *tensor.Tensor
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward averages each channel plane.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	g.lastShape = append(g.lastShape[:0], x.Shape...)
	g.yBuf = tensor.Ensure(g.yBuf, n, c)
	y := g.yBuf
	inv := 1 / float32(h*w)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			var s float32
			for j := 0; j < h*w; j++ {
				s += x.Data[base+j]
			}
			y.Data[i*c+ch] = s * inv
		}
	}
	return y
}

// Backward spreads the channel gradient uniformly over the plane.
func (g *GlobalAvgPool) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.lastShape[0], g.lastShape[1], g.lastShape[2], g.lastShape[3]
	g.dxBuf = tensor.Ensure(g.dxBuf, g.lastShape...)
	dx := g.dxBuf
	inv := 1 / float32(h*w)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			gv := dout.Data[i*c+ch] * inv
			for j := 0; j < h*w; j++ {
				dx.Data[base+j] = gv
			}
		}
	}
	return dx
}

// Params returns nil.
func (g *GlobalAvgPool) Params() []*Param { return nil }
