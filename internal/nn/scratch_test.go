package nn

import (
	"testing"

	"repro/internal/tensor"
)

// convFixture builds a conv layer and batch used by the determinism and
// allocation tests.
func convFixture(seed uint64) (*Conv2D, *tensor.Tensor, *tensor.Tensor) {
	rng := tensor.NewRNG(seed)
	l := NewConv2D("c", 8, 16, 3, 1, 1, 1, true, rng)
	x := tensor.Randn(rng, 1, 6, 8, 10, 10)
	y := l.Forward(x, true)
	dout := tensor.Randn(rng, 1, y.Shape...)
	return l, x, dout
}

// TestConvDeterministicAcrossThreads requires conv forward and backward to
// produce bitwise-identical outputs, input gradients, and weight gradients
// for every kernel-thread setting.
func TestConvDeterministicAcrossThreads(t *testing.T) {
	defer tensor.SetKernelThreads(0)
	type snap struct{ y, dx, dw, db []float32 }
	var ref *snap
	for _, threads := range []int{1, 4, 16} {
		tensor.SetKernelThreads(threads)
		l, x, dout := convFixture(7)
		ZeroGrads(l.Params())
		y := l.Forward(x, true)
		dx := l.Backward(dout)
		s := &snap{
			y:  append([]float32(nil), y.Data...),
			dx: append([]float32(nil), dx.Data...),
			dw: append([]float32(nil), l.W.Grad.Data...),
			db: append([]float32(nil), l.B.Grad.Data...),
		}
		if ref == nil {
			ref = s
			continue
		}
		for name, pair := range map[string][2][]float32{
			"y": {ref.y, s.y}, "dx": {ref.dx, s.dx}, "dw": {ref.dw, s.dw}, "db": {ref.db, s.db},
		} {
			for i := range pair[0] {
				if pair[0][i] != pair[1][i] {
					t.Fatalf("threads=%d: %s[%d] = %v, want %v", threads, name, i, pair[1][i], pair[0][i])
				}
			}
		}
	}
}

// TestConvSteadyStateAllocFree verifies the satellite acceptance criterion:
// after warm-up, conv forward + backward performs no heap allocations on the
// single-threaded path (multi-threaded runs allocate only the worker
// closures).
func TestConvSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector disables sync.Pool reuse and instruments allocations")
	}
	defer tensor.SetKernelThreads(0)
	tensor.SetKernelThreads(1)
	l, x, dout := convFixture(9)
	for i := 0; i < 3; i++ { // warm the scratch buffers and pack pools
		ZeroGrads(l.Params())
		l.Forward(x, true)
		l.Backward(dout)
	}
	allocs := testing.AllocsPerRun(20, func() {
		ZeroGrads(l.Params())
		l.Forward(x, true)
		l.Backward(dout)
	})
	if allocs > 0.5 {
		t.Fatalf("conv forward+backward allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

// TestLinearSteadyStateAllocFree checks the dense layer the same way.
func TestLinearSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector disables sync.Pool reuse and instruments allocations")
	}
	defer tensor.SetKernelThreads(0)
	tensor.SetKernelThreads(1)
	rng := tensor.NewRNG(11)
	l := NewLinear("fc", 64, 32, rng)
	x := tensor.Randn(rng, 1, 16, 64)
	y := l.Forward(x, true)
	dout := tensor.Randn(rng, 1, y.Shape...)
	for i := 0; i < 3; i++ {
		ZeroGrads(l.Params())
		l.Forward(x, true)
		l.Backward(dout)
	}
	allocs := testing.AllocsPerRun(20, func() {
		ZeroGrads(l.Params())
		l.Forward(x, true)
		l.Backward(dout)
	})
	if allocs > 0.5 {
		t.Fatalf("linear forward+backward allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

// TestScratchReuseKeepsGradientsCorrect runs two training iterations through
// a small conv net and checks the second iteration against freshly-built
// layers given identical inputs: buffer reuse must not leak state between
// iterations.
func TestScratchReuseKeepsGradientsCorrect(t *testing.T) {
	build := func() (*Conv2D, *Linear) {
		rng := tensor.NewRNG(21)
		return NewConv2D("c", 3, 4, 3, 1, 1, 1, false, rng), NewLinear("fc", 4*6*6, 5, rng)
	}
	rng := tensor.NewRNG(22)
	x1 := tensor.Randn(rng, 1, 2, 3, 6, 6)
	x2 := tensor.Randn(rng, 1, 2, 3, 6, 6)
	d1 := tensor.Randn(rng, 1, 2, 5)
	d2 := tensor.Randn(rng, 1, 2, 5)

	run := func(c *Conv2D, fc *Linear, x, d *tensor.Tensor) ([]float32, []float32) {
		ZeroGrads(c.Params())
		ZeroGrads(fc.Params())
		h := c.Forward(x, true)
		fc.Forward(h, true)
		dh := fc.Backward(d)
		dx := c.Backward(dh.Reshape(2, 4, 6, 6))
		grads := FlattenGrads(append(c.Params(), fc.Params()...))
		return append([]float32(nil), dx.Data...), grads
	}

	// Reused-layer pipeline: iteration 1 then 2.
	cA, fA := build()
	run(cA, fA, x1, d1)
	dxA, gA := run(cA, fA, x2, d2)

	// Fresh layers seeing only iteration 2.
	cB, fB := build()
	dxB, gB := run(cB, fB, x2, d2)

	for i := range gA {
		if gA[i] != gB[i] {
			t.Fatalf("grad[%d] differs after reuse: %v vs %v", i, gA[i], gB[i])
		}
	}
	for i := range dxA {
		if dxA[i] != dxB[i] {
			t.Fatalf("dx[%d] differs after reuse: %v vs %v", i, dxA[i], dxB[i])
		}
	}
}
