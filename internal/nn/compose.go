package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Identity passes its input through unchanged. Used as the default shortcut
// in residual blocks.
type Identity struct{}

// NewIdentity returns an Identity layer.
func NewIdentity() *Identity { return &Identity{} }

// Forward returns x.
func (Identity) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }

// Backward returns dout.
func (Identity) Backward(dout *tensor.Tensor) *tensor.Tensor { return dout }

// Params returns nil.
func (Identity) Params() []*Param { return nil }

// Residual computes Body(x) + Shortcut(x): the basic skip connection of
// ResNet-family architectures.
type Residual struct {
	Body     Layer
	Shortcut Layer
}

// NewResidual returns a residual block; a nil shortcut means identity.
func NewResidual(body, shortcut Layer) *Residual {
	if shortcut == nil {
		shortcut = NewIdentity()
	}
	return &Residual{Body: body, Shortcut: shortcut}
}

// Forward evaluates both paths and adds them.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	a := r.Body.Forward(x, train)
	b := r.Shortcut.Forward(x, train)
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("nn: residual shape mismatch %v + %v", a.Shape, b.Shape))
	}
	y := a.Clone()
	y.AddInPlace(b)
	return y
}

// Backward splits the gradient into both paths and sums the input gradients.
func (r *Residual) Backward(dout *tensor.Tensor) *tensor.Tensor {
	da := r.Body.Backward(dout)
	db := r.Shortcut.Backward(dout)
	dx := da.Clone()
	dx.AddInPlace(db)
	return dx
}

// Params concatenates parameters of both paths.
func (r *Residual) Params() []*Param {
	return append(append([]*Param{}, r.Body.Params()...), r.Shortcut.Params()...)
}

// Concat runs branches in parallel on the same input and concatenates their
// NCHW outputs along the channel dimension (DenseNet, Inception,
// ShuffleNetV2 all need this).
type Concat struct {
	Branches []Layer

	lastChannels []int
	lastH, lastW int
}

// NewConcat returns a channel-concatenation container.
func NewConcat(branches ...Layer) *Concat { return &Concat{Branches: branches} }

// Forward evaluates every branch and stacks channels.
func (c *Concat) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	outs := make([]*tensor.Tensor, len(c.Branches))
	totalC := 0
	c.lastChannels = c.lastChannels[:0]
	for i, br := range c.Branches {
		outs[i] = br.Forward(x, train)
		if len(outs[i].Shape) != 4 {
			panic("nn: Concat branches must output NCHW")
		}
		c.lastChannels = append(c.lastChannels, outs[i].Shape[1])
		totalC += outs[i].Shape[1]
	}
	n, h, w := outs[0].Shape[0], outs[0].Shape[2], outs[0].Shape[3]
	c.lastH, c.lastW = h, w
	y := tensor.New(n, totalC, h, w)
	spatial := h * w
	for i := 0; i < n; i++ {
		chOff := 0
		for bi, o := range outs {
			bc := c.lastChannels[bi]
			src := o.Data[i*bc*spatial : (i+1)*bc*spatial]
			dst := y.Data[(i*totalC+chOff)*spatial : (i*totalC+chOff+bc)*spatial]
			copy(dst, src)
			chOff += bc
		}
	}
	return y
}

// Backward slices the gradient per branch and sums the input gradients.
func (c *Concat) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := dout.Shape[0]
	totalC := dout.Shape[1]
	spatial := c.lastH * c.lastW
	var dx *tensor.Tensor
	chOff := 0
	for bi, br := range c.Branches {
		bc := c.lastChannels[bi]
		db := tensor.New(n, bc, c.lastH, c.lastW)
		for i := 0; i < n; i++ {
			src := dout.Data[(i*totalC+chOff)*spatial : (i*totalC+chOff+bc)*spatial]
			copy(db.Data[i*bc*spatial:(i+1)*bc*spatial], src)
		}
		d := br.Backward(db)
		if dx == nil {
			dx = d.Clone()
		} else {
			dx.AddInPlace(d)
		}
		chOff += bc
	}
	return dx
}

// Params concatenates all branch parameters.
func (c *Concat) Params() []*Param {
	var ps []*Param
	for _, b := range c.Branches {
		ps = append(ps, b.Params()...)
	}
	return ps
}

// ChannelShuffle permutes channels between groups (ShuffleNetV2): channels
// laid out as (groups, perGroup) become (perGroup, groups).
type ChannelShuffle struct {
	Groups int

	lastShape []int
}

// NewChannelShuffle returns a shuffle over the given group count.
func NewChannelShuffle(groups int) *ChannelShuffle { return &ChannelShuffle{Groups: groups} }

// Forward permutes channels.
func (s *ChannelShuffle) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c%s.Groups != 0 {
		panic(fmt.Sprintf("nn: shuffle groups %d must divide channels %d", s.Groups, c))
	}
	s.lastShape = append(s.lastShape[:0], x.Shape...)
	per := c / s.Groups
	spatial := h * w
	y := tensor.New(x.Shape...)
	for i := 0; i < n; i++ {
		for g := 0; g < s.Groups; g++ {
			for p := 0; p < per; p++ {
				src := x.Data[(i*c+g*per+p)*spatial : (i*c+g*per+p+1)*spatial]
				dst := y.Data[(i*c+p*s.Groups+g)*spatial : (i*c+p*s.Groups+g+1)*spatial]
				copy(dst, src)
			}
		}
	}
	return y
}

// Backward applies the inverse permutation.
func (s *ChannelShuffle) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := s.lastShape[0], s.lastShape[1], s.lastShape[2], s.lastShape[3]
	per := c / s.Groups
	spatial := h * w
	dx := tensor.New(s.lastShape...)
	for i := 0; i < n; i++ {
		for g := 0; g < s.Groups; g++ {
			for p := 0; p < per; p++ {
				src := dout.Data[(i*c+p*s.Groups+g)*spatial : (i*c+p*s.Groups+g+1)*spatial]
				dst := dx.Data[(i*c+g*per+p)*spatial : (i*c+g*per+p+1)*spatial]
				copy(dst, src)
			}
		}
	}
	return dx
}

// Params returns nil.
func (s *ChannelShuffle) Params() []*Param { return nil }

// SEBlock is a squeeze-and-excitation gate: global average pool → FC →
// ReLU → FC → sigmoid, whose output re-scales each channel of the input.
type SEBlock struct {
	C, Reduced int
	FC1, FC2   *Linear
	relu       *ReLU
	sig        *Sigmoid

	lastX     *tensor.Tensor
	lastGate  *tensor.Tensor
	lastShape []int
}

// NewSEBlock returns a squeeze-and-excitation block over c channels with the
// given reduction ratio (typical value 4 or 16).
func NewSEBlock(name string, c, reduction int, rng *tensor.RNG) *SEBlock {
	red := c / reduction
	if red < 1 {
		red = 1
	}
	return &SEBlock{
		C: c, Reduced: red,
		FC1:  NewLinear(name+".fc1", c, red, rng),
		FC2:  NewLinear(name+".fc2", red, c, rng),
		relu: NewReLU(),
		sig:  NewSigmoid(),
	}
}

// Forward computes channel gates and rescales x.
func (s *SEBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	s.lastX = x
	s.lastShape = append(s.lastShape[:0], x.Shape...)
	// squeeze
	sq := tensor.New(n, c)
	inv := 1 / float32(h*w)
	spatial := h * w
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * spatial
			var sum float32
			for j := 0; j < spatial; j++ {
				sum += x.Data[base+j]
			}
			sq.Data[i*c+ch] = sum * inv
		}
	}
	// excite
	gate := s.sig.Forward(s.FC2.Forward(s.relu.Forward(s.FC1.Forward(sq, train), train), train), train)
	s.lastGate = gate
	// scale
	y := tensor.New(x.Shape...)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			g := gate.Data[i*c+ch]
			base := (i*c + ch) * spatial
			for j := 0; j < spatial; j++ {
				y.Data[base+j] = x.Data[base+j] * g
			}
		}
	}
	return y
}

// Backward differentiates through both the scaling and the gate path.
func (s *SEBlock) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := s.lastShape[0], s.lastShape[1], s.lastShape[2], s.lastShape[3]
	spatial := h * w
	// dGate[i,ch] = sum_j dout * x ; dx (scale path) = dout * gate
	dgate := tensor.New(n, c)
	dx := tensor.New(s.lastShape...)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * spatial
			g := s.lastGate.Data[i*c+ch]
			var dg float32
			for j := 0; j < spatial; j++ {
				dg += dout.Data[base+j] * s.lastX.Data[base+j]
				dx.Data[base+j] = dout.Data[base+j] * g
			}
			dgate.Data[i*c+ch] = dg
		}
	}
	// back through FC2∘ReLU∘FC1∘squeeze
	dsq := s.FC1.Backward(s.relu.Backward(s.FC2.Backward(s.sig.Backward(dgate))))
	inv := 1 / float32(spatial)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * spatial
			g := dsq.Data[i*c+ch] * inv
			for j := 0; j < spatial; j++ {
				dx.Data[base+j] += g
			}
		}
	}
	return dx
}

// Params returns the two FC layers' parameters.
func (s *SEBlock) Params() []*Param {
	return append(s.FC1.Params(), s.FC2.Params()...)
}
