package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// addInto writes a + b elementwise into dst in a single pass.
func addInto(dst, a, b []float32) {
	_ = dst[:len(a)]
	for i, v := range a {
		dst[i] = v + b[i]
	}
}

// Identity passes its input through unchanged. Used as the default shortcut
// in residual blocks.
type Identity struct{}

// NewIdentity returns an Identity layer.
func NewIdentity() *Identity { return &Identity{} }

// Forward returns x.
func (Identity) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }

// Backward returns dout.
func (Identity) Backward(dout *tensor.Tensor) *tensor.Tensor { return dout }

// Params returns nil.
func (Identity) Params() []*Param { return nil }

// Residual computes Body(x) + Shortcut(x): the basic skip connection of
// ResNet-family architectures.
type Residual struct {
	Body     Layer
	Shortcut Layer

	yBuf  *tensor.Tensor
	dxBuf *tensor.Tensor
}

// NewResidual returns a residual block; a nil shortcut means identity.
func NewResidual(body, shortcut Layer) *Residual {
	if shortcut == nil {
		shortcut = NewIdentity()
	}
	return &Residual{Body: body, Shortcut: shortcut}
}

// Forward evaluates both paths and adds them.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	a := r.Body.Forward(x, train)
	b := r.Shortcut.Forward(x, train)
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("nn: residual shape mismatch %v + %v", a.Shape, b.Shape))
	}
	r.yBuf = tensor.Ensure(r.yBuf, a.Shape...)
	y := r.yBuf
	addInto(y.Data, a.Data, b.Data)
	return y
}

// Backward splits the gradient into both paths and sums the input gradients.
func (r *Residual) Backward(dout *tensor.Tensor) *tensor.Tensor {
	da := r.Body.Backward(dout)
	db := r.Shortcut.Backward(dout)
	r.dxBuf = tensor.Ensure(r.dxBuf, da.Shape...)
	dx := r.dxBuf
	addInto(dx.Data, da.Data, db.Data)
	return dx
}

// Params concatenates parameters of both paths.
func (r *Residual) Params() []*Param {
	return append(append([]*Param{}, r.Body.Params()...), r.Shortcut.Params()...)
}

// Concat runs branches in parallel on the same input and concatenates their
// NCHW outputs along the channel dimension (DenseNet, Inception,
// ShuffleNetV2 all need this).
type Concat struct {
	Branches []Layer

	lastChannels []int
	lastH, lastW int

	outs  []*tensor.Tensor
	yBuf  *tensor.Tensor
	dbBuf []*tensor.Tensor
	dxBuf *tensor.Tensor
}

// NewConcat returns a channel-concatenation container.
func NewConcat(branches ...Layer) *Concat { return &Concat{Branches: branches} }

// Forward evaluates every branch and stacks channels.
func (c *Concat) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if c.outs == nil {
		c.outs = make([]*tensor.Tensor, len(c.Branches))
	}
	outs := c.outs
	totalC := 0
	c.lastChannels = c.lastChannels[:0]
	for i, br := range c.Branches {
		outs[i] = br.Forward(x, train)
		if len(outs[i].Shape) != 4 {
			panic("nn: Concat branches must output NCHW")
		}
		c.lastChannels = append(c.lastChannels, outs[i].Shape[1])
		totalC += outs[i].Shape[1]
	}
	n, h, w := outs[0].Shape[0], outs[0].Shape[2], outs[0].Shape[3]
	c.lastH, c.lastW = h, w
	c.yBuf = tensor.Ensure(c.yBuf, n, totalC, h, w)
	y := c.yBuf
	spatial := h * w
	for i := 0; i < n; i++ {
		chOff := 0
		for bi, o := range outs {
			bc := c.lastChannels[bi]
			src := o.Data[i*bc*spatial : (i+1)*bc*spatial]
			dst := y.Data[(i*totalC+chOff)*spatial : (i*totalC+chOff+bc)*spatial]
			copy(dst, src)
			chOff += bc
		}
	}
	return y
}

// Backward slices the gradient per branch and sums the input gradients.
func (c *Concat) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := dout.Shape[0]
	totalC := dout.Shape[1]
	spatial := c.lastH * c.lastW
	var dx *tensor.Tensor
	if c.dbBuf == nil {
		c.dbBuf = make([]*tensor.Tensor, len(c.Branches))
	}
	chOff := 0
	for bi, br := range c.Branches {
		bc := c.lastChannels[bi]
		c.dbBuf[bi] = tensor.Ensure(c.dbBuf[bi], n, bc, c.lastH, c.lastW)
		db := c.dbBuf[bi]
		for i := 0; i < n; i++ {
			src := dout.Data[(i*totalC+chOff)*spatial : (i*totalC+chOff+bc)*spatial]
			copy(db.Data[i*bc*spatial:(i+1)*bc*spatial], src)
		}
		d := br.Backward(db)
		if dx == nil {
			c.dxBuf = tensor.Ensure(c.dxBuf, d.Shape...)
			dx = c.dxBuf
			copy(dx.Data, d.Data)
		} else {
			dx.AddInPlace(d)
		}
		chOff += bc
	}
	return dx
}

// Params concatenates all branch parameters.
func (c *Concat) Params() []*Param {
	var ps []*Param
	for _, b := range c.Branches {
		ps = append(ps, b.Params()...)
	}
	return ps
}

// ChannelShuffle permutes channels between groups (ShuffleNetV2): channels
// laid out as (groups, perGroup) become (perGroup, groups).
type ChannelShuffle struct {
	Groups int

	lastShape []int
	yBuf      *tensor.Tensor
	dxBuf     *tensor.Tensor
}

// NewChannelShuffle returns a shuffle over the given group count.
func NewChannelShuffle(groups int) *ChannelShuffle { return &ChannelShuffle{Groups: groups} }

// Forward permutes channels.
func (s *ChannelShuffle) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c%s.Groups != 0 {
		panic(fmt.Sprintf("nn: shuffle groups %d must divide channels %d", s.Groups, c))
	}
	s.lastShape = append(s.lastShape[:0], x.Shape...)
	per := c / s.Groups
	spatial := h * w
	s.yBuf = tensor.Ensure(s.yBuf, x.Shape...)
	y := s.yBuf
	for i := 0; i < n; i++ {
		for g := 0; g < s.Groups; g++ {
			for p := 0; p < per; p++ {
				src := x.Data[(i*c+g*per+p)*spatial : (i*c+g*per+p+1)*spatial]
				dst := y.Data[(i*c+p*s.Groups+g)*spatial : (i*c+p*s.Groups+g+1)*spatial]
				copy(dst, src)
			}
		}
	}
	return y
}

// Backward applies the inverse permutation.
func (s *ChannelShuffle) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := s.lastShape[0], s.lastShape[1], s.lastShape[2], s.lastShape[3]
	per := c / s.Groups
	spatial := h * w
	s.dxBuf = tensor.Ensure(s.dxBuf, s.lastShape...)
	dx := s.dxBuf
	for i := 0; i < n; i++ {
		for g := 0; g < s.Groups; g++ {
			for p := 0; p < per; p++ {
				src := dout.Data[(i*c+p*s.Groups+g)*spatial : (i*c+p*s.Groups+g+1)*spatial]
				dst := dx.Data[(i*c+g*per+p)*spatial : (i*c+g*per+p+1)*spatial]
				copy(dst, src)
			}
		}
	}
	return dx
}

// Params returns nil.
func (s *ChannelShuffle) Params() []*Param { return nil }

// SEBlock is a squeeze-and-excitation gate: global average pool → FC →
// ReLU → FC → sigmoid, whose output re-scales each channel of the input.
type SEBlock struct {
	C, Reduced int
	FC1, FC2   *Linear
	relu       *ReLU
	sig        *Sigmoid

	lastX     *tensor.Tensor
	lastGate  *tensor.Tensor
	lastShape []int

	sqBuf    *tensor.Tensor
	yBuf     *tensor.Tensor
	dgateBuf *tensor.Tensor
	dxBuf    *tensor.Tensor
}

// NewSEBlock returns a squeeze-and-excitation block over c channels with the
// given reduction ratio (typical value 4 or 16).
func NewSEBlock(name string, c, reduction int, rng *tensor.RNG) *SEBlock {
	red := c / reduction
	if red < 1 {
		red = 1
	}
	return &SEBlock{
		C: c, Reduced: red,
		FC1:  NewLinear(name+".fc1", c, red, rng),
		FC2:  NewLinear(name+".fc2", red, c, rng),
		relu: NewReLU(),
		sig:  NewSigmoid(),
	}
}

// Forward computes channel gates and rescales x.
func (s *SEBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	s.lastX = x
	s.lastShape = append(s.lastShape[:0], x.Shape...)
	// squeeze
	s.sqBuf = tensor.Ensure(s.sqBuf, n, c)
	sq := s.sqBuf
	inv := 1 / float32(h*w)
	spatial := h * w
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * spatial
			var sum float32
			for j := 0; j < spatial; j++ {
				sum += x.Data[base+j]
			}
			sq.Data[i*c+ch] = sum * inv
		}
	}
	// excite
	gate := s.sig.Forward(s.FC2.Forward(s.relu.Forward(s.FC1.Forward(sq, train), train), train), train)
	s.lastGate = gate
	// scale
	s.yBuf = tensor.Ensure(s.yBuf, x.Shape...)
	y := s.yBuf
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			g := gate.Data[i*c+ch]
			base := (i*c + ch) * spatial
			for j := 0; j < spatial; j++ {
				y.Data[base+j] = x.Data[base+j] * g
			}
		}
	}
	return y
}

// Backward differentiates through both the scaling and the gate path.
func (s *SEBlock) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := s.lastShape[0], s.lastShape[1], s.lastShape[2], s.lastShape[3]
	spatial := h * w
	// dGate[i,ch] = sum_j dout * x ; dx (scale path) = dout * gate
	s.dgateBuf = tensor.Ensure(s.dgateBuf, n, c)
	dgate := s.dgateBuf
	s.dxBuf = tensor.Ensure(s.dxBuf, s.lastShape...)
	dx := s.dxBuf
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * spatial
			g := s.lastGate.Data[i*c+ch]
			var dg float32
			for j := 0; j < spatial; j++ {
				dg += dout.Data[base+j] * s.lastX.Data[base+j]
				dx.Data[base+j] = dout.Data[base+j] * g
			}
			dgate.Data[i*c+ch] = dg
		}
	}
	// back through FC2∘ReLU∘FC1∘squeeze
	dsq := s.FC1.Backward(s.relu.Backward(s.FC2.Backward(s.sig.Backward(dgate))))
	inv := 1 / float32(spatial)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * spatial
			g := dsq.Data[i*c+ch] * inv
			for j := 0; j < spatial; j++ {
				dx.Data[base+j] += g
			}
		}
	}
	return dx
}

// Params returns the two FC layers' parameters.
func (s *SEBlock) Params() []*Param {
	return append(s.FC1.Params(), s.FC2.Params()...)
}
