package nn

import (
	"math"

	"repro/internal/tensor"
)

// Softmax computes row-wise softmax of a (N, K) logits tensor.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Shape[0], logits.Shape[1]
	p := tensor.New(n, k)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		out := p.Data[i*k : (i+1)*k]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			out[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range out {
			out[j] *= inv
		}
	}
	return p
}

// CrossEntropy computes mean cross-entropy between logits (N, K) and integer
// labels, returning the scalar loss and the gradient w.r.t. the logits.
// Labels outside [0, K) panic: callers must remap task classes first.
func CrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic("nn: CrossEntropy label count mismatch")
	}
	p := Softmax(logits)
	dlogits := p.Clone()
	var loss float64
	invN := 1 / float64(n)
	for i, y := range labels {
		if y < 0 || y >= k {
			panic("nn: CrossEntropy label out of range")
		}
		loss -= math.Log(math.Max(float64(p.Data[i*k+y]), 1e-12))
		dlogits.Data[i*k+y] -= 1
	}
	dlogits.ScaleInPlace(float32(invN))
	return loss * invN, dlogits
}

// SoftCrossEntropy computes mean cross-entropy between logits (N, K) and a
// target probability distribution (N, K), returning loss and logits
// gradient. This is the distillation loss the gradient restorer uses
// (Eq. 2 of the paper): targets are the soft outputs of the knowledge model.
func SoftCrossEntropy(logits, targets *tensor.Tensor) (float64, *tensor.Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	if targets.Shape[0] != n || targets.Shape[1] != k {
		panic("nn: SoftCrossEntropy shape mismatch")
	}
	p := Softmax(logits)
	dlogits := tensor.New(n, k)
	var loss float64
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			t := float64(targets.Data[i*k+j])
			if t > 0 {
				loss -= t * math.Log(math.Max(float64(p.Data[i*k+j]), 1e-12))
			}
			dlogits.Data[i*k+j] = (p.Data[i*k+j] - targets.Data[i*k+j]) * float32(invN)
		}
	}
	return loss * invN, dlogits
}

// MaskedCrossEntropy is CrossEntropy restricted to a subset of classes
// (task-aware continual learning): logits outside the candidate set are
// treated as -inf so they receive zero probability and zero gradient.
func MaskedCrossEntropy(logits *tensor.Tensor, labels []int, classes []int) (float64, *tensor.Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	masked := tensor.New(n, k)
	masked.Fill(float32(math.Inf(-1)))
	for i := 0; i < n; i++ {
		for _, c := range classes {
			masked.Data[i*k+c] = logits.Data[i*k+c]
		}
	}
	p := Softmax(masked)
	dlogits := tensor.New(n, k)
	var loss float64
	invN := 1 / float64(n)
	for i, y := range labels {
		loss -= math.Log(math.Max(float64(p.Data[i*k+y]), 1e-12))
		for _, c := range classes {
			g := p.Data[i*k+c]
			if c == y {
				g -= 1
			}
			dlogits.Data[i*k+c] = g * float32(invN)
		}
	}
	return loss * invN, dlogits
}
