package nn

import (
	"math"

	"repro/internal/tensor"
)

// Softmax computes row-wise softmax of a (N, K) logits tensor.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	p := tensor.New(logits.Shape...)
	softmaxInto(p, logits)
	return p
}

// softmaxInto writes row-wise softmax of logits into dst (same shape).
func softmaxInto(dst, logits *tensor.Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		out := dst.Data[i*k : (i+1)*k]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			out[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range out {
			out[j] *= inv
		}
	}
}

// CrossEntropy computes mean cross-entropy between logits (N, K) and integer
// labels, returning the scalar loss and the gradient w.r.t. the logits.
// Labels outside [0, K) panic: callers must remap task classes first.
func CrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic("nn: CrossEntropy label count mismatch")
	}
	dlogits := tensor.New(n, k)
	softmaxInto(dlogits, logits)
	var loss float64
	invN := 1 / float64(n)
	for i, y := range labels {
		if y < 0 || y >= k {
			panic("nn: CrossEntropy label out of range")
		}
		loss -= math.Log(math.Max(float64(dlogits.Data[i*k+y]), 1e-12))
		dlogits.Data[i*k+y] -= 1
	}
	dlogits.ScaleInPlace(float32(invN))
	return loss * invN, dlogits
}

// SoftCrossEntropy computes mean cross-entropy between logits (N, K) and a
// target probability distribution (N, K), returning loss and logits
// gradient. This is the distillation loss the gradient restorer uses
// (Eq. 2 of the paper): targets are the soft outputs of the knowledge model.
func SoftCrossEntropy(logits, targets *tensor.Tensor) (float64, *tensor.Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	if targets.Shape[0] != n || targets.Shape[1] != k {
		panic("nn: SoftCrossEntropy shape mismatch")
	}
	p := Softmax(logits)
	dlogits := tensor.New(n, k)
	var loss float64
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			t := float64(targets.Data[i*k+j])
			if t > 0 {
				loss -= t * math.Log(math.Max(float64(p.Data[i*k+j]), 1e-12))
			}
			dlogits.Data[i*k+j] = (p.Data[i*k+j] - targets.Data[i*k+j]) * float32(invN)
		}
	}
	return loss * invN, dlogits
}

// MaskedCrossEntropy is CrossEntropy restricted to a subset of classes
// (task-aware continual learning): logits outside the candidate set are
// treated as -inf so they receive zero probability and zero gradient. The
// softmax touches only the candidate columns — with 10-class tasks over a
// 100-way head that is a 10× smaller loop than the dense masked form, and
// it produces bit-identical values because the excluded columns contribute
// exact zeros to the partition sum.
func MaskedCrossEntropy(logits *tensor.Tensor, labels []int, classes []int) (float64, *tensor.Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	dlogits := tensor.New(n, k)
	var loss float64
	invN := 1 / float64(n)
	for i, y := range labels {
		row := logits.Data[i*k : (i+1)*k]
		out := dlogits.Data[i*k : (i+1)*k]
		maxV := float32(math.Inf(-1))
		for _, c := range classes {
			if v := row[c]; v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, c := range classes {
			e := math.Exp(float64(row[c] - maxV))
			out[c] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		var py float64
		for _, c := range classes {
			p := out[c] * inv
			py64 := float64(p)
			if c == y {
				py = py64
				p -= 1
			}
			out[c] = p * float32(invN)
		}
		loss -= math.Log(math.Max(py, 1e-12))
	}
	return loss * invN, dlogits
}
