//go:build race

package nn

// raceEnabled reports that the race detector is active: it disables
// sync.Pool reuse and instruments allocations, so alloc-count assertions are
// skipped.
const raceEnabled = true
