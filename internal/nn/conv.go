package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW batches, implemented as im2col +
// GEMM. Groups splits input and output channels into independent groups
// (groups == InC == OutC gives a depthwise convolution).
type Conv2D struct {
	InC, OutC, K, Stride, Pad, Groups int
	Bias                              bool
	W                                 *Param // (OutC, InC/Groups * K * K)
	B                                 *Param // (OutC), nil when Bias is false

	lastX        *tensor.Tensor
	lastCols     []float32 // im2col buffers for the whole batch, reused
	lastOutH     int
	lastOutW     int
	lastN        int
	lastInH      int
	lastInW      int
	flops        float64
	colsPerImage int
}

// NewConv2D builds a convolution with Kaiming-normal initialisation.
func NewConv2D(name string, inC, outC, k, stride, pad, groups int, bias bool, rng *tensor.RNG) *Conv2D {
	if inC%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("nn: conv groups %d must divide inC %d and outC %d", groups, inC, outC))
	}
	fanIn := inC / groups * k * k
	w := tensor.New(outC, fanIn)
	rng.FillNorm(w.Data, math.Sqrt(2.0/float64(fanIn)))
	c := &Conv2D{InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad, Groups: groups,
		Bias: bias, W: NewParam(name+".w", w)}
	if bias {
		c.B = NewParam(name+".b", tensor.New(outC))
	}
	return c
}

// Forward convolves a batch of shape (N, InC, H, W).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: conv input shape %v, want (N,%d,H,W)", x.Shape, c.InC))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	outH := tensor.ConvOutSize(h, c.K, c.Stride, c.Pad)
	outW := tensor.ConvOutSize(w, c.K, c.Stride, c.Pad)
	gi := c.InC / c.Groups   // input channels per group
	go_ := c.OutC / c.Groups // output channels per group
	fanIn := gi * c.K * c.K
	c.colsPerImage = c.InC * c.K * c.K * outH * outW
	need := n * c.colsPerImage
	if cap(c.lastCols) < need {
		c.lastCols = make([]float32, need)
	}
	c.lastCols = c.lastCols[:need]
	c.lastX, c.lastN, c.lastInH, c.lastInW, c.lastOutH, c.lastOutW = x, n, h, w, outH, outW

	y := tensor.New(n, c.OutC, outH, outW)
	imgSize := c.InC * h * w
	outImg := c.OutC * outH * outW
	spatial := outH * outW
	for i := 0; i < n; i++ {
		cols := c.lastCols[i*c.colsPerImage : (i+1)*c.colsPerImage]
		tensor.Im2Col(cols, x.Data[i*imgSize:(i+1)*imgSize], c.InC, h, w, c.K, c.K, c.Stride, c.Pad, outH, outW)
		for g := 0; g < c.Groups; g++ {
			wg := c.W.W.Data[g*go_*fanIn : (g+1)*go_*fanIn]
			cg := cols[g*gi*c.K*c.K*spatial : (g+1)*gi*c.K*c.K*spatial]
			yg := y.Data[i*outImg+g*go_*spatial : i*outImg+(g+1)*go_*spatial]
			tensor.Gemm(yg, wg, cg, go_, fanIn, spatial, false, false)
		}
		if c.Bias {
			for oc := 0; oc < c.OutC; oc++ {
				b := c.B.W.Data[oc]
				row := y.Data[i*outImg+oc*spatial : i*outImg+(oc+1)*spatial]
				for j := range row {
					row[j] += b
				}
			}
		}
	}
	c.flops = 2 * float64(n) * float64(c.OutC) * float64(fanIn) * float64(spatial)
	return y
}

// Backward accumulates dW (and dB) and returns dX via the col2im adjoint.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, outH, outW := c.lastN, c.lastOutH, c.lastOutW
	h, w := c.lastInH, c.lastInW
	gi := c.InC / c.Groups
	go_ := c.OutC / c.Groups
	fanIn := gi * c.K * c.K
	spatial := outH * outW
	outImg := c.OutC * spatial
	imgSize := c.InC * h * w

	dx := tensor.New(n, c.InC, h, w)
	dcols := make([]float32, c.InC*c.K*c.K*spatial)
	for i := 0; i < n; i++ {
		cols := c.lastCols[i*c.colsPerImage : (i+1)*c.colsPerImage]
		for j := range dcols {
			dcols[j] = 0
		}
		for g := 0; g < c.Groups; g++ {
			dyg := dout.Data[i*outImg+g*go_*spatial : i*outImg+(g+1)*go_*spatial]
			cg := cols[g*gi*c.K*c.K*spatial : (g+1)*gi*c.K*c.K*spatial]
			// dW += dY × cols^T  → (go_, fanIn)
			dwg := c.W.Grad.Data[g*go_*fanIn : (g+1)*go_*fanIn]
			tensor.Gemm(dwg, dyg, cg, go_, spatial, fanIn, false, true)
			// dCols = W^T × dY → (fanIn, spatial)
			dcg := dcols[g*gi*c.K*c.K*spatial : (g+1)*gi*c.K*c.K*spatial]
			wg := c.W.W.Data[g*go_*fanIn : (g+1)*go_*fanIn]
			tensor.Gemm(dcg, wg, dyg, fanIn, go_, spatial, true, false)
		}
		if c.Bias {
			for oc := 0; oc < c.OutC; oc++ {
				row := dout.Data[i*outImg+oc*spatial : i*outImg+(oc+1)*spatial]
				var s float32
				for _, v := range row {
					s += v
				}
				c.B.Grad.Data[oc] += s
			}
		}
		tensor.Col2Im(dx.Data[i*imgSize:(i+1)*imgSize], dcols, c.InC, h, w, c.K, c.K, c.Stride, c.Pad, outH, outW)
	}
	return dx
}

// Params returns the kernel (and bias when present).
func (c *Conv2D) Params() []*Param {
	if c.Bias {
		return []*Param{c.W, c.B}
	}
	return []*Param{c.W}
}

// FLOPs reports the work of the most recent forward pass.
func (c *Conv2D) FLOPs() float64 { return c.flops }
