package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW batches, implemented as im2col +
// GEMM. Groups splits input and output channels into independent groups
// (groups == InC == OutC gives a depthwise convolution).
//
// Forward parallelises over the batch dimension through the shared kernel
// pool (every image writes disjoint output and column regions). Backward
// runs two deterministic passes: a batch-parallel pass for the input
// gradient (disjoint per-image writes) and an in-order pass for the weight
// gradient so dW accumulates identically for every thread count.
//
// All intermediate buffers (column matrices, outputs, gradients, bias
// partials) are retained on the layer and reused, so steady-state training
// performs no heap allocations.
type Conv2D struct {
	InC, OutC, K, Stride, Pad, Groups int
	Bias                              bool
	W                                 *Param // (OutC, InC/Groups * K * K)
	B                                 *Param // (OutC), nil when Bias is false

	lastCols     []float32 // im2col buffers for the whole batch, reused
	lastOutH     int
	lastOutW     int
	lastN        int
	lastInH      int
	lastInW      int
	flops        float64
	colsPerImage int

	yBuf     *tensor.Tensor // forward output, reused
	dxBuf    *tensor.Tensor // backward input-gradient, reused
	dcols    []float32      // batch-wide column-gradient scratch
	biasPart []float32      // per-image bias-gradient partial sums
	wT       []float32      // W^T, transposed once per backward batch
}

// NewConv2D builds a convolution with Kaiming-normal initialisation.
func NewConv2D(name string, inC, outC, k, stride, pad, groups int, bias bool, rng *tensor.RNG) *Conv2D {
	if inC%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("nn: conv groups %d must divide inC %d and outC %d", groups, inC, outC))
	}
	fanIn := inC / groups * k * k
	w := tensor.New(outC, fanIn)
	rng.FillNorm(w.Data, math.Sqrt(2.0/float64(fanIn)))
	c := &Conv2D{InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad, Groups: groups,
		Bias: bias, W: NewParam(name+".w", w)}
	if bias {
		c.B = NewParam(name+".b", tensor.New(outC))
	}
	return c
}

// Forward convolves a batch of shape (N, InC, H, W).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: conv input shape %v, want (N,%d,H,W)", x.Shape, c.InC))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	outH := tensor.ConvOutSize(h, c.K, c.Stride, c.Pad)
	outW := tensor.ConvOutSize(w, c.K, c.Stride, c.Pad)
	gi := c.InC / c.Groups // input channels per group
	fanIn := gi * c.K * c.K
	spatial := outH * outW
	c.colsPerImage = c.InC * c.K * c.K * spatial
	need := n * c.colsPerImage
	if cap(c.lastCols) < need {
		c.lastCols = make([]float32, need)
	}
	c.lastCols = c.lastCols[:need]
	c.lastN, c.lastInH, c.lastInW, c.lastOutH, c.lastOutW = n, h, w, outH, outW

	c.yBuf = tensor.Ensure(c.yBuf, n, c.OutC, outH, outW)
	y := c.yBuf
	if n > 1 && tensor.KernelThreads() > 1 {
		tensor.Parallel(n, func(lo, hi int) { c.forwardRange(x, y, lo, hi) })
	} else {
		c.forwardRange(x, y, 0, n)
	}
	c.flops = 2 * float64(n) * float64(c.OutC) * float64(fanIn) * float64(spatial)
	return y
}

// forwardRange lowers and convolves images [lo, hi) of the batch. Every
// image touches only its own slice of cols and y, so ranges can run
// concurrently and the result is independent of the batch partitioning.
func (c *Conv2D) forwardRange(x, y *tensor.Tensor, lo, hi int) {
	h, w := c.lastInH, c.lastInW
	outH, outW := c.lastOutH, c.lastOutW
	gi := c.InC / c.Groups
	go_ := c.OutC / c.Groups
	fanIn := gi * c.K * c.K
	spatial := outH * outW
	imgSize := c.InC * h * w
	outImg := c.OutC * spatial
	for i := lo; i < hi; i++ {
		cols := c.lastCols[i*c.colsPerImage : (i+1)*c.colsPerImage]
		tensor.Im2Col(cols, x.Data[i*imgSize:(i+1)*imgSize], c.InC, h, w, c.K, c.K, c.Stride, c.Pad, outH, outW)
		yi := y.Data[i*outImg : (i+1)*outImg]
		clear(yi)
		for g := 0; g < c.Groups; g++ {
			wg := c.W.W.Data[g*go_*fanIn : (g+1)*go_*fanIn]
			cg := cols[g*gi*c.K*c.K*spatial : (g+1)*gi*c.K*c.K*spatial]
			yg := yi[g*go_*spatial : (g+1)*go_*spatial]
			tensor.Gemm(yg, wg, cg, go_, fanIn, spatial, false, false)
		}
		if c.Bias {
			for oc := 0; oc < c.OutC; oc++ {
				b := c.B.W.Data[oc]
				row := yi[oc*spatial : (oc+1)*spatial]
				for j := range row {
					row[j] += b
				}
			}
		}
	}
}

// BackwardParamsOnly accumulates dW (and dB) without producing the input
// gradient: the adjoint im2col work is skipped entirely. Used for the first
// layer of a network, whose dX nobody consumes.
func (c *Conv2D) BackwardParamsOnly(dout *tensor.Tensor) {
	n := c.lastN
	if c.Bias {
		if cap(c.biasPart) < n*c.OutC {
			c.biasPart = make([]float32, n*c.OutC)
		}
		c.biasPart = c.biasPart[:n*c.OutC]
		spatial := c.lastOutH * c.lastOutW
		outImg := c.OutC * spatial
		for i := 0; i < n; i++ {
			for oc := 0; oc < c.OutC; oc++ {
				row := dout.Data[i*outImg+oc*spatial : i*outImg+(oc+1)*spatial]
				var s float32
				for _, v := range row {
					s += v
				}
				c.biasPart[i*c.OutC+oc] = s
			}
		}
	}
	c.backwardWeights(dout)
}

// Backward accumulates dW (and dB) and returns dX via the col2im adjoint.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := c.lastN
	h, w := c.lastInH, c.lastInW

	c.dxBuf = tensor.Ensure(c.dxBuf, n, c.InC, h, w)
	dx := c.dxBuf
	if cap(c.dcols) < n*c.colsPerImage {
		c.dcols = make([]float32, n*c.colsPerImage)
	}
	c.dcols = c.dcols[:n*c.colsPerImage]
	if c.Bias {
		if cap(c.biasPart) < n*c.OutC {
			c.biasPart = make([]float32, n*c.OutC)
		}
		c.biasPart = c.biasPart[:n*c.OutC]
	}

	// Transpose each group's kernel once per batch: the dCols GEMM below
	// multiplies by W^T for every image, and handing it an already-
	// transposed left operand saves the per-call packing.
	{
		gi := c.InC / c.Groups
		go_ := c.OutC / c.Groups
		fanIn := gi * c.K * c.K
		if cap(c.wT) < c.Groups*fanIn*go_ {
			c.wT = make([]float32, c.Groups*fanIn*go_)
		}
		c.wT = c.wT[:c.Groups*fanIn*go_]
		for g := 0; g < c.Groups; g++ {
			wg := c.W.W.Data[g*go_*fanIn : (g+1)*go_*fanIn]
			wTg := c.wT[g*fanIn*go_ : (g+1)*fanIn*go_]
			for r := 0; r < go_; r++ {
				row := wg[r*fanIn : (r+1)*fanIn]
				for j, v := range row {
					wTg[j*go_+r] = v
				}
			}
		}
	}

	// Pass 1 — input gradient, batch-parallel: every image writes its own
	// dcols / dx / biasPart slices.
	if n > 1 && tensor.KernelThreads() > 1 {
		tensor.Parallel(n, func(lo, hi int) { c.backwardInputRange(dout, dx, lo, hi) })
	} else {
		c.backwardInputRange(dout, dx, 0, n)
	}

	c.backwardWeights(dout)
	return dx
}

// backwardWeights is the weight-gradient pass: images in a fixed order so dW
// (and dB) accumulate identically regardless of the thread count. The
// per-image GEMMs still run on the kernel pool internally (they parallelise
// over dW rows, which is partition-independent).
func (c *Conv2D) backwardWeights(dout *tensor.Tensor) {
	n := c.lastN
	gi := c.InC / c.Groups
	go_ := c.OutC / c.Groups
	fanIn := gi * c.K * c.K
	spatial := c.lastOutH * c.lastOutW
	outImg := c.OutC * spatial
	for i := 0; i < n; i++ {
		cols := c.lastCols[i*c.colsPerImage : (i+1)*c.colsPerImage]
		for g := 0; g < c.Groups; g++ {
			dyg := dout.Data[i*outImg+g*go_*spatial : i*outImg+(g+1)*go_*spatial]
			cg := cols[g*gi*c.K*c.K*spatial : (g+1)*gi*c.K*c.K*spatial]
			// dW += dY × cols^T  → (go_, fanIn)
			dwg := c.W.Grad.Data[g*go_*fanIn : (g+1)*go_*fanIn]
			tensor.Gemm(dwg, dyg, cg, go_, spatial, fanIn, false, true)
		}
		if c.Bias {
			for oc := 0; oc < c.OutC; oc++ {
				c.B.Grad.Data[oc] += c.biasPart[i*c.OutC+oc]
			}
		}
	}
}

// backwardInputRange computes the column gradients, bias partial sums, and
// input gradient for images [lo, hi). All writes are disjoint per image.
func (c *Conv2D) backwardInputRange(dout, dx *tensor.Tensor, lo, hi int) {
	h, w := c.lastInH, c.lastInW
	outH, outW := c.lastOutH, c.lastOutW
	gi := c.InC / c.Groups
	go_ := c.OutC / c.Groups
	fanIn := gi * c.K * c.K
	spatial := outH * outW
	outImg := c.OutC * spatial
	imgSize := c.InC * h * w
	for i := lo; i < hi; i++ {
		dcols := c.dcols[i*c.colsPerImage : (i+1)*c.colsPerImage]
		clear(dcols)
		for g := 0; g < c.Groups; g++ {
			dyg := dout.Data[i*outImg+g*go_*spatial : i*outImg+(g+1)*go_*spatial]
			// dCols = W^T × dY → (fanIn, spatial), with W^T pre-transposed.
			dcg := dcols[g*gi*c.K*c.K*spatial : (g+1)*gi*c.K*c.K*spatial]
			wTg := c.wT[g*fanIn*go_ : (g+1)*fanIn*go_]
			tensor.Gemm(dcg, wTg, dyg, fanIn, go_, spatial, false, false)
		}
		if c.Bias {
			for oc := 0; oc < c.OutC; oc++ {
				row := dout.Data[i*outImg+oc*spatial : i*outImg+(oc+1)*spatial]
				var s float32
				for _, v := range row {
					s += v
				}
				c.biasPart[i*c.OutC+oc] = s
			}
		}
		dxi := dx.Data[i*imgSize : (i+1)*imgSize]
		clear(dxi)
		tensor.Col2Im(dxi, dcols, c.InC, h, w, c.K, c.K, c.Stride, c.Pad, outH, outW)
	}
}

// Params returns the kernel (and bias when present).
func (c *Conv2D) Params() []*Param {
	if c.Bias {
		return []*Param{c.W, c.B}
	}
	return []*Param{c.W}
}

// FLOPs reports the work of the most recent forward pass.
func (c *Conv2D) FLOPs() float64 { return c.flops }
