// Package model is the DNN zoo: the 6-layer CNN and ResNet-18 the paper's
// main evaluation trains (§V-A), plus the eight architectures of the
// applicability study (§V-E) spanning the survey's six categories — depth
// (ResNet-152), multi-path (DenseNet), width (InceptionV3, ResNeXt,
// WideResNet), feature-map exploitation/attention (SENet18), and lightweight
// (MobileNetV2 ×1.0/×2.0, ShuffleNetV2).
//
// Topologies are genuine (residual/bottleneck/dense/inception/grouped/SE/
// inverted-residual/shuffle blocks with the published block counts);
// channel widths are scaled down by a constructor parameter so the pure-Go
// substrate trains them on CPU. See DESIGN.md substitution #4.
package model

import (
	"fmt"
	"sort"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Model wraps a network with its metadata and measured per-sample cost.
type Model struct {
	Name       string
	Net        nn.Layer
	NumClasses int
	InC        int
	InH, InW   int

	flopsPerSample float64
	params         []*nn.Param
}

// Forward runs the network.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return m.Net.Forward(x, train)
}

// Backward back-propagates an output gradient. The gradient w.r.t. the
// network input is not produced (every training loop discards it), which
// lets the first layer skip its adjoint-lowering work; Backward returns nil
// when the input gradient was elided.
func (m *Model) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if s, ok := m.Net.(*nn.Sequential); ok {
		return s.BackwardDiscardInput(dout)
	}
	return m.Net.Backward(dout)
}

// Params returns the cached parameter list.
func (m *Model) Params() []*nn.Param {
	if m.params == nil {
		m.params = m.Net.Params()
	}
	return m.params
}

// NumParams returns the scalar parameter count.
func (m *Model) NumParams() int { return nn.NumParams(m.Params()) }

// ParamBytes returns the dense float32 size of the model, the unit of
// federated communication accounting.
func (m *Model) ParamBytes() int { return m.NumParams() * 4 }

// FLOPsPerSample lazily measures the forward cost of one sample by probing
// with a batch of one. Backward is accounted as 2× forward, the standard
// rule of thumb, by the device model.
func (m *Model) FLOPsPerSample() float64 {
	if m.flopsPerSample == 0 {
		x := tensor.New(1, m.InC, m.InH, m.InW)
		m.Net.Forward(x, false)
		m.flopsPerSample = nn.TotalFLOPs(m.Net)
	}
	return m.flopsPerSample
}

// Builder constructs a model for the given class count, input geometry and
// width scale (1 = the package's scaled default width).
type Builder func(numClasses, inC, inH, inW, width int, rng *tensor.RNG) *Model

var registry = map[string]Builder{}

func register(name string, b Builder) { registry[name] = b }

// Build constructs a registered architecture by name.
func Build(name string, numClasses, inC, inH, inW, width int, rng *tensor.RNG) (*Model, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("model: unknown architecture %q", name)
	}
	return b(numClasses, inC, inH, inW, width, rng), nil
}

// MustBuild is Build for static names; it panics on unknown architectures.
func MustBuild(name string, numClasses, inC, inH, inW, width int, rng *tensor.RNG) *Model {
	m, err := Build(name, numClasses, inC, inH, inW, width, rng)
	if err != nil {
		panic(err)
	}
	return m
}

// Names lists the registered architectures, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
