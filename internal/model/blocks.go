package model

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// conv3 builds conv3×3 + BN.
func conv3(name string, inC, outC, stride int, rng *tensor.RNG) nn.Layer {
	return nn.NewSequential(
		nn.NewConv2D(name, inC, outC, 3, stride, 1, 1, false, rng),
		nn.NewBatchNorm2D(name+".bn", outC, rng),
	)
}

// conv1 builds conv1×1 + BN.
func conv1(name string, inC, outC, stride int, rng *tensor.RNG) nn.Layer {
	return nn.NewSequential(
		nn.NewConv2D(name, inC, outC, 1, stride, 0, 1, false, rng),
		nn.NewBatchNorm2D(name+".bn", outC, rng),
	)
}

// basicBlock is the ResNet-18/34 two-conv residual block, optionally with a
// squeeze-and-excitation gate (SENet18).
func basicBlock(name string, inC, outC, stride int, se bool, rng *tensor.RNG) nn.Layer {
	body := []nn.Layer{
		conv3(name+".c1", inC, outC, stride, rng),
		nn.NewReLU(),
		conv3(name+".c2", outC, outC, 1, rng),
	}
	if se {
		body = append(body, nn.NewSEBlock(name+".se", outC, 4, rng))
	}
	var shortcut nn.Layer
	if stride != 1 || inC != outC {
		shortcut = conv1(name+".sc", inC, outC, stride, rng)
	}
	return nn.NewSequential(
		nn.NewResidual(nn.NewSequential(body...), shortcut),
		nn.NewReLU(),
	)
}

// bottleneck is the ResNet-50/152 three-conv residual block with expansion 4;
// groups > 1 gives the ResNeXt variant.
func bottleneck(name string, inC, midC, stride, groups int, rng *tensor.RNG) nn.Layer {
	outC := midC * 4
	body := nn.NewSequential(
		conv1(name+".c1", inC, midC, 1, rng),
		nn.NewReLU(),
		nn.NewSequential(
			nn.NewConv2D(name+".c2", midC, midC, 3, stride, 1, groups, false, rng),
			nn.NewBatchNorm2D(name+".c2.bn", midC, rng),
		),
		nn.NewReLU(),
		conv1(name+".c3", midC, outC, 1, rng),
	)
	var shortcut nn.Layer
	if stride != 1 || inC != outC {
		shortcut = conv1(name+".sc", inC, outC, stride, rng)
	}
	return nn.NewSequential(nn.NewResidual(body, shortcut), nn.NewReLU())
}

// resNetStages assembles a stack of residual stages given per-stage block
// counts; blockFn builds one block.
func resNetStages(name string, inC int, widths []int, blocks []int,
	blockFn func(name string, inC, width, stride int) (nn.Layer, int)) ([]nn.Layer, int) {
	var layers []nn.Layer
	c := inC
	for s, nb := range blocks {
		for b := 0; b < nb; b++ {
			stride := 1
			if b == 0 && s > 0 {
				stride = 2
			}
			l, outC := blockFn(fmt.Sprintf("%s.s%d.b%d", name, s, b), c, widths[s], stride)
			layers = append(layers, l)
			c = outC
		}
	}
	return layers, c
}

// head builds the classifier head: global average pool + linear.
func head(name string, inC, numClasses int, rng *tensor.RNG) nn.Layer {
	return nn.NewSequential(
		nn.NewGlobalAvgPool(),
		nn.NewLinear(name+".fc", inC, numClasses, rng),
	)
}

// invertedResidual is MobileNetV2's block: 1×1 expand (ReLU6) → depthwise
// 3×3 (ReLU6) → 1×1 linear projection, with a residual when shapes allow.
func invertedResidual(name string, inC, outC, stride, expand int, rng *tensor.RNG) nn.Layer {
	midC := inC * expand
	body := nn.NewSequential(
		nn.NewConv2D(name+".exp", inC, midC, 1, 1, 0, 1, false, rng),
		nn.NewBatchNorm2D(name+".exp.bn", midC, rng),
		nn.NewReLU6(),
		nn.NewConv2D(name+".dw", midC, midC, 3, stride, 1, midC, false, rng),
		nn.NewBatchNorm2D(name+".dw.bn", midC, rng),
		nn.NewReLU6(),
		nn.NewConv2D(name+".proj", midC, outC, 1, 1, 0, 1, false, rng),
		nn.NewBatchNorm2D(name+".proj.bn", outC, rng),
	)
	if stride == 1 && inC == outC {
		return nn.NewResidual(body, nil)
	}
	return body
}

// shuffleUnit is ShuffleNetV2's basic unit: channel split, identity branch +
// (1×1 → depthwise 3×3 → 1×1) branch, concat, channel shuffle. The strided
// variant processes both halves with depthwise downsampling.
func shuffleUnit(name string, c int, stride int, rng *tensor.RNG) nn.Layer {
	half := c / 2
	if stride == 1 {
		branch := nn.NewSequential(
			nn.NewConv2D(name+".c1", half, half, 1, 1, 0, 1, false, rng),
			nn.NewBatchNorm2D(name+".c1.bn", half, rng),
			nn.NewReLU(),
			nn.NewConv2D(name+".dw", half, half, 3, 1, 1, half, false, rng),
			nn.NewBatchNorm2D(name+".dw.bn", half, rng),
			nn.NewConv2D(name+".c2", half, half, 1, 1, 0, 1, false, rng),
			nn.NewBatchNorm2D(name+".c2.bn", half, rng),
			nn.NewReLU(),
		)
		return nn.NewSequential(
			nn.NewSplitConcat(half, nn.NewIdentity(), branch),
			nn.NewChannelShuffle(2),
		)
	}
	// Strided unit: no split; both branches see all channels and downsample,
	// doubling the channel count.
	left := nn.NewSequential(
		nn.NewConv2D(name+".l.dw", c, c, 3, stride, 1, c, false, rng),
		nn.NewBatchNorm2D(name+".l.dw.bn", c, rng),
		nn.NewConv2D(name+".l.c1", c, c, 1, 1, 0, 1, false, rng),
		nn.NewBatchNorm2D(name+".l.c1.bn", c, rng),
		nn.NewReLU(),
	)
	right := nn.NewSequential(
		nn.NewConv2D(name+".r.c1", c, c, 1, 1, 0, 1, false, rng),
		nn.NewBatchNorm2D(name+".r.c1.bn", c, rng),
		nn.NewReLU(),
		nn.NewConv2D(name+".r.dw", c, c, 3, stride, 1, c, false, rng),
		nn.NewBatchNorm2D(name+".r.dw.bn", c, rng),
		nn.NewConv2D(name+".r.c2", c, c, 1, 1, 0, 1, false, rng),
		nn.NewBatchNorm2D(name+".r.c2.bn", c, rng),
		nn.NewReLU(),
	)
	return nn.NewSequential(
		nn.NewConcat(left, right),
		nn.NewChannelShuffle(2),
	)
}

// denseLayer produces growth new channels from all accumulated channels
// (BN → ReLU → conv3×3), concatenated onto its input by the caller.
func denseLayer(name string, inC, growth int, rng *tensor.RNG) nn.Layer {
	return nn.NewConcat(
		nn.NewIdentity(),
		nn.NewSequential(
			nn.NewBatchNorm2D(name+".bn", inC, rng),
			nn.NewReLU(),
			nn.NewConv2D(name+".conv", inC, growth, 3, 1, 1, 1, false, rng),
		),
	)
}

// inceptionModule is a scaled InceptionV3-style module with four parallel
// branches concatenated on channels. The pooling branch is realised as a
// depthwise 3×3 convolution (learned smoothing) because the substrate's
// pooling layers have no padding; this preserves branch diversity, which is
// what the width-category study exercises.
func inceptionModule(name string, inC, b1, b3, b5, bp int, rng *tensor.RNG) nn.Layer {
	branch1 := nn.NewSequential(
		nn.NewConv2D(name+".b1", inC, b1, 1, 1, 0, 1, false, rng),
		nn.NewBatchNorm2D(name+".b1.bn", b1, rng), nn.NewReLU(),
	)
	branch3 := nn.NewSequential(
		nn.NewConv2D(name+".b3a", inC, b3, 1, 1, 0, 1, false, rng),
		nn.NewBatchNorm2D(name+".b3a.bn", b3, rng), nn.NewReLU(),
		nn.NewConv2D(name+".b3b", b3, b3, 3, 1, 1, 1, false, rng),
		nn.NewBatchNorm2D(name+".b3b.bn", b3, rng), nn.NewReLU(),
	)
	branch5 := nn.NewSequential(
		nn.NewConv2D(name+".b5a", inC, b5, 1, 1, 0, 1, false, rng),
		nn.NewBatchNorm2D(name+".b5a.bn", b5, rng), nn.NewReLU(),
		nn.NewConv2D(name+".b5b", b5, b5, 3, 1, 1, 1, false, rng),
		nn.NewBatchNorm2D(name+".b5b.bn", b5, rng), nn.NewReLU(),
		nn.NewConv2D(name+".b5c", b5, b5, 3, 1, 1, 1, false, rng),
		nn.NewBatchNorm2D(name+".b5c.bn", b5, rng), nn.NewReLU(),
	)
	branchP := nn.NewSequential(
		nn.NewConv2D(name+".bp.dw", inC, inC, 3, 1, 1, inC, false, rng),
		nn.NewConv2D(name+".bp", inC, bp, 1, 1, 0, 1, false, rng),
		nn.NewBatchNorm2D(name+".bp.bn", bp, rng), nn.NewReLU(),
	)
	return nn.NewConcat(branch1, branch3, branch5, branchP)
}
