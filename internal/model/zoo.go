package model

import (
	"fmt"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func init() {
	register("SixCNN", NewSixCNN)
	register("ResNet18", NewResNet18)
	register("ResNet152", NewResNet152)
	register("DenseNet", NewDenseNet)
	register("InceptionV3", NewInceptionV3)
	register("ResNeXt", NewResNeXt)
	register("WideResNet", NewWideResNet)
	register("SENet18", NewSENet18)
	register("MobileNetV2", NewMobileNetV2)
	register("MobileNetV2x2", NewMobileNetV2x2)
	register("ShuffleNetV2", NewShuffleNetV2)
}

// NewSixCNN is the 6-layer CNN of Jung et al. [19] used for CIFAR100, FC100
// and CORe50 (§V-A): four convolutions with two max-pools, then two fully
// connected layers.
func NewSixCNN(numClasses, inC, inH, inW, width int, rng *tensor.RNG) *Model {
	w := 8 * width
	h2, w2 := inH/2, inW/2
	h4, w4 := h2/2, w2/2
	net := nn.NewSequential(
		nn.NewConv2D("c1", inC, w, 3, 1, 1, 1, true, rng),
		nn.NewReLU(),
		nn.NewConv2D("c2", w, w, 3, 1, 1, 1, true, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D("c3", w, 2*w, 3, 1, 1, 1, true, rng),
		nn.NewReLU(),
		nn.NewConv2D("c4", 2*w, 2*w, 3, 1, 1, 1, true, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewFlatten(),
		nn.NewLinear("fc1", 2*w*h4*w4, 16*width, rng),
		nn.NewReLU(),
		nn.NewLinear("fc2", 16*width, numClasses, rng),
	)
	return &Model{Name: "SixCNN", Net: net, NumClasses: numClasses, InC: inC, InH: inH, InW: inW}
}

// NewResNet18 builds the standard [2,2,2,2] basic-block ResNet.
func NewResNet18(numClasses, inC, inH, inW, width int, rng *tensor.RNG) *Model {
	return resNet18Like("ResNet18", false, numClasses, inC, inH, inW, width, rng)
}

// NewSENet18 is ResNet-18 with squeeze-and-excitation gates in every block
// (the attention / feature-map-exploitation category of §V-E).
func NewSENet18(numClasses, inC, inH, inW, width int, rng *tensor.RNG) *Model {
	return resNet18Like("SENet18", true, numClasses, inC, inH, inW, width, rng)
}

func resNet18Like(name string, se bool, numClasses, inC, inH, inW, width int, rng *tensor.RNG) *Model {
	w := 8 * width
	layers := []nn.Layer{
		conv3("stem", inC, w, 1, rng),
		nn.NewReLU(),
	}
	stages, outC := resNetStages(name, w, []int{w, 2 * w, 4 * w, 8 * w}, []int{2, 2, 2, 2},
		func(n string, in, wd, stride int) (nn.Layer, int) {
			return basicBlock(n, in, wd, stride, se, rng), wd
		})
	layers = append(layers, stages...)
	layers = append(layers, head(name, outC, numClasses, rng))
	return &Model{Name: name, Net: nn.NewSequential(layers...), NumClasses: numClasses, InC: inC, InH: inH, InW: inW}
}

// NewResNet152 uses bottleneck blocks with the published [3,8,36,3] stage
// depths (the depth category of §V-E). At width 1 the channel counts are
// scaled to 1/16 of the original so the pure-Go substrate can train it.
func NewResNet152(numClasses, inC, inH, inW, width int, rng *tensor.RNG) *Model {
	w := 4 * width
	layers := []nn.Layer{conv3("stem", inC, w, 1, rng), nn.NewReLU()}
	stages, outC := resNetStages("ResNet152", w, []int{w, 2 * w, 4 * w, 8 * w}, []int{3, 8, 36, 3},
		func(n string, in, wd, stride int) (nn.Layer, int) {
			return bottleneck(n, in, wd, stride, 1, rng), wd * 4
		})
	layers = append(layers, stages...)
	layers = append(layers, head("ResNet152", outC, numClasses, rng))
	return &Model{Name: "ResNet152", Net: nn.NewSequential(layers...), NumClasses: numClasses, InC: inC, InH: inH, InW: inW}
}

// NewResNeXt is the grouped-convolution bottleneck network (width category):
// a scaled ResNeXt with cardinality 4.
func NewResNeXt(numClasses, inC, inH, inW, width int, rng *tensor.RNG) *Model {
	w := 8 * width
	layers := []nn.Layer{conv3("stem", inC, w, 1, rng), nn.NewReLU()}
	stages, outC := resNetStages("ResNeXt", w, []int{w, 2 * w, 4 * w}, []int{2, 2, 2},
		func(n string, in, wd, stride int) (nn.Layer, int) {
			return bottleneck(n, in, wd, stride, 4, rng), wd * 4
		})
	layers = append(layers, stages...)
	layers = append(layers, head("ResNeXt", outC, numClasses, rng))
	return &Model{Name: "ResNeXt", Net: nn.NewSequential(layers...), NumClasses: numClasses, InC: inC, InH: inH, InW: inW}
}

// NewWideResNet is a WRN-style network: basic blocks with a ×4 widening
// factor over three stages (width category).
func NewWideResNet(numClasses, inC, inH, inW, width int, rng *tensor.RNG) *Model {
	w := 8 * width * 4
	layers := []nn.Layer{conv3("stem", inC, 8*width, 1, rng), nn.NewReLU()}
	stages, outC := resNetStages("WideResNet", 8*width, []int{w, 2 * w, 4 * w}, []int{2, 2, 2},
		func(n string, in, wd, stride int) (nn.Layer, int) {
			return basicBlock(n, in, wd, stride, false, rng), wd
		})
	layers = append(layers, stages...)
	layers = append(layers, head("WideResNet", outC, numClasses, rng))
	return &Model{Name: "WideResNet", Net: nn.NewSequential(layers...), NumClasses: numClasses, InC: inC, InH: inH, InW: inW}
}

// NewDenseNet builds a DenseNet-BC style network (multi-path category):
// three dense blocks with 1×1 transition convolutions and average-pool
// downsampling between them.
func NewDenseNet(numClasses, inC, inH, inW, width int, rng *tensor.RNG) *Model {
	growth := 4 * width
	c := 2 * growth
	layers := []nn.Layer{conv3("stem", inC, c, 1, rng), nn.NewReLU()}
	blockSizes := []int{4, 4, 4}
	for bi, nLayers := range blockSizes {
		for li := 0; li < nLayers; li++ {
			layers = append(layers, denseLayer(namef("dense.%d.%d", bi, li), c, growth, rng))
			c += growth
		}
		if bi < len(blockSizes)-1 {
			// Transition: 1×1 conv halves channels, avg-pool halves spatial.
			c2 := c / 2
			layers = append(layers,
				conv1(namef("trans.%d", bi), c, c2, 1, rng),
				nn.NewReLU(),
				nn.NewAvgPool2D(2, 2),
			)
			c = c2
		}
	}
	layers = append(layers, head("DenseNet", c, numClasses, rng))
	return &Model{Name: "DenseNet", Net: nn.NewSequential(layers...), NumClasses: numClasses, InC: inC, InH: inH, InW: inW}
}

// NewInceptionV3 builds a scaled Inception-style network (width category):
// stem, two inception modules, strided reduction, two more modules.
func NewInceptionV3(numClasses, inC, inH, inW, width int, rng *tensor.RNG) *Model {
	w := 4 * width
	stemC := 2 * w
	layers := []nn.Layer{conv3("stem", inC, stemC, 1, rng), nn.NewReLU()}
	c := stemC
	addModule := func(name string) {
		layers = append(layers, inceptionModule(name, c, w, w, w, w, rng))
		c = 4 * w
	}
	addModule("inc1")
	addModule("inc2")
	layers = append(layers, conv3("red1", c, c, 2, rng), nn.NewReLU())
	addModule("inc3")
	addModule("inc4")
	layers = append(layers, head("InceptionV3", c, numClasses, rng))
	return &Model{Name: "InceptionV3", Net: nn.NewSequential(layers...), NumClasses: numClasses, InC: inC, InH: inH, InW: inW}
}

// NewMobileNetV2 is the inverted-residual lightweight network with width
// multiplier 1.0 (lightweight category).
func NewMobileNetV2(numClasses, inC, inH, inW, width int, rng *tensor.RNG) *Model {
	return mobileNetV2("MobileNetV2", 1, numClasses, inC, inH, inW, width, rng)
}

// NewMobileNetV2x2 is MobileNetV2 with width multiplier 2.0, the second
// configuration the paper tests.
func NewMobileNetV2x2(numClasses, inC, inH, inW, width int, rng *tensor.RNG) *Model {
	return mobileNetV2("MobileNetV2x2", 2, numClasses, inC, inH, inW, width, rng)
}

func mobileNetV2(name string, mult, numClasses, inC, inH, inW, width int, rng *tensor.RNG) *Model {
	base := 4 * width * mult
	layers := []nn.Layer{conv3("stem", inC, base, 1, rng), nn.NewReLU6()}
	type stage struct{ out, n, stride, expand int }
	stages := []stage{
		{base, 1, 1, 1},
		{base * 2, 2, 2, 6},
		{base * 4, 2, 2, 6},
		{base * 8, 2, 1, 6},
	}
	c := base
	for si, st := range stages {
		for bi := 0; bi < st.n; bi++ {
			stride := 1
			if bi == 0 {
				stride = st.stride
			}
			layers = append(layers, invertedResidual(namef("%s.ir%d.%d", name, si, bi), c, st.out, stride, st.expand, rng))
			c = st.out
		}
	}
	layers = append(layers, head(name, c, numClasses, rng))
	return &Model{Name: name, Net: nn.NewSequential(layers...), NumClasses: numClasses, InC: inC, InH: inH, InW: inW}
}

// NewShuffleNetV2 builds the channel-split/shuffle lightweight network.
func NewShuffleNetV2(numClasses, inC, inH, inW, width int, rng *tensor.RNG) *Model {
	c := 8 * width
	layers := []nn.Layer{conv3("stem", inC, c, 1, rng), nn.NewReLU()}
	// Stage 1: two basic units; stage 2: strided unit (doubles channels)
	// then two basic units.
	layers = append(layers,
		shuffleUnit("su1.0", c, 1, rng),
		shuffleUnit("su1.1", c, 1, rng),
		shuffleUnit("su2.0", c, 2, rng),
	)
	c *= 2
	layers = append(layers,
		shuffleUnit("su2.1", c, 1, rng),
		shuffleUnit("su2.2", c, 1, rng),
	)
	layers = append(layers, head("ShuffleNetV2", c, numClasses, rng))
	return &Model{Name: "ShuffleNetV2", Net: nn.NewSequential(layers...), NumClasses: numClasses, InC: inC, InH: inH, InW: inW}
}

func namef(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}
