package model

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// allModels builds every registered architecture at the smallest width on a
// tiny input.
func allModels(t *testing.T) []*Model {
	t.Helper()
	rng := tensor.NewRNG(1)
	var ms []*Model
	for _, name := range Names() {
		m, err := Build(name, 7, 3, 12, 12, 1, rng.Fork(1))
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		ms = append(ms, m)
	}
	return ms
}

func TestRegistryHasAllPaperArchitectures(t *testing.T) {
	want := []string{"SixCNN", "ResNet18", "ResNet152", "DenseNet", "InceptionV3",
		"ResNeXt", "WideResNet", "SENet18", "MobileNetV2", "MobileNetV2x2", "ShuffleNetV2"}
	names := map[string]bool{}
	for _, n := range Names() {
		names[n] = true
	}
	for _, w := range want {
		if !names[w] {
			t.Fatalf("missing architecture %s", w)
		}
	}
}

func TestBuildUnknownFails(t *testing.T) {
	if _, err := Build("NopeNet", 10, 3, 16, 16, 1, tensor.NewRNG(1)); err == nil {
		t.Fatal("unknown architecture must error")
	}
}

func TestAllModelsForwardShape(t *testing.T) {
	for _, m := range allModels(t) {
		x := tensor.Randn(tensor.NewRNG(2), 1, 2, 3, 12, 12)
		y := m.Forward(x, false)
		if y.Shape[0] != 2 || y.Shape[1] != 7 {
			t.Fatalf("%s: output shape %v, want (2,7)", m.Name, y.Shape)
		}
		for _, v := range y.Data {
			if v != v { // NaN check
				t.Fatalf("%s: NaN in output", m.Name)
			}
		}
	}
}

func TestAllModelsBackwardRuns(t *testing.T) {
	for _, m := range allModels(t) {
		x := tensor.Randn(tensor.NewRNG(3), 1, 2, 3, 12, 12)
		logits := m.Forward(x, true)
		_, dl := nn.CrossEntropy(logits, []int{0, 3})
		nn.ZeroGrads(m.Params())
		m.Backward(dl)
		// At least one parameter must receive gradient signal.
		var any bool
		for _, p := range m.Params() {
			for _, g := range p.Grad.Data {
				if g != 0 {
					any = true
					break
				}
			}
			if any {
				break
			}
		}
		if !any {
			t.Fatalf("%s: backward produced all-zero gradients", m.Name)
		}
	}
}

func TestParamCountsOrdering(t *testing.T) {
	rng := tensor.NewRNG(4)
	small := MustBuild("MobileNetV2", 10, 3, 12, 12, 1, rng.Fork(1))
	big := MustBuild("ResNet152", 10, 3, 12, 12, 1, rng.Fork(2))
	wide := MustBuild("WideResNet", 10, 3, 12, 12, 1, rng.Fork(3))
	if small.NumParams() >= big.NumParams() {
		t.Fatalf("MobileNetV2 (%d) should be smaller than ResNet152 (%d)",
			small.NumParams(), big.NumParams())
	}
	if small.NumParams() >= wide.NumParams() {
		t.Fatalf("MobileNetV2 (%d) should be smaller than WideResNet (%d)",
			small.NumParams(), wide.NumParams())
	}
}

func TestMobileNetWidthMultiplier(t *testing.T) {
	rng := tensor.NewRNG(5)
	x1 := MustBuild("MobileNetV2", 10, 3, 12, 12, 1, rng.Fork(1))
	x2 := MustBuild("MobileNetV2x2", 10, 3, 12, 12, 1, rng.Fork(2))
	if x2.NumParams() <= x1.NumParams() {
		t.Fatal("×2 multiplier must increase parameters")
	}
}

func TestParamBytes(t *testing.T) {
	m := MustBuild("SixCNN", 10, 3, 12, 12, 1, tensor.NewRNG(6))
	if m.ParamBytes() != m.NumParams()*4 {
		t.Fatal("ParamBytes must be 4 per scalar")
	}
}

func TestFLOPsPerSamplePositiveAndCached(t *testing.T) {
	m := MustBuild("ResNet18", 10, 3, 12, 12, 1, tensor.NewRNG(7))
	f1 := m.FLOPsPerSample()
	if f1 <= 0 {
		t.Fatalf("FLOPs = %v", f1)
	}
	if m.FLOPsPerSample() != f1 {
		t.Fatal("FLOPs must be cached")
	}
}

func TestFLOPsOrdering(t *testing.T) {
	rng := tensor.NewRNG(8)
	six := MustBuild("SixCNN", 10, 3, 12, 12, 1, rng.Fork(1))
	deep := MustBuild("ResNet152", 10, 3, 12, 12, 1, rng.Fork(2))
	if six.FLOPsPerSample() >= deep.FLOPsPerSample() {
		t.Fatalf("SixCNN FLOPs (%v) should be below ResNet152 (%v)",
			six.FLOPsPerSample(), deep.FLOPsPerSample())
	}
}

func TestWidthScalesParameters(t *testing.T) {
	rng := tensor.NewRNG(9)
	w1 := MustBuild("ResNet18", 10, 3, 12, 12, 1, rng.Fork(1))
	w2 := MustBuild("ResNet18", 10, 3, 12, 12, 2, rng.Fork(2))
	if w2.NumParams() <= w1.NumParams() {
		t.Fatal("doubling width must increase parameters")
	}
}

func TestModelLearnsTinyProblem(t *testing.T) {
	// SixCNN must fit a two-class toy problem: accuracy well above chance
	// after a few gradient steps. This is the substrate's end-to-end
	// learning sanity check.
	rng := tensor.NewRNG(10)
	m := MustBuild("SixCNN", 2, 1, 8, 8, 1, rng.Fork(1))
	// class 0: top-half bright; class 1: bottom-half bright.
	mk := func(class int, r *tensor.RNG) []float32 {
		img := make([]float32, 64)
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				v := float32(r.Norm() * 0.3)
				if (class == 0 && y < 4) || (class == 1 && y >= 4) {
					v += 1.5
				}
				img[y*8+x] = v
			}
		}
		return img
	}
	n := 32
	x := tensor.New(n, 1, 8, 8)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		class := i % 2
		copy(x.Data[i*64:(i+1)*64], mk(class, rng))
		labels[i] = class
	}
	for step := 0; step < 40; step++ {
		logits := m.Forward(x, true)
		_, dl := nn.CrossEntropy(logits, labels)
		nn.ZeroGrads(m.Params())
		m.Backward(dl)
		for _, p := range m.Params() {
			p.W.Axpy(-0.05, p.Grad)
		}
	}
	logits := m.Forward(x, false)
	correct := 0
	for i := 0; i < n; i++ {
		if logits.ArgMaxRow(i, nil) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.9 {
		t.Fatalf("SixCNN training accuracy %v, want ≥ 0.9", acc)
	}
}
