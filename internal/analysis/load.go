package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the parsed files (non-test
// plus in-package test files — external _test packages are out of scope),
// the types.Package and the fully populated types.Info the analyzers walk.
type Package struct {
	// Path is the package's import path, derived from the enclosing module
	// (or the directory path when no go.mod is found).
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed files: every non-test file first, then the
	// in-package test files (see TestFile).
	Files []*ast.File
	// TestFile reports, per parsed file, whether it came from a _test.go
	// file. Analyzers that only govern shipped code (exported-godoc) skip
	// test files; analyzers about test coverage (wire-exhaustive) need them.
	TestFile map[*ast.File]bool
	// Pkg and Info are the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info
}

// Loader parses and type-checks packages using only the standard library:
// go/build for file selection (build tags, platform suffixes), go/parser,
// and go/types with the stdlib source importer for dependencies. One Loader
// shares a FileSet and an importer cache across every Load call, so a
// multi-package run type-checks each dependency once.
type Loader struct {
	// Fset is the shared position table for every loaded file.
	Fset *token.FileSet

	std     types.ImporterFrom
	loaded  map[string]*Package // by directory (cleaned, absolute)
	byPath  map[string]*Package // by import path, for the chained importer
	modRoot map[string]string   // module path -> module root directory
}

// NewLoader returns a Loader with a fresh FileSet and importer cache. It
// disables cgo in the build context: the source importer cannot process cgo
// packages, and none of this repository's code needs them.
func NewLoader() *Loader {
	build.Default.CgoEnabled = false
	l := &Loader{
		Fset:    token.NewFileSet(),
		loaded:  map[string]*Package{},
		byPath:  map[string]*Package{},
		modRoot: map[string]string{},
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil).(types.ImporterFrom)
	return l
}

// Load resolves each pattern (a directory, or a directory followed by
// "/..." for the subtree rooted there, "testdata" and hidden directories
// excluded) and returns the matched packages type-checked in dependency
// order: a package always appears after the matched packages it imports, so
// analyzer facts flow from dependencies to dependents.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := filepath.Clean(rest)
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(p) {
					add(p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(pat)
	}

	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir, map[string]bool{})
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return l.sortDeps(pkgs), nil
}

// hasGoFiles reports whether dir directly contains at least one .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the package in dir (memoised). loading
// guards against import cycles among loaded directories.
func (l *Loader) loadDir(dir string, loading map[string]bool) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.loaded[abs]; ok {
		return pkg, nil
	}
	if loading[abs] {
		return nil, fmt.Errorf("analysis: import cycle through %s", dir)
	}
	loading[abs] = true
	defer delete(loading, abs)

	bp, err := build.ImportDir(abs, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	importPath := l.importPathFor(abs)

	pkg := &Package{
		Path:     importPath,
		Dir:      abs,
		TestFile: map[*ast.File]bool{},
	}
	parse := func(names []string, test bool) error {
		for _, name := range names {
			f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			pkg.Files = append(pkg.Files, f)
			pkg.TestFile[f] = test
		}
		return nil
	}
	if err := parse(bp.GoFiles, false); err != nil {
		return nil, err
	}
	if err := parse(bp.TestGoFiles, true); err != nil {
		return nil, err
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("analysis: %s: no Go files", dir)
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: &chainImporter{l: l, loading: loading}}
	tpkg, err := conf.Check(importPath, l.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", dir, err)
	}
	pkg.Pkg = tpkg
	l.loaded[abs] = pkg
	l.byPath[importPath] = pkg
	return pkg, nil
}

// importPathFor derives dir's import path from the nearest enclosing
// go.mod; without one, the cleaned directory path stands in (the path is
// only an identifier for diagnostics and facts).
func (l *Loader) importPathFor(abs string) string {
	for d := abs; ; {
		if data, err := os.ReadFile(filepath.Join(d, "go.mod")); err == nil {
			if mod := modulePath(data); mod != "" {
				l.modRoot[mod] = d
				rel, err := filepath.Rel(d, abs)
				if err == nil {
					if rel == "." {
						return mod
					}
					return mod + "/" + filepath.ToSlash(rel)
				}
			}
		}
		parent := filepath.Dir(d)
		if parent == d {
			return filepath.ToSlash(abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// chainImporter resolves imports during type-checking: packages this Loader
// has already loaded are returned directly, packages inside a module the
// Loader has seen are loaded through the Loader itself (so every module
// package has exactly one types.Package identity — mixing this Loader's
// view of a package with the source importer's view of the same package
// makes identical types unassignable), and everything else — the standard
// library — falls through to the stdlib source importer.
type chainImporter struct {
	l       *Loader
	loading map[string]bool
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (c *chainImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := c.l.byPath[path]; ok {
		return pkg.Pkg, nil
	}
	for mod, root := range c.l.modRoot {
		if path == mod || strings.HasPrefix(path, mod+"/") {
			dir := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(path, mod)))
			pkg, err := c.l.loadDir(dir, c.loading)
			if err != nil {
				return nil, err
			}
			return pkg.Pkg, nil
		}
	}
	return c.l.std.ImportFrom(path, srcDir, mode)
}

// sortDeps orders pkgs so that every package follows the listed packages it
// imports (directly or transitively through other listed packages), which
// is the order analyzer facts must be computed in. Ties keep a stable
// path order.
func (l *Loader) sortDeps(pkgs []*Package) []*Package {
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	var out []*Package
	state := map[*Package]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		// Imports of the compiled package only: test-file imports cannot
		// carry analyzer facts backwards, and following them could cycle.
		for _, f := range p.Files {
			if p.TestFile[f] {
				continue
			}
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if dep, ok := byPath[path]; ok && state[dep] != 1 {
					visit(dep)
				}
			}
		}
		state[p] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}
