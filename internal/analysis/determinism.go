package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Determinism verifies the repository's bitwise-reproducibility contract at
// the source level: no map-range iteration, time.Now, unseeded math/rand,
// sync.Map iteration, or multi-way channel select may be reachable from a
// fold/commit/aggregation entry point — the paths the runtime pins with
// TestEngineDeterministicAcrossParallelism, checked here on every build
// instead of one seed at a time.
//
// Roots are inferred, not listed: every method set implementing an
// interface named Aggregator or StreamAggregator declared in the analyzed
// package, plus any function whose doc comment carries a
// "fedlint:deterministic" marker. Reachability follows statically resolved
// calls only (a call through an interface value or a function variable is
// not traced); facts about callee purity cross package boundaries, so a
// select buried in internal/tensor surfaces at a root in internal/fed.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "no map iteration, time.Now, unseeded math/rand or multi-way select " +
		"reachable from aggregation fold/commit paths",
	Run: runDeterminism,
}

// detMarker in a function's doc comment makes it a determinism root even
// when it implements no aggregation interface.
const detMarker = "fedlint:deterministic"

// detSource is one direct nondeterminism source inside a function body.
type detSource struct {
	pos  token.Pos
	what string
}

// detFact is the exported per-function summary: the nearest reachable
// nondeterminism source, or none. Positions are pre-resolved because facts
// outlive the pass that created them.
type detFact struct {
	tainted bool
	pos     token.Position
	what    string
	chain   []string // function names from the fact's owner down to the source
}

// detFunc is one function's local analysis before taint resolution.
type detFunc struct {
	obj     *types.Func
	sources []detSource
	callees []*types.Func
}

type detPass struct {
	pass  *Pass
	funcs map[*types.Func]*detFunc
	facts map[*types.Func]detFact
}

func runDeterminism(pass *Pass) error {
	d := &detPass{
		pass:  pass,
		funcs: map[*types.Func]*detFunc{},
		facts: map[*types.Func]detFact{},
	}
	info := pass.Package.Info

	// Local pass: direct sources and statically resolved call edges, per
	// declared function (closures attribute to their enclosing declaration).
	for _, file := range pass.Package.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			df := &detFunc{obj: obj}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					if t := info.TypeOf(n.X); t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							df.sources = append(df.sources, detSource{n.Pos(), "iteration over a map (order is randomized per run)"})
						}
					}
				case *ast.SelectStmt:
					if len(n.Body.List) >= 2 {
						df.sources = append(df.sources, detSource{n.Pos(), "select with multiple ready paths (winner depends on goroutine timing)"})
					}
				case *ast.CallExpr:
					callee := staticCallee(info, n)
					if callee == nil {
						break
					}
					switch {
					case callee.FullName() == "time.Now":
						df.sources = append(df.sources, detSource{n.Pos(), "call to time.Now (wall-clock input)"})
					case callee.FullName() == "(*sync.Map).Range":
						df.sources = append(df.sources, detSource{n.Pos(), "iteration over a sync.Map (order is unspecified)"})
					case isGlobalRand(callee):
						df.sources = append(df.sources, detSource{n.Pos(), "call to the unseeded global math/rand RNG"})
					default:
						if sig, ok := callee.Type().(*types.Signature); ok {
							if recv := sig.Recv(); recv != nil {
								if _, iface := recv.Type().Underlying().(*types.Interface); iface {
									break // dynamic dispatch: not traced
								}
							}
						}
						df.callees = append(df.callees, callee)
					}
				}
				return true
			})
			d.funcs[obj] = df
		}
	}

	// Resolve and export taint for every declared function, so dependent
	// packages analyzed later can query it by qualified name.
	d.resolve()
	for obj, fact := range d.facts {
		pass.ExportFact(obj, fact)
	}

	// Roots: aggregation method sets and explicitly marked functions.
	roots := d.collectRoots()
	reported := map[token.Position]bool{}
	for _, root := range roots {
		fact := d.taintOf(root)
		if !fact.tainted || reported[fact.pos] {
			continue
		}
		reported[fact.pos] = true
		msg := "non-deterministic " + fact.what + " reachable from " + root.Name()
		if len(fact.chain) > 1 {
			msg += " (call path: " + joinChain(fact.chain) + ")"
		}
		d.pass.reportAt(fact.pos, "%s", msg)
	}
	return nil
}

// resolve computes every local function's transitive nondeterminism by
// fixpoint iteration in a stable order (recursion cycles without sources
// stay clean; a function's own sources win over its callees'). Cross-
// package callees resolve through imported facts, which the loader's
// dependency ordering guarantees were computed first.
func (d *detPass) resolve() {
	order := make([]*types.Func, 0, len(d.funcs))
	for fn := range d.funcs {
		order = append(order, fn)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].FullName() < order[j].FullName() })
	for _, fn := range order {
		if df := d.funcs[fn]; len(df.sources) > 0 {
			src := df.sources[0]
			d.facts[fn] = detFact{tainted: true, pos: d.pass.Fset.Position(src.pos),
				what: src.what, chain: []string{fn.Name()}}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			if d.facts[fn].tainted {
				continue
			}
			for _, callee := range d.funcs[fn].callees {
				sub := d.taintOf(callee)
				if sub.tainted {
					d.facts[fn] = detFact{tainted: true, pos: sub.pos, what: sub.what,
						chain: append([]string{fn.Name()}, sub.chain...)}
					changed = true
					break
				}
			}
		}
	}
}

// taintOf looks up a function's resolved nondeterminism summary: local
// functions from this pass's fixpoint, anything else from imported facts.
func (d *detPass) taintOf(fn *types.Func) detFact {
	if _, local := d.funcs[fn]; local {
		return d.facts[fn]
	}
	if fact, ok := d.pass.ImportFact(fn); ok {
		if det, ok := fact.(detFact); ok {
			return det
		}
	}
	return detFact{}
}

// collectRoots gathers the package's determinism entry points in a stable
// order: methods implementing a locally declared Aggregator or
// StreamAggregator interface (non-test types only — mock aggregators in
// test files are not shipped fold paths), and functions whose doc carries
// the fedlint:deterministic marker.
func (d *detPass) collectRoots() []*types.Func {
	pkg := d.pass.Package
	var ifaces []*types.Interface
	for _, name := range []string{"Aggregator", "StreamAggregator"} {
		if tn, ok := pkg.Pkg.Scope().Lookup(name).(*types.TypeName); ok {
			if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
				ifaces = append(ifaces, iface)
			}
		}
	}
	rootSet := map[*types.Func]bool{}
	if len(ifaces) > 0 {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() || d.inTestFile(tn.Pos()) {
				continue
			}
			if _, ok := tn.Type().Underlying().(*types.Interface); ok {
				continue
			}
			ptr := types.NewPointer(tn.Type())
			for _, iface := range ifaces {
				if !types.Implements(tn.Type(), iface) && !types.Implements(ptr, iface) {
					continue
				}
				for i := 0; i < iface.NumMethods(); i++ {
					m := iface.Method(i)
					obj, _, _ := types.LookupFieldOrMethod(ptr, true, pkg.Pkg, m.Name())
					if f, ok := obj.(*types.Func); ok {
						rootSet[f] = true
					}
				}
			}
		}
	}
	for obj := range d.funcs {
		if fd := d.declOf(obj); fd != nil && fd.Doc != nil && containsMarker(fd.Doc.Text()) && !d.inTestFile(obj.Pos()) {
			rootSet[obj] = true
		}
	}
	roots := make([]*types.Func, 0, len(rootSet))
	for f := range rootSet {
		roots = append(roots, f)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })
	return roots
}

// declOf finds the FuncDecl for a function object declared in this package.
func (d *detPass) declOf(obj *types.Func) *ast.FuncDecl {
	for _, file := range d.pass.Package.Files {
		if file.Pos() <= obj.Pos() && obj.Pos() < file.End() {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Pos() == obj.Pos() {
					return fd
				}
			}
		}
	}
	return nil
}

// inTestFile reports whether pos falls inside one of the package's _test.go
// files.
func (d *detPass) inTestFile(pos token.Pos) bool {
	for f, isTest := range d.pass.Package.TestFile {
		if isTest && f.Pos() <= pos && pos < f.End() {
			return true
		}
	}
	return false
}

// containsMarker reports whether doc text carries the determinism-root
// marker.
func containsMarker(doc string) bool {
	return strings.Contains(doc, detMarker)
}

// staticCallee resolves a call expression to the function object it
// invokes, when that is statically known (named function or concrete
// method). Conversions, built-ins, function values and interface calls
// return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isGlobalRand reports a call to a package-level math/rand (or v2)
// function other than the explicit constructors — rand.New(rand.NewSource(
// seed)) is the seeded, reproducible idiom; rand.Intn is the shared
// unseeded stream.
func isGlobalRand(f *types.Func) bool {
	pkg := f.Pkg()
	if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // methods on a *rand.Rand instance carry their own seed
	}
	switch f.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

// joinChain renders a call path for a diagnostic message.
func joinChain(chain []string) string {
	return strings.Join(chain, " -> ")
}
