package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FingerprintComplete enforces the job-fingerprint contract: every field of
// a configuration struct that carries a Fingerprint method — and,
// recursively, of same-package struct fields nested inside it (AsyncConfig
// inside Config) — must either be read inside the Fingerprint method body
// or carry an explicit exemption marker with a reason:
//
//	// fingerprint:exempt <why this knob can never change results>
//
// The analyzer walks the selector chains the method actually reads
// (reading a whole sub-struct covers its subtree), so adding a behaviour-
// changing knob without mixing it into the digest fails the build instead
// of silently producing two processes that agree on a fingerprint while
// running different jobs. A marker on a field that Fingerprint does read
// is reported as contradictory, and a marker without a reason is itself a
// diagnostic — exactly like a bare //lint:ignore.
var FingerprintComplete = &Analyzer{
	Name: "fingerprint-complete",
	Doc: "every field of a Fingerprint-bearing config struct is mixed into " +
		"the digest or carries a reasoned fingerprint:exempt marker",
	Run: runFingerprint,
}

// exemptMarker tags a config field as deliberately outside the fingerprint.
const exemptMarker = "fingerprint:exempt"

func runFingerprint(pass *Pass) error {
	info := pass.Package.Info
	scope := pass.Package.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		fp := lookupMethod(named, pass.Package.Pkg, "Fingerprint")
		if fp == nil {
			continue
		}
		decl := funcDeclOf(pass.Package, fp)
		if decl == nil || decl.Body == nil || decl.Recv == nil || len(decl.Recv.List) == 0 {
			continue
		}
		recv := receiverVar(info, decl)
		if recv == nil {
			continue
		}
		covered := coveredChains(info, decl, recv)
		checkFingerprintStruct(pass, tn.Name(), "", named, covered, map[*types.Named]bool{named: true})
	}
	return nil
}

// lookupMethod finds a method by name on T or *T, declared in pkg.
func lookupMethod(named *types.Named, pkg *types.Package, name string) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, pkg, name)
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() != pkg {
		return nil
	}
	return f
}

// funcDeclOf finds the FuncDecl of a function object in the package's
// files.
func funcDeclOf(pkg *Package, obj *types.Func) *ast.FuncDecl {
	for _, file := range pkg.Files {
		if file.Pos() <= obj.Pos() && obj.Pos() < file.End() {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Pos() == obj.Pos() {
					return fd
				}
			}
		}
	}
	return nil
}

// receiverVar resolves the method's receiver variable object.
func receiverVar(info *types.Info, decl *ast.FuncDecl) *types.Var {
	names := decl.Recv.List[0].Names
	if len(names) == 0 {
		return nil // unnamed receiver: the method reads no fields at all
	}
	v, _ := info.Defs[names[0]].(*types.Var)
	return v
}

// coveredChains collects the maximal selector chains rooted at the
// receiver that the Fingerprint body reads, as dotted paths ("Async.
// CommitEvery"). A chain is recorded once at its full depth: reading
// cfg.Async.CommitEvery covers that leaf, while reading cfg.Async as a
// whole covers the entire Async subtree (the path itself is recorded).
func coveredChains(info *types.Info, decl *ast.FuncDecl, recv *types.Var) map[string]bool {
	covered := map[string]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		chain, ok := chainFromReceiver(info, sel, recv)
		if !ok {
			return true // not rooted at the receiver; keep walking inside
		}
		covered[strings.Join(chain, ".")] = true
		return false // the inner selectors are part of this chain
	})
	return covered
}

// chainFromReceiver unwinds a selector expression to ["Async",
// "CommitEvery"] when its root identifier is the receiver variable and
// every hop is a field selection (method values on the receiver are not
// field reads).
func chainFromReceiver(info *types.Info, sel *ast.SelectorExpr, recv *types.Var) ([]string, bool) {
	var parts []string
	cur := ast.Expr(sel)
	for {
		switch e := ast.Unparen(cur).(type) {
		case *ast.SelectorExpr:
			if s, ok := info.Selections[e]; !ok || s.Kind() != types.FieldVal {
				return nil, false
			}
			parts = append([]string{e.Sel.Name}, parts...)
			cur = e.X
		case *ast.Ident:
			if info.Uses[e] == types.Object(recv) {
				return parts, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// checkFingerprintStruct reports uncovered, unexempted fields of the
// struct at path prefix, recursing into same-package struct-typed fields.
func checkFingerprintStruct(pass *Pass, root, prefix string, named *types.Named, covered map[string]bool, seen map[*types.Named]bool) {
	spec := typeSpecOf(pass.Package, named.Obj())
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			continue // embedded fields are not part of this contract
		}
		for _, name := range field.Names {
			path := name.Name
			if prefix != "" {
				path = prefix + "." + name.Name
			}
			isCovered := covered[path] || prefixCovered(covered, path)
			reason, exempt := exemptReason(field)
			switch {
			case exempt && reason == "":
				pass.Reportf(field.Pos(), "%s marker on %s.%s needs a reason", exemptMarker, root, path)
			case exempt && isCovered:
				pass.Reportf(field.Pos(), "field %s.%s is marked %s but is mixed into %s.Fingerprint", root, path, exemptMarker, root)
			case !exempt && !isCovered:
				// A sub-struct none of whose leaves are read reports per
				// leaf below, not at the aggregate field.
				if sub := samePackageStruct(pass, field); sub != nil && !seen[sub] {
					seen[sub] = true
					checkFingerprintStruct(pass, root, path, sub, covered, seen)
					seen[sub] = false
					continue
				}
				pass.Reportf(field.Pos(), "field %s.%s is not mixed into %s.Fingerprint and carries no %s marker", root, path, root, exemptMarker)
			case !exempt && isCovered && !covered[path]:
				// Covered only through a prefix read: nothing to check
				// deeper, the whole subtree went into the digest.
			case !exempt && covered[path]:
				// The field itself is read. If it is a sub-struct read
				// wholesale the subtree is covered; if it has deeper reads
				// recorded, recurse so unread siblings still surface.
				if sub := samePackageStruct(pass, field); sub != nil && !seen[sub] && deeperReads(covered, path) {
					seen[sub] = true
					checkFingerprintStruct(pass, root, path, sub, covered, seen)
					seen[sub] = false
				}
			}
		}
	}
}

// prefixCovered reports whether some strict prefix of path was read as a
// whole (covering the subtree path belongs to).
func prefixCovered(covered map[string]bool, path string) bool {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '.' && covered[path[:i]] {
			return true
		}
	}
	return false
}

// deeperReads reports whether any recorded chain descends strictly below
// path.
func deeperReads(covered map[string]bool, path string) bool {
	for c := range covered {
		if strings.HasPrefix(c, path+".") {
			return true
		}
	}
	return false
}

// samePackageStruct resolves a field's type to a named struct declared in
// the analyzed package, or nil.
func samePackageStruct(pass *Pass, field *ast.Field) *types.Named {
	t := pass.Package.Info.TypeOf(field.Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Package.Pkg {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	if typeSpecOf(pass.Package, named.Obj()) == nil {
		return nil
	}
	return named
}

// typeSpecOf finds the TypeSpec for a type object declared in the package.
func typeSpecOf(pkg *Package, obj *types.TypeName) *ast.TypeSpec {
	for _, file := range pkg.Files {
		if file.Pos() <= obj.Pos() && obj.Pos() < file.End() {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Pos() == obj.Pos() {
						return ts
					}
				}
			}
		}
	}
	return nil
}

// exemptReason scans a field's doc and line comments for the exemption
// marker, returning the reason text after it and whether the marker was
// present at all.
func exemptReason(field *ast.Field) (reason string, found bool) {
	scan := func(cg *ast.CommentGroup) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			idx := strings.Index(text, exemptMarker)
			if idx < 0 {
				continue
			}
			found = true
			rest := strings.TrimSuffix(text[idx+len(exemptMarker):], "*/")
			if r := strings.TrimSpace(rest); r != "" && reason == "" {
				reason = r
			}
		}
	}
	scan(field.Doc)
	scan(field.Comment)
	return reason, found
}
