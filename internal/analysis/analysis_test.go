package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// corpusCases maps each golden corpus under testdata/src to the analyzers
// it exercises. Expectations live in the corpus sources as trailing
// comments: // want "substr" ["substr"...] expects diagnostics on its own
// line, and // want-above "substr" expects one on the line directly above
// (for diagnostics that point at comments, which cannot carry a trailing
// marker of their own).
var corpusCases = []struct {
	corpus    string
	analyzers []*Analyzer
	strict    bool
}{
	{"determinism", []*Analyzer{Determinism}, false},
	{"fingerprint", []*Analyzer{FingerprintComplete}, false},
	{"wire", []*Analyzer{WireExhaustive}, false},
	{"atomic", []*Analyzer{AtomicHygiene}, false},
	{"godoc", []*Analyzer{ExportedGodoc}, false},
	{"suppress", []*Analyzer{AtomicHygiene}, true},
}

func TestCorpora(t *testing.T) {
	for _, tc := range corpusCases {
		t.Run(tc.corpus, func(t *testing.T) {
			runCorpus(t, tc.corpus, tc.analyzers, tc.strict)
		})
	}
}

// wantRe matches a want marker and captures the above flag and the quoted
// substrings.
var wantRe = regexp.MustCompile(`^//\s*want(-above)?((?:\s+"[^"]*")+)\s*$`)

// quotedRe extracts the individual quoted substrings.
var quotedRe = regexp.MustCompile(`"([^"]*)"`)

// expectation is one unmet // want substring at a file:line.
type expectation struct {
	substr string
	met    bool
}

func runCorpus(t *testing.T, corpus string, analyzers []*Analyzer, strict bool) {
	t.Helper()
	dir := filepath.Join("testdata", "src", corpus)
	loader := NewLoader()
	pkgs, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	suite := &Suite{Analyzers: analyzers, Strict: strict}
	diags, err := suite.Run(pkgs, loader.Fset)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}

	// Gather expectations from every comment in the corpus.
	type key struct {
		file string
		line int
	}
	wants := map[key][]*expectation{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := loader.Fset.Position(c.Pos())
					line := pos.Line
					if m[1] == "-above" {
						line--
					}
					for _, q := range quotedRe.FindAllStringSubmatch(m[2], -1) {
						wants[key{pos.Filename, line}] = append(wants[key{pos.Filename, line}], &expectation{substr: q[1]})
					}
				}
			}
		}
	}

	// Every diagnostic must meet a want; every want must be met.
	for _, d := range diags {
		matched := false
		for _, exp := range wants[key{d.Pos.Filename, d.Pos.Line}] {
			if !exp.met && strings.Contains(d.Message, exp.substr) {
				exp.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, exps := range wants {
		for _, exp := range exps {
			if !exp.met {
				t.Errorf("%s:%d: expected a diagnostic containing %q, got none", k.file, k.line, exp.substr)
			}
		}
	}
}
