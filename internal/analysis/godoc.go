package analysis

import (
	"go/ast"
	"go/token"
)

// ExportedGodoc enforces the godoc contract the retired internal/doclint
// walker pinned: every exported type, function, method, constant and
// variable in a scoped package must carry a doc comment. A const/var/type
// group documented at the group level counts as documented (the godoc
// convention), and methods on unexported types are not part of the
// package's godoc surface. Test files are exempt.
var ExportedGodoc = &Analyzer{
	Name: "exported-godoc",
	Doc: "exported identifiers must carry doc comments (the stdlib equivalent " +
		"of revive's \"exported\" rule, absorbed from cmd/doclint)",
	Run: runExportedGodoc,
}

func runExportedGodoc(pass *Pass) error {
	for _, file := range nonTestFiles(pass.Package) {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
					pass.Reportf(d.Pos(), "exported %s %s has no doc comment", funcKind(d), d.Name.Name)
				}
			case *ast.GenDecl:
				lintGenDecl(pass, d)
			}
		}
	}
	return nil
}

// lintGenDecl checks a const/var/type declaration: each exported spec needs
// its own doc comment unless the enclosing group carries one.
func lintGenDecl(pass *Pass, d *ast.GenDecl) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && !(groupDoc && len(d.Specs) == 1) {
				pass.Reportf(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() && s.Doc == nil && s.Comment == nil {
					pass.Reportf(s.Pos(), "exported %s %s has no doc comment", declKind(d.Tok), name.Name)
				}
			}
		}
	}
}

// funcKind labels a FuncDecl for the finding message.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// exportedRecv reports whether d is a plain function or a method whose
// receiver type is itself exported.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// declKind labels a GenDecl token for the finding message.
func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
