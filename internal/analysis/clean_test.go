package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFedlintClean runs the default suite over the whole module and fails
// on any finding — the same gate CI applies via cmd/fedlint, enforced from
// inside go test so a finding cannot land even when CI is skipped. A
// failure here means new code violated a static contract: fix it, or
// suppress it with a reasoned //lint:ignore (see package doc).
func TestFedlintClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader()
	pkgs, err := loader.Load(filepath.Join(root, "..."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := suiteForTest().Run(pkgs, loader.Fset)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// suiteForTest is the default suite; a hook point if the clean gate ever
// needs to lag a new analyzer's rollout.
func suiteForTest() *Suite { return DefaultSuite() }

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
