package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicHygiene enforces two concurrency-access disciplines the race
// detector only checks on the interleavings a given run happens to hit:
//
//   - a variable or struct field passed by address to a sync/atomic
//     function anywhere must be accessed through sync/atomic everywhere —
//     one plain read next to atomic writers is a data race waiting for a
//     schedule (type-based atomics like atomic.Int64 are safe by
//     construction and need no checking);
//
//   - a field declared in the same contiguous declaration group as a
//     sync.Mutex/sync.RWMutex (the Go "mu guards the fields below it"
//     convention), and actually accessed under that mutex somewhere, must
//     not be accessed in a function that never locks it. Helpers named
//     *Locked (the caller-holds-the-lock convention) and constructors
//     returning the owning struct are exempt; the lock check is per
//     function body, not flow-sensitive.
var AtomicHygiene = &Analyzer{
	Name: "atomic-hygiene",
	Doc: "sync/atomic variables accessed atomically everywhere; mutex-" +
		"guarded declaration groups accessed only under their mutex",
	Run: runAtomicHygiene,
}

type atomicPass struct {
	pass *Pass
	info *types.Info

	// atomicVars: vars whose address reached a sync/atomic call, with the
	// idents sanctioned by appearing inside such calls.
	atomicVars map[*types.Var]bool
	sanctioned map[*ast.Ident]bool

	// guards maps a guarded var to its mutex; owner maps it to the struct
	// type whose constructors are exempt (nil for package-level groups).
	guards map[*types.Var]*types.Var
	owner  map[*types.Var]*types.Named

	// litKeys are composite-literal field keys (initialisation before
	// publication, not concurrent access).
	litKeys map[*ast.Ident]bool
}

func runAtomicHygiene(pass *Pass) error {
	a := &atomicPass{
		pass:       pass,
		info:       pass.Package.Info,
		atomicVars: map[*types.Var]bool{},
		sanctioned: map[*ast.Ident]bool{},
		guards:     map[*types.Var]*types.Var{},
		owner:      map[*types.Var]*types.Named{},
		litKeys:    map[*ast.Ident]bool{},
	}
	for _, file := range pass.Package.Files {
		a.collectDecls(file)
	}
	for _, file := range pass.Package.Files {
		a.collectAtomicUses(file)
	}
	a.checkAtomic()
	a.checkGuards()
	return nil
}

// collectDecls gathers mutex-guarded declaration groups (struct fields and
// package-level var blocks) and composite-literal keys.
func (a *atomicPass) collectDecls(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			a.groupFields(n.Fields.List, a.namedOf(n))
		case *ast.GenDecl:
			if n.Tok == token.VAR && n.Lparen.IsValid() {
				a.groupVarSpecs(n.Specs)
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						a.litKeys[id] = true
					}
				}
			}
		}
		return true
	})
}

// namedOf resolves the named type a struct literal type belongs to, when
// it is the body of a package-level type declaration.
func (a *atomicPass) namedOf(st *ast.StructType) *types.Named {
	t := a.info.TypeOf(st)
	if t == nil {
		return nil
	}
	// TypeOf on the StructType yields the unnamed struct; find the named
	// type by matching underlying identity in the package scope.
	scope := a.pass.Package.Pkg.Scope()
	for _, name := range scope.Names() {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
			if named, ok := tn.Type().(*types.Named); ok && named.Underlying() == t {
				return named
			}
		}
	}
	return nil
}

// groupFields applies the declaration-group convention to a struct's field
// list: a mutex field guards the named fields that follow it contiguously
// (no blank line) until the next mutex or group break.
func (a *atomicPass) groupFields(fields []*ast.Field, owner *types.Named) {
	var mutex *types.Var
	prevEnd := -2
	for _, f := range fields {
		start := a.pass.Fset.Position(f.Pos()).Line
		if f.Doc != nil {
			start = a.pass.Fset.Position(f.Doc.Pos()).Line
		}
		if start > prevEnd+1 {
			mutex = nil // blank line: the group (and its guard) ends
		}
		prevEnd = a.pass.Fset.Position(f.End()).Line
		if len(f.Names) == 0 {
			continue
		}
		if isMutexType(a.info.TypeOf(f.Type)) {
			if v, ok := a.info.Defs[f.Names[0]].(*types.Var); ok {
				mutex = v
			}
			continue
		}
		if mutex == nil {
			continue
		}
		for _, name := range f.Names {
			if v, ok := a.info.Defs[name].(*types.Var); ok {
				a.guards[v] = mutex
				a.owner[v] = owner
			}
		}
	}
}

// groupVarSpecs applies the same convention to a parenthesised var block.
func (a *atomicPass) groupVarSpecs(specs []ast.Spec) {
	var mutex *types.Var
	prevEnd := -2
	for _, spec := range specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		start := a.pass.Fset.Position(vs.Pos()).Line
		if vs.Doc != nil {
			start = a.pass.Fset.Position(vs.Doc.Pos()).Line
		}
		if start > prevEnd+1 {
			mutex = nil
		}
		prevEnd = a.pass.Fset.Position(vs.End()).Line
		for _, name := range vs.Names {
			v, ok := a.info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if isMutexType(v.Type()) {
				mutex = v
				continue
			}
			if mutex != nil {
				a.guards[v] = mutex
			}
		}
	}
}

// isMutexType reports sync.Mutex / sync.RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	s := t.String()
	return s == "sync.Mutex" || s == "sync.RWMutex"
}

// collectAtomicUses finds addresses passed to sync/atomic package-level
// functions and marks both the target variable and the sanctioned idents.
func (a *atomicPass) collectAtomicUses(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		callee := staticCallee(a.info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
			return true
		}
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true // atomic.Int64-style methods are safe by construction
		}
		unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || unary.Op != token.AND {
			return true
		}
		id := baseIdent(unary.X)
		if id == nil {
			return true
		}
		if v, ok := a.info.Uses[id].(*types.Var); ok {
			a.atomicVars[v] = true
			a.sanctioned[id] = true
		}
		return true
	})
}

// baseIdent returns the identifier naming the variable or field an
// addressable expression refers to (the Sel of a selector, the ident of a
// plain name).
func baseIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// checkAtomic reports every non-atomic access to a variable that is
// accessed through sync/atomic somewhere.
func (a *atomicPass) checkAtomic() {
	for _, file := range a.pass.Package.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || a.sanctioned[id] || a.litKeys[id] {
				return true
			}
			if v, ok := a.info.Uses[id].(*types.Var); ok && a.atomicVars[v] {
				a.pass.Reportf(id.Pos(), "%s is accessed via sync/atomic elsewhere; this plain access races with the atomic ones", v.Name())
			}
			return true
		})
	}
}

// funcScan is one function body's lock set and guarded-field accesses.
type funcScan struct {
	decl     *ast.FuncDecl
	locked   map[*types.Var]bool // mutexes this body locks (coarse, body-level)
	accesses []fieldAccess
}

// fieldAccess is one guarded-field access site.
type fieldAccess struct {
	v   *types.Var
	pos token.Pos
}

// checkGuards confirms declaration-group guards against real lock usage,
// then reports guarded-field accesses from functions that never lock the
// guard.
func (a *atomicPass) checkGuards() {
	if len(a.guards) == 0 {
		return
	}
	var scans []*funcScan
	for _, file := range a.pass.Package.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fs := &funcScan{decl: fd, locked: map[*types.Var]bool{}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					switch sel.Sel.Name {
					case "Lock", "RLock", "TryLock", "TryRLock":
						if id := baseIdent(sel.X); id != nil {
							if v, ok := a.info.Uses[id].(*types.Var); ok && isMutexType(v.Type()) {
								fs.locked[v] = true
							}
						}
					}
				case *ast.Ident:
					if a.litKeys[n] {
						return true
					}
					if v, ok := a.info.Uses[n].(*types.Var); ok {
						if _, guarded := a.guards[v]; guarded {
							fs.accesses = append(fs.accesses, fieldAccess{v, n.Pos()})
						}
					}
				}
				return true
			})
			scans = append(scans, fs)
		}
	}

	// A declaration-group guard is only enforced once confirmed: some
	// access to the field really does happen under its mutex. Purely
	// positional adjacency with no locked access anywhere is treated as
	// layout coincidence, not a contract.
	confirmed := map[*types.Var]bool{}
	for _, fs := range scans {
		for _, acc := range fs.accesses {
			if fs.locked[a.guards[acc.v]] {
				confirmed[acc.v] = true
			}
		}
	}
	var diags []fieldAccess
	for _, fs := range scans {
		if strings.HasSuffix(fs.decl.Name.Name, "Locked") {
			continue
		}
		for _, acc := range fs.accesses {
			if !confirmed[acc.v] || fs.locked[a.guards[acc.v]] {
				continue
			}
			if owner := a.owner[acc.v]; owner != nil && a.isConstructorOf(fs.decl, owner) {
				continue
			}
			diags = append(diags, acc)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].pos < diags[j].pos })
	for _, d := range diags {
		a.pass.Reportf(d.pos, "%s is guarded by %s (its declaration group's mutex, held at other access sites) but accessed here without locking it",
			d.v.Name(), a.guards[d.v].Name())
	}
}

// isConstructorOf reports whether fd returns the named struct type (or a
// pointer to it) — construction before publication needs no lock.
func (a *atomicPass) isConstructorOf(fd *ast.FuncDecl, owner *types.Named) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		t := a.info.TypeOf(res.Type)
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj() == owner.Obj() {
			return true
		}
	}
	return false
}
