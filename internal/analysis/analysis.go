// Package analysis is the repository's stdlib-only static-analysis
// framework (go/ast + go/types, no third-party dependencies) behind the
// cmd/fedlint driver. It generalises the retired internal/doclint walker
// into a multi-analyzer suite with a shared package loader, per-analyzer
// fact passing across packages (dependencies are analyzed first), position-
// accurate diagnostics, and //lint:ignore suppression.
//
// Each Analyzer encodes one of the repository's load-bearing contracts at
// the source level, front-running the runtime test that would otherwise
// catch a violation one seed at a time: determinism of the fold/commit
// paths, fingerprint completeness, wire-format test exhaustiveness, atomic
// and mutex hygiene, and godoc coverage. See docs/ARCHITECTURE.md, "Static
// guarantees".
//
// Diagnostics are suppressed by a comment on the flagged line or the line
// directly above it:
//
//	//lint:ignore fedlint/<name> <reason>
//
// The reason is mandatory — a bare suppression is itself a diagnostic —
// and under Suite.Strict a suppression that no longer matches any
// diagnostic is reported as stale, so suppressions cannot outlive the code
// they excused.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer checks one invariant over one package at a time. Analyzers
// are self-activating: Run inspects the package for the shapes it governs
// (an Aggregator interface, a Fingerprint method, a Kind type…) and stays
// silent on packages without them, so the suite can sweep a whole module.
type Analyzer struct {
	// Name is the analyzer's identifier; diagnostics print and suppress as
	// "fedlint/<Name>".
	Name string
	// Doc is a one-paragraph description for the driver's -list output.
	Doc string
	// Run analyzes one package, reporting through pass.Reportf and
	// exchanging facts through pass.ExportFact/ImportFact.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	// Pos is the resolved file:line:column of the finding.
	Pos token.Position
	// Analyzer is the reporting analyzer's Name ("ignore" for findings
	// about the suppression comments themselves).
	Analyzer string
	// Message is the human-readable finding.
	Message string
}

// String formats the diagnostic the way the driver prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: fedlint/%s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one package: the loaded syntax and
// type information plus the suite's fact store and diagnostic sink.
type Pass struct {
	// Analyzer is the analyzer this pass runs.
	Analyzer *Analyzer
	// Fset resolves token.Pos values for every file in the run.
	Fset *token.FileSet
	// Package is the package under analysis.
	Package *Package

	suite *Suite
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.suite.diags = append(p.suite.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// reportAt records a diagnostic at an already-resolved position (facts
// store resolved positions because they outlive their pass).
func (p *Pass) reportAt(pos token.Position, format string, args ...any) {
	p.suite.diags = append(p.suite.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact publishes a fact about obj under this analyzer's namespace.
// Facts are keyed by the object's fully qualified name, not object
// identity, so a later pass over a dependent package can look the fact up
// through its own view of the imported object.
func (p *Pass) ExportFact(obj fullNamer, fact any) {
	key := p.Analyzer.Name + "\x00" + factKey(obj)
	p.suite.facts[key] = fact
}

// ImportFact retrieves the fact this analyzer exported about obj from any
// earlier pass (including over a dependency package), or nil, false.
func (p *Pass) ImportFact(obj fullNamer) (any, bool) {
	fact, ok := p.suite.facts[p.Analyzer.Name+"\x00"+factKey(obj)]
	return fact, ok
}

// fullNamer is the subset of types.Object fact keys need; *types.Func
// additionally provides FullName, which qualifies methods by receiver.
type fullNamer interface {
	Name() string
	String() string
}

// factKey builds the cross-package identity of an object. types.Func's
// FullName already qualifies package and receiver; for anything else the
// object's String form (which embeds the package path) serves.
func factKey(obj fullNamer) string {
	type fullNameObj interface{ FullName() string }
	if f, ok := obj.(fullNameObj); ok {
		return f.FullName()
	}
	return obj.String()
}

// A Suite is a configured set of analyzers run together over loaded
// packages, sharing one fact store and one suppression table.
type Suite struct {
	// Analyzers run in order over each package; packages are visited in
	// the loader's dependency order so facts flow forward.
	Analyzers []*Analyzer
	// Scope restricts an analyzer (by Name) to packages whose import path
	// matches one of the listed suffixes; analyzers without an entry run
	// everywhere. Self-activating analyzers rarely need scoping, but godoc
	// coverage is a policy choice per package, not a shape in the code.
	Scope map[string][]string
	// Strict additionally reports suppressions that matched no diagnostic
	// (stale //lint:ignore comments) for analyzers that ran.
	Strict bool

	facts map[string]any
	diags []Diagnostic
}

// Run executes every analyzer over every package and returns the surviving
// diagnostics: findings matched by a valid //lint:ignore comment are
// dropped, malformed or (under Strict) stale suppressions are added under
// the "ignore" pseudo-analyzer. Diagnostics come back sorted by position.
func (s *Suite) Run(pkgs []*Package, fset *token.FileSet) ([]Diagnostic, error) {
	s.facts = map[string]any{}
	s.diags = nil
	for _, pkg := range pkgs {
		for _, a := range s.Analyzers {
			if !s.inScope(a.Name, pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Fset: fset, Package: pkg, suite: s}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sups := collectSuppressions(pkgs, fset)
	kept := s.applySuppressions(sups, fset)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Message < kept[j].Message
	})
	return kept, nil
}

// inScope reports whether analyzer name runs over the package at path.
func (s *Suite) inScope(name, path string) bool {
	pats, ok := s.Scope[name]
	if !ok {
		return true
	}
	for _, pat := range pats {
		if path == pat || strings.HasSuffix(path, "/"+pat) {
			return true
		}
	}
	return false
}

// ran reports whether the suite includes an analyzer by that name.
func (s *Suite) ran(name string) bool {
	for _, a := range s.Analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

// A suppression is one parsed //lint:ignore comment.
type suppression struct {
	pos       token.Position
	analyzers []string // names without the fedlint/ prefix
	reason    string
	used      bool
	malformed string // non-empty: why the comment itself is a diagnostic
}

// ignorePrefix introduces a suppression comment.
const ignorePrefix = "lint:ignore"

// collectSuppressions parses every //lint:ignore comment in every file.
// The expected form is "//lint:ignore fedlint/<name>[,fedlint/<name>…]
// <reason>"; departures are recorded as malformed so Run can report them.
func collectSuppressions(pkgs []*Package, fset *token.FileSet) []*suppression {
	var sups []*suppression
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
					if !ok {
						continue
					}
					sup := &suppression{pos: fset.Position(c.Pos())}
					fields := strings.Fields(text)
					if len(fields) == 0 {
						sup.malformed = "lint:ignore needs an analyzer name and a reason"
					} else {
						for _, name := range strings.Split(fields[0], ",") {
							bare, ok := strings.CutPrefix(name, "fedlint/")
							if !ok || bare == "" {
								sup.malformed = fmt.Sprintf("lint:ignore target %q is not of the form fedlint/<analyzer>", name)
								break
							}
							sup.analyzers = append(sup.analyzers, bare)
						}
						sup.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), fields[0]))
						if sup.malformed == "" && sup.reason == "" {
							sup.malformed = "lint:ignore needs a reason after the analyzer name"
						}
					}
					sups = append(sups, sup)
				}
			}
		}
	}
	return sups
}

// applySuppressions drops diagnostics matched by a well-formed suppression
// on the same line or the line directly above, and appends "ignore"
// diagnostics for malformed and (under Strict) stale suppressions.
func (s *Suite) applySuppressions(sups []*suppression, fset *token.FileSet) []Diagnostic {
	var kept []Diagnostic
	for _, d := range s.diags {
		suppressed := false
		for _, sup := range sups {
			if sup.malformed != "" || sup.pos.Filename != d.Pos.Filename {
				continue
			}
			if d.Pos.Line != sup.pos.Line && d.Pos.Line != sup.pos.Line+1 {
				continue
			}
			for _, name := range sup.analyzers {
				if name == d.Analyzer {
					sup.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, sup := range sups {
		if sup.malformed != "" {
			kept = append(kept, Diagnostic{Pos: sup.pos, Analyzer: "ignore", Message: sup.malformed})
			continue
		}
		if s.Strict && !sup.used && s.anyRan(sup.analyzers) {
			kept = append(kept, Diagnostic{Pos: sup.pos, Analyzer: "ignore",
				Message: fmt.Sprintf("stale lint:ignore: no fedlint/%s diagnostic here to suppress", strings.Join(sup.analyzers, ","))})
		}
	}
	return kept
}

// anyRan reports whether at least one of the named analyzers is part of
// this suite — a suppression for an analyzer that did not run cannot be
// judged stale.
func (s *Suite) anyRan(names []string) bool {
	for _, n := range names {
		if s.ran(n) {
			return true
		}
	}
	return false
}

// nonTestFiles returns the package's compiled (non-test) files.
func nonTestFiles(pkg *Package) []*ast.File {
	var out []*ast.File
	for _, f := range pkg.Files {
		if !pkg.TestFile[f] {
			out = append(out, f)
		}
	}
	return out
}
