package analysis

// Analyzers returns every analyzer in the fedlint suite, in the order the
// driver runs them.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism,
		FingerprintComplete,
		WireExhaustive,
		AtomicHygiene,
		ExportedGodoc,
	}
}

// DefaultSuite is the repository policy: the shape-activated analyzers
// sweep everything, while godoc coverage and determinism tracing are
// scoped to the packages whose contracts they encode. Scope entries are
// import-path suffixes, so the policy survives module renames.
func DefaultSuite() *Suite {
	return &Suite{
		Analyzers: Analyzers(),
		Scope: map[string][]string{
			// The fold/commit/aggregation paths whose bitwise determinism
			// the runtime suite pins; tracing every package would flag
			// helper CLIs that are allowed to read the clock.
			"determinism": {
				"internal/fed",
				"internal/shard",
				"internal/tensor",
			},
			// Godoc coverage is policy per package, not a code shape. This
			// list is every internal package that has reached full coverage;
			// grow it, never shrink it.
			"exported-godoc": {
				"internal/fed",
				"internal/tensor",
				"internal/shard",
				"internal/checkpoint",
				"internal/stats",
				"internal/metrics",
			},
		},
	}
}
