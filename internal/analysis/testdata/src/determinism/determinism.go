// Package determinism is the fedlint/determinism golden corpus: one
// aggregator per nondeterminism source, plus clean shapes that must stay
// unflagged.
package determinism

import (
	"math/rand"
	"time"
)

// Aggregator mirrors the repository's fold contract; implementing it makes
// a type's method set a determinism root.
type Aggregator interface {
	Name() string
	Aggregate(xs []float64) float64
}

// MapAgg folds through a map — the canonical order bug.
type MapAgg struct{ weights map[string]float64 }

// Name implements Aggregator.
func (m *MapAgg) Name() string { return "map" }

// Aggregate implements Aggregator.
func (m *MapAgg) Aggregate(xs []float64) float64 {
	total := 0.0
	for _, w := range m.weights { // want "iteration over a map"
		total += w
	}
	return total
}

// ClockAgg reaches the wall clock two calls deep, checking cross-function
// taint and the reported call path.
type ClockAgg struct{}

// Name implements Aggregator.
func (ClockAgg) Name() string { return "clock" }

// Aggregate implements Aggregator.
func (ClockAgg) Aggregate(xs []float64) float64 { return skew(xs) }

func skew(xs []float64) float64 {
	t := time.Now() // want "call to time.Now"
	return float64(t.Nanosecond()) + float64(len(xs))
}

// RandAgg draws from the shared unseeded RNG.
type RandAgg struct{}

// Name implements Aggregator.
func (RandAgg) Name() string { return "rand" }

// Aggregate implements Aggregator.
func (RandAgg) Aggregate(xs []float64) float64 {
	return rand.Float64() + float64(len(xs)) // want "unseeded global math/rand"
}

// SelectAgg races two ready channels.
type SelectAgg struct {
	a, b chan float64
}

// Name implements Aggregator.
func (s *SelectAgg) Name() string { return "select" }

// Aggregate implements Aggregator.
func (s *SelectAgg) Aggregate(xs []float64) float64 {
	select { // want "select with multiple ready paths"
	case v := <-s.a:
		return v
	case v := <-s.b:
		return v
	}
}

// Replay is not an aggregator, but its marker makes it a root anyway.
//
// fedlint:deterministic
func Replay(hist map[int]float64) float64 {
	total := 0.0
	for _, v := range hist { // want "iteration over a map"
		total += v
	}
	return total
}

// CleanAgg exercises every shape the analyzer must NOT flag: slice
// iteration, a seeded private RNG, and a single-case blocking select.
type CleanAgg struct {
	rng *rand.Rand
	ch  chan float64
}

// NewCleanAgg seeds the private RNG — the reproducible idiom.
func NewCleanAgg(seed int64) *CleanAgg {
	return &CleanAgg{rng: rand.New(rand.NewSource(seed)), ch: make(chan float64, 1)}
}

// Name implements Aggregator.
func (c *CleanAgg) Name() string { return "clean" }

// Aggregate implements Aggregator.
func (c *CleanAgg) Aggregate(xs []float64) float64 {
	total := c.rng.Float64()
	for _, x := range xs {
		total += x
	}
	select {
	case v := <-c.ch:
		total += v
	}
	return total
}

// Unrooted touches the clock but is reachable from no aggregator and
// carries no marker, so it must stay unflagged.
func Unrooted() int64 { return time.Now().UnixNano() }
