package determinism

import "time"

// mockAgg implements Aggregator from a test file; test-file method sets are
// not shipped fold paths, so its clock read must stay unflagged.
type mockAgg struct{}

func (mockAgg) Name() string { return "mock" }

func (mockAgg) Aggregate(xs []float64) float64 {
	return float64(time.Now().Nanosecond()) + float64(len(xs))
}
