// Package fingerprint is the fedlint/fingerprint-complete golden corpus: a
// config struct whose Fingerprint method misses fields in every way the
// analyzer distinguishes, plus covered shapes that must stay unflagged.
package fingerprint

import "hash/fnv"

// Sub is nested config read only partially by Fingerprint.
type Sub struct {
	Depth int
	Rate  float64 // want "Config.Sub.Rate is not mixed into Config.Fingerprint"
}

// Tuning is nested config that Fingerprint digests field by field, fully.
type Tuning struct {
	Window  int
	Horizon int
}

// Knobs is nested config that Fingerprint hands off wholesale; a whole-
// struct read covers the subtree, so its fields must stay unflagged.
type Knobs struct {
	Alpha float64
	Beta  float64
}

// Base is embedded; embedded fields are outside the contract.
type Base struct {
	Origin string
}

// Config is the struct under test.
type Config struct {
	Base
	Name string
	Seed uint64 // want "Config.Seed is not mixed into Config.Fingerprint"
	// fingerprint:exempt verbosity never reaches the numerics
	Debug bool
	// fingerprint:exempt
	Cache int // want "needs a reason"
	// fingerprint:exempt claims to be outside the digest
	Method string // want "is marked fingerprint:exempt but is mixed"
	Sub    Sub
	Whole  Tuning
	All    Knobs
}

// Fingerprint digests the covered subset of Config.
func (c Config) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(c.Name))
	h.Write([]byte(c.Method))
	h.Write([]byte{byte(c.Sub.Depth)})
	h.Write([]byte{byte(c.Whole.Window), byte(c.Whole.Horizon)})
	h.Write(knobBytes(c.All))
	return h.Sum64()
}

// knobBytes serialises Knobs for the digest.
func knobBytes(k Knobs) []byte {
	return []byte{byte(int(k.Alpha * 16)), byte(int(k.Beta * 16))}
}

// Plain has no Fingerprint method; nothing in it may be flagged.
type Plain struct {
	Anything int
	AtAll    string
}
