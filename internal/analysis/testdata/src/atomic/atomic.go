// Package atomic is the fedlint/atomic-hygiene golden corpus: an old-style
// atomic counter with a plain read, a mutex declaration group with an
// unlocked access, and every exemption the analyzer grants.
package atomic

import (
	"sync"
	"sync/atomic"
)

var counter int64

func bump() { atomic.AddInt64(&counter, 1) }

func peek() int64 {
	return counter // want "accessed via sync/atomic elsewhere"
}

// typed uses the type-safe API, which cannot be misused; no diagnostics.
var typed atomic.Int64

func bumpTyped() { typed.Add(1) }

func peekTyped() int64 { return typed.Load() }

// Box carries a mutex declaration group (mu guards count and size) and a
// loose field separated by a blank line, which the convention leaves
// unguarded.
type Box struct {
	mu    sync.Mutex
	count int
	size  int

	loose int
}

// NewBox constructs before publication; unlocked writes here are exempt.
func NewBox() *Box {
	b := &Box{}
	b.count = 1
	return b
}

// Inc locks; its accesses confirm the declaration-group guard.
func (b *Box) Inc() {
	b.mu.Lock()
	b.count++
	b.size += 2
	b.mu.Unlock()
}

// Peek reads a confirmed-guarded field without the lock.
func (b *Box) Peek() int {
	return b.count // want "guarded by mu"
}

// sizeLocked is a caller-holds-the-lock helper; the name exempts it.
func (b *Box) sizeLocked() int { return b.size }

// Loose reads the unguarded field; no diagnostic.
func (b *Box) Loose() int { return b.loose }

// Idle has the mutex-above layout but nobody ever locks, so the guard is
// never confirmed and the access stays unflagged.
type Idle struct {
	mu sync.Mutex
	n  int
}

// Get reads Idle's field without a lock anywhere in the package.
func (i *Idle) Get() int { return i.n }

// Package-level var groups follow the same convention.
var (
	tabMu sync.Mutex
	table []int
)

func addRow(v int) {
	tabMu.Lock()
	table = append(table, v)
	tabMu.Unlock()
}

func rowCount() int {
	return len(table) // want "guarded by tabMu"
}
