// Package suppress is the golden corpus for the //lint:ignore machinery,
// run with the atomic-hygiene analyzer under Strict. It covers a valid
// suppression, a missing reason, a bad target form, a stale suppression,
// and a suppression for an analyzer outside the suite (never stale).
package suppress

import "sync/atomic"

var hits int64

func bump() { atomic.AddInt64(&hits, 1) }

func peekQuiet() int64 {
	//lint:ignore fedlint/atomic-hygiene teardown runs after every worker has exited
	return hits
}

func peekNoisy() int64 {
	//lint:ignore fedlint/atomic-hygiene
	// want-above "needs a reason"
	return hits // want "accessed via sync/atomic elsewhere"
}

func peekBare() int64 {
	//lint:ignore atomic-hygiene target must carry the fedlint/ prefix
	// want-above "is not of the form fedlint/<analyzer>"
	return hits // want "accessed via sync/atomic elsewhere"
}

func clean() int64 {
	//lint:ignore fedlint/atomic-hygiene nothing left here to excuse
	// want-above "stale lint:ignore"
	return 0
}

func cleanOtherSuite() int64 {
	//lint:ignore fedlint/determinism judged only when determinism runs
	return 0
}
