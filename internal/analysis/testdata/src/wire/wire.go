// Package wire is the fedlint/wire-exhaustive golden corpus: a Kind
// enumeration whose constants miss coverage in every way the analyzer
// distinguishes. KindA is fully covered and must stay unflagged.
package wire

import "fmt"

// Kind discriminates frame payloads, mirroring the repository's wire enum.
type Kind uint8

// The frame kinds.
const (
	KindA Kind = iota
	KindB      // want "no case in the decoder's Kind switch"
	KindC      // want "returned by no message type's Kind method"
	KindD      // want "has no fixture in a golden test file" "is not seeded in any Fuzz function"
)

// MsgA is the fully covered message.
type MsgA struct{ N int }

// Kind implements the frame contract for MsgA.
func (MsgA) Kind() Kind { return KindA }

// MsgB has a decoder gap but full test coverage.
type MsgB struct{ S string }

// Kind implements the frame contract for MsgB.
func (MsgB) Kind() Kind { return KindB }

// MsgD decodes fine but has neither golden fixture nor fuzz seed.
type MsgD struct{ F float64 }

// Kind implements the frame contract for MsgD.
func (MsgD) Kind() Kind { return KindD }

// Decode is the switch the analyzer reads coverage from; the default
// clause must not count as handling a kind.
func Decode(k Kind) (any, error) {
	switch k {
	case KindA:
		return MsgA{}, nil
	case KindC:
		return nil, fmt.Errorf("wire: kind %d is reserved", k)
	case KindD:
		return MsgD{}, nil
	default:
		return nil, fmt.Errorf("wire: unknown kind %d", k)
	}
}
