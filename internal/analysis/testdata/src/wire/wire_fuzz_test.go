package wire

import "testing"

// FuzzDecode seeds the decoder with every message type except MsgD — the
// gap the analyzer must report.
func FuzzDecode(f *testing.F) {
	for _, m := range []any{MsgA{N: 2}, MsgB{S: "seed"}} {
		_ = m
		f.Add(uint8(0))
	}
	f.Fuzz(func(t *testing.T, k uint8) {
		_, _ = Decode(Kind(k))
	})
}
