package wire

import "testing"

// TestGolden stands in for the repository's byte-fixture tests: the
// composite literals here are what the analyzer counts as golden coverage.
func TestGolden(t *testing.T) {
	fixtures := []any{
		MsgA{N: 1},
		MsgB{S: "b"},
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixtures")
	}
}
