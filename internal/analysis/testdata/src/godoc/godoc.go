// Package godoc is the fedlint/exported-godoc golden corpus.
package godoc

// Documented carries a doc comment, as required.
func Documented() {}

func Naked() {} // want "exported function Naked has no doc comment"

// Widget is documented.
type Widget struct{ n int }

// Grow is a documented method.
func (w *Widget) Grow() { w.n++ }

func (w *Widget) Shrink() { w.n-- } // want "exported method Shrink has no doc comment"

type Gadget struct{} // want "exported type Gadget has no doc comment"

// The limits of the corpus; a group doc covers every member.
const (
	MinSize = 1
	MaxSize = 64
)

var (
	DefaultName = "widget"
	// want-above "exported var DefaultName has no doc comment"

	// Registry is documented per spec.
	Registry = map[string]int{}
)

// hidden is unexported: out of the godoc surface entirely.
func hidden() {}

// unexp has methods that never need docs.
type unexp struct{}

func (unexp) Visible() {}
