package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// WireExhaustive pins the wire-format test contract: every frame-kind
// constant must be decodable and test-covered, catching the "added kind 7,
// forgot the golden" class at the source level before the frame ever
// crosses a socket.
//
// The analyzer activates on a package that declares an integer type named
// Kind together with at least one Kind() method mapping a message type to
// a kind constant (internal/fed's shape). For every constant of that type
// it then requires:
//
//   - a case in a switch over Kind in non-test code (the decoder switch —
//     a default clause does not count as handling a kind);
//   - a message type whose Kind() method returns the constant;
//   - a composite literal of that message type in a *golden* test file
//     (the byte-level fixtures);
//   - a composite literal of that message type inside a Fuzz function
//     (the decoder fuzz seeds).
var WireExhaustive = &Analyzer{
	Name: "wire-exhaustive",
	Doc: "every frame-kind constant has a decoder case, a golden fixture " +
		"and a fuzz seed",
	Run: runWireExhaustive,
}

func runWireExhaustive(pass *Pass) error {
	info := pass.Package.Info
	scope := pass.Package.Pkg.Scope()
	tn, ok := scope.Lookup("Kind").(*types.TypeName)
	if !ok || tn.IsAlias() {
		return nil
	}
	basic, ok := tn.Type().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	kindType := tn.Type()

	type kindConst struct {
		obj *types.Const
		val constant.Value
	}
	var kinds []kindConst
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), kindType) {
			kinds = append(kinds, kindConst{c, c.Val()})
		}
	}
	if len(kinds) == 0 {
		return nil
	}
	sort.Slice(kinds, func(i, j int) bool {
		a, _ := constant.Int64Val(kinds[i].val)
		b, _ := constant.Int64Val(kinds[j].val)
		return a < b
	})

	// kindToMsg: which message type's Kind() method returns each constant.
	// The analyzer only arms when at least one such method exists.
	kindToMsg := map[string]string{}
	for _, file := range nonTestFiles(pass.Package) {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Kind" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recvName := receiverTypeName(info, fd)
			if recvName == "" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok || len(ret.Results) != 1 {
					return true
				}
				if tv, ok := info.Types[ret.Results[0]]; ok && tv.Value != nil && types.Identical(tv.Type, kindType) {
					kindToMsg[tv.Value.ExactString()] = recvName
				}
				return true
			})
		}
	}
	if len(kindToMsg) == 0 {
		return nil
	}

	// Switch coverage over non-test code: the union of constants handled
	// by switches whose tag is of type Kind.
	switched := map[string]bool{}
	sawSwitch := false
	for _, file := range nonTestFiles(pass.Package) {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			if t := info.TypeOf(sw.Tag); t == nil || !types.Identical(t, kindType) {
				return true
			}
			sawSwitch = true
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, expr := range cc.List {
					if tv, ok := info.Types[expr]; ok && tv.Value != nil {
						switched[tv.Value.ExactString()] = true
					}
				}
			}
			return true
		})
	}

	// Test-coverage sets: composite-literal types in golden test files and
	// inside Fuzz functions.
	golden := map[string]bool{}
	fuzzed := map[string]bool{}
	sawGoldenFile, sawFuzzFunc := false, false
	for _, file := range pass.Package.Files {
		if !pass.Package.TestFile[file] {
			continue
		}
		pos := pass.Fset.Position(file.Pos())
		isGolden := strings.Contains(pos.Filename, "golden")
		if isGolden {
			sawGoldenFile = true
			collectLitTypes(info, file, golden)
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Fuzz") {
				continue
			}
			sawFuzzFunc = true
			collectLitTypes(info, fd.Body, fuzzed)
		}
	}

	for _, k := range kinds {
		key := k.val.ExactString()
		if sawSwitch && !switched[key] {
			pass.Reportf(k.obj.Pos(), "frame kind %s has no case in the decoder's Kind switch", k.obj.Name())
		}
		msg, ok := kindToMsg[key]
		if !ok {
			pass.Reportf(k.obj.Pos(), "frame kind %s is returned by no message type's Kind method", k.obj.Name())
			continue
		}
		switch {
		case !sawGoldenFile:
			pass.Reportf(k.obj.Pos(), "frame kind %s (message type %s) has no byte-level fixture: the package has no golden test file", k.obj.Name(), msg)
		case !golden[msg]:
			pass.Reportf(k.obj.Pos(), "frame kind %s (message type %s) has no fixture in a golden test file", k.obj.Name(), msg)
		}
		switch {
		case !sawFuzzFunc:
			pass.Reportf(k.obj.Pos(), "frame kind %s (message type %s) has no fuzz seed: the package has no Fuzz function", k.obj.Name(), msg)
		case !fuzzed[msg]:
			pass.Reportf(k.obj.Pos(), "frame kind %s (message type %s) is not seeded in any Fuzz function", k.obj.Name(), msg)
		}
	}
	return nil
}

// receiverTypeName resolves a method's receiver to its named type's name.
func receiverTypeName(info *types.Info, fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// collectLitTypes records the named types of every composite literal under
// root into out.
func collectLitTypes(info *types.Info, root ast.Node, out map[string]bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := info.TypeOf(lit)
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			out[named.Obj().Name()] = true
		}
		return true
	})
}
