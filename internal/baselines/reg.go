package baselines

import (
	"repro/internal/data"
	"repro/internal/fed"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// regularized is the shared skeleton of the importance-regularisation family
// (EWC, MAS, AGS-CL): an importance vector Ω and an anchor w* accumulated at
// task boundaries, with the penalty gradient λ·Ω⊙(w − w*) added to every
// step.
type regularized struct {
	fed.BaseStrategy
	ctx        *fed.ClientCtx
	name       string
	Lambda     float64
	importance []float32
	anchor     []float32
	estimate   func(ct data.ClientTask) // fills importance at task end
	freezeTop  float64                  // AGS-CL: fraction of weights frozen
	frozen     []bool
}

// Name identifies the method.
func (s *regularized) Name() string { return s.name }

// TrainStep adds the importance penalty to the task gradient before the
// optimiser step; AGS-CL additionally freezes its most important weights.
func (s *regularized) TrainStep(x *tensor.Tensor, labels []int, classes []int) float64 {
	loss, _ := plainGrad(s.ctx, x, labels, classes)
	params := s.ctx.Model.Params()
	if s.anchor != nil {
		off := 0
		lam := float32(s.Lambda)
		for _, p := range params {
			for j := range p.W.Data {
				i := off + j
				p.Grad.Data[j] += lam * s.importance[i] * (p.W.Data[j] - s.anchor[i])
			}
			off += p.W.Len()
		}
	}
	if s.frozen != nil {
		inv := make([]bool, len(s.frozen))
		for i, f := range s.frozen {
			inv[i] = !f
		}
		s.ctx.Opt.StepMasked(params, inv)
	} else {
		s.ctx.Opt.Step(params)
	}
	return loss
}

// TaskEnd re-estimates importance and re-anchors.
func (s *regularized) TaskEnd(ct data.ClientTask) {
	params := s.ctx.Model.Params()
	n := nn.NumParams(params)
	if s.importance == nil {
		s.importance = make([]float32, n)
	}
	s.estimate(ct)
	// Normalise importance to unit maximum so the penalty strength is
	// governed by λ alone; raw accumulated Fisher/sensitivity magnitudes
	// grow with task count and would otherwise blow up the update.
	var maxImp float32
	for _, v := range s.importance {
		if v > maxImp {
			maxImp = v
		}
	}
	if maxImp > 0 {
		inv := 1 / maxImp
		for i := range s.importance {
			s.importance[i] *= inv
		}
	}
	s.anchor = nn.FlattenParams(params)
	if s.freezeTop > 0 {
		s.frozen = topFractionMask(s.importance, s.freezeTop)
	}
}

// MemoryBytes charges the importance and anchor vectors.
func (s *regularized) MemoryBytes() int {
	return len(s.importance)*4 + len(s.anchor)*4
}

// OverheadFLOPs charges the penalty computation (linear in parameters) plus
// the task-end estimation amortised per step; the dominant term is the
// penalty, approximated by one parameter pass.
func (s *regularized) OverheadFLOPs() float64 {
	return float64(len(s.importance)) * 3
}

// topFractionMask marks the top `frac` fraction of entries by value.
func topFractionMask(importance []float32, frac float64) []bool {
	n := len(importance)
	k := int(float64(n) * frac)
	if k <= 0 {
		return make([]bool, n)
	}
	// Threshold via a coarse histogram-free selection: copy and partial
	// sort would be O(n log n); n is small enough here.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	quickSelectDesc(idx, importance, k)
	mask := make([]bool, n)
	for _, i := range idx[:k] {
		mask[i] = true
	}
	return mask
}

// quickSelectDesc partially orders idx so the k largest-importance indices
// occupy idx[:k].
func quickSelectDesc(idx []int, val []float32, k int) {
	lo, hi := 0, len(idx)-1
	for lo < hi {
		p := val[idx[(lo+hi)/2]]
		i, j := lo, hi
		for i <= j {
			for val[idx[i]] > p {
				i++
			}
			for val[idx[j]] < p {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

// NewEWC builds elastic weight consolidation [24]: importance is the
// diagonal Fisher information, estimated from squared task gradients. The
// paper's search found λ = 40000 (§V-B); scaled to the synthetic substrate.
func NewEWC(ctx *fed.ClientCtx) fed.Strategy {
	s := &regularized{ctx: ctx, name: "EWC", Lambda: 100}
	s.estimate = func(ct data.ClientTask) { fisherEstimate(s, ct, true) }
	return s
}

// NewMAS builds memory-aware synapses [2]: importance is the sensitivity of
// the squared output norm to each weight, |∂‖f‖²/∂w|.
func NewMAS(ctx *fed.ClientCtx) fed.Strategy {
	s := &regularized{ctx: ctx, name: "MAS", Lambda: 50}
	s.estimate = func(ct data.ClientTask) { masEstimate(s, ct) }
	return s
}

// NewAGSCL builds adaptive group-sparsity continual learning [19],
// simplified to its load-bearing mechanism for this comparison: importance-
// weighted regularisation plus hard freezing of the most important weight
// group when a task finishes. (The original's proximal group-lasso operator
// needs per-node groups; freezing the top fraction reproduces the "frozen
// capacity grows with tasks" behaviour the paper discusses.)
func NewAGSCL(ctx *fed.ClientCtx) fed.Strategy {
	s := &regularized{ctx: ctx, name: "AGS-CL", Lambda: 200, freezeTop: 0.05}
	s.estimate = func(ct data.ClientTask) { fisherEstimate(s, ct, false) }
	return s
}

// fisherEstimate accumulates squared (or absolute) gradients over a few
// batches of the finished task.
func fisherEstimate(s *regularized, ct data.ClientTask, squared bool) {
	m := s.ctx.Model
	params := m.Params()
	if len(ct.Train) == 0 {
		return
	}
	const batches = 2
	for b := 0; b < batches; b++ {
		x, labels := batchFrom(s.ctx.RNG, ct.Train, 16, m.InC, m.InH, m.InW)
		_, _ = labels, x
		logits := m.Forward(x, true)
		_, dl := nn.MaskedCrossEntropy(logits, labels, ct.Classes)
		nn.ZeroGrads(params)
		m.Backward(dl)
		off := 0
		for _, p := range params {
			for j, g := range p.Grad.Data {
				if squared {
					s.importance[off+j] += g * g
				} else {
					s.importance[off+j] += abs32(g)
				}
			}
			off += p.W.Len()
		}
	}
}

// masEstimate accumulates |∂‖f(x)‖²/∂w|.
func masEstimate(s *regularized, ct data.ClientTask) {
	m := s.ctx.Model
	params := m.Params()
	if len(ct.Train) == 0 {
		return
	}
	x, _ := batchFrom(s.ctx.RNG, ct.Train, 16, m.InC, m.InH, m.InW)
	logits := m.Forward(x, true)
	// d‖f‖²/dlogits = 2·logits (normalised by batch size).
	dl := logits.Clone()
	dl.ScaleInPlace(2 / float32(logits.Shape[0]))
	nn.ZeroGrads(params)
	m.Backward(dl)
	off := 0
	for _, p := range params {
		for j, g := range p.Grad.Data {
			s.importance[off+j] += abs32(g)
		}
		off += p.W.Len()
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
