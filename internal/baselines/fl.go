package baselines

import (
	"repro/internal/data"
	"repro/internal/fed"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// FedAvg is plain federated averaging [37]: local SGD, full-model
// aggregation, no continual-learning machinery at all. It is the
// communication-cost reference every non-FedWEIT method shares.
type FedAvg struct {
	fed.BaseStrategy
	ctx *fed.ClientCtx
}

// NewFedAvg builds the strategy.
func NewFedAvg(ctx *fed.ClientCtx) fed.Strategy { return &FedAvg{ctx: ctx} }

// Name identifies the method.
func (s *FedAvg) Name() string { return "FedAvg" }

// TrainStep is one plain SGD step.
func (s *FedAvg) TrainStep(x *tensor.Tensor, labels []int, classes []int) float64 {
	loss, _ := plainGrad(s.ctx, x, labels, classes)
	s.ctx.Opt.Step(s.ctx.Model.Params())
	return loss
}

// APFL is adaptive personalised federated learning [9]: each client keeps a
// personal model and serves the convex mixture w = α·personal + (1−α)·global,
// with α adapted toward whichever side currently fits local data better.
type APFL struct {
	fed.BaseStrategy
	ctx      *fed.ClientCtx
	Alpha    float64
	personal []float32
}

// NewAPFL builds the strategy with the common α = 0.5 initialisation.
func NewAPFL(ctx *fed.ClientCtx) fed.Strategy { return &APFL{ctx: ctx, Alpha: 0.5} }

// Name identifies the method.
func (s *APFL) Name() string { return "APFL" }

// TrainStep is a plain local step; the personal model tracks the result.
func (s *APFL) TrainStep(x *tensor.Tensor, labels []int, classes []int) float64 {
	loss, _ := plainGrad(s.ctx, x, labels, classes)
	s.ctx.Opt.Step(s.ctx.Model.Params())
	s.personal = nn.FlattenParams(s.ctx.Model.Params())
	return loss
}

// AfterAggregate installs the adaptive mixture of the personal
// (pre-aggregation) and global models.
func (s *APFL) AfterAggregate(preAgg []float32, ct data.ClientTask) {
	params := s.ctx.Model.Params()
	global := nn.FlattenParams(params)
	if s.personal == nil {
		// Copy: preAgg is an engine-owned buffer that is rewritten every
		// round.
		s.personal = append([]float32(nil), preAgg...)
	}
	mixed := make([]float32, len(global))
	a := float32(s.Alpha)
	for i := range mixed {
		mixed[i] = a*s.personal[i] + (1-a)*global[i]
	}
	nn.SetFlatParams(params, mixed)
}

// FedRep [7] splits the network into shared representation layers and a
// personal head: only the representation is aggregated, the head stays
// local. The mask marks every parameter except the final linear layer's.
type FedRep struct {
	fed.BaseStrategy
	ctx  *fed.ClientCtx
	mask []bool
}

// NewFedRep builds the strategy.
func NewFedRep(ctx *fed.ClientCtx) fed.Strategy {
	params := ctx.Model.Params()
	n := nn.NumParams(params)
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	// The classifier head is the last two parameter tensors (Linear W, B).
	headLen := 0
	if len(params) >= 2 {
		headLen = params[len(params)-1].W.Len() + params[len(params)-2].W.Len()
	}
	for i := n - headLen; i < n; i++ {
		mask[i] = false
	}
	return &FedRep{ctx: ctx, mask: mask}
}

// Name identifies the method.
func (s *FedRep) Name() string { return "FedRep" }

// TrainStep is a plain local step (representation and head both train
// locally; FedRep's alternating schedule is folded into the shared loop).
func (s *FedRep) TrainStep(x *tensor.Tensor, labels []int, classes []int) float64 {
	loss, _ := plainGrad(s.ctx, x, labels, classes)
	s.ctx.Opt.Step(s.ctx.Model.Params())
	return loss
}

// AggregateMask keeps the head personal.
func (s *FedRep) AggregateMask() []bool { return s.mask }
