package baselines

import (
	"testing"

	"repro/internal/data"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

func newCtx(seed uint64) *fed.ClientCtx {
	rng := tensor.NewRNG(seed)
	m := model.MustBuild("SixCNN", 8, 3, 12, 12, 1, rng.Fork(1))
	return &fed.ClientCtx{
		ID: 0, NumClients: 4, Model: m,
		Opt: opt.NewSGD(opt.Const{Rate: 0.01}, 0, 0),
		RNG: rng.Fork(2), NumClasses: 8,
	}
}

func mkTask(seed uint64, classes []int) data.ClientTask {
	ds := data.Generate(data.Config{Name: "t", NumClasses: 8, TrainPerClass: 10,
		TestPerClass: 3, C: 3, H: 12, W: 12, Noise: 0.3, Seed: seed})
	ct := data.ClientTask{TaskID: 0, Classes: classes}
	for _, s := range ds.Train {
		for _, c := range classes {
			if s.Y == c {
				ct.Train = append(ct.Train, s)
			}
		}
	}
	for _, s := range ds.Test {
		for _, c := range classes {
			if s.Y == c {
				ct.Test = append(ct.Test, s)
			}
		}
	}
	return ct
}

func trainSteps(t *testing.T, s fed.Strategy, ctx *fed.ClientCtx, ct data.ClientTask, steps int) (first, last float64) {
	t.Helper()
	for i := 0; i < steps; i++ {
		idx := ctx.RNG.Perm(len(ct.Train))[:8]
		x, labels := data.Batch(ct.Train, idx, 3, 12, 12)
		loss := s.TrainStep(x, labels, ct.Classes)
		if loss != loss {
			t.Fatalf("%s: NaN loss at step %d", s.Name(), i)
		}
		if i == 0 {
			first = loss
		}
		last = loss
	}
	return first, last
}

// TestRegistryComplete checks every paper baseline is registered.
func TestRegistryComplete(t *testing.T) {
	if len(Names) != 11 {
		t.Fatalf("%d baselines, want 11", len(Names))
	}
	for _, n := range Names {
		if Registry[n] == nil {
			t.Fatalf("baseline %s missing from registry", n)
		}
	}
}

// TestAllBaselinesLearn runs the full protocol surface of every baseline on
// a tiny task: steps must reduce loss, task end and aggregation hooks must
// not corrupt state.
func TestAllBaselinesLearn(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			ctx := newCtx(100)
			s := Registry[name](ctx)
			if s.Name() != name {
				t.Fatalf("Name() = %q, want %q", s.Name(), name)
			}
			ct := mkTask(7, []int{0, 1, 2})
			first, last := trainSteps(t, s, ctx, ct, 25)
			if last >= first {
				t.Fatalf("%s: loss %v → %v did not decrease", name, first, last)
			}
			// Protocol hooks.
			pre := nn.FlattenParams(ctx.Model.Params())
			s.AfterAggregate(pre, ct)
			s.TaskEnd(ct)
			// Second task trains without NaN after hooks.
			ct2 := mkTask(8, []int{4, 5})
			trainSteps(t, s, ctx, ct2, 5)
			if s.MemoryBytes() < 0 || s.OverheadFLOPs() < 0 {
				t.Fatal("negative accounting")
			}
		})
	}
}

func TestGEMStoresMemoryFraction(t *testing.T) {
	ctx := newCtx(1)
	s := NewGEMFrac(ctx, 0.5).(*GEM)
	ct := mkTask(2, []int{0, 1})
	s.TaskEnd(ct)
	want := len(ct.Train) / 2
	if got := len(s.memories[0]); got < want-1 || got > want+1 {
		t.Fatalf("stored %d, want ≈ %d", got, want)
	}
	if s.MemoryBytes() <= 0 {
		t.Fatal("GEM memory accounting missing")
	}
}

func TestGEMMemoryGrowsWithFraction(t *testing.T) {
	ct := mkTask(3, []int{0, 1, 2})
	small := NewGEMFrac(newCtx(2), 0.1).(*GEM)
	big := NewGEMFrac(newCtx(2), 1.0).(*GEM)
	small.TaskEnd(ct)
	big.TaskEnd(ct)
	if big.MemoryBytes() <= small.MemoryBytes() {
		t.Fatal("100% memory must exceed 10%")
	}
}

func TestEWCImportanceAccumulates(t *testing.T) {
	ctx := newCtx(3)
	s := NewEWC(ctx).(*regularized)
	ct := mkTask(4, []int{0, 1})
	s.TaskEnd(ct)
	if s.anchor == nil {
		t.Fatal("EWC must anchor after task end")
	}
	var sum float64
	for _, v := range s.importance {
		if v < 0 {
			t.Fatal("Fisher importance must be non-negative")
		}
		sum += float64(v)
	}
	if sum == 0 {
		t.Fatal("importance is identically zero")
	}
}

func TestMASImportanceNonNegative(t *testing.T) {
	ctx := newCtx(4)
	s := NewMAS(ctx).(*regularized)
	s.TaskEnd(mkTask(5, []int{0, 1}))
	for _, v := range s.importance {
		if v < 0 {
			t.Fatal("MAS importance must be |gradient|")
		}
	}
}

func TestAGSCLFreezesTopWeights(t *testing.T) {
	ctx := newCtx(5)
	s := NewAGSCL(ctx).(*regularized)
	s.TaskEnd(mkTask(6, []int{0, 1}))
	if s.frozen == nil {
		t.Fatal("AGS-CL must freeze after task end")
	}
	frozen := 0
	for _, f := range s.frozen {
		if f {
			frozen++
		}
	}
	want := int(float64(len(s.frozen)) * 0.05)
	if frozen < want/2 || frozen > want*2 {
		t.Fatalf("frozen %d of %d, want ≈ %d", frozen, len(s.frozen), want)
	}
	// Frozen weights must not move under training.
	before := nn.FlattenParams(ctx.Model.Params())
	ct2 := mkTask(7, []int{2, 3})
	trainSteps(t, s, ctx, ct2, 3)
	after := nn.FlattenParams(ctx.Model.Params())
	for i, f := range s.frozen {
		if f && before[i] != after[i] {
			t.Fatal("frozen weight moved")
		}
	}
}

func TestFedRepMaskKeepsHeadLocal(t *testing.T) {
	ctx := newCtx(6)
	s := NewFedRep(ctx)
	mask := s.AggregateMask()
	if mask == nil {
		t.Fatal("FedRep must mask")
	}
	params := ctx.Model.Params()
	headLen := params[len(params)-1].W.Len() + params[len(params)-2].W.Len()
	n := len(mask)
	for i := n - headLen; i < n; i++ {
		if mask[i] {
			t.Fatal("head parameters must not aggregate")
		}
	}
	for i := 0; i < n-headLen; i++ {
		if !mask[i] {
			t.Fatal("representation parameters must aggregate")
		}
	}
}

func TestAPFLMixesModels(t *testing.T) {
	ctx := newCtx(7)
	s := NewAPFL(ctx).(*APFL)
	ct := mkTask(8, []int{0, 1})
	trainSteps(t, s, ctx, ct, 3)
	personal := append([]float32(nil), s.personal...)
	// Pretend the server installed a shifted global model.
	params := ctx.Model.Params()
	global := nn.FlattenParams(params)
	for i := range global {
		global[i] += 1
	}
	nn.SetFlatParams(params, global)
	s.AfterAggregate(personal, ct)
	mixed := nn.FlattenParams(params)
	// α=0.5: mixed must sit strictly between personal and global.
	i := 0
	want := 0.5*personal[i] + 0.5*global[i]
	if diff := mixed[i] - want; diff > 1e-5 || diff < -1e-5 {
		t.Fatalf("mixture wrong: got %v want %v", mixed[i], want)
	}
}

func TestFLCNUploadsOncePerTask(t *testing.T) {
	ctx := newCtx(8)
	s := NewFLCN(ctx).(*FLCN)
	if s.ExtraUploadBytes() != 0 {
		t.Fatal("no upload before first task end")
	}
	ct := mkTask(9, []int{0, 1})
	s.TaskEnd(ct)
	up := s.ExtraUploadBytes()
	if up <= 0 {
		t.Fatal("task end must queue a sample upload")
	}
	if s.ExtraUploadBytes() != 0 {
		t.Fatal("upload must be charged once")
	}
}

func TestFedWEITCommunicationGrowsWithTasksAndClients(t *testing.T) {
	ctx := newCtx(9)
	s := NewFedWEIT(ctx).(*FedWEIT)
	if s.ExtraDownloadBytes() != 0 {
		t.Fatal("no pool before first task")
	}
	ct := mkTask(10, []int{0, 1})
	s.TaskEnd(ct)
	d1 := s.ExtraDownloadBytes()
	s.TaskEnd(mkTask(11, []int{2, 3}))
	d2 := s.ExtraDownloadBytes()
	if !(d2 > d1 && d1 > 0) {
		t.Fatalf("download must grow with tasks: %d → %d", d1, d2)
	}
	// More clients → more pool.
	ctxBig := newCtx(9)
	ctxBig.NumClients = 20
	sBig := NewFedWEIT(ctxBig).(*FedWEIT)
	sBig.TaskEnd(ct)
	if sBig.ExtraDownloadBytes() <= d1 {
		t.Fatal("download must grow with client count")
	}
	if s.ExtraUploadBytes() <= 0 {
		t.Fatal("FedWEIT must upload adaptive weights")
	}
}

func TestFedWEITLocalHasNoPool(t *testing.T) {
	ctx := newCtx(10)
	s := NewFedWEITLocal(ctx).(*FedWEIT)
	s.TaskEnd(mkTask(11, []int{0, 1}))
	if s.ExtraDownloadBytes() != 0 {
		t.Fatal("local variant must not download the pool")
	}
	if s.Name() != "FedWEIT-local" {
		t.Fatalf("Name = %s", s.Name())
	}
	full := NewFedWEIT(newCtx(10)).(*FedWEIT)
	full.TaskEnd(mkTask(11, []int{0, 1}))
	if s.MemoryBytes() >= full.MemoryBytes() {
		t.Fatal("local variant must use less memory than the pool variant")
	}
}

func TestCo2LSnapshotsModel(t *testing.T) {
	ctx := newCtx(11)
	s := NewCo2L(ctx).(*Co2L)
	if s.prev != nil {
		t.Fatal("no snapshot before first task")
	}
	s.TaskEnd(mkTask(12, []int{0, 1}))
	if len(s.prev) != ctx.Model.NumParams() {
		t.Fatal("snapshot size wrong")
	}
	if s.OverheadFLOPs() <= 0 {
		t.Fatal("distillation overhead missing after snapshot")
	}
}

func TestBCNBalancedMemoryAcrossTasks(t *testing.T) {
	ctx := newCtx(12)
	s := NewBCN(ctx).(*BCN)
	s.TaskEnd(mkTask(13, []int{0, 1}))
	s.TaskEnd(mkTask(14, []int{2, 3}))
	task1, task2 := false, false
	for _, c := range s.memClass {
		if c == 0 || c == 1 {
			task1 = true
		}
		if c == 2 || c == 3 {
			task2 = true
		}
	}
	if !task1 || !task2 {
		t.Fatalf("memory must span both tasks: classes %v", s.memClass)
	}
}
