package baselines

import (
	"repro/internal/data"
	"repro/internal/fed"
	"repro/internal/nn"
	"repro/internal/qp"
	"repro/internal/tensor"
)

// GEM is gradient episodic memory [35]: a fraction of every finished task's
// samples is retained; each training step computes the retained tasks'
// gradients on their memories and projects the current gradient through the
// same dual QP FedKNOW uses so no past task's loss increases.
type GEM struct {
	fed.BaseStrategy
	ctx *fed.ClientCtx
	// MemFrac is the retained fraction of each task's training samples
	// (paper setting: 10 %; Fig. 10 sweeps 10–100 %).
	MemFrac  float64
	memories [][]data.Sample
	memClass [][]int
}

// NewGEM builds the strategy at the paper's 10 % memory setting.
func NewGEM(ctx *fed.ClientCtx) fed.Strategy { return NewGEMFrac(ctx, 0.10) }

// NewGEMFrac builds GEM with an explicit memory fraction.
func NewGEMFrac(ctx *fed.ClientCtx, frac float64) fed.Strategy {
	return &GEM{ctx: ctx, MemFrac: frac}
}

// Name identifies the method.
func (s *GEM) Name() string { return "GEM" }

// TrainStep projects the current gradient against every memory task's
// gradient.
func (s *GEM) TrainStep(x *tensor.Tensor, labels []int, classes []int) float64 {
	loss, g := plainGrad(s.ctx, x, labels, classes)
	params := s.ctx.Model.Params()
	if len(s.memories) > 0 {
		m := s.ctx.Model
		constraints := make([][]float32, 0, len(s.memories))
		for ti, mem := range s.memories {
			if len(mem) == 0 {
				continue
			}
			mx, mlabels := batchFrom(s.ctx.RNG, mem, 8, m.InC, m.InH, m.InW)
			_, mg := plainGrad(s.ctx, mx, mlabels, s.memClass[ti])
			constraints = append(constraints, mg)
		}
		g = qp.Integrate(g, constraints)
		nn.SetFlatGrads(params, g)
	}
	s.ctx.Opt.Step(params)
	return loss
}

// TaskEnd stores a fraction of the finished task's samples.
func (s *GEM) TaskEnd(ct data.ClientTask) {
	n := int(float64(len(ct.Train))*s.MemFrac + 0.5)
	if n < 1 {
		n = 1
	}
	s.memories = append(s.memories, reservoir(s.ctx.RNG, ct.Train, n))
	s.memClass = append(s.memClass, ct.Classes)
}

// MemoryBytes charges the episodic memory.
func (s *GEM) MemoryBytes() int {
	total := 0
	for _, mem := range s.memories {
		total += sampleBytes(mem)
	}
	return total
}

// OverheadFLOPs charges one forward+backward per memory task per step.
func (s *GEM) OverheadFLOPs() float64 {
	return float64(len(s.memories)) * 3 * s.ctx.Model.FLOPsPerSample() * 16
}

// BCN is balanced continual learning [42], reduced to its rehearsal core:
// every step trains on a joint batch of current-task samples and an equal
// number of class-balanced memory samples, so the optimisation sees a
// stationary mixture of all distributions. (The original's bi-level
// generalisation/forgetting solver is replaced by the balanced mixture it
// ultimately produces.)
type BCN struct {
	fed.BaseStrategy
	ctx      *fed.ClientCtx
	MemFrac  float64
	memories []data.Sample
	memClass []int
}

// NewBCN builds the strategy at the 10 % retention setting of §V-B.
func NewBCN(ctx *fed.ClientCtx) fed.Strategy { return &BCN{ctx: ctx, MemFrac: 0.10} }

// Name identifies the method.
func (s *BCN) Name() string { return "BCN" }

// TrainStep mixes a balanced memory batch into the current batch.
func (s *BCN) TrainStep(x *tensor.Tensor, labels []int, classes []int) float64 {
	m := s.ctx.Model
	params := m.Params()
	loss, g := plainGrad(s.ctx, x, labels, classes)
	if len(s.memories) > 0 {
		mx, mlabels := batchFrom(s.ctx.RNG, s.memories, x.Shape[0], m.InC, m.InH, m.InW)
		_, mg := plainGrad(s.ctx, mx, mlabels, s.memClass)
		// Equal-weight mixture of the two gradients.
		for i := range g {
			g[i] = 0.5 * (g[i] + mg[i])
		}
		nn.SetFlatGrads(params, g)
	}
	s.ctx.Opt.Step(params)
	return loss
}

// TaskEnd retains a balanced sample of the finished task.
func (s *BCN) TaskEnd(ct data.ClientTask) {
	n := int(float64(len(ct.Train))*s.MemFrac + 0.5)
	if n < 1 {
		n = 1
	}
	s.memories = append(s.memories, reservoir(s.ctx.RNG, ct.Train, n)...)
	s.memClass = classesOf(s.memories)
}

// MemoryBytes charges the rehearsal buffer.
func (s *BCN) MemoryBytes() int { return sampleBytes(s.memories) }

// OverheadFLOPs charges the extra rehearsal batch.
func (s *BCN) OverheadFLOPs() float64 {
	if len(s.memories) == 0 {
		return 0
	}
	return 3 * s.ctx.Model.FLOPsPerSample() * 16
}

// Co2L is contrastive continual learning [3], reduced to its
// representation-preservation core: alongside rehearsal, each step distills
// the previous task model's soft predictions on the current batch into the
// live model (instance-wise relation preservation), which is what protects
// the learned features. (The original's supervised-contrastive head is
// replaced by distillation, its asymptotic effect.)
type Co2L struct {
	fed.BaseStrategy
	ctx      *fed.ClientCtx
	MemFrac  float64
	Distill  float64 // distillation weight λ
	memories []data.Sample
	memClass []int
	prev     []float32 // previous-task model snapshot
}

// NewCo2L builds the strategy.
func NewCo2L(ctx *fed.ClientCtx) fed.Strategy {
	return &Co2L{ctx: ctx, MemFrac: 0.10, Distill: 0.5}
}

// Name identifies the method.
func (s *Co2L) Name() string { return "Co2L" }

// TrainStep adds the distillation gradient from the snapshot model plus a
// rehearsal gradient.
func (s *Co2L) TrainStep(x *tensor.Tensor, labels []int, classes []int) float64 {
	m := s.ctx.Model
	params := m.Params()
	loss, g := plainGrad(s.ctx, x, labels, classes)
	if s.prev != nil {
		// Snapshot predictions as distillation targets.
		cur := nn.FlattenParams(params)
		nn.SetFlatParams(params, s.prev)
		targets := nn.Softmax(m.Forward(x, false))
		nn.SetFlatParams(params, cur)
		logits := m.Forward(x, true)
		_, dl := nn.SoftCrossEntropy(logits, targets)
		nn.ZeroGrads(params)
		m.Backward(dl)
		dg := nn.FlattenGrads(params)
		lam := float32(s.Distill)
		for i := range g {
			g[i] += lam * dg[i]
		}
	}
	if len(s.memories) > 0 {
		mx, mlabels := batchFrom(s.ctx.RNG, s.memories, 8, m.InC, m.InH, m.InW)
		_, mg := plainGrad(s.ctx, mx, mlabels, s.memClass)
		for i := range g {
			g[i] += 0.5 * mg[i]
		}
	}
	nn.SetFlatGrads(params, g)
	s.ctx.Opt.Step(params)
	return loss
}

// TaskEnd snapshots the model and retains samples.
func (s *Co2L) TaskEnd(ct data.ClientTask) {
	s.prev = nn.FlattenParams(s.ctx.Model.Params())
	n := int(float64(len(ct.Train))*s.MemFrac + 0.5)
	if n < 1 {
		n = 1
	}
	s.memories = append(s.memories, reservoir(s.ctx.RNG, ct.Train, n)...)
	s.memClass = classesOf(s.memories)
}

// MemoryBytes charges the buffer plus the model snapshot.
func (s *Co2L) MemoryBytes() int {
	return sampleBytes(s.memories) + len(s.prev)*4
}

// OverheadFLOPs charges the distillation forward+backward and rehearsal.
func (s *Co2L) OverheadFLOPs() float64 {
	if s.prev == nil {
		return 0
	}
	return 5 * s.ctx.Model.FLOPsPerSample() * 16
}
