package baselines

import "repro/internal/fed"

// Registry maps method names to strategy factories for the 11 baselines.
// FedKNOW itself lives in internal/core; experiments merge the two.
var Registry = map[string]fed.Factory{
	"FedAvg":  NewFedAvg,
	"APFL":    NewAPFL,
	"FedRep":  NewFedRep,
	"EWC":     NewEWC,
	"MAS":     NewMAS,
	"AGS-CL":  NewAGSCL,
	"GEM":     NewGEM,
	"BCN":     NewBCN,
	"Co2L":    NewCo2L,
	"FLCN":    NewFLCN,
	"FedWEIT": NewFedWEIT,
}

// Names lists the baselines in the paper's presentation order (continual
// learning, federated learning, federated continual learning).
var Names = []string{
	"GEM", "BCN", "Co2L", "EWC", "MAS", "AGS-CL",
	"FedAvg", "APFL", "FedRep",
	"FLCN", "FedWEIT",
}
