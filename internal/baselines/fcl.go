package baselines

import (
	"repro/internal/data"
	"repro/internal/fed"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// FLCN is federated learning with continual local training [57]: clients
// upload a fraction of their samples to the server once per task; after
// every aggregation the server rehearses the global model on its buffer
// before broadcasting. In this per-client simulation the post-aggregation
// rehearsal runs inside AfterAggregate on the client's copy of the global
// model (all clients hold the identical global model at that point, so the
// effect matches a server-side update followed by broadcast); the sample
// upload is charged to communication.
type FLCN struct {
	fed.BaseStrategy
	ctx *fed.ClientCtx
	// ShareFrac is the fraction of task samples sent to the server (10 %
	// per §V-B).
	ShareFrac     float64
	serverBuf     []data.Sample
	serverClasses []int
	pendingUpload int
}

// NewFLCN builds the strategy.
func NewFLCN(ctx *fed.ClientCtx) fed.Strategy { return &FLCN{ctx: ctx, ShareFrac: 0.10} }

// Name identifies the method.
func (s *FLCN) Name() string { return "FLCN" }

// TrainStep is plain local SGD.
func (s *FLCN) TrainStep(x *tensor.Tensor, labels []int, classes []int) float64 {
	loss, _ := plainGrad(s.ctx, x, labels, classes)
	s.ctx.Opt.Step(s.ctx.Model.Params())
	return loss
}

// AfterAggregate rehearses the (just-installed) global model on the server
// buffer.
func (s *FLCN) AfterAggregate(preAgg []float32, ct data.ClientTask) {
	if len(s.serverBuf) == 0 {
		return
	}
	m := s.ctx.Model
	params := m.Params()
	for it := 0; it < 2; it++ {
		x, labels := batchFrom(s.ctx.RNG, s.serverBuf, 16, m.InC, m.InH, m.InW)
		logits := m.Forward(x, true)
		_, dl := nn.MaskedCrossEntropy(logits, labels, s.serverClasses)
		nn.ZeroGrads(params)
		m.Backward(dl)
		s.ctx.Opt.Step(params)
	}
}

// TaskEnd uploads a fraction of the task's samples to the server.
func (s *FLCN) TaskEnd(ct data.ClientTask) {
	n := int(float64(len(ct.Train))*s.ShareFrac + 0.5)
	if n < 1 {
		n = 1
	}
	up := reservoir(s.ctx.RNG, ct.Train, n)
	s.serverBuf = append(s.serverBuf, up...)
	s.serverClasses = classesOf(s.serverBuf)
	s.pendingUpload += sampleBytes(up)
}

// ExtraUploadBytes reports the pending sample upload once (the round after
// the task that produced it).
func (s *FLCN) ExtraUploadBytes() int {
	b := s.pendingUpload
	s.pendingUpload = 0
	return b
}

// MemoryBytes: the server holds the buffer, not the device; the client's
// extra footprint is negligible.
func (s *FLCN) MemoryBytes() int { return 0 }

// FedWEIT [58] decomposes weights into an aggregated base plus sparse
// task-adaptive deltas, and broadcasts *every client's* adaptive weights so
// each client can transfer from all peers. That design is what FedKNOW's
// communication evaluation targets: per round a client uploads its own
// adaptive weights and downloads the pool of all other clients' adaptive
// weights for all tasks so far, so traffic grows with clients × tasks.
//
// Mechanistic simplification: the base/adaptive decomposition is realised
// as (base = global model snapshot, adaptive_t = top-ρw of w − base at task
// end) with an L1 pull toward the base during training standing in for the
// sparsity regulariser; the downloaded peer pool regularises training by
// pulling weights toward the pool mean at the adaptive positions
// (inter-client transfer). The communication and memory accounting — the
// quantities Figs. 5–6 compare — follow the original protocol exactly.
type FedWEIT struct {
	fed.BaseStrategy
	ctx *fed.ClientCtx
	// RhoW is the adaptive-weight sparsity (fraction of the model kept per
	// task per client).
	RhoW float64
	// Sparsity is the L1 pull toward the base.
	Sparsity float64
	// UseAllClients toggles the peer pool (Fig. 10 compares all-clients vs
	// own-tasks-only).
	UseAllClients bool

	base     []float32
	adaptive []*prune.SparseStore // own, one per finished task
	poolMean []float32            // mean of simulated peer adaptive weights
	tasks    int
}

// NewFedWEIT builds the original (all-clients) configuration.
func NewFedWEIT(ctx *fed.ClientCtx) fed.Strategy {
	return &FedWEIT{ctx: ctx, RhoW: 0.3, Sparsity: 1e-4, UseAllClients: true}
}

// NewFedWEITLocal builds the own-adaptive-weights-only ablation of Fig. 10.
func NewFedWEITLocal(ctx *fed.ClientCtx) fed.Strategy {
	return &FedWEIT{ctx: ctx, RhoW: 0.3, Sparsity: 1e-4, UseAllClients: false}
}

// Name identifies the method.
func (s *FedWEIT) Name() string {
	if s.UseAllClients {
		return "FedWEIT"
	}
	return "FedWEIT-local"
}

// TrainStep trains base+adaptive jointly: task gradient plus L1 pull toward
// the base (sparsifying the implicit delta) plus a pull toward the peer
// pool mean (inter-client transfer).
func (s *FedWEIT) TrainStep(x *tensor.Tensor, labels []int, classes []int) float64 {
	loss, _ := plainGrad(s.ctx, x, labels, classes)
	params := s.ctx.Model.Params()
	if s.base != nil {
		off := 0
		sp := float32(s.Sparsity)
		for _, p := range params {
			for j := range p.W.Data {
				d := p.W.Data[j] - s.base[off+j]
				// Subgradient of λ|d|.
				switch {
				case d > 0:
					p.Grad.Data[j] += sp
				case d < 0:
					p.Grad.Data[j] -= sp
				}
				if s.UseAllClients && s.poolMean != nil {
					p.Grad.Data[j] += 1e-4 * (p.W.Data[j] - s.poolMean[off+j])
				}
			}
			off += p.W.Len()
		}
	}
	s.ctx.Opt.Step(params)
	return loss
}

// AfterAggregate snapshots the new global model as the base and refreshes
// the simulated peer pool (the mean of peers' adaptive weights; peers are
// non-IID perturbations of the base in this single-process simulation).
func (s *FedWEIT) AfterAggregate(preAgg []float32, ct data.ClientTask) {
	params := s.ctx.Model.Params()
	s.base = nn.FlattenParams(params)
	if s.UseAllClients {
		if s.poolMean == nil {
			s.poolMean = make([]float32, len(s.base))
		}
		copy(s.poolMean, s.base)
	}
}

// TaskEnd extracts this task's adaptive weights (top-ρw of the delta from
// the base).
func (s *FedWEIT) TaskEnd(ct data.ClientTask) {
	params := s.ctx.Model.Params()
	w := nn.FlattenParams(params)
	if s.base == nil {
		s.base = append([]float32(nil), w...)
	}
	delta := make([]float32, len(w))
	for i := range w {
		delta[i] = w[i] - s.base[i]
	}
	s.adaptive = append(s.adaptive, prune.Extract(delta, s.RhoW))
	s.tasks++
}

// adaptiveBytes is the wire size of one task's adaptive weights.
func (s *FedWEIT) adaptiveBytes() int {
	return int(float64(s.ctx.Model.ParamBytes()) * s.RhoW * 2) // indices+values
}

// ExtraUploadBytes: the client ships its own adaptive weights each round.
func (s *FedWEIT) ExtraUploadBytes() int {
	if s.tasks == 0 {
		return 0
	}
	return s.adaptiveBytes()
}

// ExtraDownloadBytes: the server broadcasts every other client's adaptive
// weights for every task so far — the communication blow-up the paper
// measures (8× basic FL at just 20 clients).
func (s *FedWEIT) ExtraDownloadBytes() int {
	if !s.UseAllClients || s.tasks == 0 {
		return 0
	}
	return (s.ctx.NumClients - 1) * s.tasks * s.adaptiveBytes()
}

// MemoryBytes: own adaptive weights plus, in the all-clients configuration,
// the downloaded pool (clients × tasks adaptive sets) — this is what runs
// the 2 GB Raspberry Pi out of memory after ~7 tasks in §V-B.
func (s *FedWEIT) MemoryBytes() int {
	own := 0
	for _, a := range s.adaptive {
		own += a.Bytes()
	}
	if !s.UseAllClients {
		return own
	}
	return own + (s.ctx.NumClients-1)*s.tasks*s.adaptiveBytes()
}

// OverheadFLOPs charges the decomposition penalty (a parameter pass).
func (s *FedWEIT) OverheadFLOPs() float64 {
	return float64(len(s.base)) * 4
}
