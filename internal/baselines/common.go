// Package baselines implements the 11 comparison methods of §V-A: six
// continual-learning methods (GEM, BCN, Co2L, EWC, MAS, AGS-CL), three
// federated-learning methods (FedAvg, APFL, FedRep) and two federated
// continual-learning methods (FLCN, FedWEIT). Each is a fed.Strategy so the
// same engine drives every method under identical protocol, data and time
// accounting.
//
// Fidelity notes: every method implements its defining mechanism (episodic
// gradient projection, balanced rehearsal, contrastive/distilled feature
// preservation, Fisher/sensitivity regularisation, group freezing, model
// mixing, split representation/head aggregation, server-side rehearsal,
// base+adaptive weight decomposition). Full-paper replicas of BCN, Co2L and
// AGS-CL would require machinery orthogonal to this paper's comparisons;
// the simplifications are noted on each type.
package baselines

import (
	"repro/internal/data"
	"repro/internal/fed"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// plainGrad computes the masked-cross-entropy gradient of the client model
// on the batch, leaving it in the parameter gradient accumulators, and
// returns the loss and the flattened gradient.
func plainGrad(ctx *fed.ClientCtx, x *tensor.Tensor, labels []int, classes []int) (float64, []float32) {
	m := ctx.Model
	params := m.Params()
	logits := m.Forward(x, true)
	loss, dl := nn.MaskedCrossEntropy(logits, labels, classes)
	nn.ZeroGrads(params)
	m.Backward(dl)
	return loss, nn.FlattenGrads(params)
}

// sampleBytes estimates the memory cost of retained samples.
func sampleBytes(samples []data.Sample) int {
	total := 0
	for _, s := range samples {
		total += len(s.X)*4 + 8
	}
	return total
}

// reservoir copies up to n randomly chosen samples.
func reservoir(rng *tensor.RNG, samples []data.Sample, n int) []data.Sample {
	if n >= len(samples) {
		return append([]data.Sample(nil), samples...)
	}
	out := make([]data.Sample, 0, n)
	for _, j := range rng.Perm(len(samples))[:n] {
		out = append(out, samples[j])
	}
	return out
}

// batchFrom assembles a batch from retained samples.
func batchFrom(rng *tensor.RNG, samples []data.Sample, n, c, h, w int) (*tensor.Tensor, []int) {
	if n > len(samples) {
		n = len(samples)
	}
	idx := rng.Perm(len(samples))[:n]
	return data.Batch(samples, idx, c, h, w)
}

// classesOf collects the distinct labels present in samples (used when
// replaying memory task-aware).
func classesOf(samples []data.Sample) []int {
	seen := map[int]bool{}
	var out []int
	for _, s := range samples {
		if !seen[s.Y] {
			seen[s.Y] = true
			out = append(out, s.Y)
		}
	}
	return out
}
