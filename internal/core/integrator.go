package core

import (
	"repro/internal/qp"
	"repro/internal/stats"
)

// GradientIntegrator implements §III-D / Eqs. 3–5: given the current task's
// gradient and a set of constraint gradients (signature past tasks, or the
// pre-aggregation gradient during global fine-tuning), it produces the
// minimally-rotated gradient g′ that keeps an acute angle with every
// constraint.
type GradientIntegrator struct {
	// SubsampleN bounds the coordinates used for Wasserstein ranking;
	// full gradients are still used for the QP itself.
	SubsampleN int
}

// NewGradientIntegrator returns an integrator with the default ranking
// subsample size.
func NewGradientIntegrator() *GradientIntegrator {
	return &GradientIntegrator{SubsampleN: 2048}
}

// SelectSignature ranks candidate gradients by Wasserstein dissimilarity to
// g and returns the indices of the k most dissimilar — the signature tasks
// most endangered by an update along g (§III-C).
func (gi *GradientIntegrator) SelectSignature(g []float32, candidates [][]float32, k int) []int {
	return stats.TopKDissimilar(g, candidates, k, func(a, b []float32) float64 {
		return stats.SubsampledWasserstein(a, b, gi.SubsampleN)
	})
}

// Integrate solves the dual QP and returns g′ = Gᵀv + g. When no constraint
// is violated the input gradient is returned unchanged.
func (gi *GradientIntegrator) Integrate(g []float32, constraints [][]float32) []float32 {
	return qp.Integrate(g, constraints)
}

// IntegrateSelected is the per-iteration composite operation: select the k
// most dissimilar candidates, then integrate against exactly those.
func (gi *GradientIntegrator) IntegrateSelected(g []float32, candidates [][]float32, k int) []float32 {
	if len(candidates) == 0 {
		return g
	}
	if k >= len(candidates) {
		return gi.Integrate(g, candidates)
	}
	idx := gi.SelectSignature(g, candidates, k)
	sel := make([][]float32, len(idx))
	for i, j := range idx {
		sel[i] = candidates[j]
	}
	return gi.Integrate(g, sel)
}
