// Package core implements FedKNOW (§III): the knowledge extractor, gradient
// restorer and gradient integrator, and the client-side training strategy
// that ties them together inside the federated engine.
package core

import (
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// TaskKnowledge is one signature-task knowledge record: the top-ρ weights of
// the model after the task converged (Eq. 1), plus the task's class list so
// restored predictions can be interpreted.
type TaskKnowledge struct {
	TaskID  int
	Classes []int
	Store   *prune.SparseStore
}

// KnowledgeExtractor implements §III-B: step 1 is the task training the
// engine already performed; step 2 selects the top-ρ weights by magnitude;
// step 3 fine-tunes the retained weights with everything else frozen.
type KnowledgeExtractor struct {
	Rho           float64
	FinetuneIters int
	FinetuneLR    float64
}

// NewKnowledgeExtractor returns an extractor with the paper's defaults
// (ρ = 10 %, a short masked fine-tune).
func NewKnowledgeExtractor(rho float64) *KnowledgeExtractor {
	return &KnowledgeExtractor{Rho: rho, FinetuneIters: 10, FinetuneLR: 0.01}
}

// Extract builds the knowledge of a finished task from the live model,
// fine-tuning the retained weights on the task's own data (step 3) before
// recording them.
func (e *KnowledgeExtractor) Extract(m *model.Model, ct data.ClientTask, rng *tensor.RNG) *TaskKnowledge {
	params := m.Params()
	flat := nn.FlattenParams(params)
	// Layer-wise top-ρ: select within each parameter tensor so the pruned
	// network keeps a live signal path through every layer (global
	// selection would zero out the layers with the smallest init scale).
	segments := make([]int, len(params))
	for i, p := range params {
		segments[i] = p.W.Len()
	}
	store := prune.ExtractSegments(flat, segments, e.Rho)

	if e.FinetuneIters > 0 && len(ct.Train) > 0 {
		mask := store.Mask()
		saved := append([]float32(nil), flat...)
		// Fine-tune the retained weights in the *pruned* configuration —
		// everything else zeroed — because that is exactly how the gradient
		// restorer will evaluate them later (Eq. 2 forwards the knowledge
		// model, not the full model). Step 3 of §III-B: tune W_i, keep the
		// other weights unchanged (at their pruned value, zero).
		nn.SetFlatParams(params, store.Densify())
		ft := opt.NewSGD(opt.Const{Rate: e.FinetuneLR}, 0, 0)
		batch := 16
		if batch > len(ct.Train) {
			batch = len(ct.Train)
		}
		for it := 0; it < e.FinetuneIters; it++ {
			idx := rng.Perm(len(ct.Train))[:batch]
			x, labels := data.Batch(ct.Train, idx, m.InC, m.InH, m.InW)
			logits := m.Forward(x, true)
			_, dl := nn.MaskedCrossEntropy(logits, labels, ct.Classes)
			nn.ZeroGrads(params)
			m.Backward(dl)
			ft.StepMasked(params, mask)
		}
		store.Refresh(nn.FlattenParams(params))
		// Restore the full model: fine-tuning only shapes the stored copy.
		nn.SetFlatParams(params, saved)
	}
	return &TaskKnowledge{TaskID: ct.TaskID, Classes: ct.Classes, Store: store}
}
