package core

import (
	"repro/internal/data"
	"repro/internal/fed"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Options configure the FedKNOW client.
type Options struct {
	// Rho is the fraction of weights retained as task knowledge (paper
	// default 10 %, searched over {5 %, 10 %, 20 %}).
	Rho float64
	// K is the number of signature-task gradients integrated per iteration
	// (paper default 10, searched over {5, 10, 20}).
	K int
	// FinetuneIters is the number of local fine-tuning iterations after
	// each global aggregation (the paper fine-tunes one epoch; CI scale
	// uses a few batches).
	FinetuneIters int
	// SelectEvery controls how often the signature set is re-ranked: the
	// restorer reconstructs every stored task's gradient on iteration 0 of
	// each round to pick the k signature tasks, then only the selected k
	// are restored per iteration ("only the selected k gradients are
	// calculated to save computational costs", §III-C).
	SelectEvery int
	// DisableIntegration ablates the gradient integrator: knowledge is
	// still extracted, but training steps ignore past-task constraints
	// (isolates the integrator's contribution in ablation benches).
	DisableIntegration bool
	// DisableGlobalGuard ablates the negative-transfer guard: the
	// post-aggregation fine-tune runs without the pre-aggregation gradient
	// constraint.
	DisableGlobalGuard bool
}

// DefaultOptions mirror §V-B.
func DefaultOptions() Options {
	return Options{Rho: 0.10, K: 10, FinetuneIters: 2, SelectEvery: 5}
}

// FedKNOW is the client-side strategy: extractor + restorer + integrator
// wired into the federated engine's hook points.
type FedKNOW struct {
	fed.BaseStrategy
	ctx  *fed.ClientCtx
	opts Options

	extractor  *KnowledgeExtractor
	restorer   *GradientRestorer
	integrator *GradientIntegrator

	knowledge []*TaskKnowledge
	signature []int // indices into knowledge, re-ranked every SelectEvery steps
	step      int

	// per-iteration scratch, reused to keep the training loop allocation-free
	gBuf   []float32
	gaBuf  []float32
	gbBuf  []float32
	curBuf []float32

	// Stats accumulates integration diagnostics for the current task;
	// TaskEnd moves them into StatsByTask.
	Stats       IntegrationStats
	StatsByTask []IntegrationStats
}

// IntegrationStats summarises what the gradient integrator did.
type IntegrationStats struct {
	Steps      int     // TrainStep calls with stored knowledge
	QPRuns     int     // steps where at least one constraint was violated
	CosSum     float64 // Σ cos(g′, g) over constrained steps
	NormRatioS float64 // Σ ‖g′‖/‖g‖ over constrained steps
}

// MeanCos is the average alignment of the integrated gradient with the task
// gradient.
func (s IntegrationStats) MeanCos() float64 {
	if s.Steps == 0 {
		return 1
	}
	return s.CosSum / float64(s.Steps)
}

// ResetStats clears the counters.
func (f *FedKNOW) ResetStats() { f.Stats = IntegrationStats{} }

// New builds a FedKNOW client strategy.
func New(ctx *fed.ClientCtx, opts Options) *FedKNOW {
	if opts.SelectEvery <= 0 {
		opts.SelectEvery = 5
	}
	return &FedKNOW{
		ctx:        ctx,
		opts:       opts,
		extractor:  NewKnowledgeExtractor(opts.Rho),
		restorer:   NewGradientRestorer(ctx.Model),
		integrator: NewGradientIntegrator(),
	}
}

// Factory adapts New to the engine's factory signature.
func Factory(opts Options) fed.Factory {
	return func(ctx *fed.ClientCtx) fed.Strategy { return New(ctx, opts) }
}

// Name identifies the method.
func (f *FedKNOW) Name() string { return "FedKNOW" }

// Knowledge exposes the retained signature-task knowledge (for tests and
// diagnostics).
func (f *FedKNOW) Knowledge() []*TaskKnowledge { return f.knowledge }

// TrainStep implements catastrophic-forgetting prevention (§III-A): the
// current gradient is integrated with the restored gradients of the k most
// dissimilar past tasks before the optimiser step.
//
// The knowledge-model forwards run first, so the task-loss forward and all
// distillation backwards share one live forward pass over the batch.
func (f *FedKNOW) TrainStep(x *tensor.Tensor, labels []int, classes []int) float64 {
	m := f.ctx.Model
	params := m.Params()
	restoring := len(f.knowledge) > 0 && !f.opts.DisableIntegration
	var restoreSet []*TaskKnowledge
	var reRanking bool
	if restoring {
		restoreSet, reRanking = f.restoreSet()
		f.restorer.PrepareTargets(restoreSet, x)
	}

	logits := m.Forward(x, true)
	loss, dl := nn.MaskedCrossEntropy(logits, labels, classes)
	nn.ZeroGrads(params)
	m.Backward(dl)
	f.gBuf = nn.FlattenGradsInto(f.gBuf, params)
	g := f.gBuf

	if restoring {
		restored := f.restorer.RestoredGradients(restoreSet, logits)
		constraints := restored
		if reRanking {
			f.signature = f.integrator.SelectSignature(g, restored, f.opts.K)
			constraints = make([][]float32, len(f.signature))
			for i, j := range f.signature {
				constraints[i] = restored[j]
			}
		}
		g2 := f.integrator.Integrate(g, constraints)
		f.Stats.Steps++
		if &g2[0] != &g[0] {
			f.Stats.QPRuns++
		}
		f.Stats.CosSum += stats.CosineSimilarity(g2, g)
		ng := tensor.NormSlice(g)
		if ng > 0 {
			f.Stats.NormRatioS += tensor.NormSlice(g2) / ng
		}
		nn.SetFlatGrads(params, g2)
	}
	f.ctx.Opt.Step(params)
	f.step++
	return loss
}

// restoreSet picks which stored tasks to restore this step: all of them when
// the store is small or the signature set is being re-ranked (§III-C:
// re-ranking needs every stored task's gradient), otherwise the cached
// signature tasks only.
func (f *FedKNOW) restoreSet() (ks []*TaskKnowledge, reRanking bool) {
	k := f.opts.K
	if k >= len(f.knowledge) {
		return f.knowledge, false
	}
	if f.signature == nil || f.step%f.opts.SelectEvery == 0 {
		return f.knowledge, true
	}
	sel := make([]*TaskKnowledge, len(f.signature))
	for i, j := range f.signature {
		sel[i] = f.knowledge[j]
	}
	return sel, false
}

// AfterAggregate implements negative-transfer prevention (§III-A): after the
// global model is installed, the client fine-tunes on local data, and each
// fine-tuning gradient (the post-aggregation direction) is integrated with
// the gradient computed at the pre-aggregation weights so the update keeps
// an acute angle with both.
func (f *FedKNOW) AfterAggregate(preAgg []float32, ct data.ClientTask) {
	if f.opts.FinetuneIters <= 0 || len(ct.Train) == 0 {
		return
	}
	m := f.ctx.Model
	params := m.Params()
	batch := 16
	if batch > len(ct.Train) {
		batch = len(ct.Train)
	}
	for it := 0; it < f.opts.FinetuneIters; it++ {
		idx := f.ctx.RNG.Perm(len(ct.Train))[:batch]
		x, labels := data.Batch(ct.Train, idx, m.InC, m.InH, m.InW)

		// gᵃ: gradient at the aggregated (current) weights.
		logits := m.Forward(x, true)
		_, dl := nn.MaskedCrossEntropy(logits, labels, ct.Classes)
		nn.ZeroGrads(params)
		m.Backward(dl)
		f.gaBuf = nn.FlattenGradsInto(f.gaBuf, params)
		gAfter := f.gaBuf

		// gᵇ: gradient at the pre-aggregation weights on the same batch.
		f.curBuf = nn.FlattenParamsInto(f.curBuf, params)
		nn.SetFlatParams(params, preAgg)
		logitsB := m.Forward(x, true)
		_, dlB := nn.MaskedCrossEntropy(logitsB, labels, ct.Classes)
		nn.ZeroGrads(params)
		m.Backward(dlB)
		f.gbBuf = nn.FlattenGradsInto(f.gbBuf, params)
		gBefore := f.gbBuf
		nn.SetFlatParams(params, f.curBuf)

		g2 := gAfter
		if !f.opts.DisableGlobalGuard {
			g2 = f.integrator.Integrate(gAfter, [][]float32{gBefore})
		}
		nn.SetFlatGrads(params, g2)
		f.ctx.Opt.Step(params)
	}
}

// TaskEnd extracts and stores the finished task's signature knowledge.
func (f *FedKNOW) TaskEnd(ct data.ClientTask) {
	k := f.extractor.Extract(f.ctx.Model, ct, f.ctx.RNG)
	f.knowledge = append(f.knowledge, k)
	f.signature = nil
	f.StatsByTask = append(f.StatsByTask, f.Stats)
	f.ResetStats()
}

// MemoryBytes charges the sparse knowledge stores against device memory.
func (f *FedKNOW) MemoryBytes() int {
	total := 0
	for _, k := range f.knowledge {
		total += k.Store.Bytes()
	}
	return total
}

// OverheadFLOPs accounts the restored-gradient computation: each restored
// gradient costs ≈ one extra forward (knowledge model) plus one
// forward+backward (distillation) = 3 forward-equivalents × batch.
func (f *FedKNOW) OverheadFLOPs() float64 {
	k := f.opts.K
	if k > len(f.knowledge) {
		k = len(f.knowledge)
	}
	return float64(k) * 3 * f.ctx.Model.FLOPsPerSample() * 16
}
