package core

import (
	"math"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// GradientRestorer implements §III-C / Eq. 2: it reconstructs a past task's
// gradient without stored samples. For past task i, it forwards the current
// batch through the knowledge model (task-i retained weights pasted over a
// zeroed parameter vector), takes the soft predictions as distillation
// targets, and differentiates the cross-entropy between the live model's
// predictions and those targets:
//
//	g_i = ∇ loss(f(W, X_{m+1}), f(W_i, X_{m+1}))
type GradientRestorer struct {
	m *model.Model
	// scratch buffer for swapping parameter vectors
	saved []float32
}

// NewGradientRestorer wraps the live model.
func NewGradientRestorer(m *model.Model) *GradientRestorer {
	return &GradientRestorer{m: m}
}

// Restore computes the restored gradient of one past task on the given
// batch. The model's parameters and gradients are preserved across the call.
func (r *GradientRestorer) Restore(k *TaskKnowledge, x *tensor.Tensor) []float32 {
	params := r.m.Params()
	if r.saved == nil {
		r.saved = make([]float32, nn.NumParams(params))
	}
	copy(r.saved, flatInto(params, nil))

	// Knowledge model forward: retained weights over zeros. Targets are
	// restricted to the task's own classes — the knowledge model's logits
	// are only meaningful there, and the restored gradient should protect
	// exactly that behaviour.
	dense := k.Store.Densify()
	nn.SetFlatParams(params, dense)
	logitsK := r.m.Forward(x, false)
	targets := maskedSoftmax(logitsK, k.Classes)

	// Live model forward + distillation backward, on the same class mask.
	nn.SetFlatParams(params, r.saved)
	logits := r.m.Forward(x, true)
	dl := maskedDistillGrad(logits, targets, k.Classes)
	savedGrads := nn.FlattenGrads(params)
	nn.ZeroGrads(params)
	r.m.Backward(dl)
	g := nn.FlattenGrads(params)
	nn.SetFlatGrads(params, savedGrads)
	return g
}

// RestoreAll restores the gradients of every given knowledge record on the
// batch, in order.
func (r *GradientRestorer) RestoreAll(ks []*TaskKnowledge, x *tensor.Tensor) [][]float32 {
	out := make([][]float32, len(ks))
	for i, k := range ks {
		out[i] = r.Restore(k, x)
	}
	return out
}

// maskedSoftmax computes softmax over only the given classes, zero
// elsewhere.
func maskedSoftmax(logits *tensor.Tensor, classes []int) *tensor.Tensor {
	n, k := logits.Shape[0], logits.Shape[1]
	out := tensor.New(n, k)
	for i := 0; i < n; i++ {
		maxV := float32(-3.4e38)
		for _, c := range classes {
			if v := logits.Data[i*k+c]; v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, c := range classes {
			e := exp32(logits.Data[i*k+c] - maxV)
			out.Data[i*k+c] = e
			sum += float64(e)
		}
		inv := float32(1 / sum)
		for _, c := range classes {
			out.Data[i*k+c] *= inv
		}
	}
	return out
}

// maskedDistillGrad is the gradient of cross-entropy between the live
// model's masked softmax and the target distribution, restricted to the
// task classes.
func maskedDistillGrad(logits, targets *tensor.Tensor, classes []int) *tensor.Tensor {
	n, k := logits.Shape[0], logits.Shape[1]
	p := maskedSoftmax(logits, classes)
	dl := tensor.New(n, k)
	invN := float32(1 / float64(n))
	for i := 0; i < n; i++ {
		for _, c := range classes {
			dl.Data[i*k+c] = (p.Data[i*k+c] - targets.Data[i*k+c]) * invN
		}
	}
	return dl
}

func exp32(v float32) float32 {
	return float32(math.Exp(float64(v)))
}

// flatInto writes the flattened parameters into dst (allocating when nil).
func flatInto(params []*nn.Param, dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, 0, nn.NumParams(params))
		for _, p := range params {
			dst = append(dst, p.W.Data...)
		}
		return dst
	}
	off := 0
	for _, p := range params {
		copy(dst[off:], p.W.Data)
		off += p.W.Len()
	}
	return dst
}
