package core

import (
	"math"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// GradientRestorer implements §III-C / Eq. 2: it reconstructs a past task's
// gradient without stored samples. For past task i, it forwards the current
// batch through the knowledge model (task-i retained weights pasted over a
// zeroed parameter vector), takes the soft predictions as distillation
// targets, and differentiates the cross-entropy between the live model's
// predictions and those targets:
//
//	g_i = ∇ loss(f(W, X_{m+1}), f(W_i, X_{m+1}))
type GradientRestorer struct {
	m *model.Model
	// scratch buffers, reused across restores so the per-iteration restore
	// loop (k past tasks × every local step) performs no allocations.
	saved      []float32
	savedGrads []float32
	dense      []float32
	targets    []*tensor.Tensor
	outBufs    [][]float32
	outView    [][]float32
}

// NewGradientRestorer wraps the live model.
func NewGradientRestorer(m *model.Model) *GradientRestorer {
	return &GradientRestorer{m: m}
}

// Restore computes the restored gradient of one past task on the given
// batch. The model's parameters and gradients are preserved across the call.
// The returned slice is freshly allocated and owned by the caller.
func (r *GradientRestorer) Restore(k *TaskKnowledge, x *tensor.Tensor) []float32 {
	return append([]float32(nil), r.RestoreAll([]*TaskKnowledge{k}, x)[0]...)
}

// RestoreAll restores the gradients of every given knowledge record on the
// batch, in order. The returned slices live in buffers owned by the restorer
// and are valid until the next RestoreAll call.
//
// The live model's forward pass depends only on the live weights and the
// batch, so it runs once and its cached activations serve every task's
// distillation backward — backward passes read but never mutate the forward
// caches. The restored gradients are bitwise identical to restoring each
// task in full; the one behavioural difference is that BatchNorm running
// statistics now see a single train-mode forward per call instead of one
// per task (arguably the correct count — restoration is not extra
// training), which shifts eval-mode trajectories slightly versus the seed.
func (r *GradientRestorer) RestoreAll(ks []*TaskKnowledge, x *tensor.Tensor) [][]float32 {
	if len(ks) == 0 {
		return nil
	}
	r.PrepareTargets(ks, x)
	logits := r.m.Forward(x, true)
	return r.RestoredGradients(ks, logits)
}

// PrepareTargets runs phase 1 of restoration: it forwards the batch through
// each task's knowledge model (retained weights pasted over zeros) and
// stores the masked soft targets. Targets are restricted to each task's own
// classes — the knowledge model's logits are only meaningful there, and the
// restored gradient should protect exactly that behaviour. On return the
// live parameters are re-installed; the caller must run one live forward on
// the same batch (training loops fold it into their task-loss forward) and
// then call RestoredGradients.
func (r *GradientRestorer) PrepareTargets(ks []*TaskKnowledge, x *tensor.Tensor) {
	params := r.m.Params()
	r.saved = nn.FlattenParamsInto(r.saved, params)
	for len(r.targets) < len(ks) {
		r.targets = append(r.targets, nil)
	}
	for i, k := range ks {
		r.dense = k.Store.DensifyInto(r.dense)
		nn.SetFlatParams(params, r.dense)
		logitsK := r.m.Forward(x, false)
		r.targets[i] = maskedSoftmaxInto(r.targets[i], logitsK, k.Classes)
	}
	nn.SetFlatParams(params, r.saved)
}

// RestoredGradients is phase 2: given the logits of a live forward on the
// prepared batch (whose layer caches must still be intact), it runs one
// distillation backward per prepared task and returns the restored
// gradients. The parameters' gradient accumulators are preserved across the
// call. The returned slices are valid until the next phase-2 call.
func (r *GradientRestorer) RestoredGradients(ks []*TaskKnowledge, logits *tensor.Tensor) [][]float32 {
	params := r.m.Params()
	r.savedGrads = nn.FlattenGradsInto(r.savedGrads, params)
	for len(r.outBufs) < len(ks) {
		r.outBufs = append(r.outBufs, nil)
	}
	r.outView = r.outView[:0]
	for i, k := range ks {
		dl := maskedDistillGrad(logits, r.targets[i], k.Classes)
		nn.ZeroGrads(params)
		r.m.Backward(dl)
		r.outBufs[i] = nn.FlattenGradsInto(r.outBufs[i], params)
		r.outView = append(r.outView, r.outBufs[i])
	}
	nn.SetFlatGrads(params, r.savedGrads)
	return r.outView
}

// maskedSoftmaxInto is maskedSoftmax writing into a reused buffer.
func maskedSoftmaxInto(dst *tensor.Tensor, logits *tensor.Tensor, classes []int) *tensor.Tensor {
	dst = tensor.Ensure(dst, logits.Shape...)
	clear(dst.Data)
	maskedSoftmaxTo(dst, logits, classes)
	return dst
}

// maskedSoftmax computes softmax over only the given classes, zero
// elsewhere.
func maskedSoftmax(logits *tensor.Tensor, classes []int) *tensor.Tensor {
	out := tensor.New(logits.Shape...)
	maskedSoftmaxTo(out, logits, classes)
	return out
}

func maskedSoftmaxTo(out, logits *tensor.Tensor, classes []int) {
	n, k := logits.Shape[0], logits.Shape[1]
	for i := 0; i < n; i++ {
		maxV := float32(-3.4e38)
		for _, c := range classes {
			if v := logits.Data[i*k+c]; v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, c := range classes {
			e := exp32(logits.Data[i*k+c] - maxV)
			out.Data[i*k+c] = e
			sum += float64(e)
		}
		inv := float32(1 / sum)
		for _, c := range classes {
			out.Data[i*k+c] *= inv
		}
	}
}

// maskedDistillGrad is the gradient of cross-entropy between the live
// model's masked softmax and the target distribution, restricted to the
// task classes.
func maskedDistillGrad(logits, targets *tensor.Tensor, classes []int) *tensor.Tensor {
	n, k := logits.Shape[0], logits.Shape[1]
	p := maskedSoftmax(logits, classes)
	dl := tensor.New(n, k)
	invN := float32(1 / float64(n))
	for i := 0; i < n; i++ {
		for _, c := range classes {
			dl.Data[i*k+c] = (p.Data[i*k+c] - targets.Data[i*k+c]) * invN
		}
	}
	return dl
}

func exp32(v float32) float32 {
	return float32(math.Exp(float64(v)))
}
