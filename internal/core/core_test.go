package core

import (
	"testing"

	"repro/internal/data"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

func tinyModel(rng *tensor.RNG) *model.Model {
	return model.MustBuild("SixCNN", 8, 3, 12, 12, 1, rng)
}

func tinyClientTask(rng *tensor.RNG, classes []int) data.ClientTask {
	ds := data.Generate(data.Config{Name: "t", NumClasses: 8, TrainPerClass: 8,
		TestPerClass: 3, C: 3, H: 12, W: 12, Noise: 0.3, Seed: rng.Uint64()})
	ct := data.ClientTask{TaskID: 0, Classes: classes}
	for _, s := range ds.Train {
		for _, c := range classes {
			if s.Y == c {
				ct.Train = append(ct.Train, s)
			}
		}
	}
	for _, s := range ds.Test {
		for _, c := range classes {
			if s.Y == c {
				ct.Test = append(ct.Test, s)
			}
		}
	}
	return ct
}

func TestExtractorKeepsRhoFraction(t *testing.T) {
	rng := tensor.NewRNG(1)
	m := tinyModel(rng.Fork(1))
	ct := tinyClientTask(rng.Fork(2), []int{0, 1})
	e := NewKnowledgeExtractor(0.1)
	k := e.Extract(m, ct, rng.Fork(3))
	want := (m.NumParams() + 5) / 10 // ≈ 10 %
	got := k.Store.Len()
	if got < want-2 || got > want+2 {
		t.Fatalf("retained %d of %d, want ≈ %d", got, m.NumParams(), want)
	}
	if k.TaskID != ct.TaskID {
		t.Fatal("task id not recorded")
	}
}

func TestExtractorPreservesLiveModel(t *testing.T) {
	rng := tensor.NewRNG(2)
	m := tinyModel(rng.Fork(1))
	before := nn.FlattenParams(m.Params())
	ct := tinyClientTask(rng.Fork(2), []int{0, 1})
	NewKnowledgeExtractor(0.1).Extract(m, ct, rng.Fork(3))
	after := nn.FlattenParams(m.Params())
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("extraction must not mutate the live model")
		}
	}
}

func TestExtractorFinetunesStoredCopy(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := tinyModel(rng.Fork(1))
	ct := tinyClientTask(rng.Fork(2), []int{0, 1})
	e := NewKnowledgeExtractor(0.1)
	e.FinetuneIters = 5
	k := e.Extract(m, ct, rng.Fork(3))
	// Fine-tuning must move at least one stored value away from the raw
	// extraction of the same weights.
	raw := nn.FlattenParams(m.Params())
	moved := false
	for i, idx := range k.Store.Indices {
		if k.Store.Values[i] != raw[idx] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("fine-tune did not update stored knowledge")
	}
}

func TestRestorerPreservesModelState(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := tinyModel(rng.Fork(1))
	ct := tinyClientTask(rng.Fork(2), []int{0, 1})
	k := NewKnowledgeExtractor(0.1).Extract(m, ct, rng.Fork(3))
	r := NewGradientRestorer(m)
	before := nn.FlattenParams(m.Params())
	x := tensor.Randn(rng.Fork(5), 1, 4, 3, 12, 12)
	g := r.Restore(k, x)
	after := nn.FlattenParams(m.Params())
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("restore must not mutate live parameters")
		}
	}
	if len(g) != m.NumParams() {
		t.Fatalf("gradient length %d, want %d", len(g), m.NumParams())
	}
}

func TestRestorerProducesNonZeroGradient(t *testing.T) {
	rng := tensor.NewRNG(5)
	m := tinyModel(rng.Fork(1))
	ct := tinyClientTask(rng.Fork(2), []int{0, 1})
	k := NewKnowledgeExtractor(0.1).Extract(m, ct, rng.Fork(3))
	// Perturb the live model so it disagrees with the knowledge model.
	for _, p := range m.Params() {
		for i := range p.W.Data {
			p.W.Data[i] += 0.05
		}
	}
	m.Params()
	x := tensor.Randn(rng.Fork(6), 1, 4, 3, 12, 12)
	g := NewGradientRestorer(m).Restore(k, x)
	var norm float64
	for _, v := range g {
		norm += float64(v) * float64(v)
	}
	if norm == 0 {
		t.Fatal("restored gradient is identically zero")
	}
}

func TestRestoreAllOrder(t *testing.T) {
	rng := tensor.NewRNG(6)
	m := tinyModel(rng.Fork(1))
	ctA := tinyClientTask(rng.Fork(2), []int{0, 1})
	ctB := tinyClientTask(rng.Fork(3), []int{2, 3})
	e := NewKnowledgeExtractor(0.1)
	ks := []*TaskKnowledge{e.Extract(m, ctA, rng.Fork(4)), e.Extract(m, ctB, rng.Fork(5))}
	x := tensor.Randn(rng.Fork(7), 1, 2, 3, 12, 12)
	r := NewGradientRestorer(m)
	all := r.RestoreAll(ks, x)
	if len(all) != 2 {
		t.Fatalf("RestoreAll returned %d gradients", len(all))
	}
	one := r.Restore(ks[0], x)
	for i := range one {
		if all[0][i] != one[i] {
			t.Fatal("RestoreAll must match per-task Restore, in order")
		}
	}
}

func TestIntegratorSelectSignature(t *testing.T) {
	gi := NewGradientIntegrator()
	g := []float32{0, 0, 0, 0}
	cands := [][]float32{
		{0.1, 0.1, 0.1, 0.1},
		{9, 9, 9, 9},
		{1, 1, 1, 1},
	}
	idx := gi.SelectSignature(g, cands, 2)
	if idx[0] != 1 || idx[1] != 2 {
		t.Fatalf("signature = %v, want [1 2]", idx)
	}
}

func TestIntegrateSelectedSatisfiesSelectedConstraints(t *testing.T) {
	gi := NewGradientIntegrator()
	rng := tensor.NewRNG(8)
	dim := 32
	g := make([]float32, dim)
	rng.FillNorm(g, 1)
	cands := make([][]float32, 6)
	for i := range cands {
		cands[i] = make([]float32, dim)
		rng.FillNorm(cands[i], 1)
	}
	out := gi.IntegrateSelected(g, cands, 3)
	if len(out) != dim {
		t.Fatal("length mismatch")
	}
	// With k >= len(candidates) all constraints must hold.
	out2 := gi.IntegrateSelected(g, cands, 10)
	for _, c := range cands {
		if tensor.DotSlice(c, out2) < -1e-3 {
			t.Fatal("constraint violated with k >= all candidates")
		}
	}
}

func newTestCtx(rng *tensor.RNG) *fed.ClientCtx {
	m := tinyModel(rng.Fork(1))
	return &fed.ClientCtx{
		ID: 0, NumClients: 1, Model: m,
		Opt: opt.NewSGD(opt.Const{Rate: 0.01}, 0, 0),
		RNG: rng.Fork(2), NumClasses: 8,
	}
}

func TestFedKNOWTrainStepReducesLoss(t *testing.T) {
	rng := tensor.NewRNG(9)
	ctx := newTestCtx(rng)
	f := New(ctx, Options{Rho: 0.1, K: 2, FinetuneIters: 0})
	ct := tinyClientTask(rng.Fork(3), []int{0, 1, 2})
	var first, last float64
	for step := 0; step < 30; step++ {
		idx := ctx.RNG.Perm(len(ct.Train))[:8]
		x, labels := data.Batch(ct.Train, idx, 3, 12, 12)
		loss := f.TrainStep(x, labels, ct.Classes)
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
}

func TestFedKNOWTaskEndAccumulatesKnowledge(t *testing.T) {
	rng := tensor.NewRNG(10)
	ctx := newTestCtx(rng)
	f := New(ctx, DefaultOptions())
	f.TaskEnd(tinyClientTask(rng.Fork(3), []int{0, 1}))
	f.TaskEnd(tinyClientTask(rng.Fork(4), []int{2, 3}))
	if len(f.Knowledge()) != 2 {
		t.Fatalf("knowledge count %d", len(f.Knowledge()))
	}
	if f.MemoryBytes() <= 0 {
		t.Fatal("memory accounting missing")
	}
	// ρ = 10 % → each record stores ≈ numParams/10 entries at 8 bytes.
	perTask := f.MemoryBytes() / 2
	expect := ctx.Model.NumParams() / 10 * 8
	if perTask < expect/2 || perTask > expect*2 {
		t.Fatalf("per-task knowledge %d bytes, expected ≈ %d", perTask, expect)
	}
}

func TestFedKNOWTrainStepWithKnowledgeIntegrates(t *testing.T) {
	rng := tensor.NewRNG(11)
	ctx := newTestCtx(rng)
	f := New(ctx, Options{Rho: 0.1, K: 1, FinetuneIters: 0, SelectEvery: 2})
	ctOld := tinyClientTask(rng.Fork(3), []int{0, 1})
	f.TaskEnd(ctOld)
	ctNew := tinyClientTask(rng.Fork(4), []int{4, 5})
	for step := 0; step < 6; step++ {
		idx := ctx.RNG.Perm(len(ctNew.Train))[:6]
		x, labels := data.Batch(ctNew.Train, idx, 3, 12, 12)
		loss := f.TrainStep(x, labels, ctNew.Classes)
		if loss != loss {
			t.Fatal("NaN loss during integrated training")
		}
	}
}

func TestFedKNOWAfterAggregatePreservesShape(t *testing.T) {
	rng := tensor.NewRNG(12)
	ctx := newTestCtx(rng)
	f := New(ctx, Options{Rho: 0.1, K: 2, FinetuneIters: 2})
	ct := tinyClientTask(rng.Fork(3), []int{0, 1})
	pre := nn.FlattenParams(ctx.Model.Params())
	// Shift the model as if the server replaced it.
	for _, p := range ctx.Model.Params() {
		for i := range p.W.Data {
			p.W.Data[i] += 0.01
		}
	}
	f.AfterAggregate(pre, ct)
	after := nn.FlattenParams(ctx.Model.Params())
	if len(after) != len(pre) {
		t.Fatal("parameter count changed")
	}
	moved := false
	for i := range after {
		if after[i] != pre[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("fine-tuning did not move weights")
	}
}

func TestFedKNOWOverheadGrowsWithKnowledge(t *testing.T) {
	rng := tensor.NewRNG(13)
	ctx := newTestCtx(rng)
	f := New(ctx, Options{Rho: 0.1, K: 5, FinetuneIters: 0})
	if f.OverheadFLOPs() != 0 {
		t.Fatal("no knowledge → no overhead")
	}
	f.TaskEnd(tinyClientTask(rng.Fork(3), []int{0, 1}))
	o1 := f.OverheadFLOPs()
	f.TaskEnd(tinyClientTask(rng.Fork(4), []int{2, 3}))
	o2 := f.OverheadFLOPs()
	if !(o2 > o1 && o1 > 0) {
		t.Fatalf("overhead must grow until k tasks stored: %v, %v", o1, o2)
	}
}

func TestFactoryProducesIndependentStrategies(t *testing.T) {
	rng := tensor.NewRNG(14)
	factory := Factory(DefaultOptions())
	a := factory(newTestCtx(rng.Fork(1)))
	b := factory(newTestCtx(rng.Fork(2)))
	if a == b {
		t.Fatal("factory must build fresh strategies")
	}
	if a.Name() != "FedKNOW" {
		t.Fatalf("Name = %s", a.Name())
	}
}
