package qp

import (
	"testing"

	"repro/internal/tensor"
)

// BenchmarkIntegrate measures the per-iteration cost of gradient
// integration at the paper's k = 10 with a realistic gradient size.
func BenchmarkIntegrate(b *testing.B) {
	r := tensor.NewRNG(1)
	dim := 60000
	g := make([]float32, dim)
	r.FillNorm(g, 1)
	G := make([][]float32, 10)
	for i := range G {
		G[i] = make([]float32, dim)
		r.FillNorm(G[i], 1)
		// Force violations so the QP actually runs.
		for j := range G[i] {
			G[i][j] -= 0.02 * g[j]
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Integrate(g, G)
	}
}

func BenchmarkSolveDual(b *testing.B) {
	r := tensor.NewRNG(2)
	k := 10
	a := make([][]float64, k)
	bb := make([]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
		for j := range a[i] {
			a[i][j] = r.Norm()
		}
		a[i][i] += float64(k) // diagonally dominant PSD-ish
		bb[i] = r.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveDual(a, bb, 200, 1e-9)
	}
}
