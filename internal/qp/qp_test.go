package qp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSolveDualUnconstrainedInterior(t *testing.T) {
	// min ½v² − 2v, v ≥ 0 → v = 2.
	res := SolveDual([][]float64{{1}}, []float64{-2}, 100, 1e-12)
	if !res.Converged || math.Abs(res.V[0]-2) > 1e-9 {
		t.Fatalf("v = %v", res.V)
	}
}

func TestSolveDualActiveBound(t *testing.T) {
	// min ½v² + 3v, v ≥ 0 → v = 0 (bound active).
	res := SolveDual([][]float64{{1}}, []float64{3}, 100, 1e-12)
	if res.V[0] != 0 {
		t.Fatalf("v = %v, want 0", res.V)
	}
}

func TestSolveDualTwoDim(t *testing.T) {
	// A = [[2,0],[0,2]], b = [-2, 4] → v = (1, 0).
	res := SolveDual([][]float64{{2, 0}, {0, 2}}, []float64{-2, 4}, 100, 1e-12)
	if math.Abs(res.V[0]-1) > 1e-9 || res.V[1] != 0 {
		t.Fatalf("v = %v, want (1,0)", res.V)
	}
}

func TestSolveDualEmptyInstance(t *testing.T) {
	res := SolveDual(nil, nil, 10, 1e-9)
	if !res.Converged || len(res.V) != 0 {
		t.Fatalf("empty instance: %+v", res)
	}
}

func TestSolveDualZeroDiagonal(t *testing.T) {
	// A degenerate zero constraint must not produce NaN.
	res := SolveDual([][]float64{{0}}, []float64{1}, 50, 1e-9)
	if math.IsNaN(res.V[0]) {
		t.Fatal("NaN dual variable")
	}
}

// bruteForceDual enumerates active sets for k ≤ 3 and solves each reduced
// unconstrained system exactly, returning the best feasible v.
func bruteForceDual(a [][]float64, b []float64) []float64 {
	k := len(b)
	best := make([]float64, k)
	bestObj := math.Inf(1)
	obj := func(v []float64) float64 {
		s := 0.0
		for i := 0; i < k; i++ {
			s += b[i] * v[i]
			for j := 0; j < k; j++ {
				s += 0.5 * v[i] * a[i][j] * v[j]
			}
		}
		return s
	}
	for mask := 0; mask < (1 << k); mask++ {
		// Free set = bits set in mask. Solve A_ff v_f = -b_f by Gaussian
		// elimination; clamp others to 0.
		var free []int
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				free = append(free, i)
			}
		}
		m := len(free)
		v := make([]float64, k)
		if m > 0 {
			// Build and solve the m×m system.
			mat := make([][]float64, m)
			rhs := make([]float64, m)
			for i, fi := range free {
				mat[i] = make([]float64, m)
				for j, fj := range free {
					mat[i][j] = a[fi][fj]
				}
				rhs[i] = -b[fi]
			}
			ok := gauss(mat, rhs)
			if !ok {
				continue
			}
			feasible := true
			for i, fi := range free {
				if rhs[i] < -1e-9 {
					feasible = false
					break
				}
				v[fi] = rhs[i]
			}
			if !feasible {
				continue
			}
		}
		if o := obj(v); o < bestObj {
			bestObj = o
			copy(best, v)
		}
	}
	return best
}

func gauss(a [][]float64, b []float64) bool {
	n := len(b)
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for i := 0; i < n; i++ {
		b[i] /= a[i][i]
	}
	return true
}

func TestSolveDualMatchesBruteForce(t *testing.T) {
	rng := tensor.NewRNG(5)
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(3)
		dim := 4 + rng.Intn(4)
		// Build A = G Gᵀ from random G so A is PSD.
		G := make([][]float64, k)
		for i := range G {
			G[i] = make([]float64, dim)
			for j := range G[i] {
				G[i][j] = rng.Norm()
			}
		}
		a := make([][]float64, k)
		b := make([]float64, k)
		for i := 0; i < k; i++ {
			a[i] = make([]float64, k)
			for j := 0; j < k; j++ {
				for d := 0; d < dim; d++ {
					a[i][j] += G[i][d] * G[j][d]
				}
			}
			b[i] = 2*rng.Norm() - 1
		}
		got := SolveDual(a, b, 2000, 1e-12)
		want := bruteForceDual(a, b)
		objective := func(v []float64) float64 {
			s := 0.0
			for i := 0; i < k; i++ {
				s += b[i] * v[i]
				for j := 0; j < k; j++ {
					s += 0.5 * v[i] * a[i][j] * v[j]
				}
			}
			return s
		}
		if objective(got.V) > objective(want)+1e-6 {
			t.Fatalf("trial %d: cd objective %v worse than brute force %v (v=%v want %v)",
				trial, objective(got.V), objective(want), got.V, want)
		}
	}
}

func TestIntegrateFastPathLeavesGradientAlone(t *testing.T) {
	g := []float32{1, 0}
	G := [][]float32{{1, 0.5}, {0.5, 1}}
	out := Integrate(g, G)
	if &out[0] != &g[0] {
		t.Fatal("fast path should return g unchanged when no constraint violated")
	}
}

func TestIntegrateResolvesObtuseAngle(t *testing.T) {
	// g points opposite to the constraint: integration must rotate it to
	// at least orthogonal.
	g := []float32{-1, 0}
	G := [][]float32{{1, 0}}
	out := Integrate(g, G)
	if d := tensor.DotSlice(G[0], out); d < -1e-5 {
		t.Fatalf("constraint still violated: dot = %v", d)
	}
}

func TestIntegrateEmptyConstraints(t *testing.T) {
	g := []float32{1, 2, 3}
	out := Integrate(g, nil)
	for i := range g {
		if out[i] != g[i] {
			t.Fatal("no constraints must be identity")
		}
	}
}

func TestIntegratePreservesDescentDirection(t *testing.T) {
	// The integrated gradient should stay positively correlated with the
	// original one (the QP minimises the rotation).
	rng := tensor.NewRNG(7)
	for trial := 0; trial < 20; trial++ {
		dim := 10
		g := make([]float32, dim)
		rng.FillNorm(g, 1)
		G := make([][]float32, 3)
		for i := range G {
			G[i] = make([]float32, dim)
			rng.FillNorm(G[i], 1)
		}
		out := Integrate(g, G)
		if tensor.DotSlice(out, g) < -1e-6 {
			t.Fatalf("trial %d: integrated gradient opposes original", trial)
		}
	}
}

// TestIntegrateSatisfiesAllConstraints is the paper's core invariant
// (Gg′ ≥ 0), checked property-style over random instances.
func TestIntegrateSatisfiesAllConstraints(t *testing.T) {
	rng := tensor.NewRNG(11)
	f := func(seed uint16) bool {
		r := rng.Fork(uint64(seed))
		dim := 5 + r.Intn(20)
		k := 1 + r.Intn(6)
		g := make([]float32, dim)
		r.FillNorm(g, 1)
		G := make([][]float32, k)
		for i := range G {
			G[i] = make([]float32, dim)
			r.FillNorm(G[i], 1)
		}
		out := Integrate(g, G)
		for _, gi := range G {
			// Small negative slack tolerated: coordinate descent converges
			// to tolerance, not exactly.
			if tensor.DotSlice(gi, out) < -1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestViolations(t *testing.T) {
	g := []float32{1, 0}
	G := [][]float32{{1, 0}, {-1, 0}, {0, 1}}
	if got := Violations(g, G); got != 1 {
		t.Fatalf("Violations = %d, want 1", got)
	}
}
