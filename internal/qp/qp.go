// Package qp solves the small non-negative quadratic programs at the heart
// of gradient integration (Eq. 3–5 of the FedKNOW paper, after the GEM dual
// construction):
//
//	min_v  ½ vᵀ G Gᵀ v + gᵀ Gᵀ v    s.t.  v ≥ 0
//
// where G stacks k constraint gradients as rows and g is the current task's
// gradient. The primal solution g′ = Gᵀv + g then satisfies Gg′ ≥ 0, i.e.
// the integrated gradient keeps an acute (or right) angle with every
// constraint gradient while staying as close to g as possible.
//
// k is small (≤ ~20) so exact projected coordinate descent converges in a
// handful of sweeps; the dense k×k Gram matrix is the only quadratic cost.
package qp

import "repro/internal/tensor"

// Result carries the dual solution and diagnostics.
type Result struct {
	V          []float64 // dual variables, length k
	Iterations int       // coordinate-descent sweeps performed
	Converged  bool
}

// SolveDual minimises ½vᵀAv + bᵀv subject to v ≥ 0, where A = G·Gᵀ (k×k,
// symmetric positive semi-definite) and b = G·g. It uses cyclic projected
// coordinate descent, which for this problem is exact per-coordinate:
// v_i ← max(0, v_i − (Av + b)_i / A_ii).
func SolveDual(a [][]float64, b []float64, maxSweeps int, tol float64) Result {
	k := len(b)
	v := make([]float64, k)
	if k == 0 {
		return Result{V: v, Converged: true}
	}
	if maxSweeps <= 0 {
		maxSweeps = 200
	}
	for sweep := 1; sweep <= maxSweeps; sweep++ {
		maxDelta := 0.0
		for i := 0; i < k; i++ {
			aii := a[i][i]
			if aii <= 1e-12 {
				// Degenerate (zero) constraint gradient: its dual has no
				// curvature; leave it at the projection boundary.
				if b[i] < 0 {
					// unbounded direction in theory; clamp growth.
					nv := v[i] + 1
					if nv-v[i] > maxDelta {
						maxDelta = nv - v[i]
					}
					v[i] = nv
				}
				continue
			}
			grad := b[i]
			for j := 0; j < k; j++ {
				grad += a[i][j] * v[j]
			}
			nv := v[i] - grad/aii
			if nv < 0 {
				nv = 0
			}
			d := nv - v[i]
			if d < 0 {
				d = -d
			}
			if d > maxDelta {
				maxDelta = d
			}
			v[i] = nv
		}
		if maxDelta < tol {
			return Result{V: v, Iterations: sweep, Converged: true}
		}
	}
	return Result{V: v, Iterations: maxSweeps, Converged: false}
}

// Integrate computes the FedKNOW/GEM integrated gradient. G holds k
// constraint gradients (each of the same length as g). If g already has a
// non-negative dot product with every row of G it is returned unchanged
// (fast path: no QP needed). Otherwise the dual QP is solved and
// g′ = Gᵀv + g is returned as a fresh slice.
func Integrate(g []float32, G [][]float32) []float32 {
	k := len(G)
	if k == 0 {
		return g
	}
	violated := false
	for _, gi := range G {
		if tensor.DotSlice(gi, g) < 0 {
			violated = true
			break
		}
	}
	if !violated {
		return g
	}
	// Gram matrix A = G Gᵀ and b = G g.
	a := make([][]float64, k)
	b := make([]float64, k)
	for i := 0; i < k; i++ {
		a[i] = make([]float64, k)
		for j := 0; j <= i; j++ {
			d := tensor.DotSlice(G[i], G[j])
			a[i][j] = d
			a[j][i] = d
		}
		b[i] = tensor.DotSlice(G[i], g)
	}
	res := SolveDual(a, b, 200, 1e-9)
	out := make([]float32, len(g))
	copy(out, g)
	for i, vi := range res.V {
		if vi != 0 {
			tensor.AxpySlice(out, float32(vi), G[i])
		}
	}
	// Cap ‖g′‖ at ‖g‖: with many near-conflicting constraints the dual
	// correction Gᵀv can dwarf the task gradient and a single step would
	// blow past the loss basin. Positive rescaling preserves every angle
	// constraint (G(αg′) = αGg′ ≥ 0) while keeping the step size bounded
	// by the task's own gradient.
	ng, nOut := tensor.NormSlice(g), tensor.NormSlice(out)
	if nOut > ng && nOut > 0 {
		scale := float32(ng / nOut)
		for i := range out {
			out[i] *= scale
		}
	}
	return out
}

// Violations counts how many constraint gradients have a negative dot
// product with g (diagnostic used in tests and experiment logging).
func Violations(g []float32, G [][]float32) int {
	n := 0
	for _, gi := range G {
		if tensor.DotSlice(gi, g) < -1e-9 {
			n++
		}
	}
	return n
}
