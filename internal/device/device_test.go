package device

import (
	"math"
	"strings"
	"testing"
)

func TestJetson20Composition(t *testing.T) {
	c := Jetson20()
	if c.Size() != 20 {
		t.Fatalf("size = %d", c.Size())
	}
	count := map[string]int{}
	for _, d := range c.Devices {
		count[d.Name]++
	}
	if count["Jetson AGX"] != 2 || count["Jetson TX2"] != 2 ||
		count["Jetson Xavier NX"] != 8 || count["Jetson Nano"] != 8 {
		t.Fatalf("composition %v", count)
	}
}

func TestMixed30AddsRaspberryPis(t *testing.T) {
	c := Mixed30()
	if c.Size() != 30 {
		t.Fatalf("size = %d", c.Size())
	}
	pis := 0
	twoGB := 0
	for _, d := range c.Devices {
		if strings.Contains(d.Name, "Raspberry") {
			pis++
			if d.MemBytes == 2<<30 {
				twoGB++
			}
		}
	}
	if pis != 10 || twoGB != 1 {
		t.Fatalf("pis=%d twoGB=%d", pis, twoGB)
	}
}

func TestUniform(t *testing.T) {
	c := Uniform(50, JetsonNano)
	if c.Size() != 50 || c.Devices[49].Name != "Jetson Nano" {
		t.Fatal("Uniform cluster wrong")
	}
}

func TestTrainTimeScalesInversely(t *testing.T) {
	work := 1e12
	fast := JetsonAGX.TrainTime(work)
	slow := RaspberryPi(4).TrainTime(work)
	if slow <= fast {
		t.Fatal("Pi must be slower than AGX")
	}
	ratio := slow / fast
	if ratio < 10 || ratio > 100 {
		t.Fatalf("Pi/AGX ratio %v outside the paper's ~12–40× band", ratio)
	}
}

func TestCommTime(t *testing.T) {
	if got := CommTime(1024*1024, 1024*1024); math.Abs(got-1) > 1e-12 {
		t.Fatalf("1MB at 1MB/s = %v s", got)
	}
	if CommTime(100, 0) != 0 {
		t.Fatal("zero bandwidth must not divide by zero")
	}
}

func TestFig6BandwidthsRange(t *testing.T) {
	if len(Fig6Bandwidths) != 8 {
		t.Fatalf("%d bandwidths, want 8", len(Fig6Bandwidths))
	}
	if Fig6Bandwidths[0] != 50*1024 || Fig6Bandwidths[7] != 10*1024*1024 {
		t.Fatal("sweep must span 50KB/s to 10MB/s")
	}
	for i := 1; i < len(Fig6Bandwidths); i++ {
		if Fig6Bandwidths[i] <= Fig6Bandwidths[i-1] {
			t.Fatal("bandwidths must ascend")
		}
	}
}

func TestBandwidthLabel(t *testing.T) {
	if BandwidthLabel(50*1024) != "50KB/s" {
		t.Fatalf("label %q", BandwidthLabel(50*1024))
	}
	if BandwidthLabel(2*1024*1024) != "2MB/s" {
		t.Fatalf("label %q", BandwidthLabel(2*1024*1024))
	}
}
