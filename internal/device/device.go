// Package device models the heterogeneous edge testbed of §V-A: Jetson TX2,
// Nano, Xavier NX, AGX, and Raspberry Pi 4B boards. Real boards are a
// hardware gate this reproduction cannot use, so each device is an analytic
// model — an effective training throughput (FLOP/s achieved on small-batch
// DNN training) and a memory capacity. Simulated training time is
// work / throughput; communication time is payload / bandwidth. This
// reproduces the *shape* of the paper's time axes (who is slower, by what
// factor, when a device runs out of memory), not the absolute hours.
package device

import "fmt"

// Device is one edge board.
type Device struct {
	Name     string
	FLOPS    float64 // effective training throughput, FLOP/s
	MemBytes int64   // memory capacity available to training
}

const gb = int64(1) << 30

// The five board types. Throughputs are calibrated to the relative training
// speeds the paper reports (Jetson family within ~5× of each other; the
// CPU-only Raspberry Pi ~12–20× slower than the Jetson average, matching the
// "delays training by an average of 12 times" observation in §V-B).
var (
	JetsonAGX      = Device{Name: "Jetson AGX", FLOPS: 1.0e12, MemBytes: 32 * gb}
	JetsonXavierNX = Device{Name: "Jetson Xavier NX", FLOPS: 6.0e11, MemBytes: 16 * gb}
	JetsonTX2      = Device{Name: "Jetson TX2", FLOPS: 4.0e11, MemBytes: 8 * gb}
	JetsonNano     = Device{Name: "Jetson Nano", FLOPS: 2.0e11, MemBytes: 4 * gb}
)

// RaspberryPi returns a Raspberry Pi 4B with the given memory in GB
// (the paper's cluster mixes 2, 4 and 8 GB boards).
func RaspberryPi(memGB int) Device {
	return Device{Name: fmt.Sprintf("Raspberry Pi 4B (%dGB)", memGB),
		FLOPS: 2.5e10, MemBytes: int64(memGB) * gb}
}

// Cluster is an ordered set of devices; client i runs on Devices[i].
type Cluster struct {
	Devices []Device
}

// Size returns the number of devices.
func (c *Cluster) Size() int { return len(c.Devices) }

// Jetson20 is the paper's main 20-device cluster: 2 AGX, 2 TX2,
// 8 Xavier NX, 8 Nano (§V-B).
func Jetson20() *Cluster {
	c := &Cluster{}
	for i := 0; i < 2; i++ {
		c.Devices = append(c.Devices, JetsonAGX)
	}
	for i := 0; i < 2; i++ {
		c.Devices = append(c.Devices, JetsonTX2)
	}
	for i := 0; i < 8; i++ {
		c.Devices = append(c.Devices, JetsonXavierNX)
	}
	for i := 0; i < 8; i++ {
		c.Devices = append(c.Devices, JetsonNano)
	}
	return c
}

// Mixed30 is the heterogeneity study's 30-device cluster: Jetson20 plus 10
// Raspberry Pis (one 2 GB, five 4 GB, four 8 GB).
func Mixed30() *Cluster {
	c := Jetson20()
	c.Devices = append(c.Devices, RaspberryPi(2))
	for i := 0; i < 5; i++ {
		c.Devices = append(c.Devices, RaspberryPi(4))
	}
	for i := 0; i < 4; i++ {
		c.Devices = append(c.Devices, RaspberryPi(8))
	}
	return c
}

// Uniform builds an n-device cluster of identical boards, used by the 50-
// and 100-client scalability experiments (Fig. 8), which the paper runs by
// partitioning data more thinly rather than adding new hardware types.
func Uniform(n int, d Device) *Cluster {
	c := &Cluster{Devices: make([]Device, n)}
	for i := range c.Devices {
		c.Devices[i] = d
	}
	return c
}

// TrainTime returns the simulated seconds to execute the given forward+
// backward work (FLOPs) on the device. Backward is ~2× forward; callers
// pass total work already.
func (d Device) TrainTime(flops float64) float64 {
	return flops / d.FLOPS
}

// CommTime returns the simulated seconds to move the payload at the given
// bandwidth (bytes/second).
func CommTime(payloadBytes int64, bandwidth float64) float64 {
	if bandwidth <= 0 {
		return 0
	}
	return float64(payloadBytes) / bandwidth
}

// Bandwidths used by the Fig. 6 sweep, in bytes/second (50 KB/s – 10 MB/s).
var Fig6Bandwidths = []float64{
	50 * 1024, 100 * 1024, 200 * 1024, 500 * 1024,
	1024 * 1024, 2 * 1024 * 1024, 5 * 1024 * 1024, 10 * 1024 * 1024,
}

// BandwidthLabel renders a bandwidth as the paper writes it.
func BandwidthLabel(bw float64) string {
	if bw >= 1024*1024 {
		return fmt.Sprintf("%gMB/s", bw/(1024*1024))
	}
	return fmt.Sprintf("%gKB/s", bw/1024)
}
