package opt

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestSchedules(t *testing.T) {
	c := Const{Rate: 0.01}
	if c.LR(1) != 0.01 || c.LR(100) != 0.01 {
		t.Fatal("Const schedule must not vary")
	}
	s := InvSqrt{Base: 1}
	if math.Abs(s.LR(4)-0.5) > 1e-12 {
		t.Fatalf("InvSqrt(4) = %v", s.LR(4))
	}
	if s.LR(0) != s.LR(1) {
		t.Fatal("iter < 1 must clamp")
	}
	inv := Inv{Base: 1, Decay: 1}
	if math.Abs(inv.LR(3)-0.25) > 1e-12 {
		t.Fatalf("Inv(3) = %v", inv.LR(3))
	}
}

// TestConvergenceRates checks the Theorem-1 constraints: InvSqrt decays as
// O(r^-1/2), Inv as O(r^-1).
func TestConvergenceRates(t *testing.T) {
	s := InvSqrt{Base: 1}
	ratio := s.LR(400) / s.LR(100)
	if math.Abs(ratio-0.5) > 1e-9 {
		t.Fatalf("InvSqrt quadrupling r should halve lr: ratio %v", ratio)
	}
	v := Inv{Base: 1, Decay: 1}
	r1, r2 := v.LR(1000), v.LR(2000)
	if math.Abs(r1/r2-2) > 0.01 {
		t.Fatalf("Inv doubling r should halve lr asymptotically: %v", r1/r2)
	}
	// Monotone decrease — the surrogate for the bound shrinking.
	for _, sch := range []Schedule{s, v} {
		for r := 1; r < 100; r++ {
			if sch.LR(r+1) > sch.LR(r) {
				t.Fatal("schedule must be non-increasing")
			}
		}
	}
}

func TestSGDStep(t *testing.T) {
	p := nn.NewParam("w", tensor.FromSlice([]float32{1, 2}, 2))
	p.Grad.Data[0], p.Grad.Data[1] = 1, -1
	o := NewSGD(Const{Rate: 0.5}, 0, 0)
	o.Step([]*nn.Param{p})
	if p.W.Data[0] != 0.5 || p.W.Data[1] != 2.5 {
		t.Fatalf("after step: %v", p.W.Data)
	}
	if o.Iter() != 1 {
		t.Fatalf("Iter = %d", o.Iter())
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := nn.NewParam("w", tensor.FromSlice([]float32{0}, 1))
	o := NewSGD(Const{Rate: 1}, 0.9, 0)
	ps := []*nn.Param{p}
	p.Grad.Data[0] = 1
	o.Step(ps) // v=1, w=-1
	o.Step(ps) // v=1.9, w=-2.9
	if math.Abs(float64(p.W.Data[0])+2.9) > 1e-6 {
		t.Fatalf("momentum w = %v, want -2.9", p.W.Data[0])
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := nn.NewParam("w", tensor.FromSlice([]float32{2}, 1))
	o := NewSGD(Const{Rate: 0.1}, 0, 0.5)
	o.Step([]*nn.Param{p}) // grad = 0 + 0.5*2 = 1 → w = 2 - 0.1 = 1.9
	if math.Abs(float64(p.W.Data[0])-1.9) > 1e-6 {
		t.Fatalf("decay w = %v, want 1.9", p.W.Data[0])
	}
}

func TestSGDReset(t *testing.T) {
	p := nn.NewParam("w", tensor.FromSlice([]float32{0}, 1))
	o := NewSGD(InvSqrt{Base: 1}, 0.9, 0)
	p.Grad.Data[0] = 1
	o.Step([]*nn.Param{p})
	o.Reset()
	if o.Iter() != 0 {
		t.Fatal("Reset must clear the step counter")
	}
	// After reset, momentum starts fresh: one step from w0 with lr=1 gives
	// exactly w0 - 1.
	w0 := p.W.Data[0]
	o.Step([]*nn.Param{p})
	if math.Abs(float64(p.W.Data[0]-(w0-1))) > 1e-6 {
		t.Fatalf("post-reset step w = %v, want %v", p.W.Data[0], w0-1)
	}
}

func TestStepMasked(t *testing.T) {
	p := nn.NewParam("w", tensor.FromSlice([]float32{1, 1, 1}, 3))
	for i := range p.Grad.Data {
		p.Grad.Data[i] = 1
	}
	o := NewSGD(Const{Rate: 1}, 0, 0)
	o.StepMasked([]*nn.Param{p}, []bool{true, false, true})
	want := []float32{0, 1, 0}
	for i, w := range want {
		if p.W.Data[i] != w {
			t.Fatalf("masked step w[%d] = %v, want %v", i, p.W.Data[i], w)
		}
	}
}

func TestStepMaskedNilMeansFull(t *testing.T) {
	p := nn.NewParam("w", tensor.FromSlice([]float32{1}, 1))
	p.Grad.Data[0] = 1
	o := NewSGD(Const{Rate: 1}, 0, 0)
	o.StepMasked([]*nn.Param{p}, nil)
	if p.W.Data[0] != 0 {
		t.Fatal("nil mask must behave like Step")
	}
}
