// Package opt implements the optimisers and learning-rate schedules used by
// the training stack. The schedules mirror the convergence constraints of
// FedKNOW's §IV proof: local weights decay as O(r^-1/2) and global weights
// as O(r^-1).
package opt

import (
	"math"

	"repro/internal/nn"
)

// Schedule maps an iteration counter (1-based) to a learning rate.
type Schedule interface {
	LR(iter int) float64
}

// Const is a fixed learning rate.
type Const struct{ Rate float64 }

// LR returns the constant rate.
func (c Const) LR(int) float64 { return c.Rate }

// InvSqrt decays as base / sqrt(r): the O(r^-1/2) schedule Theorem 1
// requires for local weights.
type InvSqrt struct{ Base float64 }

// LR returns base/sqrt(iter).
func (s InvSqrt) LR(iter int) float64 {
	if iter < 1 {
		iter = 1
	}
	return s.Base / math.Sqrt(float64(iter))
}

// Inv decays as base / (1 + decay·r): the O(r^-1) schedule Theorem 1
// requires for global weights (ηG ≤ 2/(µ(γ+r))).
type Inv struct {
	Base  float64
	Decay float64
}

// LR returns base/(1+decay·iter).
func (s Inv) LR(iter int) float64 {
	if iter < 1 {
		iter = 1
	}
	return s.Base / (1 + s.Decay*float64(iter))
}

// SGD is stochastic gradient descent with optional momentum and weight decay.
type SGD struct {
	Sched       Schedule
	Momentum    float64
	WeightDecay float64

	iter     int
	velocity [][]float32
}

// NewSGD returns an optimiser with the given schedule.
func NewSGD(sched Schedule, momentum, weightDecay float64) *SGD {
	return &SGD{Sched: sched, Momentum: momentum, WeightDecay: weightDecay}
}

// Iter returns the number of completed steps.
func (o *SGD) Iter() int { return o.iter }

// Reset zeroes the step counter and momentum buffers (used when a new task
// starts and the schedule restarts).
func (o *SGD) Reset() {
	o.iter = 0
	o.velocity = nil
}

// Step applies one update to the parameters using their accumulated
// gradients. Gradients are not cleared; callers own nn.ZeroGrads.
func (o *SGD) Step(params []*nn.Param) {
	o.iter++
	lr := o.Sched.LR(o.iter)
	if o.velocity == nil && o.Momentum != 0 {
		o.velocity = make([][]float32, len(params))
		for i, p := range params {
			o.velocity[i] = make([]float32, p.W.Len())
		}
	}
	for i, p := range params {
		g := p.Grad.Data
		w := p.W.Data
		if o.Momentum != 0 {
			v := o.velocity[i]
			m := float32(o.Momentum)
			for j := range w {
				gj := g[j] + float32(o.WeightDecay)*w[j]
				v[j] = m*v[j] + gj
				w[j] -= float32(lr) * v[j]
			}
		} else {
			for j := range w {
				gj := g[j] + float32(o.WeightDecay)*w[j]
				w[j] -= float32(lr) * gj
			}
		}
	}
}

// StepMasked is Step restricted to coordinates where mask is true. The flat
// mask covers the concatenation of all parameters in order; a nil mask means
// unrestricted. Used by the knowledge extractor's fine-tuning phase (only
// the retained top-ρ weights move) and by FedWEIT's decomposed training.
func (o *SGD) StepMasked(params []*nn.Param, mask []bool) {
	if mask == nil {
		o.Step(params)
		return
	}
	o.iter++
	lr := float32(o.Sched.LR(o.iter))
	off := 0
	for _, p := range params {
		g := p.Grad.Data
		w := p.W.Data
		for j := range w {
			if mask[off+j] {
				w[j] -= lr * (g[j] + float32(o.WeightDecay)*w[j])
			}
		}
		off += len(w)
	}
}
