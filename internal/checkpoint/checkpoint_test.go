package checkpoint

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/prune"
	"repro/internal/tensor"
)

func TestParamsRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(1)
	flat := make([]float32, 1234)
	rng.FillNorm(flat, 1)
	var buf bytes.Buffer
	if err := WriteParams(&buf, flat); err != nil {
		t.Fatal(err)
	}
	got, err := ReadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(flat) {
		t.Fatalf("length %d", len(got))
	}
	for i := range flat {
		if got[i] != flat[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestParamsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteParams(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadParams(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
}

func TestParamsBadMagic(t *testing.T) {
	buf := bytes.NewBuffer([]byte{1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, err := ReadParams(buf); err == nil {
		t.Fatal("bad magic must error")
	}
}

func TestParamsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteParams(&buf, []float32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewBuffer(buf.Bytes()[:buf.Len()-2])
	if _, err := ReadParams(trunc); err == nil {
		t.Fatal("truncated stream must error")
	}
}

func TestKnowledgeRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(2)
	w := make([]float32, 500)
	rng.FillNorm(w, 1)
	s := prune.Extract(w, 0.1)
	var buf bytes.Buffer
	if err := WriteKnowledge(&buf, 7, []int{3, 9, 12}, s); err != nil {
		t.Fatal(err)
	}
	taskID, classes, got, err := ReadKnowledge(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if taskID != 7 {
		t.Fatalf("taskID %d", taskID)
	}
	if len(classes) != 3 || classes[2] != 12 {
		t.Fatalf("classes %v", classes)
	}
	if got.N != s.N || got.Len() != s.Len() {
		t.Fatalf("store geometry %d/%d", got.N, got.Len())
	}
	for i := range s.Indices {
		if got.Indices[i] != s.Indices[i] || got.Values[i] != s.Values[i] {
			t.Fatalf("store mismatch at %d", i)
		}
	}
}

func TestKnowledgeBadHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteParams(&buf, []float32{1}); err != nil {
		t.Fatal(err)
	}
	// Params magic where knowledge expected.
	if _, _, _, err := ReadKnowledge(&buf); err == nil {
		t.Fatal("wrong record type must error")
	}
}

func TestMultipleRecordsStream(t *testing.T) {
	// Several knowledge records back to back in one stream (the on-disk
	// layout of a client's full task history).
	rng := tensor.NewRNG(3)
	var buf bytes.Buffer
	for task := 0; task < 4; task++ {
		w := make([]float32, 100)
		rng.FillNorm(w, 1)
		if err := WriteKnowledge(&buf, task, []int{task}, prune.Extract(w, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	for task := 0; task < 4; task++ {
		id, classes, s, err := ReadKnowledge(&buf)
		if err != nil {
			t.Fatalf("record %d: %v", task, err)
		}
		if id != task || classes[0] != task || s.Len() != 20 {
			t.Fatalf("record %d corrupt: id=%d", task, id)
		}
	}
}

func TestQuickParamsRoundTrip(t *testing.T) {
	f := func(vals []float32) bool {
		var buf bytes.Buffer
		if err := WriteParams(&buf, vals); err != nil {
			return false
		}
		got, err := ReadParams(&buf)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN compares false; compare bit patterns instead.
			if got[i] != vals[i] && !(vals[i] != vals[i] && got[i] != got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
