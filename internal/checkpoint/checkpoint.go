// Package checkpoint serialises model parameters, FedKNOW knowledge stores,
// and server seat-book snapshots so both edge clients and the federation
// server can persist state across restarts (the deployment concern behind
// the paper's on-device design: a process must survive a reboot without
// re-learning its task history). The format is a small self-describing
// little-endian binary layout built on encoding/binary; server snapshots
// add a CRC-32 trailer and an atomic sequence-numbered Store (see
// ServerSnapshot and Store in snapshot.go).
//
// Decoders never trust a header's element count for allocation: slices grow
// chunk by chunk with the bytes actually read, so a truncated or corrupt
// file fails with a clean error after at most one chunk instead of
// attempting a multi-GB allocation.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/prune"
)

const (
	magicParams    = uint32(0xFEDC0001)
	magicKnowledge = uint32(0xFEDC0002)
)

// WriteParams serialises a flat parameter vector.
func WriteParams(w io.Writer, flat []float32) error {
	if err := binary.Write(w, binary.LittleEndian, magicParams); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(flat))); err != nil {
		return err
	}
	return writeF32s(w, flat)
}

// ReadParams deserialises a flat parameter vector, validating the header.
func ReadParams(r io.Reader) ([]float32, error) {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != magicParams {
		return nil, fmt.Errorf("checkpoint: bad params magic %#x", magic)
	}
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("checkpoint: implausible parameter count %d", n)
	}
	return readF32s(r, int(n))
}

// WriteKnowledge serialises one task's knowledge record (task id, classes,
// sparse store).
func WriteKnowledge(w io.Writer, taskID int, classes []int, s *prune.SparseStore) error {
	if err := binary.Write(w, binary.LittleEndian, magicKnowledge); err != nil {
		return err
	}
	hdr := []uint64{uint64(taskID), uint64(len(classes)), uint64(s.N), uint64(s.Len())}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, c := range classes {
		if err := binary.Write(w, binary.LittleEndian, int64(c)); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, s.Indices); err != nil {
		return err
	}
	return writeF32s(w, s.Values)
}

// ReadKnowledge deserialises a knowledge record written by WriteKnowledge.
func ReadKnowledge(r io.Reader) (taskID int, classes []int, s *prune.SparseStore, err error) {
	var magic uint32
	if err = binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return 0, nil, nil, err
	}
	if magic != magicKnowledge {
		return 0, nil, nil, fmt.Errorf("checkpoint: bad knowledge magic %#x", magic)
	}
	var hdr [4]uint64
	for i := range hdr {
		if err = binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return 0, nil, nil, err
		}
	}
	nClasses, n, k := int(hdr[1]), int(hdr[2]), int(hdr[3])
	if nClasses > 1<<20 || n > 1<<31 || k > n {
		return 0, nil, nil, fmt.Errorf("checkpoint: implausible knowledge header %v", hdr)
	}
	classes = make([]int, nClasses)
	for i := range classes {
		var c int64
		if err = binary.Read(r, binary.LittleEndian, &c); err != nil {
			return 0, nil, nil, err
		}
		classes[i] = int(c)
	}
	s = &prune.SparseStore{N: n}
	if s.Indices, err = readI32s(r, k); err != nil {
		return 0, nil, nil, err
	}
	if s.Values, err = readF32s(r, k); err != nil {
		return 0, nil, nil, err
	}
	return int(hdr[0]), classes, s, nil
}

func writeF32s(w io.Writer, vals []float32) error {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// readChunk is the per-read element budget of the chunked decoders (1 MiB
// of file bytes for 4-byte elements): the output slice grows with the data
// actually present, so an attacker-controlled (or torn-write-corrupted)
// count cannot drive a huge up-front allocation.
const readChunk = 1 << 18

func readF32s(r io.Reader, n int) ([]float32, error) {
	out := make([]float32, 0, min(n, readChunk))
	buf := make([]byte, 4*min(n, readChunk))
	for len(out) < n {
		c := min(n-len(out), readChunk)
		b := buf[:4*c]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:])))
		}
	}
	return out, nil
}

func readI32s(r io.Reader, n int) ([]int32, error) {
	out := make([]int32, 0, min(n, readChunk))
	buf := make([]byte, 4*min(n, readChunk))
	for len(out) < n {
		c := min(n-len(out), readChunk)
		b := buf[:4*c]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(b[4*i:])))
		}
	}
	return out, nil
}
