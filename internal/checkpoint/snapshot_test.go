package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// sampleSnapshot builds a fully-populated snapshot, including the payloads
// float32 equality can trip over: NaN (compares false to itself) and -0
// (compares equal to +0 but has a different bit pattern).
func sampleSnapshot(seed uint64) *ServerSnapshot {
	rng := tensor.NewRNG(seed)
	global := make([]float32, 257)
	rng.FillNorm(global, 1)
	global[0] = float32(math.NaN())
	global[1] = float32(math.Copysign(0, -1))
	global[2] = float32(math.Inf(-1))
	return &ServerSnapshot{
		Fingerprint: 0xABCD,
		Version:     7,
		TaskIdx:     2,
		CommitIdx:   3,
		ParamLen:    len(global),
		StaleTotal:  5,
		SimSeconds:  123.5,
		CommSeconds: 17.25,
		UpBytes:     1 << 20,
		DownBytes:   1 << 21,
		WireSent:    99999,
		WireRecv:    88888,
		Global:      global,
		Seats: []SeatRecord{
			{Alive: true, SimSeconds: 10, CommSeconds: 1, Seen: 2},
			{Alive: false, Dead: true, DeadAtTask: 1, SimSeconds: 4.5, CommSeconds: 0.5, Seen: 1},
			{Alive: true, SimSeconds: 8, CommSeconds: 2, Seen: 0},
		},
		Tasks: []TaskRecord{
			{TaskIdx: 0, AvgAccuracy: 0.5, ForgettingRate: 0, SimHours: 0.1, CommHours: 0.01, UpBytes: 100, DownBytes: 200},
			{TaskIdx: 1, AvgAccuracy: 0.4, ForgettingRate: 0.2, SimHours: 0.2, CommHours: 0.02, UpBytes: 300, DownBytes: 400},
		},
		Matrix:             [][]float64{{0.5}, {0.3, 0.5}},
		WindowCount:        2,
		WindowStale:        1,
		WindowTotal:        1.75,
		WindowWorstCompute: 3.5,
		WindowWorstComm:    0.25,
		WindowUp:           4096,
		WindowDown:         8192,
		WindowIdx:          []int32{3, 17, 200},
		WindowVals:         []float32{0.5, float32(math.NaN()), -2},
	}
}

// f32Equal compares bit patterns, so NaN == NaN and -0 != +0.
func f32Equal(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := sampleSnapshot(11)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf, int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != snap.Fingerprint || got.Version != snap.Version ||
		got.TaskIdx != snap.TaskIdx || got.CommitIdx != snap.CommitIdx ||
		got.ParamLen != snap.ParamLen || got.StaleTotal != snap.StaleTotal ||
		got.SimSeconds != snap.SimSeconds || got.CommSeconds != snap.CommSeconds ||
		got.UpBytes != snap.UpBytes || got.DownBytes != snap.DownBytes ||
		got.WireSent != snap.WireSent || got.WireRecv != snap.WireRecv {
		t.Fatalf("scalar fields corrupted: %+v", got)
	}
	if !f32Equal(got.Global, snap.Global) {
		t.Fatal("global params not bit-identical (NaN/-0 must survive)")
	}
	if len(got.Seats) != len(snap.Seats) {
		t.Fatalf("%d seats", len(got.Seats))
	}
	for i, seat := range snap.Seats {
		if got.Seats[i] != seat {
			t.Fatalf("seat %d: got %+v want %+v", i, got.Seats[i], seat)
		}
	}
	for i, task := range snap.Tasks {
		if got.Tasks[i] != task {
			t.Fatalf("task %d: got %+v want %+v", i, got.Tasks[i], task)
		}
	}
	if len(got.Matrix) != 2 || got.Matrix[1][0] != 0.3 || got.Matrix[1][1] != 0.5 {
		t.Fatalf("matrix corrupted: %v", got.Matrix)
	}
	if got.WindowCount != snap.WindowCount || got.WindowStale != snap.WindowStale ||
		got.WindowTotal != snap.WindowTotal ||
		got.WindowWorstCompute != snap.WindowWorstCompute ||
		got.WindowWorstComm != snap.WindowWorstComm ||
		got.WindowUp != snap.WindowUp || got.WindowDown != snap.WindowDown ||
		got.WindowDense != snap.WindowDense {
		t.Fatalf("window scalars corrupted: %+v", got)
	}
	if len(got.WindowIdx) != len(snap.WindowIdx) {
		t.Fatalf("%d window indices", len(got.WindowIdx))
	}
	for i, j := range snap.WindowIdx {
		if got.WindowIdx[i] != j {
			t.Fatalf("window index %d: %d want %d", i, got.WindowIdx[i], j)
		}
	}
	if !f32Equal(got.WindowVals, snap.WindowVals) {
		t.Fatal("window values not bit-identical")
	}
}

// TestSnapshotReadsV1 pins backward compatibility: a version-1 file (no open
// commit window section) still loads, with an empty window. The v1 bytes are
// derived from a windowless v2 file by stripping the fixed-size empty window
// section and patching the header version, payload length and CRC.
func TestSnapshotReadsV1(t *testing.T) {
	snap := sampleSnapshot(47)
	snap.WindowCount, snap.WindowStale = 0, 0
	snap.WindowTotal, snap.WindowWorstCompute, snap.WindowWorstComm = 0, 0, 0
	snap.WindowUp, snap.WindowDown = 0, 0
	snap.WindowDense, snap.WindowIdx, snap.WindowVals = false, nil, nil
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), buf.Bytes()...)
	// Empty window section: flags(1) + 7 scalars(56) + two zero counts(16).
	const windowLen = 1 + 7*8 + 2*8
	payload := full[snapshotHeaderLen : len(full)-4-windowLen]
	v1 := make([]byte, 0, snapshotHeaderLen+len(payload)+4)
	v1 = append(v1, full[:snapshotHeaderLen]...)
	binary.LittleEndian.PutUint32(v1[4:], snapshotVersionV1)
	binary.LittleEndian.PutUint64(v1[8:], uint64(len(payload)))
	v1 = append(v1, payload...)
	v1 = binary.LittleEndian.AppendUint32(v1, crc32.ChecksumIEEE(payload))
	got, err := ReadSnapshot(bytes.NewReader(v1), int64(len(v1)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != snap.Version || !f32Equal(got.Global, snap.Global) {
		t.Fatal("v1 payload corrupted")
	}
	if got.WindowCount != 0 || got.WindowIdx != nil || got.WindowVals != nil || got.WindowDense {
		t.Fatalf("v1 file must load with an empty window, got %+v", got)
	}
}

func TestSnapshotPropertyRoundTrip(t *testing.T) {
	// Randomised seat books round-trip exactly across many shapes.
	for seed := uint64(1); seed <= 25; seed++ {
		rng := tensor.NewRNG(seed)
		n := int(rng.Uint64() % 5)
		snap := &ServerSnapshot{
			Version: rng.Uint64() % 100,
			TaskIdx: int(rng.Uint64() % 7),
			Seats:   make([]SeatRecord, n),
		}
		for i := range snap.Seats {
			snap.Seats[i] = SeatRecord{
				Alive:       rng.Uint64()%2 == 0,
				Dead:        rng.Uint64()%2 == 0,
				DeadAtTask:  int(rng.Uint64() % 7),
				SimSeconds:  rng.Float64() * 1000,
				CommSeconds: rng.Float64() * 100,
				Seen:        int(rng.Uint64() % 10),
			}
		}
		if g := int(rng.Uint64() % 64); g > 0 {
			snap.Global = make([]float32, g)
			rng.FillNorm(snap.Global, 1)
			snap.ParamLen = g
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, snap); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Version != snap.Version || got.TaskIdx != snap.TaskIdx ||
			len(got.Seats) != len(snap.Seats) || !f32Equal(got.Global, snap.Global) {
			t.Fatalf("seed %d: round trip mismatch", seed)
		}
		for i := range snap.Seats {
			if got.Seats[i] != snap.Seats[i] {
				t.Fatalf("seed %d: seat %d mismatch", seed, i)
			}
		}
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	snap := sampleSnapshot(13)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncation at every interesting boundary fails cleanly.
	for _, cut := range []int{0, 3, snapshotHeaderLen - 1, snapshotHeaderLen + 5, len(full) - 5, len(full) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut]), int64(cut)); err == nil {
			t.Fatalf("truncation at %d must error", cut)
		}
	}
	// A flipped payload bit fails the CRC.
	corrupt := append([]byte(nil), full...)
	corrupt[snapshotHeaderLen+10] ^= 0x40
	if _, err := ReadSnapshot(bytes.NewReader(corrupt), int64(len(corrupt))); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatalf("bit flip must fail the checksum, got %v", err)
	}
}

func TestSnapshotHugeHeaderFailsCleanly(t *testing.T) {
	// A corrupt header claiming a multi-GB payload must fail against the
	// caller's cap before any allocation, not OOM.
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, magicSnapshot)
	binary.Write(&buf, binary.LittleEndian, snapshotVersion)
	binary.Write(&buf, binary.LittleEndian, uint64(1)<<40)
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), 1<<20); err == nil ||
		!strings.Contains(err.Error(), "exceeds cap") {
		t.Fatalf("huge payload length must fail against the cap, got %v", err)
	}
}

func TestSnapshotCorruptCountFailsBeforeAlloc(t *testing.T) {
	// Corrupt an embedded element count (the global length) without breaking
	// framing: counts are validated against the remaining payload.
	snap := sampleSnapshot(17)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), buf.Bytes()...)
	// The global-length field sits after 13 u64 scalar fields.
	off := snapshotHeaderLen + 13*8
	binary.LittleEndian.PutUint64(full[off:], uint64(1)<<50)
	payload := full[snapshotHeaderLen : len(full)-4]
	binary.LittleEndian.PutUint32(full[len(full)-4:], crc32.ChecksumIEEE(payload))
	if _, err := ReadSnapshot(bytes.NewReader(full), int64(len(full))); err == nil ||
		!strings.Contains(err.Error(), "exceeds remaining payload") {
		t.Fatalf("corrupt count must fail against the payload budget, got %v", err)
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 2, 0x1234)
	if err != nil {
		t.Fatal(err)
	}
	if snap, err := st.Load(); err != nil || snap != nil {
		t.Fatalf("empty store must load (nil, nil), got %v %v", snap, err)
	}
	snap := sampleSnapshot(19)
	snap.Fingerprint = 0
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	if snap.Fingerprint != 0x1234 {
		t.Fatalf("Save must stamp the store fingerprint, got %#x", snap.Fingerprint)
	}
	got, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != snap.Version || !f32Equal(got.Global, snap.Global) {
		t.Fatal("store round trip mismatch")
	}
	// A second store over the same directory (the restarted process) resumes
	// the sequence numbering and loads the same snapshot.
	st2, err := OpenStore(dir, 2, 0x1234)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := st2.Load()
	if err != nil || got2 == nil || got2.Seq != got.Seq {
		t.Fatalf("reopened store: %v %v", got2, err)
	}
}

func TestStoreTornWriteFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := sampleSnapshot(23)
	a.Version = 1
	if err := st.Save(a); err != nil {
		t.Fatal(err)
	}
	b := sampleSnapshot(29)
	b.Version = 2
	if err := st.Save(b); err != nil {
		t.Fatal(err)
	}
	// Tear the newest file (simulating a crash mid-write that somehow still
	// renamed, or post-rename sector loss): Load must fall back to snapshot a.
	newest := filepath.Join(dir, "snap-000000000002.ckpt")
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 {
		t.Fatalf("torn newest must fall back to the previous snapshot, got version %d", got.Version)
	}
}

func TestStoreAllCorruptErrors(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(sampleSnapshot(31)); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "snap-000000000001.ckpt")
	if err := os.WriteFile(name, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if snap, err := st.Load(); err == nil {
		t.Fatalf("all-corrupt store must error, got %+v", snap)
	}
}

func TestStoreFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 1, 0xAAAA)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(sampleSnapshot(37)); err != nil {
		t.Fatal(err)
	}
	other, err := OpenStore(dir, 1, 0xBBBB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Load(); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint mismatch must be a hard error, got %v", err)
	}
}

func TestStoreKeepGC(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Save(sampleSnapshot(uint64(41 + i))); err != nil {
			t.Fatal(err)
		}
	}
	files, err := st.list()
	if err != nil {
		t.Fatal(err)
	}
	// keep=1: the newest plus one previous survive the GC.
	if len(files) != 2 || files[0].seq != 4 || files[1].seq != 5 {
		t.Fatalf("keep-1 GC left %v", files)
	}
}

func TestOpenStoreUnwritableFailsFast(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	dir := t.TempDir()
	ro := filepath.Join(dir, "ro")
	if err := os.Mkdir(ro, 0o555); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(ro, 1, 0); err == nil {
		t.Fatal("unwritable snapshot dir must fail at open")
	}
}

func FuzzReadSnapshot(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteSnapshot(&valid, sampleSnapshot(43)); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x00, 0xDC, 0xFE})
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic or over-allocate; errors are expected.
		snap, err := ReadSnapshot(bytes.NewReader(data), int64(len(data)))
		if err == nil && snap == nil {
			t.Fatal("nil snapshot without error")
		}
	})
}
