package checkpoint

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Server snapshot framing: a fixed header (magic, format version, payload
// length), the little-endian payload, and a CRC-32 (IEEE) trailer over the
// payload. The CRC is what makes a torn write — a crash mid-rename or
// mid-flush — detectable, so Store.Load can fall back to the previous
// snapshot instead of restoring garbage.
const (
	magicSnapshot = uint32(0xFEDC0003)
	// snapshotVersion is the written format. v3 added the seat flag for a
	// cleanly departed seat (SeatRecord.Left), so elastic-membership churn
	// composes with crash-restart: a retired seat restores retired, not as an
	// awaited rejoiner. v2 appended the open commit window (the async
	// scheduler's partial aggregation between commits) so a restart resumes
	// mid-window instead of discarding up to K−1 folded uploads. v1 and v2
	// files still load, with an empty window and no departed seats
	// respectively.
	snapshotVersion   = uint32(3)
	snapshotVersionV1 = uint32(1)
	// snapshotHeaderLen is magic (4) + format version (4) + payload length (8).
	snapshotHeaderLen = 16
	// DefaultMaxSnapshotBytes caps the payload length ReadSnapshot accepts
	// when the caller supplies no tighter bound (Store.Load passes the
	// file's actual size).
	DefaultMaxSnapshotBytes = int64(1) << 31
)

// SeatRecord is one client's retained seat book inside a ServerSnapshot:
// everything the server keeps per seat that a restart must not lose. Seen
// is authoritative — a client whose post-snapshot uploads were lost in the
// crash retrains them, because the restarted server's Catchup says so.
type SeatRecord struct {
	// Alive reports the seat was connected at the snapshot cut; a restarted
	// server waits for every such seat to rejoin before closing the task.
	Alive bool
	// Dead reports the seat was recorded in Result.DeadAfter (evicted, or a
	// device death report) at DeadAtTask.
	Dead bool
	// Left reports the seat retired itself with a clean Leave frame (v3):
	// neither alive nor dead, its books closed in good standing. A restarted
	// server does not await its rejoin — though the departed client may
	// still make one.
	Left bool
	// DeadAtTask is the task index recorded in DeadAfter; meaningless unless
	// Dead.
	DeadAtTask int
	// SimSeconds / CommSeconds are the seat's accumulated asynchronous
	// device clocks.
	SimSeconds  float64
	CommSeconds float64
	// Seen is the seat's upload count for the in-progress task — the round
	// index its client resumes from.
	Seen int
}

// TaskRecord is one completed task's summary row (the fed.TaskPoint the
// server already reported), carried in the snapshot so a restarted run's
// final Result covers tasks finished before the crash.
type TaskRecord struct {
	// TaskIdx is the task's index in the continual-learning sequence.
	TaskIdx int
	// AvgAccuracy / ForgettingRate are the paper's §V measures at this task.
	AvgAccuracy    float64
	ForgettingRate float64
	// SimHours / CommHours are the cumulative simulated clocks at task end.
	SimHours  float64
	CommHours float64
	// UpBytes / DownBytes are the cumulative simulated traffic at task end.
	UpBytes   int64
	DownBytes int64
}

// ServerSnapshot is a consistent cut of a federation server: the versioned
// global model plus the full seat book. The server writes one at every
// aggregation commit — durably, before the commit's broadcast, so no client
// can ever hold a global version newer than the latest snapshot — and one
// at every task boundary. A restarted server process reconstructs its
// scheduler state from the newest valid snapshot and re-admits the cohort
// through the rejoin path (see fed.NewServerFromSnapshot and
// docs/ARCHITECTURE.md's restart state machine).
type ServerSnapshot struct {
	// Fingerprint is the job fingerprint (fed.Config.Fingerprint) the run
	// was started with; a restart with different knobs must not resume from
	// it. 0 opts out of the check.
	Fingerprint uint64
	// Seq is the snapshot's sequence number in its Store, assigned by Save.
	Seq uint64
	// Version is the global model's commit version at the cut.
	Version uint64
	// TaskIdx is the task to resume: the task in progress at a commit cut,
	// or the next task at a boundary cut.
	TaskIdx int
	// CommitIdx is the number of commits already made within TaskIdx (0 at
	// a boundary cut), so resumed observer Round ordinals continue instead
	// of restarting.
	CommitIdx int
	// ParamLen is the agreed parameter-vector length (0 before any upload).
	ParamLen int
	// StaleTotal is the cumulative count of updates rejected by the
	// staleness bound.
	StaleTotal int
	// SimSeconds / CommSeconds are the run's simulated clocks at the cut.
	SimSeconds  float64
	CommSeconds float64
	// UpBytes / DownBytes are the run's cumulative simulated traffic.
	UpBytes   int64
	DownBytes int64
	// WireSent / WireRecv are the measured wire-traffic totals
	// (fed.Server.WireTraffic) at the cut, folded into the restarted
	// server's retired counters so no carried byte is forgotten.
	WireSent int64
	WireRecv int64
	// Global is the latest committed global model; nil before any commit.
	Global []float32
	// The open commit window: the asynchronous scheduler's state between
	// commits, cut after every accepted (or staleness-rejected) upload so a
	// restart resumes the window mid-fill instead of asking clients to
	// retrain up to CommitEvery−1 uploads. WindowCount is the number of
	// updates folded into the window (0 = empty window, the v1 semantics);
	// WindowStale, WindowTotal, WindowWorstCompute/WindowWorstComm and
	// WindowUp/WindowDown mirror the scheduler's per-window accounting.
	// The partial accumulation itself is WindowVals — the raw unscaled sums
	// over the whole vector when WindowDense, or over the ascending
	// coordinates WindowIdx otherwise.
	WindowCount        int
	WindowStale        int
	WindowTotal        float64
	WindowWorstCompute float64
	WindowWorstComm    float64
	WindowUp           int64
	WindowDown         int64
	WindowDense        bool
	WindowIdx          []int32
	WindowVals         []float32
	// Seats is the per-client seat book, indexed by client ID.
	Seats []SeatRecord
	// Tasks are the completed tasks' summary rows, in task order.
	Tasks []TaskRecord
	// Matrix holds the completed rows of the continual-learning accuracy
	// matrix: Matrix[i] has i+1 entries, accuracy on tasks 0..i after
	// learning task i.
	Matrix [][]float64
}

// WriteSnapshot serialises one server snapshot: header, payload, CRC-32
// trailer.
func WriteSnapshot(w io.Writer, snap *ServerSnapshot) error {
	var payload bytes.Buffer
	pw := &leWriter{w: &payload}
	pw.u64(snap.Fingerprint)
	pw.u64(snap.Seq)
	pw.u64(snap.Version)
	pw.u64(uint64(snap.TaskIdx))
	pw.u64(uint64(snap.CommitIdx))
	pw.u64(uint64(snap.ParamLen))
	pw.u64(uint64(snap.StaleTotal))
	pw.f64(snap.SimSeconds)
	pw.f64(snap.CommSeconds)
	pw.i64(snap.UpBytes)
	pw.i64(snap.DownBytes)
	pw.i64(snap.WireSent)
	pw.i64(snap.WireRecv)
	pw.u64(uint64(len(snap.Global)))
	pw.f32s(snap.Global)
	pw.u64(uint64(len(snap.Seats)))
	for _, seat := range snap.Seats {
		var flags byte
		if seat.Alive {
			flags |= 1
		}
		if seat.Dead {
			flags |= 2
		}
		if seat.Left {
			flags |= 4
		}
		pw.u8(flags)
		pw.u64(uint64(seat.DeadAtTask))
		pw.f64(seat.SimSeconds)
		pw.f64(seat.CommSeconds)
		pw.u64(uint64(seat.Seen))
	}
	pw.u64(uint64(len(snap.Tasks)))
	for _, t := range snap.Tasks {
		pw.u64(uint64(t.TaskIdx))
		pw.f64(t.AvgAccuracy)
		pw.f64(t.ForgettingRate)
		pw.f64(t.SimHours)
		pw.f64(t.CommHours)
		pw.i64(t.UpBytes)
		pw.i64(t.DownBytes)
	}
	pw.u64(uint64(len(snap.Matrix)))
	for _, row := range snap.Matrix {
		pw.u64(uint64(len(row)))
		for _, v := range row {
			pw.f64(v)
		}
	}
	// v2: the open commit window.
	var wflags byte
	if snap.WindowDense {
		wflags |= 1
	}
	pw.u8(wflags)
	pw.u64(uint64(snap.WindowCount))
	pw.u64(uint64(snap.WindowStale))
	pw.f64(snap.WindowTotal)
	pw.f64(snap.WindowWorstCompute)
	pw.f64(snap.WindowWorstComm)
	pw.i64(snap.WindowUp)
	pw.i64(snap.WindowDown)
	pw.u64(uint64(len(snap.WindowIdx)))
	pw.i32s(snap.WindowIdx)
	pw.u64(uint64(len(snap.WindowVals)))
	pw.f32s(snap.WindowVals)
	if pw.err != nil {
		return pw.err
	}
	hw := &leWriter{w: w}
	hw.u32(magicSnapshot)
	hw.u32(snapshotVersion)
	hw.u64(uint64(payload.Len()))
	hw.write(payload.Bytes())
	hw.u32(crc32.ChecksumIEEE(payload.Bytes()))
	return hw.err
}

// ReadSnapshot deserialises a server snapshot, validating the magic, format
// version, payload length (against maxBytes; <= 0 means
// DefaultMaxSnapshotBytes — Store.Load passes the file's size, so a corrupt
// header can never demand more memory than the file holds), the CRC-32
// trailer, and every embedded element count against the bytes that remain —
// a torn or corrupt file fails cleanly, it never panics or over-allocates.
func ReadSnapshot(r io.Reader, maxBytes int64) (*ServerSnapshot, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxSnapshotBytes
	}
	hdr := make([]byte, snapshotHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("checkpoint: snapshot header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr); m != magicSnapshot {
		return nil, fmt.Errorf("checkpoint: bad snapshot magic %#x", m)
	}
	ver := binary.LittleEndian.Uint32(hdr[4:])
	if ver < snapshotVersionV1 || ver > snapshotVersion {
		return nil, fmt.Errorf("checkpoint: unsupported snapshot format version %d", ver)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	if n > uint64(maxBytes) {
		return nil, fmt.Errorf("checkpoint: snapshot payload length %d exceeds cap %d (torn or corrupt header)", n, maxBytes)
	}
	payload := make([]byte, int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("checkpoint: snapshot payload: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: snapshot checksum: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, fmt.Errorf("checkpoint: snapshot checksum mismatch (computed %#x, stored %#x): torn or corrupt write", got, want)
	}
	pr := &leReader{buf: payload}
	snap := &ServerSnapshot{
		Fingerprint: pr.u64(),
		Seq:         pr.u64(),
		Version:     pr.u64(),
		TaskIdx:     pr.intField("task index"),
		CommitIdx:   pr.intField("commit index"),
		ParamLen:    pr.intField("parameter length"),
		StaleTotal:  pr.intField("stale total"),
		SimSeconds:  pr.f64(),
		CommSeconds: pr.f64(),
		UpBytes:     pr.i64(),
		DownBytes:   pr.i64(),
		WireSent:    pr.i64(),
		WireRecv:    pr.i64(),
	}
	snap.Global = pr.f32s(pr.count("global params", 4))
	nSeats := pr.count("seats", 1 + 8 + 8 + 8 + 8)
	if pr.err == nil {
		snap.Seats = make([]SeatRecord, nSeats)
		for i := range snap.Seats {
			flags := pr.u8()
			snap.Seats[i] = SeatRecord{
				Alive:       flags&1 != 0,
				Dead:        flags&2 != 0,
				Left:        flags&4 != 0,
				DeadAtTask:  pr.intField("dead-at task"),
				SimSeconds:  pr.f64(),
				CommSeconds: pr.f64(),
				Seen:        pr.intField("seen count"),
			}
		}
	}
	nTasks := pr.count("tasks", 7 * 8)
	if pr.err == nil {
		snap.Tasks = make([]TaskRecord, nTasks)
		for i := range snap.Tasks {
			snap.Tasks[i] = TaskRecord{
				TaskIdx:        pr.intField("task record index"),
				AvgAccuracy:    pr.f64(),
				ForgettingRate: pr.f64(),
				SimHours:       pr.f64(),
				CommHours:      pr.f64(),
				UpBytes:        pr.i64(),
				DownBytes:      pr.i64(),
			}
		}
	}
	nRows := pr.count("matrix rows", 8)
	if pr.err == nil {
		snap.Matrix = make([][]float64, nRows)
		for i := range snap.Matrix {
			row := make([]float64, pr.count("matrix row entries", 8))
			for j := range row {
				row[j] = pr.f64()
			}
			snap.Matrix[i] = row
		}
	}
	if ver >= 2 {
		wflags := pr.u8()
		snap.WindowDense = wflags&1 != 0
		snap.WindowCount = pr.intField("window count")
		snap.WindowStale = pr.intField("window stale count")
		snap.WindowTotal = pr.f64()
		snap.WindowWorstCompute = pr.f64()
		snap.WindowWorstComm = pr.f64()
		snap.WindowUp = pr.i64()
		snap.WindowDown = pr.i64()
		snap.WindowIdx = pr.i32s(pr.count("window indices", 4))
		snap.WindowVals = pr.f32s(pr.count("window values", 4))
	}
	if pr.err != nil {
		return nil, pr.err
	}
	if pr.rem() != 0 {
		return nil, fmt.Errorf("checkpoint: snapshot payload has %d trailing bytes", pr.rem())
	}
	return snap, nil
}

// Store is a directory of sequence-numbered server snapshots with atomic
// writes (temp file + fsync + rename) and keep-N garbage collection. It is
// the durable side of the crash-only server: fed.Server writes through it
// at every commit and task boundary, and a restarted process reads the
// newest valid snapshot back with Load. Store implements fed.SnapshotSink.
type Store struct {
	dir  string
	keep int
	fp   uint64

	mu  sync.Mutex
	seq uint64
}

const (
	snapshotPrefix = "snap-"
	snapshotSuffix = ".ckpt"
)

// OpenStore opens (creating if necessary) a snapshot directory, probing
// writability so a misconfigured -snapshot-dir fails at startup rather than
// at the first commit. keep is the number of previous snapshots retained
// besides the newest (negative keeps everything); fingerprint, when
// non-zero, is stamped into every saved snapshot and checked on Load —
// resuming a job from a different job's books is a configuration error, not
// a fallback case. Sequence numbering continues from any snapshots already
// present.
func OpenStore(dir string, keep int, fingerprint uint64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: snapshot dir: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: snapshot dir %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	st := &Store{dir: dir, keep: keep, fp: fingerprint}
	files, err := st.list()
	if err != nil {
		return nil, err
	}
	if len(files) > 0 {
		st.seq = files[len(files)-1].seq
	}
	return st, nil
}

// Dir reports the store's directory.
func (st *Store) Dir() string { return st.dir }

// snapFile is one on-disk snapshot, parsed from its file name.
type snapFile struct {
	name string
	seq  uint64
}

// list returns the directory's snapshots in ascending sequence order.
func (st *Store) list() ([]snapFile, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: snapshot dir: %w", err)
	}
	var files []snapFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(name[len(snapshotPrefix):len(name)-len(snapshotSuffix)], 10, 64)
		if err != nil {
			continue
		}
		files = append(files, snapFile{name: name, seq: seq})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].seq < files[j].seq })
	return files, nil
}

// Save durably persists one snapshot: serialise to a temp file in the same
// directory, fsync, rename into its sequence-numbered place, fsync the
// directory (best effort), then prune all but the newest keep+1 snapshots.
// The rename is what makes the write atomic — a crash at any instant leaves
// either the complete new snapshot or the previous one, never a half-file
// under a valid name (a torn temp file fails Load's CRC and is skipped).
// Save stamps snap.Seq and, when unset, snap.Fingerprint.
func (st *Store) Save(snap *ServerSnapshot) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	snap.Seq = st.seq
	if snap.Fingerprint == 0 {
		snap.Fingerprint = st.fp
	}
	tmp, err := os.CreateTemp(st.dir, snapshotPrefix+"*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: snapshot temp file: %w", err)
	}
	if err := WriteSnapshot(tmp, snap); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: snapshot close: %w", err)
	}
	final := filepath.Join(st.dir, fmt.Sprintf("%s%012d%s", snapshotPrefix, st.seq, snapshotSuffix))
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: snapshot rename: %w", err)
	}
	if d, err := os.Open(st.dir); err == nil {
		d.Sync()
		d.Close()
	}
	st.gc()
	return nil
}

// gc prunes old snapshots down to the newest keep+1, best effort.
func (st *Store) gc() {
	if st.keep < 0 {
		return
	}
	files, err := st.list()
	if err != nil {
		return
	}
	for len(files) > st.keep+1 {
		os.Remove(filepath.Join(st.dir, files[0].name))
		files = files[1:]
	}
}

// Load returns the newest snapshot that passes its checksum, falling back
// to older snapshots when the newest is torn or corrupt — the crash-only
// recovery read path. It returns (nil, nil) when the directory holds no
// snapshots (a fresh start), and an error when snapshots exist but none is
// readable, or when the newest readable one carries a different job
// fingerprint (resuming under changed knobs is refused, not papered over).
func (st *Store) Load() (*ServerSnapshot, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	files, err := st.list()
	if err != nil {
		return nil, err
	}
	var firstErr error
	for i := len(files) - 1; i >= 0; i-- {
		path := filepath.Join(st.dir, files[i].name)
		snap, err := loadSnapshotFile(path)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", files[i].name, err)
			}
			continue
		}
		if st.fp != 0 && snap.Fingerprint != 0 && snap.Fingerprint != st.fp {
			return nil, fmt.Errorf("checkpoint: snapshot %s fingerprint %#x does not match job %#x (different seed/flags?)",
				files[i].name, snap.Fingerprint, st.fp)
		}
		snap.Seq = files[i].seq
		return snap, nil
	}
	if firstErr != nil {
		return nil, fmt.Errorf("checkpoint: no readable snapshot in %s: %w", st.dir, firstErr)
	}
	return nil, nil
}

// loadSnapshotFile reads one snapshot file, capping the payload at the
// file's actual size.
func loadSnapshotFile(path string) (*ServerSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return ReadSnapshot(f, fi.Size())
}

// leWriter accumulates little-endian fields, latching the first error.
type leWriter struct {
	w       io.Writer
	err     error
	scratch [8]byte
}

func (lw *leWriter) write(b []byte) {
	if lw.err == nil {
		_, lw.err = lw.w.Write(b)
	}
}

func (lw *leWriter) u8(v byte) {
	lw.scratch[0] = v
	lw.write(lw.scratch[:1])
}

func (lw *leWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(lw.scratch[:4], v)
	lw.write(lw.scratch[:4])
}

func (lw *leWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(lw.scratch[:8], v)
	lw.write(lw.scratch[:8])
}

func (lw *leWriter) i64(v int64) { lw.u64(uint64(v)) }

func (lw *leWriter) f64(v float64) { lw.u64(math.Float64bits(v)) }

func (lw *leWriter) f32s(vals []float32) {
	if lw.err != nil {
		return
	}
	buf := make([]byte, 4*min(len(vals), readChunk))
	for len(vals) > 0 {
		c := min(len(vals), readChunk)
		for i := 0; i < c; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(vals[i]))
		}
		lw.write(buf[:4*c])
		vals = vals[c:]
		if lw.err != nil {
			return
		}
	}
}

func (lw *leWriter) i32s(vals []int32) {
	if lw.err != nil {
		return
	}
	buf := make([]byte, 4*min(len(vals), readChunk))
	for len(vals) > 0 {
		c := min(len(vals), readChunk)
		for i := 0; i < c; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(vals[i]))
		}
		lw.write(buf[:4*c])
		vals = vals[c:]
		if lw.err != nil {
			return
		}
	}
}

// leReader parses little-endian fields from an in-memory payload, latching
// the first error; every element count is validated against the bytes that
// remain before anything is allocated.
type leReader struct {
	buf []byte
	off int
	err error
}

func (p *leReader) rem() int { return len(p.buf) - p.off }

func (p *leReader) take(n int) []byte {
	if p.err != nil {
		return nil
	}
	if p.rem() < n {
		p.err = fmt.Errorf("checkpoint: snapshot payload truncated (%d bytes remain, need %d)", p.rem(), n)
		return nil
	}
	b := p.buf[p.off : p.off+n]
	p.off += n
	return b
}

func (p *leReader) u8() byte {
	b := p.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (p *leReader) u64() uint64 {
	b := p.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (p *leReader) i64() int64 { return int64(p.u64()) }

func (p *leReader) f64() float64 { return math.Float64frombits(p.u64()) }

// intField decodes a non-negative int-sized counter field.
func (p *leReader) intField(what string) int {
	v := p.u64()
	if p.err == nil && v > 1<<31 {
		p.err = fmt.Errorf("checkpoint: implausible snapshot %s %d", what, v)
		return 0
	}
	return int(v)
}

// count decodes an element count and validates it against the remaining
// payload bytes, so a corrupt count fails before any allocation.
func (p *leReader) count(what string, elemSize int) int {
	v := p.u64()
	if p.err != nil {
		return 0
	}
	if v > uint64(p.rem()/elemSize) {
		p.err = fmt.Errorf("checkpoint: snapshot %s count %d exceeds remaining payload (%d bytes)", what, v, p.rem())
		return 0
	}
	return int(v)
}

func (p *leReader) f32s(n int) []float32 {
	if p.err != nil || n == 0 {
		return nil
	}
	b := p.take(4 * n)
	if b == nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func (p *leReader) i32s(n int) []int32 {
	if p.err != nil || n == 0 {
		return nil
	}
	b := p.take(4 * n)
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}
