package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWassersteinIdentical(t *testing.T) {
	a := []float32{3, 1, 2}
	if d := Wasserstein1D(a, []float32{1, 2, 3}); d != 0 {
		t.Fatalf("permuted identical samples: d = %v, want 0", d)
	}
}

func TestWassersteinShift(t *testing.T) {
	// Shifting a distribution by c moves W1 by exactly c.
	a := []float32{0, 1, 2, 3}
	b := []float32{5, 6, 7, 8}
	if d := Wasserstein1D(a, b); math.Abs(d-5) > 1e-9 {
		t.Fatalf("shift distance = %v, want 5", d)
	}
}

func TestWassersteinSymmetric(t *testing.T) {
	a := []float32{1, -2, 0.5}
	b := []float32{4, 0, -1}
	if math.Abs(Wasserstein1D(a, b)-Wasserstein1D(b, a)) > 1e-12 {
		t.Fatal("W1 must be symmetric")
	}
}

func TestWassersteinEmpty(t *testing.T) {
	if Wasserstein1D(nil, nil) != 0 {
		t.Fatal("empty distance must be 0")
	}
}

func TestQuickWassersteinTriangleish(t *testing.T) {
	// Non-negativity and identity of indiscernibles, property-style.
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		if Wasserstein1D(raw, raw) != 0 {
			return false
		}
		other := make([]float32, len(raw))
		for i, v := range raw {
			other[i] = v + 1
		}
		return Wasserstein1D(raw, other) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsampledWassersteinSmallInput(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 4}
	if SubsampledWasserstein(a, b, 100) != Wasserstein1D(a, b) {
		t.Fatal("small inputs must use the exact distance")
	}
}

func TestSubsampledWassersteinApproximates(t *testing.T) {
	n := 10000
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = float32(i) / float32(n)
		b[i] = float32(i)/float32(n) + 2
	}
	exact := Wasserstein1D(a, b)
	approx := SubsampledWasserstein(a, b, 500)
	if math.Abs(exact-approx) > 0.05*exact {
		t.Fatalf("approx %v too far from exact %v", approx, exact)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if d := CosineSimilarity([]float32{1, 0}, []float32{1, 0}); math.Abs(d-1) > 1e-9 {
		t.Fatalf("parallel cos = %v", d)
	}
	if d := CosineSimilarity([]float32{1, 0}, []float32{0, 1}); math.Abs(d) > 1e-9 {
		t.Fatalf("orthogonal cos = %v", d)
	}
	if d := CosineSimilarity([]float32{1, 0}, []float32{-1, 0}); math.Abs(d+1) > 1e-9 {
		t.Fatalf("antiparallel cos = %v", d)
	}
	if d := CosineSimilarity([]float32{0, 0}, []float32{1, 0}); d != 0 {
		t.Fatalf("zero vector cos = %v, want 0", d)
	}
}

func TestAngleIsObtuse(t *testing.T) {
	if AngleIsObtuse([]float32{1, 0}, []float32{1, 1}) {
		t.Fatal("acute reported obtuse")
	}
	if !AngleIsObtuse([]float32{1, 0}, []float32{-1, 0.1}) {
		t.Fatal("obtuse not detected")
	}
}

func TestTopKDissimilar(t *testing.T) {
	ref := []float32{0, 0, 0}
	cands := [][]float32{
		{1, 1, 1}, // W1 = 1
		{5, 5, 5}, // W1 = 5
		{2, 2, 2}, // W1 = 2
		{0, 0, 0}, // W1 = 0
	}
	got := TopKDissimilar(ref, cands, 2, Wasserstein1D)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("TopKDissimilar = %v, want [1 2]", got)
	}
}

func TestTopKDissimilarKLargerThanCandidates(t *testing.T) {
	got := TopKDissimilar([]float32{0}, [][]float32{{1}}, 5, Wasserstein1D)
	if len(got) != 1 {
		t.Fatalf("clamped k: %v", got)
	}
}

func TestTopKDissimilarDeterministicTies(t *testing.T) {
	ref := []float32{0}
	cands := [][]float32{{1}, {1}, {1}}
	got := TopKDissimilar(ref, cands, 2, Wasserstein1D)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("ties must break by index: %v", got)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty stats must be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {1, 50}, {0.5, 35},
		{0.25, 20}, {0.75, 40},
		{0.4, 29}, // rank 1.6 between 20 and 35: 20 + 0.6*15
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if xs[0] != 15 || xs[4] != 50 {
		t.Fatalf("input mutated: %v", xs)
	}
	if got := Percentile([]float64{7}, 0.99); got != 7 {
		t.Fatalf("singleton = %v", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range fraction must panic")
		}
	}()
	Percentile(xs, 1.5)
}
