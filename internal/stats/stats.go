// Package stats provides the distance and geometry utilities FedKNOW's
// signature-task selection relies on: the 1-D Wasserstein distance between
// gradient coordinate distributions, cosine similarity, and angle tests.
package stats

import (
	"math"
	"sort"

	"repro/internal/tensor"
)

// Wasserstein1D computes the 1-D (order-1) Wasserstein distance between the
// empirical distributions of two equal-length samples: the mean absolute
// difference of their sorted values. The paper uses Wasserstein distance to
// rank past-task gradients by dissimilarity to the current gradient
// (§III-C); the 1-D form over gradient coordinates is the standard
// tractable surrogate.
func Wasserstein1D(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("stats: Wasserstein1D length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	as := append([]float32(nil), a...)
	bs := append([]float32(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	var s float64
	for i := range as {
		s += math.Abs(float64(as[i]) - float64(bs[i]))
	}
	return s / float64(len(as))
}

// SubsampledWasserstein computes Wasserstein1D on a strided subsample of at
// most maxN coordinates, which is what the edge clients run: full gradients
// have millions of coordinates and sorting them every iteration would
// dominate training time.
func SubsampledWasserstein(a, b []float32, maxN int) float64 {
	if len(a) != len(b) {
		panic("stats: SubsampledWasserstein length mismatch")
	}
	if maxN <= 0 || len(a) <= maxN {
		return Wasserstein1D(a, b)
	}
	stride := len(a) / maxN
	sa := make([]float32, 0, maxN)
	sb := make([]float32, 0, maxN)
	for i := 0; i < len(a) && len(sa) < maxN; i += stride {
		sa = append(sa, a[i])
		sb = append(sb, b[i])
	}
	return Wasserstein1D(sa, sb)
}

// CosineSimilarity returns cos(θ) between two vectors; 0 when either has
// zero norm.
func CosineSimilarity(a, b []float32) float64 {
	na, nb := tensor.NormSlice(a), tensor.NormSlice(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return tensor.DotSlice(a, b) / (na * nb)
}

// AngleIsObtuse reports whether two vectors form an obtuse angle
// (dot product < 0), the condition that triggers gradient integration.
func AngleIsObtuse(a, b []float32) bool {
	return tensor.DotSlice(a, b) < 0
}

// TopKDissimilar returns the indices of the k candidates whose distance to
// ref (per dist) is largest, in descending distance order. It implements the
// signature-task selection rule: the most dissimilar past tasks are the ones
// most endangered by the current update.
func TopKDissimilar(ref []float32, candidates [][]float32, k int, dist func(a, b []float32) float64) []int {
	type scored struct {
		idx int
		d   float64
	}
	ss := make([]scored, len(candidates))
	for i, c := range candidates {
		ss[i] = scored{i, dist(ref, c)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].d != ss[j].d {
			return ss[i].d > ss[j].d
		}
		return ss[i].idx < ss[j].idx
	})
	if k > len(ss) {
		k = len(ss)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ss[i].idx
	}
	return out
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-quantile of xs (p in [0, 1]) with linear
// interpolation between adjacent order statistics — the estimator the load
// harness uses for its p50/p99 fold-latency figures. xs is not modified.
// Returns 0 for empty input; panics when p is outside [0, 1].
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 1 {
		panic("stats: Percentile fraction outside [0, 1]")
	}
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
