package metrics

import (
	"math"
	"testing"
)

func TestMatrixShape(t *testing.T) {
	m := NewMatrix(3)
	if len(m.Acc) != 3 || len(m.Acc[0]) != 1 || len(m.Acc[2]) != 3 {
		t.Fatal("triangular matrix shape wrong")
	}
}

func TestAvgAccuracy(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 0.8)
	m.Set(1, 0, 0.6)
	m.Set(1, 1, 0.9)
	if got := m.AvgAccuracy(0); got != 0.8 {
		t.Fatalf("AvgAccuracy(0) = %v", got)
	}
	if got := m.AvgAccuracy(1); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("AvgAccuracy(1) = %v", got)
	}
}

func TestForgettingRateDefinition(t *testing.T) {
	// Task 0 at 0.8 right after learning, 0.6 after task 1:
	// forgetting = (0.8−0.6)/0.8 = 0.25.
	m := NewMatrix(2)
	m.Set(0, 0, 0.8)
	m.Set(1, 0, 0.6)
	m.Set(1, 1, 0.9)
	if got := m.ForgettingRate(1); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("ForgettingRate = %v, want 0.25", got)
	}
}

func TestForgettingRateBounds(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 0.5)
	m.Set(1, 0, 0.7) // backward transfer: clamp to 0
	if got := m.ForgettingRate(1); got != 0 {
		t.Fatalf("negative forgetting must clamp: %v", got)
	}
	m.Set(1, 0, -0.1) // impossible, but clamp guards anyway
	if got := m.ForgettingRate(1); got != 1 {
		t.Fatalf("overflow forgetting must clamp to 1: %v", got)
	}
	if m.ForgettingRate(0) != 0 {
		t.Fatal("first task has no forgetting")
	}
}

func TestForgettingRateSkipsZeroBase(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 0)
	m.Set(1, 0, 0)
	if got := m.ForgettingRate(1); got != 0 {
		t.Fatalf("zero-accuracy base must be skipped: %v", got)
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy must be 0")
	}
}
