// Package metrics implements the evaluation measures of §V: task-aware
// top-1 accuracy, average accuracy over learned tasks, and the forgetting
// rate of §V-D.
package metrics

// Matrix is the continual-learning accuracy matrix: Acc[i][j] is the
// accuracy on task j measured after learning tasks 0..i (j ≤ i).
type Matrix struct {
	Acc [][]float64
}

// NewMatrix returns an empty matrix for n tasks.
func NewMatrix(n int) *Matrix {
	m := &Matrix{Acc: make([][]float64, n)}
	for i := range m.Acc {
		m.Acc[i] = make([]float64, i+1)
	}
	return m
}

// Set records accuracy on task j after learning task i.
func (m *Matrix) Set(after, task int, acc float64) { m.Acc[after][task] = acc }

// Get reads accuracy on task j after learning task i.
func (m *Matrix) Get(after, task int) float64 { return m.Acc[after][task] }

// AvgAccuracy is the paper's reported accuracy for task t_m: the average
// accuracy over all m learned tasks (0-based index `after`).
func (m *Matrix) AvgAccuracy(after int) float64 {
	row := m.Acc[after]
	var s float64
	for _, a := range row {
		s += a
	}
	return s / float64(len(row))
}

// ForgettingRate implements §V-D: after learning m tasks, the forgetting
// rate of task k (k < m) is (acc_after_k − acc_after_m) / acc_after_k,
// clamped to [0, 1]; the reported value is the mean over all previous tasks.
func (m *Matrix) ForgettingRate(after int) float64 {
	if after == 0 {
		return 0
	}
	var s float64
	n := 0
	for k := 0; k < after; k++ {
		orig := m.Acc[k][k]
		if orig <= 0 {
			continue
		}
		f := (orig - m.Acc[after][k]) / orig
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		s += f
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Accuracy computes top-1 accuracy from prediction/label pairs.
func Accuracy(pred, labels []int) float64 {
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}
