package prune

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestTopK(t *testing.T) {
	cases := []struct {
		n    int
		rho  float64
		want int
	}{
		{100, 0.1, 10},
		{100, 0.05, 5},
		{100, 0.2, 20},
		{3, 0.1, 1},   // at least one
		{10, 1.5, 10}, // clamped to n
		{0, 0.1, 0},
		{10, 0, 0},
	}
	for _, c := range cases {
		if got := TopK(c.n, c.rho); got != c.want {
			t.Fatalf("TopK(%d, %v) = %d, want %d", c.n, c.rho, got, c.want)
		}
	}
}

func TestExtractKeepsLargestMagnitudes(t *testing.T) {
	w := []float32{0.1, -5, 0.2, 3, -0.05}
	s := Extract(w, 0.4) // keep 2
	if s.Len() != 2 {
		t.Fatalf("kept %d, want 2", s.Len())
	}
	// Largest |w| are -5 (idx 1) and 3 (idx 3); indices stored ascending.
	if s.Indices[0] != 1 || s.Indices[1] != 3 {
		t.Fatalf("indices = %v, want [1 3]", s.Indices)
	}
	if s.Values[0] != -5 || s.Values[1] != 3 {
		t.Fatalf("values = %v", s.Values)
	}
}

func TestDensifyZeroesRest(t *testing.T) {
	w := []float32{1, -9, 2, 8}
	s := Extract(w, 0.5)
	d := s.Densify()
	want := []float32{0, -9, 0, 8}
	for i, v := range want {
		if d[i] != v {
			t.Fatalf("densify[%d] = %v, want %v", i, d[i], v)
		}
	}
}

func TestPasteIntoKeepsOthers(t *testing.T) {
	w := []float32{1, -9, 2, 8}
	s := Extract(w, 0.5)
	dst := []float32{10, 20, 30, 40}
	s.PasteInto(dst)
	want := []float32{10, -9, 30, 8}
	for i, v := range want {
		if dst[i] != v {
			t.Fatalf("paste[%d] = %v, want %v", i, dst[i], v)
		}
	}
}

func TestRefreshReReads(t *testing.T) {
	w := []float32{1, -9, 2, 8}
	s := Extract(w, 0.5)
	w[1] = -11
	s.Refresh(w)
	if s.Values[0] != -11 {
		t.Fatalf("refresh did not pick up new value: %v", s.Values)
	}
}

func TestMask(t *testing.T) {
	w := []float32{1, -9, 2, 8}
	m := Extract(w, 0.5).Mask()
	want := []bool{false, true, false, true}
	for i, v := range want {
		if m[i] != v {
			t.Fatalf("mask[%d] = %v, want %v", i, m[i], v)
		}
	}
}

func TestBytesAccounting(t *testing.T) {
	w := make([]float32, 1000)
	for i := range w {
		w[i] = float32(i)
	}
	s := Extract(w, 0.1)
	if s.Bytes() != 100*8 {
		t.Fatalf("Bytes = %d, want 800", s.Bytes())
	}
}

// Property: extraction keeps exactly TopK(n, rho) weights and every kept
// magnitude is >= every dropped magnitude.
func TestQuickExtractInvariants(t *testing.T) {
	rng := tensor.NewRNG(3)
	f := func(seed uint16) bool {
		r := rng.Fork(uint64(seed))
		n := 1 + r.Intn(200)
		w := make([]float32, n)
		r.FillNorm(w, 1)
		rho := 0.05 + 0.4*r.Float64()
		s := Extract(w, rho)
		if s.Len() != TopK(n, rho) {
			return false
		}
		kept := make(map[int32]bool, s.Len())
		var minKept float32 = 1e30
		for i, idx := range s.Indices {
			kept[idx] = true
			if s.Values[i] != w[idx] {
				return false
			}
			if a := abs32(w[idx]); a < minKept {
				minKept = a
			}
		}
		for i, v := range w {
			if !kept[int32(i)] && abs32(v) > minKept {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
