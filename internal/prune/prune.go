// Package prune implements magnitude-based weight pruning and the sparse
// signature-knowledge store (Eq. 1 of the FedKNOW paper): after a task is
// learned, the top-ρ fraction of weights by absolute value is retained as
// that task's knowledge, the rest is discarded.
package prune

import (
	"fmt"

	"repro/internal/tensor"
)

// SparseStore holds the retained weights of one task. It is the shared
// tensor.SparseVec sparse-vector type (parallel slices of ascending flat
// indices and values), so a store plugs directly into the sparse update
// pipeline — the wire codec's sparse frames and the server's sparse
// aggregation kernels — without conversion. Memory footprint is 8 bytes per
// retained weight versus 4 bytes per weight for the dense model, so ρ = 10%
// costs one fifth of a full model copy.
type SparseStore = tensor.SparseVec

// TopK returns the count of weights a ratio rho selects out of n (at least 1
// for any positive rho and n).
func TopK(n int, rho float64) int {
	if n == 0 || rho <= 0 {
		return 0
	}
	k := int(float64(n)*rho + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Extract retains the top-ρ fraction of weights by |w| as a SparseStore.
// Selection runs in O(n) via quickselect on the magnitude threshold; ties at
// the threshold are broken by ascending index, matching a full (|w| desc,
// index asc) sort. NaN magnitudes (diverged models) rank as zero.
func Extract(w []float32, rho float64) *SparseStore {
	k := TopK(len(w), rho)
	if k == 0 {
		return &SparseStore{N: len(w)}
	}
	mag := make([]float32, len(w))
	for i, v := range w {
		mag[i] = absOrZero(v)
	}
	t := kthLargest(mag, k)
	greater := 0
	for _, v := range w {
		if absOrZero(v) > t {
			greater++
		}
	}
	ties := k - greater
	sel := make([]int32, 0, k)
	vals := make([]float32, 0, k)
	for i, v := range w {
		a := absOrZero(v)
		if a > t {
			sel = append(sel, int32(i))
			vals = append(vals, v)
		} else if a == t && ties > 0 {
			ties--
			sel = append(sel, int32(i))
			vals = append(vals, v)
		}
	}
	return &SparseStore{N: len(w), Indices: sel, Values: vals}
}

// absOrZero is |v| with NaN mapped to 0 so selection has a total order.
func absOrZero(v float32) float32 {
	if v != v {
		return 0
	}
	return abs32(v)
}

// kthLargest returns the k-th largest value of a (1-based) by iterative
// quickselect with a median-of-three pivot and three-way partitioning, so
// heavily-duplicated inputs (sparse deltas are mostly zeros) stay linear
// instead of degrading quadratically. The slice is permuted in place.
func kthLargest(a []float32, k int) float32 {
	pos := k - 1
	lo, hi := 0, len(a)-1
	for lo < hi {
		// Median-of-three pivot value.
		p0, p1, p2 := a[lo], a[lo+(hi-lo)/2], a[hi]
		if p0 > p1 {
			p0, p1 = p1, p0
		}
		if p1 > p2 {
			p1 = p2
			if p0 > p1 {
				p1 = p0
			}
		}
		pivot := p1
		// Dutch-flag partition, descending: [ >pivot | ==pivot | <pivot ].
		lt, gt := lo, hi
		for i := lo; i <= gt; {
			switch v := a[i]; {
			case v > pivot:
				a[lt], a[i] = a[i], a[lt]
				lt++
				i++
			case v < pivot:
				a[i], a[gt] = a[gt], a[i]
				gt--
			default:
				i++
			}
		}
		switch {
		case pos < lt:
			hi = lt - 1
		case pos > gt:
			lo = gt + 1
		default:
			return pivot
		}
	}
	return a[pos]
}

// ExtractSegments retains the top-ρ fraction of weights *within each
// segment* (one segment per parameter tensor). Layer-wise selection keeps
// every layer's strongest weights, so the pruned network still propagates
// signal; global selection would concentrate on the layers with the largest
// initialisation scale and zero out whole layers. segments must sum to
// len(w).
func ExtractSegments(w []float32, segments []int, rho float64) *SparseStore {
	out := &SparseStore{N: len(w)}
	off := 0
	for _, segLen := range segments {
		seg := Extract(w[off:off+segLen], rho)
		for i, idx := range seg.Indices {
			out.Indices = append(out.Indices, idx+int32(off))
			out.Values = append(out.Values, seg.Values[i])
		}
		off += segLen
	}
	if off != len(w) {
		panic(fmt.Sprintf("prune: segments sum %d, want %d", off, len(w)))
	}
	return out
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
