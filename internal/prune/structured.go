package prune

import (
	"fmt"
	"math"
	"sort"
)

// Norm selects the filter-ranking norm for structured pruning. §III-B notes
// the knowledge extractor extends to structured techniques such as L1- or
// L2-norm filter pruning [29]; this file provides that extension.
type Norm int

// Supported filter norms.
const (
	L1 Norm = iota
	L2
)

// FilterScores ranks the outC filters of a convolution kernel laid out as
// (outC, fanIn) by the chosen norm, returning one score per filter.
func FilterScores(w []float32, outC, fanIn int, n Norm) []float64 {
	if len(w) != outC*fanIn {
		panic(fmt.Sprintf("prune: kernel length %d != %d×%d", len(w), outC, fanIn))
	}
	scores := make([]float64, outC)
	for f := 0; f < outC; f++ {
		row := w[f*fanIn : (f+1)*fanIn]
		var s float64
		for _, v := range row {
			if n == L1 {
				s += math.Abs(float64(v))
			} else {
				s += float64(v) * float64(v)
			}
		}
		if n == L2 {
			s = math.Sqrt(s)
		}
		scores[f] = s
	}
	return scores
}

// TopFilters returns the indices of the ⌈ρ·outC⌉ highest-scoring filters in
// ascending index order (at least one for positive ρ).
func TopFilters(scores []float64, rho float64) []int {
	k := TopK(len(scores), rho)
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	sel := append([]int(nil), idx[:k]...)
	sort.Ints(sel)
	return sel
}

// ExtractFilters builds a SparseStore retaining the complete rows of the
// selected top-ρ filters of one convolution kernel — structured knowledge
// that preserves whole feature detectors instead of scattered weights.
func ExtractFilters(w []float32, outC, fanIn int, rho float64, n Norm) *SparseStore {
	filters := TopFilters(FilterScores(w, outC, fanIn, n), rho)
	out := &SparseStore{N: len(w)}
	for _, f := range filters {
		for j := 0; j < fanIn; j++ {
			idx := int32(f*fanIn + j)
			out.Indices = append(out.Indices, idx)
			out.Values = append(out.Values, w[idx])
		}
	}
	return out
}
