package prune

import (
	"math"
	"testing"
)

func TestFilterScoresL1L2(t *testing.T) {
	// 2 filters of fanIn 2: (3, -4) and (1, 0).
	w := []float32{3, -4, 1, 0}
	l1 := FilterScores(w, 2, 2, L1)
	if l1[0] != 7 || l1[1] != 1 {
		t.Fatalf("L1 = %v", l1)
	}
	l2 := FilterScores(w, 2, 2, L2)
	if math.Abs(l2[0]-5) > 1e-12 || math.Abs(l2[1]-1) > 1e-12 {
		t.Fatalf("L2 = %v", l2)
	}
}

func TestFilterScoresValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad geometry")
		}
	}()
	FilterScores([]float32{1, 2, 3}, 2, 2, L1)
}

func TestTopFilters(t *testing.T) {
	scores := []float64{0.1, 5, 2, 3}
	got := TopFilters(scores, 0.5) // keep 2: indices 1, 3
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("TopFilters = %v", got)
	}
	// At least one filter survives any positive rho.
	if got := TopFilters(scores, 0.01); len(got) != 1 || got[0] != 1 {
		t.Fatalf("minimum retention: %v", got)
	}
}

func TestTopFiltersTieBreak(t *testing.T) {
	got := TopFilters([]float64{1, 1, 1}, 0.67)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("ties must break by index: %v", got)
	}
}

func TestExtractFiltersKeepsWholeRows(t *testing.T) {
	// 3 filters × fanIn 2; filter 1 dominates.
	w := []float32{0.1, 0.1, 9, 9, 0.2, 0.2}
	s := ExtractFilters(w, 3, 2, 0.34, L2) // keep 1 filter
	if s.Len() != 2 {
		t.Fatalf("kept %d weights, want the full filter row (2)", s.Len())
	}
	if s.Indices[0] != 2 || s.Indices[1] != 3 {
		t.Fatalf("indices %v, want [2 3]", s.Indices)
	}
	d := s.Densify()
	want := []float32{0, 0, 9, 9, 0, 0}
	for i, v := range want {
		if d[i] != v {
			t.Fatalf("densify[%d] = %v", i, d[i])
		}
	}
}

func TestExtractFiltersStoreInterop(t *testing.T) {
	// Structured stores round-trip through the same SparseStore API the
	// unstructured extractor uses (PasteInto, Mask, Refresh).
	w := []float32{1, 2, 8, 9}
	s := ExtractFilters(w, 2, 2, 0.5, L1)
	mask := s.Mask()
	if mask[0] || mask[1] || !mask[2] || !mask[3] {
		t.Fatalf("mask %v", mask)
	}
	w[2] = 11
	s.Refresh(w)
	if s.Values[0] != 11 {
		t.Fatal("Refresh must re-read filter weights")
	}
}
