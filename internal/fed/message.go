package fed

import "repro/internal/tensor"

// Kind discriminates the round-lifecycle message types on a Transport.
type Kind byte

// Message kinds. KindHello is a transport-level frame used only during wire
// connection setup (client identification: fresh, rejoining, or joining —
// and, since v5, the server's seat-assignment reply to a join); KindCatchup
// is the server's reply to a rejoin or join hello; KindLeave retires a seat
// cleanly; the remaining four are the §III-A round lifecycle.
const (
	KindHello       Kind = 0
	KindRoundStart  Kind = 1
	KindUpdate      Kind = 2
	KindGlobalModel Kind = 3
	KindRoundEnd    Kind = 4
	KindCatchup     Kind = 5
	KindLeave       Kind = 6
)

// Msg is one typed protocol message. The concrete types are RoundStart,
// Update, GlobalModel and RoundEnd.
type Msg interface {
	Kind() Kind
}

// RoundStart (server → client) opens one aggregation round of one task.
type RoundStart struct {
	TaskIdx int
	Round   int
	// Participate is false when the server's failure injection dropped the
	// client for this round: it skips local training and aggregation but
	// still acknowledges the round so the protocol stays in lockstep.
	Participate bool
	// TaskDone marks the task's final round: after it the client runs its
	// TaskEnd hook, the memory check, evaluation, and replies RoundEnd.
	TaskDone bool
}

// Kind identifies the message type.
func (*RoundStart) Kind() Kind { return KindRoundStart }

// Update (client → server) carries one round of local training: the flat
// parameter vector, the aggregation weight, and the device accounting the
// server folds into the synchronous-round clock. Over LoopbackTransport
// Params aliases the client's scratch buffer (zero copy); the client must
// not mutate it until the server's GlobalModel arrives.
type Update struct {
	ClientID int
	// Participating is false for a dropped-out client's empty acknowledgement;
	// such updates carry no parameters and are excluded from aggregation.
	Participating bool
	// Weight is the FedAvg aggregation weight (the client's training-sample
	// count for the task; zero is treated as one by WeightedFedAvg).
	Weight float64
	// Params is the dense parameter vector. Exactly one of Params and Sparse
	// is set on a participating update.
	Params []float32
	// Sparse carries the parameter vector in sparse form — coordinates not
	// stored are zero. A masked update (ρ-pruned knowledge, a delta against
	// a shared reference) costs O(active knowledge) to ship and aggregate
	// instead of O(model); the wire codec also decodes its sparse frames to
	// this form so the server reduces them without densifying.
	Sparse *tensor.SparseVec
	// BaseVersion is the version of the global model the client trained this
	// update from (the Version of the last GlobalModel it installed; 0 before
	// any install — the shared initial model). The synchronous scheduler
	// ignores it; the asynchronous scheduler uses it to compute the update's
	// staleness (current global version − BaseVersion) for staleness
	// weighting and the -max-staleness rejection bound.
	BaseVersion uint64
	// ComputeSeconds is the simulated device time for this round's local
	// iterations (work / device throughput).
	ComputeSeconds float64
	// UpBytes / DownBytes are the round's communication payloads in each
	// direction: dense model bytes plus the strategy's extra traffic.
	UpBytes   int64
	DownBytes int64
}

// Kind identifies the message type.
func (*Update) Kind() Kind { return KindUpdate }

// ParamLen returns the logical parameter-vector length in either
// representation (0 for a dropped-out acknowledgement).
func (u *Update) ParamLen() int {
	if u.Sparse != nil {
		return u.Sparse.N
	}
	return len(u.Params)
}

// GlobalModel (server → client) broadcasts the aggregated flat parameter
// vector. Under the synchronous scheduler it goes to the round's
// participants and Params may alias aggregator scratch over
// LoopbackTransport, which is only rewritten after every participant has
// acknowledged the round. Under the asynchronous scheduler every commit is
// broadcast to every alive client and Params is a per-commit copy that is
// never mutated afterwards (versioned commit buffers), so frames queued
// behind a training client stay intact.
type GlobalModel struct {
	Params []float32
	// Version is the global model's commit version: 0 for the shared initial
	// model, incremented by one at every aggregation commit. Versions are
	// monotone over a run (they do not reset at task boundaries).
	Version uint64
	// TaskFinal marks the task's closing broadcast under the asynchronous
	// scheduler: after installing it the client evaluates and replies
	// RoundEnd. It re-announces the latest committed version, so a TaskFinal
	// frame may repeat the Version of the preceding commit. Always false
	// under the synchronous scheduler (lockstep clients use
	// RoundStart.TaskDone instead).
	TaskFinal bool
}

// Kind identifies the message type.
func (*GlobalModel) Kind() Kind { return KindGlobalModel }

// RoundEnd (client → server) closes a task for one client: task-aware
// accuracy on every learned task, or a death report when the device ran out
// of memory (the heterogeneity study's eviction path).
type RoundEnd struct {
	ClientID int
	// Dead reports that the client OOMed at this task; it sends nothing
	// further and EvalAccs is nil.
	Dead bool
	// EvalAccs[p] is the client's accuracy on task p, for p ≤ the task just
	// finished.
	EvalAccs []float64
}

// Kind identifies the message type.
func (*RoundEnd) Kind() Kind { return KindRoundEnd }

// Catchup (server → client) is the reply to a rejoin or join hello:
// everything a client splicing into the asynchronous round lifecycle needs —
// a rejoiner keeps its local training state, a joiner starts from the
// current committed global. The server sends it once, on the fresh
// connection (for a join, right after the seat-assignment hello), before the
// normal message flow resumes.
type Catchup struct {
	// TaskIdx is the task currently being scheduled — the rejoining client
	// may have missed task boundaries (and their RoundStart announcements)
	// while it was gone, so the catch-up re-announces the position.
	TaskIdx int
	// Seen is how many of this client's uploads the server has already
	// received for the current task — the round index to resume from. An
	// upload lost in flight when the connection died is simply retrained:
	// the server's count is authoritative.
	Seen int
	// Version is the current committed global-model version.
	Version uint64
	// Params is the current committed global model, the catch-up payload a
	// stale client installs before resuming. Empty when there is nothing
	// newer than the client's last-seen version (or nothing has been
	// committed yet): the client keeps its local parameters.
	Params []float32
	// TaskFinal reports that the task's collect phase already closed and
	// the task-final broadcast went out while the client was gone: Params
	// is that final global, and the client should install it, evaluate,
	// and reply RoundEnd instead of training further rounds.
	TaskFinal bool
	// TaskDone reports that this seat already completed the task (its
	// RoundEnd was received before the connection dropped): the client
	// installs Params to stay current and waits for the next task's
	// RoundStart.
	TaskDone bool
}

// Kind identifies the message type.
func (*Catchup) Kind() Kind { return KindCatchup }

// Leave (client → server) retires a seat cleanly: the client is done
// federating and will send nothing further. Unlike a transport failure —
// which the asynchronous scheduler treats as an eviction (logged, counted,
// recorded in Result.DeadAfter) — a leave is a normal membership event: the
// seat's books close, its folded-but-uncommitted updates stand, the commit
// weighting renormalizes over the remaining live set at the next commit,
// and nothing is recorded as dead. The seat ID is never reused, so the
// departed client may later rejoin it with the v4 rejoin handshake.
type Leave struct {
	// ClientID is the departing seat; it must match the link it arrives on
	// (the same anti-impersonation check every Update carries).
	ClientID int
}

// Kind identifies the message type.
func (*Leave) Kind() Kind { return KindLeave }
