package fed

import "math"

// Quant selects the lossy value encoding of parameter payloads. The default,
// QuantNone, ships raw IEEE-754 float32 bits and is bit-exact; fp16 and int8
// trade precision for 2× / 4× fewer bytes on the wire and are therefore
// opt-in (they change results, so both ends of a link must agree — the Hello
// handshake enforces it).
type Quant uint8

// Supported value encodings.
const (
	QuantNone Quant = iota
	QuantF16
	QuantI8
)

// String names the mode the way the CLI -compress flag spells it.
func (q Quant) String() string {
	switch q {
	case QuantNone:
		return "none"
	case QuantF16:
		return "fp16"
	case QuantI8:
		return "int8"
	}
	return "unknown"
}

// QuantByName parses a -compress flag value.
func QuantByName(s string) (Quant, bool) {
	switch s {
	case "", "none":
		return QuantNone, true
	case "fp16":
		return QuantF16, true
	case "int8":
		return QuantI8, true
	}
	return QuantNone, false
}

// valueBytes is the wire size of one encoded value.
func (q Quant) valueBytes() int {
	switch q {
	case QuantF16:
		return 2
	case QuantI8:
		return 1
	}
	return 4
}

// f32ToF16 converts a float32 to IEEE-754 binary16 bits with round-to-
// nearest-even, the conversion hardware FP units implement. Overflow goes to
// infinity, underflow to (sub)normal halves or signed zero, NaN payloads keep
// their top mantissa bits.
func f32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16((b >> 16) & 0x8000)
	mag := b & 0x7FFFFFFF
	if mag > 0x7F800000 { // NaN: preserve top payload bits, force non-zero
		m := uint16((mag >> 13) & 0x3FF)
		if m == 0 {
			m = 0x200
		}
		return sign | 0x7C00 | m
	}
	if mag == 0x7F800000 { // ±Inf
		return sign | 0x7C00
	}
	e := int32(mag>>23) - 127 + 15
	m := mag & 0x7FFFFF
	if e >= 0x1F { // overflow before rounding
		return sign | 0x7C00
	}
	if e <= 0 { // subnormal half or zero
		if e < -10 {
			return sign
		}
		m |= 0x800000
		shift := uint32(14 - e)
		h := uint16(m >> shift)
		rem := m & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && h&1 == 1) {
			h++ // may carry into the exponent: that is the smallest normal
		}
		return sign | h
	}
	h := uint16(e<<10) | uint16(m>>13)
	rem := m & 0x1FFF
	if rem > 0x1000 || (rem == 0x1000 && h&1 == 1) {
		h++ // mantissa carry ripples into the exponent, saturating at Inf
	}
	return sign | h
}

// f16ToF32 converts IEEE-754 binary16 bits to float32 (exact: every half
// value is representable).
func f16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	e := uint32(h >> 10 & 0x1F)
	m := uint32(h & 0x3FF)
	switch {
	case e == 0:
		if m == 0 {
			return math.Float32frombits(sign)
		}
		e = 1
		for m&0x400 == 0 { // normalise the subnormal
			m <<= 1
			e--
		}
		m &= 0x3FF
		return math.Float32frombits(sign | (e+112)<<23 | m<<13)
	case e == 0x1F:
		return math.Float32frombits(sign | 0x7F800000 | m<<13)
	}
	return math.Float32frombits(sign | (e+112)<<23 | m<<13)
}

// i8Scale returns the symmetric per-tensor quantisation scale for the values:
// the maximum finite magnitude mapped to ±127. Zero (or all-NaN) input yields
// scale 0, which round-trips every value to exact zero.
func i8Scale(vals []float32) float32 {
	var maxAbs float32
	for _, v := range vals {
		a := v
		if a < 0 {
			a = -a
		}
		// NaN fails both comparisons; +Inf would poison the scale, so clamp
		// to the largest finite magnitude.
		if a > maxAbs {
			if a > math.MaxFloat32 {
				a = math.MaxFloat32
			}
			maxAbs = a
		}
	}
	return maxAbs / 127
}

// i8Quantize maps a value to its int8 code under the scale (round-to-nearest-
// even, clamped; NaN maps to 0).
func i8Quantize(v, scale float32) int8 {
	if scale == 0 || v != v {
		return 0
	}
	q := math.RoundToEven(float64(v) / float64(scale))
	if q > 127 {
		q = 127
	}
	if q < -127 {
		q = -127
	}
	return int8(q)
}
