package fed

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// watchLogs routes ServerConfig.Logf lines to a channel so scripted tests
// can synchronise on server-side events (evictions land asynchronously —
// the reader goroutine has to notice the closed link first).
func watchLogs() (logf func(string, ...any), wait func(t *testing.T, substr string)) {
	ch := make(chan string, 64)
	logf = func(f string, a ...any) {
		select {
		case ch <- fmt.Sprintf(f, a...):
		default:
		}
	}
	wait = func(t *testing.T, substr string) {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for {
			select {
			case line := <-ch:
				if strings.Contains(line, substr) {
					return
				}
			case <-deadline:
				t.Fatalf("timed out waiting for server log containing %q", substr)
			}
		}
	}
	return logf, wait
}

func recvRoundStart(t *testing.T, end Transport) *RoundStart {
	t.Helper()
	msg, err := end.Recv()
	if err != nil {
		t.Fatal(err)
	}
	rs, ok := msg.(*RoundStart)
	if !ok {
		t.Fatalf("got %T, want *RoundStart", msg)
	}
	return rs
}

func recvGlobal(t *testing.T, end Transport) *GlobalModel {
	t.Helper()
	msg, err := end.Recv()
	if err != nil {
		t.Fatal(err)
	}
	gm, ok := msg.(*GlobalModel)
	if !ok {
		t.Fatalf("got %T, want *GlobalModel", msg)
	}
	return gm
}

func recvCatchup(t *testing.T, end Transport) *Catchup {
	t.Helper()
	msg, err := end.Recv()
	if err != nil {
		t.Fatal(err)
	}
	cu, ok := msg.(*Catchup)
	if !ok {
		t.Fatalf("got %T, want *Catchup", msg)
	}
	return cu
}

func sendUpdate(t *testing.T, end Transport, id int, base uint64, v float32) {
	t.Helper()
	if err := end.Send(&Update{ClientID: id, Participating: true, Weight: 1,
		BaseVersion: base, Params: []float32{v}}); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncRejoinMidTaskResumes pins the tentpole contract with scripted
// peers: a client that drops mid-task and rejoins gets a Catchup naming the
// current task, the number of its uploads the server already holds, and the
// *current* global version with its parameters; it then finishes the task
// on the fresh link, and the run ends with the seat restored — AliveClients
// back to the cohort size, DeadAfter empty, and the rejoined client's
// accuracy in the matrix.
func TestAsyncRejoinMidTaskResumes(t *testing.T) {
	s0, c0 := LoopbackCap(64)
	s1, c1 := LoopbackCap(64)
	logf, waitLog := watchLogs()
	rejoins := make(chan RejoinRequest, 2)
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 2, Scheduler: SchedulerAsync,
		Async: AsyncConfig{CommitEvery: 1},
		Logf:  logf,
	}, nil, []Transport{s0, s1})
	srv.SetRejoins(rejoins)
	done := make(chan *Result, 1)
	go func() {
		res, err := srv.Run(context.Background())
		if err != nil {
			t.Errorf("server: %v", err)
		}
		done <- res
	}()

	recvRoundStart(t, c0)
	recvRoundStart(t, c1)
	sendUpdate(t, c0, 0, 0, 2) // commit v1 = [2]
	if gm := recvGlobal(t, c0); gm.Version != 1 {
		t.Fatalf("commit 1 version %d", gm.Version)
	}
	recvGlobal(t, c1)
	sendUpdate(t, c1, 1, 1, 6) // commit v2 = [6]
	recvGlobal(t, c0)
	recvGlobal(t, c1)

	// Client 1 drops after its first upload; wait until the seat is evicted.
	c1.Close()
	waitLog(t, "evicted client 1")

	// Rejoin on a fresh link, last-seen version 1 (it installed v1 before
	// the drop).
	sNew, cNew := LoopbackCap(64)
	rejoins <- RejoinRequest{ClientID: 1, LastVersion: 1, Link: sNew}
	cu := recvCatchup(t, cNew)
	if cu.TaskIdx != 0 || cu.Seen != 1 || cu.TaskFinal || cu.TaskDone {
		t.Fatalf("catch-up %+v, want task 0, seen 1, no flags", cu)
	}
	if cu.Version != 2 || len(cu.Params) != 1 || cu.Params[0] != 6 {
		t.Fatalf("catch-up global v%d %v, want the current v2 [6]", cu.Version, cu.Params)
	}

	// The rejoined seat resumes at round Seen=1: one upload left, fresh
	// against the catch-up version.
	sendUpdate(t, cNew, 1, cu.Version, 10) // commit v3 = [10]
	recvGlobal(t, c0)
	recvGlobal(t, cNew)
	sendUpdate(t, c0, 0, 3, 14) // c0's second upload → commit v4, all in
	recvGlobal(t, c0)
	recvGlobal(t, cNew)
	f0, f1 := recvGlobal(t, c0), recvGlobal(t, cNew)
	if !f0.TaskFinal || !f1.TaskFinal {
		t.Fatalf("task-final flags %v/%v", f0.TaskFinal, f1.TaskFinal)
	}
	c0.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.6}})
	cNew.Send(&RoundEnd{ClientID: 1, EvalAccs: []float64{0.8}})

	res := <-done
	if len(res.DeadAfter) != 0 {
		t.Fatalf("DeadAfter = %v, want empty after rejoin", res.DeadAfter)
	}
	if srv.AliveClients() != 2 {
		t.Fatalf("%d alive clients, want the full cohort of 2", srv.AliveClients())
	}
	if got := res.Matrix.Get(0, 0); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("matrix row %v, want both reports averaged (0.7) — the rejoined client's accuracy must count", got)
	}
}

// TestAsyncRejoinStaleGetsFreshCatchup: a client whose last-seen version is
// far beyond -max-staleness is not rejected at rejoin — staleness bounds
// *updates*, not seats. It gets a fresh catch-up (the current version and
// parameters) and its post-catch-up uploads are fresh and accepted.
func TestAsyncRejoinStaleGetsFreshCatchup(t *testing.T) {
	s0, c0 := LoopbackCap(64)
	s1, c1 := LoopbackCap(64)
	logf, waitLog := watchLogs()
	rejoins := make(chan RejoinRequest, 2)
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 3, Scheduler: SchedulerAsync,
		Async: AsyncConfig{CommitEvery: 1, MaxStaleness: 1},
		Logf:  logf,
	}, nil, []Transport{s0, s1})
	srv.SetRejoins(rejoins)
	var rounds []RoundStats
	srv.SetObserver(ObserverFuncs{Round: func(s RoundStats) { rounds = append(rounds, s) }})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := srv.Run(context.Background()); err != nil {
			t.Errorf("server: %v", err)
		}
	}()

	recvRoundStart(t, c0)
	recvRoundStart(t, c1)
	// Client 1 drops before uploading anything; client 0 commits twice
	// (still owing its third, so the collect phase stays open).
	c1.Close()
	waitLog(t, "evicted client 1")
	sendUpdate(t, c0, 0, 0, 2)
	recvGlobal(t, c0)
	sendUpdate(t, c0, 0, 1, 4)
	recvGlobal(t, c0)

	// Rejoining 2 versions behind the current one — beyond MaxStaleness 1 —
	// must yield a fresh catch-up, not a rejection.
	sNew, cNew := LoopbackCap(64)
	rejoins <- RejoinRequest{ClientID: 1, LastVersion: 0, Link: sNew}
	cu := recvCatchup(t, cNew)
	if cu.TaskFinal || cu.TaskDone {
		t.Fatalf("catch-up %+v, want a plain mid-collect catch-up", cu)
	}
	if cu.Seen != 0 || cu.Version != 2 || len(cu.Params) != 1 || cu.Params[0] != 4 {
		t.Fatalf("catch-up %+v, want seen 0 with the fresh v2 [4]", cu)
	}
	step := func(end Transport, id int, base uint64, v float32) {
		sendUpdate(t, end, id, base, v)
		recvGlobal(t, c0)
		recvGlobal(t, cNew)
	}
	step(cNew, 1, cu.Version, 8) // fresh against the catch-up → v3
	step(cNew, 1, 3, 12)         // v4
	step(cNew, 1, 4, 16)         // v5
	step(c0, 0, 5, 20)           // client 0's last upload → v6, all in
	recvGlobal(t, c0)            // task final
	recvGlobal(t, cNew)
	c0.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.5}})
	cNew.Send(&RoundEnd{ClientID: 1, EvalAccs: []float64{0.5}})
	<-done

	accepted, stale := 0, 0
	for _, r := range rounds {
		accepted += r.Participants
		stale += r.Stale
	}
	if accepted != 6 || stale != 0 {
		t.Fatalf("accepted %d / stale %d, want all 6 accepted, 0 stale — the catch-up resets the seat's staleness", accepted, stale)
	}
}

// TestAsyncRejoinLiveSeatRefused: a rejoin claiming a seat that is still
// alive (a duplicate, or an impersonation attempt) is refused — the link is
// closed without a Catchup and the live seat is untouched. Out-of-range IDs
// are refused the same way.
func TestAsyncRejoinLiveSeatRefused(t *testing.T) {
	s0, c0 := LoopbackCap(64)
	s1, c1 := LoopbackCap(64)
	logf, waitLog := watchLogs()
	rejoins := make(chan RejoinRequest, 2)
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 1, Scheduler: SchedulerAsync,
		Async: AsyncConfig{CommitEvery: 2},
		Logf:  logf,
	}, nil, []Transport{s0, s1})
	srv.SetRejoins(rejoins)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := srv.Run(context.Background()); err != nil {
			t.Errorf("server: %v", err)
		}
	}()

	recvRoundStart(t, c0)
	recvRoundStart(t, c1)
	sDup, cDup := LoopbackCap(4)
	rejoins <- RejoinRequest{ClientID: 0, LastVersion: 0, Link: sDup}
	waitLog(t, "refused rejoin for client 0")
	if _, err := cDup.Recv(); err != io.EOF {
		t.Fatalf("double-rejoin of a live seat: peer got %v, want io.EOF (refusal)", err)
	}
	sBad, cBad := LoopbackCap(4)
	rejoins <- RejoinRequest{ClientID: 99, LastVersion: 0, Link: sBad}
	waitLog(t, "refused rejoin for unknown client 99")
	if _, err := cBad.Recv(); err != io.EOF {
		t.Fatalf("out-of-range rejoin: peer got %v, want io.EOF", err)
	}

	// The live cohort is unaffected: the task still completes on the
	// original links.
	sendUpdate(t, c0, 0, 0, 2)
	sendUpdate(t, c1, 1, 0, 4)
	recvGlobal(t, c0)
	recvGlobal(t, c1)
	recvGlobal(t, c0) // task final
	recvGlobal(t, c1)
	c0.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.5}})
	c1.Send(&RoundEnd{ClientID: 1, EvalAccs: []float64{0.5}})
	<-done
	if srv.AliveClients() != 2 {
		t.Fatalf("%d alive clients after refused rejoins, want 2", srv.AliveClients())
	}
}

// TestAsyncRejoinAfterFinalBroadcast: a seat that dropped after the task's
// collect phase closed (the task-final broadcast already went out) rejoins
// into the finish phase. An unreported seat gets a TaskFinal catch-up — it
// installs the final global, evaluates, and its report still lands in the
// matrix.
func TestAsyncRejoinAfterFinalBroadcast(t *testing.T) {
	s0, c0 := LoopbackCap(64)
	s1, c1 := LoopbackCap(64)
	logf, waitLog := watchLogs()
	rejoins := make(chan RejoinRequest, 2)
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 1, Scheduler: SchedulerAsync,
		Async: AsyncConfig{CommitEvery: 2},
		Logf:  logf,
	}, nil, []Transport{s0, s1})
	srv.SetRejoins(rejoins)
	done := make(chan *Result, 1)
	go func() {
		res, err := srv.Run(context.Background())
		if err != nil {
			t.Errorf("server: %v", err)
		}
		done <- res
	}()

	recvRoundStart(t, c0)
	recvRoundStart(t, c1)
	sendUpdate(t, c0, 0, 0, 2)
	sendUpdate(t, c1, 1, 0, 6)
	recvGlobal(t, c0) // commit v1
	recvGlobal(t, c1)
	recvGlobal(t, c0) // task final
	recvGlobal(t, c1)
	// Client 1 received the final broadcast but drops before reporting.
	c1.Close()
	waitLog(t, "evicted client 1")

	sNew, cNew := LoopbackCap(64)
	rejoins <- RejoinRequest{ClientID: 1, LastVersion: 1, Link: sNew}
	cu := recvCatchup(t, cNew)
	if !cu.TaskFinal || cu.TaskDone {
		t.Fatalf("catch-up %+v, want TaskFinal (the seat still owes its report)", cu)
	}
	if len(cu.Params) != 1 || cu.Params[0] != 4 {
		t.Fatalf("catch-up params %v, want the final global [4]", cu.Params)
	}
	cNew.Send(&RoundEnd{ClientID: 1, EvalAccs: []float64{0.9}})
	c0.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.7}})

	res := <-done
	if got := res.Matrix.Get(0, 0); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("matrix row %v, want both reports averaged (0.8)", got)
	}
	if len(res.DeadAfter) != 0 || srv.AliveClients() != 2 {
		t.Fatalf("seat not restored: DeadAfter %v, alive %d", res.DeadAfter, srv.AliveClients())
	}
}

// TestAsyncRejoinAfterReportGetsTaskDone: a seat that dropped *after* its
// RoundEnd landed rejoins into the finish phase. Its task is already
// closed, so the catch-up says TaskDone — the client must not evaluate or
// report again (a second report would corrupt the pending tally) — and the
// run completes with the original report standing.
func TestAsyncRejoinAfterReportGetsTaskDone(t *testing.T) {
	s0, c0 := LoopbackCap(64)
	s1, c1 := LoopbackCap(64)
	logf, waitLog := watchLogs()
	rejoins := make(chan RejoinRequest, 2)
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 1, Scheduler: SchedulerAsync,
		Async: AsyncConfig{CommitEvery: 2},
		Logf:  logf,
	}, nil, []Transport{s0, s1})
	srv.SetRejoins(rejoins)
	done := make(chan *Result, 1)
	go func() {
		res, err := srv.Run(context.Background())
		if err != nil {
			t.Errorf("server: %v", err)
		}
		done <- res
	}()

	recvRoundStart(t, c0)
	recvRoundStart(t, c1)
	sendUpdate(t, c0, 0, 0, 2)
	sendUpdate(t, c1, 1, 0, 6)
	recvGlobal(t, c0)
	recvGlobal(t, c1)
	recvGlobal(t, c0) // task final
	recvGlobal(t, c1)
	c1.Send(&RoundEnd{ClientID: 1, EvalAccs: []float64{0.9}})
	c1.Close()
	waitLog(t, "evicted client 1")

	sNew, cNew := LoopbackCap(64)
	rejoins <- RejoinRequest{ClientID: 1, LastVersion: 1, Link: sNew}
	cu := recvCatchup(t, cNew)
	if !cu.TaskDone || cu.TaskFinal {
		t.Fatalf("catch-up %+v, want TaskDone (the seat already reported)", cu)
	}
	c0.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.7}})

	res := <-done
	if got := res.Matrix.Get(0, 0); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("matrix row %v, want 0.8 — the pre-drop report must stand exactly once", got)
	}
	if srv.AliveClients() != 2 {
		t.Fatalf("%d alive clients, want the rejoined cohort of 2", srv.AliveClients())
	}
}

// TestWireRejoinHandshakeRejects pins the acceptor-level validation: a
// rejoin hello with a mismatched job fingerprint or an out-of-range seat is
// rejected at the handshake (connection closed, nothing delivered), while a
// valid rejoin is delivered with its last-seen version intact.
func TestWireRejoinHandshakeRejects(t *testing.T) {
	cfg, _, _, _ := tinySetup(41)
	fp := cfg.Fingerprint()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go func() {
		if _, err := Dial(addr, 0, fp); err != nil {
			t.Error(err)
		}
	}()
	links, acceptor, err := ServeRejoin(ln, 1, fp)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer links[0].Close()

	expectClosed := func(tr Transport, what string) {
		t.Helper()
		if _, err := tr.Recv(); err == nil {
			t.Fatalf("%s: got a reply, want the connection closed at the handshake", what)
		}
		tr.Close()
	}
	bad, err := DialRejoin(addr, 0, fp+1, 3)
	if err != nil {
		t.Fatal(err)
	}
	expectClosed(bad, "fingerprint mismatch")
	oob, err := DialRejoin(addr, 7, fp, 0)
	if err != nil {
		t.Fatal(err)
	}
	expectClosed(oob, "out-of-range seat")

	good, err := DialRejoin(addr, 0, fp, 42)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case rq := <-acceptor.Rejoins():
		if rq.ClientID != 0 || rq.LastVersion != 42 {
			t.Fatalf("delivered rejoin %+v, want client 0 at version 42", rq)
		}
		rq.Link.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("valid rejoin never delivered")
	}
	if err := acceptor.Close(); err != nil {
		t.Fatalf("acceptor close: %v", err)
	}
	good.Close()
}

// TestSyncEvictKeepsCohortGoing: with ServerConfig.SyncEvict the lockstep
// scheduler evicts a dropped client and finishes the run with the
// survivors; without it (the default) the same drop aborts the run — the
// reproducibility contract.
func TestSyncEvictKeepsCohortGoing(t *testing.T) {
	run := func(evict bool) (*Result, error) {
		s0, c0 := Loopback()
		s1, c1 := Loopback()
		logf, _ := watchLogs()
		srv := NewServer(ServerConfig{
			Method: "test", NumTasks: 1, Rounds: 1, SyncEvict: evict, Logf: logf,
		}, nil, []Transport{s0, s1})
		done := make(chan error, 1)
		var res *Result
		go func() {
			var err error
			res, err = srv.Run(context.Background())
			done <- err
		}()
		recvRoundStart(t, c0)
		recvRoundStart(t, c1)
		c1.Close() // drops before uploading
		sendUpdate(t, c0, 0, 0, 2)
		if evict {
			recvGlobal(t, c0)
			c0.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.9}})
		}
		err := <-done
		c0.Close()
		return res, err
	}

	res, err := run(true)
	if err != nil {
		t.Fatalf("sync-evict run must survive the drop: %v", err)
	}
	if task, ok := res.DeadAfter[1]; !ok || task != 0 {
		t.Fatalf("DeadAfter = %v, want client 1 lost at task 0", res.DeadAfter)
	}
	if len(res.PerTask) != 1 || math.Abs(res.Matrix.Get(0, 0)-0.9) > 1e-12 {
		t.Fatalf("survivor's result wrong: %+v, matrix %v", res.PerTask, res.Matrix.Get(0, 0))
	}
	if _, err := run(false); err == nil {
		t.Fatal("default lockstep must abort on a dropped client")
	}
}

// TestClientTaskDoneCatchupFinishes pins the client side of the TaskDone
// catch-up: resumed on the *final* task with TaskDone (its report landed
// before the drop), the client must recognise the run as complete, so the
// server's shutdown EOF reads as a clean exit — not as another drop for
// RunReconnect to retry against a gone listener. A mid-sequence TaskDone
// must leave the run unfinished.
func TestClientTaskDoneCatchupFinishes(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(43)
	cfg.Scheduler = SchedulerAsync
	run := func(taskIdx int) *Client {
		c := NewWireClient(cfg, 0, len(seqs), cluster.Devices[0], seqs[0], build,
			func(ctx *ClientCtx) Strategy { return &passthrough{ctx: ctx} })
		srvEnd, cliEnd := LoopbackCap(8)
		srvEnd.Close() // nothing follows the catch-up: the run is over
		cu := &Catchup{TaskIdx: taskIdx, Seen: cfg.Rounds, Version: 1, TaskDone: true}
		if err := c.asyncLoop(context.Background(), cliEnd, newInbox(cliEnd, false), cu); err != nil {
			t.Fatalf("task-done resume at task %d: %v", taskIdx, err)
		}
		return c
	}
	if c := run(len(seqs[0]) - 1); !c.finished {
		t.Fatal("TaskDone on the final task must mark the run finished (clean shutdown, not a drop)")
	}
	if c := run(0); c.finished {
		t.Fatal("TaskDone mid-sequence must leave the run unfinished")
	}
}

// killProxy is a minimal TCP proxy with a kill switch: it forwards bytes
// between clients and the upstream server, and Kill severs every active
// connection pair — the test's stand-in for a network partition or a
// crashed NAT. The listener stays open, so a reconnecting client can dial
// through again.
type killProxy struct {
	ln       net.Listener
	upstream string
	mu       sync.Mutex
	conns    []net.Conn
	closed   bool
}

func newKillProxy(t *testing.T, upstream string) *killProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killProxy{ln: ln, upstream: upstream}
	go p.loop()
	return p
}

func (p *killProxy) addr() string { return p.ln.Addr().String() }

func (p *killProxy) loop() {
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.upstream)
		if err != nil {
			down.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			down.Close()
			up.Close()
			return
		}
		p.conns = append(p.conns, down, up)
		p.mu.Unlock()
		pipe := func(dst, src net.Conn) {
			io.Copy(dst, src)
			dst.Close()
			src.Close()
		}
		go pipe(up, down)
		go pipe(down, up)
	}
}

// Kill severs every active connection; the listener keeps accepting.
func (p *killProxy) Kill() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (p *killProxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.Kill()
}

// TestWireKillAndRejoin is the end-to-end churn bar over real TCP: one
// client's connection is severed mid-task (through a kill proxy), its
// RunReconnect loop rejoins with the catch-up handshake, and the run
// completes every task with the cohort restored — no seat lost, no task
// skipped, no training state discarded.
func TestWireKillAndRejoin(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(42)
	cfg.Scheduler = SchedulerAsync
	cfg.Async = AsyncConfig{CommitEvery: 1, StalenessAlpha: 0.5}
	seqs = seqs[:2]
	fp := cfg.Fingerprint()
	factory := func(ctx *ClientCtx) Strategy { return &passthrough{ctx: ctx} }

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxy := newKillProxy(t, ln.Addr().String())
	defer proxy.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // client 0: plain endpoint, direct connection
		defer wg.Done()
		tr, err := Dial(ln.Addr().String(), 0, fp)
		if err != nil {
			t.Error(err)
			return
		}
		c := NewWireClient(cfg, 0, len(seqs), cluster.Devices[0], seqs[0], build, factory)
		if err := c.Run(context.Background(), tr); err != nil {
			t.Errorf("client 0: %v", err)
		}
	}()
	go func() { // client 1: reconnecting endpoint, through the kill proxy
		defer wg.Done()
		c := NewWireClient(cfg, 1, len(seqs), cluster.Devices[1], seqs[1], build, factory)
		err := c.RunReconnect(context.Background(), Reconnect{
			Addr: proxy.addr(), Fingerprint: fp,
			Attempts: 60, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond,
		})
		if err != nil {
			t.Errorf("reconnecting client: %v", err)
		}
	}()

	links, acceptor, err := ServeRejoin(ln, len(seqs), fp)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	srv := NewServer(cfg.ServerConfigFor(len(seqs), len(seqs[0])), nil, links)
	srv.SetRejoins(acceptor.Rejoins())
	logf, _ := watchLogs()
	srv.cfg.Logf = logf
	var kill sync.Once
	srv.SetObserver(ObserverFuncs{Round: func(s RoundStats) {
		if s.Participants > 0 {
			kill.Do(proxy.Kill) // sever client 1 after the first commit
		}
	}})
	res, err := srv.Run(context.Background())
	if err != nil {
		t.Fatalf("server must survive the kill: %v", err)
	}
	wg.Wait()
	acceptor.Close()

	if len(res.PerTask) != 3 {
		t.Fatalf("%d task points, want all 3 despite the kill", len(res.PerTask))
	}
	if srv.AliveClients() != 2 {
		t.Fatalf("%d alive clients, want the cohort restored to 2", srv.AliveClients())
	}
	if len(res.DeadAfter) != 0 {
		t.Fatalf("DeadAfter = %v, want empty — the killed client rejoined", res.DeadAfter)
	}
	for i, tp := range res.PerTask {
		if tp.AvgAccuracy <= 0 {
			t.Fatalf("task %d accuracy %v: the rejoined cohort's reports must land", i, tp.AvgAccuracy)
		}
	}
	sent, recv := srv.WireTraffic()
	if sent == 0 || recv == 0 {
		t.Fatalf("measured traffic %d/%d, want non-zero including the retired link", sent, recv)
	}
}

// TestWireByteCountersConcurrent exercises the transport's byte counters
// the way the async protocol does — one goroutine sending, one receiving,
// others reading the totals concurrently (the server's traffic summary, an
// observer polling mid-run). Run under -race this pins the counters'
// atomicity; it also checks the totals still balance.
func TestWireByteCountersConcurrent(t *testing.T) {
	a, b := net.Pipe()
	ta, tb := NewWire(a), NewWire(b)
	const frames = 100
	params := make([]float32, 512)
	for i := range params {
		params[i] = float32(i) + 0.5
	}
	done := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() { // concurrent accounting reader
		defer sampler.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = ta.BytesSent() + ta.BytesRecv() + tb.BytesSent() + tb.BytesRecv()
			}
		}
	}()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // sender
		defer wg.Done()
		for i := 0; i < frames; i++ {
			if err := ta.Send(&GlobalModel{Params: params, Version: uint64(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	go func() { // receiver
		defer wg.Done()
		for i := 0; i < frames; i++ {
			if _, err := tb.Recv(); err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(done)
	sampler.Wait()
	ta.Close()
	tb.Close()
	if ta.BytesSent() == 0 || ta.BytesSent() != tb.BytesRecv() {
		t.Fatalf("sent %d, peer received %d", ta.BytesSent(), tb.BytesRecv())
	}
}

// errDeadlineConn fakes a stream whose deadline calls fail — the shape of a
// socket that died between frames. The transport must surface that error
// immediately instead of discarding it and failing later with a confusing
// EOF.
type errDeadlineConn struct{ err error }

func (c *errDeadlineConn) Read([]byte) (int, error)        { return 0, io.EOF }
func (c *errDeadlineConn) Write(p []byte) (int, error)     { return len(p), nil }
func (c *errDeadlineConn) Close() error                    { return nil }
func (c *errDeadlineConn) SetReadDeadline(time.Time) error { return c.err }
func (c *errDeadlineConn) SetWriteDeadline(time.Time) error {
	return c.err
}

// TestWireDeadlineErrorsPropagate: SetReadDeadline/SetWriteDeadline error
// returns must not be silently discarded — a dead socket fails fast with
// the real error.
func TestWireDeadlineErrorsPropagate(t *testing.T) {
	sentinel := errors.New("use of closed file descriptor")
	tr := NewWireWith(&errDeadlineConn{err: sentinel}, WireOptions{Timeout: time.Second})
	if err := tr.Send(&RoundStart{}); !errors.Is(err, sentinel) {
		t.Fatalf("Send error %v, want the deadline error", err)
	}
	if _, err := tr.Recv(); !errors.Is(err, sentinel) {
		t.Fatalf("Recv error %v, want the deadline error", err)
	}
}
