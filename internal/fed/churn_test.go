package fed

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
)

// TestChurnJoinDuringCommitWindow pins the sharpest elastic corner with a
// scripted timeline: a seat admitted while a commit window is already half
// full. The founder's fold must stand, the joiner's first upload must close
// the same window, and the commit's denominator must span both seats — the
// weighting contract says a commit averages over the folds it holds, not
// over the cohort that existed when the window opened.
func TestChurnJoinDuringCommitWindow(t *testing.T) {
	logf, waitLog := watchLogs()
	sink := &memSink{}
	joins := make(chan JoinRequest, 1)
	var mu sync.Mutex
	var commits []RoundStats
	s0, c0 := LoopbackCap(64)
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 2, MaxCohort: 2,
		Scheduler: SchedulerAsync, Async: AsyncConfig{CommitEvery: 2},
		Logf: logf,
	}, nil, []Transport{s0})
	srv.SetJoins(joins)
	srv.SetSnapshots(sink)
	srv.SetObserver(ObserverFuncs{Round: func(s RoundStats) {
		mu.Lock()
		commits = append(commits, s)
		mu.Unlock()
	}})
	done := make(chan *Result, 1)
	go func() {
		res, err := srv.Run(context.Background())
		if err != nil {
			t.Errorf("run: %v", err)
		}
		done <- res
	}()

	recvRoundStart(t, c0)
	sendUpdate(t, c0, 0, 0, 2)
	// The mid-window cut is the proof the fold is in and the window is still
	// open: only now is the join injected.
	sink.waitFor(t, "one fold in the open window", func(s *checkpoint.ServerSnapshot) bool {
		return s.WindowCount == 1
	})
	sJ, cJ := LoopbackCap(64)
	joins <- JoinRequest{Link: sJ}
	msg, err := cJ.Recv()
	if err != nil {
		t.Fatalf("seat assignment: %v", err)
	}
	hello, ok := msg.(*helloMsg)
	if !ok || hello.clientID != 1 {
		t.Fatalf("seat assignment %T %+v, want the hello naming seat 1", msg, msg)
	}
	cu := recvCatchup(t, cJ)
	if cu.TaskIdx != 0 || cu.Seen != 0 || cu.TaskFinal || cu.TaskDone {
		t.Fatalf("join catch-up %+v, want task 0, seen 0, no flags", cu)
	}
	if cu.Version != 0 || len(cu.Params) != 0 {
		t.Fatalf("join catch-up v%d with %d params, want v0 and none (nothing committed yet)",
			cu.Version, len(cu.Params))
	}
	waitLog(t, "admitted join as seat 1 at task 0")

	// The joiner's first upload closes the window the founder opened.
	sendUpdate(t, cJ, 1, 0, 6)
	g0, gJ := recvGlobal(t, c0), recvGlobal(t, cJ)
	if g0.Version != 1 || g0.Params[0] != 4 || gJ.Params[0] != 4 {
		t.Fatalf("first commit v%d %v/%v, want v1 [4] — the mean over both seats' folds",
			g0.Version, g0.Params, gJ.Params)
	}

	sendUpdate(t, c0, 0, 1, 10)
	sendUpdate(t, cJ, 1, 1, 14)
	if g := recvGlobal(t, c0); g.Version != 2 || g.Params[0] != 12 {
		t.Fatalf("second commit v%d %v, want v2 [12]", g.Version, g.Params)
	}
	recvGlobal(t, cJ)
	f0, fJ := recvGlobal(t, c0), recvGlobal(t, cJ)
	if !f0.TaskFinal || !fJ.TaskFinal {
		t.Fatalf("task-final flags %v/%v after both quotas", f0.TaskFinal, fJ.TaskFinal)
	}
	c0.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.25}})
	cJ.Send(&RoundEnd{ClientID: 1, EvalAccs: []float64{0.75}})

	res := <-done
	mu.Lock()
	first := commits[0]
	mu.Unlock()
	if first.Participants != 2 || first.Stale != 0 {
		t.Fatalf("first commit folded %d updates (%d stale), want the pre-join fold plus the joiner's",
			first.Participants, first.Stale)
	}
	if got := res.Matrix.Get(0, 0); got != 0.5 {
		t.Fatalf("matrix(0,0) = %v, want 0.5 — one report from each seat", got)
	}
	if srv.AliveClients() != 2 || len(res.DeadAfter) != 0 {
		t.Fatalf("final book: %d alive, DeadAfter %v, want 2 alive and none dead",
			srv.AliveClients(), res.DeadAfter)
	}
	if _, _, _, refused := srv.Rejections(); refused != 0 {
		t.Fatalf("%d refusals in a clean join", refused)
	}
	c0.Close()
	cJ.Close()
}

// TestChurnLeaveWithInFlightUpdate pins the clean-leave corner: a seat whose
// Leave lands while its last update sits folded in an open window. The fold
// stands (the commit still averages over it), the seat retires without any
// eviction noise, and the report matrix holds only the seats that stayed to
// report.
func TestChurnLeaveWithInFlightUpdate(t *testing.T) {
	logf, waitLog := watchLogs()
	s0, c0 := LoopbackCap(64)
	s1, c1 := LoopbackCap(64)
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 1,
		Scheduler: SchedulerAsync, Async: AsyncConfig{CommitEvery: 2},
		Logf: logf,
	}, nil, []Transport{s0, s1})
	done := make(chan *Result, 1)
	go func() {
		res, err := srv.Run(context.Background())
		if err != nil {
			t.Errorf("run: %v", err)
		}
		done <- res
	}()

	recvRoundStart(t, c0)
	recvRoundStart(t, c1)
	// Seat 1's update and Leave ride the same link back to back: FIFO
	// guarantees the fold happens first, so the retirement provably strands
	// an in-flight contribution in the open window.
	sendUpdate(t, c1, 1, 0, 6)
	if err := c1.Send(&Leave{ClientID: 1}); err != nil {
		t.Fatal(err)
	}
	waitLog(t, "seat 1 retired at task 0 (clean leave)")
	c1.Close()

	sendUpdate(t, c0, 0, 0, 2)
	if g := recvGlobal(t, c0); g.Version != 1 || g.Params[0] != 4 {
		t.Fatalf("commit v%d %v, want v1 [4] — the retired seat's fold must stand", g.Version, g.Params)
	}
	if f := recvGlobal(t, c0); !f.TaskFinal {
		t.Fatalf("survivor's quota done, want the task-final broadcast, got %+v", f)
	}
	c0.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.9}})

	res := <-done
	if len(res.DeadAfter) != 0 {
		t.Fatalf("DeadAfter = %v, want empty — a clean leave is not a death", res.DeadAfter)
	}
	if _, _, evicted, refused := srv.Rejections(); evicted != 0 || refused != 0 {
		t.Fatalf("evicted=%d refused=%d, want a silent book for a clean leave", evicted, refused)
	}
	if srv.AliveClients() != 1 {
		t.Fatalf("%d alive seats, want the 1 that stayed", srv.AliveClients())
	}
	if got := res.Matrix.Get(0, 0); got != 0.9 {
		t.Fatalf("matrix(0,0) = %v, want 0.9 — only the staying seat reported", got)
	}
	c0.Close()
}

// TestChurnJoinCrashRejoinSameSeat drives the full seat life cycle through
// the harness: a seat that joins mid-run, crashes, and rejoins under its
// assigned identity must finish the run with clean books — one eviction, no
// residual death record, and every task reported exactly once.
func TestChurnJoinCrashRejoinSameSeat(t *testing.T) {
	rep, err := RunChurn(ChurnConfig{
		Tasks: 2, Rounds: 2, CommitEvery: 1,
		Scripts: []ChurnScript{
			{}, // founding anchor
			{Join: true, JoinAfterCommits: 1, Action: ChurnCrash, AtTask: 0, AfterUploads: 1, Rejoin: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("membership contract broken:\n  %s", strings.Join(rep.Violations, "\n  "))
	}
	if rep.Seats != 2 {
		t.Fatalf("seat book ended at %d seats, want the founder plus the joiner", rep.Seats)
	}
	if len(rep.Result.DeadAfter) != 0 {
		t.Fatalf("DeadAfter = %v, want empty after the rejoin", rep.Result.DeadAfter)
	}
	if len(rep.Result.PerTask) != 2 {
		t.Fatalf("run covered %d tasks, want 2", len(rep.Result.PerTask))
	}
}

// TestChurnScriptedSchedules replays deterministic churn schedules — every
// membership move the wire supports, alone and combined — and requires the
// harness's invariant audit to come back empty each time.
func TestChurnScriptedSchedules(t *testing.T) {
	cases := []struct {
		name    string
		scripts []ChurnScript
		seats   int
	}{
		{
			name: "clean leave mid-task",
			scripts: []ChurnScript{
				{}, {},
				{Action: ChurnLeave, AtTask: 0, AfterUploads: 1},
			},
			seats: 3,
		},
		{
			name: "crash without rejoin",
			scripts: []ChurnScript{
				{}, {},
				{Action: ChurnCrash, AtTask: 1},
			},
			seats: 3,
		},
		{
			name: "crash and rejoin",
			scripts: []ChurnScript{
				{}, {},
				{Action: ChurnCrash, AtTask: 0, AfterUploads: 1, Rejoin: true},
			},
			seats: 3,
		},
		{
			name: "leave then rejoin reclaims the seat",
			scripts: []ChurnScript{
				{},
				{Action: ChurnLeave, AtTask: 0, AfterUploads: 2, Rejoin: true},
			},
			seats: 2,
		},
		{
			name: "late join stays to the end",
			scripts: []ChurnScript{
				{}, {},
				{Join: true, JoinAfterCommits: 2},
			},
			seats: 3,
		},
		{
			name: "join then leave",
			scripts: []ChurnScript{
				{}, {},
				{Join: true, JoinAfterCommits: 1, Action: ChurnLeave, AtTask: 1, AfterUploads: 1},
			},
			seats: 3,
		},
		{
			name: "everything at once",
			scripts: []ChurnScript{
				{},
				{Action: ChurnLeave, AtTask: 0, AfterUploads: 1},
				{Action: ChurnCrash, AtTask: 0, AfterUploads: 2, Rejoin: true},
				{Join: true, JoinAfterCommits: 1},
				{Join: true, JoinAfterCommits: 2, Action: ChurnCrash, AtTask: 1},
			},
			seats: 5,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rep, err := RunChurn(ChurnConfig{
				Tasks: 2, Rounds: 2, CommitEvery: 1,
				Scripts: tc.scripts,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) > 0 {
				t.Fatalf("membership contract broken:\n  %s", strings.Join(rep.Violations, "\n  "))
			}
			if rep.Seats != tc.seats {
				t.Fatalf("seat book ended at %d seats, want %d", rep.Seats, tc.seats)
			}
		})
	}
}

// shrinkChurn greedily simplifies a violating schedule so the failure report
// names a minimal reproducer: scripts are dropped, then membership moves
// neutralised to stayers, keeping each simplification only while the
// violations persist. Configs a simplification would malform (no founders,
// no anchor) simply fail to reproduce and are skipped.
func shrinkChurn(cfg ChurnConfig) ChurnConfig {
	reproduces := func(c ChurnConfig) bool {
		rep, err := RunChurn(c)
		return err == nil && len(rep.Violations) > 0
	}
	for changed := true; changed; {
		changed = false
		for i := range cfg.Scripts {
			trial := cfg
			trial.Scripts = append(append([]ChurnScript(nil), cfg.Scripts[:i]...), cfg.Scripts[i+1:]...)
			if reproduces(trial) {
				cfg, changed = trial, true
				break
			}
		}
		if changed {
			continue
		}
		for i, sc := range cfg.Scripts {
			if !sc.Join && sc.Action == ChurnStay {
				continue
			}
			trial := cfg
			trial.Scripts = append([]ChurnScript(nil), cfg.Scripts...)
			trial.Scripts[i] = ChurnScript{}
			if reproduces(trial) {
				cfg, changed = trial, true
				break
			}
		}
	}
	return cfg
}

// TestChurnPropertyRandomSchedules is the randomized face of the harness:
// seeded schedules of joins, leaves, crashes, and rejoins, each required to
// close with an empty audit. A failing seed reports its minimal shrunk
// schedule alongside the violations, and reproduces deterministically from
// the seed printed in the failure.
func TestChurnPropertyRandomSchedules(t *testing.T) {
	t.Parallel()
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	const tasks, rounds = 2, 2
	for _, seed := range seeds {
		scripts := RandomChurnScripts(seed, 3, 2, tasks, rounds)
		cfg := ChurnConfig{
			Tasks: tasks, Rounds: rounds, CommitEvery: 1, StalenessAlpha: 0.5,
			Scripts: scripts,
		}
		rep, err := RunChurn(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rep.Violations) > 0 {
			min := shrinkChurn(cfg)
			t.Fatalf("seed %d broke the membership contract:\n  %s\nminimal schedule: %+v",
				seed, strings.Join(rep.Violations, "\n  "), min.Scripts)
		}
	}
}

// TestChurnRefusalsCounted pins the scheduler-side refusal paths: a join
// beyond -max-cohort, a rejoin claiming a seat that is still alive, and a
// rejoin for a seat that was never allocated are each refused with a
// distinct log line, counted in Server.Rejections, and end with the
// handshake link closed — while the run itself is untouched.
func TestChurnRefusalsCounted(t *testing.T) {
	logf, waitLog := watchLogs()
	joins := make(chan JoinRequest, 1)
	rejoins := make(chan RejoinRequest, 2)
	s0, c0 := LoopbackCap(64)
	s1, c1 := LoopbackCap(64)
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 1, MaxCohort: 2,
		Scheduler: SchedulerAsync, Async: AsyncConfig{CommitEvery: 1},
		Logf: logf,
	}, nil, []Transport{s0, s1})
	srv.SetJoins(joins)
	srv.SetRejoins(rejoins)
	done := make(chan *Result, 1)
	go func() {
		res, err := srv.Run(context.Background())
		if err != nil {
			t.Errorf("run: %v", err)
		}
		done <- res
	}()

	recvRoundStart(t, c0)
	recvRoundStart(t, c1)

	expectClosed := func(tr Transport, what string) {
		t.Helper()
		if _, err := tr.Recv(); err == nil {
			t.Fatalf("%s: got a reply, want the link closed on refusal", what)
		}
		tr.Close()
	}
	sJ, cJ := LoopbackCap(4)
	joins <- JoinRequest{Link: sJ}
	waitLog(t, "refused join: cohort is at capacity (2 seats, -max-cohort 2)")
	expectClosed(cJ, "join beyond capacity")

	sA, cA := LoopbackCap(4)
	rejoins <- RejoinRequest{ClientID: 0, Link: sA}
	waitLog(t, "refused rejoin for client 0: seat is still alive")
	expectClosed(cA, "rejoin of a live seat")

	sB, cB := LoopbackCap(4)
	rejoins <- RejoinRequest{ClientID: 99, Link: sB}
	waitLog(t, "refused rejoin for unknown client 99")
	expectClosed(cB, "rejoin of an unallocated seat")

	sendUpdate(t, c0, 0, 0, 2)
	recvGlobal(t, c0)
	recvGlobal(t, c1)
	sendUpdate(t, c1, 1, 1, 6)
	recvGlobal(t, c0)
	recvGlobal(t, c1)
	recvGlobal(t, c0) // task-final
	recvGlobal(t, c1)
	c0.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.5}})
	c1.Send(&RoundEnd{ClientID: 1, EvalAccs: []float64{0.5}})

	res := <-done
	if _, _, _, refused := srv.Rejections(); refused != 3 {
		t.Fatalf("Rejections counted %d refusals, want all 3", refused)
	}
	if srv.AliveClients() != 2 || len(res.DeadAfter) != 0 {
		t.Fatalf("refusals disturbed the cohort: %d alive, DeadAfter %v",
			srv.AliveClients(), res.DeadAfter)
	}
	c0.Close()
	c1.Close()
}

// TestWireAcceptorRefusalCausesDistinct pins the operator-facing half of the
// refusal contract at the TCP acceptor: an unknown seat and a fingerprint
// mismatch must be refused with *different* log lines naming their causes,
// and both must land in Refusals — a debugging session should never have to
// guess which of the two went wrong.
func TestWireAcceptorRefusalCausesDistinct(t *testing.T) {
	const fp = 0xFEED5EA7
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	acceptor := AcceptRejoins(ln, 4, fp, WireOptions{})
	defer acceptor.Close()
	var mu sync.Mutex
	var lines []string
	acceptor.SetLogf(func(f string, a ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(f, a...))
		mu.Unlock()
	})
	addr := ln.Addr().String()

	expectClosed := func(tr Transport, what string) {
		t.Helper()
		if _, err := tr.Recv(); err == nil {
			t.Fatalf("%s: got a reply, want the connection closed at the handshake", what)
		}
		tr.Close()
	}
	bad, err := DialRejoin(addr, 0, fp+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	expectClosed(bad, "fingerprint mismatch")
	oob, err := DialRejoin(addr, 7, fp, 0)
	if err != nil {
		t.Fatal(err)
	}
	expectClosed(oob, "unknown seat")

	deadline := time.Now().Add(10 * time.Second)
	for acceptor.Refusals() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("acceptor counted %d refusals, want 2", acceptor.Refusals())
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	var fpLine, seatLine string
	for _, l := range lines {
		if !strings.HasPrefix(l, "fed: acceptor: refused ") {
			t.Fatalf("refusal line %q missing the acceptor prefix", l)
		}
		if strings.Contains(l, "fingerprint mismatch") {
			fpLine = l
		}
		if strings.Contains(l, "rejoin for unknown seat 7") {
			seatLine = l
		}
	}
	if fpLine == "" || seatLine == "" {
		t.Fatalf("refusal causes not distinguished; logged lines: %q", lines)
	}
	if !strings.Contains(fpLine, fmt.Sprintf("%#x", uint64(fp+1))) ||
		!strings.Contains(fpLine, fmt.Sprintf("%#x", uint64(fp))) {
		t.Fatalf("fingerprint refusal %q does not name both fingerprints", fpLine)
	}
}

// TestWireJoinEndToEnd drives the whole v5 membership negotiation over real
// TCP: a founding cohort of one comes up through ServeWith, the acceptor
// keeps the port open, and DialJoinWith enrolls a second process mid-task —
// seat assigned by the server, catch-up carrying the committed global — after
// which both seats finish the task and land in the books exactly once.
func TestWireJoinEndToEnd(t *testing.T) {
	const fp = 0x1E57F00D
	logf, waitLog := watchLogs()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	founderCh := make(chan Transport, 1)
	go func() {
		tr, err := Dial(addr, 0, fp)
		if err != nil {
			t.Error(err)
			return
		}
		founderCh <- tr
	}()
	links, err := ServeWith(ln, 1, fp, WireOptions{})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	acceptor := AcceptRejoins(ln, 2, fp, WireOptions{})
	defer acceptor.Close()
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 2, MaxCohort: 2,
		Scheduler: SchedulerAsync, Async: AsyncConfig{CommitEvery: 1},
		Logf: logf,
	}, nil, links)
	srv.SetRejoins(acceptor.Rejoins())
	srv.SetJoins(acceptor.Joins())
	done := make(chan *Result, 1)
	go func() {
		res, err := srv.Run(context.Background())
		if err != nil {
			t.Errorf("run: %v", err)
		}
		done <- res
	}()
	founder := <-founderCh

	recvRoundStart(t, founder)
	sendUpdate(t, founder, 0, 0, 2)
	if g := recvGlobal(t, founder); g.Version != 1 || g.Params[0] != 2 {
		t.Fatalf("founding commit v%d %v, want v1 [2]", g.Version, g.Params)
	}

	joiner, seat, cu, err := DialJoinWith(addr, fp, WireOptions{})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if seat != 1 {
		t.Fatalf("assigned seat %d, want the next free seat 1", seat)
	}
	if cu.TaskIdx != 0 || cu.Seen != 0 || cu.TaskFinal || cu.TaskDone {
		t.Fatalf("join catch-up %+v, want task 0, seen 0, no flags", cu)
	}
	if cu.Version != 1 || len(cu.Params) != 1 || cu.Params[0] != 2 {
		t.Fatalf("join catch-up v%d %v, want the committed v1 [2]", cu.Version, cu.Params)
	}
	waitLog(t, "admitted join as seat 1 at task 0")

	sendUpdate(t, joiner, 1, 1, 6)
	recvGlobal(t, founder)
	if g := recvGlobal(t, joiner); g.Version != 2 || g.Params[0] != 6 {
		t.Fatalf("joiner's first commit v%d %v, want v2 [6]", g.Version, g.Params)
	}
	sendUpdate(t, founder, 0, 2, 10)
	recvGlobal(t, founder)
	recvGlobal(t, joiner)
	sendUpdate(t, joiner, 1, 3, 14)
	recvGlobal(t, founder)
	recvGlobal(t, joiner)
	fF, fJ := recvGlobal(t, founder), recvGlobal(t, joiner)
	if !fF.TaskFinal || !fJ.TaskFinal {
		t.Fatalf("task-final flags %v/%v after both quotas", fF.TaskFinal, fJ.TaskFinal)
	}
	founder.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.25}})
	joiner.Send(&RoundEnd{ClientID: 1, EvalAccs: []float64{0.75}})

	res := <-done
	if got := res.Matrix.Get(0, 0); got != 0.5 {
		t.Fatalf("matrix(0,0) = %v, want 0.5 — both seats reported exactly once", got)
	}
	if srv.AliveClients() != 2 || len(res.DeadAfter) != 0 {
		t.Fatalf("final book: %d alive, DeadAfter %v, want the elastic cohort of 2 intact",
			srv.AliveClients(), res.DeadAfter)
	}
	if acceptor.Refusals() != 0 {
		t.Fatalf("%d acceptor refusals during a clean join", acceptor.Refusals())
	}
	founder.Close()
	joiner.Close()
}
