package fed

import (
	"bytes"
	"encoding/hex"
	"testing"

	"repro/internal/tensor"
)

// TestCodecGoldenFrames pins the wire format at the byte level: these
// fixtures are the frozen v5 encodings of representative frames — the v4
// set (whose bytes v5 leaves untouched: a fixed cohort speaks bytes
// identical to v4) plus the elastic-membership additions: the hello's join
// flag, the server's seat-assignment hello reply, and the Leave frame (see
// docs/WIRE_FORMAT.md). If one of them changes, the codec changed — bump
// the Fingerprint formatVersion, regenerate the fixtures deliberately, and
// expect old and new binaries not to interoperate. An accidental diff here
// is a protocol break that the round-trip tests alone would not catch.
func TestCodecGoldenFrames(t *testing.T) {
	sparse := &tensor.SparseVec{N: 8, Indices: []int32{1, 2, 7}, Values: []float32{1, -2, 0.5}}
	cases := []struct {
		name string
		comp Compression
		msg  Msg
		hex  string
	}{
		{
			name: "hello",
			msg:  &helloMsg{clientID: 3, fingerprint: 0xDEADBEEFCAFE, quant: QuantF16},
			hex:  "000f00000003000000fecaefbeadde0000010000",
		},
		{
			// flags bit0 marks the rejoin; lastVersion 300 is the two-byte
			// uvarint 0xac 0x02.
			name: "rejoin hello",
			msg:  &helloMsg{clientID: 2, fingerprint: 0xDEADBEEFCAFE, rejoin: true, lastVersion: 300},
			hex:  "001000000002000000fecaefbeadde00000001ac02",
		},
		{
			// flags bit1 marks the join; the clientID field is zero because
			// the server assigns the seat in its reply.
			name: "join hello",
			msg:  &helloMsg{fingerprint: 0xDEADBEEFCAFE, join: true},
			hex:  "000f00000000000000fecaefbeadde0000000200",
		},
		{
			// The server's reply to a join hello: a plain hello whose
			// clientID is the assigned seat (no fingerprint, no flags).
			name: "seat-assignment hello",
			msg:  &helloMsg{clientID: 5},
			hex:  "000f000000050000000000000000000000000000",
		},
		{
			name: "leave",
			msg:  &Leave{ClientID: 3},
			hex:  "060400000003000000",
		},
		{
			name: "leave of a late seat",
			msg:  &Leave{ClientID: 300},
			hex:  "06040000002c010000",
		},
		{
			name: "round start",
			msg:  &RoundStart{TaskIdx: 2, Round: 5, Participate: true, TaskDone: true},
			hex:  "0109000000020000000500000003",
		},
		{
			name: "dense update",
			msg: &Update{ClientID: 1, Participating: true, Weight: 30, ComputeSeconds: 0.25,
				UpBytes: 1024, DownBytes: 2048, Params: []float32{1, -2, 0.5}},
			hex:  "023400000001000000010000000000003e40000000000000d03f000400000000000000080000000000000000030000803f000000c00000003f",
		},
		{
			name: "sparse update",
			msg:  &Update{ClientID: 2, Participating: true, Weight: 7, Sparse: sparse},
			hex:  "023800000002000000010000000000001c40000000000000000000000000000000000000000000000000000408030100040000803f000000c00000003f",
		},
		{
			// BaseVersion is a uvarint: 300 spans two bytes (0xac 0x02).
			name: "versioned update",
			msg: &Update{ClientID: 3, Participating: true, Weight: 2, BaseVersion: 300,
				Params: []float32{1}},
			hex: "022d00000003000000010000000000000040000000000000000000000000000000000000000000000000ac0200010000803f",
		},
		{
			name: "auto-sparse global model",
			msg:  &GlobalModel{Params: []float32{0, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0}},
			hex:  "030a0000000000040c010400004040",
		},
		{
			name: "dense global model",
			msg:  &GlobalModel{Params: []float32{1, 2, 3}},
			hex:  "0310000000000000030000803f0000004000004040",
		},
		{
			// Version 129 is the two-byte uvarint 0x81 0x01; flags bit0 is
			// the taskFinal marker.
			name: "task-final versioned global model",
			msg:  &GlobalModel{Params: []float32{1}, Version: 129, TaskFinal: true},
			hex:  "030900000081010100010000803f",
		},
		{
			name: "f16 global model",
			comp: Compression{Quant: QuantF16},
			msg:  &GlobalModel{Params: []float32{1, -2, 65504}},
			hex:  "030a00000000000103003c00c0ff7b",
		},
		{
			name: "i8 sparse update values",
			comp: Compression{Quant: QuantI8},
			msg:  &Update{ClientID: 0, Participating: true, Weight: 1, Sparse: sparse},
			hex:  "02330000000000000001000000000000f03f000000000000000000000000000000000000000000000000000608030402813c010004408120",
		},
		{
			name: "dropout acknowledgement",
			msg:  &Update{ClientID: 4},
			hex:  "022800000004000000000000000000000000000000000000000000000000000000000000000000000000000000",
		},
		{
			// Version 129 is the two-byte uvarint 0x81 0x01; the params
			// block is the dense float32 form.
			name: "catchup",
			msg:  &Catchup{TaskIdx: 1, Seen: 2, Version: 129, Params: []float32{1, 2, 3}},
			hex:  "0516000000010000000281010000030000803f0000004000004040",
		},
		{
			name: "task-final catchup",
			msg:  &Catchup{TaskIdx: 0, Seen: 3, Version: 5, TaskFinal: true, Params: []float32{1}},
			hex:  "050d0000000000000003050100010000803f",
		},
		{
			// TaskDone (flags bit1) with no payload: the rejoined seat
			// already finished the task and just waits for the next one.
			name: "task-done catchup",
			msg:  &Catchup{TaskIdx: 2, Seen: 1, Version: 7, TaskDone: true},
			hex:  "0509000000020000000107020000",
		},
		{
			name: "round end",
			msg:  &RoundEnd{ClientID: 1, EvalAccs: []float64{0.5, 1}},
			hex:  "041d00000001000000000200000000000000000000000000e03f000000000000f03f",
		},
		{
			name: "death report",
			msg:  &RoundEnd{ClientID: 2, Dead: true},
			hex:  "040d00000002000000010000000000000000",
		},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := NewCodec(c.comp).Encode(&buf, c.msg); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got := hex.EncodeToString(buf.Bytes())
		if got != c.hex {
			t.Errorf("%s: encoding changed\n got  %s\n want %s", c.name, got, c.hex)
			continue
		}
		// Every fixture must decode back cleanly.
		if _, err := Decode(bytes.NewReader(buf.Bytes())); err != nil {
			t.Errorf("%s: fixture does not decode: %v", c.name, err)
		}
	}
}
