package fed

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/tensor"
)

func TestLoopbackOrderAndEOF(t *testing.T) {
	server, client := Loopback()
	for i := 0; i < 3; i++ {
		if err := server.Send(&RoundStart{Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	server.Close()
	// Buffered messages drain in order before the close surfaces as EOF.
	for i := 0; i < 3; i++ {
		msg, err := client.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if rs := msg.(*RoundStart); rs.Round != i {
			t.Fatalf("recv %d: got round %d", i, rs.Round)
		}
	}
	if _, err := client.Recv(); err != io.EOF {
		t.Fatalf("after close: err = %v, want io.EOF", err)
	}
	if err := client.Send(&Update{}); err == nil {
		t.Fatal("send to closed peer must fail")
	}
}

func TestLoopbackZeroCopy(t *testing.T) {
	server, client := Loopback()
	params := []float32{1, 2, 3}
	if err := client.Send(&Update{Params: params}); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got := msg.(*Update).Params; &got[0] != &params[0] {
		t.Fatal("loopback must pass slices by reference")
	}
}

// TestServerRejectsImpersonatedUpdate: the update's ClientID routes the
// GlobalModel broadcast, so a client claiming another link's ID (possible
// with a buggy or hostile wire peer) must abort the run instead of panicking
// or misdirecting parameters.
func TestServerRejectsImpersonatedUpdate(t *testing.T) {
	sEnd, cEnd := Loopback()
	srv := NewServer(ServerConfig{Method: "test", NumTasks: 1, Rounds: 1},
		nil, []Transport{sEnd})
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()
	if _, err := cEnd.Recv(); err != nil { // RoundStart
		t.Fatal(err)
	}
	if err := cEnd.Send(&Update{ClientID: 999, Participating: true, Params: []float32{1}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("server accepted an update with a foreign client ID")
	}
}

// TestServerRejectsMismatchedParamLengths: participants must agree on the
// parameter-vector length; a client with a different model (slipping past
// the fingerprint check) must abort the round as a protocol error instead
// of panicking inside the aggregator.
func TestServerRejectsMismatchedParamLengths(t *testing.T) {
	s0, c0 := Loopback()
	s1, c1 := Loopback()
	srv := NewServer(ServerConfig{Method: "test", NumTasks: 1, Rounds: 1},
		nil, []Transport{s0, s1})
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()
	for i, end := range []Transport{c0, c1} {
		if _, err := end.Recv(); err != nil { // RoundStart
			t.Fatal(err)
		}
		params := []float32{1, 2}[:i+1] // client 0 sends 1 value, client 1 sends 2
		if err := end.Send(&Update{ClientID: i, Participating: true, Params: params}); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err == nil {
		t.Fatal("server accepted updates with mismatched parameter lengths")
	}
}

// TestServeRejectsFingerprintMismatch: a wire client whose job derives from
// different knobs (seed, hyperparameters) must be rejected at the handshake,
// and Serve's error path must close the already-accepted connections so
// their clients unblock instead of hanging forever.
func TestServeRejectsFingerprintMismatch(t *testing.T) {
	cfg, _, _, _ := tinySetup(25)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	goodDone := make(chan error, 1)
	go func() {
		tr, err := Dial(addr, 0, cfg.Fingerprint())
		if err != nil {
			goodDone <- err
			return
		}
		_, err = tr.Recv() // must unblock when Serve fails and closes the link
		goodDone <- err
	}()
	go func() {
		bad := cfg
		bad.Seed++
		if _, err := Dial(addr, 1, bad.Fingerprint()); err != nil {
			t.Error(err)
		}
	}()
	if _, err := Serve(ln, 2, cfg.Fingerprint()); err == nil {
		t.Fatal("Serve accepted a client with a mismatched job fingerprint")
	}
	ln.Close()
	if err := <-goodDone; err == nil {
		t.Fatal("accepted client's Recv returned a message after failed Serve")
	}
}

// runWire executes the same federation as the loopback engine, but over real
// localhost TCP: one server goroutine speaking WireTransport to one goroutine
// per client endpoint built with NewWireClient (the standalone constructor a
// separate process would use).
func runWire(t *testing.T, cfg Config, cluster *device.Cluster, seqs [][]data.ClientTask,
	build func(*tensor.RNG) *model.Model, factory Factory) *Result {
	return runWireWith(t, cfg, cluster, seqs, build, factory, WireOptions{})
}

func runWireWith(t *testing.T, cfg Config, cluster *device.Cluster, seqs [][]data.ClientTask,
	build func(*tensor.RNG) *model.Model, factory Factory, opts WireOptions) *Result {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	errs := make([]error, len(seqs))
	for i := range seqs {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tr, err := DialWith(addr, id, cfg.Fingerprint(), opts)
			if err != nil {
				errs[id] = err
				return
			}
			c := NewWireClient(cfg, id, len(seqs), cluster.Devices[id%cluster.Size()],
				seqs[id], build, factory)
			errs[id] = c.Run(context.Background(), tr)
		}(i)
	}
	links, err := ServeWith(ln, len(seqs), cfg.Fingerprint(), opts)
	ln.Close()
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	srv := NewServer(cfg.ServerConfigFor(len(seqs), len(seqs[0])), nil, links)
	res, err := srv.Run(context.Background())
	if err != nil {
		t.Fatalf("server run: %v", err)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("wire client %d: %v", id, err)
		}
	}
	return res
}

// compareResults demands bit-level equality — the acceptance bar for the
// transport seam is that a TCP run reproduces a loopback run exactly.
func compareResults(t *testing.T, numTasks int, loop, wire *Result) {
	t.Helper()
	if len(wire.PerTask) != len(loop.PerTask) {
		t.Fatalf("PerTask: %d vs %d", len(wire.PerTask), len(loop.PerTask))
	}
	for i := range loop.PerTask {
		if wire.PerTask[i] != loop.PerTask[i] {
			t.Errorf("task %d: wire %+v != loopback %+v", i, wire.PerTask[i], loop.PerTask[i])
		}
	}
	for i := 0; i < numTasks; i++ {
		for j := 0; j <= i; j++ {
			if w, l := wire.Matrix.Get(i, j), loop.Matrix.Get(i, j); w != l {
				t.Errorf("matrix[%d][%d]: wire %v != loopback %v", i, j, w, l)
			}
		}
	}
	if len(wire.DeadAfter) != len(loop.DeadAfter) {
		t.Fatalf("DeadAfter: %v vs %v", wire.DeadAfter, loop.DeadAfter)
	}
	for id, task := range loop.DeadAfter {
		if wire.DeadAfter[id] != task {
			t.Errorf("DeadAfter[%d]: wire %d != loopback %d", id, wire.DeadAfter[id], task)
		}
	}
}

func TestWireMatchesLoopback(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(21)
	factory := func(ctx *ClientCtx) Strategy { return &passthrough{ctx: ctx} }
	loop := NewEngine(cfg, cluster, seqs, build, factory).Run()
	wire := runWire(t, cfg, cluster, seqs, build, factory)
	compareResults(t, 3, loop, wire)
	if loop.PerTask[0].AvgAccuracy == 0 {
		t.Fatal("degenerate run: nothing learned, equivalence is vacuous")
	}
}

// TestWireMatchesLoopbackExplicitSyncScheduler runs the transport
// equivalence bar through the Scheduler seam selected by name: -scheduler
// sync must change nothing, over either transport.
func TestWireMatchesLoopbackExplicitSyncScheduler(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(21) // same seed as TestWireMatchesLoopback
	factory := func(ctx *ClientCtx) Strategy { return &passthrough{ctx: ctx} }
	implicit := NewEngine(cfg, cluster, seqs, build, factory).Run()
	cfg.Scheduler = SchedulerSync
	loop := NewEngine(cfg, cluster, seqs, build, factory).Run()
	wire := runWire(t, cfg, cluster, seqs, build, factory)
	compareResults(t, 3, implicit, loop)
	compareResults(t, 3, loop, wire)
}

func TestWireMatchesLoopbackUnderDropout(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(22)
	cfg.DropoutProb = 0.4
	factory := func(ctx *ClientCtx) Strategy { return &passthrough{ctx: ctx} }
	loop := NewEngine(cfg, cluster, seqs, build, factory).Run()
	wire := runWire(t, cfg, cluster, seqs, build, factory)
	compareResults(t, 3, loop, wire)
}

// TestWireMatchesLoopbackWithMask covers the masked-install path (the
// FedRep-style personal/shared split) across the wire: the mask never
// crosses the transport — it is applied client-side — and both bindings
// must agree bit for bit.
func TestWireMatchesLoopbackWithMask(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(23)
	factory := func(ctx *ClientCtx) Strategy {
		n := ctx.Model.NumParams()
		mask := make([]bool, n)
		for i := 0; i < n/2; i++ {
			mask[i] = true
		}
		return &maskHalf{passthrough: passthrough{ctx: ctx}, mask: mask}
	}
	loop := NewEngine(cfg, cluster, seqs, build, factory).Run()
	wire := runWire(t, cfg, cluster, seqs, build, factory)
	compareResults(t, 3, loop, wire)
}

// TestWireQuantizedF16Run: an opt-in fp16 wire run is lossy, so it cannot be
// bit-identical to loopback — but it must complete the protocol and land
// close to the lossless run (fp16 keeps ~3 decimal digits; small models
// barely move).
func TestWireQuantizedF16Run(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(26)
	factory := func(ctx *ClientCtx) Strategy { return &passthrough{ctx: ctx} }
	loop := NewEngine(cfg, cluster, seqs, build, factory).Run()
	wire := runWireWith(t, cfg, cluster, seqs, build, factory,
		WireOptions{Compression: Compression{Quant: QuantF16}})
	if len(wire.PerTask) != len(loop.PerTask) {
		t.Fatalf("quantized run incomplete: %d of %d tasks", len(wire.PerTask), len(loop.PerTask))
	}
	for i := range loop.PerTask {
		d := wire.PerTask[i].AvgAccuracy - loop.PerTask[i].AvgAccuracy
		if d < -0.15 || d > 0.15 {
			t.Errorf("task %d: fp16 accuracy %v vs lossless %v", i,
				wire.PerTask[i].AvgAccuracy, loop.PerTask[i].AvgAccuracy)
		}
	}
}

// TestServeRejectsCompressionMismatch: quantisation changes results, so a
// client that negotiated a different value encoding than the server must be
// rejected at the handshake with an explicit error.
func TestServeRejectsCompressionMismatch(t *testing.T) {
	cfg, _, _, _ := tinySetup(27)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		Dial(ln.Addr().String(), 0, cfg.Fingerprint()) // QuantNone hello
	}()
	_, err = ServeWith(ln, 1, cfg.Fingerprint(),
		WireOptions{Compression: Compression{Quant: QuantI8}})
	if err == nil {
		t.Fatal("server accepted a client with mismatched compression")
	}
}

// TestWireTimeout: with -wire-timeout deadlines installed, a silent peer
// turns into a timeout error instead of wedging Recv (and Send, once the
// peer stops draining) forever.
func TestWireTimeout(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	tr := NewWireWith(a, WireOptions{Timeout: 50 * time.Millisecond})
	defer tr.Close()
	if _, err := tr.Recv(); err == nil {
		t.Fatal("Recv from a silent peer must time out")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("Recv error %v, want a net timeout", err)
	}
	// net.Pipe is unbuffered: a Send nobody reads must also time out.
	if err := tr.Send(&RoundStart{}); err == nil {
		t.Fatal("Send to a stalled peer must time out")
	}
}

// TestWireByteCounters: the transport's measured traffic must account every
// frame both ways, and shrink when the payload is mostly zeros (auto-sparse).
func TestWireByteCounters(t *testing.T) {
	a, b := net.Pipe()
	ta, tb := NewWire(a), NewWire(b)
	defer ta.Close()
	defer tb.Close()
	done := make(chan Msg, 1)
	go func() {
		m, _ := tb.Recv()
		done <- m
	}()
	params := make([]float32, 1000)
	params[1] = 2
	if err := ta.Send(&GlobalModel{Params: params}); err != nil {
		t.Fatal(err)
	}
	<-done
	if ta.BytesSent() == 0 || ta.BytesSent() != tb.BytesRecv() {
		t.Fatalf("sent %d, peer received %d", ta.BytesSent(), tb.BytesRecv())
	}
	if ta.BytesSent() > 64 { // sparse frame: ~13 bytes, dense would be >4000
		t.Fatalf("mostly-zero broadcast cost %d bytes on the wire", ta.BytesSent())
	}
}

// TestWireMatchesLoopbackOOM exercises the eviction path over TCP: a dead
// client's endpoint exits after its RoundEnd death report and the server
// carries on without it.
func TestWireMatchesLoopbackOOM(t *testing.T) {
	cfg, _, seqs, build := tinySetup(24)
	cfg.MemScale = 1
	tiny := &device.Cluster{Devices: []device.Device{
		{Name: "tiny", FLOPS: 1e9, MemBytes: 2 << 20},
		{Name: "big", FLOPS: 1e9, MemBytes: 1 << 40},
	}}
	factory := func(ctx *ClientCtx) Strategy {
		if ctx.ID == 0 {
			return &memHog{passthrough: passthrough{ctx: ctx}}
		}
		return &passthrough{ctx: ctx}
	}
	loop := NewEngine(cfg, tiny, seqs, build, factory).Run()
	wire := runWire(t, cfg, tiny, seqs, build, factory)
	if len(loop.DeadAfter) != 1 {
		t.Fatalf("setup should evict exactly client 0, got %v", loop.DeadAfter)
	}
	compareResults(t, 3, loop, wire)
}
