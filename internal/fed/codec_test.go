package fed

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// roundTrip encodes m, decodes the frame, and returns the result.
func roundTrip(t *testing.T, m Msg) Msg {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left after one frame", buf.Len())
	}
	return got
}

func TestCodecRoundTrip(t *testing.T) {
	msgs := []Msg{
		&helloMsg{clientID: 7, fingerprint: 0xDEADBEEFCAFE},
		&helloMsg{clientID: 4, fingerprint: 99, rejoin: true, lastVersion: 1 << 40},
		&helloMsg{fingerprint: 0xFEED, join: true},
		&helloMsg{fingerprint: 7, join: true, lastVersion: 1 << 33},
		&helloMsg{clientID: 9}, // seat-assignment reply
		&Leave{ClientID: 0},
		&Leave{ClientID: 1 << 20},
		&Catchup{TaskIdx: 2, Seen: 3, Version: 300, Params: []float32{1, -2}},
		&Catchup{TaskIdx: 0, Seen: 1, Version: 7, TaskFinal: true, Params: []float32{0.5}},
		&Catchup{TaskIdx: 1, Seen: 2, Version: 9, TaskDone: true},
		&RoundStart{TaskIdx: 3, Round: 14, Participate: true, TaskDone: true},
		&RoundStart{},
		&Update{ClientID: 2, Participating: true, Weight: 30,
			ComputeSeconds: 0.125, UpBytes: 1 << 40, DownBytes: 12345,
			Params: []float32{0, 1.5, -2.25, float32(math.Inf(1)), math.SmallestNonzeroFloat32}},
		&Update{ClientID: 1}, // dropped-out acknowledgement: no params
		&GlobalModel{Params: []float32{3.14, -0}},
		&GlobalModel{},
		&RoundEnd{ClientID: 5, EvalAccs: []float64{0.25, 1, 0.6180339887498949}},
		&RoundEnd{ClientID: 0, Dead: true},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %T: got %+v, want %+v", m, got, m)
		}
	}
}

func TestCodecFloatBitsPreserved(t *testing.T) {
	// IEEE-754 bit patterns — including NaN payloads — must survive the
	// wire untouched; that is what makes wire runs bit-identical.
	nan32 := math.Float32frombits(0x7FC00123)
	u := roundTrip(t, &Update{Params: []float32{nan32}, Participating: true,
		Weight: math.Float64frombits(0x7FF8000000000042)}).(*Update)
	if math.Float32bits(u.Params[0]) != 0x7FC00123 {
		t.Errorf("float32 bits %#x", math.Float32bits(u.Params[0]))
	}
	if math.Float64bits(u.Weight) != 0x7FF8000000000042 {
		t.Errorf("float64 bits %#x", math.Float64bits(u.Weight))
	}
}

func TestCodecStreamOfFrames(t *testing.T) {
	var buf bytes.Buffer
	sent := []Msg{
		&RoundStart{TaskIdx: 1, Participate: true},
		&Update{ClientID: 0, Participating: true, Weight: 2, Params: []float32{1, 2}},
		&GlobalModel{Params: []float32{1.5, 1.5}},
		&RoundEnd{ClientID: 0, EvalAccs: []float64{0.5, 0.25}},
	}
	for _, m := range sent {
		if err := Encode(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range sent {
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := Decode(&buf); err != io.EOF {
		t.Fatalf("exhausted stream: err = %v, want io.EOF", err)
	}
}

func TestCodecErrors(t *testing.T) {
	cases := map[string][]byte{
		"unknown kind":       {99, 0, 0, 0, 0},
		"truncated header":   {byte(KindUpdate), 1, 0},
		"truncated payload":  {byte(KindUpdate), 10, 0, 0, 0, 1, 2},
		"oversized frame":    {byte(KindGlobalModel), 0xFF, 0xFF, 0xFF, 0xFF},
		"short round start":  {byte(KindRoundStart), 2, 0, 0, 0, 1, 2},
		"f32 count too big":  append([]byte{byte(KindGlobalModel), 8, 0, 0, 0}, bytes.Repeat([]byte{0xFF}, 8)...),
		"trailing bytes":     {byte(KindRoundStart), 10, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0},
		"empty hello":        {byte(KindHello), 0, 0, 0, 0},
		"round end no count": {byte(KindRoundEnd), 5, 0, 0, 0, 1, 0, 0, 0, 0},
	}
	for name, raw := range cases {
		if _, err := Decode(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
	// A clean EOF at a frame boundary is not an error condition.
	if _, err := Decode(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
}

// TestCodecMembershipErrors pins the v5 decode-time validation of the
// membership frames: a malformed seat ID, a hello claiming both roles or a
// pre-picked seat, and an out-of-range catch-up position are all rejected
// while the frame is being read — before the acceptor, the scheduler, or
// the params allocator ever sees the claim.
func TestCodecMembershipErrors(t *testing.T) {
	hello := func(clientID [4]byte, flags byte) []byte {
		raw := append([]byte{byte(KindHello), 15, 0, 0, 0}, clientID[:]...)
		raw = append(raw, 1, 0, 0, 0, 0, 0, 0, 0) // fingerprint
		return append(raw, 0, flags, 0)           // quant, flags, lastVersion
	}
	cases := []struct {
		name string
		raw  []byte
		want string
	}{
		{
			name: "hello claiming join and rejoin at once",
			raw:  hello([4]byte{}, flagJoin|flagRejoin),
			want: "claims both join and rejoin",
		},
		{
			name: "join hello claiming a seat",
			raw:  hello([4]byte{2, 0, 0, 0}, flagJoin),
			want: "join hello claims seat 2",
		},
		{
			name: "hello seat ID beyond the bound",
			raw:  hello([4]byte{0xFF, 0xFF, 0xFF, 0xFF}, 0),
			want: "malformed seat ID",
		},
		{
			name: "leave seat ID beyond the bound",
			raw:  []byte{byte(KindLeave), 4, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF},
			want: "malformed seat ID",
		},
		{
			name: "truncated leave",
			raw:  []byte{byte(KindLeave), 2, 0, 0, 0, 1, 0},
			want: "",
		},
		{
			name: "leave with trailing bytes",
			raw:  []byte{byte(KindLeave), 8, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0},
			want: "",
		},
		{
			// The hostile task index is rejected on read; the params block
			// that would follow is never reached, let alone allocated.
			name: "catch-up task position out of range",
			raw:  []byte{byte(KindCatchup), 7, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0},
			want: "catch-up position",
		},
		{
			// seen = 2^35 as a uvarint: beyond any seat's possible progress.
			name: "catch-up resume round out of range",
			raw: []byte{byte(KindCatchup), 12, 0, 0, 0, 0, 0, 0, 0,
				0x80, 0x80, 0x80, 0x80, 0x80, 0x01, 0, 0},
			want: "catch-up position",
		},
	}
	for _, c := range cases {
		_, err := Decode(bytes.NewReader(c.raw))
		if err == nil {
			t.Errorf("%s: decode succeeded, want error", c.name)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestCodecRoundTripSparse(t *testing.T) {
	msgs := []*Update{
		{ClientID: 3, Participating: true, Weight: 12,
			Sparse: &tensor.SparseVec{N: 10, Indices: []int32{0, 4, 9}, Values: []float32{1.5, -2, 3}}},
		{ClientID: 1, Participating: true, Weight: 1,
			Sparse: &tensor.SparseVec{N: 1 << 20}}, // empty sparse vector
		{ClientID: 0, Participating: true,
			Sparse: &tensor.SparseVec{N: 3, Indices: []int32{2}, Values: []float32{0}}}, // stored zero survives
	}
	for _, m := range msgs {
		got := roundTrip(t, m).(*Update)
		if got.Params != nil {
			t.Fatalf("sparse update decoded with dense params")
		}
		if got.Sparse.N != m.Sparse.N || got.Sparse.Len() != m.Sparse.Len() {
			t.Fatalf("sparse shape: got (%d,%d), want (%d,%d)",
				got.Sparse.N, got.Sparse.Len(), m.Sparse.N, m.Sparse.Len())
		}
		for i := range m.Sparse.Indices {
			if got.Sparse.Indices[i] != m.Sparse.Indices[i] ||
				math.Float32bits(got.Sparse.Values[i]) != math.Float32bits(m.Sparse.Values[i]) {
				t.Fatalf("sparse entry %d: got (%d,%v), want (%d,%v)", i,
					got.Sparse.Indices[i], got.Sparse.Values[i],
					m.Sparse.Indices[i], m.Sparse.Values[i])
			}
		}
	}
}

// TestCodecAutoSparse: a mostly-zero dense vector is transparently shipped
// as a sparse frame — smaller on the wire, bit-exact after decoding — while
// a dense vector keeps the dense form. Negative zero has a non-zero bit
// pattern and must survive either way.
func TestCodecAutoSparse(t *testing.T) {
	dense := make([]float32, 1000)
	dense[3] = 1.5
	dense[500] = float32(math.Copysign(0, -1))
	dense[999] = -8

	var sparse, denseOff bytes.Buffer
	if err := Encode(&sparse, &Update{Participating: true, Params: dense}); err != nil {
		t.Fatal(err)
	}
	c := NewCodec(Compression{DisableSparse: true})
	if err := c.Encode(&denseOff, &Update{Participating: true, Params: dense}); err != nil {
		t.Fatal(err)
	}
	if sparse.Len() >= denseOff.Len() {
		t.Fatalf("auto-sparse frame (%d B) not smaller than dense (%d B)", sparse.Len(), denseOff.Len())
	}
	got, err := Decode(&sparse)
	if err != nil {
		t.Fatal(err)
	}
	u := got.(*Update)
	if u.Sparse == nil {
		t.Fatal("auto-sparse frame decoded dense")
	}
	back := u.Sparse.Densify()
	for i := range dense {
		if math.Float32bits(back[i]) != math.Float32bits(dense[i]) {
			t.Fatalf("coordinate %d: %#x != %#x", i, math.Float32bits(back[i]), math.Float32bits(dense[i]))
		}
	}

	// A fully dense vector stays dense.
	full := make([]float32, 100)
	for i := range full {
		full[i] = float32(i + 1)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, &GlobalModel{Params: full}); err != nil {
		t.Fatal(err)
	}
	gm, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gm.(*GlobalModel).Params, full) {
		t.Fatal("dense global model mangled")
	}
}

// TestCodecSparseGlobalModelDensifies: GlobalModel frames may travel sparse,
// but clients install full vectors, so the decoder densifies them.
func TestCodecSparseGlobalModelDensifies(t *testing.T) {
	params := make([]float32, 64)
	params[7] = 3.5
	var buf bytes.Buffer
	if err := Encode(&buf, &GlobalModel{Params: params}); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.(*GlobalModel).Params, params) {
		t.Fatalf("sparse-encoded global model: got %v", got.(*GlobalModel).Params)
	}
}

func TestCodecQuantizedF16(t *testing.T) {
	c := NewCodec(Compression{Quant: QuantF16})
	params := []float32{1, -0.5, 0.333333, 100, 0}
	var buf bytes.Buffer
	if err := c.Encode(&buf, &Update{Participating: true, Weight: 2, Params: params}); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	u := got.(*Update)
	var dec []float32
	if u.Sparse != nil {
		dec = u.Sparse.Densify()
	} else {
		dec = u.Params
	}
	for i, v := range params {
		if math.Abs(float64(dec[i]-v)) > math.Abs(float64(v))*1e-3 {
			t.Errorf("f16 value %d: %v → %v", i, v, dec[i])
		}
	}
	// Exactly-representable values survive bit-for-bit.
	for _, i := range []int{0, 1, 3, 4} {
		if dec[i] != params[i] {
			t.Errorf("f16-exact value %v decoded as %v", params[i], dec[i])
		}
	}
}

// TestCodecQuantizedEmptyParams: a dropped-out client's acknowledgement
// (nil params) must round-trip under every value encoding — a -compress
// int8 run with dropout sends these every round.
func TestCodecQuantizedEmptyParams(t *testing.T) {
	for _, q := range []Quant{QuantNone, QuantF16, QuantI8} {
		var buf bytes.Buffer
		c := NewCodec(Compression{Quant: q})
		if err := c.Encode(&buf, &Update{ClientID: 3}); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		u := got.(*Update)
		if u.ClientID != 3 || u.Params != nil || u.Sparse != nil {
			t.Fatalf("%s: %+v", q, u)
		}
	}
}

func TestCodecQuantizedI8(t *testing.T) {
	c := NewCodec(Compression{Quant: QuantI8})
	params := []float32{127, -127, 64, 0, 1}
	var buf bytes.Buffer
	if err := c.Encode(&buf, &GlobalModel{Params: params}); err != nil {
		t.Fatal(err)
	}
	// int8 dense payload: version+flags+format+n+scale+5 values =
	// 1+1+1+1+4+5 = 13 ≤ half the float32 form's 25.
	if plLen := buf.Len() - 5; plLen != 13 {
		t.Fatalf("i8 payload %d bytes, want 13", plLen)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dec := got.(*GlobalModel).Params
	for i, v := range params {
		if math.Abs(float64(dec[i]-v)) > 0.5 {
			t.Errorf("i8 value %d: %v → %v", i, v, dec[i])
		}
	}
}

// TestCodecSparseDecoderBounds exercises the sparse decoder's validation:
// out-of-range indices, over-long counts and varint overflows must error,
// never panic or over-allocate.
func TestCodecSparseDecoderBounds(t *testing.T) {
	sparseFrame := func(body ...byte) []byte {
		// v3 GlobalModel payload: version(uvarint)=0, flags=0, then the
		// params block under test.
		body = append([]byte{0, 0}, body...)
		frame := append([]byte{byte(KindGlobalModel), 0, 0, 0, 0}, body...)
		binary.LittleEndian.PutUint32(frame[1:], uint32(len(body)))
		return frame
	}
	cases := map[string][]byte{
		"index out of range":     sparseFrame(0x04, 4, 1, 200, 0, 0, 0x80, 0x3F), // idx 200 ≥ n 4
		"gap wraps to duplicate": sparseFrame(0x04, 8, 2, 5, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0, 0, 0x80, 0x3F, 0, 0, 0x80, 0x3F), // gap 2^64-1 ⇒ idx = prev
		"gap varint overflow":    sparseFrame(0x04, 4, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01),
		"k exceeds n":            sparseFrame(0x04, 2, 3, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12),
		"k exceeds payload":      sparseFrame(0x04, 100, 90),
		"n exceeds limit":        sparseFrame(0x04, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 0),
		"truncated gap stream":   sparseFrame(0x04, 10, 2, 1),
		"truncated sparse value": sparseFrame(0x04, 10, 2, 1, 1, 0, 0, 0, 0),
		"unknown format":         sparseFrame(0x0F, 1, 0),
		"unknown value encoding": sparseFrame(0x03, 1, 0, 0, 0, 0),
		"nonzero k at n=0":       sparseFrame(0x04, 0, 1, 0, 0, 0, 0, 0),
	}
	for name, raw := range cases {
		if _, err := Decode(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
	// Duplicate/descending indices are impossible by construction: gap
	// encoding always advances by at least one. A zero gap after the first
	// index is index+1, still strictly ascending — verify it decodes.
	ok := sparseFrame(0x04, 4, 2, 1, 0, 0, 0, 0x80, 0x3F, 0, 0, 0x80, 0xBF) // idx 1,2 ← gaps 1,0
	m, err := Decode(bytes.NewReader(ok))
	if err != nil {
		t.Fatalf("valid sparse frame rejected: %v", err)
	}
	sp := m.(*GlobalModel).Params
	if sp[1] != 1 || sp[2] != -1 {
		t.Fatalf("sparse frame decoded wrong: %v", sp)
	}
}

// FuzzDecode feeds arbitrary bytes through the decoder: it must never panic
// or over-allocate, and anything it accepts must re-encode to a frame that
// decodes back to the same message.
func FuzzDecode(f *testing.F) {
	seeds := []Msg{
		&helloMsg{clientID: 3, fingerprint: 1, quant: QuantF16},
		&RoundStart{TaskIdx: 2, Round: 1, Participate: true, TaskDone: true},
		&Update{ClientID: 1, Participating: true, Weight: 10, ComputeSeconds: 1.5,
			UpBytes: 100, DownBytes: 200, Params: []float32{1, 2, 3}},
		&Update{ClientID: 2, Participating: true, Weight: 4,
			Sparse: &tensor.SparseVec{N: 100, Indices: []int32{0, 17, 99}, Values: []float32{1, -2, 3}}},
		&GlobalModel{Params: []float32{-1, 0.5}},
		&GlobalModel{Params: append(make([]float32, 60), 2.5)}, // auto-sparse form
		&RoundEnd{ClientID: 2, EvalAccs: []float64{0.1, 0.9}},
		&helloMsg{clientID: 1, fingerprint: 2, rejoin: true, lastVersion: 5},
		&helloMsg{fingerprint: 3, join: true, lastVersion: 9},
		&helloMsg{clientID: 6}, // seat-assignment reply
		&Leave{ClientID: 4},
		&Catchup{TaskIdx: 1, Seen: 2, Version: 3, TaskFinal: true, Params: []float32{1, 0, 0, 2}},
		&Catchup{TaskIdx: 0, Seen: 0, Version: 1, TaskDone: true},
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	for _, comp := range []Compression{{Quant: QuantF16}, {Quant: QuantI8}} {
		var buf bytes.Buffer
		if err := NewCodec(comp).Encode(&buf, &Update{Participating: true,
			Params: []float32{0.25, 0, -3, 0, 0, 0, 0, 0, 0, 0.5}}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{byte(KindUpdate), 0xFF, 0xFF, 0, 0})
	f.Add([]byte{byte(KindGlobalModel), 7, 0, 0, 0, 0x04, 10, 2, 1, 1})       // truncated sparse
	f.Add([]byte{byte(KindLeave), 4, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})        // out-of-range seat
	f.Add([]byte{byte(KindCatchup), 7, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0}) // hostile position
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := Decode(bytes.NewReader(raw))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			t.Fatalf("re-encode %T: %v", m, err)
		}
		m2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		b1 := appendPayload(nil, m, Compression{})
		b2 := appendPayload(nil, m2, Compression{})
		if !bytes.Equal(b1, b2) {
			t.Fatalf("decode/encode not idempotent: %x vs %x", b1, b2)
		}
	})
}
