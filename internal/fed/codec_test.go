package fed

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"
)

// roundTrip encodes m, decodes the frame, and returns the result.
func roundTrip(t *testing.T, m Msg) Msg {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left after one frame", buf.Len())
	}
	return got
}

func TestCodecRoundTrip(t *testing.T) {
	msgs := []Msg{
		&helloMsg{clientID: 7, fingerprint: 0xDEADBEEFCAFE},
		&RoundStart{TaskIdx: 3, Round: 14, Participate: true, TaskDone: true},
		&RoundStart{},
		&Update{ClientID: 2, Participating: true, Weight: 30,
			ComputeSeconds: 0.125, UpBytes: 1 << 40, DownBytes: 12345,
			Params: []float32{0, 1.5, -2.25, float32(math.Inf(1)), math.SmallestNonzeroFloat32}},
		&Update{ClientID: 1}, // dropped-out acknowledgement: no params
		&GlobalModel{Params: []float32{3.14, -0}},
		&GlobalModel{},
		&RoundEnd{ClientID: 5, EvalAccs: []float64{0.25, 1, 0.6180339887498949}},
		&RoundEnd{ClientID: 0, Dead: true},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %T: got %+v, want %+v", m, got, m)
		}
	}
}

func TestCodecFloatBitsPreserved(t *testing.T) {
	// IEEE-754 bit patterns — including NaN payloads — must survive the
	// wire untouched; that is what makes wire runs bit-identical.
	nan32 := math.Float32frombits(0x7FC00123)
	u := roundTrip(t, &Update{Params: []float32{nan32}, Participating: true,
		Weight: math.Float64frombits(0x7FF8000000000042)}).(*Update)
	if math.Float32bits(u.Params[0]) != 0x7FC00123 {
		t.Errorf("float32 bits %#x", math.Float32bits(u.Params[0]))
	}
	if math.Float64bits(u.Weight) != 0x7FF8000000000042 {
		t.Errorf("float64 bits %#x", math.Float64bits(u.Weight))
	}
}

func TestCodecStreamOfFrames(t *testing.T) {
	var buf bytes.Buffer
	sent := []Msg{
		&RoundStart{TaskIdx: 1, Participate: true},
		&Update{ClientID: 0, Participating: true, Weight: 2, Params: []float32{1, 2}},
		&GlobalModel{Params: []float32{1.5, 1.5}},
		&RoundEnd{ClientID: 0, EvalAccs: []float64{0.5, 0.25}},
	}
	for _, m := range sent {
		if err := Encode(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range sent {
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := Decode(&buf); err != io.EOF {
		t.Fatalf("exhausted stream: err = %v, want io.EOF", err)
	}
}

func TestCodecErrors(t *testing.T) {
	cases := map[string][]byte{
		"unknown kind":       {99, 0, 0, 0, 0},
		"truncated header":   {byte(KindUpdate), 1, 0},
		"truncated payload":  {byte(KindUpdate), 10, 0, 0, 0, 1, 2},
		"oversized frame":    {byte(KindGlobalModel), 0xFF, 0xFF, 0xFF, 0xFF},
		"short round start":  {byte(KindRoundStart), 2, 0, 0, 0, 1, 2},
		"f32 count too big":  append([]byte{byte(KindGlobalModel), 8, 0, 0, 0}, bytes.Repeat([]byte{0xFF}, 8)...),
		"trailing bytes":     {byte(KindRoundStart), 10, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0},
		"empty hello":        {byte(KindHello), 0, 0, 0, 0},
		"round end no count": {byte(KindRoundEnd), 5, 0, 0, 0, 1, 0, 0, 0, 0},
	}
	for name, raw := range cases {
		if _, err := Decode(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
	// A clean EOF at a frame boundary is not an error condition.
	if _, err := Decode(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
}

// FuzzDecode feeds arbitrary bytes through the decoder: it must never panic
// or over-allocate, and anything it accepts must re-encode to a frame that
// decodes back to the same message.
func FuzzDecode(f *testing.F) {
	seeds := []Msg{
		&helloMsg{clientID: 3, fingerprint: 1},
		&RoundStart{TaskIdx: 2, Round: 1, Participate: true, TaskDone: true},
		&Update{ClientID: 1, Participating: true, Weight: 10, ComputeSeconds: 1.5,
			UpBytes: 100, DownBytes: 200, Params: []float32{1, 2, 3}},
		&GlobalModel{Params: []float32{-1, 0.5}},
		&RoundEnd{ClientID: 2, EvalAccs: []float64{0.1, 0.9}},
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{byte(KindUpdate), 0xFF, 0xFF, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := Decode(bytes.NewReader(raw))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			t.Fatalf("re-encode %T: %v", m, err)
		}
		m2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		b1 := appendPayload(nil, m)
		b2 := appendPayload(nil, m2)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("decode/encode not idempotent: %x vs %x", b1, b2)
		}
	})
}
