package fed

import (
	"math"
	"testing"
)

// TestF16RoundTripAllHalves: every binary16 bit pattern must survive
// half → float32 → half exactly (float32 represents all half values, and the
// back-conversion must round-trip them, NaN payloads included).
func TestF16RoundTripAllHalves(t *testing.T) {
	for h := 0; h <= 0xFFFF; h++ {
		f := f16ToF32(uint16(h))
		back := f32ToF16(f)
		if back != uint16(h) {
			t.Fatalf("half %#04x → %v → %#04x", h, f, back)
		}
	}
}

func TestF16KnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3C00},
		{-2, 0xC000},
		{0.5, 0x3800},
		{65504, 0x7BFF},                  // largest finite half
		{65536, 0x7C00},                  // overflow → +Inf
		{float32(math.Inf(-1)), 0xFC00},  // -Inf
		{5.9604645e-8, 0x0001},           // smallest subnormal (2^-24)
		{6.0975552e-5, 0x03FF},           // largest subnormal ((1023/1024)·2^-14)
		{6.1035156e-5, 0x0400},           // smallest normal (2^-14)
		{1e-9, 0x0000},                   // underflow → 0
		{1.0009765625, 0x3C01},           // 1 + 2^-10, exact
		{1.00048828125, 0x3C00},          // 1 + 2^-11: tie, rounds to even
	}
	for _, c := range cases {
		if got := f32ToF16(c.f); got != c.h {
			t.Errorf("f32ToF16(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
	}
	if h := f32ToF16(float32(math.NaN())); h&0x7C00 != 0x7C00 || h&0x3FF == 0 {
		t.Errorf("NaN encoded as %#04x, not a half NaN", h)
	}
	// 1 + 3·2^-11 rounds up to 1 + 2·2^-11 (even).
	if got := f32ToF16(1.0 + 3.0/2048.0); got != 0x3C02 {
		t.Errorf("tie-up case = %#04x, want 0x3C02", got)
	}
}

func TestI8QuantRoundTrip(t *testing.T) {
	vals := []float32{0, 1, -1, 0.5, 127, -127, 63.3}
	scale := i8Scale(vals)
	if scale != 1 { // maxAbs = 127 → scale 1
		t.Fatalf("scale = %v, want 1", scale)
	}
	for _, v := range []float32{0, 1, -1, 127, -127, 63} {
		q := i8Quantize(v, scale)
		if float32(q)*scale != v {
			t.Errorf("value %v → %d → %v", v, q, float32(q)*scale)
		}
	}
	// Clamping and NaN handling.
	if q := i8Quantize(1e9, scale); q != 127 {
		t.Errorf("overflow quantised to %d", q)
	}
	if q := i8Quantize(float32(math.NaN()), scale); q != 0 {
		t.Errorf("NaN quantised to %d", q)
	}
	// All-zero input: scale 0, everything decodes to exact zero.
	if s := i8Scale([]float32{0, 0}); s != 0 {
		t.Errorf("zero scale = %v", s)
	}
	if q := i8Quantize(0, 0); q != 0 {
		t.Errorf("zero value at zero scale → %d", q)
	}
	// Infinity must not poison the scale.
	if s := i8Scale([]float32{float32(math.Inf(1)), 1}); math.IsInf(float64(s), 0) {
		t.Errorf("Inf leaked into scale: %v", s)
	}
}
