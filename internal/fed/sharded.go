package fed

import (
	"fmt"

	"repro/internal/shard"
)

// ShardedFedAvg is SparseFedAvg's exact arithmetic behind a concurrent
// sharded fold stage (internal/shard): each accepted update is
// index-partitioned across P per-shard reducers that fold their contiguous
// coordinate ranges on the tensor.Parallel worker pool, and FinishRound
// merges the normalised per-shard partials in ascending shard/index order.
// Because the shards are disjoint and every kernel is per-coordinate
// independent, the result is bitwise identical to SparseFedAvg for every
// shard count and thread count — the -shards knob buys ingest throughput
// (the per-link decode→fold→ack path stops being serialised on one core's
// fold loop), never different bits.
//
// The weight arithmetic lives here, exactly as in SparseFedAvg: a zero
// weight counts as one, the total accumulates in float64 arrival order, and
// the merge scales by float32(1/total) once.
type ShardedFedAvg struct {
	r     *shard.Reducer
	total float64
	count int
}

// NewShardedFedAvg builds the sharded streaming aggregator with the given
// shard count (minimum 1; 1 is the single-loop layout behind the same
// interface).
func NewShardedFedAvg(shards int) *ShardedFedAvg {
	return &ShardedFedAvg{r: shard.NewReducer(shards)}
}

// Name identifies the aggregation rule and its shard count.
func (a *ShardedFedAvg) Name() string {
	return fmt.Sprintf("ShardedFedAvg(%d)", a.r.Shards())
}

// Shards reports the configured shard count.
func (a *ShardedFedAvg) Shards() int { return a.r.Shards() }

// BeginRound opens a fresh round on every shard and resets the weight
// bookkeeping.
func (a *ShardedFedAvg) BeginRound() {
	a.r.BeginRound()
	a.total, a.count = 0, 0
}

// Accumulate folds one participating update across the shards.
func (a *ShardedFedAvg) Accumulate(u *Update) {
	w := u.Weight
	if w == 0 {
		w = 1
	}
	a.total += w
	a.count++
	if u.Sparse != nil {
		a.r.FoldSparse(float32(w), u.Sparse)
		return
	}
	a.r.FoldDense(float32(w), u.Params)
}

// FinishRound merges the per-shard partials into the double-buffered global,
// normalised by the accumulated weight; nil when no update was accumulated.
// The result stays intact through the whole next round (double buffering),
// matching SparseFedAvg's broadcast-aliasing contract.
func (a *ShardedFedAvg) FinishRound() []float32 {
	if a.count == 0 {
		return nil
	}
	return a.r.Merge(float32(1 / a.total))
}

// Aggregate implements the buffered Aggregator interface in terms of the
// streaming one.
func (a *ShardedFedAvg) Aggregate(updates []*Update) []float32 {
	a.BeginRound()
	for _, u := range updates {
		a.Accumulate(u)
	}
	return a.FinishRound()
}

// windowState exports the open commit window's raw partial accumulation
// (windowedAggregator).
func (a *ShardedFedAvg) windowState() (idx []int32, vals []float32, dense bool, total float64) {
	idx, vals, dense = a.r.Window()
	return idx, vals, dense, a.total
}

// restoreWindow reinstates a captured open window after BeginRound
// (windowedAggregator).
func (a *ShardedFedAvg) restoreWindow(n int, idx []int32, vals []float32, dense bool, total float64, count int) {
	a.r.RestoreWindow(n, idx, vals, dense)
	a.total, a.count = total, count
}
