package fed

import (
	"context"
	"fmt"
	"io"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// Client is one protocol endpoint: it wraps a Strategy, owns the local
// model, training data and device accounting, and speaks the round lifecycle
// over any Transport — in-memory goroutine (loopback) or TCP peer (wire)
// alike.
type Client struct {
	cfg      Config
	ctx      *ClientCtx
	strategy Strategy
	seq      []data.ClientTask
	dev      device.Device

	// sem, when non-nil, bounds concurrent compute across the co-resident
	// loopback clients (the Config.Parallelism knob). Wire clients own their
	// process and leave it nil.
	sem chan struct{}

	// batching state
	order   []int
	cur     int
	curTask int

	// baseVersion is the Version of the last GlobalModel this client
	// installed — the base its next update trains from, reported in
	// Update.BaseVersion so the asynchronous scheduler can measure
	// staleness. 0 until the first install (the shared initial model). A
	// rejoin hello also reports it, so the server can skip the catch-up
	// payload when the client is already current.
	baseVersion uint64

	// Reconnect bookkeeping. taskEnded is the highest task whose TaskEnd
	// hook has run (so a re-reported task never re-extracts knowledge);
	// finished marks the task sequence complete (or an OOM death report
	// sent) — the signal RunReconnect uses to tell a clean shutdown from a
	// dropped connection, both of which surface as io.EOF.
	taskEnded int
	finished  bool

	// leaveAfter, when >= 0, is the task index after whose completed report
	// the client retires its seat with a clean Leave frame and stops
	// (SetLeaveAfterTask). -1 means never leave early.
	leaveAfter int

	// scratch, reused every round/batch
	flatBuf   []float32
	mergedBuf []float32
	idxBuf    []int
	evalIdx   []int
	// upd is the reusable round-update message: the server (and any wire
	// encoder) consumes an Update before the client's next round starts, so
	// one struct serves every round without allocating.
	upd Update
}

// newClient builds a client whose RNG stream is already positioned; rng must
// be the root's fork for this ID and refFlat the shared initial parameters.
func newClient(cfg Config, id, numClients int, dev device.Device, seq []data.ClientTask,
	build func(rng *tensor.RNG) *model.Model, factory Factory,
	rng *tensor.RNG, refFlat []float32) *Client {
	m := build(rng.Fork(7))
	nn.SetFlatParams(m.Params(), refFlat)
	ctx := &ClientCtx{
		ID:         id,
		NumClients: numClients,
		Model:      m,
		Opt:        opt.NewSGD(opt.Inv{Base: cfg.LR, Decay: cfg.LRDecay}, 0, 0),
		RNG:        rng,
		NumClasses: cfg.NumClasses,
	}
	return &Client{
		cfg: cfg, ctx: ctx, strategy: factory(ctx),
		seq: seq, dev: dev, curTask: -1, taskEnded: -1, leaveAfter: -1,
	}
}

// SetLeaveAfterTask makes the client retire its seat cleanly after reporting
// task n (0-based): once that task's RoundEnd is delivered, the client sends
// a Leave frame and stops, finished — the elastic-membership departure, as
// opposed to just dropping the connection (which the server treats as an
// eviction and RunReconnect would heal). Asynchronous scheduler only; the
// lockstep protocol has no mid-run departure, so the synchronous client
// ignores it. A value past the final task (or -1, the default) never fires.
func (c *Client) SetLeaveAfterTask(n int) { c.leaveAfter = n }

// NewWireClient builds a standalone client endpoint (for a separate process
// or goroutine dialing a server) that reproduces the loopback engine's
// per-client state exactly. The RNG fork sequence is order-dependent, so it
// replays the engine's construction order: the shared initial model comes
// from fork 0xC0FFEE of the seed root, then one fork per lower client ID is
// discarded to position the stream for this ID.
func NewWireClient(cfg Config, id, numClients int, dev device.Device, seq []data.ClientTask,
	build func(rng *tensor.RNG) *model.Model, factory Factory) *Client {
	root := tensor.NewRNG(cfg.Seed)
	ref := build(root.Fork(0xC0FFEE))
	refFlat := nn.FlattenParams(ref.Params())
	for j := 0; j < id; j++ {
		root.Fork(uint64(j) + 1)
	}
	rng := root.Fork(uint64(id) + 1)
	return newClient(cfg, id, numClients, dev, seq, build, factory, rng, refFlat)
}

// Ctx exposes the client's context (model, optimizer, RNG) for inspection.
func (c *Client) Ctx() *ClientCtx { return c.ctx }

// Run speaks the round lifecycle until the server closes the transport (a
// clean shutdown), the client is evicted for exceeding device memory, or ctx
// is cancelled. It owns the transport and closes it on every path;
// cancellation closes it immediately so even a blocking wire Recv unblocks.
// The loop it speaks follows Config.Scheduler: lockstep rounds for the
// synchronous scheduler, continuous training with buffered global delivery
// for the asynchronous one.
func (c *Client) Run(ctx context.Context, t Transport) error {
	defer t.Close()
	stop := context.AfterFunc(ctx, func() { t.Close() })
	defer stop()
	if c.cfg.Scheduler == SchedulerAsync {
		return c.runAsync(ctx, t)
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		msg, err := t.Recv()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		rs, ok := msg.(*RoundStart)
		if !ok {
			return fmt.Errorf("fed: client %d got %T, want *RoundStart", c.ctx.ID, msg)
		}
		if rs.TaskIdx < 0 || rs.TaskIdx >= len(c.seq) {
			return fmt.Errorf("fed: client %d got task index %d of %d", c.ctx.ID, rs.TaskIdx, len(c.seq))
		}
		if rs.TaskIdx != c.curTask {
			c.order, c.cur = nil, 0
			c.curTask = rs.TaskIdx
		}
		ct := c.seq[rs.TaskIdx]
		if rs.Participate {
			if err := c.trainAndUpload(t, ct, false); err != nil {
				return err
			}
			if err := c.installGlobal(t, ct); err != nil {
				return err
			}
		} else {
			// Dropped out this round: acknowledge so the server's collection
			// loop stays in lockstep, train nothing, keep stale parameters.
			c.upd = Update{ClientID: c.ctx.ID}
			if err := t.Send(&c.upd); err != nil {
				return err
			}
		}
		if rs.TaskDone {
			re := c.finishTask(ct, rs.TaskIdx)
			if err := t.Send(re); err != nil {
				return err
			}
			if re.Dead {
				c.finished = true
				return nil
			}
			if rs.TaskIdx == len(c.seq)-1 {
				c.finished = true
			}
		}
	}
}

// trainAndUpload runs the round's local iterations and sends the Update.
// With detach the sent message owns its memory — a fresh struct and a copy
// of the parameter vector: the asynchronous client trains on (and rewrites
// flatBuf and c.upd during) the next round without waiting for the server
// to consume the zero-copy loopback frame, and the asynchronous server may
// still be reading (and staleness-reweighting) the previous message when
// this round ends, so the lockstep aliasing contract protects neither.
func (c *Client) trainAndUpload(t Transport, ct data.ClientTask, detach bool) error {
	c.gate(func() {
		for it := 0; it < c.cfg.LocalIters; it++ {
			x, labels := c.nextBatch(ct, c.cfg.BatchSize)
			c.strategy.TrainStep(x, labels, ct.Classes)
		}
	})
	c.flatBuf = nn.FlattenParamsInto(c.flatBuf, c.ctx.Model.Params())
	work := c.ctx.Model.FLOPsPerSample() * 3 * float64(c.cfg.BatchSize*c.cfg.LocalIters)
	work += c.strategy.OverheadFLOPs() * float64(c.cfg.LocalIters)
	c.upd = Update{
		ClientID:       c.ctx.ID,
		Participating:  true,
		Weight:         float64(len(ct.Train)),
		Params:         c.flatBuf,
		BaseVersion:    c.baseVersion,
		ComputeSeconds: c.dev.TrainTime(work),
		UpBytes:        int64(c.ctx.Model.ParamBytes() + c.strategy.ExtraUploadBytes()),
		DownBytes:      int64(c.ctx.Model.ParamBytes() + c.strategy.ExtraDownloadBytes()),
	}
	if detach {
		u := c.upd
		u.Params = append([]float32(nil), c.flatBuf...)
		return t.Send(&u)
	}
	return t.Send(&c.upd)
}

// installGlobal receives the aggregated model over the lockstep loop and
// installs it.
func (c *Client) installGlobal(t Transport, ct data.ClientTask) error {
	msg, err := t.Recv()
	if err != nil {
		return fmt.Errorf("fed: client %d waiting for global model: %w", c.ctx.ID, err)
	}
	gm, ok := msg.(*GlobalModel)
	if !ok {
		return fmt.Errorf("fed: client %d got %T, want *GlobalModel", c.ctx.ID, msg)
	}
	c.install(gm, ct)
	return nil
}

// install applies one GlobalModel: the vector is installed through the
// strategy's aggregation mask (merging against the client's pre-aggregation
// parameters), AfterAggregate runs with the pre-aggregation vector, and the
// client's base version advances to the global's. flatBuf is rewritten next
// round; strategies that keep the pre-aggregation vector across rounds must
// copy it.
func (c *Client) install(gm *GlobalModel, ct data.ClientTask) {
	global := gm.Params
	c.gate(func() {
		mask := c.strategy.AggregateMask()
		if mask == nil {
			nn.SetFlatParams(c.ctx.Model.Params(), global)
		} else {
			if cap(c.mergedBuf) < len(global) {
				c.mergedBuf = make([]float32, len(global))
			}
			merged := c.mergedBuf[:len(global)]
			copy(merged, c.flatBuf)
			for j, use := range mask {
				if use {
					merged[j] = global[j]
				}
			}
			nn.SetFlatParams(c.ctx.Model.Params(), merged)
		}
		c.strategy.AfterAggregate(c.flatBuf, ct)
	})
	c.baseVersion = gm.Version
}

// runAsync speaks the asynchronous lifecycle: one RoundStart announces a
// task, then the client trains its Rounds rounds back to back — before each
// round it installs the freshest committed global that has arrived (skipping
// the ones it outpaced) without ever blocking — and finally waits for the
// task-final broadcast, installs it, evaluates, and reports RoundEnd. An
// inbox goroutine pumps the receive direction so broadcasts queue while the
// client trains; uploads over loopback are detached copies because the
// lockstep aliasing contract does not hold here.
func (c *Client) runAsync(ctx context.Context, t Transport) error {
	_, wire := t.(*WireTransport)
	return c.asyncLoop(ctx, t, newInbox(t, wire), nil)
}

// asyncLoop drives the asynchronous task sequence. resume, when non-nil, is
// a rejoin catch-up: instead of waiting for a RoundStart, the first task is
// positioned from the Catchup — install the current global (when the server
// sent one), then resume uploading at the round the server's books say is
// next, or jump straight to the task-final evaluation (TaskFinal) or to
// awaiting the next task (TaskDone).
func (c *Client) asyncLoop(ctx context.Context, t Transport, in *inbox, resume *Catchup) error {
	_, wire := t.(*WireTransport)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var taskIdx, startRound int
		var skipToFinal bool
		if cu := resume; cu != nil {
			resume = nil
			taskIdx = cu.TaskIdx
			if taskIdx < 0 || taskIdx >= len(c.seq) {
				return fmt.Errorf("fed: client %d rejoin catch-up names task %d of %d", c.ctx.ID, taskIdx, len(c.seq))
			}
			if taskIdx != c.curTask {
				c.order, c.cur = nil, 0
				c.curTask = taskIdx
			}
			if len(cu.Params) > 0 {
				// The mask-merge install reads flatBuf as the local half; a
				// client that dropped before its first upload has not
				// flattened yet.
				if c.flatBuf == nil {
					c.flatBuf = nn.FlattenParamsInto(c.flatBuf, c.ctx.Model.Params())
				}
				c.install(&GlobalModel{Params: cu.Params, Version: cu.Version}, c.seq[taskIdx])
			} else if cu.Version > c.baseVersion {
				c.baseVersion = cu.Version
			}
			if cu.TaskDone {
				// The seat already finished this task (its report landed
				// before the drop): await the next task — or, when this was
				// the last one, the run is complete and the coming EOF is a
				// clean shutdown.
				if taskIdx == len(c.seq)-1 {
					c.finished = true
				}
				continue
			}
			startRound, skipToFinal = cu.Seen, cu.TaskFinal
		} else {
			msg, err := in.recv()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return err
			}
			rs, ok := msg.(*RoundStart)
			if !ok {
				return fmt.Errorf("fed: client %d got %T, want *RoundStart", c.ctx.ID, msg)
			}
			if rs.TaskIdx < 0 || rs.TaskIdx >= len(c.seq) {
				return fmt.Errorf("fed: client %d got task index %d of %d", c.ctx.ID, rs.TaskIdx, len(c.seq))
			}
			if rs.TaskIdx != c.curTask {
				c.order, c.cur = nil, 0
				c.curTask = rs.TaskIdx
			}
			taskIdx = rs.TaskIdx
		}
		done, err := c.asyncTask(ctx, t, in, taskIdx, startRound, skipToFinal, !wire)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		if c.leaveAfter >= 0 && taskIdx >= c.leaveAfter && !c.finished {
			// Clean retirement: this task's report is delivered; tell the
			// server the seat is done federating and stop as finished, so a
			// surrounding RunReconnect treats this as the clean shutdown it is.
			if err := t.Send(&Leave{ClientID: c.ctx.ID}); err != nil {
				return err
			}
			c.finished = true
			return nil
		}
	}
}

// asyncTask runs one task from startRound: the remaining uploads, the task
// barrier, and the RoundEnd report. skipToFinal short-circuits to the
// report — a rejoin catch-up that already carried the task-final global.
// done is true when the client's run is over (an OOM death report).
func (c *Client) asyncTask(ctx context.Context, t Transport, in *inbox, taskIdx, startRound int, skipToFinal, detach bool) (done bool, err error) {
	ct := c.seq[taskIdx]
	if !skipToFinal {
		for r := startRound; r < c.cfg.Rounds; r++ {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			if gm := in.drainGlobals(); gm != nil {
				c.install(gm, ct)
			}
			if err := c.trainAndUpload(t, ct, detach); err != nil {
				return false, err
			}
		}
		// Task barrier: commits triggered by slower clients may still
		// arrive; only the task-final broadcast closes the task. The final
		// global supersedes the skipped intermediates (a full-vector
		// install), so they are dropped unread.
		var final *GlobalModel
		for final == nil {
			msg, err := in.recv()
			if err != nil {
				if ctx.Err() != nil {
					return false, ctx.Err()
				}
				return false, fmt.Errorf("fed: client %d waiting for task-final global: %w", c.ctx.ID, err)
			}
			gm, ok := msg.(*GlobalModel)
			if !ok {
				return false, fmt.Errorf("fed: client %d got %T, want *GlobalModel", c.ctx.ID, msg)
			}
			if gm.TaskFinal {
				final = gm
			}
		}
		c.install(final, ct)
	}
	re := c.finishTask(ct, taskIdx)
	if err := t.Send(re); err != nil {
		return false, err
	}
	if re.Dead {
		c.finished = true
		return true, nil
	}
	if taskIdx == len(c.seq)-1 {
		c.finished = true
	}
	return false, nil
}

// finishTask runs the task-end hooks: knowledge extraction, the OOM check
// the heterogeneity study exercises, and (for survivors) evaluation on every
// learned task. The TaskEnd hook runs at most once per task — a rejoining
// client whose RoundEnd was lost in flight re-evaluates and re-reports, but
// must not re-extract knowledge.
func (c *Client) finishTask(ct data.ClientTask, taskIdx int) *RoundEnd {
	re := &RoundEnd{ClientID: c.ctx.ID}
	if c.taskEnded < taskIdx {
		c.gate(func() { c.strategy.TaskEnd(ct) })
		c.taskEnded = taskIdx
	}
	if c.cfg.MemScale > 0 {
		used := float64(c.ctx.Model.ParamBytes()*4+c.strategy.MemoryBytes()) * c.cfg.MemScale
		if used > float64(c.dev.MemBytes) {
			re.Dead = true
			return re
		}
	}
	accs := make([]float64, taskIdx+1)
	c.gate(func() {
		for p := 0; p <= taskIdx; p++ {
			accs[p], c.evalIdx = evalClientTask(c.ctx.Model, c.seq[p], c.evalIdx)
		}
	})
	re.EvalAccs = accs
	return re
}

// gate runs fn under the shared compute semaphore when one is installed.
func (c *Client) gate(fn func()) {
	if c.sem != nil {
		c.sem <- struct{}{}
		defer func() { <-c.sem }()
	}
	fn()
}

// nextBatch draws the next batch of a client task, reshuffling each epoch.
// The index slice is client scratch reused every call.
func (c *Client) nextBatch(ct data.ClientTask, batchSize int) (*tensor.Tensor, []int) {
	n := len(ct.Train)
	if batchSize > n {
		batchSize = n
	}
	if cap(c.idxBuf) < batchSize {
		c.idxBuf = make([]int, 0, batchSize)
	}
	idx := c.idxBuf[:0]
	for len(idx) < batchSize {
		if c.cur >= len(c.order) {
			c.order = c.ctx.RNG.Perm(n)
			c.cur = 0
		}
		idx = append(idx, c.order[c.cur])
		c.cur++
	}
	c.idxBuf = idx
	m := c.ctx.Model
	return data.Batch(ct.Train, idx, m.InC, m.InH, m.InW)
}

// EvalClientTask computes task-aware top-1 accuracy of the model on a
// client task's test samples (argmax restricted to the task's classes).
func EvalClientTask(m *model.Model, ct data.ClientTask) float64 {
	acc, _ := evalClientTask(m, ct, nil)
	return acc
}

// evalClientTask is EvalClientTask with a reusable index scratch slice; it
// returns the (possibly grown) scratch so callers can thread it through.
func evalClientTask(m *model.Model, ct data.ClientTask, idxScratch []int) (float64, []int) {
	if len(ct.Test) == 0 {
		return 0, idxScratch
	}
	const evalBatch = 32
	if cap(idxScratch) < evalBatch {
		idxScratch = make([]int, evalBatch)
	}
	correct := 0
	for start := 0; start < len(ct.Test); start += evalBatch {
		end := start + evalBatch
		if end > len(ct.Test) {
			end = len(ct.Test)
		}
		idx := idxScratch[:end-start]
		for i := range idx {
			idx[i] = start + i
		}
		x, labels := data.Batch(ct.Test, idx, m.InC, m.InH, m.InW)
		logits := m.Forward(x, false)
		for i := range idx {
			if logits.ArgMaxRow(i, ct.Classes) == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(ct.Test)), idxScratch
}
