package fed

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/tensor"
)

// benchVector builds an n-length dense parameter vector and its ρ-masked
// sparse counterpart (the shape of a pruned-knowledge update).
func benchVector(n int, rho float64) ([]float32, *tensor.SparseVec) {
	rng := tensor.NewRNG(77)
	w := make([]float32, n)
	rng.FillNorm(w, 0.05)
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = rng.Float64() < rho
	}
	return w, tensor.GatherMask(nil, w, mask)
}

const benchN = 1 << 18 // 262144 parameters ≈ the paper's 6-layer CNN

func benchUpdate(dense bool) *Update {
	w, sv := benchVector(benchN, 0.10)
	u := &Update{ClientID: 0, Participating: true, Weight: 100}
	if dense {
		u.Params = w
	} else {
		u.Sparse = sv
	}
	return u
}

func benchEncode(b *testing.B, u *Update, comp Compression) {
	c := NewCodec(comp)
	var bytesPerOp int64
	var counter bytes.Buffer
	if err := c.Encode(&counter, u); err != nil {
		b.Fatal(err)
	}
	bytesPerOp = int64(counter.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(io.Discard, u); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(bytesPerOp), "wire-bytes/op")
}

func BenchmarkEncodeDense(b *testing.B) {
	benchEncode(b, benchUpdate(true), Compression{})
}

func BenchmarkEncodeSparse10(b *testing.B) {
	benchEncode(b, benchUpdate(false), Compression{})
}

func BenchmarkEncodeSparse10F16(b *testing.B) {
	benchEncode(b, benchUpdate(false), Compression{Quant: QuantF16})
}

func BenchmarkEncodeDenseI8(b *testing.B) {
	benchEncode(b, benchUpdate(true), Compression{Quant: QuantI8})
}

func benchDecode(b *testing.B, u *Update, comp Compression) {
	var buf bytes.Buffer
	if err := NewCodec(comp).Encode(&buf, u); err != nil {
		b.Fatal(err)
	}
	frame := buf.Bytes()
	c := NewCodec(Compression{})
	r := bytes.NewReader(frame)
	if _, err := c.Decode(r); err != nil { // warm the decode scratch
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		if _, err := c.Decode(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeDense(b *testing.B) {
	benchDecode(b, benchUpdate(true), Compression{})
}

func BenchmarkDecodeSparse10(b *testing.B) {
	benchDecode(b, benchUpdate(false), Compression{})
}

func benchAggregate(b *testing.B, agg Aggregator, dense bool, clients int) {
	var ups []*Update
	w, _ := benchVector(benchN, 0.10)
	rng := tensor.NewRNG(99)
	mask := make([]bool, benchN)
	for i := range mask {
		mask[i] = rng.Float64() < 0.10
	}
	for c := 0; c < clients; c++ {
		u := &Update{ClientID: c, Participating: true, Weight: float64(50 + c)}
		if dense {
			u.Params = w
		} else {
			u.Sparse = tensor.GatherMask(nil, w, mask)
		}
		ups = append(ups, u)
	}
	agg.Aggregate(ups) // warm the scratch (both vectors for SparseFedAvg)
	agg.Aggregate(ups)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Aggregate(ups)
	}
}

func BenchmarkAggregateWeightedDense(b *testing.B) {
	benchAggregate(b, &WeightedFedAvg{}, true, 8)
}

func BenchmarkAggregateSparseFedAvgDense(b *testing.B) {
	benchAggregate(b, &SparseFedAvg{}, true, 8)
}

func BenchmarkAggregateSparseFedAvgSparse10(b *testing.B) {
	benchAggregate(b, &SparseFedAvg{}, false, 8)
}

// BenchmarkRoundTripBytes reports the end-to-end bytes for one aggregation
// round (8 uploads + 8 broadcasts) under each codec — the bytes-per-round
// trajectory number.
func BenchmarkRoundTripBytes(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		comp  Compression
		dense bool
	}{
		{"dense-f32", Compression{DisableSparse: true}, true},
		{"sparse-f32", Compression{}, false},
		{"sparse-f16", Compression{Quant: QuantF16}, false},
		{"dense-i8", Compression{Quant: QuantI8, DisableSparse: true}, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			u := benchUpdate(cfg.dense)
			// The broadcast is the aggregate of the round's updates: dense
			// in → dense out, ρ-sparse in → union-sparse out (and the codec's
			// auto-sparse form then covers the down-link too).
			global := append([]float32(nil), (&SparseFedAvg{}).Aggregate([]*Update{u})...)
			c := NewCodec(cfg.comp)
			var round int64
			var buf bytes.Buffer
			for k := 0; k < 8; k++ {
				buf.Reset()
				c.Encode(&buf, u)
				round += int64(buf.Len())
				buf.Reset()
				c.Encode(&buf, &GlobalModel{Params: global})
				round += int64(buf.Len())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Encode(io.Discard, u)
			}
			b.ReportMetric(float64(round), "bytes/round")
		})
	}
}

func ExampleCompression() {
	var buf bytes.Buffer
	u := &Update{Participating: true, Weight: 1,
		Sparse: &tensor.SparseVec{N: 1 << 20, Indices: []int32{5}, Values: []float32{1}}}
	NewCodec(Compression{}).Encode(&buf, u)
	fmt.Println(buf.Len() < 64)
	// Output: true
}
