package fed

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/tensor"
)

// TestAsyncMatchesSyncAccountingAtCohortK pins the boundary of the
// asynchronous policy: with K = cohort size, no stragglers (a uniform
// cluster) and no staleness rejections, every commit folds exactly one
// cohort round, so the per-commit participant counts and the task-level
// accounting (simulated clock, communication time, traffic) must reproduce
// the synchronous scheduler's books exactly.
func TestAsyncMatchesSyncAccountingAtCohortK(t *testing.T) {
	uniform := device.Uniform(3, device.Device{Name: "uni", FLOPS: 1e9, MemBytes: 1 << 40})
	run := func(sched string) (*Result, []RoundStats) {
		cfg, _, seqs, build := tinySetup(31)
		cfg.Scheduler = sched
		if sched == SchedulerAsync {
			cfg.Async = AsyncConfig{CommitEvery: 3, StalenessAlpha: 0.5}
		}
		e := NewEngine(cfg, uniform, seqs, build, func(ctx *ClientCtx) Strategy {
			return &passthrough{ctx: ctx}
		})
		var rounds []RoundStats
		e.SetObserver(ObserverFuncs{Round: func(s RoundStats) { rounds = append(rounds, s) }})
		res := e.Run()
		return res, rounds
	}
	syncRes, syncRounds := run(SchedulerSync)
	asyncRes, asyncRounds := run(SchedulerAsync)
	if len(asyncRounds) != len(syncRounds) {
		t.Fatalf("async made %d commits, sync made %d rounds", len(asyncRounds), len(syncRounds))
	}
	for i, s := range asyncRounds {
		if s.Participants != 3 {
			t.Fatalf("commit %d folded %d updates, want the full cohort of 3", i, s.Participants)
		}
		if s.Stale != 0 {
			t.Fatalf("commit %d rejected %d updates with no bound set", i, s.Stale)
		}
		if s.UpBytes != syncRounds[i].UpBytes || s.DownBytes != syncRounds[i].DownBytes {
			t.Fatalf("commit %d traffic %d/%d, sync round had %d/%d",
				i, s.UpBytes, s.DownBytes, syncRounds[i].UpBytes, syncRounds[i].DownBytes)
		}
	}
	for i := range syncRes.PerTask {
		s, a := syncRes.PerTask[i], asyncRes.PerTask[i]
		if a.SimHours != s.SimHours || a.CommHours != s.CommHours {
			t.Fatalf("task %d clock: async %v/%v, sync %v/%v", i, a.SimHours, a.CommHours, s.SimHours, s.CommHours)
		}
		if a.UpBytes != s.UpBytes || a.DownBytes != s.DownBytes {
			t.Fatalf("task %d traffic: async %d/%d, sync %d/%d", i, a.UpBytes, a.DownBytes, s.UpBytes, s.DownBytes)
		}
	}
	if asyncRes.PerTask[0].AvgAccuracy <= 0.2 {
		t.Fatalf("async run learned nothing: %v", asyncRes.PerTask[0].AvgAccuracy)
	}
}

// TestAsyncStalenessBoundAndVersionMonotonicity drives the asynchronous
// scheduler with scripted peers: K = 1 so every accepted update commits.
// Updates whose staleness exceeds -max-staleness must be rejected (never
// folded — the committed values prove it), versions must increase by
// exactly one per commit, and the task-final broadcast must re-announce the
// last committed version.
func TestAsyncStalenessBoundAndVersionMonotonicity(t *testing.T) {
	s0, c0 := LoopbackCap(64)
	s1, c1 := LoopbackCap(64)
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 3, Scheduler: SchedulerAsync,
		Async: AsyncConfig{CommitEvery: 1, MaxStaleness: 1, StalenessAlpha: 1},
		Logf:  t.Logf,
	}, nil, []Transport{s0, s1})
	var rounds []RoundStats
	srv.SetObserver(ObserverFuncs{Round: func(s RoundStats) { rounds = append(rounds, s) }})
	done := make(chan *Result, 1)
	go func() {
		res, err := srv.Run(context.Background())
		if err != nil {
			t.Errorf("server: %v", err)
		}
		done <- res
	}()

	recvRS := func(end Transport) {
		t.Helper()
		msg, err := end.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := msg.(*RoundStart); !ok {
			t.Fatalf("got %T, want *RoundStart", msg)
		}
	}
	recvGM := func(end Transport) *GlobalModel {
		t.Helper()
		msg, err := end.Recv()
		if err != nil {
			t.Fatal(err)
		}
		gm, ok := msg.(*GlobalModel)
		if !ok {
			t.Fatalf("got %T, want *GlobalModel", msg)
		}
		return gm
	}
	send := func(end Transport, id int, base uint64, v float32) {
		t.Helper()
		if err := end.Send(&Update{ClientID: id, Participating: true, Weight: 1,
			BaseVersion: base, Params: []float32{v}}); err != nil {
			t.Fatal(err)
		}
	}

	recvRS(c0)
	recvRS(c1)
	var versions []uint64
	var values []float32
	step := func(base uint64, v float32) {
		send(c0, 0, base, v)
		g0, g1 := recvGM(c0), recvGM(c1)
		if g0.Version != g1.Version {
			t.Fatalf("broadcast versions diverge: %d vs %d", g0.Version, g1.Version)
		}
		versions = append(versions, g0.Version)
		values = append(values, g0.Params[0])
	}
	step(0, 2) // fresh → commit v1 = [2]
	step(1, 4) // fresh → commit v2 = [4]
	// c1 trained from v0; by now the version is ≥ 2, staleness ≥ 2 > bound 1
	// → rejected: no commit, no broadcast, and 8 never reaches the global.
	send(c1, 1, 0, 8)
	step(2, 6)         // c0 again fresh → commit v3 = [6]
	send(c1, 1, 1, 10) // staleness 2 → rejected
	send(c1, 1, 3, 12) // fresh against v3 → commit v4 = [12]
	g0, g1 := recvGM(c0), recvGM(c1)
	versions = append(versions, g0.Version)
	values = append(values, g0.Params[0])
	if g1.Version != g0.Version {
		t.Fatalf("final commit versions diverge: %d vs %d", g0.Version, g1.Version)
	}
	// All six uploads are in: the server flushes (empty) and closes the task.
	f0, f1 := recvGM(c0), recvGM(c1)
	if !f0.TaskFinal || !f1.TaskFinal {
		t.Fatalf("task-final flags: %v, %v", f0.TaskFinal, f1.TaskFinal)
	}
	if f0.Version != 4 || f0.Params[0] != 12 {
		t.Fatalf("task-final global v%d = %v, want v4 = [12]", f0.Version, f0.Params)
	}
	c0.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.7}})
	c1.Send(&RoundEnd{ClientID: 1, EvalAccs: []float64{0.9}})

	res := <-done
	wantVals := []float32{2, 4, 6, 12}
	for i, v := range values {
		if versions[i] != uint64(i+1) {
			t.Fatalf("commit %d has version %d, want %d (monotone +1)", i, versions[i], i+1)
		}
		if v != wantVals[i] {
			t.Fatalf("commit %d global = %v, want %v (stale values must not fold)", i, v, wantVals[i])
		}
	}
	accepted, stale := 0, 0
	for _, r := range rounds {
		accepted += r.Participants
		stale += r.Stale
	}
	if accepted != 4 || stale != 2 {
		t.Fatalf("accepted %d / stale %d, want 4 / 2", accepted, stale)
	}
	if got := res.Matrix.Get(0, 0); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("matrix row %v, want the survivors' mean 0.8", got)
	}
}

// TestAsyncStalenessWeight checks the α-deweighting arithmetic: with K = 2
// a commit mixing a fresh update and a staleness-1 update must weight the
// stale one by 1/(1+1)^α.
func TestAsyncStalenessWeight(t *testing.T) {
	s0, c0 := LoopbackCap(64)
	s1, c1 := LoopbackCap(64)
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 2, Scheduler: SchedulerAsync,
		Async: AsyncConfig{CommitEvery: 2, StalenessAlpha: 1},
		Logf:  t.Logf,
	}, nil, []Transport{s0, s1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := srv.Run(context.Background()); err != nil {
			t.Errorf("server: %v", err)
		}
	}()
	recv := func(end Transport) *GlobalModel {
		t.Helper()
		msg, err := end.Recv()
		if err != nil {
			t.Fatal(err)
		}
		gm, _ := msg.(*GlobalModel)
		return gm
	}
	for _, end := range []Transport{c0, c1} {
		if _, err := end.Recv(); err != nil { // RoundStart
			t.Fatal(err)
		}
	}
	c0.Send(&Update{ClientID: 0, Participating: true, Weight: 1, BaseVersion: 0, Params: []float32{2}})
	c1.Send(&Update{ClientID: 1, Participating: true, Weight: 1, BaseVersion: 0, Params: []float32{6}})
	if gm := recv(c0); gm.Version != 1 || gm.Params[0] != 4 {
		t.Fatalf("commit 1: v%d %v, want v1 [4]", gm.Version, gm.Params)
	}
	recv(c1)
	// Round 2: c0 is fresh (base 1), c1 still trains from v0 → staleness 1,
	// weight 1/(1+1)^1 = 0.5: global = (10 + 0.5·20) / 1.5.
	c0.Send(&Update{ClientID: 0, Participating: true, Weight: 1, BaseVersion: 1, Params: []float32{10}})
	c1.Send(&Update{ClientID: 1, Participating: true, Weight: 1, BaseVersion: 0, Params: []float32{20}})
	want := float64(20) / 1.5
	if gm := recv(c0); gm.Version != 2 || math.Abs(float64(gm.Params[0])-want) > 1e-5 {
		t.Fatalf("commit 2: v%d %v, want v2 [%v]", gm.Version, gm.Params, want)
	}
	recv(c1)
	for i, end := range []Transport{c0, c1} {
		if gm := recv(end); !gm.TaskFinal {
			t.Fatal("missing task-final broadcast")
		}
		end.Send(&RoundEnd{ClientID: i, EvalAccs: []float64{0.5}})
	}
	<-done
}

// TestEngineAsyncRunsAndLearns is the asynchronous end-to-end smoke test
// over loopback: real clients, real concurrency, default K. The run must
// complete every task, learn (first-task accuracy over chance), and commit
// with monotonically increasing versions.
func TestEngineAsyncRunsAndLearns(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(32)
	cfg.Scheduler = SchedulerAsync
	cfg.Async = AsyncConfig{MaxStaleness: 6, StalenessAlpha: 0.5}
	e := NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
		return &passthrough{ctx: ctx}
	})
	var lastVersion uint64
	e.SetObserver(ObserverFuncs{Round: func(s RoundStats) {
		// Every real commit bumps the version by one; a task's closing
		// stale-tail report (Participants 0) repeats it.
		if s.Participants > 0 && s.Version != lastVersion+1 {
			t.Errorf("commit version %d after %d: not monotone", s.Version, lastVersion)
		}
		if s.Participants == 0 && s.Version != lastVersion {
			t.Errorf("zero-participant report changed the version: %d after %d", s.Version, lastVersion)
		}
		lastVersion = s.Version
	}})
	res := e.Run()
	if len(res.PerTask) != 3 {
		t.Fatalf("%d task points, want 3", len(res.PerTask))
	}
	// Async results vary with arrival order; the bar is "clearly above the
	// untrained floor", not a fixed curve (sync's reproducible bar is 0.55).
	if acc := res.Matrix.Get(0, 0); acc < 0.3 {
		t.Fatalf("first-task accuracy %v under async scheduling", acc)
	}
	if lastVersion == 0 {
		t.Fatal("no commits observed")
	}
}

// TestAsyncEvictionAfterRoundEnd pins the finish-phase bookkeeping: a
// client whose connection drops *after* it already delivered a healthy
// RoundEnd completed the task — the eviction must not be double-counted
// against the pending-report tally, or the server stops listening before
// the slower survivor reports and the leftover RoundEnd poisons the next
// task as a protocol error.
func TestAsyncEvictionAfterRoundEnd(t *testing.T) {
	s0, c0 := LoopbackCap(64)
	s1, c1 := LoopbackCap(64)
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 2, Rounds: 1, Scheduler: SchedulerAsync,
		Async: AsyncConfig{CommitEvery: 1},
		Logf:  t.Logf,
	}, nil, []Transport{s0, s1})
	done := make(chan error, 1)
	var res *Result
	go func() {
		var err error
		res, err = srv.Run(context.Background())
		done <- err
	}()
	recvUntilFinal := func(end Transport) {
		t.Helper()
		for {
			msg, err := end.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if gm, ok := msg.(*GlobalModel); ok && gm.TaskFinal {
				return
			}
		}
	}
	startTask := func(end Transport, id int) {
		t.Helper()
		msg, err := end.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := msg.(*RoundStart); !ok {
			t.Fatalf("client %d got %T, want *RoundStart", id, msg)
		}
		end.Send(&Update{ClientID: id, Participating: true, Weight: 1, Params: []float32{1}})
	}
	// The task-final broadcast needs every upload in, so upload from both
	// before draining either end.
	startTask(c0, 0)
	startTask(c1, 1)
	recvUntilFinal(c0)
	recvUntilFinal(c1)
	// Client 0 reports healthily, then its link drops; the straggler's
	// report comes in afterwards and must still be collected.
	c0.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.7}})
	c0.Close()
	time.Sleep(50 * time.Millisecond)
	c1.Send(&RoundEnd{ClientID: 1, EvalAccs: []float64{0.9}})
	// Task 1 runs with the lone survivor.
	startTask(c1, 1)
	recvUntilFinal(c1)
	c1.Send(&RoundEnd{ClientID: 1, EvalAccs: []float64{0.8, 0.6}})
	if err := <-done; err != nil {
		t.Fatalf("run must survive a post-report connection drop: %v", err)
	}
	if len(res.PerTask) != 2 {
		t.Fatalf("%d task points, want 2", len(res.PerTask))
	}
	if _, ok := res.DeadAfter[0]; !ok {
		t.Fatalf("client 0's dropped link not recorded: %v", res.DeadAfter)
	}
	if got := res.Matrix.Get(0, 0); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("task 0 row %v, want both reports averaged (0.8)", got)
	}
	if got := res.Matrix.Get(1, 1); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("task 1 row %v, want the survivor's 0.6", got)
	}
}

// TestAsyncWireEviction pins the transport-hardening contract: a TCP
// connection dropped mid-run costs that client, not the job. Client 1
// vanishes after its first upload of task 0; the server must evict it, keep
// scheduling client 0 through every remaining task, and record the loss.
func TestAsyncWireEviction(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(33)
	cfg.Scheduler = SchedulerAsync
	cfg.Async = AsyncConfig{CommitEvery: 1}
	seqs = seqs[:2]
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // client 0: a real endpoint that lives the whole run
		defer wg.Done()
		tr, err := Dial(addr, 0, cfg.Fingerprint())
		if err != nil {
			t.Error(err)
			return
		}
		c := NewWireClient(cfg, 0, len(seqs), cluster.Devices[0], seqs[0], build,
			func(ctx *ClientCtx) Strategy { return &passthrough{ctx: ctx} })
		if err := c.Run(context.Background(), tr); err != nil {
			t.Errorf("surviving client: %v", err)
		}
	}()
	go func() { // client 1: uploads once, then the connection drops
		defer wg.Done()
		tr, err := Dial(addr, 1, cfg.Fingerprint())
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := tr.Recv(); err != nil { // RoundStart
			t.Error(err)
			return
		}
		tr.Send(&Update{ClientID: 1, Participating: true, Weight: 1,
			Params: make([]float32, build(tensor.NewRNG(1)).NumParams())})
		tr.Close()
	}()
	links, err := Serve(ln, len(seqs), cfg.Fingerprint())
	ln.Close()
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	srv := NewServer(cfg.ServerConfigFor(len(seqs), len(seqs[0])), nil, links)
	srv.cfg.Logf = t.Logf
	res, err := srv.Run(context.Background())
	if err != nil {
		t.Fatalf("server must survive a dropped client: %v", err)
	}
	wg.Wait()
	if task, ok := res.DeadAfter[1]; !ok || task != 0 {
		t.Fatalf("DeadAfter = %v, want client 1 lost at task 0", res.DeadAfter)
	}
	if len(res.PerTask) != 3 {
		t.Fatalf("%d task points, want all 3 despite the eviction", len(res.PerTask))
	}
	if srv.AliveClients() != 1 {
		t.Fatalf("%d alive clients, want 1 survivor", srv.AliveClients())
	}
}

// TestAsyncLoopbackCapBounded pins the satellite contract on
// Async.LoopbackCap: a deliberately tiny per-link buffer must not deadlock
// the engine — the client inbox pump keeps draining commits into its
// unbounded queue, so a blocking commit broadcast resolves within one pump
// iteration no matter how small the channel is. CommitEvery=1 maximises
// commit broadcasts per upload, the worst case for a small buffer. The
// commit COUNT and total participation are policy-determined (every upload
// folds and commits; no staleness bound means no rejections), so those
// books must match a default-cap run exactly even though upload arrival
// ORDER — and therefore the folded weights — varies with goroutine
// scheduling in the loopback engine.
func TestAsyncLoopbackCapBounded(t *testing.T) {
	run := func(cap int) (*Result, []RoundStats) {
		cfg, cluster, seqs, build := tinySetup(47)
		cfg.Scheduler = SchedulerAsync
		cfg.Async = AsyncConfig{CommitEvery: 1, LoopbackCap: cap}
		e := NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
			return &passthrough{ctx: ctx}
		})
		var rounds []RoundStats
		e.SetObserver(ObserverFuncs{Round: func(s RoundStats) { rounds = append(rounds, s) }})
		done := make(chan *Result, 1)
		go func() { done <- e.Run() }()
		select {
		case res := <-done:
			return res, rounds
		case <-time.After(2 * time.Minute):
			t.Fatalf("engine with LoopbackCap=%d did not finish: a bounded buffer must not deadlock delivery", cap)
			return nil, nil
		}
	}
	capped, cappedRounds := run(2) // far smaller than one task's commit count
	dflt, dfltRounds := run(0)
	if len(cappedRounds) != len(dfltRounds) {
		t.Fatalf("capped run made %d commits, default made %d", len(cappedRounds), len(dfltRounds))
	}
	for i, c := range cappedRounds {
		if c.Participants != 1 || c.Stale != 0 {
			t.Fatalf("commit %d folded %d updates with %d rejections, want 1 and 0 at K=1 with no staleness bound",
				i, c.Participants, c.Stale)
		}
	}
	if len(capped.PerTask) != len(dflt.PerTask) {
		t.Fatalf("capped run finished %d tasks, default %d", len(capped.PerTask), len(dflt.PerTask))
	}
	for i := range dflt.PerTask {
		c, d := capped.PerTask[i], dflt.PerTask[i]
		if c.UpBytes != d.UpBytes || c.DownBytes != d.DownBytes {
			t.Fatalf("task %d traffic: capped %d/%d, default %d/%d — the cap must not change what is delivered",
				i, c.UpBytes, c.DownBytes, d.UpBytes, d.DownBytes)
		}
	}
	if capped.PerTask[0].AvgAccuracy <= 0.2 {
		t.Fatalf("capped run learned nothing: %v", capped.PerTask[0].AvgAccuracy)
	}
}
