package fed

import (
	"context"
	"fmt"

	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Aggregator combines one round's participating client updates into the
// global flat parameter vector. Implementations receive updates ordered by
// client ID (the order that makes floating-point aggregation reproducible)
// and may return a slice aliasing internal scratch: the server guarantees
// the result is consumed before the next Aggregate call.
type Aggregator interface {
	// Name identifies the aggregation rule in reports.
	Name() string
	// Aggregate reduces the updates to a global vector, or nil when the
	// round had no participants.
	Aggregate(updates []*Update) []float32
}

// WeightedFedAvg is §III-A's aggregation rule: the sample-count-weighted
// average of the participants' parameter vectors. A zero weight counts as
// one so an empty-shard client still participates. The accumulation order
// (ascending client ID, Axpy then one scale) is part of the contract — it
// is what keeps results bitwise reproducible across transports and
// parallelism settings.
type WeightedFedAvg struct {
	buf []float32 // global scratch, reused every round
}

// Name identifies the aggregation rule.
func (a *WeightedFedAvg) Name() string { return "WeightedFedAvg" }

// Aggregate computes the weighted average into reused scratch.
func (a *WeightedFedAvg) Aggregate(updates []*Update) []float32 {
	var total float64
	var global []float32
	for _, u := range updates {
		w := u.Weight
		if w == 0 {
			w = 1
		}
		total += w
		if global == nil {
			if cap(a.buf) < len(u.Params) {
				a.buf = make([]float32, len(u.Params))
			}
			global = a.buf[:len(u.Params)]
			clear(global)
		}
		tensor.AxpySlice(global, float32(w), u.Params)
	}
	if global == nil {
		return nil
	}
	inv := float32(1 / total)
	for i := range global {
		global[i] *= inv
	}
	return global
}

// RoundStats is the server-side accounting of one finished aggregation
// round, streamed to the RoundObserver.
type RoundStats struct {
	TaskIdx      int
	Round        int
	Participants int
	// ComputeSeconds / CommSeconds are this round's simulated times (the
	// slowest participant bounds a synchronous round).
	ComputeSeconds float64
	CommSeconds    float64
	// UpBytes / DownBytes are this round's traffic across participants.
	UpBytes   int64
	DownBytes int64
}

// RoundObserver receives the run's progress as it happens, so CLIs,
// experiments and dashboards can stream results instead of waiting for the
// final Result. Callbacks run on the server goroutine; implementations
// should return quickly.
type RoundObserver interface {
	// RoundDone fires after every aggregation round.
	RoundDone(RoundStats)
	// TaskDone fires after every task with the same TaskPoint that is
	// appended to Result.PerTask.
	TaskDone(TaskPoint)
}

// ObserverFuncs adapts plain functions to RoundObserver; nil fields are
// no-ops.
type ObserverFuncs struct {
	Round func(RoundStats)
	Task  func(TaskPoint)
}

// RoundDone forwards to Round when set.
func (o ObserverFuncs) RoundDone(s RoundStats) {
	if o.Round != nil {
		o.Round(s)
	}
}

// TaskDone forwards to Task when set.
func (o ObserverFuncs) TaskDone(tp TaskPoint) {
	if o.Task != nil {
		o.Task(tp)
	}
}

// ServerConfig drives the round scheduler. Unlike Config it carries nothing
// about local training — the server never sees data, models or strategies,
// only parameter vectors and accounting, which is what lets one server drive
// loopback goroutines and remote TCP clients identically.
type ServerConfig struct {
	Method      string
	NumClients  int
	NumTasks    int
	Rounds      int     // aggregation rounds per task (r)
	Bandwidth   float64 // bytes/second per client link
	DropoutProb float64 // per-round, per-client offline probability
	Seed        uint64
}

// Server is the protocol's round scheduler: it opens rounds, collects
// updates, delegates to the Aggregator, broadcasts the global model, and
// keeps the books (simulated clock, traffic, accuracy matrix, evictions).
type Server struct {
	cfg     ServerConfig
	agg     Aggregator
	links   []Transport // index = client ID
	alive   []bool
	offline []bool
	dropRNG *tensor.RNG
	obs     RoundObserver

	simSeconds  float64
	commSeconds float64
	upBytes     int64
	downBytes   int64

	updates []*Update   // per-round scratch
	rows    [][]float64 // per-task eval scratch
}

// NewServer builds a server over one transport per client. The aggregator
// defaults to WeightedFedAvg when nil.
func NewServer(cfg ServerConfig, agg Aggregator, links []Transport) *Server {
	if cfg.NumClients == 0 {
		cfg.NumClients = len(links)
	}
	if len(links) != cfg.NumClients {
		panic(fmt.Sprintf("fed: %d transports for %d clients", len(links), cfg.NumClients))
	}
	if agg == nil {
		agg = &WeightedFedAvg{}
	}
	s := &Server{
		cfg:     cfg,
		agg:     agg,
		links:   links,
		alive:   make([]bool, cfg.NumClients),
		offline: make([]bool, cfg.NumClients),
		dropRNG: tensor.NewRNG(cfg.Seed ^ 0xD209),
		rows:    make([][]float64, cfg.NumClients),
	}
	for i := range s.alive {
		s.alive[i] = true
	}
	return s
}

// SetObserver installs the streaming hook; call before Run.
func (s *Server) SetObserver(o RoundObserver) { s.obs = o }

// AliveClients reports how many clients have not been evicted.
func (s *Server) AliveClients() int {
	n := 0
	for _, a := range s.alive {
		if a {
			n++
		}
	}
	return n
}

// Run executes the full task sequence and returns the result. Cancelling ctx
// aborts between protocol steps: the partial Result gathered so far is
// returned together with the context's error, and all transports are closed
// so client loops terminate. Run closes the transports on every path and
// must only be called once.
func (s *Server) Run(ctx context.Context) (*Result, error) {
	defer s.closeAll()
	res := &Result{
		Method:    s.cfg.Method,
		Matrix:    metrics.NewMatrix(s.cfg.NumTasks),
		DeadAfter: map[int]int{},
	}
	for taskIdx := 0; taskIdx < s.cfg.NumTasks; taskIdx++ {
		if err := s.runTask(ctx, taskIdx, res); err != nil {
			return res, err
		}
		tp := TaskPoint{
			TaskIdx:        taskIdx,
			AvgAccuracy:    res.Matrix.AvgAccuracy(taskIdx),
			ForgettingRate: res.Matrix.ForgettingRate(taskIdx),
			SimHours:       s.simSeconds / 3600,
			CommHours:      s.commSeconds / 3600,
			UpBytes:        s.upBytes,
			DownBytes:      s.downBytes,
		}
		res.PerTask = append(res.PerTask, tp)
		if s.obs != nil {
			s.obs.TaskDone(tp)
		}
	}
	return res, nil
}

// runTask schedules the r aggregation rounds of one task.
func (s *Server) runTask(ctx context.Context, taskIdx int, res *Result) error {
	for round := 0; round < s.cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		taskDone := round == s.cfg.Rounds-1
		// Failure injection: each client may drop out of this round. The
		// draw order (ascending client ID, no draw for dead clients) is part
		// of the reproducibility contract.
		anyOnline := false
		for i := range s.links {
			s.offline[i] = s.alive[i] && s.cfg.DropoutProb > 0 && s.dropRNG.Float64() < s.cfg.DropoutProb
			if s.alive[i] && !s.offline[i] {
				anyOnline = true
			}
		}
		if !anyOnline {
			// Keep the protocol alive: at least one participant per round.
			for i := range s.links {
				if s.alive[i] {
					s.offline[i] = false
					break
				}
			}
		}
		for i, t := range s.links {
			if !s.alive[i] {
				continue
			}
			rs := &RoundStart{TaskIdx: taskIdx, Round: round, Participate: !s.offline[i], TaskDone: taskDone}
			if err := t.Send(rs); err != nil {
				return s.runErr(ctx, fmt.Errorf("fed: round start to client %d: %w", i, err))
			}
		}
		// Collect every alive client's update (dropped-out clients send an
		// empty acknowledgement). Ascending client ID keeps aggregation
		// order deterministic.
		s.updates = s.updates[:0]
		for i, t := range s.links {
			if !s.alive[i] {
				continue
			}
			msg, err := t.Recv()
			if err != nil {
				return s.runErr(ctx, fmt.Errorf("fed: update from client %d: %w", i, err))
			}
			u, ok := msg.(*Update)
			if !ok {
				return fmt.Errorf("fed: client %d sent %T, want *Update", i, msg)
			}
			// The ID routes the GlobalModel broadcast, so a wire client must
			// not be able to impersonate (or index-out-of-range) another link.
			if u.ClientID != i {
				return fmt.Errorf("fed: link %d sent update claiming client %d", i, u.ClientID)
			}
			if u.Participating {
				// Mismatched vector lengths (a client with a different
				// model, slipping past the fingerprint check) must fail as
				// a protocol error, not panic inside the aggregator.
				if len(s.updates) > 0 && len(u.Params) != len(s.updates[0].Params) {
					return fmt.Errorf("fed: client %d sent %d parameters, others sent %d",
						i, len(u.Params), len(s.updates[0].Params))
				}
				s.updates = append(s.updates, u)
			}
		}
		// Time accounting: synchronous rounds bound by the slowest client.
		var worstCompute, worstComm float64
		var roundUp, roundDown int64
		for _, u := range s.updates {
			if u.ComputeSeconds > worstCompute {
				worstCompute = u.ComputeSeconds
			}
			if t := device.CommTime(u.UpBytes+u.DownBytes, s.cfg.Bandwidth); t > worstComm {
				worstComm = t
			}
			roundUp += u.UpBytes
			roundDown += u.DownBytes
		}
		s.simSeconds += worstCompute + worstComm
		s.commSeconds += worstComm
		s.upBytes += roundUp
		s.downBytes += roundDown

		// Aggregate and broadcast to the round's participants. The global
		// slice may alias aggregator scratch; every participant acknowledges
		// (next Update or RoundEnd) before the next Aggregate call rewrites
		// it, so sharing is safe even over the zero-copy loopback.
		if global := s.agg.Aggregate(s.updates); global != nil {
			gm := &GlobalModel{Params: global}
			for _, u := range s.updates {
				if err := s.links[u.ClientID].Send(gm); err != nil {
					return s.runErr(ctx, fmt.Errorf("fed: global model to client %d: %w", u.ClientID, err))
				}
			}
		}
		if s.obs != nil {
			s.obs.RoundDone(RoundStats{
				TaskIdx: taskIdx, Round: round, Participants: len(s.updates),
				ComputeSeconds: worstCompute, CommSeconds: worstComm,
				UpBytes: roundUp, DownBytes: roundDown,
			})
		}
		if taskDone {
			if err := s.collectRoundEnds(ctx, taskIdx, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// runErr reports a transport failure, preferring the context's error: when
// the run was cancelled, client endpoints close their transports and the
// resulting EOFs are an effect of the cancel, not a protocol failure.
func (s *Server) runErr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}

// collectRoundEnds gathers every alive client's task report: eviction flags
// first, then the accuracy-matrix row averaged over the survivors.
func (s *Server) collectRoundEnds(ctx context.Context, taskIdx int, res *Result) error {
	for i := range s.rows {
		s.rows[i] = nil
	}
	for i, t := range s.links {
		if !s.alive[i] {
			continue
		}
		msg, err := t.Recv()
		if err != nil {
			return s.runErr(ctx, fmt.Errorf("fed: round end from client %d: %w", i, err))
		}
		re, ok := msg.(*RoundEnd)
		if !ok {
			return fmt.Errorf("fed: client %d sent %T, want *RoundEnd", i, msg)
		}
		if re.ClientID != i {
			return fmt.Errorf("fed: link %d sent round end claiming client %d", i, re.ClientID)
		}
		if re.Dead {
			s.alive[i] = false
			res.DeadAfter[i] = taskIdx
			continue
		}
		if len(re.EvalAccs) != taskIdx+1 {
			return fmt.Errorf("fed: client %d reported %d accuracies after task %d", i, len(re.EvalAccs), taskIdx)
		}
		s.rows[i] = re.EvalAccs
	}
	for p := 0; p <= taskIdx; p++ {
		var sum float64
		n := 0
		for _, accs := range s.rows {
			if accs != nil {
				sum += accs[p]
				n++
			}
		}
		if n > 0 {
			res.Matrix.Set(taskIdx, p, sum/float64(n))
		}
	}
	return nil
}

func (s *Server) closeAll() {
	for _, t := range s.links {
		t.Close()
	}
}
