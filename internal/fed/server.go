package fed

import (
	"context"
	"fmt"

	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// RoundStats is the server-side accounting of one finished aggregation
// round, streamed to the RoundObserver.
type RoundStats struct {
	TaskIdx      int
	Round        int
	Participants int
	// ComputeSeconds / CommSeconds are this round's simulated times (the
	// slowest participant bounds a synchronous round).
	ComputeSeconds float64
	CommSeconds    float64
	// UpBytes / DownBytes are this round's traffic across participants.
	UpBytes   int64
	DownBytes int64
}

// RoundObserver receives the run's progress as it happens, so CLIs,
// experiments and dashboards can stream results instead of waiting for the
// final Result. Callbacks run on the server goroutine; implementations
// should return quickly.
type RoundObserver interface {
	// RoundDone fires after every aggregation round.
	RoundDone(RoundStats)
	// TaskDone fires after every task with the same TaskPoint that is
	// appended to Result.PerTask.
	TaskDone(TaskPoint)
}

// ObserverFuncs adapts plain functions to RoundObserver; nil fields are
// no-ops.
type ObserverFuncs struct {
	Round func(RoundStats)
	Task  func(TaskPoint)
}

// RoundDone forwards to Round when set.
func (o ObserverFuncs) RoundDone(s RoundStats) {
	if o.Round != nil {
		o.Round(s)
	}
}

// TaskDone forwards to Task when set.
func (o ObserverFuncs) TaskDone(tp TaskPoint) {
	if o.Task != nil {
		o.Task(tp)
	}
}

// ServerConfig drives the round scheduler. Unlike Config it carries nothing
// about local training — the server never sees data, models or strategies,
// only parameter vectors and accounting, which is what lets one server drive
// loopback goroutines and remote TCP clients identically.
type ServerConfig struct {
	Method      string
	NumClients  int
	NumTasks    int
	Rounds      int     // aggregation rounds per task (r)
	Bandwidth   float64 // bytes/second per client link
	DropoutProb float64 // per-round, per-client offline probability
	Seed        uint64
}

// updateMeta is the accounting a round keeps per participating update. The
// Update itself may alias transport decode buffers, so the scalars the
// server needs after aggregation are copied out here.
type updateMeta struct {
	clientID       int
	computeSeconds float64
	upBytes        int64
	downBytes      int64
}

// Server is the protocol's round scheduler: it opens rounds, collects
// updates, delegates to the Aggregator, broadcasts the global model, and
// keeps the books (simulated clock, traffic, accuracy matrix, evictions).
type Server struct {
	cfg     ServerConfig
	agg     Aggregator
	stream  StreamAggregator // non-nil when agg reduces incrementally
	links   []Transport      // index = client ID
	alive   []bool
	offline []bool
	dropRNG *tensor.RNG
	obs     RoundObserver

	simSeconds  float64
	commSeconds float64
	upBytes     int64
	downBytes   int64

	updates []*Update    // per-round scratch (buffered aggregators only)
	metas   []updateMeta // per-round scratch
	rows    [][]float64  // per-task eval scratch
}

// NewServer builds a server over one transport per client. The aggregator
// defaults to SparseFedAvg when nil — the streaming reducer that handles
// dense updates with WeightedFedAvg's exact arithmetic and sparse updates in
// O(active knowledge). A StreamAggregator is fed each update as it is
// decoded; any other Aggregator sees the buffered round.
func NewServer(cfg ServerConfig, agg Aggregator, links []Transport) *Server {
	if cfg.NumClients == 0 {
		cfg.NumClients = len(links)
	}
	if len(links) != cfg.NumClients {
		panic(fmt.Sprintf("fed: %d transports for %d clients", len(links), cfg.NumClients))
	}
	if agg == nil {
		agg = &SparseFedAvg{}
	}
	s := &Server{
		cfg:     cfg,
		agg:     agg,
		links:   links,
		alive:   make([]bool, cfg.NumClients),
		offline: make([]bool, cfg.NumClients),
		dropRNG: tensor.NewRNG(cfg.Seed ^ 0xD209),
		rows:    make([][]float64, cfg.NumClients),
	}
	s.stream, _ = agg.(StreamAggregator)
	for i := range s.alive {
		s.alive[i] = true
	}
	return s
}

// SetObserver installs the streaming hook; call before Run.
func (s *Server) SetObserver(o RoundObserver) { s.obs = o }

// AliveClients reports how many clients have not been evicted.
func (s *Server) AliveClients() int {
	n := 0
	for _, a := range s.alive {
		if a {
			n++
		}
	}
	return n
}

// Run executes the full task sequence and returns the result. Cancelling ctx
// aborts between protocol steps: the partial Result gathered so far is
// returned together with the context's error, and all transports are closed
// so client loops terminate. Run closes the transports on every path and
// must only be called once.
func (s *Server) Run(ctx context.Context) (*Result, error) {
	defer s.closeAll()
	res := &Result{
		Method:    s.cfg.Method,
		Matrix:    metrics.NewMatrix(s.cfg.NumTasks),
		DeadAfter: map[int]int{},
	}
	for taskIdx := 0; taskIdx < s.cfg.NumTasks; taskIdx++ {
		if err := s.runTask(ctx, taskIdx, res); err != nil {
			return res, err
		}
		tp := TaskPoint{
			TaskIdx:        taskIdx,
			AvgAccuracy:    res.Matrix.AvgAccuracy(taskIdx),
			ForgettingRate: res.Matrix.ForgettingRate(taskIdx),
			SimHours:       s.simSeconds / 3600,
			CommHours:      s.commSeconds / 3600,
			UpBytes:        s.upBytes,
			DownBytes:      s.downBytes,
		}
		res.PerTask = append(res.PerTask, tp)
		if s.obs != nil {
			s.obs.TaskDone(tp)
		}
	}
	return res, nil
}

// runTask schedules the r aggregation rounds of one task.
func (s *Server) runTask(ctx context.Context, taskIdx int, res *Result) error {
	for round := 0; round < s.cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		taskDone := round == s.cfg.Rounds-1
		// Failure injection: each client may drop out of this round. The
		// draw order (ascending client ID, no draw for dead clients) is part
		// of the reproducibility contract.
		anyOnline := false
		for i := range s.links {
			s.offline[i] = s.alive[i] && s.cfg.DropoutProb > 0 && s.dropRNG.Float64() < s.cfg.DropoutProb
			if s.alive[i] && !s.offline[i] {
				anyOnline = true
			}
		}
		if !anyOnline {
			// Keep the protocol alive: at least one participant per round.
			for i := range s.links {
				if s.alive[i] {
					s.offline[i] = false
					break
				}
			}
		}
		for i, t := range s.links {
			if !s.alive[i] {
				continue
			}
			rs := &RoundStart{TaskIdx: taskIdx, Round: round, Participate: !s.offline[i], TaskDone: taskDone}
			if err := t.Send(rs); err != nil {
				return s.runErr(ctx, fmt.Errorf("fed: round start to client %d: %w", i, err))
			}
		}
		// Collect every alive client's update (dropped-out clients send an
		// empty acknowledgement). Ascending client ID keeps aggregation
		// order deterministic. A streaming aggregator folds each update into
		// the global scratch the moment it is decoded — the server never
		// buffers per-client parameter vectors, so its hot path costs
		// O(active knowledge) per update instead of holding O(model ×
		// clients).
		s.updates = s.updates[:0]
		s.metas = s.metas[:0]
		if s.stream != nil {
			s.stream.BeginRound()
		}
		firstLen := -1
		for i, t := range s.links {
			if !s.alive[i] {
				continue
			}
			msg, err := t.Recv()
			if err != nil {
				return s.runErr(ctx, fmt.Errorf("fed: update from client %d: %w", i, err))
			}
			u, ok := msg.(*Update)
			if !ok {
				return fmt.Errorf("fed: client %d sent %T, want *Update", i, msg)
			}
			// The ID routes the GlobalModel broadcast, so a wire client must
			// not be able to impersonate (or index-out-of-range) another link.
			if u.ClientID != i {
				return fmt.Errorf("fed: link %d sent update claiming client %d", i, u.ClientID)
			}
			if u.Participating {
				// Mismatched vector lengths (a client with a different
				// model, slipping past the fingerprint check) must fail as
				// a protocol error, not panic inside the aggregator.
				if n := u.ParamLen(); firstLen < 0 {
					firstLen = n
				} else if n != firstLen {
					return fmt.Errorf("fed: client %d sent %d parameters, others sent %d",
						i, n, firstLen)
				}
				if s.stream != nil {
					s.stream.Accumulate(u)
				} else {
					s.updates = append(s.updates, u)
				}
				s.metas = append(s.metas, updateMeta{
					clientID: i, computeSeconds: u.ComputeSeconds,
					upBytes: u.UpBytes, downBytes: u.DownBytes,
				})
			}
		}
		// Time accounting: synchronous rounds bound by the slowest client.
		var worstCompute, worstComm float64
		var roundUp, roundDown int64
		for _, m := range s.metas {
			if m.computeSeconds > worstCompute {
				worstCompute = m.computeSeconds
			}
			if t := device.CommTime(m.upBytes+m.downBytes, s.cfg.Bandwidth); t > worstComm {
				worstComm = t
			}
			roundUp += m.upBytes
			roundDown += m.downBytes
		}
		s.simSeconds += worstCompute + worstComm
		s.commSeconds += worstComm
		s.upBytes += roundUp
		s.downBytes += roundDown

		// Finish the reduction and broadcast to the round's participants.
		// The global slice may alias aggregator scratch; every participant
		// acknowledges (next Update or RoundEnd) before the next round
		// rewrites it, so sharing is safe even over the zero-copy loopback.
		var global []float32
		if s.stream != nil {
			global = s.stream.FinishRound()
		} else {
			global = s.agg.Aggregate(s.updates)
		}
		if global != nil {
			gm := &GlobalModel{Params: global}
			for _, m := range s.metas {
				if err := s.links[m.clientID].Send(gm); err != nil {
					return s.runErr(ctx, fmt.Errorf("fed: global model to client %d: %w", m.clientID, err))
				}
			}
		}
		if s.obs != nil {
			s.obs.RoundDone(RoundStats{
				TaskIdx: taskIdx, Round: round, Participants: len(s.metas),
				ComputeSeconds: worstCompute, CommSeconds: worstComm,
				UpBytes: roundUp, DownBytes: roundDown,
			})
		}
		if taskDone {
			if err := s.collectRoundEnds(ctx, taskIdx, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// runErr reports a transport failure, preferring the context's error: when
// the run was cancelled, client endpoints close their transports and the
// resulting EOFs are an effect of the cancel, not a protocol failure.
func (s *Server) runErr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}

// collectRoundEnds gathers every alive client's task report: eviction flags
// first, then the accuracy-matrix row averaged over the survivors.
func (s *Server) collectRoundEnds(ctx context.Context, taskIdx int, res *Result) error {
	for i := range s.rows {
		s.rows[i] = nil
	}
	for i, t := range s.links {
		if !s.alive[i] {
			continue
		}
		msg, err := t.Recv()
		if err != nil {
			return s.runErr(ctx, fmt.Errorf("fed: round end from client %d: %w", i, err))
		}
		re, ok := msg.(*RoundEnd)
		if !ok {
			return fmt.Errorf("fed: client %d sent %T, want *RoundEnd", i, msg)
		}
		if re.ClientID != i {
			return fmt.Errorf("fed: link %d sent round end claiming client %d", i, re.ClientID)
		}
		if re.Dead {
			s.alive[i] = false
			res.DeadAfter[i] = taskIdx
			continue
		}
		if len(re.EvalAccs) != taskIdx+1 {
			return fmt.Errorf("fed: client %d reported %d accuracies after task %d", i, len(re.EvalAccs), taskIdx)
		}
		s.rows[i] = re.EvalAccs
	}
	for p := 0; p <= taskIdx; p++ {
		var sum float64
		n := 0
		for _, accs := range s.rows {
			if accs != nil {
				sum += accs[p]
				n++
			}
		}
		if n > 0 {
			res.Matrix.Set(taskIdx, p, sum/float64(n))
		}
	}
	return nil
}

func (s *Server) closeAll() {
	for _, t := range s.links {
		t.Close()
	}
}
