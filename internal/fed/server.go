package fed

import (
	"context"
	"fmt"
	"log"
	"math"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// RoundStats is the server-side accounting of one finished aggregation
// round, streamed to the RoundObserver. Under the synchronous scheduler a
// round is one full lockstep collection; under the asynchronous scheduler it
// is one global-model commit (K accepted updates).
type RoundStats struct {
	// TaskIdx is the task the round belongs to.
	TaskIdx int
	// Round is the round's ordinal within the task: the lockstep round
	// index, or the commit's sequence number under the asynchronous
	// scheduler.
	Round int
	// Participants is the number of updates aggregated into this round's
	// global model.
	Participants int
	// Version is the global model version after this round's commit.
	Version uint64
	// Stale is the number of updates rejected by the -max-staleness bound
	// since the previous commit (always 0 under the synchronous scheduler).
	Stale int
	// NonFinite is the number of updates rejected by ingest hardening
	// (NaN/Inf parameters or a non-finite weight) since the previous commit.
	NonFinite int
	// Evictions is the number of clients evicted since the previous commit.
	Evictions int
	// ComputeSeconds / CommSeconds are this round's simulated times (the
	// slowest participant bounds a synchronous round).
	ComputeSeconds float64
	CommSeconds    float64
	// UpBytes / DownBytes are this round's traffic across participants.
	UpBytes   int64
	DownBytes int64
}

// RoundObserver receives the run's progress as it happens, so CLIs,
// experiments and dashboards can stream results instead of waiting for the
// final Result. Callbacks run on the server goroutine; implementations
// should return quickly.
type RoundObserver interface {
	// RoundDone fires after every aggregation round.
	RoundDone(RoundStats)
	// TaskDone fires after every task with the same TaskPoint that is
	// appended to Result.PerTask.
	TaskDone(TaskPoint)
}

// ObserverFuncs adapts plain functions to RoundObserver; nil fields are
// no-ops.
type ObserverFuncs struct {
	Round func(RoundStats)
	Task  func(TaskPoint)
}

// RoundDone forwards to Round when set.
func (o ObserverFuncs) RoundDone(s RoundStats) {
	if o.Round != nil {
		o.Round(s)
	}
}

// TaskDone forwards to Task when set.
func (o ObserverFuncs) TaskDone(tp TaskPoint) {
	if o.Task != nil {
		o.Task(tp)
	}
}

// ServerConfig drives the round scheduler. Unlike Config it carries nothing
// about local training — the server never sees data, models or strategies,
// only parameter vectors and accounting, which is what lets one server drive
// loopback goroutines and remote TCP clients identically.
type ServerConfig struct {
	// Method identifies the training method in reports.
	Method string
	// NumClients is the federation size; 0 means len(links).
	NumClients int
	// MaxCohort caps the seat book under elastic membership: mid-run joins
	// (the v5 join hello) are admitted until the book holds MaxCohort seats
	// and refused — counted, logged — beyond it. 0 means NumClients (no
	// growth). Only the asynchronous scheduler consumes joins.
	MaxCohort int
	// NumTasks is the continual-learning task count.
	NumTasks int
	// Rounds is the number of aggregation rounds per task (r). Under the
	// asynchronous scheduler it is the number of updates each client
	// uploads per task — the same total work, scheduled differently.
	Rounds int
	// Bandwidth is the simulated bytes/second of each client link.
	Bandwidth float64
	// DropoutProb is the per-round, per-client offline probability
	// (synchronous scheduler only; see Config.DropoutProb).
	DropoutProb float64
	// Seed drives the server's failure-injection RNG.
	Seed uint64
	// Scheduler selects the scheduling policy (SchedulerSync or
	// SchedulerAsync; empty means sync) — see Config.Scheduler.
	Scheduler string
	// SyncEvict lets the synchronous scheduler evict a client whose
	// transport fails instead of aborting the run — see Config.SyncEvict.
	SyncEvict bool
	// Async configures the asynchronous scheduler; ignored when Scheduler
	// is sync.
	Async AsyncConfig
	// Shards selects the default aggregator's fold layout when no explicit
	// Aggregator is passed to NewServer: > 1 builds ShardedFedAvg with that
	// many per-shard reducers, otherwise the single-loop SparseFedAvg.
	// Bitwise-identical results either way — see Config.Shards.
	Shards int
	// Robust selects the aggregation rule when no explicit Aggregator is
	// passed to NewServer, as a ParseAggregator spec ("trimmed-mean:0.2",
	// "median", "krum:1", "fedopt:0.9:median"). Empty or "fedavg" keeps the
	// Shards-driven default. Part of the job fingerprint — every cohort
	// member must agree on the rule.
	Robust string
	// RejectNonFinite turns on ingest hardening: updates carrying NaN/Inf
	// parameters or a non-finite weight are rejected and counted
	// (RoundStats.NonFinite) instead of folded into the global. The CLI
	// defaults it on whenever a robust aggregator is selected.
	RejectNonFinite bool
	// Logf, when set, receives operational log lines (client evictions);
	// nil uses the standard library logger. It never receives results.
	Logf func(format string, args ...any)
}

// maxFiniteWeight bounds admissible update weights under ingest hardening:
// +Inf (and anything a comparison cannot place below the float64 maximum) is
// rejected the same way NaN parameters are.
const maxFiniteWeight = math.MaxFloat64

// updateMeta is the accounting a round keeps per participating update. The
// Update itself may alias transport decode buffers, so the scalars the
// server needs after aggregation are copied out here.
type updateMeta struct {
	clientID       int
	computeSeconds float64
	upBytes        int64
	downBytes      int64
}

// Server is the protocol's hub: it owns one Transport per client, the
// pluggable Aggregator, and the books (simulated clock, traffic, accuracy
// matrix, evictions), and delegates round control flow to its Scheduler —
// the lockstep SyncScheduler by default, or the staleness-bounded
// AsyncScheduler.
type Server struct {
	cfg     ServerConfig
	agg     Aggregator
	stream  StreamAggregator // non-nil when agg reduces incrementally
	sched   Scheduler
	links   []Transport // index = client ID
	alive   []bool
	offline []bool
	left    []bool // seat retired by a clean Leave (never counted as dead)
	dropRNG *tensor.RNG
	obs     RoundObserver
	rejoins <-chan RejoinRequest
	joins   <-chan JoinRequest

	// snap, when set, receives a durable state cut at run start, write-ahead
	// of every commit broadcast, and at every task boundary (SetSnapshots).
	// resume, when set, is the cut this server was rebuilt from
	// (NewServerFromSnapshot) and positions Run's task loop.
	snap   SnapshotSink
	resume *checkpoint.ServerSnapshot

	// retiredSent/retiredRecv accumulate the measured traffic of wire links
	// replaced by a rejoin, so WireTraffic never loses the bytes a dropped
	// connection already carried. trafficMu guards them and the links-slice
	// swap a rejoin performs, so WireTraffic can be polled from another
	// goroutine while the run is live.
	trafficMu   sync.Mutex
	retiredSent int64
	retiredRecv int64

	// version is the global model's commit version, monotone over the run:
	// 0 is the shared initial model, and every commit (one per synchronous
	// round, one per K accepted asynchronous updates) increments it.
	version uint64

	simSeconds  float64
	commSeconds float64
	upBytes     int64
	downBytes   int64

	// nonFiniteTotal / evictTotal / refusedTotal are the run's cumulative
	// rejected-input accounting, surfaced by Rejections and sliced into
	// per-commit deltas for RoundStats. (Staleness rejections live on the
	// async scheduler, which persists them across restarts.) refusedTotal
	// counts scheduler-level membership refusals: a rejoin for a live or
	// unknown seat, or a join beyond MaxCohort.
	nonFiniteTotal int
	evictTotal     int
	refusedTotal   int

	updates []*Update    // per-round scratch (buffered aggregators only)
	metas   []updateMeta // per-round scratch
	rows    [][]float64  // per-task eval scratch
}

// NewServer builds a server over one transport per client. The aggregator
// defaults to SparseFedAvg when nil — the streaming reducer that handles
// dense updates with WeightedFedAvg's exact arithmetic and sparse updates in
// O(active knowledge) — or to ShardedFedAvg, its bitwise-identical
// concurrent-fold layout, when cfg.Shards > 1. A StreamAggregator is fed each update as it is
// decoded; any other Aggregator sees the buffered round. The scheduling
// policy comes from cfg.Scheduler; NewServer panics on an unknown policy, on
// SchedulerAsync with a non-streaming aggregator (the asynchronous policy
// folds updates as they arrive and never buffers them), and on
// SchedulerAsync with DropoutProb > 0 (round-level dropout is a lockstep
// concept; asynchronous churn is modelled as eviction on transport failure).
func NewServer(cfg ServerConfig, agg Aggregator, links []Transport) *Server {
	if cfg.NumClients == 0 {
		cfg.NumClients = len(links)
	}
	if len(links) != cfg.NumClients {
		panic(fmt.Sprintf("fed: %d transports for %d clients", len(links), cfg.NumClients))
	}
	if cfg.MaxCohort == 0 {
		cfg.MaxCohort = cfg.NumClients
	}
	if cfg.MaxCohort < cfg.NumClients {
		panic(fmt.Sprintf("fed: MaxCohort %d below the initial cohort of %d", cfg.MaxCohort, cfg.NumClients))
	}
	if agg == nil {
		if cfg.Robust != "" {
			a, err := ParseAggregator(cfg.Robust, cfg.Shards)
			if err != nil {
				panic(err.Error())
			}
			agg = a
		} else if cfg.Shards > 1 {
			agg = NewShardedFedAvg(cfg.Shards)
		} else {
			agg = &SparseFedAvg{}
		}
	}
	s := &Server{
		cfg:     cfg,
		agg:     agg,
		links:   links,
		alive:   make([]bool, cfg.NumClients),
		offline: make([]bool, cfg.NumClients),
		left:    make([]bool, cfg.NumClients),
		dropRNG: tensor.NewRNG(cfg.Seed ^ 0xD209),
		rows:    make([][]float64, cfg.NumClients),
	}
	s.stream, _ = agg.(StreamAggregator)
	switch cfg.Scheduler {
	case "", SchedulerSync:
		s.sched = &SyncScheduler{}
	case SchedulerAsync:
		if s.stream == nil {
			panic(fmt.Sprintf("fed: the async scheduler requires a StreamAggregator, %s only buffers", agg.Name()))
		}
		if cfg.DropoutProb > 0 {
			panic("fed: the async scheduler does not support DropoutProb (churn is modelled as eviction on transport failure)")
		}
		s.sched = newAsyncScheduler(cfg)
	default:
		panic(fmt.Sprintf("fed: unknown scheduler %q (want %q or %q)", cfg.Scheduler, SchedulerSync, SchedulerAsync))
	}
	for i := range s.alive {
		s.alive[i] = true
	}
	return s
}

// SetObserver installs the streaming hook; call before Run.
func (s *Server) SetObserver(o RoundObserver) { s.obs = o }

// SetRejoins installs the source of rejoin handshakes (normally a
// RejoinAcceptor's channel; tests inject loopback links directly); call
// before Run. Only the asynchronous scheduler consumes rejoins — it retains
// an evicted seat's state (parameter length, device clock, per-task upload
// progress) and re-admits the seat with a Catchup reply; the synchronous
// scheduler ignores the channel (lockstep has no mid-round splice point).
func (s *Server) SetRejoins(ch <-chan RejoinRequest) { s.rejoins = ch }

// SetJoins installs the source of mid-run join handshakes (normally a
// RejoinAcceptor's Joins channel; tests inject loopback links directly); call
// before Run. Only the asynchronous scheduler consumes joins — it assigns the
// next free seat ID, replies with a seat-assignment hello plus a phase-aware
// Catchup, and grows the seat book, subject to the MaxCohort cap; the
// synchronous scheduler ignores the channel (a lockstep cohort is fixed at
// round start).
func (s *Server) SetJoins(ch <-chan JoinRequest) { s.joins = ch }

// AliveClients reports how many clients have not been evicted.
func (s *Server) AliveClients() int {
	n := 0
	for _, a := range s.alive {
		if a {
			n++
		}
	}
	return n
}

// Version reports the current global-model commit version.
func (s *Server) Version() uint64 { return s.version }

// Run executes the full task sequence and returns the result. Cancelling ctx
// aborts between protocol steps: the partial Result gathered so far is
// returned together with the context's error, and all transports are closed
// so client loops terminate. Run closes the transports on every path and
// must only be called once.
func (s *Server) Run(ctx context.Context) (*Result, error) {
	defer s.sched.Close()
	defer s.closeAll()
	res := &Result{
		Method:    s.cfg.Method,
		Matrix:    metrics.NewMatrix(s.cfg.NumTasks),
		DeadAfter: map[int]int{},
	}
	start := 0
	if s.resume != nil {
		start = s.resume.TaskIdx
		if err := restoreResult(res, s.resume); err != nil {
			return res, err
		}
		if r, ok := s.sched.(snapshotRestorer); ok {
			r.restoreSnapshot(s, s.resume)
		}
	} else {
		// Genesis cut: version 0, empty books. It is what lets a server that
		// crashes before its first commit still restart into the rejoin path
		// instead of stranding a cohort of rejoin hellos against a fresh
		// handshake that expects fresh ones.
		s.snapshot(res, 0, true)
	}
	for taskIdx := start; taskIdx < s.cfg.NumTasks; taskIdx++ {
		if err := s.sched.RunTask(ctx, s, taskIdx, res); err != nil {
			return res, err
		}
		tp := TaskPoint{
			TaskIdx:        taskIdx,
			AvgAccuracy:    res.Matrix.AvgAccuracy(taskIdx),
			ForgettingRate: res.Matrix.ForgettingRate(taskIdx),
			SimHours:       s.simSeconds / 3600,
			CommHours:      s.commSeconds / 3600,
			UpBytes:        s.upBytes,
			DownBytes:      s.downBytes,
		}
		res.PerTask = append(res.PerTask, tp)
		if s.obs != nil {
			s.obs.TaskDone(tp)
		}
		// Boundary cut: the completed task's row and summary are in res, and
		// the next task's counters start from zero.
		s.snapshot(res, taskIdx+1, true)
	}
	return res, nil
}

// evict removes a client whose transport failed: mark it dead, record the
// task it was lost at, close the link, log, and let the scheduler keep
// driving the survivors. The seat's books (accuracy rows, clocks, upload
// progress) are retained, not discarded — a rejoining client is re-admitted
// against them.
func (s *Server) evict(res *Result, taskIdx, id int, err error) {
	if !s.alive[id] {
		return
	}
	s.alive[id] = false
	s.evictTotal++
	res.DeadAfter[id] = taskIdx
	s.links[id].Close()
	s.logf("fed: %s: evicted client %d at task %d: %v", s.sched.Name(), id, taskIdx, err)
}

// Rejections reports the run's cumulative rejected-input accounting: updates
// dropped by ingest hardening (non-finite parameters or weight), updates
// dropped by the async staleness bound, clients evicted on transport
// failure, and membership handshakes the scheduler refused (a rejoin for a
// live or unknown seat, a join beyond MaxCohort). The first three reach the
// RoundObserver as per-commit deltas (RoundStats.NonFinite, .Stale,
// .Evictions); this accessor is the run-level summary the adversarial matrix
// legs and churn tests assert on. Transport-level refusals — fingerprint or
// compression mismatches the acceptor closes before the scheduler ever sees
// a seat — are counted separately by RejoinAcceptor.Refusals.
func (s *Server) Rejections() (nonFinite, stale, evicted, refused int) {
	if as, ok := s.sched.(*AsyncScheduler); ok {
		stale = as.staleTotal
	}
	return s.nonFiniteTotal, stale, s.evictTotal, s.refusedTotal
}

// DroppedWindowUploads reports how many buffered uploads a restart discarded
// because the aggregation rule buffers its commit window (trimmed-mean,
// median, Krum) and cannot export the open window into a snapshot: the cut
// carried only the window's accounting, so those uploads are lost to the
// model — not retrained, since the Seen counts already include them. Always
// 0 under the synchronous scheduler and under streaming (FedAvg-family)
// rules, whose open window restores exactly.
func (s *Server) DroppedWindowUploads() int {
	if as, ok := s.sched.(*AsyncScheduler); ok {
		return as.droppedWindow
	}
	return 0
}

// retire closes a seat's books on a clean Leave: the seat goes not-alive and
// is marked left — excluded from future commits and broadcasts like an
// evicted seat, but never logged as an eviction, never counted in
// Result.DeadAfter, and never added to the eviction totals. Its folded
// contributions stand; the commit weighting renormalizes over the remaining
// live set automatically (denominators are per-window).
func (s *Server) retire(taskIdx, id int) {
	if !s.alive[id] {
		return
	}
	s.alive[id] = false
	s.left[id] = true
	s.links[id].Close()
	s.logf("fed: %s: seat %d retired at task %d (clean leave)", s.sched.Name(), id, taskIdx)
}

// admitUpdate applies ingest hardening to one decoded update: when
// RejectNonFinite is on and the update carries NaN/Inf parameters or a
// non-finite or negative weight, it is rejected (counted, logged) instead of
// reaching the aggregator. Reports whether the update may be folded.
func (s *Server) admitUpdate(u *Update, taskIdx int) bool {
	if !s.cfg.RejectNonFinite {
		return true
	}
	ok := u.Weight == u.Weight && u.Weight >= 0 && u.Weight <= maxFiniteWeight
	if ok {
		if u.Sparse != nil {
			ok = tensor.AllFinite(u.Sparse.Values)
		} else {
			ok = tensor.AllFinite(u.Params)
		}
	}
	if ok {
		return true
	}
	s.nonFiniteTotal++
	s.logf("fed: %s: rejected non-finite update from client %d at task %d", s.sched.Name(), u.ClientID, taskIdx)
	return false
}

// WireTraffic reports the measured bytes sent and received across every
// wire link the server has held, including connections retired when their
// client rejoined on a fresh one. Loopback links carry no measured traffic
// and count zero. Safe to call from any goroutine; mid-run totals are
// approximate (links may still be transferring).
func (s *Server) WireTraffic() (sent, recv int64) {
	s.trafficMu.Lock()
	defer s.trafficMu.Unlock()
	sent, recv = s.retiredSent, s.retiredRecv
	for _, l := range s.links {
		if w, ok := l.(*WireTransport); ok {
			sent += w.BytesSent()
			recv += w.BytesRecv()
		}
	}
	return sent, recv
}

// runErr reports a transport failure, preferring the context's error: when
// the run was cancelled, client endpoints close their transports and the
// resulting EOFs are an effect of the cancel, not a protocol failure.
func (s *Server) runErr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}

// handleRoundEnd applies one client's task report — the shared protocol
// enforcement both schedulers rely on: the claimed ID must match the link,
// a death report evicts, and a survivor's accuracy row must cover exactly
// the learned tasks before it lands in s.rows.
func (s *Server) handleRoundEnd(id int, re *RoundEnd, taskIdx int, res *Result) error {
	if re.ClientID != id {
		return fmt.Errorf("fed: link %d sent round end claiming client %d", id, re.ClientID)
	}
	if re.Dead {
		s.alive[id] = false
		res.DeadAfter[id] = taskIdx
		return nil
	}
	if len(re.EvalAccs) != taskIdx+1 {
		return fmt.Errorf("fed: client %d reported %d accuracies after task %d", id, len(re.EvalAccs), taskIdx)
	}
	s.rows[id] = re.EvalAccs
	return nil
}

// fillMatrixRow averages the collected s.rows into the accuracy matrix's
// row for taskIdx (the mean over clients that reported, per learned task).
func (s *Server) fillMatrixRow(taskIdx int, res *Result) {
	for p := 0; p <= taskIdx; p++ {
		var sum float64
		n := 0
		for _, accs := range s.rows {
			if accs != nil && p < len(accs) {
				sum += accs[p]
				n++
			}
		}
		if n > 0 {
			res.Matrix.Set(taskIdx, p, sum/float64(n))
		}
	}
}

// logf routes operational log lines to the configured sink.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

func (s *Server) closeAll() {
	for _, t := range s.links {
		t.Close()
	}
}
