package fed

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/tensor"
)

// memSink is an in-memory SnapshotSink for scripted tests. The snapshot's
// slices alias live server state, so Save deep-copies before returning —
// exactly what the interface contract demands of a real sink.
type memSink struct {
	mu    sync.Mutex
	snaps []checkpoint.ServerSnapshot
}

func (m *memSink) Save(s *checkpoint.ServerSnapshot) error {
	cp := *s
	cp.Global = append([]float32(nil), s.Global...)
	cp.Seats = append([]checkpoint.SeatRecord(nil), s.Seats...)
	cp.Tasks = append([]checkpoint.TaskRecord(nil), s.Tasks...)
	cp.Matrix = nil
	for _, row := range s.Matrix {
		cp.Matrix = append(cp.Matrix, append([]float64(nil), row...))
	}
	cp.WindowIdx = append([]int32(nil), s.WindowIdx...)
	cp.WindowVals = append([]float32(nil), s.WindowVals...)
	m.mu.Lock()
	m.snaps = append(m.snaps, cp)
	m.mu.Unlock()
	return nil
}

// waitFor polls the sink until a saved snapshot satisfies the predicate.
func (m *memSink) waitFor(t *testing.T, what string, pred func(*checkpoint.ServerSnapshot) bool) checkpoint.ServerSnapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m.mu.Lock()
		for i := len(m.snaps) - 1; i >= 0; i-- {
			if pred(&m.snaps[i]) {
				cp := m.snaps[i]
				m.mu.Unlock()
				return cp
			}
		}
		m.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("no snapshot cut satisfying %q", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// hasVersion reports whether a cut at global version v has been saved.
func (m *memSink) hasVersion(v uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.snaps {
		if s.Version == v {
			return true
		}
	}
	return false
}

// TestServerSnapshotRestoreResumesMidTask pins the tentpole contract with
// scripted peers and a real on-disk store: a server killed mid-task leaves a
// commit cut behind; a second server built from that cut re-admits both
// clients through the rejoin path with phase-aware Catchups (Seen counts
// authoritative, parameters only for the client that is behind), resumes the
// interrupted task at the right round, keeps the global version and commit
// ordinals monotone across the process boundary, and completes the run with
// full books — no task reported twice, no seat lost, no byte forgotten.
func TestServerSnapshotRestoreResumesMidTask(t *testing.T) {
	const fp = 0xF00D
	dir := t.TempDir()
	store, err := checkpoint.OpenStore(dir, 3, fp)
	if err != nil {
		t.Fatal(err)
	}
	logf, _ := watchLogs()
	cfg := ServerConfig{
		Method: "test", NumTasks: 2, Rounds: 2, Scheduler: SchedulerAsync,
		Async: AsyncConfig{CommitEvery: 1},
		Logf:  logf,
	}
	s0, c0 := LoopbackCap(64)
	s1, c1 := LoopbackCap(64)
	srv := NewServer(cfg, nil, []Transport{s0, s1})
	srv.SetSnapshots(store)
	ctx, crash := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(ctx)
		done <- err
	}()

	recvRoundStart(t, c0)
	recvRoundStart(t, c1)
	sendUpdate(t, c0, 0, 0, 2) // commit v1 = [2]
	recvGlobal(t, c0)
	recvGlobal(t, c1)
	sendUpdate(t, c1, 1, 1, 6) // commit v2 = [6]
	recvGlobal(t, c0)
	recvGlobal(t, c1)

	// Crash: both clients have installed v2, both are owed one more upload
	// of task 0, and the newest durable cut is v2's — written ahead of the
	// broadcast the clients just received.
	crash()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("crashed run returned %v, want context.Canceled", err)
	}
	c0.Close()
	c1.Close()

	// The restart half opens the store fresh, like a new process would.
	store2, err := checkpoint.OpenStore(dir, 3, fp)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := store2.Load()
	if err != nil || snap == nil {
		t.Fatalf("load after crash: snap=%v err=%v", snap, err)
	}
	if snap.Version != 2 || snap.TaskIdx != 0 || snap.CommitIdx != 2 {
		t.Fatalf("cut at version %d task %d commit %d, want v2 task 0 commit 2",
			snap.Version, snap.TaskIdx, snap.CommitIdx)
	}
	if len(snap.Global) != 1 || snap.Global[0] != 6 {
		t.Fatalf("cut global %v, want the broadcast v2 [6]", snap.Global)
	}
	if len(snap.Tasks) != 0 {
		t.Fatalf("cut records %d completed tasks mid-task 0, want 0", len(snap.Tasks))
	}
	for i, seat := range snap.Seats {
		if !seat.Alive || seat.Dead || seat.Seen != 1 {
			t.Fatalf("seat %d = %+v, want alive with 1 upload in", i, seat)
		}
	}

	srv2, err := NewServerFromSnapshot(cfg, nil, snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	rejoins := make(chan RejoinRequest, 2)
	srv2.SetRejoins(rejoins)
	srv2.SetSnapshots(store2)
	firstRound := -1
	var obsOnce sync.Once
	srv2.SetObserver(ObserverFuncs{Round: func(s RoundStats) {
		obsOnce.Do(func() { firstRound = s.Round })
	}})
	done2 := make(chan *Result, 1)
	go func() {
		res, err := srv2.Run(context.Background())
		if err != nil {
			t.Errorf("restored run: %v", err)
		}
		done2 <- res
	}()

	// Client 0 rejoins already holding the cut's version: the Catchup names
	// its resume point but carries no parameters.
	sR0, cR0 := LoopbackCap(64)
	rejoins <- RejoinRequest{ClientID: 0, LastVersion: 2, Link: sR0}
	cu0 := recvCatchup(t, cR0)
	if cu0.TaskIdx != 0 || cu0.Seen != 1 || cu0.TaskFinal || cu0.TaskDone {
		t.Fatalf("catch-up 0 %+v, want task 0, seen 1, no flags", cu0)
	}
	if cu0.Version != 2 || len(cu0.Params) != 0 {
		t.Fatalf("catch-up 0 v%d with %d params, want v2 and none (client is current)",
			cu0.Version, len(cu0.Params))
	}

	// Client 1 lost the v2 broadcast in the crash: its Catchup replays it.
	sR1, cR1 := LoopbackCap(64)
	rejoins <- RejoinRequest{ClientID: 1, LastVersion: 1, Link: sR1}
	cu1 := recvCatchup(t, cR1)
	if cu1.Version != 2 || len(cu1.Params) != 1 || cu1.Params[0] != 6 {
		t.Fatalf("catch-up 1 v%d %v, want the replayed v2 [6]", cu1.Version, cu1.Params)
	}
	if cu1.Seen != 1 {
		t.Fatalf("catch-up 1 seen %d, want the cut's authoritative 1", cu1.Seen)
	}

	// Each client owes exactly one more task-0 upload; version numbering
	// continues from the cut.
	sendUpdate(t, cR0, 0, 2, 10) // commit v3 = [10]
	if gm := recvGlobal(t, cR0); gm.Version != 3 || gm.Params[0] != 10 {
		t.Fatalf("post-restart commit v%d %v, want the continuation v3 [10]", gm.Version, gm.Params)
	}
	recvGlobal(t, cR1)
	sendUpdate(t, cR1, 1, 3, 14) // commit v4 = [14]
	recvGlobal(t, cR0)
	recvGlobal(t, cR1)
	f0, f1 := recvGlobal(t, cR0), recvGlobal(t, cR1)
	if !f0.TaskFinal || !f1.TaskFinal {
		t.Fatalf("task-final flags %v/%v after the owed uploads", f0.TaskFinal, f1.TaskFinal)
	}
	cR0.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.6}})
	cR1.Send(&RoundEnd{ClientID: 1, EvalAccs: []float64{0.8}})

	// Task 1 proceeds normally on the rejoined links.
	recvRoundStart(t, cR0)
	recvRoundStart(t, cR1)
	base := uint64(4)
	for i := 0; i < 2; i++ {
		sendUpdate(t, cR0, 0, base, float32(20+i))
		recvGlobal(t, cR0)
		recvGlobal(t, cR1)
		base++
		sendUpdate(t, cR1, 1, base, float32(30+i))
		recvGlobal(t, cR0)
		recvGlobal(t, cR1)
		base++
	}
	recvGlobal(t, cR0) // task-final
	recvGlobal(t, cR1)
	cR0.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.5, 0.7}})
	cR1.Send(&RoundEnd{ClientID: 1, EvalAccs: []float64{0.5, 0.9}})

	res := <-done2
	if firstRound != 2 {
		t.Fatalf("first post-restart commit ordinal %d, want the cut's CommitIdx 2", firstRound)
	}
	if len(res.PerTask) != 2 || res.PerTask[0].TaskIdx != 0 || res.PerTask[1].TaskIdx != 1 {
		t.Fatalf("per-task points %+v, want tasks 0 and 1 exactly once", res.PerTask)
	}
	if len(res.DeadAfter) != 0 {
		t.Fatalf("DeadAfter = %v, want empty — both clients rejoined", res.DeadAfter)
	}
	if srv2.AliveClients() != 2 {
		t.Fatalf("%d alive clients, want the cohort restored to 2", srv2.AliveClients())
	}
	if got := res.Matrix.Acc[0][0]; got != 0.7 {
		t.Fatalf("task-0 accuracy %v, want the rejoined cohort's mean 0.7", got)
	}
}

// TestServerSnapshotRestoresMidWindow pins the open-window half of the
// crash-only contract, for both the single-loop and the sharded aggregator:
// a server killed after folding 2 of the 3 updates of a CommitEvery=3 window
// leaves a mid-window cut behind (the partial sums, not just the last
// commit); the restored server's Catchup says Seen=2 — the client retrains
// nothing — and the commit closed by the one remaining upload is bitwise the
// commit the uninterrupted run would have made.
func TestServerSnapshotRestoresMidWindow(t *testing.T) {
	// n is large enough that the three updates' union stays under the
	// aggregators' sparse→full switchover, so the sparse capture regime is
	// what round-trips through the cut.
	const n = 40
	mkUpdate := func(i int, base uint64) *Update {
		sp := []*tensor.SparseVec{
			{N: n, Indices: []int32{0, 2}, Values: []float32{1.5, -2}},
			{N: n, Indices: []int32{2, 39}, Values: []float32{0.25, 3}},
			{N: n, Indices: []int32{1, 2}, Values: []float32{-0.5, 1.25}},
		}[i]
		return &Update{ClientID: 0, Participating: true, Weight: 1, BaseVersion: base, Sparse: sp}
	}
	// The uninterrupted reference: all three updates through one window.
	ref := &SparseFedAvg{}
	want := append([]float32(nil), ref.Aggregate([]*Update{mkUpdate(0, 0), mkUpdate(1, 0), mkUpdate(2, 0)})...)

	for _, shards := range []int{0, 4} {
		logf, _ := watchLogs()
		cfg := ServerConfig{
			Method: "test", NumTasks: 1, Rounds: 3, Scheduler: SchedulerAsync,
			Async:  AsyncConfig{CommitEvery: 3},
			Shards: shards,
			Logf:   logf,
		}
		sink := &memSink{}
		s0, c0 := LoopbackCap(64)
		srv := NewServer(cfg, nil, []Transport{s0})
		srv.SetSnapshots(sink)
		ctx, crash := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := srv.Run(ctx)
			done <- err
		}()

		recvRoundStart(t, c0)
		if err := c0.Send(mkUpdate(0, 0)); err != nil {
			t.Fatal(err)
		}
		if err := c0.Send(mkUpdate(1, 0)); err != nil {
			t.Fatal(err)
		}
		// Wait for the second mid-window cut to be durable, then crash: two
		// folds live only in aggregator scratch and the cut.
		snap := sink.waitFor(t, "open window holding 2 updates", func(s *checkpoint.ServerSnapshot) bool {
			return s.WindowCount == 2
		})
		crash()
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Fatalf("shards=%d: crashed run returned %v", shards, err)
		}
		c0.Close()

		if snap.Version != 0 || snap.Seats[0].Seen != 2 || snap.WindowDense || snap.WindowTotal != 2 {
			t.Fatalf("shards=%d: mid-window cut %+v, want v0, Seen 2, sparse window of total weight 2", shards, &snap)
		}
		if len(snap.WindowIdx) != len(snap.WindowVals) || len(snap.WindowIdx) == 0 {
			t.Fatalf("shards=%d: window carries %d indices, %d values", shards, len(snap.WindowIdx), len(snap.WindowVals))
		}

		srv2, err := NewServerFromSnapshot(cfg, nil, &snap)
		if err != nil {
			t.Fatalf("shards=%d: restore: %v", shards, err)
		}
		rejoins := make(chan RejoinRequest, 1)
		srv2.SetRejoins(rejoins)
		sink2 := &memSink{}
		srv2.SetSnapshots(sink2)
		done2 := make(chan *Result, 1)
		go func() {
			res, err := srv2.Run(context.Background())
			if err != nil {
				t.Errorf("shards=%d: restored run: %v", shards, err)
			}
			done2 <- res
		}()

		sR, cR := LoopbackCap(64)
		rejoins <- RejoinRequest{ClientID: 0, LastVersion: 0, Link: sR}
		cu := recvCatchup(t, cR)
		if cu.Seen != 2 || cu.TaskIdx != 0 {
			t.Fatalf("shards=%d: catch-up %+v, want task 0 with 2 uploads already in — nothing retrained", shards, cu)
		}
		if err := cR.Send(mkUpdate(2, 0)); err != nil {
			t.Fatal(err)
		}
		gm := recvGlobal(t, cR)
		if gm.Version != 1 {
			t.Fatalf("shards=%d: post-restore commit at v%d, want v1", shards, gm.Version)
		}
		if len(gm.Params) != n {
			t.Fatalf("shards=%d: commit carries %d params, want %d", shards, len(gm.Params), n)
		}
		for i := range want {
			if gm.Params[i] != want[i] {
				t.Fatalf("shards=%d: restored commit[%d] = %v, uninterrupted %v — the mid-window fold must resume bitwise",
					shards, i, gm.Params[i], want[i])
			}
		}
		// The write-ahead cut of that commit must record an emptied window:
		// restoring it resumes after the commit, not inside it.
		commitCut := sink2.waitFor(t, "commit cut at v1", func(s *checkpoint.ServerSnapshot) bool {
			return s.Version == 1
		})
		if commitCut.WindowCount != 0 || len(commitCut.WindowVals) != 0 {
			t.Fatalf("shards=%d: commit cut still holds a %d-update window", shards, commitCut.WindowCount)
		}
		final := recvGlobal(t, cR)
		if !final.TaskFinal {
			t.Fatalf("shards=%d: expected the task-final broadcast", shards)
		}
		cR.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.5}})
		res := <-done2
		if len(res.PerTask) != 1 || res.DeadAfter[0] != 0 && len(res.DeadAfter) != 0 {
			t.Fatalf("shards=%d: restored run books %+v", shards, res)
		}
	}
}

// TestSnapshotWriteAheadOfBroadcast pins the crash-consistency invariant
// directly: by the time a client receives a GlobalModel at version v, a cut
// at version v is already in the sink. Without this ordering a crash between
// broadcast and snapshot would restore a server behind its own cohort, and
// the first resumed upload (BaseVersion > server version) would abort the
// run as a protocol violation.
func TestSnapshotWriteAheadOfBroadcast(t *testing.T) {
	sink := &memSink{}
	logf, _ := watchLogs()
	s0, c0 := LoopbackCap(64)
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 2, Scheduler: SchedulerAsync,
		Async: AsyncConfig{CommitEvery: 1},
		Logf:  logf,
	}, nil, []Transport{s0})
	srv.SetSnapshots(sink)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := srv.Run(context.Background()); err != nil {
			t.Errorf("server: %v", err)
		}
	}()

	recvRoundStart(t, c0)
	if !sink.hasVersion(0) {
		t.Fatal("no genesis cut at version 0 before the first commit")
	}
	base := uint64(0)
	for i := 0; i < 2; i++ {
		sendUpdate(t, c0, 0, base, float32(i+1))
		gm := recvGlobal(t, c0)
		if !sink.hasVersion(gm.Version) {
			t.Fatalf("received broadcast v%d before its cut was durable", gm.Version)
		}
		base = gm.Version
	}
	recvGlobal(t, c0) // task-final
	c0.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.5}})
	<-done
}

// TestServerRestoreValidation: a snapshot only restores into a run shape it
// actually fits — the async scheduler (lockstep has no rejoin splice point),
// the same cohort size, a sane resume task, and a global model to replay.
func TestServerRestoreValidation(t *testing.T) {
	good := func() *checkpoint.ServerSnapshot {
		return &checkpoint.ServerSnapshot{
			Version: 1, TaskIdx: 0, Global: []float32{1},
			Seats: make([]checkpoint.SeatRecord, 2),
		}
	}
	async := ServerConfig{Method: "test", NumTasks: 2, Rounds: 1,
		Scheduler: SchedulerAsync, Async: AsyncConfig{CommitEvery: 1}}

	if _, err := NewServerFromSnapshot(ServerConfig{Method: "test", NumTasks: 2, Rounds: 1}, nil, good()); err == nil {
		t.Fatal("restoring a sync run must be refused, not hang waiting for rejoins")
	}
	cfg := async
	cfg.NumClients = 3
	if _, err := NewServerFromSnapshot(cfg, nil, good()); err == nil {
		t.Fatal("a 2-seat snapshot must not restore into a 3-client run")
	}
	snap := good()
	snap.TaskIdx = 5
	if _, err := NewServerFromSnapshot(async, nil, snap); err == nil {
		t.Fatal("a resume task beyond NumTasks must be refused")
	}
	snap = good()
	snap.Global = nil
	if _, err := NewServerFromSnapshot(async, nil, snap); err == nil {
		t.Fatal("a committed version with no global model must be refused")
	}
	snap = good()
	snap.Tasks = make([]checkpoint.TaskRecord, 2)
	if _, err := NewServerFromSnapshot(async, nil, snap); err == nil {
		t.Fatal("2 completed tasks resuming at task 0 must be refused")
	}
	if _, err := NewServerFromSnapshot(async, nil, good()); err != nil {
		t.Fatalf("a consistent snapshot must restore: %v", err)
	}
}

// TestReconnectJitterDeterministic pins the rejoin backoff jitter: full
// jitter in [d/2, d), reproducible per client across runs, decorrelated
// across clients — a restart disconnects the whole cohort at once, and
// phase-locked retry waves would slam the recovering listener together.
func TestReconnectJitterDeterministic(t *testing.T) {
	schedule := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond,
	}
	draw := func(id int) []time.Duration {
		rng := tensor.NewRNG(reconnectJitterSeed(id))
		out := make([]time.Duration, len(schedule))
		for i, d := range schedule {
			out[i] = jitterDelay(rng, d)
		}
		return out
	}
	a, b := draw(1), draw(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("client 1 draw %d: %v vs %v — jitter must be reproducible per client", i, a[i], b[i])
		}
		if a[i] < schedule[i]/2 || a[i] >= schedule[i] {
			t.Fatalf("draw %d = %v outside [%v, %v)", i, a[i], schedule[i]/2, schedule[i])
		}
	}
	c := draw(2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("clients 1 and 2 drew identical jitter schedules — the herd stays phase-locked")
	}
	if got := jitterDelay(tensor.NewRNG(1), 0); got != 0 {
		t.Fatalf("zero delay jittered to %v", got)
	}
}

// TestServerCrashRestartRecovers is the end-to-end crash bar over real TCP:
// the server process "dies" mid-task (run cancelled, listener closed), a
// replacement is rebuilt from the newest durable snapshot on the same
// address, and the reconnecting clients redial through the rejoin path and
// finish the run — every task reported exactly once across the process
// boundary, no seat lost, accounting carried over.
func TestServerCrashRestartRecovers(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(42)
	cfg.Scheduler = SchedulerAsync
	cfg.Async = AsyncConfig{CommitEvery: 1, StalenessAlpha: 0.5}
	fp := cfg.Fingerprint()
	factory := func(ctx *ClientCtx) Strategy { return &passthrough{ctx: ctx} }
	dir := t.TempDir()
	store, err := checkpoint.OpenStore(dir, 2, fp)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	var wg sync.WaitGroup
	for i := range seqs {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := NewWireClient(cfg, id, len(seqs), cluster.Devices[id], seqs[id], build, factory)
			err := c.RunReconnect(context.Background(), Reconnect{
				Addr: addr, Fingerprint: fp,
				Attempts: 400, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond,
			})
			if err != nil {
				t.Errorf("client %d: %v", id, err)
			}
		}(i)
	}

	// Incarnation one: snapshots on, killed at the first commit of task 1.
	links, acceptor, err := ServeRejoin(ln, len(seqs), fp)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	logf, _ := watchLogs()
	scfg := cfg.ServerConfigFor(len(seqs), len(seqs[0]))
	scfg.Logf = logf
	srv := NewServer(scfg, nil, links)
	srv.SetRejoins(acceptor.Rejoins())
	srv.SetSnapshots(store)
	crashCtx, crash := context.WithCancel(context.Background())
	var kill sync.Once
	srv.SetObserver(ObserverFuncs{Round: func(s RoundStats) {
		if s.TaskIdx >= 1 && s.Participants > 0 {
			kill.Do(crash)
		}
	}})
	if _, err := srv.Run(crashCtx); err == nil {
		t.Fatal("killed run must return its cancellation, not complete")
	}
	acceptor.Close()

	// Incarnation two: rebind the same address (clients are redialing it),
	// reopen the store like a fresh process, restore, and accept rejoins.
	var ln2 net.Listener
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	store2, err := checkpoint.OpenStore(dir, 2, fp)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := store2.Load()
	if err != nil {
		t.Fatalf("loading the crash cut: %v", err)
	}
	if snap == nil || snap.Version == 0 {
		t.Fatalf("crash cut %+v, want a committed snapshot on disk", snap)
	}
	srv2, err := NewServerFromSnapshot(scfg, nil, snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	acceptor2 := AcceptRejoins(ln2, len(seqs), fp, WireOptions{})
	defer acceptor2.Close()
	srv2.SetRejoins(acceptor2.Rejoins())
	srv2.SetSnapshots(store2)
	res, err := srv2.Run(context.Background())
	if err != nil {
		t.Fatalf("restored run must complete: %v", err)
	}
	wg.Wait()

	if len(res.PerTask) != 3 {
		t.Fatalf("%d task points, want all 3 exactly once across the restart", len(res.PerTask))
	}
	for i, tp := range res.PerTask {
		if tp.TaskIdx != i {
			t.Fatalf("task point %d reports task %d — duplicated or skipped across the restart", i, tp.TaskIdx)
		}
		if tp.AvgAccuracy <= 0 {
			t.Fatalf("task %d accuracy %v: the restored cohort's reports must land", i, tp.AvgAccuracy)
		}
	}
	if srv2.AliveClients() != len(seqs) {
		t.Fatalf("%d alive clients, want the cohort restored to %d", srv2.AliveClients(), len(seqs))
	}
	if len(res.DeadAfter) != 0 {
		t.Fatalf("DeadAfter = %v, want empty — every client rejoined the restarted server", res.DeadAfter)
	}
	sent, recv := srv2.WireTraffic()
	if sent == 0 || recv == 0 {
		t.Fatalf("measured traffic %d/%d, want non-zero including the pre-crash carry", sent, recv)
	}
}

// TestRobustRestartDropsWindowLoudly pins the honest failure mode of the
// crash-only contract under a robust rule: a buffered aggregator (median and
// friends) cannot export an open commit window as partial sums, so a cut
// taken mid-window carries only the window's accounting. On restart those
// folded-but-uncommitted uploads are gone — the restored server must say so
// in the log AND count them in Server.DroppedWindowUploads, never silently
// absorb the loss. The run itself still completes: the rejoined client's
// remaining quota closes the restarted (empty) window.
func TestRobustRestartDropsWindowLoudly(t *testing.T) {
	logf, _ := watchLogs()
	cfg := ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 3, Scheduler: SchedulerAsync,
		Async:  AsyncConfig{CommitEvery: 3},
		Robust: "median",
		Logf:   logf,
	}
	sink := &memSink{}
	s0, c0 := LoopbackCap(64)
	srv := NewServer(cfg, nil, []Transport{s0})
	srv.SetSnapshots(sink)
	ctx, crash := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(ctx)
		done <- err
	}()

	recvRoundStart(t, c0)
	sendUpdate(t, c0, 0, 0, 10)
	sendUpdate(t, c0, 0, 0, 20)
	// Two of the window's three updates are folded — buffered inside the
	// robust rule, with only their count in the cut — when the crash hits.
	snap := sink.waitFor(t, "open window holding 2 updates", func(s *checkpoint.ServerSnapshot) bool {
		return s.WindowCount == 2
	})
	crash()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("crashed run returned %v, want context.Canceled", err)
	}
	c0.Close()

	if snap.Version != 0 || snap.WindowCount != 2 || len(snap.WindowIdx) != 0 || len(snap.WindowVals) != 0 {
		t.Fatalf("mid-window robust cut %+v, want v0 with count 2 and no partial sums "+
			"(buffered rules cannot export an open window)", &snap)
	}
	if snap.Seats[0].Seen != 2 {
		t.Fatalf("cut says seat 0 delivered %d uploads, want the authoritative 2", snap.Seats[0].Seen)
	}

	logf2, waitLog2 := watchLogs()
	cfg.Logf = logf2
	srv2, err := NewServerFromSnapshot(cfg, nil, &snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	rejoins := make(chan RejoinRequest, 1)
	srv2.SetRejoins(rejoins)
	done2 := make(chan *Result, 1)
	go func() {
		res, err := srv2.Run(context.Background())
		if err != nil {
			t.Errorf("restored run: %v", err)
		}
		done2 <- res
	}()
	// The drop must be loud: one log line naming the rule and the count...
	waitLog2(t, "cannot restore an open commit window; dropping 2 buffered uploads")

	sR, cR := LoopbackCap(64)
	rejoins <- RejoinRequest{ClientID: 0, LastVersion: 0, Link: sR}
	cu := recvCatchup(t, cR)
	if cu.TaskIdx != 0 || cu.Seen != 2 {
		t.Fatalf("catch-up %+v, want task 0 with the cut's 2 uploads still credited", cu)
	}
	// ...and the client retrains nothing: its one remaining upload closes
	// the restarted window, so the commit is the median of that upload alone.
	sendUpdate(t, cR, 0, 0, 42)
	if gm := recvGlobal(t, cR); gm.Version != 1 || gm.Params[0] != 42 {
		t.Fatalf("post-restart commit v%d %v, want v1 [42] — the dropped folds must not leak in",
			gm.Version, gm.Params)
	}
	if f := recvGlobal(t, cR); !f.TaskFinal {
		t.Fatalf("quota complete, want the task-final broadcast, got %+v", f)
	}
	cR.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.9}})

	res := <-done2
	// ...and countable after the fact, for operators and CI alike.
	if got := srv2.DroppedWindowUploads(); got != 2 {
		t.Fatalf("DroppedWindowUploads() = %d, want the 2 buffered uploads the cut could not carry", got)
	}
	if srv.DroppedWindowUploads() != 0 {
		t.Fatalf("the crashed server counted %d dropped uploads, want 0 (it never restored)",
			srv.DroppedWindowUploads())
	}
	if len(res.PerTask) != 1 || res.Matrix.Get(0, 0) != 0.9 {
		t.Fatalf("restored run books: %+v, matrix %v — the run must still complete",
			res.PerTask, res.Matrix.Get(0, 0))
	}
	cR.Close()
}
