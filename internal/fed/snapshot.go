package fed

import (
	"fmt"
	"io"

	"repro/internal/checkpoint"
)

// SnapshotSink receives the server's durable state cuts — the crash-only
// seam between internal/fed and internal/checkpoint. Save is called on the
// scheduler goroutine at run start (the genesis cut), write-ahead of every
// commit's broadcast (so no client can ever hold a global version newer
// than the latest snapshot), and at every task boundary. The snapshot's
// slices alias live server state and are only valid for the duration of
// the call: serialise or copy before returning. checkpoint.Store
// implements this interface.
type SnapshotSink interface {
	// Save durably persists one snapshot.
	Save(*checkpoint.ServerSnapshot) error
}

// SetSnapshots installs the durable snapshot sink; call before Run. A
// mid-run Save failure is logged loudly and the run continues — losing
// future restartability is better than aborting live training — so probe
// the sink's health at startup (checkpoint.OpenStore does).
func (s *Server) SetSnapshots(sink SnapshotSink) { s.snap = sink }

// snapshotFiller is implemented by schedulers that contribute their
// policy-owned state (clocks, upload counts, the committed global) to a
// snapshot. boundary marks a task-boundary cut: the in-progress task's
// counters (Seen, CommitIdx) are zeroed because snap.TaskIdx already names
// the next task.
type snapshotFiller interface {
	fillSnapshot(snap *checkpoint.ServerSnapshot, boundary bool)
}

// snapshotRestorer is implemented by schedulers that can reconstruct their
// state from a snapshot cut; only the asynchronous scheduler does (lockstep
// has no rejoin splice point, so a restarted sync server has no way to
// re-admit its cohort).
type snapshotRestorer interface {
	restoreSnapshot(s *Server, snap *checkpoint.ServerSnapshot)
}

// windowedAggregator is implemented by streaming aggregators whose open
// round can be captured into a snapshot and reinstated after a restart —
// what lets the asynchronous scheduler cut a snapshot after every accepted
// upload and resume the commit window mid-fill instead of discarding up to
// CommitEvery−1 folded updates. SparseFedAvg and ShardedFedAvg implement it.
type windowedAggregator interface {
	// windowState exports the open round's raw (unscaled) partial
	// accumulation: the whole scratch vector (idx nil, dense true) or the
	// ascending touched-coordinate union and its partial sums. The returned
	// slices alias aggregator scratch and are only valid until the next
	// Accumulate — snapshot serialisation copies them before returning.
	windowState() (idx []int32, vals []float32, dense bool, total float64)
	// restoreWindow reinstates a captured partial accumulation into a
	// freshly begun round of an n-parameter model, so subsequent
	// Accumulates stack on top exactly as they would have on the
	// uninterrupted originals (bitwise).
	restoreWindow(n int, idx []int32, vals []float32, dense bool, total float64, count int)
}

// snapshot builds and persists one durable cut. resumeTask is the task a
// restarted server should resume at: the in-progress task for a commit cut,
// the next task for a boundary cut.
func (s *Server) snapshot(res *Result, resumeTask int, boundary bool) {
	if s.snap == nil {
		return
	}
	wireSent, wireRecv := s.WireTraffic()
	snap := &checkpoint.ServerSnapshot{
		Version:     s.version,
		TaskIdx:     resumeTask,
		SimSeconds:  s.simSeconds,
		CommSeconds: s.commSeconds,
		UpBytes:     s.upBytes,
		DownBytes:   s.downBytes,
		WireSent:    wireSent,
		WireRecv:    wireRecv,
		Seats:       make([]checkpoint.SeatRecord, len(s.links)),
	}
	for i := range snap.Seats {
		rec := &snap.Seats[i]
		rec.Alive = s.alive[i]
		rec.Left = s.left[i]
		if at, dead := res.DeadAfter[i]; dead {
			rec.Dead = true
			rec.DeadAtTask = at
		}
	}
	for _, tp := range res.PerTask {
		snap.Tasks = append(snap.Tasks, checkpoint.TaskRecord{
			TaskIdx:        tp.TaskIdx,
			AvgAccuracy:    tp.AvgAccuracy,
			ForgettingRate: tp.ForgettingRate,
			SimHours:       tp.SimHours,
			CommHours:      tp.CommHours,
			UpBytes:        tp.UpBytes,
			DownBytes:      tp.DownBytes,
		})
	}
	for i := 0; i < len(res.PerTask) && i < len(res.Matrix.Acc); i++ {
		snap.Matrix = append(snap.Matrix, res.Matrix.Acc[i])
	}
	if f, ok := s.sched.(snapshotFiller); ok {
		f.fillSnapshot(snap, boundary)
	}
	if err := s.snap.Save(snap); err != nil {
		s.logf("fed: SNAPSHOT SAVE FAILED at task %d version %d — a crash from here loses progress back to the previous snapshot: %v",
			resumeTask, s.version, err)
	}
}

// deadLink is the placeholder transport of a seat restored from a snapshot:
// the client is expected to redial through the rejoin path, so until it
// does the seat has no connection. Send and Recv fail like a closed pipe;
// Close is a no-op, keeping the server's unconditional teardown paths safe.
type deadLink struct{}

// Send fails: a restored seat has no connection until its client rejoins.
func (deadLink) Send(Msg) error { return io.ErrClosedPipe }

// Recv fails: a restored seat has no connection until its client rejoins.
func (deadLink) Recv() (Msg, error) { return nil, io.ErrClosedPipe }

// Close is a no-op.
func (deadLink) Close() error { return nil }

// NewServerFromSnapshot rebuilds a server from a durable snapshot cut — the
// restart half of the crash-only design. Every seat starts evicted behind a
// dead placeholder link; the restored scheduler waits for each seat that
// was alive at the cut to re-admit itself through the rejoin path
// (Server.SetRejoins, normally fed to AcceptRejoins' channel), replaying a
// phase-aware Catchup built from the snapshot's authoritative Seen counts.
// Requires the asynchronous scheduler: lockstep has no rejoin splice point,
// so restoring a sync run is refused with an error rather than silently
// hanging. The caller re-installs sinks and observers (SetSnapshots,
// SetObserver) before Run.
func NewServerFromSnapshot(cfg ServerConfig, agg Aggregator, snap *checkpoint.ServerSnapshot) (*Server, error) {
	if cfg.Scheduler != SchedulerAsync {
		return nil, fmt.Errorf("fed: restart recovery requires the async scheduler (lockstep has no rejoin splice point to re-admit the cohort through)")
	}
	if len(snap.Seats) < cfg.NumClients {
		// Fewer seats than the configured initial cohort means the snapshot
		// belongs to a different (smaller) run. More seats is legitimate:
		// elastic membership grew the book past the initial cohort, and the
		// restored server must carry every seat it admitted.
		return nil, fmt.Errorf("fed: snapshot holds %d seats, config says %d clients", len(snap.Seats), cfg.NumClients)
	}
	if cfg.MaxCohort != 0 && cfg.MaxCohort < len(snap.Seats) {
		return nil, fmt.Errorf("fed: snapshot holds %d seats, above -max-cohort %d", len(snap.Seats), cfg.MaxCohort)
	}
	cfg.NumClients = len(snap.Seats)
	if snap.TaskIdx > cfg.NumTasks {
		return nil, fmt.Errorf("fed: snapshot resumes at task %d of a %d-task run", snap.TaskIdx, cfg.NumTasks)
	}
	if snap.Version > 0 && len(snap.Global) == 0 {
		return nil, fmt.Errorf("fed: snapshot at version %d carries no global model", snap.Version)
	}
	if len(snap.Tasks) != snap.TaskIdx && len(snap.Tasks) != snap.TaskIdx+1 {
		// A commit cut mid-task T has T completed tasks; resuming at T. A
		// boundary cut after task T has T+1 completed tasks; resuming at T+1.
		return nil, fmt.Errorf("fed: snapshot resumes at task %d but records %d completed tasks", snap.TaskIdx, len(snap.Tasks))
	}
	if snap.WindowCount > 0 {
		if snap.WindowDense {
			if len(snap.WindowIdx) != 0 || len(snap.WindowVals) != snap.ParamLen {
				return nil, fmt.Errorf("fed: snapshot's dense open window carries %d indices and %d values for %d parameters",
					len(snap.WindowIdx), len(snap.WindowVals), snap.ParamLen)
			}
		} else {
			if len(snap.WindowIdx) != len(snap.WindowVals) {
				return nil, fmt.Errorf("fed: snapshot's open window carries %d indices but %d values",
					len(snap.WindowIdx), len(snap.WindowVals))
			}
			prev := int32(-1)
			for _, j := range snap.WindowIdx {
				if j <= prev || int(j) >= snap.ParamLen {
					return nil, fmt.Errorf("fed: snapshot's open-window indices are not ascending in-range coordinates (index %d after %d, %d parameters)",
						j, prev, snap.ParamLen)
				}
				prev = j
			}
		}
	}
	links := make([]Transport, cfg.NumClients)
	for i := range links {
		links[i] = deadLink{}
	}
	s := NewServer(cfg, agg, links)
	for i := range s.alive {
		s.alive[i] = false
	}
	s.version = snap.Version
	s.simSeconds = snap.SimSeconds
	s.commSeconds = snap.CommSeconds
	s.upBytes = snap.UpBytes
	s.downBytes = snap.DownBytes
	s.retiredSent = snap.WireSent
	s.retiredRecv = snap.WireRecv
	s.resume = snap
	return s, nil
}

// restoreResult pre-populates a fresh Result with the snapshot's completed
// tasks: the per-task summary points, the completed accuracy-matrix rows,
// and the recorded deaths.
func restoreResult(res *Result, snap *checkpoint.ServerSnapshot) error {
	for _, t := range snap.Tasks {
		res.PerTask = append(res.PerTask, TaskPoint{
			TaskIdx:        t.TaskIdx,
			AvgAccuracy:    t.AvgAccuracy,
			ForgettingRate: t.ForgettingRate,
			SimHours:       t.SimHours,
			CommHours:      t.CommHours,
			UpBytes:        t.UpBytes,
			DownBytes:      t.DownBytes,
		})
	}
	for i, row := range snap.Matrix {
		if i >= len(res.Matrix.Acc) || len(row) != i+1 {
			return fmt.Errorf("fed: snapshot matrix row %d has %d entries, want %d", i, len(row), i+1)
		}
		copy(res.Matrix.Acc[i], row)
	}
	for id, seat := range snap.Seats {
		if seat.Dead {
			res.DeadAfter[id] = seat.DeadAtTask
		}
	}
	return nil
}
