// Package fed is the federated continual-learning simulation engine. It
// drives the protocol of §III-A: each client owns a private task sequence;
// every task is trained for r aggregation rounds of v local iterations; the
// server aggregates with FedAvg and broadcasts the global model. The engine
// accounts communication volume (bytes), simulated wall-clock time through
// the device model, and per-task accuracy matrices, which is everything the
// paper's figures plot.
package fed

import (
	"runtime"
	"sync"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// ClientCtx is everything a strategy can see inside one client.
type ClientCtx struct {
	ID         int
	NumClients int
	Model      *model.Model
	Opt        *opt.SGD
	RNG        *tensor.RNG
	NumClasses int
}

// Strategy is one training method (FedKNOW or a baseline) running inside a
// client. The engine calls the hooks in protocol order; BaseStrategy
// provides no-op defaults so methods implement only what they need.
type Strategy interface {
	// Name identifies the method in reports.
	Name() string
	// TrainStep performs one local iteration on the batch (forward,
	// backward, possibly gradient surgery, optimizer step) and returns the
	// task loss.
	TrainStep(x *tensor.Tensor, labels []int, classes []int) float64
	// AfterAggregate runs after the server's global model has been
	// installed; preAgg is the client's flat parameter vector from before
	// aggregation. FedKNOW fine-tunes here (§III-A), APFL mixes models.
	AfterAggregate(preAgg []float32, ct data.ClientTask)
	// TaskEnd runs after a task's final round (knowledge extraction,
	// memory updates, importance estimation).
	TaskEnd(ct data.ClientTask)
	// AggregateMask selects which parameters the server aggregates; nil
	// means all (FedRep masks its head layers out).
	AggregateMask() []bool
	// ExtraUploadBytes / ExtraDownloadBytes report per-round communication
	// beyond the dense model payload (FedWEIT's adaptive-weight pool).
	ExtraUploadBytes() int
	ExtraDownloadBytes() int
	// MemoryBytes is the method's retained state (samples, knowledge,
	// importance matrices), charged against device memory.
	MemoryBytes() int
	// OverheadFLOPs is extra per-iteration compute beyond the plain
	// forward+backward (restored gradients, QP solves, penalty terms),
	// charged against device speed.
	OverheadFLOPs() float64
}

// BaseStrategy provides default no-op hook implementations.
type BaseStrategy struct{}

// AfterAggregate does nothing.
func (BaseStrategy) AfterAggregate([]float32, data.ClientTask) {}

// TaskEnd does nothing.
func (BaseStrategy) TaskEnd(data.ClientTask) {}

// AggregateMask aggregates everything.
func (BaseStrategy) AggregateMask() []bool { return nil }

// ExtraUploadBytes is zero.
func (BaseStrategy) ExtraUploadBytes() int { return 0 }

// ExtraDownloadBytes is zero.
func (BaseStrategy) ExtraDownloadBytes() int { return 0 }

// MemoryBytes is zero.
func (BaseStrategy) MemoryBytes() int { return 0 }

// OverheadFLOPs is zero.
func (BaseStrategy) OverheadFLOPs() float64 { return 0 }

// Factory builds a strategy for one client.
type Factory func(ctx *ClientCtx) Strategy

// Config drives one federated continual-learning run.
type Config struct {
	Method      string
	Rounds      int // aggregation rounds per task (r)
	LocalIters  int // local iterations per round (v)
	BatchSize   int
	LR          float64
	LRDecay     float64
	NumClasses  int
	Bandwidth   float64 // bytes/second per client link
	MemScale    float64 // sim-bytes → real-bytes multiplier for OOM checks
	Seed        uint64
	Parallelism int // concurrent clients; 0 = GOMAXPROCS
	// DropoutProb is the per-round probability that a client goes offline
	// for that round (skips local training and aggregation) — the failure
	// injection used to check that FedAvg-style protocols tolerate edge
	// churn. 0 disables dropout.
	DropoutProb float64
}

// client is the engine's per-client state.
type client struct {
	ctx      *ClientCtx
	strategy Strategy
	seq      []data.ClientTask
	dev      device.Device
	alive    bool
	offline  bool // this round only (dropout injection)
	// batching state
	order []int
	cur   int
	// aggregation scratch, reused every round
	flatBuf   []float32
	mergedBuf []float32
}

// Result aggregates a run's outputs.
type Result struct {
	Method    string
	PerTask   []TaskPoint
	Matrix    *metrics.Matrix // averaged over alive clients
	DeadAfter map[int]int     // client id → task index at which it OOMed
}

// TaskPoint is the measured state after finishing task index TaskIdx.
type TaskPoint struct {
	TaskIdx        int
	AvgAccuracy    float64 // mean over clients of mean accuracy on learned tasks
	ForgettingRate float64
	SimHours       float64 // cumulative simulated training+comm time
	CommHours      float64 // cumulative simulated communication time only
	UpBytes        int64   // cumulative
	DownBytes      int64
}

// Engine runs the simulation.
type Engine struct {
	cfg     Config
	clients []*client
	cluster *device.Cluster
	dropRNG *tensor.RNG

	simSeconds  float64
	commSeconds float64
	upBytes     int64
	downBytes   int64

	// aggregation scratch, reused every round
	preBuf    [][]float32
	globalBuf []float32
}

// NewEngine builds clients: one model per client from the builder, the
// strategy from the factory, and the device from the cluster (round-robin if
// the cluster is smaller than the client count).
func NewEngine(cfg Config, cluster *device.Cluster, seqs [][]data.ClientTask,
	build func(rng *tensor.RNG) *model.Model, factory Factory) *Engine {
	e := &Engine{cfg: cfg, cluster: cluster, dropRNG: tensor.NewRNG(cfg.Seed ^ 0xD209)}
	root := tensor.NewRNG(cfg.Seed)
	// All clients start from the same initial weights (§V-B common training
	// settings): build one reference model and copy its parameters.
	ref := build(root.Fork(0xC0FFEE))
	refFlat := nn.FlattenParams(ref.Params())
	for i, seq := range seqs {
		rng := root.Fork(uint64(i) + 1)
		m := build(rng.Fork(7))
		nn.SetFlatParams(m.Params(), refFlat)
		ctx := &ClientCtx{
			ID:         i,
			NumClients: len(seqs),
			Model:      m,
			Opt:        opt.NewSGD(opt.Inv{Base: cfg.LR, Decay: cfg.LRDecay}, 0, 0),
			RNG:        rng,
			NumClasses: cfg.NumClasses,
		}
		e.clients = append(e.clients, &client{
			ctx:      ctx,
			strategy: factory(ctx),
			seq:      seq,
			dev:      cluster.Devices[i%cluster.Size()],
			alive:    true,
		})
	}
	return e
}

// Run executes the full task sequence and returns the result.
func (e *Engine) Run() *Result {
	numTasks := len(e.clients[0].seq)
	res := &Result{
		Method:    e.cfg.Method,
		Matrix:    metrics.NewMatrix(numTasks),
		DeadAfter: map[int]int{},
	}
	for taskIdx := 0; taskIdx < numTasks; taskIdx++ {
		e.trainTask(taskIdx, res)
		e.evaluate(taskIdx, res)
		tp := TaskPoint{
			TaskIdx:        taskIdx,
			AvgAccuracy:    res.Matrix.AvgAccuracy(taskIdx),
			ForgettingRate: res.Matrix.ForgettingRate(taskIdx),
			SimHours:       e.simSeconds / 3600,
			CommHours:      e.commSeconds / 3600,
			UpBytes:        e.upBytes,
			DownBytes:      e.downBytes,
		}
		res.PerTask = append(res.PerTask, tp)
	}
	return res
}

// trainTask runs r aggregation rounds for the task at position taskIdx of
// every client's sequence.
func (e *Engine) trainTask(taskIdx int, res *Result) {
	for _, c := range e.clients {
		if !c.alive {
			continue
		}
		c.order = nil
		c.cur = 0
	}
	for round := 0; round < e.cfg.Rounds; round++ {
		// Failure injection: each client may drop out of this round.
		anyOnline := false
		for _, c := range e.clients {
			c.offline = c.alive && e.cfg.DropoutProb > 0 && e.dropRNG.Float64() < e.cfg.DropoutProb
			if c.alive && !c.offline {
				anyOnline = true
			}
		}
		if !anyOnline {
			// Keep the protocol alive: at least one participant per round.
			for _, c := range e.clients {
				if c.alive {
					c.offline = false
					break
				}
			}
		}
		// Local training, clients in parallel.
		e.forEachAlive(func(c *client) {
			ct := c.seq[taskIdx]
			for it := 0; it < e.cfg.LocalIters; it++ {
				x, labels := c.nextBatch(ct, e.cfg.BatchSize)
				c.strategy.TrainStep(x, labels, ct.Classes)
			}
		})
		// Time accounting: synchronous rounds bound by the slowest client.
		var worstCompute, worstComm float64
		for _, c := range e.clients {
			if !c.alive || c.offline {
				continue
			}
			work := c.ctx.Model.FLOPsPerSample() * 3 * float64(e.cfg.BatchSize*e.cfg.LocalIters)
			work += c.strategy.OverheadFLOPs() * float64(e.cfg.LocalIters)
			if t := c.dev.TrainTime(work); t > worstCompute {
				worstCompute = t
			}
			extraUp := c.strategy.ExtraUploadBytes()
			extraDown := c.strategy.ExtraDownloadBytes()
			payload := int64(c.ctx.Model.ParamBytes()*2 + extraUp + extraDown)
			if t := device.CommTime(payload, e.cfg.Bandwidth); t > worstComm {
				worstComm = t
			}
			e.upBytes += int64(c.ctx.Model.ParamBytes() + extraUp)
			e.downBytes += int64(c.ctx.Model.ParamBytes() + extraDown)
		}
		e.simSeconds += worstCompute + worstComm
		e.commSeconds += worstComm

		// Aggregation (FedAvg weighted by client training-sample counts).
		e.aggregate(taskIdx)
	}
	for _, c := range e.clients {
		c.offline = false
	}
	// Task end: extraction, memory updates, then the OOM check the paper's
	// heterogeneity study exercises (FedWEIT exhausts the 2 GB Pi's memory
	// after ~7 tasks).
	for _, c := range e.clients {
		if !c.alive {
			continue
		}
		c.strategy.TaskEnd(c.seq[taskIdx])
		if e.cfg.MemScale > 0 {
			used := float64(c.ctx.Model.ParamBytes()*4+c.strategy.MemoryBytes()) * e.cfg.MemScale
			if used > float64(c.dev.MemBytes) {
				c.alive = false
				res.DeadAfter[c.ctx.ID] = taskIdx
			}
		}
	}
}

// aggregate performs FedAvg over alive clients and installs the global
// model, then invokes AfterAggregate with each client's pre-aggregation
// parameters. Flattened-parameter vectors live in engine/client scratch
// buffers that are rewritten every round; strategies that keep a pre-
// aggregation vector across rounds must copy it.
func (e *Engine) aggregate(taskIdx int) {
	var total float64
	if e.preBuf == nil {
		e.preBuf = make([][]float32, len(e.clients))
	}
	pre := e.preBuf
	var global []float32
	for i, c := range e.clients {
		if !c.alive || c.offline {
			continue
		}
		c.flatBuf = nn.FlattenParamsInto(c.flatBuf, c.ctx.Model.Params())
		flat := c.flatBuf
		pre[i] = flat
		w := float64(len(c.seq[taskIdx].Train))
		if w == 0 {
			w = 1
		}
		total += w
		if global == nil {
			if cap(e.globalBuf) < len(flat) {
				e.globalBuf = make([]float32, len(flat))
			}
			global = e.globalBuf[:len(flat)]
			clear(global)
		}
		tensor.AxpySlice(global, float32(w), flat)
	}
	if global == nil {
		return
	}
	inv := float32(1 / total)
	for i := range global {
		global[i] *= inv
	}
	e.forEachAlive(func(c *client) {
		mask := c.strategy.AggregateMask()
		if mask == nil {
			nn.SetFlatParams(c.ctx.Model.Params(), global)
		} else {
			if cap(c.mergedBuf) < len(global) {
				c.mergedBuf = make([]float32, len(global))
			}
			merged := c.mergedBuf[:len(global)]
			copy(merged, pre[c.ctx.ID])
			for j, use := range mask {
				if use {
					merged[j] = global[j]
				}
			}
			nn.SetFlatParams(c.ctx.Model.Params(), merged)
		}
		c.strategy.AfterAggregate(pre[c.ctx.ID], c.seq[taskIdx])
	})
}

// evaluate fills row taskIdx of the accuracy matrix: for every learned task
// position, the mean over alive clients of task-aware top-1 accuracy on the
// client's own test split.
func (e *Engine) evaluate(taskIdx int, res *Result) {
	type row struct{ accs []float64 }
	rows := make([]row, len(e.clients))
	e.forEachAlive(func(c *client) {
		accs := make([]float64, taskIdx+1)
		for p := 0; p <= taskIdx; p++ {
			accs[p] = EvalClientTask(c.ctx.Model, c.seq[p])
		}
		rows[c.ctx.ID] = row{accs: accs}
	})
	for p := 0; p <= taskIdx; p++ {
		var s float64
		n := 0
		for _, r := range rows {
			if r.accs != nil {
				s += r.accs[p]
				n++
			}
		}
		if n > 0 {
			res.Matrix.Set(taskIdx, p, s/float64(n))
		}
	}
}

// EvalClientTask computes task-aware top-1 accuracy of the model on a
// client task's test samples (argmax restricted to the task's classes).
func EvalClientTask(m *model.Model, ct data.ClientTask) float64 {
	if len(ct.Test) == 0 {
		return 0
	}
	const evalBatch = 32
	correct := 0
	for start := 0; start < len(ct.Test); start += evalBatch {
		end := start + evalBatch
		if end > len(ct.Test) {
			end = len(ct.Test)
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, labels := data.Batch(ct.Test, idx, m.InC, m.InH, m.InW)
		logits := m.Forward(x, false)
		for i := range idx {
			if logits.ArgMaxRow(i, ct.Classes) == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(ct.Test))
}

// nextBatch draws the next batch of a client task, reshuffling each epoch.
func (c *client) nextBatch(ct data.ClientTask, batchSize int) (*tensor.Tensor, []int) {
	n := len(ct.Train)
	if batchSize > n {
		batchSize = n
	}
	idx := make([]int, 0, batchSize)
	for len(idx) < batchSize {
		if c.cur >= len(c.order) {
			c.order = c.ctx.RNG.Perm(n)
			c.cur = 0
		}
		idx = append(idx, c.order[c.cur])
		c.cur++
	}
	m := c.ctx.Model
	return data.Batch(ct.Train, idx, m.InC, m.InH, m.InW)
}

// forEachAlive runs fn over alive, online clients with bounded parallelism.
func (e *Engine) forEachAlive(fn func(c *client)) {
	par := e.cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for _, c := range e.clients {
		if !c.alive || c.offline {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(c *client) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(c)
		}(c)
	}
	wg.Wait()
}

// AliveClients reports how many clients have not been evicted.
func (e *Engine) AliveClients() int {
	n := 0
	for _, c := range e.clients {
		if c.alive {
			n++
		}
	}
	return n
}
