// Package fed implements the federated continual-learning protocol of
// §III-A as three explicit roles joined by a message transport:
//
//   - Server (server.go): the round scheduler. It opens rounds, collects
//     parameter updates, delegates combination to a pluggable Aggregator
//     (WeightedFedAvg is §III-A's rule), broadcasts the global model, and
//     keeps the books — the simulated clock through the device model,
//     communication volume, the per-task accuracy matrix, and OOM evictions.
//   - Client (client.go): one endpoint. It wraps a Strategy (FedKNOW or a
//     baseline), owns the local model and data, trains for v iterations per
//     round, and reports device accounting with each upload.
//   - Transport (transport.go, wire.go): the seam between them, carrying the
//     typed round messages RoundStart → Update → GlobalModel → RoundEnd
//     (message.go). LoopbackTransport runs everything in-process with
//     zero-copy message passing; WireTransport speaks a length-prefixed
//     binary codec (codec.go) over net.Conn so a run can span processes —
//     both produce bitwise-identical results for the same seed.
//
// Engine is the thin constructor that wires clients to a server over
// loopback transports, preserving the original monolithic engine's Config
// and construction order (and therefore its exact RNG streams and results).
// Progress streams through RoundObserver; runs cancel via context.Context.
package fed

import (
	"context"
	"math"
	"runtime"
	"sync"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// ClientCtx is everything a strategy can see inside one client.
type ClientCtx struct {
	ID         int
	NumClients int
	Model      *model.Model
	Opt        *opt.SGD
	RNG        *tensor.RNG
	NumClasses int
}

// Strategy is one training method (FedKNOW or a baseline) running inside a
// client. The client calls the hooks in protocol order; BaseStrategy
// provides no-op defaults so methods implement only what they need.
type Strategy interface {
	// Name identifies the method in reports.
	Name() string
	// TrainStep performs one local iteration on the batch (forward,
	// backward, possibly gradient surgery, optimizer step) and returns the
	// task loss.
	TrainStep(x *tensor.Tensor, labels []int, classes []int) float64
	// AfterAggregate runs after the server's global model has been
	// installed; preAgg is the client's flat parameter vector from before
	// aggregation. FedKNOW fine-tunes here (§III-A), APFL mixes models.
	AfterAggregate(preAgg []float32, ct data.ClientTask)
	// TaskEnd runs after a task's final round (knowledge extraction,
	// memory updates, importance estimation).
	TaskEnd(ct data.ClientTask)
	// AggregateMask selects which parameters the client installs from the
	// global model; nil means all (FedRep masks its head layers out).
	AggregateMask() []bool
	// ExtraUploadBytes / ExtraDownloadBytes report per-round communication
	// beyond the dense model payload (FedWEIT's adaptive-weight pool).
	ExtraUploadBytes() int
	ExtraDownloadBytes() int
	// MemoryBytes is the method's retained state (samples, knowledge,
	// importance matrices), charged against device memory.
	MemoryBytes() int
	// OverheadFLOPs is extra per-iteration compute beyond the plain
	// forward+backward (restored gradients, QP solves, penalty terms),
	// charged against device speed.
	OverheadFLOPs() float64
}

// BaseStrategy provides default no-op hook implementations.
type BaseStrategy struct{}

// AfterAggregate does nothing.
func (BaseStrategy) AfterAggregate([]float32, data.ClientTask) {}

// TaskEnd does nothing.
func (BaseStrategy) TaskEnd(data.ClientTask) {}

// AggregateMask aggregates everything.
func (BaseStrategy) AggregateMask() []bool { return nil }

// ExtraUploadBytes is zero.
func (BaseStrategy) ExtraUploadBytes() int { return 0 }

// ExtraDownloadBytes is zero.
func (BaseStrategy) ExtraDownloadBytes() int { return 0 }

// MemoryBytes is zero.
func (BaseStrategy) MemoryBytes() int { return 0 }

// OverheadFLOPs is zero.
func (BaseStrategy) OverheadFLOPs() float64 { return 0 }

// Factory builds a strategy for one client.
type Factory func(ctx *ClientCtx) Strategy

// Config drives one federated continual-learning run.
type Config struct {
	Method      string
	Rounds      int // aggregation rounds per task (r)
	LocalIters  int // local iterations per round (v)
	BatchSize   int
	LR          float64
	LRDecay     float64
	NumClasses  int
	Bandwidth   float64 // bytes/second per client link
	MemScale    float64 // sim-bytes → real-bytes multiplier for OOM checks
	Seed        uint64
	// Parallelism is the number of concurrent clients; 0 = GOMAXPROCS.
	// fingerprint:exempt execution width never changes results — the fold
	// is order-pinned by ascending client ID regardless of worker count
	// (TestEngineDeterministicAcrossParallelism), so two processes may
	// legitimately disagree on it and still run the same job.
	Parallelism int
	// DropoutProb is the per-round probability that a client goes offline
	// for that round (skips local training and aggregation) — the failure
	// injection used to check that FedAvg-style protocols tolerate edge
	// churn. 0 disables dropout. Only the synchronous scheduler supports it
	// (the asynchronous scheduler models churn as eviction on transport
	// failure instead); NewServer rejects the combination.
	DropoutProb float64
	// Scheduler selects the round-scheduling policy: SchedulerSync (or the
	// empty string) for the lockstep loop, SchedulerAsync for the
	// staleness-bounded buffered-asynchronous policy. Every process of one
	// run must agree — the scheduler changes results, so it is part of the
	// job fingerprint.
	Scheduler string
	// SyncEvict lets the synchronous scheduler evict a client whose
	// transport fails and keep the cohort going, instead of aborting the
	// run (the default, kept for reproducibility: an eviction changes the
	// dropout RNG draw sequence and the aggregation cohort, so two runs
	// that lose different clients diverge). It changes results and is part
	// of the job fingerprint; the asynchronous scheduler always evicts and
	// ignores it.
	SyncEvict bool
	// Async configures the asynchronous scheduler; ignored when Scheduler is
	// sync. See AsyncConfig for the defaults applied to zero fields.
	Async AsyncConfig
	// Shards (-shards) partitions the server's aggregation fold across this
	// many per-shard reducers folded concurrently on the kernel worker pool
	// (ShardedFedAvg). Results are bitwise identical for every shard count —
	// the knob buys server ingest throughput, never different bits — but it
	// is still part of the job fingerprint so every process of one run agrees
	// on the server layout it is load-testing against. 0 or 1 keeps the
	// single-loop SparseFedAvg default.
	Shards int
	// Robust (-aggregator) selects the server aggregation rule as a
	// ParseAggregator spec ("fedavg", "trimmed-mean[:beta]", "median",
	// "krum[:f]", "fedopt[:momentum[:inner]]"). The rule changes the global
	// model's bits, so it is part of the job fingerprint — every process of
	// one run must agree. Empty means fedavg.
	Robust string
	// RejectNonFinite (-reject-nonfinite) turns on server ingest hardening:
	// updates carrying NaN/Inf parameters or a non-finite weight are counted
	// and dropped instead of folded. It changes which updates reach the
	// aggregator, so it is part of the job fingerprint. The CLI defaults it
	// on whenever Robust selects a non-fedavg rule.
	RejectNonFinite bool
}

// Scheduler policy names accepted by Config.Scheduler and
// ServerConfig.Scheduler.
const (
	// SchedulerSync is the lockstep policy: every round waits for every
	// alive client (the empty string means the same and is the default).
	SchedulerSync = "sync"
	// SchedulerAsync is the staleness-bounded buffered-asynchronous policy
	// (FedBuff style): clients train continuously against the latest
	// committed global and the server commits every Async.CommitEvery
	// accepted updates.
	SchedulerAsync = "async"
)

// AsyncConfig are the asynchronous scheduler's knobs. The zero value is
// usable: every field has a documented default applied by NewServer.
type AsyncConfig struct {
	// CommitEvery (the CLI's -async-commit-k) is K, the number of accepted
	// updates buffered per global-model commit. 0 defaults to half the
	// cohort (minimum 1). K = cohort size with no stragglers reproduces the
	// synchronous scheduler's per-round accounting.
	CommitEvery int
	// MaxStaleness (-max-staleness) rejects an update whose staleness —
	// current global version minus the update's BaseVersion — exceeds the
	// bound: the update is dropped from aggregation (its traffic and device
	// time still count; the client's training continues). 0 disables the
	// bound.
	MaxStaleness int
	// StalenessAlpha (-staleness-alpha) is α in the staleness weight
	// 1/(1+staleness)^α that scales an accepted update's aggregation weight
	// down the longer it trained against an old global. 0 means no
	// deweighting; fresh updates (staleness 0) are never deweighted at any
	// α.
	StalenessAlpha float64
	// LoopbackCap overrides the per-link loopback queue capacity of an
	// asynchronous in-process engine. 0 picks the default, Rounds+4 capped
	// at 256 — bounded regardless of cohort size, because delivery never
	// needs a task's worst case in flight: every async client drains its
	// inbox continuously through a pump goroutine (runAsync), so a commit
	// broadcast waits at most one pump iteration, never for training, and
	// the server's reader/ack loop consumes uploads continuously in the
	// other direction. Like Parallelism it never changes results and is
	// excluded from the job fingerprint; it exists so memory-constrained
	// hosts (or stress tests) can shrink the queues further.
	// fingerprint:exempt queue capacity is backpressure, not semantics —
	// delivery order and fold order are unaffected (see above), so the
	// digest must not split cohorts over a memory-tuning knob.
	LoopbackCap int
}

// Fingerprint digests every result-affecting knob of the configuration (and
// the wire-format version). A distributed run only reproduces a loopback run
// if every process derives the same job from the same knobs, so the wire
// handshake carries this digest and the server rejects clients that disagree
// — a seed or hyperparameter mismatch fails loudly instead of silently
// producing non-reproducible results. Parallelism and Async.LoopbackCap are
// excluded: they never change results. Shards is included even though it is
// bitwise-neutral too — it selects the server's aggregation layout, and every
// process of one run declaring the layout it runs against is worth more than
// letting a load test accidentally mix them.
//
// Config cannot see job-level knobs that also shape the run — dataset,
// architecture, client count, model width, scale. Callers that know them
// must fold them in as extra strings (the CLI passes all of the above);
// every process of one run must pass the same extras in the same order.
func (cfg Config) Fingerprint(extra ...string) uint64 {
	const (
		offset64      = 14695981039346656037 // FNV-1a
		prime64       = 1099511628211
		formatVersion = 5 // v5: elastic membership (join hello variant + leave frame)
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xFF)) * prime64
			v >>= 8
		}
	}
	mixStr := func(s string) {
		mix(uint64(len(s)))
		for _, b := range []byte(s) {
			h = (h ^ uint64(b)) * prime64
		}
	}
	mix(formatVersion)
	mixStr(cfg.Method)
	mix(uint64(cfg.Rounds))
	mix(uint64(cfg.LocalIters))
	mix(uint64(cfg.BatchSize))
	mix(math.Float64bits(cfg.LR))
	mix(math.Float64bits(cfg.LRDecay))
	mix(uint64(cfg.NumClasses))
	mix(math.Float64bits(cfg.Bandwidth))
	mix(math.Float64bits(cfg.MemScale))
	mix(cfg.Seed)
	mix(math.Float64bits(cfg.DropoutProb))
	sched := cfg.Scheduler
	if sched == "" {
		sched = SchedulerSync
	}
	mixStr(sched)
	if cfg.SyncEvict {
		mix(1)
	} else {
		mix(0)
	}
	mix(uint64(cfg.Async.CommitEvery))
	mix(uint64(cfg.Async.MaxStaleness))
	mix(math.Float64bits(cfg.Async.StalenessAlpha))
	mix(uint64(cfg.Shards))
	robust := cfg.Robust
	if robust == "" {
		robust = "fedavg" // the empty spec and the explicit default are one job
	}
	mixStr(robust)
	if cfg.RejectNonFinite {
		mix(1)
	} else {
		mix(0)
	}
	for _, s := range extra {
		mixStr(s)
	}
	return h
}

// ServerConfigFor derives the server-side half of a run configuration: the
// round scheduler's knobs for a federation of numClients clients over
// numTasks tasks. Wire-mode servers use this so both processes agree on the
// protocol from one Config.
func (cfg Config) ServerConfigFor(numClients, numTasks int) ServerConfig {
	return ServerConfig{
		Method:      cfg.Method,
		NumClients:  numClients,
		NumTasks:    numTasks,
		Rounds:      cfg.Rounds,
		Bandwidth:   cfg.Bandwidth,
		DropoutProb: cfg.DropoutProb,
		Seed:        cfg.Seed,
		Scheduler:   cfg.Scheduler,
		SyncEvict:   cfg.SyncEvict,
		Async:           cfg.Async,
		Shards:          cfg.Shards,
		Robust:          cfg.Robust,
		RejectNonFinite: cfg.RejectNonFinite,
	}
}

// Result aggregates a run's outputs.
type Result struct {
	Method    string
	PerTask   []TaskPoint
	Matrix    *metrics.Matrix // averaged over alive clients
	DeadAfter map[int]int     // client id → task index at which it OOMed
}

// TaskPoint is the measured state after finishing task index TaskIdx.
type TaskPoint struct {
	TaskIdx        int
	AvgAccuracy    float64 // mean over clients of mean accuracy on learned tasks
	ForgettingRate float64
	SimHours       float64 // cumulative simulated training+comm time
	CommHours      float64 // cumulative simulated communication time only
	UpBytes        int64   // cumulative
	DownBytes      int64
}

// Engine wires one Client per task sequence to a Server over loopback
// transports — the in-process binding of the protocol, and a drop-in
// replacement for the old monolithic engine: same Config, same construction
// order, same RNG streams, bitwise-identical results.
type Engine struct {
	server      *Server
	clients     []*Client
	clientLinks []Transport
}

// NewEngine builds clients: one model per client from the builder, the
// strategy from the factory, and the device from the cluster (round-robin if
// the cluster is smaller than the client count).
func NewEngine(cfg Config, cluster *device.Cluster, seqs [][]data.ClientTask,
	build func(rng *tensor.RNG) *model.Model, factory Factory) *Engine {
	root := tensor.NewRNG(cfg.Seed)
	// All clients start from the same initial weights (§V-B common training
	// settings): build one reference model and copy its parameters.
	ref := build(root.Fork(0xC0FFEE))
	refFlat := nn.FlattenParams(ref.Params())
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	e := &Engine{
		clients:     make([]*Client, len(seqs)),
		clientLinks: make([]Transport, len(seqs)),
	}
	serverLinks := make([]Transport, len(seqs))
	// The lockstep protocol never has more than two messages in flight per
	// link, but the asynchronous scheduler sends without waiting, so its
	// loopback links get deeper queues. Bounded ones: the async client's
	// inbox pump drains server→client traffic continuously into an
	// unbounded in-process queue, so a commit-loop Send can only ever wait
	// one pump iteration, and client→server uploads are consumed by the
	// scheduler's reader/ack loop — neither direction needs a task's worst
	// case (Rounds×clients) in flight, which at load-test cohort sizes
	// would allocate thousands of slots per link. Rounds+4 keeps a client's
	// own task fully bufferable; the 256 cap bounds memory for huge runs.
	bufCap := loopbackCap
	if cfg.Scheduler == SchedulerAsync {
		bufCap = cfg.Async.LoopbackCap
		if bufCap <= 0 {
			bufCap = cfg.Rounds + 4
			if bufCap > 256 {
				bufCap = 256
			}
		}
	}
	for i, seq := range seqs {
		rng := root.Fork(uint64(i) + 1)
		c := newClient(cfg, i, len(seqs), cluster.Devices[i%cluster.Size()], seq,
			build, factory, rng, refFlat)
		c.sem = sem
		serverLinks[i], e.clientLinks[i] = LoopbackCap(bufCap)
		e.clients[i] = c
	}
	// nil aggregator → SparseFedAvg, whose dense path is bitwise identical
	// to WeightedFedAvg (the old engine default) while streaming sparse
	// updates in O(active knowledge).
	e.server = NewServer(cfg.ServerConfigFor(len(seqs), len(seqs[0])), nil, serverLinks)
	return e
}

// SetObserver installs the streaming progress hook; call before Run.
func (e *Engine) SetObserver(o RoundObserver) { e.server.SetObserver(o) }

// Run executes the full task sequence and returns the result. An Engine is
// single-use. A protocol failure (which cannot happen with well-formed
// inputs over loopback) panics, matching the old monolithic engine's
// fail-loudly behaviour; use RunContext to handle errors or cancel.
func (e *Engine) Run() *Result {
	res, err := e.RunContext(context.Background())
	if err != nil {
		panic(err)
	}
	return res
}

// RunContext is Run with cancellation: it launches the client endpoints,
// drives the server, and waits for every endpoint to drain. Cancelling ctx
// aborts the round loop; the partial Result is returned with ctx's error.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	var wg sync.WaitGroup
	for i, c := range e.clients {
		wg.Add(1)
		go func(c *Client, t Transport) {
			defer wg.Done()
			c.Run(ctx, t)
		}(c, e.clientLinks[i])
	}
	res, err := e.server.Run(ctx)
	wg.Wait()
	return res, err
}

// AliveClients reports how many clients have not been evicted.
func (e *Engine) AliveClients() int { return e.server.AliveClients() }
