package fed

import "sync"

// inbox pumps a transport's receive direction on a dedicated goroutine into
// an unbounded queue, so GlobalModel broadcasts that arrive while the
// client is training are never lost and never block the server. It is the
// client-side half of asynchronous delivery: the loopback transport buffers
// in its channels, the wire transport needs this reader goroutine (a TCP
// peer that nobody Recvs eventually blocks the sender).
//
// The pump is the transport's only receiver once the inbox exists — mixing
// inbox and direct Recv calls on the same end would race. With copyMsgs
// set, each message is deep-copied as it is read: WireTransport messages
// alias the codec's reusable decode buffers, which the pump's next Recv
// would overwrite. Loopback messages are already immutable per-send values,
// so the copy is skipped there.
type inbox struct {
	t        Transport
	copyMsgs bool

	mu    sync.Mutex
	queue []Msg
	err   error
	avail chan struct{} // wake-up signal for a blocked recv (single consumer)
}

// newInbox starts the pump. The inbox drains until the transport's Recv
// fails (io.EOF on clean shutdown); closing the transport stops the pump.
func newInbox(t Transport, copyMsgs bool) *inbox {
	b := &inbox{t: t, copyMsgs: copyMsgs, avail: make(chan struct{}, 1)}
	go b.pump()
	return b
}

// pump reads until the transport errors, queueing every message.
func (b *inbox) pump() {
	for {
		m, err := b.t.Recv()
		b.mu.Lock()
		if m != nil {
			if b.copyMsgs {
				m = copyMsg(m)
			}
			b.queue = append(b.queue, m)
		}
		if err != nil {
			b.err = err
		}
		b.mu.Unlock()
		select {
		case b.avail <- struct{}{}:
		default:
		}
		if err != nil {
			return
		}
	}
}

// recv returns the next queued message, blocking until one arrives. Once
// the queue is drained after a transport failure, the transport's error
// (io.EOF for a clean peer close) is returned.
func (b *inbox) recv() (Msg, error) {
	for {
		b.mu.Lock()
		if len(b.queue) > 0 {
			m := b.queue[0]
			b.queue = b.queue[1:]
			b.mu.Unlock()
			return m, nil
		}
		err := b.err
		b.mu.Unlock()
		if err != nil {
			return nil, err
		}
		<-b.avail
	}
}

// drainGlobals removes and returns the newest queued non-final GlobalModel
// (nil when none is pending) — the asynchronous client installs only the
// freshest committed global before each training round and skips the ones
// it outpaced. Non-GlobalModel messages and the task-final broadcast stay
// queued for recv.
func (b *inbox) drainGlobals() *GlobalModel {
	b.mu.Lock()
	defer b.mu.Unlock()
	var last *GlobalModel
	for len(b.queue) > 0 {
		gm, ok := b.queue[0].(*GlobalModel)
		if !ok || gm.TaskFinal {
			break
		}
		b.queue = b.queue[1:]
		last = gm
	}
	return last
}

// copyMsg deep-copies the message kinds a client can receive, detaching
// them from transport decode scratch. Other kinds pass through by
// reference (the client rejects them as protocol errors anyway).
func copyMsg(m Msg) Msg {
	switch v := m.(type) {
	case *GlobalModel:
		cp := *v
		cp.Params = append([]float32(nil), v.Params...)
		return &cp
	case *RoundStart:
		cp := *v
		return &cp
	default:
		return m
	}
}
