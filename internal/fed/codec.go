package fed

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Wire format (all integers little-endian, following internal/checkpoint):
//
//	frame   := kind(uint8) length(uint32) payload
//	payload :=
//	  Hello       clientID(uint32) jobFingerprint(uint64)
//	  RoundStart  taskIdx(uint32) round(uint32) flags(uint8)
//	              flags: bit0 participate, bit1 taskDone
//	  Update      clientID(uint32) flags(uint8) weight(float64)
//	              computeSeconds(float64) upBytes(uint64) downBytes(uint64)
//	              n(uint64) n×float32
//	              flags: bit0 participating
//	  GlobalModel n(uint64) n×float32
//	  RoundEnd    clientID(uint32) flags(uint8) n(uint64) n×float64
//	              flags: bit0 dead
//
// Floats travel as their IEEE-754 bit patterns, so a wire run reproduces a
// loopback run bit for bit.
const (
	// maxFrame bounds a frame payload (256 MB ≈ a 64M-parameter model);
	// anything larger is a corrupt or hostile stream.
	maxFrame = 1 << 28

	flagParticipate = 1 << 0
	flagTaskDone    = 1 << 1
	flagDead        = 1 << 0
)

// helloMsg is the transport-level identification frame a wire client sends
// after dialing: its claimed client ID plus the job fingerprint the server
// checks for configuration agreement. It never crosses the Transport
// interface.
type helloMsg struct {
	clientID    int
	fingerprint uint64
}

func (*helloMsg) Kind() Kind { return KindHello }

// Encode writes one frame to w.
func Encode(w io.Writer, m Msg) error {
	_, err := encodeFrame(w, m, nil)
	return err
}

// encodeFrame writes one frame, building the payload in scratch (grown as
// needed and returned so callers can reuse it — parameter payloads are
// multi-MB and re-sent every round).
func encodeFrame(w io.Writer, m Msg, scratch []byte) ([]byte, error) {
	payload := appendPayload(scratch[:0], m)
	var hdr [5]byte
	hdr[0] = byte(m.Kind())
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return payload, err
	}
	_, err := w.Write(payload)
	return payload, err
}

func appendPayload(buf []byte, m Msg) []byte {
	switch v := m.(type) {
	case *helloMsg:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.clientID))
		buf = binary.LittleEndian.AppendUint64(buf, v.fingerprint)
	case *RoundStart:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.TaskIdx))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Round))
		var flags byte
		if v.Participate {
			flags |= flagParticipate
		}
		if v.TaskDone {
			flags |= flagTaskDone
		}
		buf = append(buf, flags)
	case *Update:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.ClientID))
		var flags byte
		if v.Participating {
			flags |= flagParticipate
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Weight))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.ComputeSeconds))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.UpBytes))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.DownBytes))
		buf = appendF32s(buf, v.Params)
	case *GlobalModel:
		buf = appendF32s(buf, v.Params)
	case *RoundEnd:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.ClientID))
		var flags byte
		if v.Dead {
			flags |= flagDead
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(v.EvalAccs)))
		for _, a := range v.EvalAccs {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a))
		}
	default:
		panic(fmt.Sprintf("fed: cannot encode message type %T", m))
	}
	return buf
}

func appendF32s(buf []byte, vals []float32) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(vals)))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

// decodeScratch holds the reusable buffers of one decoding stream. Messages
// decoded with the same scratch alias its buffers: each stays valid only
// until the next slice-bearing message of the same element type is decoded
// — which matches the lockstep protocol, where every message is consumed
// before the link's next Recv. Use a fresh scratch for retained messages.
type decodeScratch struct {
	payload []byte
	f32     []float32
	f64     []float64
}

// grow returns a length-n slice backed by *buf, reallocating only when the
// capacity is exceeded (parameter payloads are multi-MB and arrive every
// round).
func grow[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	return (*buf)[:n]
}

// Decode reads one frame from r into freshly allocated buffers. io.EOF at a
// frame boundary means the peer closed cleanly; a truncated frame surfaces
// as io.ErrUnexpectedEOF.
func Decode(r io.Reader) (Msg, error) {
	return decodeWith(r, &decodeScratch{})
}

func decodeWith(r io.Reader, s *decodeScratch) (Msg, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return nil, fmt.Errorf("fed: frame length %d exceeds limit", n)
	}
	payload := grow(&s.payload, int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return decodePayload(Kind(hdr[0]), payload, s)
}

// cursor walks a payload with bounds checking.
type cursor struct {
	buf     []byte
	off     int
	err     error
	scratch *decodeScratch
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if c.off+n > len(c.buf) {
		c.err = fmt.Errorf("fed: truncated payload (want %d bytes at offset %d of %d)", n, c.off, len(c.buf))
		return nil
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u8() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) f32s() []float32 {
	n := c.u64()
	if c.err != nil {
		return nil
	}
	if n > uint64(len(c.buf)-c.off)/4 {
		c.err = fmt.Errorf("fed: float32 count %d exceeds payload", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := grow(&c.scratch.f32, int(n))
	b := c.take(int(n) * 4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func (c *cursor) f64s() []float64 {
	n := c.u64()
	if c.err != nil {
		return nil
	}
	if n > uint64(len(c.buf)-c.off)/8 {
		c.err = fmt.Errorf("fed: float64 count %d exceeds payload", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := grow(&c.scratch.f64, int(n))
	for i := range out {
		out[i] = c.f64()
	}
	return out
}

func (c *cursor) finish(m Msg) (Msg, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(c.buf) {
		return nil, fmt.Errorf("fed: %d trailing payload bytes", len(c.buf)-c.off)
	}
	return m, nil
}

func decodePayload(kind Kind, payload []byte, s *decodeScratch) (Msg, error) {
	c := &cursor{buf: payload, scratch: s}
	switch kind {
	case KindHello:
		m := &helloMsg{clientID: int(c.u32()), fingerprint: c.u64()}
		return c.finish(m)
	case KindRoundStart:
		m := &RoundStart{TaskIdx: int(c.u32()), Round: int(c.u32())}
		flags := c.u8()
		m.Participate = flags&flagParticipate != 0
		m.TaskDone = flags&flagTaskDone != 0
		return c.finish(m)
	case KindUpdate:
		m := &Update{ClientID: int(c.u32())}
		m.Participating = c.u8()&flagParticipate != 0
		m.Weight = c.f64()
		m.ComputeSeconds = c.f64()
		m.UpBytes = int64(c.u64())
		m.DownBytes = int64(c.u64())
		m.Params = c.f32s()
		return c.finish(m)
	case KindGlobalModel:
		m := &GlobalModel{Params: c.f32s()}
		return c.finish(m)
	case KindRoundEnd:
		m := &RoundEnd{ClientID: int(c.u32())}
		m.Dead = c.u8()&flagDead != 0
		m.EvalAccs = c.f64s()
		return c.finish(m)
	default:
		return nil, fmt.Errorf("fed: unknown message kind %d", kind)
	}
}
