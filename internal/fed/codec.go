package fed

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/tensor"
)

// Wire format v5 (all fixed-width integers little-endian, counts unsigned
// varints; the maintained reference is docs/WIRE_FORMAT.md):
//
//	frame   := kind(uint8) length(uint32) payload
//	payload :=
//	  Hello       clientID(uint32) jobFingerprint(uint64) quant(uint8)
//	              flags(uint8) lastVersion(uvarint)
//	              flags: bit0 rejoin, bit1 join
//	  RoundStart  taskIdx(uint32) round(uint32) flags(uint8)
//	              flags: bit0 participate, bit1 taskDone
//	  Update      clientID(uint32) flags(uint8) weight(float64)
//	              computeSeconds(float64) upBytes(uint64) downBytes(uint64)
//	              baseVersion(uvarint) params
//	              flags: bit0 participating
//	  GlobalModel version(uvarint) flags(uint8) params
//	              flags: bit0 taskFinal
//	  RoundEnd    clientID(uint32) flags(uint8) n(uint64) n×float64
//	              flags: bit0 dead
//	  Catchup     taskIdx(uint32) seen(uvarint) version(uvarint) flags(uint8)
//	              params
//	              flags: bit0 taskFinal, bit1 taskDone
//	  Leave       clientID(uint32)
//
// v5 adds elastic membership: the Hello flags byte grew bit1 (join — a
// seatless client asking the server to assign one; clientID must be 0 and
// the server replies with a seat-assignment Hello carrying the assigned ID,
// then a v4 Catchup positioning the joiner), and the new Leave frame retires
// a seat cleanly. Existing frame layouts are byte-identical to v4, so a
// fixed cohort's wire bytes are unchanged; v4 and v5 binaries still refuse
// to interoperate at the fingerprint handshake (formatVersion bump). v4
// added the rejoin path: the Hello frame grew a flags byte (bit0 marks a
// rejoining client) and the client's last-seen global version, and the new
// Catchup frame is the server's re-admission reply. v3 added the
// global-version plumbing the asynchronous scheduler needs
// (Update.baseVersion, GlobalModel.version/taskFinal); everything else is
// the v2 layout unchanged. Version fields are uvarints, so a synchronous
// run pays 1 + 2 extra bytes per round trip at low versions.
//
// Parameter vectors travel as a self-describing params block:
//
//	params := format(uint8) n(uvarint) body
//	format := value(bit0-1: 0 float32, 1 float16, 2 int8) | sparse(bit2)
//	dense  body := [scale(float32) if int8] n×value
//	sparse body := k(uvarint) [scale(float32) if int8]
//	               k×gap(uvarint) k×value
//
// A sparse block stores only k of the n coordinates: gaps are the
// varint-delta-coded index increments (index₀ = gap₀, indexᵢ =
// indexᵢ₋₁ + 1 + gapᵢ — strictly ascending by construction), so bytes on
// the wire scale with the active knowledge, not the model. With float32
// values both dense and sparse blocks carry raw IEEE-754 bit patterns and
// the encoder picks whichever is smaller: a wire run stays bit-identical to
// a loopback run. The float16/int8 value encodings (per-tensor symmetric
// scale for int8) are lossy and therefore opt-in, negotiated in the Hello
// handshake.
const (
	// maxFrame bounds a frame payload (256 MB ≈ a 64M-parameter model);
	// anything larger is a corrupt or hostile stream. WireOptions.MaxFrame
	// lowers the bound per link, so a deployment whose model is kilobytes
	// need not let a hostile length prefix buffer megabytes.
	maxFrame = 1 << 28
	// maxParams bounds the *logical* length a params block may claim, so a
	// tiny hostile sparse frame cannot make the receiver densify gigabytes.
	maxParams = maxFrame / 4

	// maxSeatID bounds a wire-claimed seat ID (hello, Leave) and task
	// position (Catchup) at decode time: anything beyond it is a malformed
	// frame, rejected before the receiver validates — or allocates —
	// anything downstream, and int stays positive on every platform.
	maxSeatID = 1<<31 - 1

	flagParticipate = 1 << 0
	flagTaskDone    = 1 << 1
	flagDead        = 1 << 0
	flagTaskFinal   = 1 << 0
	flagRejoin      = 1 << 0
	flagJoin        = 1 << 1

	fmtValueMask = 0x03
	fmtSparse    = 0x04
)

// Compression is the codec half of a link's negotiated settings: the value
// encoding (lossless float32 by default) and whether the encoder may choose
// the sparse block form when it is smaller (it always may, unless disabled
// for benchmarking dense baselines — decoding accepts every form
// regardless).
type Compression struct {
	Quant         Quant
	DisableSparse bool
}

// formatByte returns the params-block format for this compression with the
// given block form.
func (c Compression) formatByte(sparse bool) byte {
	b := byte(c.Quant) & fmtValueMask
	if sparse {
		b |= fmtSparse
	}
	return b
}

// helloMsg is the transport-level identification frame a wire client sends
// after dialing: its claimed client ID, the job fingerprint the server
// checks for configuration agreement, and the value encoding it will use —
// quantization changes results, so a server rejects clients that disagree
// instead of silently mixing precisions. A rejoining client sets the rejoin
// flag and its last-seen global version, and expects a Catchup reply
// instead of the fresh-cohort admission. A joining client (v5) sets the
// join flag with clientID 0 — it has no seat yet — and expects a
// seat-assignment hello (the same frame, server → client, no role flags,
// clientID carrying the assigned seat) followed by a Catchup. The decoder
// rejects a hello claiming both roles, or a join claiming a seat, as
// malformed. It never crosses the
// Transport interface.
type helloMsg struct {
	clientID    int
	fingerprint uint64
	quant       Quant
	rejoin      bool
	join        bool
	lastVersion uint64
}

func (*helloMsg) Kind() Kind { return KindHello }

// Codec is a reusable encoder/decoder for one frame stream. Encode builds
// payloads in an internal scratch buffer and Decode reads into internal
// reusable buffers, so steady-state rounds allocate nothing; messages
// decoded by the same Codec alias its buffers and stay valid only until the
// next Decode — the lockstep protocol consumes every message before the
// link's next receive. Use separate Codecs (or the package-level Encode and
// Decode) for retained messages.
type Codec struct {
	comp Compression
	// maxFrame, when positive, lowers the decoder's frame-payload bound below
	// the package default — the allocation a hostile length prefix can force
	// before validation fails. The params-length bound scales with it.
	maxFrame int
	enc      []byte
	hdr      [5]byte // frame-header scratch (kept here so it never escapes per call)
	dec      decodeScratch
}

// NewCodec returns a codec that encodes with the given compression. Decoding
// is format-driven and accepts every encoding regardless of comp.
func NewCodec(comp Compression) *Codec {
	return &Codec{comp: comp}
}

// Encode writes one frame to w.
func (c *Codec) Encode(w io.Writer, m Msg) error {
	payload := appendPayload(c.enc[:0], m, c.comp)
	c.enc = payload
	c.hdr[0] = byte(m.Kind())
	binary.LittleEndian.PutUint32(c.hdr[1:], uint32(len(payload)))
	if _, err := w.Write(c.hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Decode reads one frame from r. io.EOF at a frame boundary means the peer
// closed cleanly; a truncated frame surfaces as io.ErrUnexpectedEOF.
func (c *Codec) Decode(r io.Reader) (Msg, error) {
	m, _, err := c.decodeFrame(r)
	return m, err
}

// decodeFrame is Decode also reporting the frame's size in bytes (header
// plus payload), for transports that account bytes on the wire.
func (c *Codec) decodeFrame(r io.Reader) (Msg, int, error) {
	s := &c.dec
	hdr := &s.hdr
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, 0, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	limit := c.maxFrame
	if limit <= 0 || limit > maxFrame {
		limit = maxFrame
	}
	if n > uint32(limit) {
		return nil, 0, fmt.Errorf("fed: frame length %d exceeds limit %d", n, limit)
	}
	s.limit = limit
	payload := grow(&s.payload, int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, 0, err
	}
	m, err := decodePayload(Kind(hdr[0]), payload, s)
	return m, 5 + int(n), err
}

// Encode writes one frame to w with the default (lossless) compression,
// without scratch reuse. Hot paths use a Codec.
func Encode(w io.Writer, m Msg) error {
	return NewCodec(Compression{}).Encode(w, m)
}

// Decode reads one frame from r into freshly allocated buffers. io.EOF at a
// frame boundary means the peer closed cleanly; a truncated frame surfaces
// as io.ErrUnexpectedEOF.
func Decode(r io.Reader) (Msg, error) {
	return NewCodec(Compression{}).Decode(r)
}

// uvarintLen is the encoded size of v in bytes.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func appendPayload(buf []byte, m Msg, comp Compression) []byte {
	switch v := m.(type) {
	case *helloMsg:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.clientID))
		buf = binary.LittleEndian.AppendUint64(buf, v.fingerprint)
		buf = append(buf, byte(v.quant))
		var flags byte
		if v.rejoin {
			flags |= flagRejoin
		}
		if v.join {
			flags |= flagJoin
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, v.lastVersion)
	case *RoundStart:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.TaskIdx))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Round))
		var flags byte
		if v.Participate {
			flags |= flagParticipate
		}
		if v.TaskDone {
			flags |= flagTaskDone
		}
		buf = append(buf, flags)
	case *Update:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.ClientID))
		var flags byte
		if v.Participating {
			flags |= flagParticipate
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Weight))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.ComputeSeconds))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.UpBytes))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.DownBytes))
		buf = binary.AppendUvarint(buf, v.BaseVersion)
		buf = appendParams(buf, v.Params, v.Sparse, comp)
	case *GlobalModel:
		buf = binary.AppendUvarint(buf, v.Version)
		var flags byte
		if v.TaskFinal {
			flags |= flagTaskFinal
		}
		buf = append(buf, flags)
		buf = appendParams(buf, v.Params, nil, comp)
	case *RoundEnd:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.ClientID))
		var flags byte
		if v.Dead {
			flags |= flagDead
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(v.EvalAccs)))
		for _, a := range v.EvalAccs {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a))
		}
	case *Catchup:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.TaskIdx))
		buf = binary.AppendUvarint(buf, uint64(v.Seen))
		buf = binary.AppendUvarint(buf, v.Version)
		var flags byte
		if v.TaskFinal {
			flags |= flagTaskFinal
		}
		if v.TaskDone {
			flags |= flagTaskDone
		}
		buf = append(buf, flags)
		buf = appendParams(buf, v.Params, nil, comp)
	case *Leave:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.ClientID))
	default:
		panic(fmt.Sprintf("fed: cannot encode message type %T", m))
	}
	return buf
}

// appendParams emits one params block. A non-nil sp takes precedence and is
// emitted in sparse form directly; a dense vector is scanned once and
// emitted in whichever form is smaller (coordinates with zero *bit
// patterns* are the droppable ones — negative zero is preserved, keeping
// the float32 encodings bit-exact).
func appendParams(buf []byte, dense []float32, sp *tensor.SparseVec, comp Compression) []byte {
	if sp != nil {
		buf = append(buf, comp.formatByte(true))
		buf = binary.AppendUvarint(buf, uint64(sp.N))
		return appendSparseBody(buf, sp.Indices, sp.Values, comp.Quant)
	}
	n := len(dense)
	if !comp.DisableSparse && n > 0 {
		vb := comp.Quant.valueBytes()
		scaleBytes := 0
		if comp.Quant == QuantI8 {
			scaleBytes = 4
		}
		// One scan decides dense vs sparse by exact encoded size. The sparse
		// cost only grows, so bail out (and keep the dense form) as soon as
		// it provably cannot beat the dense size — a fully dense vector
		// stops ~4/5 of the way through instead of paying the whole scan.
		k, gapBytes, prev := 0, 0, -1
		for i, v := range dense {
			if math.Float32bits(v) != 0 {
				gapBytes += uvarintLen(uint64(i - prev - 1))
				prev = i
				k++
				if gapBytes+k*vb+1 >= n*vb {
					break
				}
			}
		}
		if uvarintLen(uint64(k))+scaleBytes+gapBytes+k*vb < scaleBytes+n*vb {
			buf = append(buf, comp.formatByte(true))
			buf = binary.AppendUvarint(buf, uint64(n))
			return appendSparseFromDense(buf, dense, k, comp.Quant)
		}
	}
	buf = append(buf, comp.formatByte(false))
	buf = binary.AppendUvarint(buf, uint64(n))
	switch comp.Quant {
	case QuantF16:
		for _, v := range dense {
			buf = binary.LittleEndian.AppendUint16(buf, f32ToF16(v))
		}
	case QuantI8:
		if n == 0 {
			break // the decoder reads nothing (not even a scale) at n = 0
		}
		scale := i8Scale(dense)
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(scale))
		for _, v := range dense {
			buf = append(buf, byte(i8Quantize(v, scale)))
		}
	default:
		for _, v := range dense {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	return buf
}

// appendSparseBody emits k, the optional scale, the index gaps and the
// values of an explicit sparse vector (indices strictly ascending).
func appendSparseBody(buf []byte, idx []int32, vals []float32, q Quant) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(idx)))
	var scale float32
	if q == QuantI8 {
		scale = i8Scale(vals)
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(scale))
	}
	prev := int32(-1)
	for _, j := range idx {
		buf = binary.AppendUvarint(buf, uint64(j-prev-1))
		prev = j
	}
	switch q {
	case QuantF16:
		for _, v := range vals {
			buf = binary.LittleEndian.AppendUint16(buf, f32ToF16(v))
		}
	case QuantI8:
		for _, v := range vals {
			buf = append(buf, byte(i8Quantize(v, scale)))
		}
	default:
		for _, v := range vals {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	return buf
}

// appendSparseFromDense emits the sparse body of a dense vector's non-zero
// (by bit pattern) coordinates without materialising the index list. k is
// the caller's non-zero count (appendParams already scanned for the size
// decision); the format's gaps-then-values layout still needs two sweeps.
func appendSparseFromDense(buf []byte, dense []float32, k int, q Quant) []byte {
	buf = binary.AppendUvarint(buf, uint64(k))
	var scale float32
	if q == QuantI8 {
		scale = i8Scale(dense)
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(scale))
	}
	prev := -1
	for i, v := range dense {
		if math.Float32bits(v) != 0 {
			buf = binary.AppendUvarint(buf, uint64(i-prev-1))
			prev = i
		}
	}
	for _, v := range dense {
		if math.Float32bits(v) == 0 {
			continue
		}
		switch q {
		case QuantF16:
			buf = binary.LittleEndian.AppendUint16(buf, f32ToF16(v))
		case QuantI8:
			buf = append(buf, byte(i8Quantize(v, scale)))
		default:
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	return buf
}

// decodeScratch holds the reusable buffers and message structs of one
// decoding stream. Messages decoded with the same scratch alias its buffers:
// each stays valid only until the next message reusing the same buffer is
// decoded — which matches the lockstep protocol, where every message is
// consumed before the link's next Recv. Use a fresh scratch for retained
// messages.
type decodeScratch struct {
	hdr     [5]byte
	limit   int // effective frame bound of the current decode (0 = default)
	payload []byte
	f32     []float32
	f64     []float64
	spIdx   []int32
	spVal   []float32

	// pooled message structs, rewritten by each decode of their kind
	hello helloMsg
	rs    RoundStart
	upd   Update
	gm    GlobalModel
	re    RoundEnd
	cu    Catchup
	lv    Leave
	sp    tensor.SparseVec
}

// grow returns a length-n slice backed by *buf, reallocating only when the
// capacity is exceeded (parameter payloads are multi-MB and arrive every
// round).
func grow[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	return (*buf)[:n]
}

// cursor walks a payload with bounds checking.
type cursor struct {
	buf     []byte
	off     int
	err     error
	scratch *decodeScratch
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if c.off+n > len(c.buf) {
		c.err = fmt.Errorf("fed: truncated payload (want %d bytes at offset %d of %d)", n, c.off, len(c.buf))
		return nil
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b
}

// paramLimit is the logical params-length bound for this decode: a quarter of
// the link's effective frame limit (every stored value costs ≥ 4 bytes dense),
// so lowering the frame cap also bounds what a tiny sparse frame may densify
// into.
func (c *cursor) paramLimit() uint64 {
	if c.scratch != nil && c.scratch.limit > 0 {
		return uint64(c.scratch.limit) / 4
	}
	return maxParams
}

func (c *cursor) u8() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) f32() float32 { return math.Float32frombits(c.u32()) }

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		c.err = fmt.Errorf("fed: bad varint at offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

// params decodes one params block into the scratch buffers: dense forms
// yield a float32 slice, sparse forms a SparseVec. Lossy value encodings are
// dequantised here, so every caller sees float32.
func (c *cursor) params() (dense []float32, sp *tensor.SparseVec) {
	format := c.u8()
	n := c.uvarint()
	if c.err != nil {
		return nil, nil
	}
	if format&^(fmtValueMask|fmtSparse) != 0 || Quant(format&fmtValueMask) > QuantI8 {
		c.err = fmt.Errorf("fed: unknown params format %#x", format)
		return nil, nil
	}
	if n > c.paramLimit() {
		c.err = fmt.Errorf("fed: params length %d exceeds limit %d", n, c.paramLimit())
		return nil, nil
	}
	q := Quant(format & fmtValueMask)
	if n == 0 {
		if format&fmtSparse != 0 {
			if k := c.uvarint(); c.err == nil && k != 0 {
				c.err = fmt.Errorf("fed: sparse params store %d of 0 coordinates", k)
			}
			if q == QuantI8 {
				c.f32()
			}
		}
		return nil, nil
	}
	if format&fmtSparse == 0 {
		if uint64(len(c.buf)-c.off) < n { // every value is ≥ 1 byte
			c.err = fmt.Errorf("fed: params count %d exceeds payload", n)
			return nil, nil
		}
		out := grow(&c.scratch.f32, int(n))
		c.values(out, q)
		return out, nil
	}
	k := c.uvarint()
	if c.err != nil {
		return nil, nil
	}
	if k > n || uint64(len(c.buf)-c.off) < k { // every gap+value is ≥ 2 bytes
		c.err = fmt.Errorf("fed: sparse params store %d of %d coordinates", k, n)
		return nil, nil
	}
	sp = &c.scratch.sp
	sp.N = int(n)
	sp.Indices = grow(&c.scratch.spIdx, int(k))
	sp.Values = grow(&c.scratch.spVal, int(k))
	var scale float32
	if q == QuantI8 {
		scale = c.f32()
	}
	prev := int64(-1)
	for i := range sp.Indices {
		gap := c.uvarint()
		if c.err != nil {
			return nil, nil
		}
		// Bound the gap before widening: a hostile 64-bit varint must not
		// wrap int64 into a duplicate, descending or negative index (which
		// would break the strictly-ascending invariant the parallel
		// scatter kernels rely on, or panic the aggregator).
		if gap > c.paramLimit() {
			c.err = fmt.Errorf("fed: sparse index gap %d exceeds limit", gap)
			return nil, nil
		}
		idx := prev + 1 + int64(gap)
		if idx >= int64(n) {
			c.err = fmt.Errorf("fed: sparse index %d out of range [0,%d)", idx, n)
			return nil, nil
		}
		sp.Indices[i] = int32(idx)
		prev = idx
	}
	c.quantValues(sp.Values, q, scale)
	return nil, sp
}

// values fills out with n dequantised values (reading the scale first for
// int8 dense blocks).
func (c *cursor) values(out []float32, q Quant) {
	var scale float32
	if q == QuantI8 {
		scale = c.f32()
	}
	c.quantValues(out, q, scale)
}

func (c *cursor) quantValues(out []float32, q Quant, scale float32) {
	switch q {
	case QuantF16:
		b := c.take(len(out) * 2)
		if b == nil {
			return
		}
		for i := range out {
			out[i] = f16ToF32(binary.LittleEndian.Uint16(b[2*i:]))
		}
	case QuantI8:
		b := c.take(len(out))
		if b == nil {
			return
		}
		for i := range out {
			out[i] = float32(int8(b[i])) * scale
		}
	default:
		b := c.take(len(out) * 4)
		if b == nil {
			return
		}
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
		}
	}
}

func (c *cursor) f64s() []float64 {
	n := c.u64()
	if c.err != nil {
		return nil
	}
	if n > uint64(len(c.buf)-c.off)/8 {
		c.err = fmt.Errorf("fed: float64 count %d exceeds payload", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := grow(&c.scratch.f64, int(n))
	for i := range out {
		out[i] = c.f64()
	}
	return out
}

func (c *cursor) finish(m Msg) (Msg, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(c.buf) {
		return nil, fmt.Errorf("fed: %d trailing payload bytes", len(c.buf)-c.off)
	}
	return m, nil
}

func decodePayload(kind Kind, payload []byte, s *decodeScratch) (Msg, error) {
	c := &cursor{buf: payload, scratch: s}
	switch kind {
	case KindHello:
		m := &s.hello
		*m = helloMsg{clientID: int(c.u32()), fingerprint: c.u64(), quant: Quant(c.u8())}
		if c.err == nil && m.quant > QuantI8 {
			c.err = fmt.Errorf("fed: unknown quantisation mode %d in hello", m.quant)
		}
		if c.err == nil && uint64(m.clientID) > maxSeatID {
			c.err = fmt.Errorf("fed: malformed seat ID %d in hello", m.clientID)
		}
		flags := c.u8()
		m.rejoin = flags&flagRejoin != 0
		m.join = flags&flagJoin != 0
		if c.err == nil && m.join {
			// A join hello is seatless by definition: the server assigns the
			// ID. Claiming one — or both the join and rejoin roles at once —
			// is a malformed frame, rejected before the acceptor sees it.
			if m.rejoin {
				c.err = fmt.Errorf("fed: hello claims both join and rejoin")
			} else if m.clientID != 0 {
				c.err = fmt.Errorf("fed: join hello claims seat %d, want 0 (the server assigns seats)", m.clientID)
			}
		}
		m.lastVersion = c.uvarint()
		return c.finish(m)
	case KindRoundStart:
		m := &s.rs
		*m = RoundStart{TaskIdx: int(c.u32()), Round: int(c.u32())}
		flags := c.u8()
		m.Participate = flags&flagParticipate != 0
		m.TaskDone = flags&flagTaskDone != 0
		return c.finish(m)
	case KindUpdate:
		m := &s.upd
		*m = Update{ClientID: int(c.u32())}
		m.Participating = c.u8()&flagParticipate != 0
		m.Weight = c.f64()
		m.ComputeSeconds = c.f64()
		m.UpBytes = int64(c.u64())
		m.DownBytes = int64(c.u64())
		m.BaseVersion = c.uvarint()
		m.Params, m.Sparse = c.params()
		return c.finish(m)
	case KindGlobalModel:
		m := &s.gm
		version := c.uvarint()
		taskFinal := c.u8()&flagTaskFinal != 0
		dense, sp := c.params()
		if sp != nil {
			// Clients install the global model as a full vector (mask merge,
			// SetFlatParams), so a sparse-encoded broadcast is densified here:
			// absent coordinates are zero by definition of the block.
			dense = sp.DensifyInto(s.f32)
			s.f32 = dense
		}
		*m = GlobalModel{Params: dense, Version: version, TaskFinal: taskFinal}
		return c.finish(m)
	case KindRoundEnd:
		m := &s.re
		*m = RoundEnd{ClientID: int(c.u32())}
		m.Dead = c.u8()&flagDead != 0
		m.EvalAccs = c.f64s()
		return c.finish(m)
	case KindCatchup:
		m := &s.cu
		taskIdx := int(c.u32())
		seen := c.uvarint()
		if c.err == nil && (uint64(taskIdx) > maxSeatID || seen > maxSeatID) {
			// Validated before the params block is decoded: a hostile task
			// position or resume round is refused before any allocation.
			c.err = fmt.Errorf("fed: catch-up position (task %d, seen %d) out of range", taskIdx, seen)
		}
		version := c.uvarint()
		flags := c.u8()
		dense, sp := c.params()
		if sp != nil {
			// Like the global model, the catch-up payload is installed as a
			// full vector: densify a sparse-encoded frame here.
			dense = sp.DensifyInto(s.f32)
			s.f32 = dense
		}
		*m = Catchup{TaskIdx: taskIdx, Seen: int(seen), Version: version,
			TaskFinal: flags&flagTaskFinal != 0, TaskDone: flags&flagTaskDone != 0,
			Params: dense}
		return c.finish(m)
	case KindLeave:
		m := &s.lv
		*m = Leave{ClientID: int(c.u32())}
		if c.err == nil && uint64(m.ClientID) > maxSeatID {
			c.err = fmt.Errorf("fed: malformed seat ID %d in leave", m.ClientID)
		}
		return c.finish(m)
	default:
		return nil, fmt.Errorf("fed: unknown message kind %d", kind)
	}
}
