package fed

import (
	"repro/internal/tensor"
)

// Aggregator combines one round's participating client updates into the
// global flat parameter vector. Implementations receive updates ordered by
// client ID (the order that makes floating-point aggregation reproducible)
// and may return a slice aliasing internal scratch: the server guarantees
// the result is consumed before the next Aggregate call.
type Aggregator interface {
	// Name identifies the aggregation rule in reports.
	Name() string
	// Aggregate reduces the updates to a global vector, or nil when the
	// round had no participants.
	Aggregate(updates []*Update) []float32
}

// StreamAggregator is an Aggregator that can reduce a round incrementally:
// the server folds each update into the global scratch the moment it is
// decoded (still in ascending-client-ID order) instead of buffering per-
// client copies, so server memory and latency stay flat as the federation
// grows. An update passed to Accumulate may alias transport decode buffers
// and is only valid for the duration of the call.
type StreamAggregator interface {
	Aggregator
	// BeginRound resets the round state.
	BeginRound()
	// Accumulate folds one participating update into the round.
	Accumulate(u *Update)
	// FinishRound completes the reduction and returns the global vector, or
	// nil when no update was accumulated. The result may alias internal
	// scratch rewritten by the next round.
	FinishRound() []float32
}

// WeightedFedAvg is §III-A's aggregation rule: the sample-count-weighted
// average of the participants' parameter vectors. A zero weight counts as
// one so an empty-shard client still participates. The accumulation order
// (ascending client ID, Axpy then one scale) is part of the contract — it
// is what keeps results bitwise reproducible across transports and
// parallelism settings.
type WeightedFedAvg struct {
	buf []float32 // global scratch, reused every round
}

// Name identifies the aggregation rule.
func (a *WeightedFedAvg) Name() string { return "WeightedFedAvg" }

// Aggregate computes the weighted average into reused scratch.
func (a *WeightedFedAvg) Aggregate(updates []*Update) []float32 {
	var total float64
	var global []float32
	for _, u := range updates {
		w := u.Weight
		if w == 0 {
			w = 1
		}
		total += w
		if global == nil {
			n := u.ParamLen()
			if cap(a.buf) < n {
				a.buf = make([]float32, n)
			}
			global = a.buf[:n]
			clear(global)
		}
		if u.Sparse != nil {
			tensor.AxpySparse(global, float32(w), u.Sparse)
		} else {
			tensor.AxpySlice(global, float32(w), u.Params)
		}
	}
	if global == nil {
		return nil
	}
	inv := float32(1 / total)
	for i := range global {
		global[i] *= inv
	}
	return global
}

// sparseBuf is one of SparseFedAvg's two global scratch vectors, together
// with the record of which coordinates its last round dirtied.
type sparseBuf struct {
	buf   []float32
	dirty []int32 // coordinates to re-zero before this buffer's next round
	// dirtyAll marks that the whole buffer must be re-zeroed (after a dense
	// round).
	dirtyAll bool
}

// ensure sizes the buffer to n and restores its all-zero invariant, clearing
// only the coordinates its previous round touched.
func (b *sparseBuf) ensure(n int) {
	if cap(b.buf) < n {
		b.buf = make([]float32, n) // fresh zeros
		b.dirty = b.dirty[:0]
		b.dirtyAll = false
		return
	}
	full := b.buf[:cap(b.buf)]
	if b.dirtyAll {
		clear(full)
	} else {
		for _, j := range b.dirty {
			full[j] = 0
		}
	}
	b.dirty = b.dirty[:0]
	b.dirtyAll = false
	b.buf = full[:n]
}

// SparseFedAvg is WeightedFedAvg restructured so a round costs O(active
// knowledge), not O(model × clients): it implements StreamAggregator,
// folding each update into a global scratch as it arrives, and when every
// update of a round is sparse it normalises and re-zeroes only the union of
// touched coordinates. Dense updates take the exact arithmetic of
// WeightedFedAvg (same clear → Axpy → one scale, same order), so for dense
// rounds the two aggregators are bitwise interchangeable — which is why this
// is the server default. Steady-state rounds allocate nothing.
//
// Rounds alternate between two scratch vectors: a streaming reducer starts
// writing when the next round's first update is decoded, which over the
// zero-copy loopback transport can be before every participant has consumed
// the previous broadcast — the broadcast slice aliases the *other* buffer,
// which is not rewritten until one further full collection has proven every
// participant acknowledged it.
type SparseFedAvg struct {
	bufs  [2]sparseBuf
	cur   int // buffer accumulating the current round
	total float64
	count int
	// full marks that this round normalises and re-zeroes the whole vector:
	// a dense update joined, or the sparse union outgrew the point where
	// per-coordinate bookkeeping beats one sequential sweep. Scaling a zero
	// coordinate is the identity, so both modes produce the same bits.
	full bool

	union   []int32   // ascending union of this round's sparse coordinates
	merge   []int32   // union merge scratch, swapped with union
	winVals []float32 // windowState gather scratch
}

// Name identifies the aggregation rule.
func (a *SparseFedAvg) Name() string { return "SparseFedAvg" }

// BeginRound flips to the other scratch vector and resets the round state.
func (a *SparseFedAvg) BeginRound() {
	a.cur ^= 1
	a.total, a.count, a.full = 0, 0, false
	a.union = a.union[:0]
}

// Accumulate folds one participating update into the round's scratch.
func (a *SparseFedAvg) Accumulate(u *Update) {
	w := u.Weight
	if w == 0 {
		w = 1
	}
	a.total += w
	b := &a.bufs[a.cur]
	if a.count == 0 {
		b.ensure(u.ParamLen())
	}
	a.count++
	if u.Sparse == nil {
		tensor.AxpySlice(b.buf, float32(w), u.Params)
		a.full = true
		return
	}
	tensor.AxpySparse(b.buf, float32(w), u.Sparse)
	if a.full {
		return
	}
	// Clients sharing one prune mask (the coordinated-sparsity regime) send
	// identical index lists: detect that with one cheap scan and skip the
	// branchier merge. When clients prune independently the union keeps
	// growing; past a quarter of the vector, one sequential full sweep is
	// cheaper than per-coordinate bookkeeping, so stop tracking.
	if !equalIndices(a.union, u.Sparse.Indices) {
		a.merge = tensor.MergeIndices(a.merge, a.union, u.Sparse.Indices)
		a.union, a.merge = a.merge, a.union
		if len(a.union)*4 > len(b.buf) {
			a.full = true
		}
	}
}

// FinishRound normalises by the total weight — over the whole vector in
// full mode, over only the touched-coordinate union otherwise — and records
// what must be re-zeroed before this buffer's next round.
func (a *SparseFedAvg) FinishRound() []float32 {
	if a.count == 0 {
		return nil
	}
	b := &a.bufs[a.cur]
	inv := float32(1 / a.total)
	if a.full {
		for i := range b.buf {
			b.buf[i] *= inv
		}
		b.dirtyAll = true
		return b.buf
	}
	tensor.ScaleIndexed(b.buf, inv, a.union)
	b.dirty = append(b.dirty[:0], a.union...)
	b.dirtyAll = false
	return b.buf
}

// windowState exports the open round's raw (unscaled) partial accumulation
// (windowedAggregator): the whole scratch vector in full mode, the
// touched-coordinate union and its partial sums otherwise. The returns alias
// aggregator scratch and are only valid until the next Accumulate.
func (a *SparseFedAvg) windowState() (idx []int32, vals []float32, dense bool, total float64) {
	b := &a.bufs[a.cur]
	if a.full {
		return nil, b.buf, true, a.total
	}
	if cap(a.winVals) < len(a.union) {
		a.winVals = make([]float32, len(a.union))
	}
	a.winVals = a.winVals[:len(a.union)]
	for i, j := range a.union {
		a.winVals[i] = b.buf[j]
	}
	return a.union, a.winVals, false, a.total
}

// restoreWindow reinstates a partial accumulation captured by windowState
// into a freshly begun round (windowedAggregator): subsequent Accumulates
// stack on top exactly as they would have on the uninterrupted originals.
func (a *SparseFedAvg) restoreWindow(n int, idx []int32, vals []float32, dense bool, total float64, count int) {
	a.total, a.count = total, count
	b := &a.bufs[a.cur]
	b.ensure(n)
	if dense {
		copy(b.buf, vals)
		a.full = true
		return
	}
	for i, j := range idx {
		b.buf[j] = vals[i]
	}
	a.union = append(a.union[:0], idx...)
	a.full = len(a.union)*4 > n
}

// equalIndices reports whether two index lists are element-wise equal.
func equalIndices(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// Aggregate implements the buffered Aggregator interface in terms of the
// streaming one.
func (a *SparseFedAvg) Aggregate(updates []*Update) []float32 {
	a.BeginRound()
	for _, u := range updates {
		a.Accumulate(u)
	}
	return a.FinishRound()
}
