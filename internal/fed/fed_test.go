package fed

import (
	"context"
	"testing"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// tinySetup builds a 3-client, 3-task CI-scale federation.
func tinySetup(seed uint64) (Config, *device.Cluster, [][]data.ClientTask, func(*tensor.RNG) *model.Model) {
	ds := data.Generate(data.Config{Name: "t", NumClasses: 12, TrainPerClass: 10,
		TestPerClass: 4, C: 3, H: 12, W: 12, Noise: 0.3, Seed: seed})
	tasks := data.SplitTasks(ds, 3)
	seqs := data.Federate(tasks, 3, data.CIAlloc(seed+1))
	cfg := Config{
		Method: "test", Rounds: 2, LocalIters: 3, BatchSize: 8,
		LR: 0.02, LRDecay: 1e-4, NumClasses: 12,
		Bandwidth: 1024 * 1024, Seed: seed,
	}
	build := func(rng *tensor.RNG) *model.Model {
		return model.MustBuild("SixCNN", 12, 3, 12, 12, 1, rng)
	}
	return cfg, device.Jetson20(), seqs, build
}

// passthrough is a minimal strategy for engine tests.
type passthrough struct {
	BaseStrategy
	ctx       *ClientCtx
	steps     int
	taskEnds  int
	aggCalls  int
	preAggSum []float32
}

func (p *passthrough) Name() string { return "passthrough" }
func (p *passthrough) TrainStep(x *tensor.Tensor, labels []int, classes []int) float64 {
	m := p.ctx.Model
	logits := m.Forward(x, true)
	loss, dl := nn.MaskedCrossEntropy(logits, labels, classes)
	nn.ZeroGrads(m.Params())
	m.Backward(dl)
	p.ctx.Opt.Step(m.Params())
	p.steps++
	return loss
}
func (p *passthrough) AfterAggregate(pre []float32, ct data.ClientTask) {
	p.aggCalls++
	p.preAggSum = pre
}
func (p *passthrough) TaskEnd(ct data.ClientTask) { p.taskEnds++ }

func TestEngineProtocolCounts(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(1)
	var made []*passthrough
	e := NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
		p := &passthrough{ctx: ctx}
		made = append(made, p)
		return p
	})
	res := e.Run()
	if len(res.PerTask) != 3 {
		t.Fatalf("%d task points", len(res.PerTask))
	}
	for _, p := range made {
		if p.steps != 3*2*3 { // tasks × rounds × iters
			t.Fatalf("steps = %d, want 18", p.steps)
		}
		if p.taskEnds != 3 {
			t.Fatalf("taskEnds = %d", p.taskEnds)
		}
		if p.aggCalls != 3*2 {
			t.Fatalf("aggCalls = %d", p.aggCalls)
		}
	}
}

func TestEngineClientsStartIdentical(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(2)
	var flats [][]float32
	NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
		flats = append(flats, nn.FlattenParams(ctx.Model.Params()))
		return &passthrough{ctx: ctx}
	})
	for i := 1; i < len(flats); i++ {
		for j := range flats[0] {
			if flats[i][j] != flats[0][j] {
				t.Fatal("clients must start from the same global model")
			}
		}
	}
}

func TestEngineAggregationConverges(t *testing.T) {
	// After a round with aggregation and no AfterAggregate mutation, all
	// clients must hold identical parameters.
	cfg, cluster, seqs, build := tinySetup(3)
	cfg.Rounds = 1
	var ctxs []*ClientCtx
	e := NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
		ctxs = append(ctxs, ctx)
		p := &passthrough{ctx: ctx}
		return p
	})
	e.Run()
	ref := nn.FlattenParams(ctxs[0].Model.Params())
	for _, ctx := range ctxs[1:] {
		got := nn.FlattenParams(ctx.Model.Params())
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatal("clients diverge after aggregation with no local hook")
			}
		}
	}
}

func TestEngineLearningHappens(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(4)
	cfg.Rounds = 4
	cfg.LocalIters = 6
	e := NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
		return &passthrough{ctx: ctx}
	})
	res := e.Run()
	// Accuracy on the first task right after learning it must beat the
	// 1/|classes| chance level by a clear margin (CI alloc gives each
	// client 2-3 classes → chance ≈ 0.4).
	if acc := res.Matrix.Get(0, 0); acc < 0.55 {
		t.Fatalf("first-task accuracy %v, want > 0.55", acc)
	}
}

func TestEngineTimeAndCommAccounting(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(5)
	e := NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
		return &passthrough{ctx: ctx}
	})
	res := e.Run()
	last := res.PerTask[len(res.PerTask)-1]
	if last.SimHours <= 0 || last.CommHours <= 0 {
		t.Fatalf("time accounting missing: %+v", last)
	}
	if last.SimHours < last.CommHours {
		t.Fatal("total time must include communication time")
	}
	if last.UpBytes <= 0 || last.DownBytes <= 0 {
		t.Fatal("byte accounting missing")
	}
	// 3 clients × 6 rounds × model bytes each way.
	m := model.MustBuild("SixCNN", 12, 3, 12, 12, 1, tensor.NewRNG(1))
	want := int64(3 * 6 * m.ParamBytes())
	if last.UpBytes != want {
		t.Fatalf("UpBytes = %d, want %d", last.UpBytes, want)
	}
	// Monotone accumulation across tasks.
	for i := 1; i < len(res.PerTask); i++ {
		if res.PerTask[i].SimHours <= res.PerTask[i-1].SimHours {
			t.Fatal("simulated time must accumulate")
		}
		if res.PerTask[i].UpBytes <= res.PerTask[i-1].UpBytes {
			t.Fatal("bytes must accumulate")
		}
	}
}

func TestEngineLowerBandwidthCostsMoreTime(t *testing.T) {
	run := func(bw float64) float64 {
		cfg, cluster, seqs, build := tinySetup(6)
		cfg.Bandwidth = bw
		e := NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
			return &passthrough{ctx: ctx}
		})
		res := e.Run()
		return res.PerTask[len(res.PerTask)-1].CommHours
	}
	fast := run(10 * 1024 * 1024)
	slow := run(50 * 1024)
	if slow <= fast {
		t.Fatalf("50KB/s (%v h) must cost more than 10MB/s (%v h)", slow, fast)
	}
}

// memHog simulates a strategy whose memory grows per task, to exercise the
// OOM eviction path (the FedWEIT-on-2GB-Pi scenario).
type memHog struct {
	passthrough
	tasks int
}

func (m *memHog) TaskEnd(ct data.ClientTask) { m.tasks++ }
func (m *memHog) MemoryBytes() int           { return m.tasks * 1 << 20 } // 1 MB per task

func TestEngineOOMEviction(t *testing.T) {
	cfg, _, seqs, build := tinySetup(7)
	// Device with 3 MB of memory and MemScale 1: the hog (1 MB/task, plus
	// model overhead) must die before the last task.
	tiny := &device.Cluster{Devices: []device.Device{{Name: "tiny", FLOPS: 1e9, MemBytes: 2 << 20}}}
	cfg.MemScale = 1
	e := NewEngine(cfg, tiny, seqs[:1], build, func(ctx *ClientCtx) Strategy {
		return &memHog{passthrough: passthrough{ctx: ctx}}
	})
	res := e.Run()
	if len(res.DeadAfter) != 1 {
		t.Fatalf("expected 1 eviction, got %v", res.DeadAfter)
	}
	if e.AliveClients() != 0 {
		t.Fatal("client should be dead")
	}
}

func TestEngineNoOOMWithoutMemScale(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(8)
	cfg.MemScale = 0 // disabled
	e := NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
		return &memHog{passthrough: passthrough{ctx: ctx}}
	})
	res := e.Run()
	if len(res.DeadAfter) != 0 {
		t.Fatal("MemScale 0 must disable eviction")
	}
}

// maskHalf aggregates only the first half of parameters.
type maskHalf struct {
	passthrough
	mask []bool
}

func (m *maskHalf) AggregateMask() []bool { return m.mask }

func TestEngineAggregateMask(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(9)
	cfg.Rounds = 1
	cfg.LocalIters = 2
	var ctxs []*ClientCtx
	e := NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
		n := ctx.Model.NumParams()
		mask := make([]bool, n)
		for i := 0; i < n/2; i++ {
			mask[i] = true
		}
		ctxs = append(ctxs, ctx)
		return &maskHalf{passthrough: passthrough{ctx: ctx}, mask: mask}
	})
	e.Run()
	// The masked half aggregates (identical across clients); the unmasked
	// half stays personal (differs across clients somewhere).
	a := nn.FlattenParams(ctxs[0].Model.Params())
	b := nn.FlattenParams(ctxs[1].Model.Params())
	n := len(a)
	for i := 0; i < n/2; i++ {
		if a[i] != b[i] {
			t.Fatal("aggregated half must be identical")
		}
	}
	differ := false
	for i := n / 2; i < n; i++ {
		if a[i] != b[i] {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("personal half should differ between clients")
	}
}

func TestEvalClientTaskChanceLevel(t *testing.T) {
	rng := tensor.NewRNG(10)
	m := model.MustBuild("SixCNN", 10, 3, 12, 12, 1, rng)
	ds := data.Generate(data.Config{Name: "t", NumClasses: 10, TrainPerClass: 2,
		TestPerClass: 20, C: 3, H: 12, W: 12, Noise: 0.3, Seed: 11})
	ct := data.ClientTask{Classes: []int{0, 1, 2, 3, 4}, Test: ds.Test[:100]}
	// Untrained model ≈ chance on 5 classes; mainly checks masking works
	// and no crash on batched eval.
	acc := EvalClientTask(m, ct)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
	if EvalClientTask(m, data.ClientTask{}) != 0 {
		t.Fatal("empty test set must give 0")
	}
}

func TestEngineDropoutInjection(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(11)
	cfg.DropoutProb = 0.5
	var made []*passthrough
	e := NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
		p := &passthrough{ctx: ctx}
		made = append(made, p)
		return p
	})
	res := e.Run()
	// Protocol still completes and produces sensible output.
	if len(res.PerTask) != 3 {
		t.Fatalf("%d task points", len(res.PerTask))
	}
	// With 50% dropout, total steps across clients must be strictly below
	// the no-dropout total (3 clients × 3 tasks × 2 rounds × 3 iters = 54)
	// and above zero.
	total := 0
	for _, p := range made {
		total += p.steps
	}
	if total <= 0 || total >= 54 {
		t.Fatalf("dropout steps = %d, want in (0, 54)", total)
	}
	// Accuracy still above floor: the protocol tolerated churn.
	if res.Matrix.Get(0, 0) <= 0.2 {
		t.Fatalf("first-task accuracy %v under dropout", res.Matrix.Get(0, 0))
	}
}

func TestEngineDropoutAlwaysHasParticipant(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(12)
	cfg.DropoutProb = 0.999 // nearly everyone drops every round
	var made []*passthrough
	e := NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
		p := &passthrough{ctx: ctx}
		made = append(made, p)
		return p
	})
	e.Run()
	total := 0
	for _, p := range made {
		total += p.steps
	}
	// Every round must have at least one participant: 3 tasks × 2 rounds ×
	// 3 iters minimum.
	if total < 18 {
		t.Fatalf("steps %d below the at-least-one-participant floor", total)
	}
}

// TestEngineAllClientsOfflineFallback pins the fallback path of the round
// loop: with DropoutProb = 1 every draw marks every client offline, so the
// server must force the first alive client back online each round — the
// protocol never runs a round with zero participants.
func TestEngineAllClientsOfflineFallback(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(13)
	cfg.DropoutProb = 1
	var made []*passthrough
	e := NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
		p := &passthrough{ctx: ctx}
		made = append(made, p)
		return p
	})
	res := e.Run()
	// Exactly client 0 (the first alive client) participates in every round.
	wantSteps := 3 * 2 * 3 // tasks × rounds × iters
	if made[0].steps != wantSteps {
		t.Fatalf("fallback client steps = %d, want %d", made[0].steps, wantSteps)
	}
	for i, p := range made[1:] {
		if p.steps != 0 {
			t.Fatalf("client %d trained %d steps while permanently offline", i+1, p.steps)
		}
	}
	// Accounting sees a single-participant round: one model upload per round.
	m := model.MustBuild("SixCNN", 12, 3, 12, 12, 1, tensor.NewRNG(1))
	if want := int64(3 * 2 * m.ParamBytes()); res.PerTask[2].UpBytes != want {
		t.Fatalf("UpBytes = %d, want %d", res.PerTask[2].UpBytes, want)
	}
	if len(res.PerTask) != 3 {
		t.Fatalf("%d task points", len(res.PerTask))
	}
}

// TestEngineObserverStreams checks the streaming lifecycle: the observer
// sees every aggregation round and every task point, in order, and the task
// points match what Run finally returns.
func TestEngineObserverStreams(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(14)
	e := NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
		return &passthrough{ctx: ctx}
	})
	var rounds []RoundStats
	var points []TaskPoint
	e.SetObserver(ObserverFuncs{
		Round: func(s RoundStats) { rounds = append(rounds, s) },
		Task:  func(tp TaskPoint) { points = append(points, tp) },
	})
	res := e.Run()
	if len(rounds) != 3*2 { // tasks × rounds
		t.Fatalf("observer saw %d rounds, want 6", len(rounds))
	}
	for i, s := range rounds {
		if s.TaskIdx != i/2 || s.Round != i%2 {
			t.Fatalf("round %d out of order: %+v", i, s)
		}
		if s.Participants != 3 {
			t.Fatalf("round %d: %d participants, want 3", i, s.Participants)
		}
		if s.ComputeSeconds <= 0 || s.CommSeconds <= 0 || s.UpBytes <= 0 {
			t.Fatalf("round %d missing accounting: %+v", i, s)
		}
	}
	if len(points) != len(res.PerTask) {
		t.Fatalf("observer saw %d task points, result has %d", len(points), len(res.PerTask))
	}
	for i := range points {
		if points[i] != res.PerTask[i] {
			t.Fatalf("streamed point %d %+v != result %+v", i, points[i], res.PerTask[i])
		}
	}
}

// TestEngineContextCancel checks the cancellable lifecycle: cancelling after
// the first task stops the run, returns the partial result, and tears down
// every client goroutine (RunContext returning proves no endpoint is stuck).
func TestEngineContextCancel(t *testing.T) {
	cfg, cluster, seqs, build := tinySetup(15)
	e := NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
		return &passthrough{ctx: ctx}
	})
	ctx, cancel := context.WithCancel(context.Background())
	e.SetObserver(ObserverFuncs{Task: func(TaskPoint) { cancel() }})
	res, err := e.RunContext(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.PerTask) != 1 {
		t.Fatalf("partial result has %d task points, want 1", len(res.PerTask))
	}
}

// TestEngineDeterministicAcrossParallelism is the acceptance bar for the
// parallel kernel layer and (since the Scheduler seam) for the extracted
// SyncScheduler: a full multi-task run must produce bitwise-identical
// client parameters and accuracy matrices for every combination of client
// parallelism and kernel thread count, whether the lockstep policy is
// selected implicitly (Scheduler "") or explicitly ("sync").
func TestEngineDeterministicAcrossParallelism(t *testing.T) {
	defer tensor.SetKernelThreads(0)
	run := func(par, threads int, sched string) ([]float32, []float64) {
		tensor.SetKernelThreads(threads)
		cfg, cluster, seqs, build := tinySetup(5)
		cfg.Parallelism = par
		cfg.Scheduler = sched
		var clients []*passthrough
		e := NewEngine(cfg, cluster, seqs, build, func(ctx *ClientCtx) Strategy {
			p := &passthrough{ctx: ctx}
			clients = append(clients, p)
			return p
		})
		res := e.Run()
		var params []float32
		for _, c := range clients {
			params = append(params, nn.FlattenParams(c.ctx.Model.Params())...)
		}
		var accs []float64
		for i := 0; i < 3; i++ {
			for j := 0; j <= i; j++ {
				accs = append(accs, res.Matrix.Get(i, j))
			}
		}
		return params, accs
	}
	refParams, refAccs := run(1, 1, "")
	combos := []struct {
		par, threads int
		sched        string
	}{
		{4, 1, ""}, {1, 4, ""}, {4, 8, ""}, {16, 16, ""},
		{1, 1, SchedulerSync}, {4, 8, SchedulerSync},
	}
	for _, combo := range combos {
		params, accs := run(combo.par, combo.threads, combo.sched)
		if len(params) != len(refParams) {
			t.Fatalf("combo %v: param count %d vs %d", combo, len(params), len(refParams))
		}
		for i := range params {
			if params[i] != refParams[i] {
				t.Fatalf("combo %v: param[%d] = %v, want %v", combo, i, params[i], refParams[i])
			}
		}
		for i := range accs {
			if accs[i] != refAccs[i] {
				t.Fatalf("combo %v: acc[%d] = %v, want %v", combo, i, accs[i], refAccs[i])
			}
		}
	}
}
