package fed

import (
	"io"
	"sync"
)

// Transport is one duplex message link between the server and a single
// client. The server holds one Transport per client; the client holds the
// peer end. Implementations must deliver messages in order, and must allow
// the two directions to be driven by different goroutines: one goroutine
// may Send while another Recvs (the asynchronous scheduler pumps the
// receive side on a dedicated reader goroutine while broadcasts go out).
// Each single direction is still used by one goroutine at a time, so
// implementations need not support concurrent Sends or concurrent Recvs.
//
// Recv returns io.EOF after the peer closes its end and all in-flight
// messages have been drained — that is the protocol's shutdown signal.
type Transport interface {
	Send(Msg) error
	Recv() (Msg, error)
	Close() error
}

// loopbackCap bounds in-flight messages per direction. The lockstep
// protocol never has more than two outstanding messages on a link
// (RoundStart followed by GlobalModel), so sends never block.
const loopbackCap = 4

// loopbackEnd is one side of an in-memory transport pair. Messages pass by
// reference — parameter slices are shared, never copied — which is what
// keeps the loopback engine's hot path allocation-free and bitwise
// identical to the old monolithic engine.
type loopbackEnd struct {
	send chan Msg
	recv chan Msg

	closeOnce  sync.Once
	closed     chan struct{} // this end closed
	peerClosed chan struct{} // other end closed
}

// Loopback returns a connected in-memory transport pair: the server end and
// the client end. The per-direction buffer fits the lockstep protocol; use
// LoopbackCap for schedulers that send without waiting.
func Loopback() (server, client Transport) {
	return LoopbackCap(loopbackCap)
}

// LoopbackCap is Loopback with an explicit per-direction buffer capacity.
// The asynchronous scheduler requires a capacity that covers a whole task's
// in-flight messages (Engine computes Rounds × clients + 4): neither
// endpoint may ever block on Send, or a slow client would stall the commit
// loop — the exact failure mode the scheduler exists to remove.
func LoopbackCap(n int) (server, client Transport) {
	s2c := make(chan Msg, n)
	c2s := make(chan Msg, n)
	sClosed := make(chan struct{})
	cClosed := make(chan struct{})
	server = &loopbackEnd{send: s2c, recv: c2s, closed: sClosed, peerClosed: cClosed}
	client = &loopbackEnd{send: c2s, recv: s2c, closed: cClosed, peerClosed: sClosed}
	return server, client
}

// Send delivers m to the peer, failing if either end is closed.
func (l *loopbackEnd) Send(m Msg) error {
	select {
	case <-l.closed:
		return io.ErrClosedPipe
	case <-l.peerClosed:
		return io.ErrClosedPipe
	default:
	}
	select {
	case l.send <- m:
		return nil
	case <-l.closed:
		return io.ErrClosedPipe
	case <-l.peerClosed:
		return io.ErrClosedPipe
	}
}

// Recv returns the next message. Buffered messages are drained before a
// peer close surfaces as io.EOF.
func (l *loopbackEnd) Recv() (Msg, error) {
	select {
	case m := <-l.recv:
		return m, nil
	default:
	}
	select {
	case m := <-l.recv:
		return m, nil
	case <-l.closed:
		return nil, io.ErrClosedPipe
	case <-l.peerClosed:
		select {
		case m := <-l.recv:
			return m, nil
		default:
			return nil, io.EOF
		}
	}
}

// Close shuts this end down; the peer's blocked and future Recvs return
// io.EOF once its buffer drains.
func (l *loopbackEnd) Close() error {
	l.closeOnce.Do(func() { close(l.closed) })
	return nil
}
