package fed

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/device"
)

// schedEvent is one message (or terminal transport error) delivered by a
// link's reader goroutine to the asynchronous scheduler's event loop.
type schedEvent struct {
	id  int
	msg Msg
	err error
}

// AsyncScheduler is the staleness-bounded buffered-asynchronous policy
// (FedBuff style). Clients train continuously against the latest committed
// global model — nobody waits for a straggler — and the server folds each
// arriving Update into the streaming aggregator the moment it is decoded,
// committing a new global version every CommitEvery (K) accepted updates
// and broadcasting it to every alive client. Each update is stamped with
// the global version it trained from (Update.BaseVersion); its staleness —
// committed version minus base version — scales its aggregation weight by
// 1/(1+staleness)^α, and updates staler than MaxStaleness are rejected
// outright (their traffic and device time still count; the client keeps
// training).
//
// What the policy deliberately relaxes, and what it keeps (see
// docs/ARCHITECTURE.md for the full contract):
//
//   - Relaxed: bitwise run-level reproducibility. Commits fold updates in
//     arrival order, and arrival order depends on real scheduling, so two
//     async runs of the same seed may differ — that is inherent to
//     asynchrony, not an implementation accident.
//   - Kept: version monotonicity (every commit increments the global
//     version exactly once), the staleness bound (no update older than
//     MaxStaleness is ever folded), ID-integrity (impersonated updates
//     abort), parameter-length agreement, and the aggregator's invariant
//     that an Update is only read for the duration of Accumulate.
//   - Kept: accounting equivalence at the boundary — with K = cohort size
//     and no stragglers, per-commit participant counts, traffic and the
//     simulated clock reproduce the synchronous scheduler's per-round
//     accounting.
//
// A dropped transport does not abort the run: the client is evicted, logged
// through ServerConfig.Logf, and the survivors keep scheduling (rejoin is
// future work — see ROADMAP).
type AsyncScheduler struct {
	commitK  int
	maxStale int
	alpha    float64

	started bool
	events  chan schedEvent
	acks    []chan struct{}
	stop    chan struct{}
	readers sync.WaitGroup

	// Per-client simulated clocks: each client accumulates its own compute
	// and communication time instead of being bound by the round's slowest
	// participant — the asynchronous clock model. The run's SimHours is the
	// maximum over clients.
	clocks     []float64
	commClocks []float64

	// global is the latest committed global model. Every commit copies the
	// aggregator's scratch into a fresh buffer (a "versioned commit
	// buffer") before broadcasting: zero-copy loopback frames queued behind
	// a training client must never be mutated by a later commit, and the
	// aggregator's double buffering only protects one round of lag.
	global []float32

	paramLen int // agreed parameter-vector length (0 until the first update)

	// current commit window
	buffered     int // accepted updates in the window
	staleCount   int // rejected-by-staleness updates in the window
	commitIdx    int // commit ordinal within the current task
	worstCompute float64
	worstComm    float64
	windowUp     int64
	windowDown   int64

	updatesSeen []int // per-client uploads received this task
}

// newAsyncScheduler resolves the async knobs' defaults against the cohort
// size. CommitEvery 0 → half the cohort (minimum 1).
func newAsyncScheduler(cfg ServerConfig) *AsyncScheduler {
	k := cfg.Async.CommitEvery
	if k <= 0 {
		k = cfg.NumClients / 2
		if k < 1 {
			k = 1
		}
	}
	return &AsyncScheduler{
		commitK:  k,
		maxStale: cfg.Async.MaxStaleness,
		alpha:    cfg.Async.StalenessAlpha,
		stop:     make(chan struct{}),
	}
}

// Name identifies the scheduling policy.
func (*AsyncScheduler) Name() string { return SchedulerAsync }

// Close releases the reader goroutines and waits for them to exit, so no
// reader still touches a transport (e.g. WireTransport's byte counters)
// after the server's Run returns. Blocked readers unblock through the stop
// channel and through the server having closed every transport first.
func (a *AsyncScheduler) Close() {
	if a.started {
		close(a.stop)
		a.readers.Wait()
	}
}

// start launches one reader goroutine per link. Readers deliver each
// received message to the shared event channel and then wait for the event
// loop's acknowledgement before the next Recv: a decoded message may alias
// the transport's reusable decode buffers, so the reader must not decode
// ahead while the event loop still reads the previous message. A terminal
// error is delivered without waiting (the events channel has one slot per
// reader, so shutdown never blocks a reader that nobody is draining).
func (a *AsyncScheduler) start(s *Server) {
	a.started = true
	a.events = make(chan schedEvent, len(s.links))
	a.acks = make([]chan struct{}, len(s.links))
	a.clocks = make([]float64, len(s.links))
	a.commClocks = make([]float64, len(s.links))
	a.updatesSeen = make([]int, len(s.links))
	for i, t := range s.links {
		a.acks[i] = make(chan struct{}, 1)
		a.readers.Add(1)
		go func(id int, t Transport) {
			defer a.readers.Done()
			for {
				m, err := t.Recv()
				select {
				case a.events <- schedEvent{id: id, msg: m, err: err}:
				case <-a.stop:
					return
				}
				if err != nil {
					return
				}
				select {
				case <-a.acks[id]:
				case <-a.stop:
					return
				}
			}
		}(i, t)
	}
}

// RunTask drives one task asynchronously: announce the task, fold uploads
// as they arrive (committing every K accepted), flush the residual buffer
// once every alive client has uploaded Rounds updates, broadcast the
// task-final global, and collect the RoundEnd reports.
func (a *AsyncScheduler) RunTask(ctx context.Context, s *Server, taskIdx int, res *Result) error {
	if !a.started {
		a.start(s)
	}
	for i := range a.updatesSeen {
		a.updatesSeen[i] = 0
	}
	for i := range s.rows {
		s.rows[i] = nil
	}
	a.commitIdx = 0
	a.resetWindow()
	s.stream.BeginRound()

	// One RoundStart per task: the client paces its own Rounds uploads.
	rs := &RoundStart{TaskIdx: taskIdx, Round: 0, Participate: true, TaskDone: true}
	for i, t := range s.links {
		if !s.alive[i] {
			continue
		}
		if err := t.Send(rs); err != nil {
			a.evict(s, res, taskIdx, i, err)
		}
	}
	if s.AliveClients() == 0 {
		return fmt.Errorf("fed: async: all clients lost at task %d", taskIdx)
	}

	// Collect phase: every alive client owes Rounds uploads.
	for !a.allUploaded(s) {
		ev, err := a.nextEvent(ctx)
		if err != nil {
			return err
		}
		if !s.alive[ev.id] {
			// A message can race its sender's eviction; drop it, but ack so
			// the reader runs on to its terminal error.
			if ev.err == nil {
				a.acks[ev.id] <- struct{}{}
			}
			continue
		}
		if ev.err != nil {
			a.evict(s, res, taskIdx, ev.id, ev.err)
			if s.AliveClients() == 0 {
				return fmt.Errorf("fed: async: all clients lost at task %d", taskIdx)
			}
			continue
		}
		u, ok := ev.msg.(*Update)
		if !ok {
			return fmt.Errorf("fed: async: client %d sent %T, want *Update", ev.id, ev.msg)
		}
		if err := a.handleUpdate(s, taskIdx, ev.id, u); err != nil {
			return err
		}
		a.acks[ev.id] <- struct{}{}
	}

	// Flush the residual window so no accepted training is lost — also when
	// it holds only staleness rejections, so the observer's Stale counts
	// cover the task's tail (an empty flush bumps no version and broadcasts
	// nothing). Then close the task with the final broadcast every
	// surviving client blocks on.
	if a.buffered > 0 || a.staleCount > 0 {
		a.commit(s, taskIdx)
	}
	final := &GlobalModel{Params: a.global, Version: s.version, TaskFinal: true}
	for i, t := range s.links {
		if !s.alive[i] {
			continue
		}
		if err := t.Send(final); err != nil {
			a.evict(s, res, taskIdx, i, err)
		}
	}

	// Finish phase: gather RoundEnd reports from the survivors. reported
	// keeps the books straight when a connection drops after its client
	// already delivered RoundEnd: that client completed the task (its row
	// stands, pending already moved on), so the eviction must not
	// decrement pending a second time and cut the remaining survivors'
	// reports off.
	reported := make([]bool, len(s.links))
	pending := s.AliveClients()
	for pending > 0 {
		ev, err := a.nextEvent(ctx)
		if err != nil {
			return err
		}
		if !s.alive[ev.id] {
			if ev.err == nil {
				a.acks[ev.id] <- struct{}{}
			}
			continue
		}
		if ev.err != nil {
			a.evict(s, res, taskIdx, ev.id, ev.err)
			if !reported[ev.id] {
				pending--
			}
			continue
		}
		re, ok := ev.msg.(*RoundEnd)
		if !ok {
			return fmt.Errorf("fed: async: client %d sent %T, want *RoundEnd", ev.id, ev.msg)
		}
		if err := s.handleRoundEnd(ev.id, re, taskIdx, res); err != nil {
			return err
		}
		reported[ev.id] = true
		pending--
		a.acks[ev.id] <- struct{}{}
	}
	s.fillMatrixRow(taskIdx, res)

	// Asynchronous clock model: the task is done when the slowest client's
	// own accumulated time is — not the sum of per-round maxima.
	s.simSeconds = maxOf(a.clocks)
	s.commSeconds = maxOf(a.commClocks)
	return nil
}

// nextEvent waits for the next reader delivery or cancellation.
func (a *AsyncScheduler) nextEvent(ctx context.Context) (schedEvent, error) {
	select {
	case <-ctx.Done():
		return schedEvent{}, ctx.Err()
	case ev := <-a.events:
		return ev, nil
	}
}

// handleUpdate accounts, staleness-checks and folds one upload. The update
// may alias the link's decode buffers: everything the scheduler keeps is
// copied out (or folded into aggregator scratch) before returning.
func (a *AsyncScheduler) handleUpdate(s *Server, taskIdx, id int, u *Update) error {
	if u.ClientID != id {
		return fmt.Errorf("fed: link %d sent update claiming client %d", id, u.ClientID)
	}
	if !u.Participating {
		return fmt.Errorf("fed: async: client %d sent a non-participating update", id)
	}
	if u.BaseVersion > s.version {
		return fmt.Errorf("fed: async: client %d trained from version %d, server is at %d", id, u.BaseVersion, s.version)
	}
	if n := u.ParamLen(); a.paramLen == 0 {
		a.paramLen = n
	} else if n != a.paramLen {
		return fmt.Errorf("fed: client %d sent %d parameters, others sent %d", id, n, a.paramLen)
	}
	a.updatesSeen[id]++

	// The client did the work and the link carried the bytes whether or not
	// the update is folded, so clocks and traffic count unconditionally.
	comm := device.CommTime(u.UpBytes+u.DownBytes, s.cfg.Bandwidth)
	a.clocks[id] += u.ComputeSeconds + comm
	a.commClocks[id] += comm
	if u.ComputeSeconds > a.worstCompute {
		a.worstCompute = u.ComputeSeconds
	}
	if comm > a.worstComm {
		a.worstComm = comm
	}
	a.windowUp += u.UpBytes
	a.windowDown += u.DownBytes
	s.upBytes += u.UpBytes
	s.downBytes += u.DownBytes

	staleness := int(s.version - u.BaseVersion)
	if a.maxStale > 0 && staleness > a.maxStale {
		a.staleCount++
		return nil
	}
	w := u.Weight
	if w == 0 {
		w = 1
	}
	if a.alpha > 0 && staleness > 0 {
		w *= math.Pow(1/(1+float64(staleness)), a.alpha)
	}
	u.Weight = w
	s.stream.Accumulate(u)
	a.buffered++
	if a.buffered >= a.commitK {
		a.commit(s, taskIdx)
	}
	return nil
}

// commit closes the current window: finish the streaming reduction, bump
// the global version, copy the result into a fresh versioned buffer,
// broadcast it to every alive client, and report the commit to the
// observer. A window holding only staleness rejections (the task-closing
// flush) commits nothing — no version bump, no broadcast — but still
// reports a RoundStats with Participants 0 so Stale counts are never
// dropped.
func (a *AsyncScheduler) commit(s *Server, taskIdx int) {
	global := s.stream.FinishRound()
	if global != nil {
		s.version++
		a.global = append([]float32(nil), global...)
		gm := &GlobalModel{Params: a.global, Version: s.version}
		for i, t := range s.links {
			if !s.alive[i] {
				continue
			}
			if err := t.Send(gm); err != nil {
				// Defer the eviction bookkeeping to the reader's error
				// event (it owns DeadAfter/logging); just stop sending.
				continue
			}
		}
	}
	if s.obs != nil {
		s.obs.RoundDone(RoundStats{
			TaskIdx: taskIdx, Round: a.commitIdx, Participants: a.buffered,
			Version: s.version, Stale: a.staleCount,
			ComputeSeconds: a.worstCompute, CommSeconds: a.worstComm,
			UpBytes: a.windowUp, DownBytes: a.windowDown,
		})
	}
	a.commitIdx++
	a.resetWindow()
	s.stream.BeginRound()
}

// resetWindow clears the per-commit accounting.
func (a *AsyncScheduler) resetWindow() {
	a.buffered, a.staleCount = 0, 0
	a.worstCompute, a.worstComm = 0, 0
	a.windowUp, a.windowDown = 0, 0
}

// allUploaded reports whether every alive client has delivered its Rounds
// uploads for the current task.
func (a *AsyncScheduler) allUploaded(s *Server) bool {
	for i, n := range a.updatesSeen {
		if s.alive[i] && n < s.cfg.Rounds {
			return false
		}
	}
	return true
}

// evict removes a client whose transport failed: mark it dead, record the
// task it was lost at, close the link, log, and keep scheduling the
// survivors. This is the asynchronous answer to churn — a dropped TCP
// connection costs one client, not the run.
func (a *AsyncScheduler) evict(s *Server, res *Result, taskIdx, id int, err error) {
	if !s.alive[id] {
		return
	}
	s.alive[id] = false
	res.DeadAfter[id] = taskIdx
	s.links[id].Close()
	s.logf("fed: async: evicted client %d at task %d: %v", id, taskIdx, err)
}

// maxOf returns the maximum element (0 for an empty slice).
func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
