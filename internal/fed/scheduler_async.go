package fed

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/device"
)

// schedEvent is one message (or terminal transport error) delivered by a
// link's reader goroutine to the asynchronous scheduler's event loop. gen
// is the reader's link generation: a rejoin replaces a seat's link and
// bumps the generation, so stragglers from the dead link are recognised and
// dropped instead of being mistaken for the fresh one's traffic. ack is the
// reader's private hand-back channel (nil on terminal errors): the event
// loop signals it once the message — which may alias the link's decode
// scratch — has been fully consumed.
type schedEvent struct {
	id  int
	gen int
	msg Msg
	err error
	ack chan struct{}
}

// AsyncScheduler is the staleness-bounded buffered-asynchronous policy
// (FedBuff style). Clients train continuously against the latest committed
// global model — nobody waits for a straggler — and the server folds each
// arriving Update into the streaming aggregator the moment it is decoded,
// committing a new global version every CommitEvery (K) accepted updates
// and broadcasting it to every alive client. Each update is stamped with
// the global version it trained from (Update.BaseVersion); its staleness —
// committed version minus base version — scales its aggregation weight by
// 1/(1+staleness)^α, and updates staler than MaxStaleness are rejected
// outright (their traffic and device time still count; the client keeps
// training).
//
// What the policy deliberately relaxes, and what it keeps (see
// docs/ARCHITECTURE.md for the full contract):
//
//   - Relaxed: bitwise run-level reproducibility. Commits fold updates in
//     arrival order, and arrival order depends on real scheduling, so two
//     async runs of the same seed may differ — that is inherent to
//     asynchrony, not an implementation accident.
//   - Kept: version monotonicity (every commit increments the global
//     version exactly once), the staleness bound (no update older than
//     MaxStaleness is ever folded), ID-integrity (impersonated updates
//     abort), parameter-length agreement, and the aggregator's invariant
//     that an Update is only read for the duration of Accumulate.
//   - Kept: accounting equivalence at the boundary — with K = cohort size
//     and no stragglers, per-commit participant counts, traffic and the
//     simulated clock reproduce the synchronous scheduler's per-round
//     accounting.
//
// A dropped transport does not abort the run: the client is evicted, logged
// through ServerConfig.Logf, and the survivors keep scheduling. The seat is
// not discarded — its parameter length, device clock and per-task upload
// progress are retained — and when the server was given a rejoin source
// (Server.SetRejoins), a client that reconnects with a rejoin hello is
// re-admitted: the scheduler sends a Catchup (current task, uploads already
// received, the current versioned global) on the fresh link and splices it
// back into the reader set. See docs/ARCHITECTURE.md for the rejoin state
// machine and the seat-retention contract.
type AsyncScheduler struct {
	commitK  int
	maxStale int
	alpha    float64

	started bool
	events  chan schedEvent
	gens    []int // per-seat link generation, bumped by each rejoin
	rejoins <-chan RejoinRequest
	joins   <-chan JoinRequest
	stop    chan struct{}
	readers sync.WaitGroup

	// maxCohort caps the seat book under elastic membership; joins beyond it
	// are refused (ServerConfig.MaxCohort, resolved in NewServer).
	maxCohort int

	// Per-client simulated clocks: each client accumulates its own compute
	// and communication time instead of being bound by the round's slowest
	// participant — the asynchronous clock model. The run's SimHours is the
	// maximum over clients.
	clocks     []float64
	commClocks []float64

	// global is the latest committed global model. Every commit copies the
	// aggregator's scratch into a fresh buffer (a "versioned commit
	// buffer") before broadcasting: zero-copy loopback frames queued behind
	// a training client must never be mutated by a later commit, and the
	// aggregator's double buffering only protects one round of lag.
	global []float32

	paramLen int // agreed parameter-vector length (0 until the first update)

	// current commit window
	buffered       int // accepted updates in the window
	staleCount     int // rejected-by-staleness updates in the window
	nonFiniteCount int // rejected-by-ingest-hardening updates in the window
	evictMark      int // server evictTotal at the window's open, for the delta
	commitIdx      int // commit ordinal within the current task
	worstCompute   float64
	worstComm      float64
	windowUp       int64
	windowDown     int64

	updatesSeen []int // per-client uploads received this task

	staleTotal int // cumulative staleness rejections over the run

	// droppedWindow counts buffered uploads discarded at restart because a
	// buffered (robust) aggregator could not export its open commit window
	// into the snapshot — training lost to the model, surfaced loudly by
	// Server.DroppedWindowUploads so operators and tests see the cost.
	droppedWindow int

	// Restart recovery (restoreSnapshot). expect[i] marks a seat that was
	// alive at the snapshot cut and has not rejoined yet: the restored task
	// does not close — and an empty cohort is not "all clients lost" —
	// while any seat is still expected, because its client is out there
	// redialing with training state the books already count. resumed makes
	// the first RunTask keep the restored counters instead of zeroing them.
	expect  []bool
	resumed bool

	// stream is the server's streaming aggregator (captured in start):
	// fillSnapshot exports its open commit window through windowedAggregator
	// so a cut after every accepted upload carries the partial fold, not
	// just the last commit. pendWindow is the restored cut whose window the
	// first resumed RunTask reinstates before collecting uploads.
	stream     StreamAggregator
	pendWindow *checkpoint.ServerSnapshot
}

// newAsyncScheduler resolves the async knobs' defaults against the cohort
// size. CommitEvery 0 → half the cohort (minimum 1).
func newAsyncScheduler(cfg ServerConfig) *AsyncScheduler {
	k := cfg.Async.CommitEvery
	if k <= 0 {
		k = cfg.NumClients / 2
		if k < 1 {
			k = 1
		}
	}
	return &AsyncScheduler{
		commitK:   k,
		maxStale:  cfg.Async.MaxStaleness,
		alpha:     cfg.Async.StalenessAlpha,
		maxCohort: cfg.MaxCohort,
		stop:      make(chan struct{}),
	}
}

// Name identifies the scheduling policy.
func (*AsyncScheduler) Name() string { return SchedulerAsync }

// Close releases the reader goroutines and waits for them to exit, so no
// reader still touches a transport (e.g. WireTransport's byte counters)
// after the server's Run returns. Blocked readers — including superseded
// readers of links a rejoin replaced, which park on their private ack
// channel — unblock through the stop channel and through the server having
// closed every transport first.
func (a *AsyncScheduler) Close() {
	if a.started {
		close(a.stop)
		a.readers.Wait()
	}
}

// start launches one reader goroutine per link and captures the server's
// rejoin and join sources. The event channel is sized for the cohort cap so
// seat-book growth never needs to reallocate it.
func (a *AsyncScheduler) start(s *Server) {
	a.started = true
	a.stream = s.stream
	book := a.maxCohort
	if book < len(s.links) {
		book = len(s.links)
	}
	a.events = make(chan schedEvent, 2*book+4)
	a.gens = make([]int, len(s.links))
	a.rejoins = s.rejoins
	a.joins = s.joins
	a.clocks = make([]float64, len(s.links))
	a.commClocks = make([]float64, len(s.links))
	a.updatesSeen = make([]int, len(s.links))
	for i, t := range s.links {
		if !s.alive[i] {
			// A restored seat has no live link yet (deadLink placeholder);
			// its reader starts when the client rejoins.
			continue
		}
		a.startReader(i, t)
	}
}

// startReader launches the reader goroutine of one link (the initial set,
// and each rejoined replacement — splicing a fresh link into the reader set
// is exactly this call). The reader delivers each received message to the
// shared event channel and then waits for the event loop's acknowledgement
// before the next Recv: a decoded message may alias the transport's
// reusable decode buffers, so the reader must not decode ahead while the
// event loop still reads the previous message. A terminal error is
// delivered without waiting. The reader carries the seat's current link
// generation; after a rejoin bumps it, the event loop drops anything the
// old reader still had in flight and never acks it — the stale reader
// parks until Close.
func (a *AsyncScheduler) startReader(id int, t Transport) {
	a.gens[id]++
	gen := a.gens[id]
	ack := make(chan struct{}, 1)
	a.readers.Add(1)
	go func() {
		defer a.readers.Done()
		for {
			m, err := t.Recv()
			ev := schedEvent{id: id, gen: gen, msg: m, err: err}
			if err == nil {
				ev.ack = ack
			}
			select {
			case a.events <- ev:
			case <-a.stop:
				return
			}
			if err != nil {
				return
			}
			select {
			case <-ack:
			case <-a.stop:
				return
			}
		}
	}()
}

// RunTask drives one task asynchronously: announce the task, fold uploads
// as they arrive (committing every K accepted), flush the residual buffer
// once every alive client has uploaded Rounds updates, broadcast the
// task-final global, and collect the RoundEnd reports.
func (a *AsyncScheduler) RunTask(ctx context.Context, s *Server, taskIdx int, res *Result) error {
	if !a.started {
		a.start(s)
	}
	if a.resumed {
		// Resuming this task from a snapshot cut: updatesSeen and commitIdx
		// were restored to the cut's values and must survive into the
		// collect phase — clients owe only the uploads the cut had not seen.
		a.resumed = false
	} else {
		for i := range a.updatesSeen {
			a.updatesSeen[i] = 0
		}
		a.commitIdx = 0
	}
	for i := range s.rows {
		s.rows[i] = nil
	}
	a.resetWindow()
	s.stream.BeginRound()
	if snap := a.pendWindow; snap != nil {
		// Reinstate the open commit window recorded at the restored cut: the
		// per-window accounting, and — when any update was folded — the
		// aggregator's partial accumulation, so the window completes from
		// where the crash interrupted it. The snapshot's Seen counts already
		// include these folded uploads, so rejoining clients resume after
		// them; the commit that closes the window is bitwise the commit the
		// uninterrupted run would have made.
		a.pendWindow = nil
		a.buffered = snap.WindowCount
		a.staleCount = snap.WindowStale
		a.worstCompute = snap.WindowWorstCompute
		a.worstComm = snap.WindowWorstComm
		a.windowUp = snap.WindowUp
		a.windowDown = snap.WindowDown
		if snap.WindowCount > 0 {
			if wa, ok := s.stream.(windowedAggregator); ok {
				wa.restoreWindow(snap.ParamLen, snap.WindowIdx, snap.WindowVals,
					snap.WindowDense, snap.WindowTotal, snap.WindowCount)
			} else {
				// A buffered (robust) aggregator cannot export its open window
				// as partial sums, so the cut carried only the window's
				// accounting: drop the mid-fill state and restart the window
				// empty. The discarded uploads are already in the Seen counts,
				// so they are lost to the model, not retrained — log it and
				// count it (Server.DroppedWindowUploads) so the loss is loud.
				a.droppedWindow += snap.WindowCount
				s.logf("fed: async: %s cannot restore an open commit window; dropping %d buffered uploads from the cut",
					s.agg.Name(), snap.WindowCount)
				a.resetWindow()
			}
		}
	}

	// One RoundStart per task: the client paces its own Rounds uploads.
	rs := &RoundStart{TaskIdx: taskIdx, Round: 0, Participate: true, TaskDone: true}
	for i, t := range s.links {
		if !s.alive[i] {
			continue
		}
		if err := t.Send(rs); err != nil {
			a.evict(s, res, taskIdx, i, err)
		}
	}
	if s.AliveClients() == 0 && !a.expecting() {
		return fmt.Errorf("fed: async: all clients lost at task %d", taskIdx)
	}

	// Collect phase: every alive client owes Rounds uploads — and a restored
	// task additionally holds the door open for every seat the snapshot cut
	// recorded as alive, until each has rejoined (or the context gives up).
	// The seat book is elastic here: a join admitted mid-collect owes the
	// task's full Rounds uploads from zero, a Leave retires its seat and the
	// remaining live set carries the task.
	for !a.allUploaded(s) || a.expecting() {
		ev, rq, jq, err := a.nextEvent(ctx)
		if err != nil {
			return err
		}
		if rq != nil {
			a.readmit(s, res, taskIdx, rq, nil, nil)
			continue
		}
		if jq != nil {
			a.admitJoin(s, taskIdx, jq, nil, nil)
			continue
		}
		if !a.current(s, ev) {
			continue
		}
		if ev.err != nil {
			a.evict(s, res, taskIdx, ev.id, ev.err)
			if s.AliveClients() == 0 && !a.expecting() {
				return fmt.Errorf("fed: async: all clients lost at task %d", taskIdx)
			}
			continue
		}
		if lv, ok := ev.msg.(*Leave); ok {
			if lv.ClientID != ev.id {
				return fmt.Errorf("fed: link %d sent leave claiming client %d", ev.id, lv.ClientID)
			}
			s.retire(taskIdx, ev.id)
			ev.ack <- struct{}{}
			continue
		}
		u, ok := ev.msg.(*Update)
		if !ok {
			return fmt.Errorf("fed: async: client %d sent %T, want *Update", ev.id, ev.msg)
		}
		if err := a.handleUpdate(s, res, taskIdx, ev.id, u); err != nil {
			return err
		}
		ev.ack <- struct{}{}
	}

	// Flush the residual window so no accepted training is lost — also when
	// it holds only staleness rejections, so the observer's Stale counts
	// cover the task's tail (an empty flush bumps no version and broadcasts
	// nothing). Then close the task with the final broadcast every
	// surviving client blocks on.
	if a.buffered > 0 || a.staleCount > 0 || a.nonFiniteCount > 0 {
		a.commit(s, res, taskIdx)
	}
	final := &GlobalModel{Params: a.global, Version: s.version, TaskFinal: true}
	for i, t := range s.links {
		if !s.alive[i] {
			continue
		}
		if err := t.Send(final); err != nil {
			a.evict(s, res, taskIdx, i, err)
		}
	}

	// Finish phase: gather RoundEnd reports from the survivors. reported
	// keeps the books straight when a connection drops after its client
	// already delivered RoundEnd: that client completed the task (its row
	// stands, pending already moved on), so the eviction must not
	// decrement pending a second time and cut the remaining survivors'
	// reports off.
	reported := make([]bool, len(s.links))
	pending := s.AliveClients()
	for pending > 0 {
		ev, rq, jq, err := a.nextEvent(ctx)
		if err != nil {
			return err
		}
		if rq != nil {
			a.readmit(s, res, taskIdx, rq, reported, &pending)
			continue
		}
		if jq != nil {
			// A finish-phase joiner never trained this task, so it owes no
			// RoundEnd: its catch-up says TaskDone (wait for the next task's
			// RoundStart) and its fresh reported slot is pre-marked so a
			// subsequent eviction does not decrement pending for it.
			a.admitJoin(s, taskIdx, jq, &reported, &pending)
			continue
		}
		if !a.current(s, ev) {
			continue
		}
		if ev.err != nil {
			a.evict(s, res, taskIdx, ev.id, ev.err)
			if !reported[ev.id] {
				pending--
			}
			continue
		}
		if lv, ok := ev.msg.(*Leave); ok {
			if lv.ClientID != ev.id {
				return fmt.Errorf("fed: link %d sent leave claiming client %d", ev.id, lv.ClientID)
			}
			s.retire(taskIdx, ev.id)
			if !reported[ev.id] {
				pending--
			}
			ev.ack <- struct{}{}
			continue
		}
		re, ok := ev.msg.(*RoundEnd)
		if !ok {
			return fmt.Errorf("fed: async: client %d sent %T, want *RoundEnd", ev.id, ev.msg)
		}
		if err := s.handleRoundEnd(ev.id, re, taskIdx, res); err != nil {
			return err
		}
		reported[ev.id] = true
		pending--
		ev.ack <- struct{}{}
	}
	s.fillMatrixRow(taskIdx, res)

	// Asynchronous clock model: the task is done when the slowest client's
	// own accumulated time is — not the sum of per-round maxima.
	s.simSeconds = maxOf(a.clocks)
	s.commSeconds = maxOf(a.commClocks)
	return nil
}

// nextEvent waits for the next reader delivery, rejoin handshake, join
// handshake, or cancellation. Exactly one of the returns is set; the rejoin
// and join channels are nil (never selected) when the server was given no
// such source.
func (a *AsyncScheduler) nextEvent(ctx context.Context) (schedEvent, *RejoinRequest, *JoinRequest, error) {
	select {
	case <-ctx.Done():
		return schedEvent{}, nil, nil, ctx.Err()
	case ev := <-a.events:
		return ev, nil, nil, nil
	case rq := <-a.rejoins:
		return schedEvent{}, &rq, nil, nil
	case jq := <-a.joins:
		return schedEvent{}, nil, &jq, nil
	}
}

// current filters one reader event against the seat's link generation and
// liveness. A stale-generation event belongs to a link a rejoin already
// replaced: it is dropped and never acked (the superseded reader parks
// until Close). A current-generation event from an evicted seat — a message
// racing an eviction triggered by a failed Send — is dropped but acked, so
// its reader runs on to the closed link's terminal error.
func (a *AsyncScheduler) current(s *Server, ev schedEvent) bool {
	if ev.gen != a.gens[ev.id] {
		return false
	}
	if !s.alive[ev.id] {
		if ev.err == nil {
			ev.ack <- struct{}{}
		}
		return false
	}
	return true
}

// readmit splices a rejoining client back into the run: the retained seat
// (parameter length, device clock, upload progress, accuracy rows) comes
// back alive on the fresh link, which first carries a Catchup telling the
// client where to resume — the current task, how many of its uploads the
// server already holds, and the current versioned global when the client's
// last-seen version is behind. reported/pending are non-nil during the
// finish phase, after the task-final broadcast: a seat that has not
// reported yet is told TaskFinal (install, evaluate, report — it owes a
// RoundEnd, so pending grows), one that already reported is told TaskDone
// (wait for the next task). A rejoin for a seat that is still alive is
// refused by closing the link — the client retries after the eviction
// lands.
func (a *AsyncScheduler) readmit(s *Server, res *Result, taskIdx int, rq *RejoinRequest, reported []bool, pending *int) {
	id := rq.ClientID
	if id < 0 || id >= len(s.links) {
		s.refusedTotal++
		s.logf("fed: async: refused rejoin for unknown client %d", id)
		rq.Link.Close()
		return
	}
	if s.alive[id] {
		s.refusedTotal++
		s.logf("fed: async: refused rejoin for client %d: seat is still alive", id)
		rq.Link.Close()
		return
	}
	cu := &Catchup{TaskIdx: taskIdx, Seen: a.updatesSeen[id], Version: s.version}
	if s.version > rq.LastVersion {
		cu.Params = a.global
	}
	if reported != nil {
		if reported[id] {
			cu.TaskDone = true
		} else {
			cu.TaskFinal = true
			cu.Params = a.global
		}
	}
	if err := rq.Link.Send(cu); err != nil {
		s.logf("fed: async: rejoin catch-up to client %d failed: %v", id, err)
		rq.Link.Close()
		return
	}
	s.trafficMu.Lock()
	if w, ok := s.links[id].(*WireTransport); ok {
		s.retiredSent += w.BytesSent()
		s.retiredRecv += w.BytesRecv()
	}
	s.links[id] = rq.Link
	s.trafficMu.Unlock()
	s.alive[id] = true
	s.left[id] = false // a retired seat rejoining reopens its books
	delete(res.DeadAfter, id)
	if reported != nil && !reported[id] {
		*pending++
	}
	if a.expect != nil {
		a.expect[id] = false
	}
	a.startReader(id, rq.Link)
	s.logf("fed: async: client %d rejoined at task %d (catch-up v%d, %d/%d uploads in)",
		id, taskIdx, s.version, a.updatesSeen[id], s.cfg.Rounds)
}

// admitJoin grows the seat book for one validated join handshake (v5). The
// new seat's ID is the next free index; the fresh link first carries the
// seat-assignment hello, then a phase-aware Catchup: during the collect
// phase the joiner starts the current task from zero uploads against the
// current committed global; during the finish phase (reported non-nil) it is
// told TaskDone — the task closed without it, wait for the next RoundStart.
// A join beyond MaxCohort is refused — counted in Server.Rejections, logged
// — by closing the link; a send failure during the reply likewise abandons
// the handshake before any book state is allocated, so the seat ID is not
// burned. Announce (RoundStart) is deliberately not replayed: the Catchup
// carries the task position, which is all the async client lifecycle needs.
func (a *AsyncScheduler) admitJoin(s *Server, taskIdx int, jq *JoinRequest, reported *[]bool, pending *int) {
	if len(s.links) >= a.maxCohort {
		s.refusedTotal++
		s.logf("fed: async: refused join: cohort is at capacity (%d seats, -max-cohort %d)", len(s.links), a.maxCohort)
		jq.Link.Close()
		return
	}
	id := len(s.links)
	if err := jq.Link.Send(&helloMsg{clientID: id}); err != nil {
		s.logf("fed: async: join seat assignment failed: %v", err)
		jq.Link.Close()
		return
	}
	cu := &Catchup{TaskIdx: taskIdx, Seen: 0, Version: s.version}
	if s.version > jq.LastVersion {
		cu.Params = a.global
	}
	if reported != nil {
		cu.TaskDone = true
	}
	if err := jq.Link.Send(cu); err != nil {
		s.logf("fed: async: join catch-up for seat %d failed: %v", id, err)
		jq.Link.Close()
		return
	}
	s.trafficMu.Lock()
	s.links = append(s.links, jq.Link)
	s.trafficMu.Unlock()
	s.alive = append(s.alive, true)
	s.offline = append(s.offline, false)
	s.left = append(s.left, false)
	s.rows = append(s.rows, nil)
	a.gens = append(a.gens, 0)
	a.clocks = append(a.clocks, 0)
	a.commClocks = append(a.commClocks, 0)
	a.updatesSeen = append(a.updatesSeen, 0)
	if a.expect != nil {
		a.expect = append(a.expect, false)
	}
	if reported != nil {
		*reported = append(*reported, true)
	}
	a.startReader(id, jq.Link)
	s.logf("fed: async: admitted join as seat %d at task %d (cohort now %d/%d, catch-up v%d)",
		id, taskIdx, len(s.links), a.maxCohort, s.version)
}

// expecting reports whether any snapshot-restored seat is still awaited:
// its client was alive at the cut and has not re-admitted itself yet.
func (a *AsyncScheduler) expecting() bool {
	for _, e := range a.expect {
		if e {
			return true
		}
	}
	return false
}

// handleUpdate accounts, staleness-checks and folds one upload. The update
// may alias the link's decode buffers: everything the scheduler keeps is
// copied out (or folded into aggregator scratch) before returning.
func (a *AsyncScheduler) handleUpdate(s *Server, res *Result, taskIdx, id int, u *Update) error {
	if u.ClientID != id {
		return fmt.Errorf("fed: link %d sent update claiming client %d", id, u.ClientID)
	}
	if !u.Participating {
		return fmt.Errorf("fed: async: client %d sent a non-participating update", id)
	}
	if u.BaseVersion > s.version {
		return fmt.Errorf("fed: async: client %d trained from version %d, server is at %d", id, u.BaseVersion, s.version)
	}
	if n := u.ParamLen(); a.paramLen == 0 {
		a.paramLen = n
	} else if n != a.paramLen {
		return fmt.Errorf("fed: client %d sent %d parameters, others sent %d", id, n, a.paramLen)
	}
	a.updatesSeen[id]++

	// The client did the work and the link carried the bytes whether or not
	// the update is folded, so clocks and traffic count unconditionally.
	comm := device.CommTime(u.UpBytes+u.DownBytes, s.cfg.Bandwidth)
	a.clocks[id] += u.ComputeSeconds + comm
	a.commClocks[id] += comm
	if u.ComputeSeconds > a.worstCompute {
		a.worstCompute = u.ComputeSeconds
	}
	if comm > a.worstComm {
		a.worstComm = comm
	}
	a.windowUp += u.UpBytes
	a.windowDown += u.DownBytes
	s.upBytes += u.UpBytes
	s.downBytes += u.DownBytes

	// Ingest hardening runs before the staleness check: a garbage update is
	// rejected for being garbage. Like a staleness rejection, the books have
	// already advanced (Seen, clocks, traffic), so cut a snapshot.
	if !s.admitUpdate(u, taskIdx) {
		a.nonFiniteCount++
		s.snapshot(res, taskIdx, false)
		return nil
	}
	staleness := int(s.version - u.BaseVersion)
	if a.maxStale > 0 && staleness > a.maxStale {
		a.staleCount++
		a.staleTotal++
		// The rejection still advanced the books (Seen, clocks, traffic):
		// cut a snapshot so a crash does not ask the client to retrain an
		// upload the server already accounted.
		s.snapshot(res, taskIdx, false)
		return nil
	}
	w := u.Weight
	if w == 0 {
		w = 1
	}
	if a.alpha > 0 && staleness > 0 {
		w *= math.Pow(1/(1+float64(staleness)), a.alpha)
	}
	u.Weight = w
	s.stream.Accumulate(u)
	a.buffered++
	if a.buffered >= a.commitK {
		a.commit(s, res, taskIdx)
		return nil
	}
	// Mid-window cut: the fold is in aggregator scratch only, so persist the
	// open window (partial sums, counters, Seen) — a restart resumes the
	// window mid-fill instead of discarding up to K−1 folded uploads.
	s.snapshot(res, taskIdx, false)
	return nil
}

// commit closes the current window: finish the streaming reduction, bump
// the global version, copy the result into a fresh versioned buffer,
// durably snapshot the cut, broadcast it to every alive client, and report
// the commit to the observer. The snapshot is write-ahead of the broadcast
// — the cut is on disk before any client can learn the new version — which
// is what makes a crash at any instant recoverable: no client ever holds a
// global version the latest snapshot does not, so a restored server is
// never behind its own cohort (an update based on a version newer than the
// server's is a protocol abort). A window holding only staleness rejections
// (the task-closing flush) commits nothing — no version bump, no snapshot,
// no broadcast — but still reports a RoundStats with Participants 0 so
// Stale counts are never dropped.
func (a *AsyncScheduler) commit(s *Server, res *Result, taskIdx int) {
	round := a.commitIdx
	a.commitIdx++
	global := s.stream.FinishRound()
	stats := RoundStats{
		TaskIdx: taskIdx, Round: round, Participants: a.buffered,
		Stale:     a.staleCount,
		NonFinite: a.nonFiniteCount,
		Evictions: s.evictTotal - a.evictMark,
		ComputeSeconds: a.worstCompute, CommSeconds: a.worstComm,
		UpBytes: a.windowUp, DownBytes: a.windowDown,
	}
	a.evictMark = s.evictTotal
	if global != nil {
		s.version++
		a.global = append([]float32(nil), global...)
	}
	// The window's folds are now in a.global (or, for a stale-only flush,
	// there were none): clear the window and open the aggregator's next
	// round before the write-ahead cut, so the snapshot records the commit
	// with an empty open window — restoring it resumes after this commit,
	// not inside it.
	a.resetWindow()
	s.stream.BeginRound()
	if global != nil {
		s.snapshot(res, taskIdx, false)
		gm := &GlobalModel{Params: a.global, Version: s.version}
		for i, t := range s.links {
			if !s.alive[i] {
				continue
			}
			if err := t.Send(gm); err != nil {
				// Defer the eviction bookkeeping to the reader's error
				// event (it owns DeadAfter/logging); just stop sending.
				continue
			}
		}
	}
	stats.Version = s.version
	if s.obs != nil {
		s.obs.RoundDone(stats)
	}
}

// fillSnapshot contributes the asynchronous policy's state to a durable
// cut: the committed global, the agreed parameter length, the per-seat
// clocks, and — for a commit cut — the in-progress task's upload counts,
// commit ordinal, and the open commit window (its accounting plus the
// aggregator's raw partial accumulation, exported through
// windowedAggregator). A boundary cut zeroes those: snap.TaskIdx already
// names the next task, for which nothing has been seen yet. The window
// slices alias aggregator scratch — the SnapshotSink contract requires the
// sink to serialise before returning.
func (a *AsyncScheduler) fillSnapshot(snap *checkpoint.ServerSnapshot, boundary bool) {
	if !a.started {
		return
	}
	snap.Global = a.global
	snap.ParamLen = a.paramLen
	snap.StaleTotal = a.staleTotal
	for i := range snap.Seats {
		snap.Seats[i].SimSeconds = a.clocks[i]
		snap.Seats[i].CommSeconds = a.commClocks[i]
		if !boundary {
			snap.Seats[i].Seen = a.updatesSeen[i]
		}
	}
	if !boundary {
		snap.CommitIdx = a.commitIdx
		snap.WindowCount = a.buffered
		snap.WindowStale = a.staleCount
		snap.WindowWorstCompute = a.worstCompute
		snap.WindowWorstComm = a.worstComm
		snap.WindowUp = a.windowUp
		snap.WindowDown = a.windowDown
		if a.buffered > 0 {
			if wa, ok := a.stream.(windowedAggregator); ok {
				var total float64
				snap.WindowIdx, snap.WindowVals, snap.WindowDense, total = wa.windowState()
				snap.WindowTotal = total
			}
		}
	}
}

// restoreSnapshot reconstructs the policy's state at a snapshot cut: seat
// clocks and upload counts, the committed global and its parameter length,
// the commit ordinal, and the expectation that every seat alive at the cut
// will re-admit itself through the rejoin path before the restored task
// closes. Called once from Server.Run, before the first RunTask.
func (a *AsyncScheduler) restoreSnapshot(s *Server, snap *checkpoint.ServerSnapshot) {
	a.start(s)
	a.expect = make([]bool, len(s.links))
	for i, seat := range snap.Seats {
		a.clocks[i] = seat.SimSeconds
		a.commClocks[i] = seat.CommSeconds
		a.updatesSeen[i] = seat.Seen
		a.expect[i] = seat.Alive
		// A cleanly departed seat restores departed: not awaited, not dead.
		s.left[i] = seat.Left
	}
	a.paramLen = snap.ParamLen
	if len(snap.Global) > 0 {
		a.global = append([]float32(nil), snap.Global...)
	}
	a.commitIdx = snap.CommitIdx
	a.staleTotal = snap.StaleTotal
	a.pendWindow = snap
	a.resumed = true
}

// resetWindow clears the per-commit accounting.
func (a *AsyncScheduler) resetWindow() {
	a.buffered, a.staleCount, a.nonFiniteCount = 0, 0, 0
	a.worstCompute, a.worstComm = 0, 0
	a.windowUp, a.windowDown = 0, 0
}

// allUploaded reports whether every alive client has delivered its Rounds
// uploads for the current task.
func (a *AsyncScheduler) allUploaded(s *Server) bool {
	for i, n := range a.updatesSeen {
		if s.alive[i] && n < s.cfg.Rounds {
			return false
		}
	}
	return true
}

// evict delegates to the server's shared eviction path — a dropped TCP
// connection costs one seat, not the run, and the seat's retained state
// stays ready for a rejoin.
func (a *AsyncScheduler) evict(s *Server, res *Result, taskIdx, id int, err error) {
	s.evict(res, taskIdx, id, err)
}

// maxOf returns the maximum element (0 for an empty slice).
func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
