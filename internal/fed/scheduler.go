package fed

import (
	"context"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/device"
)

// Scheduler is the server's round-scheduling policy: it decides when clients
// train, when their updates are aggregated, and when the global model is
// committed and broadcast. The Server owns the books (simulated clock,
// traffic, accuracy matrix, evictions) and the seams below it (Aggregator,
// Transport); the scheduler owns the control flow between them.
//
// Contract (documented in full in docs/ARCHITECTURE.md):
//   - RunTask drives every aggregation round of one task over the server's
//     transports and must leave the server's accounting fields (simSeconds,
//     commSeconds, upBytes, downBytes) and the result's accuracy matrix row
//     for taskIdx up to date before returning.
//   - RunTask is called once per task, in ascending task order, from one
//     goroutine; a scheduler may keep state across tasks (the global model
//     version is monotone over the run).
//   - Cancelling ctx must abort the task; RunTask returns the context's
//     error and the server tears the transports down.
//   - Close releases scheduler-owned resources (reader goroutines); the
//     server calls it exactly once, after the transports are closed.
type Scheduler interface {
	// Name identifies the scheduling policy in reports.
	Name() string
	// RunTask drives every aggregation round of task taskIdx.
	RunTask(ctx context.Context, srv *Server, taskIdx int, res *Result) error
	// Close releases scheduler-owned resources after the run.
	Close()
}

// SyncScheduler is the lockstep policy — §III-A's synchronous federated
// round, and the protocol's default. Every round opens with a RoundStart to
// every alive client, collects every alive client's Update in ascending
// client ID (the order that makes floating-point aggregation reproducible),
// commits exactly one global model, and broadcasts it to the round's
// participants. A slow client therefore bounds the whole round — that is
// the latency price of its bitwise reproducibility across parallelism
// settings and transports.
//
// A transport failure aborts the run by default (fail-loudly: the
// reproducibility contract treats a lost client as a broken experiment).
// With ServerConfig.SyncEvict (-sync-evict) the failed client is evicted
// instead and the cohort keeps going — which relaxes reproducibility: the
// eviction changes the dropout RNG draw sequence and the aggregation
// cohort from that round on, so runs that lose different clients diverge
// (see docs/ARCHITECTURE.md). Protocol violations (impersonation,
// mismatched lengths, wrong message kinds) still abort either way.
//
// With a snapshot sink installed (Server.SetSnapshots) the lockstep policy
// writes a durable cut at every round commit and task boundary, but it
// cannot be restored from one: re-admitting a cohort requires the rejoin
// splice point only the asynchronous scheduler has, so
// NewServerFromSnapshot refuses sync configs. Sync snapshots are an audit
// trail, not a recovery point.
type SyncScheduler struct {
	// global retains the last committed model for snapshot cuts; only
	// maintained when a snapshot sink is installed.
	global []float32
}

// Name identifies the scheduling policy.
func (*SyncScheduler) Name() string { return SchedulerSync }

// Close is a no-op: the lockstep policy owns no goroutines.
func (*SyncScheduler) Close() {}

// RunTask schedules the r aggregation rounds of one task.
func (sc *SyncScheduler) RunTask(ctx context.Context, s *Server, taskIdx int, res *Result) error {
	for round := 0; round < s.cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		taskDone := round == s.cfg.Rounds-1
		// Failure injection: each client may drop out of this round. The
		// draw order (ascending client ID, no draw for dead clients) is part
		// of the reproducibility contract.
		anyOnline := false
		for i := range s.links {
			s.offline[i] = s.alive[i] && s.cfg.DropoutProb > 0 && s.dropRNG.Float64() < s.cfg.DropoutProb
			if s.alive[i] && !s.offline[i] {
				anyOnline = true
			}
		}
		if !anyOnline {
			// Keep the protocol alive: at least one participant per round.
			for i := range s.links {
				if s.alive[i] {
					s.offline[i] = false
					break
				}
			}
		}
		for i, t := range s.links {
			if !s.alive[i] {
				continue
			}
			rs := &RoundStart{TaskIdx: taskIdx, Round: round, Participate: !s.offline[i], TaskDone: taskDone}
			if err := t.Send(rs); err != nil {
				if err := sc.dropOrFail(ctx, s, res, taskIdx, i,
					fmt.Errorf("fed: round start to client %d: %w", i, err)); err != nil {
					return err
				}
			}
		}
		// Collect every alive client's update (dropped-out clients send an
		// empty acknowledgement). Ascending client ID keeps aggregation
		// order deterministic. A streaming aggregator folds each update into
		// the global scratch the moment it is decoded — the server never
		// buffers per-client parameter vectors, so its hot path costs
		// O(active knowledge) per update instead of holding O(model ×
		// clients).
		s.updates = s.updates[:0]
		s.metas = s.metas[:0]
		if s.stream != nil {
			s.stream.BeginRound()
		}
		firstLen := -1
		folded := 0
		nonFiniteMark, evictMark := s.nonFiniteTotal, s.evictTotal
		for i, t := range s.links {
			if !s.alive[i] {
				continue
			}
			msg, err := t.Recv()
			if err != nil {
				if err := sc.dropOrFail(ctx, s, res, taskIdx, i,
					fmt.Errorf("fed: update from client %d: %w", i, err)); err != nil {
					return err
				}
				continue
			}
			u, ok := msg.(*Update)
			if !ok {
				return fmt.Errorf("fed: client %d sent %T, want *Update", i, msg)
			}
			// The ID routes the GlobalModel broadcast, so a wire client must
			// not be able to impersonate (or index-out-of-range) another link.
			if u.ClientID != i {
				return fmt.Errorf("fed: link %d sent update claiming client %d", i, u.ClientID)
			}
			if u.Participating {
				// Mismatched vector lengths (a client with a different
				// model, slipping past the fingerprint check) must fail as
				// a protocol error, not panic inside the aggregator.
				if n := u.ParamLen(); firstLen < 0 {
					firstLen = n
				} else if n != firstLen {
					return fmt.Errorf("fed: client %d sent %d parameters, others sent %d",
						i, n, firstLen)
				}
				// Ingest hardening: a rejected update keeps its seat (the
				// client still receives the round's broadcast and its traffic
				// still counts) but never reaches the aggregator.
				if s.admitUpdate(u, taskIdx) {
					folded++
					if s.stream != nil {
						s.stream.Accumulate(u)
					} else {
						s.updates = append(s.updates, u)
					}
				}
				s.metas = append(s.metas, updateMeta{
					clientID: i, computeSeconds: u.ComputeSeconds,
					upBytes: u.UpBytes, downBytes: u.DownBytes,
				})
			}
		}
		// Time accounting: synchronous rounds bound by the slowest client.
		var worstCompute, worstComm float64
		var roundUp, roundDown int64
		for _, m := range s.metas {
			if m.computeSeconds > worstCompute {
				worstCompute = m.computeSeconds
			}
			if t := device.CommTime(m.upBytes+m.downBytes, s.cfg.Bandwidth); t > worstComm {
				worstComm = t
			}
			roundUp += m.upBytes
			roundDown += m.downBytes
		}
		s.simSeconds += worstCompute + worstComm
		s.commSeconds += worstComm
		s.upBytes += roundUp
		s.downBytes += roundDown

		// Finish the reduction and broadcast to the round's participants.
		// The global slice may alias aggregator scratch; every participant
		// acknowledges (next Update or RoundEnd) before the next round
		// rewrites it, so sharing is safe even over the zero-copy loopback.
		var global []float32
		if s.stream != nil {
			global = s.stream.FinishRound()
		} else {
			global = s.agg.Aggregate(s.updates)
		}
		if global == nil && len(s.metas) > 0 {
			// Every participating update was rejected: the participants are
			// blocked waiting for a broadcast that will never come, so fail
			// loudly instead of deadlocking the lockstep.
			return fmt.Errorf("fed: sync: every update of task %d round %d was rejected (%d non-finite)",
				taskIdx, round, s.nonFiniteTotal-nonFiniteMark)
		}
		if global != nil {
			s.version++
			if s.snap != nil {
				// Write-ahead of the broadcast, mirroring the async commit:
				// the cut is durable before any client learns the version.
				// The broadcast global may alias aggregator scratch, so the
				// snapshot keeps its own copy.
				sc.global = append(sc.global[:0], global...)
				s.snapshot(res, taskIdx, false)
			}
			gm := &GlobalModel{Params: global, Version: s.version}
			for _, m := range s.metas {
				if err := s.links[m.clientID].Send(gm); err != nil {
					if err := sc.dropOrFail(ctx, s, res, taskIdx, m.clientID,
						fmt.Errorf("fed: global model to client %d: %w", m.clientID, err)); err != nil {
						return err
					}
				}
			}
		}
		if s.obs != nil {
			s.obs.RoundDone(RoundStats{
				TaskIdx: taskIdx, Round: round, Participants: folded,
				Version:   s.version,
				NonFinite: s.nonFiniteTotal - nonFiniteMark,
				Evictions: s.evictTotal - evictMark,
				ComputeSeconds: worstCompute, CommSeconds: worstComm,
				UpBytes: roundUp, DownBytes: roundDown,
			})
		}
		if taskDone {
			if err := sc.collectRoundEnds(ctx, s, taskIdx, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// fillSnapshot contributes the lockstep policy's state to a durable cut:
// the last committed global. Lockstep rounds have no mid-task resume point,
// so upload counts and commit ordinals stay zero.
func (sc *SyncScheduler) fillSnapshot(snap *checkpoint.ServerSnapshot, _ bool) {
	snap.Global = sc.global
	snap.ParamLen = len(sc.global)
}

// dropOrFail is the lockstep answer to a transport failure: abort the run
// with the error (the default — reproducibility treats a lost client as a
// broken experiment), or, with SyncEvict, evict the client and keep the
// cohort going — unless nobody is left, or the failure is really the
// context cancelling.
func (sc *SyncScheduler) dropOrFail(ctx context.Context, s *Server, res *Result, taskIdx, id int, err error) error {
	if !s.cfg.SyncEvict || ctx.Err() != nil {
		return s.runErr(ctx, err)
	}
	s.evict(res, taskIdx, id, err)
	if s.AliveClients() == 0 {
		return fmt.Errorf("fed: sync: all clients lost at task %d", taskIdx)
	}
	return nil
}

// collectRoundEnds gathers every alive client's task report: eviction flags
// first, then the accuracy-matrix row averaged over the survivors.
func (sc *SyncScheduler) collectRoundEnds(ctx context.Context, s *Server, taskIdx int, res *Result) error {
	for i := range s.rows {
		s.rows[i] = nil
	}
	for i, t := range s.links {
		if !s.alive[i] {
			continue
		}
		msg, err := t.Recv()
		if err != nil {
			if err := sc.dropOrFail(ctx, s, res, taskIdx, i,
				fmt.Errorf("fed: round end from client %d: %w", i, err)); err != nil {
				return err
			}
			continue
		}
		re, ok := msg.(*RoundEnd)
		if !ok {
			return fmt.Errorf("fed: client %d sent %T, want *RoundEnd", i, msg)
		}
		if err := s.handleRoundEnd(i, re, taskIdx, res); err != nil {
			return err
		}
	}
	s.fillMatrixRow(taskIdx, res)
	return nil
}
