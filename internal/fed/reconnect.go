package fed

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"time"

	"repro/internal/tensor"
)

// Default retry policy of Client.RunReconnect, used for zero Reconnect
// fields.
const (
	// DefaultReconnectAttempts bounds consecutive failed rejoin attempts
	// before the client gives up.
	DefaultReconnectAttempts = 8
	// DefaultReconnectBaseDelay is the backoff before the second attempt
	// (the first retries immediately); it doubles per attempt.
	DefaultReconnectBaseDelay = 100 * time.Millisecond
	// DefaultReconnectMaxDelay caps the exponential backoff.
	DefaultReconnectMaxDelay = 5 * time.Second
)

// Reconnect configures a client's wire retry loop (Client.RunReconnect):
// where to rejoin and how hard to try. The zero value of every policy field
// selects the documented default.
type Reconnect struct {
	// Addr is the server's TCP address, redialed on every attempt.
	Addr string
	// Fingerprint is the job fingerprint presented in every hello (fresh
	// and rejoin); see Config.Fingerprint.
	Fingerprint uint64
	// Wire are the link options (compression, per-message timeout) applied
	// to every connection.
	Wire WireOptions
	// Attempts caps consecutive failed rejoin attempts (a failed dial, or
	// a connection the server closed without a Catchup — a refusal). The
	// counter resets once a rejoin succeeds. 0 means
	// DefaultReconnectAttempts.
	Attempts int
	// BaseDelay is the backoff before the second attempt, doubling per
	// attempt; 0 means DefaultReconnectBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 means DefaultReconnectMaxDelay.
	MaxDelay time.Duration
}

// RunReconnect is Run wrapped in the wire retry loop: dial, speak the round
// lifecycle, and — when the connection drops mid-run — rejoin with a
// catch-up handshake (DialRejoinWith, carrying this client's last-seen
// global version) under capped exponential backoff, resuming the task
// exactly where the server's Catchup says to, without losing any local
// training state. It requires the asynchronous scheduler (the server's
// rejoin path splices seats into the async reader set; lockstep has no
// mid-round splice point) and a server accepting rejoins (ServeRejoinWith).
//
// Transient Send/Recv failures — connection resets, per-message -wire-
// timeout expiries against an idle-but-healthy peer, half-written frames —
// are retried; protocol violations and a refused handshake (fingerprint
// mismatch, attempts exhausted) are returned. A drop after the final task's
// report is treated as the clean shutdown it is indistinguishable from.
func (c *Client) RunReconnect(ctx context.Context, rc Reconnect) error {
	if c.cfg.Scheduler != SchedulerAsync {
		return fmt.Errorf("fed: client %d: reconnect requires the async scheduler (lockstep evicts or aborts; there is no rejoin splice point)", c.ctx.ID)
	}
	t, err := DialWith(rc.Addr, c.ctx.ID, rc.Fingerprint, rc.Wire)
	if err != nil {
		return err
	}
	return c.reconnectLoop(ctx, rc, c.Run(ctx, t))
}

// ResumeReconnect is RunReconnect for a client that already holds a live
// transport and a Catchup positioning it — the join flow: DialJoinWith
// enrolled the seat (the seat ID had to be known before the Client could be
// built), and the client continues the async lifecycle from the catch-up,
// rejoining the assigned seat through the ordinary rejoin handshake if the
// connection later drops.
func (c *Client) ResumeReconnect(ctx context.Context, rc Reconnect, t Transport, cu *Catchup) error {
	if c.cfg.Scheduler != SchedulerAsync {
		return fmt.Errorf("fed: client %d: reconnect requires the async scheduler (lockstep evicts or aborts; there is no rejoin splice point)", c.ctx.ID)
	}
	return c.reconnectLoop(ctx, rc, c.resume(ctx, t, cu))
}

// reconnectLoop is the shared retry loop of RunReconnect and
// ResumeReconnect: given the first session's outcome, keep rejoining and
// resuming until the task sequence finishes or the failure stops being
// retryable.
func (c *Client) reconnectLoop(ctx context.Context, rc Reconnect, err error) error {
	for {
		switch {
		case c.finished:
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		case err != nil && !retryable(err):
			return err
		}
		// The run is unfinished and the link is gone (err is a transport
		// failure, or a clean-looking EOF mid-sequence — e.g. the server
		// evicted us on a per-message timeout): rejoin and resume.
		t, cu, rerr := c.rejoin(ctx, rc)
		if rerr != nil {
			return rerr
		}
		err = c.resume(ctx, t, cu)
	}
}

// rejoin redials with the catch-up handshake under capped exponential
// backoff and returns the fresh transport plus the server's Catchup,
// detached from the link's decode scratch.
func (c *Client) rejoin(ctx context.Context, rc Reconnect) (Transport, *Catchup, error) {
	attempts := rc.Attempts
	if attempts <= 0 {
		attempts = DefaultReconnectAttempts
	}
	delay := rc.BaseDelay
	if delay <= 0 {
		delay = DefaultReconnectBaseDelay
	}
	maxDelay := rc.MaxDelay
	if maxDelay <= 0 {
		maxDelay = DefaultReconnectMaxDelay
	}
	// Jittered backoff: a server restart disconnects the whole cohort at the
	// same instant, and without jitter every client's exponential schedule
	// stays phase-locked — each retry wave slams the recovering listener at
	// once (thundering herd). The jitter RNG is seeded from the client ID so
	// the cohort decorrelates while every run of a test remains reproducible.
	rng := tensor.NewRNG(reconnectJitterSeed(c.ctx.ID))
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(jitterDelay(rng, delay)):
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
			if delay *= 2; delay > maxDelay {
				delay = maxDelay
			}
		}
		t, err := DialRejoinWith(rc.Addr, c.ctx.ID, rc.Fingerprint, c.baseVersion, rc.Wire)
		if err != nil {
			lastErr = err
			continue
		}
		msg, err := t.Recv()
		if err != nil {
			// A close without a Catchup is a refusal — most often the seat
			// is still alive because the server has not noticed the drop
			// yet; back off and retry.
			t.Close()
			lastErr = err
			continue
		}
		cu, ok := msg.(*Catchup)
		if !ok {
			t.Close()
			return nil, nil, fmt.Errorf("fed: client %d rejoin got %T, want *Catchup", c.ctx.ID, msg)
		}
		out := *cu
		out.Params = append([]float32(nil), cu.Params...)
		return t, &out, nil
	}
	return nil, nil, fmt.Errorf("fed: client %d gave up rejoining after %d attempts: %w", c.ctx.ID, attempts, lastErr)
}

// reconnectJitterSeed derives a client's deterministic jitter seed: distinct
// per client (decorrelating the herd) and stable across runs (keeping tests
// reproducible). The multiplier is the 64-bit golden-ratio constant, so
// adjacent IDs land far apart in seed space.
func reconnectJitterSeed(id int) uint64 {
	return uint64(id)*0x9E3779B97F4A7C15 + 0xFEDC0006
}

// jitterDelay applies full-jitter to one backoff step: a uniform draw from
// [d/2, d), preserving the exponential schedule's cap and order of
// magnitude while spreading a cohort's simultaneous retries across half the
// window.
func jitterDelay(rng *tensor.RNG, d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rng.Float64()*float64(half))
}

// resume continues the asynchronous lifecycle on a rejoined transport,
// positioned by the catch-up.
func (c *Client) resume(ctx context.Context, t Transport, cu *Catchup) error {
	defer t.Close()
	stop := context.AfterFunc(ctx, func() { t.Close() })
	defer stop()
	_, wire := t.(*WireTransport)
	return c.asyncLoop(ctx, t, newInbox(t, wire), cu)
}

// retryable reports whether err is a connection-level failure a reconnect
// can heal — as opposed to a protocol violation, which no fresh connection
// fixes. io.EOF counts: a server that evicted this client (a -wire-timeout
// firing while it was healthy but idle, say) closes the link, which looks
// exactly like a clean shutdown; RunReconnect tells the two apart by
// whether the task sequence finished.
func retryable(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ECONNREFUSED)
}
