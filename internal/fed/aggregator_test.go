package fed

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/tensor"
)

// testAggregatorConformance checks the behaviour every Aggregator must
// provide: empty rounds yield nil, weighting follows sample counts with
// zero-weight clients counted once, and the result is a convex combination
// that preserves unanimous coordinates exactly.
func testAggregatorConformance(t *testing.T, newAgg func() Aggregator) {
	t.Helper()
	t.Run("empty round", func(t *testing.T) {
		if got := newAgg().Aggregate(nil); got != nil {
			t.Fatalf("empty round: got %v, want nil", got)
		}
	})
	t.Run("single client is identity", func(t *testing.T) {
		params := []float32{1, -2, 3.5}
		got := newAgg().Aggregate([]*Update{{Participating: true, Weight: 17, Params: params}})
		for i := range params {
			if got[i] != params[i] {
				t.Fatalf("single-client aggregate[%d] = %v, want %v", i, got[i], params[i])
			}
		}
	})
	t.Run("weighted averaging", func(t *testing.T) {
		ups := []*Update{
			{Participating: true, Weight: 1, Params: []float32{0, 4, 8}},
			{Participating: true, Weight: 3, Params: []float32{4, 4, 0}},
		}
		got := newAgg().Aggregate(ups)
		want := []float32{3, 4, 2} // (1·a + 3·b) / 4
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-6 {
				t.Fatalf("aggregate[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	})
	t.Run("zero weight counts once", func(t *testing.T) {
		ups := []*Update{
			{Participating: true, Weight: 0, Params: []float32{0}},
			{Participating: true, Weight: 1, Params: []float32{2}},
		}
		got := newAgg().Aggregate(ups)
		if math.Abs(float64(got[0]-1)) > 1e-6 {
			t.Fatalf("zero-weight client must count as weight 1: got %v, want 1", got[0])
		}
	})
	t.Run("unanimity preserved", func(t *testing.T) {
		// Identical inputs must aggregate back to (numerically) the same
		// vector whatever the weights.
		params := []float32{0.1, -0.2, 0.30000001}
		ups := []*Update{
			{Participating: true, Weight: 5, Params: params},
			{Participating: true, Weight: 11, Params: params},
			{Participating: true, Weight: 2, Params: params},
		}
		got := newAgg().Aggregate(ups)
		for i := range params {
			if math.Abs(float64(got[i]-params[i])) > 1e-6 {
				t.Fatalf("unanimous aggregate[%d] = %v, want %v", i, got[i], params[i])
			}
		}
	})
	t.Run("scratch reuse does not leak", func(t *testing.T) {
		agg := newAgg()
		first := agg.Aggregate([]*Update{{Participating: true, Weight: 1, Params: []float32{1, 1}}})
		if first[0] != 1 {
			t.Fatal("first round wrong")
		}
		second := agg.Aggregate([]*Update{{Participating: true, Weight: 1, Params: []float32{9, 9}}})
		if second[0] != 9 {
			t.Fatalf("second round got %v: stale scratch", second[0])
		}
	})
}

func TestWeightedFedAvgConformance(t *testing.T) {
	testAggregatorConformance(t, func() Aggregator { return &WeightedFedAvg{} })
	if (&WeightedFedAvg{}).Name() == "" {
		t.Fatal("aggregator must be identifiable")
	}
}

func TestSparseFedAvgConformance(t *testing.T) {
	testAggregatorConformance(t, func() Aggregator { return &SparseFedAvg{} })
	if (&SparseFedAvg{}).Name() == "" {
		t.Fatal("aggregator must be identifiable")
	}
}

func TestShardedFedAvgConformance(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", p), func(t *testing.T) {
			testAggregatorConformance(t, func() Aggregator { return NewShardedFedAvg(p) })
		})
	}
	if NewShardedFedAvg(4).Name() == "" {
		t.Fatal("aggregator must be identifiable")
	}
}

// shardedTestUpdates builds a mixed dense/sparse update set large enough to
// cross the sharded fold stage's parallel-dispatch threshold.
func shardedTestUpdates(seed uint64, n, clients int) []*Update {
	rng := tensor.NewRNG(seed)
	var ups []*Update
	for c := 0; c < clients; c++ {
		params := make([]float32, n)
		for i := range params {
			if rng.Float64() < 0.15 {
				params[i] = float32(rng.Norm())
			}
		}
		u := &Update{ClientID: c, Participating: true, Weight: float64(7 + 3*c), Params: params}
		if c%2 == 1 {
			u = sparsify(u)
		}
		ups = append(ups, u)
	}
	return ups
}

// TestShardedFedAvgMatchesSparseBitwise is the ISSUE's determinism pin: for
// shard counts {1, 2, 8} and kernel-thread budgets {1, 4, 16}, multi-round
// streaming aggregation through ShardedFedAvg must equal SparseFedAvg bit
// for bit — sparse, dense and mixed rounds, including the union-overflow
// full mode — and the dense-only path must equal WeightedFedAvg exactly.
func TestShardedFedAvgMatchesSparseBitwise(t *testing.T) {
	const n, clients, rounds = 50_000, 6, 3
	ref := &SparseFedAvg{}
	var wants [][]float32
	for r := 0; r < rounds; r++ {
		wants = append(wants, append([]float32(nil), ref.Aggregate(shardedTestUpdates(uint64(100+r), n, clients))...))
	}
	oldThreads := tensor.KernelThreads()
	defer tensor.SetKernelThreads(oldThreads)
	for _, p := range []int{1, 2, 8} {
		for _, threads := range []int{1, 4, 16} {
			tensor.SetKernelThreads(threads)
			agg := NewShardedFedAvg(p)
			for r := 0; r < rounds; r++ {
				got := agg.Aggregate(shardedTestUpdates(uint64(100+r), n, clients))
				for i := range wants[r] {
					if got[i] != wants[r][i] {
						t.Fatalf("shards=%d threads=%d round %d coordinate %d: %v, want %v",
							p, threads, r, i, got[i], wants[r][i])
					}
				}
			}
		}
	}

	// Dense path: every update dense must reproduce WeightedFedAvg's bits.
	var dense []*Update
	rng := tensor.NewRNG(41)
	for c := 0; c < 4; c++ {
		params := make([]float32, 8192)
		for i := range params {
			params[i] = float32(rng.Norm())
		}
		dense = append(dense, &Update{ClientID: c, Participating: true, Weight: float64(1 + c), Params: params})
	}
	want := (&WeightedFedAvg{}).Aggregate(dense)
	for _, p := range []int{1, 2, 8} {
		got := NewShardedFedAvg(p).Aggregate(dense)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d dense path diverges from WeightedFedAvg at %d: %v vs %v", p, i, got[i], want[i])
			}
		}
	}
}

// TestShardedFedAvgBroadcastSurvivesNextRound pins the double-buffer
// contract the async commit path relies on, same as SparseFedAvg's.
func TestShardedFedAvgBroadcastSurvivesNextRound(t *testing.T) {
	agg := NewShardedFedAvg(3)
	first := agg.Aggregate([]*Update{{Participating: true, Weight: 1, Params: []float32{5, 6, 7}}})
	agg.BeginRound()
	agg.Accumulate(&Update{Participating: true, Weight: 1, Params: []float32{1, 2, 3}})
	if first[0] != 5 || first[1] != 6 || first[2] != 7 {
		t.Fatalf("round-r broadcast rewritten during round r+1 accumulation: %v", first)
	}
	second := agg.FinishRound()
	if second[0] != 1 || second[1] != 2 || second[2] != 3 {
		t.Fatalf("second round wrong: %v", second)
	}
}

// TestShardedFedAvgZeroAllocSteadyState: after warmup, sharded rounds must
// not allocate either — the fold stage reuses per-shard scratch.
func TestShardedFedAvgZeroAllocSteadyState(t *testing.T) {
	rng := tensor.NewRNG(33)
	n := 8192
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = rng.Float64() < 0.1
	}
	w := make([]float32, n)
	for i := range w {
		w[i] = float32(rng.Norm())
	}
	ups := []*Update{
		{Participating: true, Weight: 3, Sparse: tensor.GatherMask(nil, w, mask)},
		{Participating: true, Weight: 2, Sparse: tensor.GatherMask(nil, w, mask)},
	}
	agg := NewShardedFedAvg(4)
	agg.Aggregate(ups) // warm both merge buffers
	agg.Aggregate(ups)
	allocs := testing.AllocsPerRun(50, func() {
		agg.BeginRound()
		for _, u := range ups {
			agg.Accumulate(u)
		}
		agg.FinishRound()
	})
	if allocs != 0 {
		t.Fatalf("steady-state sharded aggregation allocates %v per round", allocs)
	}
}

// sparsify converts an update's dense params to the equivalent sparse form.
func sparsify(u *Update) *Update {
	s := *u
	s.Sparse = tensor.GatherNonzeros(nil, u.Params)
	s.Params = nil
	return &s
}

// TestSparseFedAvgMatchesDenseBitwise: aggregating sparse updates must equal
// aggregating their densified forms bit for bit, and SparseFedAvg's dense
// path must equal WeightedFedAvg bit for bit — the property that lets the
// server default to SparseFedAvg without perturbing any reproducibility
// invariant.
func TestSparseFedAvgMatchesDenseBitwise(t *testing.T) {
	rng := tensor.NewRNG(31)
	n := 4096
	var dense []*Update
	for c := 0; c < 5; c++ {
		params := make([]float32, n)
		for i := range params {
			if rng.Float64() < 0.1 {
				params[i] = float32(rng.Norm())
			}
		}
		dense = append(dense, &Update{ClientID: c, Participating: true,
			Weight: float64(10 + c), Params: params})
	}
	var sparse []*Update
	for _, u := range dense {
		sparse = append(sparse, sparsify(u))
	}

	wantW := (&WeightedFedAvg{}).Aggregate(dense)
	gotD := (&SparseFedAvg{}).Aggregate(dense)
	gotS := (&SparseFedAvg{}).Aggregate(sparse)
	gotM := (&SparseFedAvg{}).Aggregate([]*Update{sparse[0], dense[1], sparse[2], dense[3], sparse[4]})
	for i := range wantW {
		if gotD[i] != wantW[i] {
			t.Fatalf("dense path diverges from WeightedFedAvg at %d: %v vs %v", i, gotD[i], wantW[i])
		}
		if gotS[i] != wantW[i] {
			t.Fatalf("sparse path diverges at %d: %v vs %v", i, gotS[i], wantW[i])
		}
		if gotM[i] != wantW[i] {
			t.Fatalf("mixed path diverges at %d: %v vs %v", i, gotM[i], wantW[i])
		}
	}
}

// TestSparseFedAvgStreaming drives the StreamAggregator interface the way
// the server does — BeginRound / Accumulate / FinishRound across several
// rounds — and checks round isolation: coordinates touched in one round must
// read zero in the next (the targeted re-zeroing), across both scratch
// vectors.
func TestSparseFedAvgStreaming(t *testing.T) {
	agg := &SparseFedAvg{}
	rounds := [][]*Update{
		{{Participating: true, Weight: 1,
			Sparse: &tensor.SparseVec{N: 6, Indices: []int32{0, 3}, Values: []float32{2, 4}}}},
		{{Participating: true, Weight: 1,
			Sparse: &tensor.SparseVec{N: 6, Indices: []int32{1}, Values: []float32{8}}}},
		{{Participating: true, Weight: 1,
			Sparse: &tensor.SparseVec{N: 6, Indices: []int32{5}, Values: []float32{6}}}},
		{{Participating: true, Weight: 1, Params: []float32{1, 1, 1, 1, 1, 1}}},
		{{Participating: true, Weight: 1,
			Sparse: &tensor.SparseVec{N: 6, Indices: []int32{2}, Values: []float32{9}}}},
	}
	wants := [][]float32{
		{2, 0, 0, 4, 0, 0},
		{0, 8, 0, 0, 0, 0},
		{0, 0, 0, 0, 0, 6},
		{1, 1, 1, 1, 1, 1},
		{0, 0, 9, 0, 0, 0},
	}
	for r, ups := range rounds {
		agg.BeginRound()
		for _, u := range ups {
			agg.Accumulate(u)
		}
		got := agg.FinishRound()
		for i, want := range wants[r] {
			if got[i] != want {
				t.Fatalf("round %d coordinate %d = %v, want %v (stale scratch?)", r, i, got[i], want)
			}
		}
	}
	// Empty round after activity.
	agg.BeginRound()
	if got := agg.FinishRound(); got != nil {
		t.Fatalf("empty round returned %v", got)
	}
}

// TestSparseFedAvgBroadcastSurvivesNextRound pins the double-buffer
// contract: the vector returned for round r must stay intact while round
// r+1 accumulates (over zero-copy loopback, clients may still be reading
// the broadcast when the next round's first update arrives).
func TestSparseFedAvgBroadcastSurvivesNextRound(t *testing.T) {
	agg := &SparseFedAvg{}
	first := agg.Aggregate([]*Update{{Participating: true, Weight: 1, Params: []float32{5, 6, 7}}})
	agg.BeginRound()
	agg.Accumulate(&Update{Participating: true, Weight: 1, Params: []float32{1, 2, 3}})
	if first[0] != 5 || first[1] != 6 || first[2] != 7 {
		t.Fatalf("round-r broadcast rewritten during round r+1 accumulation: %v", first)
	}
	second := agg.FinishRound()
	if second[0] != 1 || second[1] != 2 || second[2] != 3 {
		t.Fatalf("second round wrong: %v", second)
	}
}

// TestSparseFedAvgZeroAllocSteadyState: after the first round sizes the
// scratch, further rounds — sparse or dense — must not allocate.
func TestSparseFedAvgZeroAllocSteadyState(t *testing.T) {
	rng := tensor.NewRNG(32)
	n := 8192
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = rng.Float64() < 0.1
	}
	w := make([]float32, n)
	for i := range w {
		w[i] = float32(rng.Norm())
	}
	ups := []*Update{
		{Participating: true, Weight: 3, Sparse: tensor.GatherMask(nil, w, mask)},
		{Participating: true, Weight: 2, Sparse: tensor.GatherMask(nil, w, mask)},
	}
	agg := &SparseFedAvg{}
	agg.Aggregate(ups) // warm both scratch vectors
	agg.Aggregate(ups)
	allocs := testing.AllocsPerRun(50, func() {
		agg.BeginRound()
		for _, u := range ups {
			agg.Accumulate(u)
		}
		agg.FinishRound()
	})
	if allocs != 0 {
		t.Fatalf("steady-state sparse aggregation allocates %v per round", allocs)
	}
}
