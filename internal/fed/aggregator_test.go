package fed

import (
	"math"
	"testing"
)

// testAggregatorConformance checks the behaviour every Aggregator must
// provide: empty rounds yield nil, weighting follows sample counts with
// zero-weight clients counted once, and the result is a convex combination
// that preserves unanimous coordinates exactly.
func testAggregatorConformance(t *testing.T, newAgg func() Aggregator) {
	t.Helper()
	t.Run("empty round", func(t *testing.T) {
		if got := newAgg().Aggregate(nil); got != nil {
			t.Fatalf("empty round: got %v, want nil", got)
		}
	})
	t.Run("single client is identity", func(t *testing.T) {
		params := []float32{1, -2, 3.5}
		got := newAgg().Aggregate([]*Update{{Participating: true, Weight: 17, Params: params}})
		for i := range params {
			if got[i] != params[i] {
				t.Fatalf("single-client aggregate[%d] = %v, want %v", i, got[i], params[i])
			}
		}
	})
	t.Run("weighted averaging", func(t *testing.T) {
		ups := []*Update{
			{Participating: true, Weight: 1, Params: []float32{0, 4, 8}},
			{Participating: true, Weight: 3, Params: []float32{4, 4, 0}},
		}
		got := newAgg().Aggregate(ups)
		want := []float32{3, 4, 2} // (1·a + 3·b) / 4
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-6 {
				t.Fatalf("aggregate[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	})
	t.Run("zero weight counts once", func(t *testing.T) {
		ups := []*Update{
			{Participating: true, Weight: 0, Params: []float32{0}},
			{Participating: true, Weight: 1, Params: []float32{2}},
		}
		got := newAgg().Aggregate(ups)
		if math.Abs(float64(got[0]-1)) > 1e-6 {
			t.Fatalf("zero-weight client must count as weight 1: got %v, want 1", got[0])
		}
	})
	t.Run("unanimity preserved", func(t *testing.T) {
		// Identical inputs must aggregate back to (numerically) the same
		// vector whatever the weights.
		params := []float32{0.1, -0.2, 0.30000001}
		ups := []*Update{
			{Participating: true, Weight: 5, Params: params},
			{Participating: true, Weight: 11, Params: params},
			{Participating: true, Weight: 2, Params: params},
		}
		got := newAgg().Aggregate(ups)
		for i := range params {
			if math.Abs(float64(got[i]-params[i])) > 1e-6 {
				t.Fatalf("unanimous aggregate[%d] = %v, want %v", i, got[i], params[i])
			}
		}
	})
	t.Run("scratch reuse does not leak", func(t *testing.T) {
		agg := newAgg()
		first := agg.Aggregate([]*Update{{Participating: true, Weight: 1, Params: []float32{1, 1}}})
		if first[0] != 1 {
			t.Fatal("first round wrong")
		}
		second := agg.Aggregate([]*Update{{Participating: true, Weight: 1, Params: []float32{9, 9}}})
		if second[0] != 9 {
			t.Fatalf("second round got %v: stale scratch", second[0])
		}
	})
}

func TestWeightedFedAvgConformance(t *testing.T) {
	testAggregatorConformance(t, func() Aggregator { return &WeightedFedAvg{} })
	if (&WeightedFedAvg{}).Name() == "" {
		t.Fatal("aggregator must be identifiable")
	}
}
