package fed

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// WireOptions configure one end of a wire link.
type WireOptions struct {
	// Compression selects the frame encodings this end emits. The lossless
	// sparse form is always available (it changes bytes, never values);
	// quantisation is lossy and must match on both ends — the Hello
	// handshake rejects a mismatch.
	Compression Compression
	// Timeout bounds each Send and Recv when the underlying stream supports
	// deadlines (net.Conn does): a hung or vanished peer surfaces as a
	// timeout error instead of wedging the round forever. 0 disables.
	//
	// Without the rejoin path the timeout must exceed the longest interval
	// a healthy peer can stay silent — under the asynchronous scheduler
	// that is the slowest client's whole task, because a fast client idles
	// at the task barrier while the straggler finishes, and a tighter bound
	// would permanently evict it for being early. With rejoin enabled
	// (server accepting rejoins, clients running RunReconnect) a timeout
	// eviction is recoverable — the idle client simply reconnects with a
	// catch-up handshake — so the timeout can be an honest per-message
	// bound on link health instead.
	Timeout time.Duration
	// MaxFrame, when positive, lowers this end's decoder frame-payload bound
	// below the package default (256 MB) — the allocation a malicious or
	// corrupt length prefix can force before validation fails. Size it to
	// the job's dense model payload plus slack; the logical params-length
	// bound scales with it (MaxFrame/4), so it also caps what a tiny sparse
	// frame may claim to densify into. Values above the package default are
	// clamped to it.
	MaxFrame int
}

// deadliner is the subset of net.Conn the timeout support needs.
type deadliner interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// WireTransport runs the round lifecycle over a byte stream (normally a TCP
// net.Conn) using the length-prefixed binary codec, so a federation can span
// processes and machines. With the default lossless encoding, floats cross
// the wire as raw IEEE-754 bits — sparse frames only change how the bits are
// laid out — and a wire run is bit-identical to a loopback run of the same
// seed.
type WireTransport struct {
	conn  io.ReadWriteCloser
	dl    deadliner // non-nil when conn supports deadlines
	opts  WireOptions
	bw    *bufio.Writer
	br    *bufio.Reader
	codec Codec // per-link scratch: encode buffer and decode pools

	// Byte counters are atomics: each direction is driven by one goroutine,
	// but the totals are read concurrently from others (the server's
	// traffic summary, observers polling mid-run).
	sent atomic.Int64
	recv atomic.Int64
}

// NewWire wraps a connected byte stream in a Transport with default options.
func NewWire(conn io.ReadWriteCloser) *WireTransport {
	return NewWireWith(conn, WireOptions{})
}

// NewWireWith wraps a connected byte stream with explicit options.
func NewWireWith(conn io.ReadWriteCloser, opts WireOptions) *WireTransport {
	w := &WireTransport{
		conn: conn,
		opts: opts,
		bw:   bufio.NewWriterSize(conn, 1<<16),
		br:   bufio.NewReaderSize(conn, 1<<16),
	}
	w.codec.comp = opts.Compression
	w.codec.maxFrame = opts.MaxFrame
	w.dl, _ = conn.(deadliner)
	return w
}

// Send encodes and flushes one frame. A failure to arm the write deadline
// (a closed or broken socket) surfaces immediately as that error, not as a
// confusing EOF from a later call.
func (w *WireTransport) Send(m Msg) error {
	if w.dl != nil && w.opts.Timeout > 0 {
		if err := w.dl.SetWriteDeadline(time.Now().Add(w.opts.Timeout)); err != nil {
			return fmt.Errorf("fed: arming write deadline: %w", err)
		}
	}
	if err := w.codec.Encode(w.bw, m); err != nil {
		return err
	}
	w.sent.Add(5 + int64(len(w.codec.enc)))
	return w.bw.Flush()
}

// Recv decodes the next frame. A clean peer close surfaces as io.EOF, the
// protocol's shutdown signal. The returned message's slices alias the
// transport's reusable decode buffers and stay valid until the next Recv
// with a slice-bearing message — the lockstep protocol consumes every
// message before the link's next Recv, mirroring the loopback transport's
// zero-copy aliasing contract.
func (w *WireTransport) Recv() (Msg, error) {
	if w.dl != nil && w.opts.Timeout > 0 {
		if err := w.dl.SetReadDeadline(time.Now().Add(w.opts.Timeout)); err != nil {
			return nil, fmt.Errorf("fed: arming read deadline: %w", err)
		}
	}
	m, n, err := w.codec.decodeFrame(w.br)
	w.recv.Add(int64(n))
	return m, err
}

// BytesSent reports the total frame bytes written so far — the measured
// (post-encoding) wire traffic, as opposed to the protocol's simulated
// dense-model accounting. Safe to call from any goroutine.
func (w *WireTransport) BytesSent() int64 { return w.sent.Load() }

// BytesRecv reports the total frame bytes read so far. Safe to call from
// any goroutine.
func (w *WireTransport) BytesRecv() int64 { return w.recv.Load() }

// Close tears down the underlying stream.
func (w *WireTransport) Close() error { return w.conn.Close() }

// Serve accepts numClients connections on ln with default options; see
// ServeWith.
func Serve(ln net.Listener, numClients int, fingerprint uint64) ([]Transport, error) {
	return ServeWith(ln, numClients, fingerprint, WireOptions{})
}

// ServeWith accepts numClients connections on ln, reads each one's Hello
// identification frame, and returns the server-side transports indexed by
// client ID. It is the wire counterpart of building loopback pairs.
// fingerprint is the server's Config.Fingerprint(): a client whose hello
// carries a different digest derived its job from different knobs (seed,
// hyperparameters, …) and is rejected rather than allowed to silently
// break reproducibility; pass 0 to skip the check. The hello also carries
// the client's value encoding: quantisation changes results, so a client
// whose -compress setting differs from the server's is rejected at the
// handshake with an explicit error. On error every accepted connection is
// closed, so blocked clients unblock instead of leaking.
func ServeWith(ln net.Listener, numClients int, fingerprint uint64, opts WireOptions) (_ []Transport, err error) {
	links := make([]Transport, numClients)
	defer func() {
		if err != nil {
			for _, t := range links {
				if t != nil {
					t.Close()
				}
			}
		}
	}()
	for k := 0; k < numClients; k++ {
		conn, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		t := NewWireWith(conn, opts)
		msg, err := t.Recv()
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("fed: hello from connection %d: %w", k, err)
		}
		hello, ok := msg.(*helloMsg)
		if !ok {
			conn.Close()
			return nil, fmt.Errorf("fed: connection %d sent %T before hello", k, msg)
		}
		if hello.rejoin || hello.join {
			// A rejoin or join raced the fresh cohort's handshake (a client
			// retrying from an earlier run, or dialing before the acceptor is
			// up): refuse this connection without failing the cohort — the
			// client backs off and retries.
			t.Close()
			k--
			continue
		}
		if hello.clientID < 0 || hello.clientID >= numClients {
			conn.Close()
			return nil, fmt.Errorf("fed: hello client id %d out of range [0,%d)", hello.clientID, numClients)
		}
		if fingerprint != 0 && hello.fingerprint != fingerprint {
			conn.Close()
			return nil, fmt.Errorf("fed: client %d job fingerprint %#x does not match server %#x (different seed/flags?)",
				hello.clientID, hello.fingerprint, fingerprint)
		}
		if hello.quant != opts.Compression.Quant {
			conn.Close()
			return nil, fmt.Errorf("fed: client %d negotiated %s compression, server uses %s (pass the same -compress to every process)",
				hello.clientID, hello.quant, opts.Compression.Quant)
		}
		if links[hello.clientID] != nil {
			conn.Close()
			return nil, fmt.Errorf("fed: duplicate hello for client %d", hello.clientID)
		}
		links[hello.clientID] = t
	}
	return links, nil
}

// Dial connects to a federation server with default options; see DialWith.
func Dial(addr string, id int, fingerprint uint64) (Transport, error) {
	return DialWith(addr, id, fingerprint, WireOptions{})
}

// DialWith connects to a federation server and identifies as client id,
// presenting the job fingerprint (Config.Fingerprint(); 0 to opt out) and
// the value encoding for the server's consistency checks. The returned
// transport is ready for the client's Run loop.
func DialWith(addr string, id int, fingerprint uint64, opts WireOptions) (Transport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := NewWireWith(conn, opts)
	if err := t.Send(&helloMsg{clientID: id, fingerprint: fingerprint, quant: opts.Compression.Quant}); err != nil {
		conn.Close()
		return nil, err
	}
	return t, nil
}

// DialRejoin reconnects a dropped client with default options; see
// DialRejoinWith.
func DialRejoin(addr string, id int, fingerprint uint64, lastVersion uint64) (Transport, error) {
	return DialRejoinWith(addr, id, fingerprint, lastVersion, WireOptions{})
}

// DialRejoinWith reconnects a dropped client: it dials the server and sends
// a rejoin hello carrying the client ID, the job fingerprint, and the
// client's last-seen global version. The server (when it accepts rejoins —
// see ServeRejoinWith) replies with one Catchup frame on this transport
// before the normal message flow resumes; a refusal (live seat, fingerprint
// mismatch, rejoin not enabled) surfaces as the connection closing without
// a Catchup. Client.RunReconnect wraps this in a capped-backoff retry loop.
func DialRejoinWith(addr string, id int, fingerprint uint64, lastVersion uint64, opts WireOptions) (Transport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := NewWireWith(conn, opts)
	if err := t.Send(&helloMsg{clientID: id, fingerprint: fingerprint,
		quant: opts.Compression.Quant, rejoin: true, lastVersion: lastVersion}); err != nil {
		conn.Close()
		return nil, err
	}
	return t, nil
}

// DialJoin enrolls as a fresh seat with default options; see DialJoinWith.
func DialJoin(addr string, fingerprint uint64) (Transport, int, *Catchup, error) {
	return DialJoinWith(addr, fingerprint, WireOptions{})
}

// DialJoinWith enrolls a seatless client into a running federation (v5): it
// dials the server and sends a join hello — no client ID; the server
// assigns the seat — carrying the job fingerprint and value encoding. An
// accepting server (ServeRejoinWith / AcceptRejoins feeding Server.SetJoins)
// replies with a seat-assignment hello followed by one Catchup positioning
// the joiner in the current task; both are returned, the Catchup detached
// from the link's decode scratch, with the assigned seat ID. A refusal —
// fingerprint or compression mismatch, cohort at -max-cohort capacity, a
// server not accepting joins — surfaces as the connection closing without a
// reply. After this handshake the transport is ready for the client's
// normal async lifecycle; a later drop rejoins the assigned seat with the
// ordinary v4 rejoin path.
func DialJoinWith(addr string, fingerprint uint64, opts WireOptions) (Transport, int, *Catchup, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, 0, nil, err
	}
	t := NewWireWith(conn, opts)
	if err := t.Send(&helloMsg{join: true, fingerprint: fingerprint, quant: opts.Compression.Quant}); err != nil {
		conn.Close()
		return nil, 0, nil, err
	}
	msg, err := t.Recv()
	if err != nil {
		t.Close()
		return nil, 0, nil, fmt.Errorf("fed: join refused (no seat assignment): %w", err)
	}
	assigned, ok := msg.(*helloMsg)
	if !ok || assigned.rejoin || assigned.join {
		t.Close()
		return nil, 0, nil, fmt.Errorf("fed: join got %T, want the seat-assignment hello", msg)
	}
	seat := assigned.clientID
	msg, err = t.Recv()
	if err != nil {
		t.Close()
		return nil, 0, nil, fmt.Errorf("fed: join catch-up for seat %d: %w", seat, err)
	}
	cu, ok := msg.(*Catchup)
	if !ok {
		t.Close()
		return nil, 0, nil, fmt.Errorf("fed: join got %T, want *Catchup", msg)
	}
	out := *cu
	out.Params = append([]float32(nil), cu.Params...)
	return t, seat, &out, nil
}

// RejoinRequest is one validated rejoin handshake: a dropped client that
// re-dialed, passed the fingerprint and compression checks, and waits on
// Link for the server's Catchup reply. The scheduler that consumes it
// either re-admits the seat (sending the Catchup and splicing Link into
// its reader set) or refuses by closing Link.
type RejoinRequest struct {
	// ClientID is the seat the client claims; the scheduler refuses the
	// request when that seat is still alive.
	ClientID int
	// LastVersion is the client's last-installed global version, from the
	// rejoin hello; the catch-up payload is omitted when the server has
	// nothing newer.
	LastVersion uint64
	// Link is the fresh transport, already past the hello.
	Link Transport
}

// JoinRequest is one validated join handshake (v5): a seatless client that
// dialed mid-run, passed the fingerprint and compression checks, and waits
// on Link for the server's seat-assignment hello and Catchup reply. The
// scheduler that consumes it either admits a fresh seat (growing its seat
// book) or refuses — cohort at -max-cohort capacity — by closing Link.
type JoinRequest struct {
	// LastVersion is the joiner's last-installed global version, from the
	// join hello — 0 for a genuinely fresh client; the catch-up payload is
	// omitted when the server has nothing newer.
	LastVersion uint64
	// Link is the fresh transport, already past the hello.
	Link Transport
}

// RejoinAcceptor keeps accepting connections on a listener after the fresh
// cohort has joined, validating each rejoin or join hello (fingerprint,
// value encoding, ID range) and delivering the survivors as RejoinRequests
// and JoinRequests. It is the wire half of churn recovery and elastic
// membership: pair it with Server.SetRejoins (and SetJoins) so the
// asynchronous scheduler can re-admit and admit seats. Refusals are counted
// (Refusals) and, with SetLogf, logged with their cause — an unknown seat,
// a fingerprint mismatch, and a compression mismatch are operationally very
// different failures and must be distinguishable from the server's logs.
type RejoinAcceptor struct {
	ln          net.Listener
	numSeats    int
	fingerprint uint64
	opts        WireOptions
	ch          chan RejoinRequest
	joins       chan JoinRequest
	logf        atomic.Pointer[func(string, ...any)]
	refused     atomic.Int64

	mu       sync.Mutex
	pending  map[io.Closer]struct{} // connections mid-handshake
	stopped  bool
	stop     chan struct{}
	loopDone chan struct{}
	wg       sync.WaitGroup
}

// ServeRejoin is ServeRejoinWith with default options.
func ServeRejoin(ln net.Listener, numClients int, fingerprint uint64) ([]Transport, *RejoinAcceptor, error) {
	return ServeRejoinWith(ln, numClients, fingerprint, WireOptions{})
}

// ServeRejoinWith accepts the fresh cohort exactly like ServeWith, then
// keeps the listener open: a background accept loop admits rejoin hellos
// for the rest of the run and delivers them on the acceptor's Rejoins
// channel. The caller must not close ln — the acceptor owns it now; call
// the acceptor's Close after the run. Wire the channel into the server with
// SetRejoins before Run.
func ServeRejoinWith(ln net.Listener, numClients int, fingerprint uint64, opts WireOptions) ([]Transport, *RejoinAcceptor, error) {
	links, err := ServeWith(ln, numClients, fingerprint, opts)
	if err != nil {
		return nil, nil, err
	}
	return links, AcceptRejoins(ln, numClients, fingerprint, opts), nil
}

// AcceptRejoins starts a rejoin acceptor on ln without first serving a
// fresh cohort — the restart path: a server restored from a snapshot
// (NewServerFromSnapshot) has no fresh cohort to accept, because every
// client already holds local training state and re-admits itself with a
// rejoin hello. numSeats bounds the seat IDs a rejoin may claim — pass the
// run's -max-cohort (not the initial cohort size) when seats can join
// mid-run, so a joined-then-dropped seat can come back. The acceptor owns
// ln from here on; pair its Rejoins (and Joins) channels with
// Server.SetRejoins (and SetJoins) and call Close after the run.
func AcceptRejoins(ln net.Listener, numSeats int, fingerprint uint64, opts WireOptions) *RejoinAcceptor {
	g := &RejoinAcceptor{
		ln: ln, numSeats: numSeats, fingerprint: fingerprint, opts: opts,
		ch:      make(chan RejoinRequest, numSeats),
		joins:   make(chan JoinRequest, numSeats),
		pending: make(map[io.Closer]struct{}),
		stop:    make(chan struct{}), loopDone: make(chan struct{}),
	}
	go g.loop()
	return g
}

// Rejoins is the stream of validated rejoin handshakes; pass it to
// Server.SetRejoins.
func (g *RejoinAcceptor) Rejoins() <-chan RejoinRequest { return g.ch }

// Joins is the stream of validated join handshakes; pass it to
// Server.SetJoins. Joins nobody consumes are refused at Close.
func (g *RejoinAcceptor) Joins() <-chan JoinRequest { return g.joins }

// SetLogf installs a logger for refused handshakes (nil silences them
// again). Safe to call while the acceptor is running.
func (g *RejoinAcceptor) SetLogf(logf func(string, ...any)) {
	if logf == nil {
		g.logf.Store(nil)
		return
	}
	g.logf.Store(&logf)
}

// Refusals reports how many handshakes the acceptor has refused so far —
// malformed first frames, unknown seats, fingerprint mismatches,
// compression mismatches. Safe to call from any goroutine; scheduler-level
// refusals (a rejoin for a live seat, a join beyond -max-cohort) are
// counted separately in Server.Rejections.
func (g *RejoinAcceptor) Refusals() int { return int(g.refused.Load()) }

// refuse closes a handshake's transport, counts it, and logs the cause.
func (g *RejoinAcceptor) refuse(t Transport, format string, args ...any) {
	t.Close()
	g.refused.Add(1)
	if logf := g.logf.Load(); logf != nil {
		(*logf)("fed: acceptor: refused "+format, args...)
	}
}

// Close shuts the acceptor down: the listener closes, in-flight handshakes
// are severed, and any validated rejoins nobody consumed are closed so
// their clients' Recv fails fast instead of hanging.
func (g *RejoinAcceptor) Close() error {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return nil
	}
	g.stopped = true
	close(g.stop)
	for c := range g.pending {
		c.Close()
	}
	g.mu.Unlock()
	err := g.ln.Close()
	<-g.loopDone
	g.wg.Wait()
	for {
		select {
		case rq := <-g.ch:
			rq.Link.Close()
		case jq := <-g.joins:
			jq.Link.Close()
		default:
			return err
		}
	}
}

// loop accepts connections until the listener closes, handing each to a
// handshake goroutine so one silent dialer cannot block later rejoins.
func (g *RejoinAcceptor) loop() {
	defer close(g.loopDone)
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return
		}
		g.mu.Lock()
		if g.stopped {
			g.mu.Unlock()
			conn.Close()
			return
		}
		g.pending[conn] = struct{}{}
		g.wg.Add(1)
		g.mu.Unlock()
		go g.handshake(conn)
	}
}

// handshake validates one rejoin or join hello. Anything else — a malformed
// first frame, an out-of-range seat, a fingerprint or value-encoding
// mismatch — is refused by closing the connection (the client's retry loop
// handles it), counted, and logged with its distinct cause: "unknown seat"
// and "fingerprint mismatch" are different operational failures (a typo'd
// -client-id versus a process run with different knobs) and must not share
// a log line.
func (g *RejoinAcceptor) handshake(conn net.Conn) {
	defer g.wg.Done()
	defer func() {
		g.mu.Lock()
		delete(g.pending, conn)
		g.mu.Unlock()
	}()
	t := NewWireWith(conn, g.opts)
	msg, err := t.Recv()
	if err != nil {
		g.refuse(t, "connection from %s: bad first frame: %v", conn.RemoteAddr(), err)
		return
	}
	hello, ok := msg.(*helloMsg)
	switch {
	case !ok:
		g.refuse(t, "connection from %s: sent %T before hello", conn.RemoteAddr(), msg)
		return
	case !hello.rejoin && !hello.join:
		g.refuse(t, "fresh hello for seat %d: the cohort is already running (use -reconnect to rejoin or -join to enroll)", hello.clientID)
		return
	case g.fingerprint != 0 && hello.fingerprint != g.fingerprint:
		g.refuse(t, "seat %d: fingerprint mismatch: client %#x, server %#x (different seed/flags?)",
			hello.clientID, hello.fingerprint, g.fingerprint)
		return
	case hello.quant != g.opts.Compression.Quant:
		g.refuse(t, "seat %d: %s compression, server uses %s (pass the same -compress to every process)",
			hello.clientID, hello.quant, g.opts.Compression.Quant)
		return
	}
	if hello.join {
		select {
		case g.joins <- JoinRequest{LastVersion: hello.lastVersion, Link: t}:
		case <-g.stop:
			t.Close()
		}
		return
	}
	if hello.clientID < 0 || hello.clientID >= g.numSeats {
		g.refuse(t, "rejoin for unknown seat %d (seat IDs bounded by %d)", hello.clientID, g.numSeats)
		return
	}
	select {
	case g.ch <- RejoinRequest{ClientID: hello.clientID, LastVersion: hello.lastVersion, Link: t}:
	case <-g.stop:
		t.Close()
	}
}
