package fed

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"
)

// WireOptions configure one end of a wire link.
type WireOptions struct {
	// Compression selects the frame encodings this end emits. The lossless
	// sparse form is always available (it changes bytes, never values);
	// quantisation is lossy and must match on both ends — the Hello
	// handshake rejects a mismatch.
	Compression Compression
	// Timeout bounds each Send and Recv when the underlying stream supports
	// deadlines (net.Conn does): a hung or vanished peer surfaces as a
	// timeout error instead of wedging the round forever. 0 disables. The
	// timeout must exceed the longest interval a healthy peer can stay
	// silent. Under the synchronous scheduler that is, for a client's Recv,
	// a full round of every client's local training. Under the asynchronous
	// scheduler it is longer: a fast client that finished its uploads idles
	// at the task barrier while the slowest client trains its remaining
	// rounds, so the timeout must exceed the straggler's whole task — or a
	// healthy fast client is evicted for being early.
	Timeout time.Duration
}

// deadliner is the subset of net.Conn the timeout support needs.
type deadliner interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// WireTransport runs the round lifecycle over a byte stream (normally a TCP
// net.Conn) using the length-prefixed binary codec, so a federation can span
// processes and machines. With the default lossless encoding, floats cross
// the wire as raw IEEE-754 bits — sparse frames only change how the bits are
// laid out — and a wire run is bit-identical to a loopback run of the same
// seed.
type WireTransport struct {
	conn  io.ReadWriteCloser
	dl    deadliner // non-nil when conn supports deadlines
	opts  WireOptions
	bw    *bufio.Writer
	br    *bufio.Reader
	codec Codec // per-link scratch: encode buffer and decode pools

	sent int64
	recv int64
}

// NewWire wraps a connected byte stream in a Transport with default options.
func NewWire(conn io.ReadWriteCloser) *WireTransport {
	return NewWireWith(conn, WireOptions{})
}

// NewWireWith wraps a connected byte stream with explicit options.
func NewWireWith(conn io.ReadWriteCloser, opts WireOptions) *WireTransport {
	w := &WireTransport{
		conn: conn,
		opts: opts,
		bw:   bufio.NewWriterSize(conn, 1<<16),
		br:   bufio.NewReaderSize(conn, 1<<16),
	}
	w.codec.comp = opts.Compression
	w.dl, _ = conn.(deadliner)
	return w
}

// Send encodes and flushes one frame.
func (w *WireTransport) Send(m Msg) error {
	if w.dl != nil && w.opts.Timeout > 0 {
		w.dl.SetWriteDeadline(time.Now().Add(w.opts.Timeout))
	}
	if err := w.codec.Encode(w.bw, m); err != nil {
		return err
	}
	w.sent += 5 + int64(len(w.codec.enc))
	return w.bw.Flush()
}

// Recv decodes the next frame. A clean peer close surfaces as io.EOF, the
// protocol's shutdown signal. The returned message's slices alias the
// transport's reusable decode buffers and stay valid until the next Recv
// with a slice-bearing message — the lockstep protocol consumes every
// message before the link's next Recv, mirroring the loopback transport's
// zero-copy aliasing contract.
func (w *WireTransport) Recv() (Msg, error) {
	if w.dl != nil && w.opts.Timeout > 0 {
		w.dl.SetReadDeadline(time.Now().Add(w.opts.Timeout))
	}
	m, n, err := w.codec.decodeFrame(w.br)
	w.recv += int64(n)
	return m, err
}

// BytesSent reports the total frame bytes written so far — the measured
// (post-encoding) wire traffic, as opposed to the protocol's simulated
// dense-model accounting.
func (w *WireTransport) BytesSent() int64 { return w.sent }

// BytesRecv reports the total frame bytes read so far.
func (w *WireTransport) BytesRecv() int64 { return w.recv }

// Close tears down the underlying stream.
func (w *WireTransport) Close() error { return w.conn.Close() }

// Serve accepts numClients connections on ln with default options; see
// ServeWith.
func Serve(ln net.Listener, numClients int, fingerprint uint64) ([]Transport, error) {
	return ServeWith(ln, numClients, fingerprint, WireOptions{})
}

// ServeWith accepts numClients connections on ln, reads each one's Hello
// identification frame, and returns the server-side transports indexed by
// client ID. It is the wire counterpart of building loopback pairs.
// fingerprint is the server's Config.Fingerprint(): a client whose hello
// carries a different digest derived its job from different knobs (seed,
// hyperparameters, …) and is rejected rather than allowed to silently
// break reproducibility; pass 0 to skip the check. The hello also carries
// the client's value encoding: quantisation changes results, so a client
// whose -compress setting differs from the server's is rejected at the
// handshake with an explicit error. On error every accepted connection is
// closed, so blocked clients unblock instead of leaking.
func ServeWith(ln net.Listener, numClients int, fingerprint uint64, opts WireOptions) (_ []Transport, err error) {
	links := make([]Transport, numClients)
	defer func() {
		if err != nil {
			for _, t := range links {
				if t != nil {
					t.Close()
				}
			}
		}
	}()
	for k := 0; k < numClients; k++ {
		conn, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		t := NewWireWith(conn, opts)
		msg, err := t.Recv()
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("fed: hello from connection %d: %w", k, err)
		}
		hello, ok := msg.(*helloMsg)
		if !ok {
			conn.Close()
			return nil, fmt.Errorf("fed: connection %d sent %T before hello", k, msg)
		}
		if hello.clientID < 0 || hello.clientID >= numClients {
			conn.Close()
			return nil, fmt.Errorf("fed: hello client id %d out of range [0,%d)", hello.clientID, numClients)
		}
		if fingerprint != 0 && hello.fingerprint != fingerprint {
			conn.Close()
			return nil, fmt.Errorf("fed: client %d job fingerprint %#x does not match server %#x (different seed/flags?)",
				hello.clientID, hello.fingerprint, fingerprint)
		}
		if hello.quant != opts.Compression.Quant {
			conn.Close()
			return nil, fmt.Errorf("fed: client %d negotiated %s compression, server uses %s (pass the same -compress to every process)",
				hello.clientID, hello.quant, opts.Compression.Quant)
		}
		if links[hello.clientID] != nil {
			conn.Close()
			return nil, fmt.Errorf("fed: duplicate hello for client %d", hello.clientID)
		}
		links[hello.clientID] = t
	}
	return links, nil
}

// Dial connects to a federation server with default options; see DialWith.
func Dial(addr string, id int, fingerprint uint64) (Transport, error) {
	return DialWith(addr, id, fingerprint, WireOptions{})
}

// DialWith connects to a federation server and identifies as client id,
// presenting the job fingerprint (Config.Fingerprint(); 0 to opt out) and
// the value encoding for the server's consistency checks. The returned
// transport is ready for the client's Run loop.
func DialWith(addr string, id int, fingerprint uint64, opts WireOptions) (Transport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := NewWireWith(conn, opts)
	if err := t.Send(&helloMsg{clientID: id, fingerprint: fingerprint, quant: opts.Compression.Quant}); err != nil {
		conn.Close()
		return nil, err
	}
	return t, nil
}
