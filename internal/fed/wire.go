package fed

import (
	"bufio"
	"fmt"
	"io"
	"net"
)

// WireTransport runs the round lifecycle over a byte stream (normally a TCP
// net.Conn) using the length-prefixed binary codec, so a federation can span
// processes and machines. Floats cross the wire as raw IEEE-754 bits: a wire
// run is bit-identical to a loopback run of the same seed.
type WireTransport struct {
	conn    io.ReadWriteCloser
	bw      *bufio.Writer
	br      *bufio.Reader
	scratch []byte        // payload encode buffer, reused every Send
	dec     decodeScratch // decode buffers, reused every Recv
}

// NewWire wraps a connected byte stream in a Transport.
func NewWire(conn io.ReadWriteCloser) *WireTransport {
	return &WireTransport{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 1<<16),
		br:   bufio.NewReaderSize(conn, 1<<16),
	}
}

// Send encodes and flushes one frame.
func (w *WireTransport) Send(m Msg) error {
	buf, err := encodeFrame(w.bw, m, w.scratch)
	w.scratch = buf
	if err != nil {
		return err
	}
	return w.bw.Flush()
}

// Recv decodes the next frame. A clean peer close surfaces as io.EOF, the
// protocol's shutdown signal. The returned message's slices alias the
// transport's reusable decode buffers and stay valid until the next Recv
// with a slice-bearing message — the lockstep protocol consumes every
// message before the link's next Recv, mirroring the loopback transport's
// zero-copy aliasing contract.
func (w *WireTransport) Recv() (Msg, error) {
	return decodeWith(w.br, &w.dec)
}

// Close tears down the underlying stream.
func (w *WireTransport) Close() error { return w.conn.Close() }

// Serve accepts numClients connections on ln, reads each one's Hello
// identification frame, and returns the server-side transports indexed by
// client ID. It is the wire counterpart of building loopback pairs.
// fingerprint is the server's Config.Fingerprint(): a client whose hello
// carries a different digest derived its job from different knobs (seed,
// hyperparameters, …) and is rejected rather than allowed to silently
// break reproducibility; pass 0 to skip the check. On error every accepted
// connection is closed, so blocked clients unblock instead of leaking.
func Serve(ln net.Listener, numClients int, fingerprint uint64) (_ []Transport, err error) {
	links := make([]Transport, numClients)
	defer func() {
		if err != nil {
			for _, t := range links {
				if t != nil {
					t.Close()
				}
			}
		}
	}()
	for k := 0; k < numClients; k++ {
		conn, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		t := NewWire(conn)
		msg, err := t.Recv()
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("fed: hello from connection %d: %w", k, err)
		}
		hello, ok := msg.(*helloMsg)
		if !ok {
			conn.Close()
			return nil, fmt.Errorf("fed: connection %d sent %T before hello", k, msg)
		}
		if hello.clientID < 0 || hello.clientID >= numClients {
			conn.Close()
			return nil, fmt.Errorf("fed: hello client id %d out of range [0,%d)", hello.clientID, numClients)
		}
		if fingerprint != 0 && hello.fingerprint != fingerprint {
			conn.Close()
			return nil, fmt.Errorf("fed: client %d job fingerprint %#x does not match server %#x (different seed/flags?)",
				hello.clientID, hello.fingerprint, fingerprint)
		}
		if links[hello.clientID] != nil {
			conn.Close()
			return nil, fmt.Errorf("fed: duplicate hello for client %d", hello.clientID)
		}
		links[hello.clientID] = t
	}
	return links, nil
}

// Dial connects to a federation server and identifies as client id,
// presenting the job fingerprint (Config.Fingerprint(); 0 to opt out) for
// the server's consistency check. The returned transport is ready for the
// client's Run loop.
func Dial(addr string, id int, fingerprint uint64) (Transport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := NewWire(conn)
	if err := t.Send(&helloMsg{clientID: id, fingerprint: fingerprint}); err != nil {
		conn.Close()
		return nil, err
	}
	return t, nil
}
