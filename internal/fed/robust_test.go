package fed

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/tensor"
)

// TestBufferedFedAvgLikeConformance: the rules that ARE weighted means —
// Buffered(TrimmedMean(0)) and FedOpt with zero momentum — must pass the full
// Aggregator conformance suite, including weighted averaging.
func TestBufferedFedAvgLikeConformance(t *testing.T) {
	t.Run("trimmed-mean(0)", func(t *testing.T) {
		testAggregatorConformance(t, func() Aggregator { return NewBuffered(NewTrimmedMeanFedAvg(0)) })
	})
	t.Run("fedopt(0)", func(t *testing.T) {
		testAggregatorConformance(t, func() Aggregator { return NewBuffered(NewFedOptServer(0, &SparseFedAvg{})) })
	})
}

// testRobustConformance is the reduced suite for the rules that deliberately
// ignore client weights (median, Krum) or trim the cohort: empty rounds yield
// nil, a single client is identity, unanimity is preserved exactly, scratch
// is not leaked across rounds, and streaming arrival order does not matter
// (the buffer sorts by client ID).
func testRobustConformance(t *testing.T, newAgg func() Aggregator) {
	t.Helper()
	t.Run("empty round", func(t *testing.T) {
		if got := newAgg().Aggregate(nil); got != nil {
			t.Fatalf("empty round: got %v, want nil", got)
		}
	})
	t.Run("single client is identity", func(t *testing.T) {
		params := []float32{1, -2, 3.5}
		got := newAgg().Aggregate([]*Update{{ClientID: 0, Participating: true, Weight: 17, Params: params}})
		for i := range params {
			if got[i] != params[i] {
				t.Fatalf("single-client aggregate[%d] = %v, want %v", i, got[i], params[i])
			}
		}
	})
	t.Run("unanimity preserved", func(t *testing.T) {
		params := []float32{0.1, -0.2, 0.30000001}
		ups := []*Update{
			{ClientID: 0, Participating: true, Weight: 5, Params: params},
			{ClientID: 1, Participating: true, Weight: 11, Params: params},
			{ClientID: 2, Participating: true, Weight: 2, Params: params},
		}
		got := newAgg().Aggregate(ups)
		for i := range params {
			if got[i] != params[i] {
				t.Fatalf("unanimous aggregate[%d] = %v, want %v", i, got[i], params[i])
			}
		}
	})
	t.Run("scratch reuse does not leak", func(t *testing.T) {
		agg := newAgg()
		first := agg.Aggregate([]*Update{{ClientID: 0, Participating: true, Weight: 1, Params: []float32{1, 1}}})
		if first[0] != 1 {
			t.Fatal("first round wrong")
		}
		second := agg.Aggregate([]*Update{{ClientID: 0, Participating: true, Weight: 1, Params: []float32{9, 9}}})
		if second[0] != 9 {
			t.Fatalf("second round got %v: stale scratch", second[0])
		}
	})
	t.Run("arrival order irrelevant", func(t *testing.T) {
		mk := func(id int, v float32) *Update {
			return &Update{ClientID: id, Participating: true, Weight: float64(id + 1),
				Params: []float32{v, -v, v * 3}}
		}
		asc := []*Update{mk(0, 1), mk(1, 2), mk(2, 4), mk(3, 8), mk(4, 16)}
		shuffled := []*Update{asc[3], asc[0], asc[4], asc[2], asc[1]}
		want := append([]float32(nil), newAgg().Aggregate(asc)...)
		got := newAgg().Aggregate(shuffled)
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("shuffled arrival changed bits at %d: %v vs %v", i, got[i], want[i])
			}
		}
	})
}

func TestRobustRulesConformance(t *testing.T) {
	rules := []struct {
		name string
		mk   func() Aggregator
	}{
		{"trimmed-mean(0.25)", func() Aggregator { return NewBuffered(NewTrimmedMeanFedAvg(0.25)) }},
		{"median", func() Aggregator { return NewBuffered(&CoordinateMedianFedAvg{}) }},
		{"krum(1)", func() Aggregator { return NewBuffered(NewKrumFedAvg(1)) }},
		{"fedopt(0.9,median)", func() Aggregator { return NewBuffered(NewFedOptServer(0.9, &CoordinateMedianFedAvg{})) }},
	}
	for _, r := range rules {
		t.Run(r.name, func(t *testing.T) { testRobustConformance(t, r.mk) })
		if r.mk().Name() == "" {
			t.Fatal("aggregator must be identifiable")
		}
	}
}

// robustTestUpdates builds a mixed dense/sparse cohort large enough to cross
// the per-coordinate kernels' parallel dispatch.
func robustTestUpdates(seed uint64, n, clients int) []*Update {
	rng := tensor.NewRNG(seed)
	var ups []*Update
	for c := 0; c < clients; c++ {
		params := make([]float32, n)
		for i := range params {
			if rng.Float64() < 0.3 {
				params[i] = float32(rng.Norm())
			}
		}
		u := &Update{ClientID: c, Participating: true, Weight: float64(1 + c%4), Params: params}
		if c%3 == 2 {
			u = sparsify(u)
		}
		ups = append(ups, u)
	}
	return ups
}

// TestTrimmedMeanZeroBitwiseMatchesSparseFedAvg is the ISSUE's conformance
// pin: with beta 0 (no trimming) the buffered trimmed mean must reproduce
// SparseFedAvg bit for bit on dense updates — and on the sparse/mixed rounds
// the buffer densifies, since densification preserves values exactly.
func TestTrimmedMeanZeroBitwiseMatchesSparseFedAvg(t *testing.T) {
	const n, clients, rounds = 20_000, 7, 3
	ref := &SparseFedAvg{}
	agg := NewBuffered(NewTrimmedMeanFedAvg(0))
	for r := 0; r < rounds; r++ {
		ups := robustTestUpdates(uint64(300+r), n, clients)
		want := append([]float32(nil), ref.Aggregate(ups)...)
		got := agg.Aggregate(ups)
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("round %d coordinate %d: %v, want %v", r, i, got[i], want[i])
			}
		}
	}
}

// TestRobustRulesDeterministicAcrossThreads: every robust rule must produce
// identical bits for every kernel-thread budget — the robust rules keep the
// repo's determinism contract even though they sort per coordinate.
func TestRobustRulesDeterministicAcrossThreads(t *testing.T) {
	const n, clients = 20_000, 9
	rules := []struct {
		name string
		mk   func() Aggregator
	}{
		{"trimmed-mean(0.2)", func() Aggregator { return NewBuffered(NewTrimmedMeanFedAvg(0.2)) }},
		{"median", func() Aggregator { return NewBuffered(&CoordinateMedianFedAvg{}) }},
		{"krum(2)", func() Aggregator { return NewBuffered(NewKrumFedAvg(2)) }},
		{"fedopt(0.9,trimmed-mean)", func() Aggregator {
			return NewBuffered(NewFedOptServer(0.9, NewTrimmedMeanFedAvg(0.2)))
		}},
	}
	oldThreads := tensor.KernelThreads()
	defer tensor.SetKernelThreads(oldThreads)
	for _, r := range rules {
		tensor.SetKernelThreads(1)
		// Two rounds per setting so stateful rules (fedopt) are compared on a
		// trajectory, not a single step.
		refAgg := r.mk()
		var wants [][]float32
		for round := 0; round < 2; round++ {
			wants = append(wants, append([]float32(nil), refAgg.Aggregate(robustTestUpdates(uint64(500+round), n, clients))...))
		}
		for _, threads := range []int{4, 16} {
			tensor.SetKernelThreads(threads)
			agg := r.mk()
			for round := 0; round < 2; round++ {
				got := agg.Aggregate(robustTestUpdates(uint64(500+round), n, clients))
				for i := range wants[round] {
					if math.Float32bits(got[i]) != math.Float32bits(wants[round][i]) {
						t.Fatalf("%s threads=%d round %d coordinate %d: %v, want %v",
							r.name, threads, round, i, got[i], wants[round][i])
					}
				}
			}
		}
	}
}

// TestTrimmedMeanFixture checks the hand-computed arithmetic: 5 clients,
// beta 0.2 → trim 1 each side, weighted mean of the survivors.
func TestTrimmedMeanFixture(t *testing.T) {
	ups := []*Update{
		{ClientID: 0, Participating: true, Weight: 1, Params: []float32{0, 10}},
		{ClientID: 1, Participating: true, Weight: 2, Params: []float32{2, 1}},
		{ClientID: 2, Participating: true, Weight: 3, Params: []float32{4, 2}},
		{ClientID: 3, Participating: true, Weight: 2, Params: []float32{6, 3}},
		{ClientID: 4, Participating: true, Weight: 1, Params: []float32{100, -50}},
	}
	got := NewBuffered(NewTrimmedMeanFedAvg(0.2)).Aggregate(ups)
	// Coordinate 0: sorted {0(w1), 2(w2), 4(w3), 6(w2), 100(w1)}, trim the
	// ends → (2·2 + 4·3 + 6·2)/7 = 28/7 = 4.
	// Coordinate 1: sorted {-50(w1), 1(w2), 2(w3), 3(w2), 10(w1)} →
	// (1·2 + 2·3 + 3·2)/7 = 14/7 = 2.
	want := []float32{4, 2}
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-6 {
			t.Fatalf("trimmed mean[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestMedianFixture checks the hand-computed median, odd and even cohorts,
// and that weights are ignored.
func TestMedianFixture(t *testing.T) {
	mk := func(vals ...float32) []*Update {
		var ups []*Update
		for i, v := range vals {
			ups = append(ups, &Update{ClientID: i, Participating: true,
				Weight: float64(100 * (i + 1)), Params: []float32{v}})
		}
		return ups
	}
	agg := NewBuffered(&CoordinateMedianFedAvg{})
	if got := agg.Aggregate(mk(1, 100, 3, 2, 4)); got[0] != 3 {
		t.Fatalf("odd median = %v, want 3", got[0])
	}
	if got := agg.Aggregate(mk(1, 2, 3, 100)); got[0] != 2.5 {
		t.Fatalf("even median = %v, want 2.5", got[0])
	}
}

// TestKrumFixture: four clustered clients and one far outlier, f=1, so the
// neighbour budget k = 5−1−2 = 2. Every clustered client's two nearest
// neighbours are in the cluster, the outlier's are far away — Krum must
// return one of the cluster's vectors verbatim, specifically the one closest
// to its two nearest peers.
func TestKrumFixture(t *testing.T) {
	ups := []*Update{
		{ClientID: 0, Participating: true, Weight: 1, Params: []float32{0.0, 0.0}},
		{ClientID: 1, Participating: true, Weight: 1, Params: []float32{0.1, 0.0}},
		{ClientID: 2, Participating: true, Weight: 1, Params: []float32{0.0, 0.1}},
		{ClientID: 3, Participating: true, Weight: 1, Params: []float32{0.1, 0.1}},
		{ClientID: 4, Participating: true, Weight: 1, Params: []float32{50, -50}},
	}
	got := NewBuffered(NewKrumFedAvg(1)).Aggregate(ups)
	// All four cluster members tie at score 0.01+0.01 = 0.02; the lowest
	// client ID (0) wins the tie-break.
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("krum selected %v, want the cluster vector {0, 0}", got)
	}
}

// TestFedOptMomentumFixture checks the velocity recurrence by hand: with
// momentum 0.5 and a single client the inner aggregate is the client's
// vector; v accumulates (g − x_prev) and the global overshoots toward g.
func TestFedOptMomentumFixture(t *testing.T) {
	agg := NewBuffered(NewFedOptServer(0.5, &SparseFedAvg{}))
	step := func(v float32) []float32 {
		return agg.Aggregate([]*Update{{ClientID: 0, Participating: true, Weight: 1, Params: []float32{v}}})
	}
	if got := step(1); got[0] != 1 { // first round seeds x = g
		t.Fatalf("round 1 = %v, want 1", got[0])
	}
	if got := step(2); got[0] != 2 { // v = 0 + (2−1) = 1; x = 1 + 1 = 2
		t.Fatalf("round 2 = %v, want 2", got[0])
	}
	if got := step(2); got[0] != 2.5 { // v = 0.5·1 + (2−2) = 0.5; x = 2.5
		t.Fatalf("round 3 = %v, want 2.5", got[0])
	}
}

// TestBufferedAccumulateCopies pins the StreamAggregator aliasing contract:
// an update handed to Accumulate may alias transport decode buffers, so the
// buffer must deep-copy — mutating the caller's slices after Accumulate must
// not change the round's result.
func TestBufferedAccumulateCopies(t *testing.T) {
	agg := NewBuffered(&CoordinateMedianFedAvg{})
	params := []float32{1, 2, 3}
	sv := &tensor.SparseVec{N: 3, Indices: []int32{0, 2}, Values: []float32{5, 7}}
	agg.BeginRound()
	agg.Accumulate(&Update{ClientID: 0, Participating: true, Weight: 1, Params: params})
	agg.Accumulate(&Update{ClientID: 1, Participating: true, Weight: 1, Sparse: sv})
	agg.Accumulate(&Update{ClientID: 2, Participating: true, Weight: 1, Params: []float32{9, 9, 9}})
	params[0], params[1], params[2] = -100, -100, -100
	sv.Values[0], sv.Values[1] = -100, -100
	got := agg.FinishRound()
	// Columns: {1,5,9} → 5; {2,0,9} → 2; {3,7,9} → 7.
	want := []float32{5, 2, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aggregate[%d] = %v, want %v (decode-buffer aliasing leaked)", i, got[i], want[i])
		}
	}
}

// TestBufferedZeroAllocSteadyState: once the slot pool has seen the cohort,
// buffered rounds must not allocate on the accumulate path (FinishRound's
// sort may allocate its closure bookkeeping, so only accumulation is pinned).
func TestBufferedZeroAllocSteadyState(t *testing.T) {
	agg := NewBuffered(&CoordinateMedianFedAvg{})
	ups := robustTestUpdates(77, 4096, 6)
	agg.Aggregate(ups)
	agg.Aggregate(ups)
	allocs := testing.AllocsPerRun(50, func() {
		agg.BeginRound()
		for _, u := range ups {
			agg.Accumulate(u)
		}
	})
	agg.FinishRound()
	if allocs != 0 {
		t.Fatalf("steady-state buffered accumulation allocates %v per round", allocs)
	}
}

// TestParseAggregator covers the spec grammar: defaults, arguments, error
// cases, and the shards conflict.
func TestParseAggregator(t *testing.T) {
	good := []struct {
		spec, name string
	}{
		{"", "SparseFedAvg"},
		{"fedavg", "SparseFedAvg"},
		{"trimmed-mean", "Buffered(TrimmedMeanFedAvg(0.1))"},
		{"trimmed-mean:0.25", "Buffered(TrimmedMeanFedAvg(0.25))"},
		{"median", "Buffered(CoordinateMedianFedAvg)"},
		{"krum", "Buffered(KrumFedAvg(1))"},
		{"krum:3", "Buffered(KrumFedAvg(3))"},
		{"fedopt", "Buffered(FedOpt(0.9,SparseFedAvg))"},
		{"fedopt:0.5", "Buffered(FedOpt(0.5,SparseFedAvg))"},
		{"fedopt:0.5:median", "Buffered(FedOpt(0.5,CoordinateMedianFedAvg))"},
		{"fedopt:0.5:trimmed-mean:0.2", "Buffered(FedOpt(0.5,TrimmedMeanFedAvg(0.2)))"},
	}
	for _, g := range good {
		agg, err := ParseAggregator(g.spec, 1)
		if err != nil {
			t.Fatalf("ParseAggregator(%q): %v", g.spec, err)
		}
		if agg.Name() != g.name {
			t.Fatalf("ParseAggregator(%q).Name() = %q, want %q", g.spec, agg.Name(), g.name)
		}
		if _, ok := agg.(StreamAggregator); !ok {
			t.Fatalf("ParseAggregator(%q) is not a StreamAggregator (the async scheduler needs one)", g.spec)
		}
	}
	if agg, err := ParseAggregator("fedavg", 4); err != nil || agg.Name() != "ShardedFedAvg(4)" {
		t.Fatalf("fedavg with shards: %v / %v", agg, err)
	}
	bad := []string{
		"nope", "trimmed-mean:0.5", "trimmed-mean:-1", "trimmed-mean:x",
		"krum:-1", "krum:x", "fedopt:1", "fedopt:-0.1", "fedopt:x",
		"fedopt:0.5:fedopt", "fedavg:3", "median:1",
	}
	for _, spec := range bad {
		if _, err := ParseAggregator(spec, 1); err == nil {
			t.Fatalf("ParseAggregator(%q) accepted a bad spec", spec)
		}
	}
	if _, err := ParseAggregator("median", 4); err == nil {
		t.Fatal("robust rule with shards > 1 must be rejected")
	}
}

// TestRobustServerConfig: NewServer builds the configured robust rule from
// ServerConfig.Robust, and the job fingerprint separates rules.
func TestRobustServerConfig(t *testing.T) {
	sl, cl := Loopback()
	defer cl.Close()
	s := NewServer(ServerConfig{NumClients: 1, NumTasks: 1, Rounds: 1, Robust: "median"},
		nil, []Transport{sl})
	if got := s.agg.Name(); got != "Buffered(CoordinateMedianFedAvg)" {
		t.Fatalf("ServerConfig.Robust built %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad Robust spec must panic NewServer")
		}
	}()
	cfgs := []Config{
		{}, {Robust: "fedavg"}, {Robust: "median"}, {Robust: "krum:1"}, {RejectNonFinite: true},
	}
	fps := map[uint64]string{}
	fps[cfgs[0].Fingerprint()] = "default"
	if fp := cfgs[1].Fingerprint(); fps[fp] != "default" {
		t.Fatal("explicit fedavg must fingerprint like the default")
	}
	for _, cfg := range cfgs[2:] {
		fp := cfg.Fingerprint()
		if prev, dup := fps[fp]; dup {
			t.Fatalf("fingerprint collision: %+v vs %s", cfg, prev)
		}
		fps[fp] = fmt.Sprintf("%+v", cfg)
	}
	sl2, cl2 := Loopback()
	defer cl2.Close()
	NewServer(ServerConfig{NumClients: 1, NumTasks: 1, Rounds: 1, Robust: "bogus"},
		nil, []Transport{sl2})
}
