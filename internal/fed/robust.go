package fed

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tensor"
)

// Byzantine-robust aggregation rules. Unlike SparseFedAvg these rules are
// non-linear — a trimmed mean or a Krum winner cannot be folded
// coordinate-by-coordinate as updates stream in — so they run behind
// BufferedAggregator, which retains the round's decoded updates in pooled
// per-slot buffers and hands the inner rule a deterministic
// ascending-client-ID view at FinishRound. Every rule accumulates in float64
// and resolves order ties by ascending client/row index, so results are
// bitwise identical across kernel-thread counts, transports, and arrival
// orders.

// TrimmedMeanFedAvg is the coordinate-wise beta-trimmed weighted mean: for
// each coordinate the t = floor(beta·m) smallest and t largest values are
// dropped and the survivors averaged by client weight. It tolerates up to t
// Byzantine clients per coordinate. Beta 0 drops nothing, which makes the
// rule the exact weighted mean — it delegates to SparseFedAvg's arithmetic,
// so TrimmedMeanFedAvg(0) is bitwise identical to the server default on
// dense updates. When floor(beta·m) would leave no survivors the trim is
// clamped to (m−1)/2.
type TrimmedMeanFedAvg struct {
	beta float64
	avg  SparseFedAvg // exact weighted-mean arithmetic for the beta=0 / t=0 case
	buf  []float32
	rows [][]float32
	ws   []float64
}

// NewTrimmedMeanFedAvg returns the beta-trimmed mean rule; beta must be in
// [0, 0.5).
func NewTrimmedMeanFedAvg(beta float64) *TrimmedMeanFedAvg {
	if beta < 0 || beta >= 0.5 {
		panic("fed: trimmed-mean beta must be in [0, 0.5)")
	}
	return &TrimmedMeanFedAvg{beta: beta}
}

// Name identifies the aggregation rule and its trim fraction.
func (a *TrimmedMeanFedAvg) Name() string {
	return fmt.Sprintf("TrimmedMeanFedAvg(%g)", a.beta)
}

// Aggregate computes the per-coordinate trimmed weighted mean into reused
// scratch, or nil when the round had no participants.
func (a *TrimmedMeanFedAvg) Aggregate(updates []*Update) []float32 {
	m := len(updates)
	if m == 0 {
		return nil
	}
	trim := int(a.beta * float64(m))
	if 2*trim >= m {
		trim = (m - 1) / 2
	}
	if trim == 0 {
		// No trimming: the weighted trimmed mean IS the weighted mean. Use the
		// streaming rule's exact arithmetic so the result is bitwise identical
		// to the server default.
		return a.avg.Aggregate(updates)
	}
	a.rows, a.ws = gatherRows(a.rows[:0], a.ws[:0], updates)
	n := len(a.rows[0])
	if cap(a.buf) < n {
		a.buf = make([]float32, n)
	}
	a.buf = a.buf[:n]
	tensor.TrimmedMeanCols(a.buf, a.rows, a.ws, trim)
	return a.buf
}

// CoordinateMedianFedAvg takes the per-coordinate median of the round's
// updates. Client weights are deliberately ignored — a Byzantine client
// reports its own weight, so any weight-sensitive rule hands the attacker a
// lever — which means the rule is NOT a drop-in for weighted FedAvg on
// honest-but-heterogeneous cohorts. It tolerates just under half the cohort
// lying per coordinate.
type CoordinateMedianFedAvg struct {
	buf  []float32
	rows [][]float32
	ws   []float64
}

// Name identifies the aggregation rule.
func (a *CoordinateMedianFedAvg) Name() string { return "CoordinateMedianFedAvg" }

// Aggregate computes the per-coordinate median into reused scratch, or nil
// when the round had no participants.
func (a *CoordinateMedianFedAvg) Aggregate(updates []*Update) []float32 {
	if len(updates) == 0 {
		return nil
	}
	a.rows, a.ws = gatherRows(a.rows[:0], a.ws[:0], updates)
	n := len(a.rows[0])
	if cap(a.buf) < n {
		a.buf = make([]float32, n)
	}
	a.buf = a.buf[:n]
	tensor.MedianCols(a.buf, a.rows)
	return a.buf
}

// KrumFedAvg selects the single update closest to its m−f−2 nearest
// neighbours (squared Euclidean distance, float64) and returns it verbatim —
// the Krum rule, which tolerates f Byzantine clients as long as
// m ≥ 2f+3. Weights are ignored (see CoordinateMedianFedAvg). Ties are
// broken by ascending position in the round's ascending-client-ID order, so
// selection is deterministic.
type KrumFedAvg struct {
	f      int
	buf    []float32
	rows   [][]float32
	ws     []float64
	scores []float64
	dists  []float64
}

// NewKrumFedAvg returns the Krum rule assuming at most f Byzantine clients;
// f must be non-negative.
func NewKrumFedAvg(f int) *KrumFedAvg {
	if f < 0 {
		panic("fed: krum f must be non-negative")
	}
	return &KrumFedAvg{f: f}
}

// Name identifies the aggregation rule and its Byzantine budget.
func (a *KrumFedAvg) Name() string { return fmt.Sprintf("KrumFedAvg(%d)", a.f) }

// Aggregate scores every update by the sum of squared distances to its
// m−f−2 nearest peers (at least one) and copies the lowest-scoring update
// into reused scratch, or returns nil when the round had no participants.
func (a *KrumFedAvg) Aggregate(updates []*Update) []float32 {
	m := len(updates)
	if m == 0 {
		return nil
	}
	a.rows, a.ws = gatherRows(a.rows[:0], a.ws[:0], updates)
	n := len(a.rows[0])
	if cap(a.buf) < n {
		a.buf = make([]float32, n)
	}
	a.buf = a.buf[:n]
	if m == 1 {
		copy(a.buf, a.rows[0])
		return a.buf
	}
	k := m - a.f - 2
	if k < 1 {
		k = 1
	}
	if k > m-1 {
		k = m - 1
	}
	if cap(a.scores) < m {
		a.scores = make([]float64, m)
	}
	a.scores = a.scores[:m]
	if cap(a.dists) < m-1 {
		a.dists = make([]float64, m-1)
	}
	for i := 0; i < m; i++ {
		d := a.dists[:0]
		for j := 0; j < m; j++ {
			if j == i {
				continue
			}
			d = append(d, tensor.SqDist64(a.rows[i], a.rows[j]))
		}
		sort.Float64s(d)
		var s float64
		for _, v := range d[:k] {
			s += v
		}
		a.scores[i] = s
	}
	best := 0
	for i := 1; i < m; i++ {
		if a.scores[i] < a.scores[best] {
			best = i
		}
	}
	copy(a.buf, a.rows[best])
	return a.buf
}

// FedOptServer applies server-side momentum on top of any inner rule
// (FedOpt/FedAvgM): with g the inner aggregate and x the previous global,
// the velocity update is v ← momentum·v + (g − x) and the new global is
// x + v, all element-wise in float32. Momentum 0 returns the inner result
// unchanged (bitwise — the identity path never touches the velocity), so
// FedOptServer(0, inner) is a transparent wrapper in the conformance suite.
// The first round has no previous global and passes g through while seeding
// the state.
type FedOptServer struct {
	momentum float64
	inner    Aggregator
	vel      []float32
	prev     []float32
	buf      []float32
}

// NewFedOptServer wraps inner with server momentum in [0, 1).
func NewFedOptServer(momentum float64, inner Aggregator) *FedOptServer {
	if momentum < 0 || momentum >= 1 {
		panic("fed: fedopt momentum must be in [0, 1)")
	}
	return &FedOptServer{momentum: momentum, inner: inner}
}

// Name identifies the wrapper, its momentum, and the inner rule.
func (a *FedOptServer) Name() string {
	return fmt.Sprintf("FedOpt(%g,%s)", a.momentum, a.inner.Name())
}

// Aggregate runs the inner rule, then folds its result through the server
// velocity. A nil inner result (empty round) leaves the state untouched and
// returns nil.
func (a *FedOptServer) Aggregate(updates []*Update) []float32 {
	g := a.inner.Aggregate(updates)
	if g == nil {
		return nil
	}
	if a.momentum == 0 {
		return g
	}
	n := len(g)
	if a.prev == nil || len(a.prev) != n {
		a.prev = append(a.prev[:0], g...)
		if cap(a.vel) < n {
			a.vel = make([]float32, n)
		} else {
			a.vel = a.vel[:n]
			clear(a.vel)
		}
		if cap(a.buf) < n {
			a.buf = make([]float32, n)
		}
		return g
	}
	a.buf = a.buf[:n]
	mu := float32(a.momentum)
	for i := 0; i < n; i++ {
		v := mu*a.vel[i] + (g[i] - a.prev[i])
		a.vel[i] = v
		a.buf[i] = a.prev[i] + v
	}
	a.prev = append(a.prev[:0], a.buf...)
	return a.buf
}

// bufferedSlot holds one retained update: a densified copy of its parameters
// plus the metadata the inner rule reads. Slots are pooled across rounds so
// steady-state rounds allocate nothing once the cohort size has been seen.
type bufferedSlot struct {
	u      Update
	params []float32
}

// BufferedAggregator adapts any buffering Aggregator to the StreamAggregator
// seam both schedulers drive: Accumulate deep-copies each update (densifying
// sparse ones) into a pooled slot — updates handed to Accumulate may alias
// transport decode buffers and are only valid for the call — and FinishRound
// sorts the retained slots by ascending client ID before handing them to the
// inner rule, so the reduction order is deterministic regardless of arrival
// order. Memory is bounded by cohort size × parameter length.
//
// Unlike SparseFedAvg, BufferedAggregator cannot export an open commit
// window as raw partial sums (the inner rules are non-linear), so a server
// snapshot restore drops any mid-window state and restarts the window empty;
// the restore path logs when that happens.
type BufferedAggregator struct {
	inner Aggregator
	slots []*bufferedSlot
	n     int
	refs  []*Update
}

// NewBuffered wraps inner in the buffering stream adapter.
func NewBuffered(inner Aggregator) *BufferedAggregator {
	return &BufferedAggregator{inner: inner}
}

// Name identifies the adapter and the inner rule.
func (b *BufferedAggregator) Name() string { return "Buffered(" + b.inner.Name() + ")" }

// BeginRound resets the round's slot count; pooled slot buffers are kept.
func (b *BufferedAggregator) BeginRound() { b.n = 0 }

// Accumulate deep-copies one participating update into a pooled slot,
// densifying sparse parameters.
func (b *BufferedAggregator) Accumulate(u *Update) {
	if b.n == len(b.slots) {
		b.slots = append(b.slots, &bufferedSlot{})
	}
	s := b.slots[b.n]
	b.n++
	n := u.ParamLen()
	if cap(s.params) < n {
		s.params = make([]float32, n)
	}
	s.params = s.params[:n]
	if u.Sparse != nil {
		clear(s.params)
		for i, j := range u.Sparse.Indices {
			s.params[j] = u.Sparse.Values[i]
		}
	} else {
		copy(s.params, u.Params)
	}
	s.u = Update{
		ClientID:      u.ClientID,
		Participating: u.Participating,
		Weight:        u.Weight,
		Params:        s.params,
		BaseVersion:   u.BaseVersion,
	}
}

// FinishRound sorts the retained updates by ascending client ID and reduces
// them with the inner rule, or returns nil when no update was accumulated.
func (b *BufferedAggregator) FinishRound() []float32 {
	if b.n == 0 {
		return nil
	}
	b.refs = b.refs[:0]
	for i := 0; i < b.n; i++ {
		b.refs = append(b.refs, &b.slots[i].u)
	}
	sort.SliceStable(b.refs, func(i, j int) bool { return b.refs[i].ClientID < b.refs[j].ClientID })
	return b.inner.Aggregate(b.refs)
}

// Aggregate implements the buffered Aggregator interface in terms of the
// streaming one.
func (b *BufferedAggregator) Aggregate(updates []*Update) []float32 {
	b.BeginRound()
	for _, u := range updates {
		b.Accumulate(u)
	}
	return b.FinishRound()
}

// gatherRows collects the updates' dense parameter vectors and weights into
// reused slices for the per-coordinate kernels. Updates must be dense (the
// BufferedAggregator densifies on Accumulate); a zero weight counts as one.
func gatherRows(rows [][]float32, ws []float64, updates []*Update) ([][]float32, []float64) {
	for _, u := range updates {
		rows = append(rows, u.Params)
		w := u.Weight
		if w == 0 {
			w = 1
		}
		ws = append(ws, w)
	}
	return rows, ws
}

// ParseAggregator builds the server aggregation rule from a -aggregator
// spec:
//
//	fedavg                      weighted mean (the default; honours -shards)
//	trimmed-mean[:beta]         coordinate trimmed mean, default beta 0.1
//	median                      coordinate median
//	krum[:f]                    Krum with Byzantine budget f, default 1
//	fedopt[:momentum[:inner]]   server momentum (default 0.9) over an inner
//	                            rule (default fedavg)
//
// Robust rules buffer the round and cannot compose with the sharded fold, so
// any spec other than fedavg rejects shards > 1. Every robust selection is
// wrapped in NewBuffered so it satisfies the StreamAggregator seam.
func ParseAggregator(spec string, shards int) (Aggregator, error) {
	name, arg, _ := strings.Cut(spec, ":")
	if name == "" || name == "fedavg" {
		if arg != "" {
			return nil, fmt.Errorf("fed: aggregator %q takes no argument", spec)
		}
		if shards > 1 {
			return NewShardedFedAvg(shards), nil
		}
		return &SparseFedAvg{}, nil
	}
	if shards > 1 {
		return nil, fmt.Errorf("fed: robust aggregator %q does not compose with -shards (the buffered round cannot be split into linear per-shard folds)", spec)
	}
	switch name {
	case "trimmed-mean":
		beta := 0.1
		if arg != "" {
			var err error
			if beta, err = strconv.ParseFloat(arg, 64); err != nil {
				return nil, fmt.Errorf("fed: bad trimmed-mean beta %q: %v", arg, err)
			}
		}
		if beta < 0 || beta >= 0.5 {
			return nil, fmt.Errorf("fed: trimmed-mean beta %g out of [0, 0.5)", beta)
		}
		return NewBuffered(NewTrimmedMeanFedAvg(beta)), nil
	case "median":
		if arg != "" {
			return nil, fmt.Errorf("fed: aggregator %q takes no argument", spec)
		}
		return NewBuffered(&CoordinateMedianFedAvg{}), nil
	case "krum":
		f := 1
		if arg != "" {
			var err error
			if f, err = strconv.Atoi(arg); err != nil {
				return nil, fmt.Errorf("fed: bad krum f %q: %v", arg, err)
			}
		}
		if f < 0 {
			return nil, fmt.Errorf("fed: krum f %d must be non-negative", f)
		}
		return NewBuffered(NewKrumFedAvg(f)), nil
	case "fedopt":
		momentum := 0.9
		innerSpec := "fedavg"
		if arg != "" {
			mStr, rest, _ := strings.Cut(arg, ":")
			var err error
			if momentum, err = strconv.ParseFloat(mStr, 64); err != nil {
				return nil, fmt.Errorf("fed: bad fedopt momentum %q: %v", mStr, err)
			}
			if rest != "" {
				innerSpec = rest
			}
		}
		if momentum < 0 || momentum >= 1 {
			return nil, fmt.Errorf("fed: fedopt momentum %g out of [0, 1)", momentum)
		}
		if strings.HasPrefix(innerSpec, "fedopt") {
			return nil, fmt.Errorf("fed: fedopt cannot nest fedopt")
		}
		inner, err := ParseAggregator(innerSpec, 1)
		if err != nil {
			return nil, err
		}
		// The inner rule arrives either bare (fedavg → SparseFedAvg) or
		// already wrapped in a buffer; unwrap so the round is buffered once,
		// at the outermost layer.
		if ba, ok := inner.(*BufferedAggregator); ok {
			inner = ba.inner
		}
		return NewBuffered(NewFedOptServer(momentum, inner)), nil
	default:
		return nil, fmt.Errorf("fed: unknown aggregator %q (fedavg, trimmed-mean[:beta], median, krum[:f], fedopt[:momentum[:inner]])", spec)
	}
}
